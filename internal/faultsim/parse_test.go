package faultsim

import (
	"reflect"
	"testing"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		in   string
		want Plan
	}{
		{"", Plan{}},
		{"seed=42", Plan{Seed: 42}},
		{"seed=42,dpufail=0.05", Plan{Seed: 42, DPUFail: Schedule{Rate: 0.05}}},
		{"dpuslow=0.1x4", Plan{DPUSlow: Schedule{Rate: 0.1}, SlowFactor: 4}},
		{"bitflip=0.01@10-20", Plan{BitFlip: Schedule{Rate: 0.01, Window: Window{From: 10, To: 20}}}},
		{"transfer=0.02", Plan{TransferIn: Schedule{Rate: 0.02}, TransferOut: Schedule{Rate: 0.02}}},
		{"tin=0.1,tout=0.2", Plan{TransferIn: Schedule{Rate: 0.1}, TransferOut: Schedule{Rate: 0.2}}},
		{"failat=1:0;2:3", Plan{DPUFail: Schedule{Triggers: []Trigger{{1, 0}, {2, 3}}}}},
		{"slowfactor=8,slowat=5:1", Plan{SlowFactor: 8, DPUSlow: Schedule{Triggers: []Trigger{{5, 1}}}}},
		{" seed=1 , dpufail=0.5 ", Plan{Seed: 1, DPUFail: Schedule{Rate: 0.5}}},
	}
	for _, c := range cases {
		got, err := ParsePlan(c.in)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, in := range []string{
		"bogus",
		"unknown=1",
		"seed=abc",
		"dpufail=1.5",
		"dpufail=-0.1",
		"dpufail=NaN",
		"dpuslow=0.1x0.5",
		"bitflip=0.1@20-10",
		"bitflip=0.1@x-y",
		"failat=1",
		"failat=a:b",
		"slowfactor=1",
	} {
		if _, err := ParsePlan(in); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", in)
		}
	}
}

// TestPlanStringRoundTrip: String renders the canonical syntax and
// ParsePlan inverts it.
func TestPlanStringRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		{Seed: 42, DPUFail: Schedule{Rate: 0.05}},
		{Seed: 7, DPUSlow: Schedule{Rate: 0.125}, SlowFactor: 4},
		{BitFlip: Schedule{Rate: 0.01, Window: Window{From: 3, To: 9}}},
		{TransferIn: Schedule{Rate: 0.1}, TransferOut: Schedule{Rate: 0.1}},
		{DPUFail: Schedule{Rate: 0.5, Triggers: []Trigger{{1, 2}, {3, 0}}}},
	}
	for _, p := range plans {
		s := p.String()
		got, err := ParsePlan(s)
		if err != nil {
			t.Errorf("reparse of %q: %v", s, err)
			continue
		}
		if got.String() != s {
			t.Errorf("round trip of %q gave %q", s, got.String())
		}
	}
}
