package faultsim

import (
	"reflect"
	"sync"
	"testing"
)

// TestDecisionDeterminism: injection decisions are pure functions of
// (seed, class, seq, lane, attempt) — two injectors with the same plan
// agree on every coordinate, and a different seed must disagree
// somewhere.
func TestDecisionDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, DPUFail: Schedule{Rate: 0.3}, DPUSlow: Schedule{Rate: 0.3}}
	a, b := NewInjector(plan), NewInjector(plan)
	other := NewInjector(Plan{Seed: 43, DPUFail: Schedule{Rate: 0.3}, DPUSlow: Schedule{Rate: 0.3}})
	diff := false
	for seq := uint64(0); seq < 64; seq++ {
		for lane := uint64(0); lane < 4; lane++ {
			for attempt := uint64(0); attempt < 3; attempt++ {
				fa, sa := a.LaunchDecision(seq, lane, attempt)
				fb, sb := b.LaunchDecision(seq, lane, attempt)
				if fa != fb || sa != sb {
					t.Fatalf("same seed disagrees at (%d,%d,%d)", seq, lane, attempt)
				}
				fo, so := other.LaunchDecision(seq, lane, attempt)
				if fo != fa || so != sa {
					diff = true
				}
			}
		}
	}
	if !diff {
		t.Error("different seeds never disagreed over 768 draws")
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Error("same seed produced different event logs")
	}
}

// TestRateExtremes: rate 0 never fires, rate 1 always fires.
func TestRateExtremes(t *testing.T) {
	never := NewInjector(Plan{Seed: 7})
	always := NewInjector(Plan{Seed: 7, DPUFail: Schedule{Rate: 1}})
	for seq := uint64(0); seq < 100; seq++ {
		if fail, slow := never.LaunchDecision(seq, 0, 0); fail || slow > 0 {
			t.Fatalf("zero plan fired at seq %d", seq)
		}
		if fail, _ := always.LaunchDecision(seq, 0, 0); !fail {
			t.Fatalf("rate-1 plan missed seq %d", seq)
		}
	}
	if n := len(never.Events()); n != 0 {
		t.Errorf("zero plan logged %d events", n)
	}
	if n := len(always.Events()); n != 100 {
		t.Errorf("rate-1 plan logged %d events, want 100", n)
	}
}

// TestRateStatistics: a 20% rate over many draws lands near 20%.
func TestRateStatistics(t *testing.T) {
	in := NewInjector(Plan{Seed: 123, DPUFail: Schedule{Rate: 0.2}})
	fired := 0
	const n = 20000
	for seq := uint64(0); seq < n; seq++ {
		if fail, _ := in.LaunchDecision(seq, 0, 0); fail {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("rate 0.2 fired %.3f of draws", frac)
	}
}

// TestTriggers: a trigger fires exactly at its (seq, lane) on attempt
// 0, and a retry (attempt > 0) escapes it.
func TestTriggers(t *testing.T) {
	in := NewInjector(Plan{DPUFail: Schedule{Triggers: []Trigger{{Seq: 5, Lane: 1}}}})
	for seq := uint64(0); seq < 10; seq++ {
		for lane := uint64(0); lane < 3; lane++ {
			fail, _ := in.LaunchDecision(seq, lane, 0)
			want := seq == 5 && lane == 1
			if fail != want {
				t.Errorf("trigger at (%d,%d) = %v, want %v", seq, lane, fail, want)
			}
		}
	}
	if fail, _ := in.LaunchDecision(5, 1, 1); fail {
		t.Error("trigger fired on a retry attempt")
	}
}

// TestWindow: rate-1 draws fire only inside [From, To).
func TestWindow(t *testing.T) {
	in := NewInjector(Plan{TransferIn: Schedule{Rate: 1, Window: Window{From: 10, To: 20}}})
	for seq := uint64(0); seq < 30; seq++ {
		got := in.TransferDecision(TransferIn, seq, 0)
		want := seq >= 10 && seq < 20
		if got != want {
			t.Errorf("windowed fault at seq %d = %v, want %v", seq, got, want)
		}
	}
}

// TestSlowFactor: DPUSlow verdicts carry the plan's factor, defaulting
// to DefaultSlowFactor.
func TestSlowFactor(t *testing.T) {
	def := NewInjector(Plan{DPUSlow: Schedule{Rate: 1}})
	if _, slow := def.LaunchDecision(0, 0, 0); slow != DefaultSlowFactor {
		t.Errorf("default slow factor %g, want %g", slow, DefaultSlowFactor)
	}
	custom := NewInjector(Plan{DPUSlow: Schedule{Rate: 1}, SlowFactor: 8})
	if _, slow := custom.LaunchDecision(0, 0, 0); slow != 8 {
		t.Errorf("slow factor %g, want 8", slow)
	}
}

// TestFlipBit: flip coordinates stay inside the region and are
// deterministic per seed.
func TestFlipBit(t *testing.T) {
	a := NewInjector(Plan{Seed: 9, BitFlip: Schedule{Rate: 1}})
	b := NewInjector(Plan{Seed: 9, BitFlip: Schedule{Rate: 1}})
	const region = 4096
	for seq := uint64(0); seq < 50; seq++ {
		offA, bitA, okA := a.FlipBit(seq, 2, region)
		offB, bitB, okB := b.FlipBit(seq, 2, region)
		if !okA || !okB {
			t.Fatalf("rate-1 flip missed seq %d", seq)
		}
		if offA != offB || bitA != bitB {
			t.Fatalf("flip coordinates diverged at seq %d", seq)
		}
		if offA < 0 || offA >= region || bitA > 7 {
			t.Fatalf("flip out of range: off=%d bit=%d", offA, bitA)
		}
	}
	if _, _, ok := a.FlipBit(0, 0, 0); ok {
		t.Error("flip fired on an empty region")
	}
}

// TestEventsCanonical: events recorded from concurrent goroutines in
// arbitrary order come back canonically sorted, so logs from two runs
// with different schedules compare equal.
func TestEventsCanonical(t *testing.T) {
	mk := func(shuffle bool) []Event {
		in := NewInjector(Plan{Seed: 5, DPUFail: Schedule{Rate: 0.5}, TransferOut: Schedule{Rate: 0.5}})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for seq := uint64(0); seq < 40; seq++ {
					s := seq
					if shuffle {
						s = 39 - seq
					}
					in.LaunchDecision(s, uint64(w), 0)
					if w == 0 {
						in.TransferDecision(TransferOut, s, 0)
					}
				}
			}()
		}
		wg.Wait()
		return in.Events()
	}
	fwd, rev := mk(false), mk(true)
	if len(fwd) == 0 {
		t.Fatal("no events fired")
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Error("canonical event logs differ across consultation orders")
	}
}

// TestCounts: per-class counters match the event log.
func TestCounts(t *testing.T) {
	in := NewInjector(Plan{Seed: 11, DPUFail: Schedule{Rate: 1}})
	for seq := uint64(0); seq < 7; seq++ {
		in.LaunchDecision(seq, 0, 0)
	}
	counts := in.Counts()
	if counts[DPUFail] != 7 {
		t.Errorf("DPUFail count %d, want 7", counts[DPUFail])
	}
	if counts[DPUSlow] != 0 {
		t.Errorf("DPUSlow count %d, want 0", counts[DPUSlow])
	}
}
