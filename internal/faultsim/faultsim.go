// Package faultsim is a deterministic, seed-reproducible fault
// injector for the PIM simulator. It models the failure classes a
// 2500-DPU deployment actually exhibits — hard DPU failures, straggler
// slowdowns, MRAM bit-flips in resident tables, and host↔PIM transfer
// faults — each driven by an injection schedule (a probability, a
// deterministic trigger list, and/or a sequence window) under a single
// PRNG seed.
//
// Determinism discipline: every injection decision is a pure function
// of (seed, class, seq, lane, attempt) through a counter-based hash —
// there is no shared sequential PRNG — so a verdict does not depend on
// the order in which concurrent pipeline stages happen to consult the
// injector. Retries pass a fresh attempt index and therefore get fresh
// draws. The event log records only those deterministic coordinates
// (never scheduling-dependent ids such as the serving shard), and
// Events returns it canonically sorted, so a replay of the same
// workload under the same seed reproduces the identical log.
package faultsim

import (
	"encoding/json"
	"sort"
	"sync"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// DPUFail is a hard core failure: the kernel for that lane does
	// not run and the launch reports the lane as failed.
	DPUFail Class = iota
	// DPUSlow is the straggler model: the lane's kernel runs but its
	// modeled cycle delta is scaled by the plan's SlowFactor.
	DPUSlow
	// BitFlip corrupts one bit of a lane's resident table region in
	// MRAM (detected by the engine's per-table checksums).
	BitFlip
	// TransferIn fails a host→PIM transfer after its time was charged.
	TransferIn
	// TransferOut fails a PIM→host transfer after its time was charged.
	TransferOut

	// NumClasses is the number of fault classes.
	NumClasses int = iota
)

var classNames = [NumClasses]string{
	"dpu_fail", "dpu_slow", "bit_flip", "transfer_in", "transfer_out",
}

// String returns the canonical snake_case class name used in event
// logs and metric labels.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return "unknown"
	}
	return classNames[c]
}

// Trigger deterministically fires a fault at one (seq, lane)
// coordinate, independent of any probability. Triggers apply to
// attempt 0 only: a retry escapes a triggered fault.
type Trigger struct {
	Seq  uint64
	Lane uint64
}

// Window restricts a schedule's probabilistic draws to sequence
// numbers in [From, To). The zero value (To == From) means no window:
// draws apply everywhere. Triggers are not windowed.
type Window struct {
	From uint64
	To   uint64
}

func (w Window) active() bool { return w.To > w.From }

func (w Window) contains(seq uint64) bool {
	return !w.active() || (seq >= w.From && seq < w.To)
}

// Schedule describes when one fault class fires: a per-opportunity
// probability (gated by the optional window) plus a deterministic
// trigger list.
type Schedule struct {
	Rate     float64 // probability per opportunity, in [0, 1]
	Triggers []Trigger
	Window   Window
}

func (s Schedule) active() bool { return s.Rate > 0 || len(s.Triggers) > 0 }

// Plan is a full injection configuration: one schedule per fault
// class under one seed. The zero value injects nothing.
type Plan struct {
	Seed uint64

	DPUFail     Schedule
	DPUSlow     Schedule
	BitFlip     Schedule
	TransferIn  Schedule
	TransferOut Schedule

	// SlowFactor is the cycle multiplier applied by DPUSlow faults
	// (default 4 when a slow schedule is active).
	SlowFactor float64
}

// Enabled reports whether any schedule can fire.
func (p *Plan) Enabled() bool {
	return p.DPUFail.active() || p.DPUSlow.active() || p.BitFlip.active() ||
		p.TransferIn.active() || p.TransferOut.active()
}

func (p *Plan) schedule(c Class) *Schedule {
	switch c {
	case DPUFail:
		return &p.DPUFail
	case DPUSlow:
		return &p.DPUSlow
	case BitFlip:
		return &p.BitFlip
	case TransferIn:
		return &p.TransferIn
	default:
		return &p.TransferOut
	}
}

// Event is one injected fault, identified purely by its deterministic
// coordinates so identical seeds produce identical logs regardless of
// pipeline scheduling.
type Event struct {
	Class   string `json:"class"`
	Seq     uint64 `json:"seq"`
	Lane    uint64 `json:"lane"`
	Attempt uint64 `json:"attempt"`
	Detail  string `json:"detail,omitempty"`
}

// Injector makes seeded injection decisions and records the faults
// that fired. Decision methods are pure functions of their arguments
// (safe for concurrent use); the event log is mutex-guarded.
type Injector struct {
	plan Plan

	mu     sync.Mutex
	events []Event
	counts [NumClasses]uint64
}

// DefaultSlowFactor is the straggler cycle multiplier applied when a
// plan enables DPUSlow without choosing a factor.
const DefaultSlowFactor = 4.0

// NewInjector builds an injector for the plan, applying defaults.
func NewInjector(p Plan) *Injector {
	if p.SlowFactor <= 1 {
		p.SlowFactor = DefaultSlowFactor
	}
	return &Injector{plan: p}
}

// Plan returns the injector's plan with defaults applied.
func (in *Injector) Plan() Plan { return in.plan }

// Active reports whether class c's schedule can ever fire — callers
// use it to skip per-opportunity work (e.g. table scrubbing) for
// classes the plan never injects.
func (in *Injector) Active(c Class) bool { return in.plan.schedule(c).active() }

// mix64 is the splitmix64 finalizer: a bijective avalanche over the
// full 64-bit state.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// draw hashes one decision coordinate into a uniform 64-bit value.
// salt separates independent streams sharing a coordinate (the
// fire/no-fire draw vs. the bit-flip payload draw).
func (in *Injector) draw(c Class, seq, lane, attempt, salt uint64) uint64 {
	h := in.plan.Seed
	h = mix64(h ^ (uint64(c)+1)*0x9E3779B97F4A7C15)
	h = mix64(h ^ (seq+1)*0xD6E8FEB86659FD93)
	h = mix64(h ^ (lane+1)*0xA3EC647659359ACD)
	h = mix64(h ^ (attempt+1)*0xC2B2AE3D27D4EB4F)
	h = mix64(h ^ salt*0x165667B19E3779F9)
	return h
}

// fires decides whether class c fires at (seq, lane, attempt):
// triggers (attempt 0 only) take precedence, then the windowed
// probability draw.
func (in *Injector) fires(c Class, seq, lane, attempt uint64) bool {
	sch := in.plan.schedule(c)
	if attempt == 0 {
		for _, t := range sch.Triggers {
			if t.Seq == seq && t.Lane == lane {
				return true
			}
		}
	}
	if sch.Rate <= 0 || !sch.Window.contains(seq) {
		return false
	}
	// Top 53 bits → uniform in [0, 1).
	u := float64(in.draw(c, seq, lane, attempt, 0)>>11) / (1 << 53)
	return u < sch.Rate
}

func (in *Injector) record(ev Event, c Class) {
	in.mu.Lock()
	in.events = append(in.events, ev)
	in.counts[c]++
	in.mu.Unlock()
}

// LaunchDecision returns the launch-time verdict for one lane of one
// kernel launch: a hard failure, or a slowdown factor (> 1) for the
// straggler model, or neither. Fired faults are recorded.
func (in *Injector) LaunchDecision(seq, lane, attempt uint64) (fail bool, slowFactor float64) {
	if in.fires(DPUFail, seq, lane, attempt) {
		in.record(Event{Class: DPUFail.String(), Seq: seq, Lane: lane, Attempt: attempt}, DPUFail)
		return true, 0
	}
	if in.fires(DPUSlow, seq, lane, attempt) {
		in.record(Event{
			Class: DPUSlow.String(), Seq: seq, Lane: lane, Attempt: attempt,
			Detail: "x" + formatFloat(in.plan.SlowFactor),
		}, DPUSlow)
		return false, in.plan.SlowFactor
	}
	return false, 0
}

// TransferDecision reports whether the transfer in direction c
// (TransferIn or TransferOut) fails at (seq, attempt). Fired faults
// are recorded.
func (in *Injector) TransferDecision(c Class, seq, attempt uint64) bool {
	if c != TransferIn && c != TransferOut {
		return false
	}
	if !in.fires(c, seq, 0, attempt) {
		return false
	}
	in.record(Event{Class: c.String(), Seq: seq, Attempt: attempt}, c)
	return true
}

// FlipBit decides whether a bit-flip hits lane's resident table region
// at seq, and if so derives a deterministic (offset, bit) within
// regionBytes. Fired faults are recorded with the flip coordinates.
func (in *Injector) FlipBit(seq, lane uint64, regionBytes int) (offset int, bit uint, ok bool) {
	if regionBytes <= 0 || !in.fires(BitFlip, seq, lane, 0) {
		return 0, 0, false
	}
	h := in.draw(BitFlip, seq, lane, 0, 1)
	offset = int(h % uint64(regionBytes))
	bit = uint((h >> 32) & 7)
	in.record(Event{
		Class: BitFlip.String(), Seq: seq, Lane: lane,
		Detail: "off=" + formatUint(uint64(offset)) + " bit=" + formatUint(uint64(bit)),
	}, BitFlip)
	return offset, bit, true
}

// Events returns a canonically sorted copy of the fault log (by seq,
// class, lane, attempt) — the replay-comparable artifact.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		return a.Attempt < b.Attempt
	})
	return out
}

// EventsJSON returns the canonical event log as indented JSON.
func (in *Injector) EventsJSON() ([]byte, error) {
	return json.MarshalIndent(in.Events(), "", "  ")
}

// Counts returns how many faults of each class fired.
func (in *Injector) Counts() [NumClasses]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}
