package faultsim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParsePlan parses the compact plan syntax used by the -faults CLI
// flags: comma-separated key=value pairs. An empty string is the zero
// (disabled) plan.
//
// Keys:
//
//	seed=N                 PRNG seed
//	dpufail=R[@A-B]        hard-failure rate, optional seq window [A, B)
//	dpuslow=R[xF][@A-B]    straggler rate, optional cycle factor F
//	bitflip=R[@A-B]        table bit-flip rate (per lane per batch)
//	tin=R[@A-B]            host→PIM transfer-fault rate
//	tout=R[@A-B]           PIM→host transfer-fault rate
//	transfer=R[@A-B]       shorthand: sets both tin and tout
//	slowfactor=F           straggler cycle multiplier (default 4)
//	failat=S:L[;S:L...]    deterministic DPUFail triggers at (seq, lane)
//	slowat=S:L[;S:L...]    deterministic DPUSlow triggers
//	flipat=S:L[;S:L...]    deterministic BitFlip triggers
//
// Example: "seed=42,dpufail=0.05,dpuslow=0.1x4,transfer=0.02".
// Rates must be finite and in [0, 1]; windows require A < B.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faultsim: %q: want key=value", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "dpufail":
			err = parseRate(val, &p.DPUFail, nil)
		case "dpuslow":
			err = parseRate(val, &p.DPUSlow, &p.SlowFactor)
		case "bitflip":
			err = parseRate(val, &p.BitFlip, nil)
		case "tin":
			err = parseRate(val, &p.TransferIn, nil)
		case "tout":
			err = parseRate(val, &p.TransferOut, nil)
		case "transfer":
			if err = parseRate(val, &p.TransferIn, nil); err == nil {
				p.TransferOut.Rate = p.TransferIn.Rate
				p.TransferOut.Window = p.TransferIn.Window
			}
		case "slowfactor":
			var f float64
			f, err = strconv.ParseFloat(val, 64)
			if err == nil && (!isFinite(f) || f <= 1) {
				err = fmt.Errorf("factor must be > 1")
			}
			p.SlowFactor = f
		case "failat":
			p.DPUFail.Triggers, err = parseTriggers(val)
		case "slowat":
			p.DPUSlow.Triggers, err = parseTriggers(val)
		case "flipat":
			p.BitFlip.Triggers, err = parseTriggers(val)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faultsim: %q: %v", field, err)
		}
	}
	return p, nil
}

// parseRate parses "R", "RxF" (when factor is non-nil) and an optional
// "@A-B" window suffix into sch.
func parseRate(val string, sch *Schedule, factor *float64) error {
	if at := strings.IndexByte(val, '@'); at >= 0 {
		w, err := parseWindow(val[at+1:])
		if err != nil {
			return err
		}
		sch.Window = w
		val = val[:at]
	}
	if factor != nil {
		if x := strings.IndexByte(val, 'x'); x >= 0 {
			f, err := strconv.ParseFloat(val[x+1:], 64)
			if err != nil {
				return fmt.Errorf("bad factor %q", val[x+1:])
			}
			if !isFinite(f) || f <= 1 {
				return fmt.Errorf("factor must be > 1")
			}
			*factor = f
			val = val[:x]
		}
	}
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad rate %q", val)
	}
	if !isFinite(r) || r < 0 || r > 1 {
		return fmt.Errorf("rate must be in [0, 1]")
	}
	sch.Rate = r
	return nil
}

func parseWindow(val string) (Window, error) {
	a, b, ok := strings.Cut(val, "-")
	if !ok {
		return Window{}, fmt.Errorf("bad window %q: want from-to", val)
	}
	from, err := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
	if err != nil {
		return Window{}, fmt.Errorf("bad window start %q", a)
	}
	to, err := strconv.ParseUint(strings.TrimSpace(b), 10, 64)
	if err != nil {
		return Window{}, fmt.Errorf("bad window end %q", b)
	}
	if to <= from {
		return Window{}, fmt.Errorf("window end must exceed start")
	}
	return Window{From: from, To: to}, nil
}

func parseTriggers(val string) ([]Trigger, error) {
	if strings.TrimSpace(val) == "" {
		return nil, nil
	}
	var out []Trigger
	for _, pair := range strings.Split(val, ";") {
		a, b, ok := strings.Cut(pair, ":")
		if !ok {
			return nil, fmt.Errorf("bad trigger %q: want seq:lane", pair)
		}
		seq, err := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad trigger seq %q", a)
		}
		lane, err := strconv.ParseUint(strings.TrimSpace(b), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad trigger lane %q", b)
		}
		out = append(out, Trigger{Seq: seq, Lane: lane})
	}
	return out, nil
}

// String renders the plan in the canonical ParsePlan syntax:
// ParsePlan(p.String()) reproduces p exactly (the property the fuzz
// target checks).
func (p Plan) String() string {
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	if p.Seed != 0 {
		add("seed", formatUint(p.Seed))
	}
	rate := func(key string, sch Schedule) {
		if sch.Rate <= 0 {
			return
		}
		v := formatFloat(sch.Rate)
		if sch.Window.active() {
			v += "@" + formatUint(sch.Window.From) + "-" + formatUint(sch.Window.To)
		}
		add(key, v)
	}
	rate("dpufail", p.DPUFail)
	rate("dpuslow", p.DPUSlow)
	rate("bitflip", p.BitFlip)
	rate("tin", p.TransferIn)
	rate("tout", p.TransferOut)
	if p.SlowFactor > 1 {
		add("slowfactor", formatFloat(p.SlowFactor))
	}
	trig := func(key string, ts []Trigger) {
		if len(ts) == 0 {
			return
		}
		ss := make([]string, len(ts))
		for i, t := range ts {
			ss[i] = formatUint(t.Seq) + ":" + formatUint(t.Lane)
		}
		add(key, strings.Join(ss, ";"))
	}
	trig("failat", p.DPUFail.Triggers)
	trig("slowat", p.DPUSlow.Triggers)
	trig("flipat", p.BitFlip.Triggers)
	return strings.Join(parts, ",")
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
