package faultsim

import "testing"

// FuzzParsePlan: the schedule parser must never panic, and any plan it
// accepts must round-trip through the canonical String rendering to a
// fixed point (String → ParsePlan → String is the identity).
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=42,dpufail=0.05,dpuslow=0.1x4,transfer=0.02",
		"bitflip=0.01@10-20,failat=1:0;2:3",
		"tin=1,tout=0,slowfactor=8",
		"dpufail=0.5@0-1,slowat=9:9",
		"seed=18446744073709551615,dpufail=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		canon := p.String()
		p2, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, got)
		}
	})
}
