// Package telemetry is the observability layer of the serving stack:
// a lock-cheap metrics registry (atomic counters, gauges and
// fixed-bucket histograms with Prometheus text exposition),
// request-scoped trace spans with both wall-clock and modeled-seconds
// durations (exportable as JSON and as a Chrome trace_event file),
// and the aggregation types behind the pimsim per-DPU launch
// profiles.
//
// The paper's evaluation lives on breakdowns — setup vs. kernel
// cycles (Fig. 6 vs. Fig. 5), per-method cycle decompositions
// (Fig. 7), per-stage workload timings (Fig. 9) — and this package is
// how a live engine exposes the same decomposition per request and
// per shard instead of as a single aggregate.
//
// Hot-path discipline: every mutation (Counter.Add, Gauge.Set,
// Histogram.Observe) is one or two atomic operations, no locks and no
// allocation; registry locks are taken only at registration and
// exposition time. Optional subsystems (tracing, kernel profiling)
// hang off nil-able handles so the disabled path is a single nil
// check.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; all methods are safe for concurrent use and nil-safe
// (a nil Counter ignores writes and reads zero), so callers holding a
// disabled telemetry handle can skip their own guards.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float64 accumulator for
// modeled-seconds totals. Add is a CAS loop on the raw bits — still
// lock-free, a handful of cycles under contention.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v.
func (f *FloatCounter) Add(v float64) {
	if f == nil {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the accumulated value.
func (f *FloatCounter) Load() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// Gauge is a settable int64 value (queue depths, resident specs).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Exemplar is one concrete observation attached to a histogram
// bucket: the observed value plus a short label block identifying it
// (trace id, input bits, …). Exemplar storage is bounded — one per
// bucket, holding the worst (largest) value the bucket has seen, with
// ties going to the most recent observation ("last-worst").
type Exemplar struct {
	Value  float64 `json:"value"`
	Labels string  `json:"labels,omitempty"` // e.g. `trace_id="7",x="0x40490fdb"`
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: Observe finds the first upper bound ≥ v with a linear scan
// (bucket counts are small and fixed at construction) and bumps one
// atomic counter, plus the atomic sum and count.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	sum    FloatCounter
	count  Counter

	// exemplars is allocated lazily on the first ObserveExemplar; a
	// histogram that never sees exemplars pays one nil pointer load.
	exemplars atomic.Pointer[exemplarSet]
}

type exemplarSet struct {
	slots []atomic.Pointer[Exemplar] // len(bounds)+1, parallel to counts
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. An empty bounds slice yields a single +Inf bucket
// (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Inc()
}

func (h *Histogram) bucketOf(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// ObserveExemplar records one value and attaches an exemplar to its
// bucket when the value is at least as large as the bucket's current
// exemplar (last-worst retention, one exemplar per bucket — bounded
// storage no matter how many observations arrive). The replacement is
// a CAS loop on the bucket's slot; a lost race means a concurrent
// writer installed an exemplar at least as bad, which satisfies the
// retention contract.
func (h *Histogram) ObserveExemplar(v float64, labels string) {
	if h == nil {
		return
	}
	i := h.bucketOf(v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Inc()

	set := h.exemplars.Load()
	if set == nil {
		fresh := &exemplarSet{slots: make([]atomic.Pointer[Exemplar], len(h.counts))}
		if !h.exemplars.CompareAndSwap(nil, fresh) {
			set = h.exemplars.Load()
		} else {
			set = fresh
		}
	}
	ex := &Exemplar{Value: v, Labels: labels}
	for {
		cur := set.slots[i].Load()
		if cur != nil && cur.Value > v {
			return
		}
		if set.slots[i].CompareAndSwap(cur, ex) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds (the +Inf bucket is implied)
	Counts []uint64  // per-bucket counts, len(Bounds)+1
	Sum    float64
	Count  uint64
	// Exemplars holds each bucket's retained worst observation;
	// len(Bounds)+1 entries, nil where the bucket has none. Nil when
	// the histogram never saw ObserveExemplar.
	Exemplars []*Exemplar
}

// Snapshot copies the histogram's current state. Individual bucket
// loads are atomic; the snapshot as a whole is not a consistent cut
// under concurrent writes, which is the standard metrics contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if set := h.exemplars.Load(); set != nil {
		s.Exemplars = make([]*Exemplar, len(set.slots))
		for i := range set.slots {
			if ex := set.slots[i].Load(); ex != nil {
				cp := *ex
				s.Exemplars[i] = &cp
			}
		}
	}
	return s
}

// LatencyBuckets is the default request-latency bucket ladder in
// seconds: 10 µs … 10 s, roughly ×3 steps.
func LatencyBuckets() []float64 {
	return []float64{10e-6, 30e-6, 100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3, 100e-3, 300e-3, 1, 3, 10}
}

// SizeBuckets is the default batch/request element-count ladder.
func SizeBuckets() []float64 {
	return []float64{16, 64, 256, 1024, 4096, 16384, 65536}
}
