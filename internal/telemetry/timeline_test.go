package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimelineDisabled(t *testing.T) {
	if tl := NewTimeline(NewRegistry(), TimelineConfig{}); tl != nil {
		t.Fatal("disabled config must yield a nil timeline")
	}
	var tl *Timeline
	tl.Start()
	tl.Tick(time.Now())
	tl.Close()
	if s := tl.Snapshot(); len(s.Windows) != 0 || s.BucketSeconds != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if names := tl.SeriesNames(); names != nil {
		t.Fatalf("nil series names = %v", names)
	}
}

// TestTimelineWindows drives deterministic ticks and checks rates,
// gauge values, and windowed percentiles.
func TestTimelineWindows(t *testing.T) {
	reg := NewRegistry()
	reqs := reg.Counter("requests_total", "requests")
	depth := reg.Gauge("queue_depth", "queue depth")
	secs := reg.FloatCounter("seconds_total", "seconds")
	lat := reg.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})

	tl := NewTimeline(reg, TimelineConfig{Enabled: true, BucketWidth: 2 * time.Second, Buckets: 3})
	t0 := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)

	reqs.Add(10)
	depth.Set(4)
	secs.Add(1.5)
	for i := 0; i < 90; i++ {
		lat.Observe(0.05) // first bucket
	}
	for i := 0; i < 10; i++ {
		lat.Observe(0.5) // second bucket
	}
	tl.Tick(t0)

	reqs.Add(30)
	depth.Set(7)
	tl.Tick(t0.Add(2 * time.Second))

	snap := tl.Snapshot()
	if snap.BucketSeconds != 2 {
		t.Fatalf("bucket seconds = %v", snap.BucketSeconds)
	}
	if len(snap.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(snap.Windows))
	}

	w0 := snap.Windows[0]
	if got := w0.Values["requests_total:rate"]; got != 5 { // 10 over the 2s synthetic first window
		t.Fatalf("w0 request rate = %v", got)
	}
	if got := w0.Values["queue_depth"]; got != 4 {
		t.Fatalf("w0 gauge = %v", got)
	}
	if got := w0.Values["seconds_total:rate"]; got != 0.75 {
		t.Fatalf("w0 float rate = %v", got)
	}
	if got := w0.Values["latency_seconds:rate"]; got != 50 {
		t.Fatalf("w0 histogram rate = %v", got)
	}
	// p50: rank 50 of 100 falls at the end of the 90-count [0, 0.1)
	// bucket → 0.1 * 50/90.
	if got, want := w0.Values["latency_seconds:p50"], 0.1*50.0/90.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("w0 p50 = %v, want %v", got, want)
	}
	// p95: rank 95 lands 5 observations into the 10-count (0.1, 1]
	// bucket → 0.1 + 0.9*5/10.
	if got, want := w0.Values["latency_seconds:p95"], 0.1+0.9*5.0/10.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("w0 p95 = %v, want %v", got, want)
	}

	w1 := snap.Windows[1]
	if got := w1.Values["requests_total:rate"]; got != 15 { // 30 over 2s
		t.Fatalf("w1 request rate = %v", got)
	}
	if got := w1.Values["queue_depth"]; got != 7 {
		t.Fatalf("w1 gauge = %v", got)
	}
	// No new observations or float seconds: those keys are omitted.
	if _, ok := w1.Values["latency_seconds:p50"]; ok {
		t.Fatal("idle histogram leaked into w1")
	}
	if _, ok := w1.Values["seconds_total:rate"]; ok {
		t.Fatal("idle float counter leaked into w1")
	}

	names := tl.SeriesNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"requests_total:rate", "queue_depth", "latency_seconds:p95"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("series names %v lack %q", names, want)
		}
	}

	// Ring eviction: two more ticks overflow the 3-window ring.
	reqs.Add(2)
	tl.Tick(t0.Add(4 * time.Second))
	reqs.Add(2)
	tl.Tick(t0.Add(6 * time.Second))
	snap = tl.Snapshot()
	if len(snap.Windows) != 3 {
		t.Fatalf("ring kept %d windows, want 3", len(snap.Windows))
	}
	if !snap.Windows[0].Start.Equal(t0) {
		t.Fatalf("oldest window starts %v, want %v", snap.Windows[0].Start, t0)
	}
}

// TestTimelineGolden pins the /debug/timeline JSON document shape.
func TestTimelineGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("engine_requests_total", "requests")
	g := reg.Gauge("engine_queue_depth", "queue depth")
	h := reg.Histogram("engine_request_latency_seconds", "latency", []float64{0.001, 0.01})
	tl := NewTimeline(reg, TimelineConfig{Enabled: true, BucketWidth: time.Second, Buckets: 4})

	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	c.Add(8)
	g.Set(2)
	h.Observe(0.0005)
	h.Observe(0.005)
	tl.Tick(t0)
	c.Add(4)
	g.Set(1)
	tl.Tick(t0.Add(time.Second))

	data, err := json.MarshalIndent(tl.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.json.golden", string(data)+"\n")
}

// TestTimelineConcurrent runs ticks against live writers under -race.
func TestTimelineConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n_total", "n")
	h := reg.Histogram("v_seconds", "v", []float64{0.5})
	tl := NewTimeline(reg, TimelineConfig{Enabled: true, BucketWidth: time.Millisecond, Buckets: 8})
	tl.Start()
	defer tl.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(0.1)
			}
		}()
	}
	base := time.Now()
	for i := 0; i < 50; i++ {
		tl.Tick(base.Add(time.Duration(i) * time.Millisecond))
		tl.Snapshot()
		tl.SeriesNames()
	}
	wg.Wait()
	tl.Close()
	tl.Close() // idempotent
}

func TestBucketQuantileEdges(t *testing.T) {
	bounds := []float64{1, 2}
	// All mass in the +Inf bucket clamps to the last finite bound.
	if got := bucketQuantile(0.5, bounds, []uint64{0, 0, 7}, 7); got != 2 {
		t.Fatalf("inf clamp = %v", got)
	}
	// No bounds at all.
	if got := bucketQuantile(0.5, nil, []uint64{3}, 3); got != 0 {
		t.Fatalf("no bounds = %v", got)
	}
	// Mass entirely in the first bucket interpolates from zero.
	if got := bucketQuantile(0.5, bounds, []uint64{4, 0, 0}, 4); got != 0.5 {
		t.Fatalf("first bucket = %v", got)
	}
}
