package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestLedgerNil(t *testing.T) {
	var l *Ledger
	l.Add(LedgerKey{Tenant: "a"}, LedgerEntry{Requests: 1})
	if s := l.Snapshot(); len(s.Rows) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if l.Overflowed() != 0 {
		t.Fatal("nil overflowed")
	}
}

func TestLedgerAccumulatesAndMirrors(t *testing.T) {
	reg := NewRegistry()
	l := NewLedger(reg, 0)
	ka := LedgerKey{Tenant: "acme", Function: "sin", Method: "l-lut(i)"}
	kb := LedgerKey{Tenant: "bob", Function: "exp", Method: "cordic"}
	l.Add(ka, LedgerEntry{Requests: 1, Elements: 100, KernelCycles: 5000, BytesIn: 400, BytesOut: 400, ModeledSeconds: 0.25})
	l.Add(ka, LedgerEntry{Requests: 1, Elements: 50, KernelCycles: 2500, Degraded: 1})
	l.Add(kb, LedgerEntry{Requests: 1, Shed: 1})

	s := l.Snapshot()
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(s.Rows))
	}
	// Sorted by tenant: acme first.
	a := s.Rows[0]
	if a.Tenant != "acme" || a.Requests != 2 || a.Elements != 150 ||
		a.KernelCycles != 7500 || a.BytesIn != 400 || a.ModeledSeconds != 0.25 || a.Degraded != 1 {
		t.Fatalf("acme row = %+v", a)
	}
	if b := s.Rows[1]; b.Tenant != "bob" || b.Shed != 1 {
		t.Fatalf("bob row = %+v", b)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	for _, want := range []string{
		`tenant_kernel_cycles_total{tenant="acme",fn="sin",method="l-lut(i)"} 7500`,
		`tenant_elements_total{tenant="acme",fn="sin",method="l-lut(i)"} 150`,
		`tenant_shed_total{tenant="bob",fn="exp",method="cordic"} 1`,
		`tenant_degraded_total{tenant="acme",fn="sin",method="l-lut(i)"} 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, exp)
		}
	}
}

func TestLedgerOverflow(t *testing.T) {
	l := NewLedger(nil, 2)
	l.Add(LedgerKey{Tenant: "a"}, LedgerEntry{Requests: 1})
	l.Add(LedgerKey{Tenant: "b"}, LedgerEntry{Requests: 1})
	l.Add(LedgerKey{Tenant: "c"}, LedgerEntry{Requests: 1})
	l.Add(LedgerKey{Tenant: "d"}, LedgerEntry{Requests: 1, KernelCycles: 7})
	s := l.Snapshot()
	if len(s.Rows) != 3 { // a, b, overflow
		t.Fatalf("rows = %d, want 3: %+v", len(s.Rows), s.Rows)
	}
	if s.Overflowed != 2 {
		t.Fatalf("overflowed = %d, want 2", s.Overflowed)
	}
	var of *LedgerRow
	for i := range s.Rows {
		if s.Rows[i].LedgerKey == overflowLedgerKey {
			of = &s.Rows[i]
		}
	}
	if of == nil || of.Requests != 2 || of.KernelCycles != 7 {
		t.Fatalf("overflow row = %+v", of)
	}
}

func TestMergeLedgers(t *testing.T) {
	a := LedgerSnapshot{Rows: []LedgerRow{
		{LedgerKey{Tenant: "t", Function: "sin", Method: "m-lut"}, LedgerEntry{Requests: 1, KernelCycles: 10}},
		{LedgerKey{Tenant: "u", Function: "exp", Method: "cordic"}, LedgerEntry{Requests: 2}},
	}}
	b := LedgerSnapshot{Rows: []LedgerRow{
		{LedgerKey{Tenant: "t", Function: "sin", Method: "m-lut"}, LedgerEntry{Requests: 3, KernelCycles: 30, Failovers: 1}},
	}, Overflowed: 4}
	m := MergeLedgers(a, b)
	if len(m.Rows) != 2 || m.Overflowed != 4 {
		t.Fatalf("merged = %+v", m)
	}
	if r := m.Rows[0]; r.Tenant != "t" || r.Requests != 4 || r.KernelCycles != 40 || r.Failovers != 1 {
		t.Fatalf("merged t row = %+v", r)
	}
	if empty := MergeLedgers(); len(empty.Rows) != 0 {
		t.Fatalf("empty merge = %+v", empty)
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger(NewRegistry(), 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := LedgerKey{Tenant: string(rune('a' + w%4)), Function: "sin", Method: "m-lut"}
			for i := 0; i < 500; i++ {
				l.Add(k, LedgerEntry{Requests: 1, Elements: 2})
				if i%100 == 0 {
					l.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, r := range l.Snapshot().Rows {
		total += r.Requests
	}
	if total != 8*500 {
		t.Fatalf("total requests = %d", total)
	}
}
