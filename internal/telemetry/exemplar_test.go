package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestHistogramExemplarLastWorst(t *testing.T) {
	h := NewHistogram([]float64{1, 10})

	h.ObserveExemplar(0.5, `trace_id="1"`)
	h.ObserveExemplar(0.2, `trace_id="2"`) // smaller: must not displace
	h.ObserveExemplar(0.9, `trace_id="3"`) // worse: must displace
	h.ObserveExemplar(42, `trace_id="4"`)  // overflow bucket

	s := h.Snapshot()
	if s.Count != 4 || s.Counts[0] != 3 || s.Counts[2] != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if len(s.Exemplars) != 3 {
		t.Fatalf("want 3 exemplar slots, got %d", len(s.Exemplars))
	}
	if ex := s.Exemplars[0]; ex == nil || ex.Value != 0.9 || ex.Labels != `trace_id="3"` {
		t.Fatalf("bucket 0 exemplar: %+v, want worst value 0.9 from trace 3", ex)
	}
	if s.Exemplars[1] != nil {
		t.Fatalf("empty bucket grew an exemplar: %+v", s.Exemplars[1])
	}
	if ex := s.Exemplars[2]; ex == nil || ex.Value != 42 {
		t.Fatalf("overflow bucket exemplar: %+v", ex)
	}
}

func TestHistogramExemplarTieKeepsLatest(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveExemplar(0.5, "first")
	h.ObserveExemplar(0.5, "second")
	if ex := h.Snapshot().Exemplars[0]; ex.Labels != "second" {
		t.Fatalf("tie must keep the latest observation, got %+v", ex)
	}
}

func TestHistogramExemplarBounded(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3})
	for i := 0; i < 10000; i++ {
		h.ObserveExemplar(float64(i%5), fmt.Sprintf(`i="%d"`, i))
	}
	s := h.Snapshot()
	if len(s.Exemplars) != 4 {
		t.Fatalf("exemplar storage must stay one-per-bucket, got %d slots", len(s.Exemplars))
	}
	for i, ex := range s.Exemplars {
		if ex == nil {
			t.Fatalf("bucket %d lost its exemplar", i)
		}
	}
}

func TestHistogramExemplarConcurrent(t *testing.T) {
	h := NewHistogram([]float64{100, 1000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveExemplar(float64(g*1000+i), fmt.Sprintf(`g="%d"`, g))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	// The overflow bucket's exemplar must be the global worst.
	last := s.Exemplars[len(s.Exemplars)-1]
	if last == nil || last.Value != 7999 {
		t.Fatalf("overflow exemplar %+v, want value 7999", last)
	}
}

func TestRegistryCardinalityGuard(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeriesPerFamily(3)

	c0 := r.Counter(`acc_samples_total{tenant="a"}`, "samples")
	c1 := r.Counter(`acc_samples_total{tenant="b"}`, "samples")
	over1 := r.Counter(`acc_samples_total{tenant="c"}`, "samples") // 3rd series: becomes the overflow slot? No — it's within cap.
	over2 := r.Counter(`acc_samples_total{tenant="d"}`, "samples") // beyond cap: overflow
	over3 := r.Counter(`acc_samples_total{tenant="e"}`, "samples") // beyond cap: same overflow series

	if c0 == c1 || c0 == over1 {
		t.Fatal("within-cap series must stay distinct")
	}
	if over2 != over3 {
		t.Fatal("beyond-cap registrations must collapse into one overflow series")
	}
	// Re-registering an existing series is not an overflow.
	if again := r.Counter(`acc_samples_total{tenant="a"}`, "samples"); again != c0 {
		t.Fatal("existing series must not be redirected")
	}
	if n := r.OverflowedSeries(); n != 2 {
		t.Fatalf("overflowed series = %d, want 2", n)
	}

	over2.Add(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `acc_samples_total{overflow="true"} 5`) {
		t.Fatalf("exposition missing overflow series:\n%s", b.String())
	}
	if strings.Contains(b.String(), `tenant="d"`) {
		t.Fatalf("capped label set leaked into exposition:\n%s", b.String())
	}

	// Unlabeled singletons and other families are unaffected.
	if g := r.Gauge("acc_queue_depth", "depth"); g == nil {
		t.Fatal("unlabeled registration failed under guard")
	}
	// Histograms share the guard.
	h1 := r.Histogram(`acc_err{tenant="a"}`, "err", []float64{1})
	r.Histogram(`acc_err{tenant="b"}`, "err", []float64{1})
	r.Histogram(`acc_err{tenant="c"}`, "err", []float64{1})
	h4 := r.Histogram(`acc_err{tenant="d"}`, "err", []float64{1})
	h5 := r.Histogram(`acc_err{tenant="e"}`, "err", []float64{1})
	if h4 != h5 || h4 == h1 {
		t.Fatal("histogram registrations must share the cardinality guard")
	}
}
