package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Telemetry bundles a process's observability handles: the metrics
// registry (always cheap, always on), the optional request tracer
// (nil when tracing is disabled), and the optional accuracy snapshot
// source (nil unless the engine's shadow sampler is enabled).
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer
	// AccuracyJSON, when non-nil, supplies the /debug/accuracy
	// document — the engine wires it to the accwatch snapshot.
	AccuracyJSON func() any
	// Timeline, when non-nil, serves windowed rate/percentile views of
	// the registry at /debug/timeline.
	Timeline *Timeline
	// LedgerJSON, when non-nil, supplies the /debug/ledger document —
	// the per-(tenant, function, method) cost snapshot.
	LedgerJSON func() any
	// ProfileHandler, when non-nil, serves /debug/profile — the
	// modeled-cycle profiler's flamegraph/pprof export (the engine or
	// cluster wires it to internal/profiler's handler).
	ProfileHandler http.Handler
	// HeatmapHandler, when non-nil, serves /debug/heatmap — per-DPU
	// issue/DMA/idle utilization decompositions.
	HeatmapHandler http.Handler
}

// Handler returns an http.Handler exposing the standard endpoints:
//
//	/metrics         Prometheus text exposition of the registry
//	/debug/trace     retained request span trees as JSON
//	                 (?n=K limits to the K most recent; ?format=chrome
//	                 emits the Chrome trace_event form instead)
//	/debug/accuracy  the shadow sampler's accuracy snapshot as JSON
//	                 (404 when accuracy monitoring is disabled)
//	/debug/timeline  windowed rate / gauge / percentile views of the
//	                 registry as JSON (404 when the timeline is off)
//	/debug/ledger    the per-(tenant, function, method) cost ledger as
//	                 JSON (404 when the ledger is off)
//	/debug/profile   the modeled-cycle profiler's frames as JSON,
//	                 folded flamegraph stacks, or gzip pprof
//	                 (?seconds=N&format=...; 404 when profiling is off)
//	/debug/heatmap   per-DPU issue/DMA/idle utilization windows as
//	                 JSON (404 when profiling is off)
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if t == nil || t.Registry == nil {
			return
		}
		if err := t.Registry.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if t == nil || t.Tracer == nil {
			http.Error(w, "tracing disabled (set a trace depth)", http.StatusNotFound)
			return
		}
		traces := t.Tracer.Traces()
		if q := r.URL.Query().Get("n"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad n=%q", q), http.StatusBadRequest)
				return
			}
			if n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		switch r.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := WriteChromeTrace(w, traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(traces); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "format must be json or chrome", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/timeline", func(w http.ResponseWriter, _ *http.Request) {
		if t == nil || t.Timeline == nil {
			http.Error(w, "timeline disabled (enable the windowed store)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.Timeline.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/ledger", func(w http.ResponseWriter, _ *http.Request) {
		if t == nil || t.LedgerJSON == nil {
			http.Error(w, "cost ledger disabled (enable the ledger)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.LedgerJSON()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, r *http.Request) {
		if t == nil || t.ProfileHandler == nil {
			http.Error(w, "profiling disabled (enable the profiler)", http.StatusNotFound)
			return
		}
		t.ProfileHandler.ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/heatmap", func(w http.ResponseWriter, r *http.Request) {
		if t == nil || t.HeatmapHandler == nil {
			http.Error(w, "profiling disabled (enable the profiler)", http.StatusNotFound)
			return
		}
		t.HeatmapHandler.ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/accuracy", func(w http.ResponseWriter, _ *http.Request) {
		if t == nil || t.AccuracyJSON == nil {
			http.Error(w, "accuracy monitoring disabled (enable the shadow sampler)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.AccuracyJSON()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
