package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// LedgerKey identifies one cost-attribution row: who asked for what.
// The method string follows the accuracy watcher's label convention
// ("l-lut(i)" for the interpolated variant) so ledger rows, accuracy
// series and offline reports key identically.
type LedgerKey struct {
	Tenant   string `json:"tenant"`
	Function string `json:"function"`
	Method   string `json:"method"`
}

// LedgerEntry is one row's accumulated costs. Kernel cycles, bytes and
// modeled seconds are the request's exact share of the batches it rode
// in (coalesced batches split their cost by element count with an
// exact prefix partition, so per-tenant cycle totals reconcile ±0 with
// the simulator's charged cycles).
type LedgerEntry struct {
	Requests       uint64  `json:"requests"`
	Elements       uint64  `json:"elements"`
	KernelCycles   uint64  `json:"kernel_cycles"`
	BytesIn        uint64  `json:"bytes_in"`
	BytesOut       uint64  `json:"bytes_out"`
	ModeledSeconds float64 `json:"modeled_seconds"`
	Degraded       uint64  `json:"degraded"`
	Shed           uint64  `json:"shed"`
	Failovers      uint64  `json:"failovers"`
}

func (e *LedgerEntry) add(d LedgerEntry) {
	e.Requests += d.Requests
	e.Elements += d.Elements
	e.KernelCycles += d.KernelCycles
	e.BytesIn += d.BytesIn
	e.BytesOut += d.BytesOut
	e.ModeledSeconds += d.ModeledSeconds
	e.Degraded += d.Degraded
	e.Shed += d.Shed
	e.Failovers += d.Failovers
}

// LedgerRow pairs a key with its entry in snapshots.
type LedgerRow struct {
	LedgerKey
	LedgerEntry
}

// LedgerSnapshot is the /debug/ledger document: rows sorted by
// (tenant, function, method) for stable output.
type LedgerSnapshot struct {
	Rows []LedgerRow `json:"rows"`
	// Overflowed counts distinct keys collapsed into the overflow row
	// by the cardinality cap.
	Overflowed uint64 `json:"overflowed,omitempty"`
}

// ledgerMirror is one row's set of registered prometheus series.
type ledgerMirror struct {
	requests  *Counter
	elements  *Counter
	cycles    *Counter
	bytesIn   *Counter
	bytesOut  *Counter
	modeled   *FloatCounter
	degraded  *Counter
	shed      *Counter
	failovers *Counter
}

// overflowLedgerKey is where rows beyond MaxKeys collapse — the same
// cardinality-guard discipline as the registry's per-family cap.
var overflowLedgerKey = LedgerKey{Tenant: "overflow", Function: "overflow", Method: "overflow"}

// Ledger is the per-(tenant, function, method) cost accountant. Adds
// happen per drained batch and per routing decision — off the
// per-element hot path — under one mutex; when a registry is attached
// every row also mirrors into tenant_* prometheus series. All methods
// are nil-safe: a disabled ledger is a nil pointer and one nil check.
type Ledger struct {
	mu         sync.Mutex
	entries    map[LedgerKey]*LedgerEntry
	mirrors    map[LedgerKey]*ledgerMirror
	reg        *Registry // nil: no prometheus mirror
	maxKeys    int
	overflowed uint64
}

// NewLedger builds a ledger. reg, when non-nil, receives tenant_*
// prometheus series per row. maxKeys caps distinct rows (≤ 0 picks
// 1024); rows beyond it collapse into the overflow row.
func NewLedger(reg *Registry, maxKeys int) *Ledger {
	if maxKeys <= 0 {
		maxKeys = 1024
	}
	return &Ledger{
		entries: make(map[LedgerKey]*LedgerEntry),
		mirrors: make(map[LedgerKey]*ledgerMirror),
		reg:     reg,
		maxKeys: maxKeys,
	}
}

// row returns (creating if needed) the entry and mirror for k,
// applying the cardinality cap. Callers hold l.mu.
func (l *Ledger) row(k LedgerKey) (*LedgerEntry, *ledgerMirror) {
	e, ok := l.entries[k]
	if !ok {
		if len(l.entries) >= l.maxKeys {
			l.overflowed++
			k = overflowLedgerKey
			if e, ok = l.entries[k]; ok {
				return e, l.mirrors[k]
			}
		}
		e = &LedgerEntry{}
		l.entries[k] = e
		if l.reg != nil {
			lb := fmt.Sprintf("{tenant=%q,fn=%q,method=%q}", k.Tenant, k.Function, k.Method)
			l.mirrors[k] = &ledgerMirror{
				requests:  l.reg.Counter("tenant_requests_total"+lb, "requests served, by tenant cost row"),
				elements:  l.reg.Counter("tenant_elements_total"+lb, "elements served, by tenant cost row"),
				cycles:    l.reg.Counter("tenant_kernel_cycles_total"+lb, "modeled kernel cycles attributed, by tenant cost row"),
				bytesIn:   l.reg.Counter("tenant_bytes_in_total"+lb, "host-to-PIM bytes attributed, by tenant cost row"),
				bytesOut:  l.reg.Counter("tenant_bytes_out_total"+lb, "PIM-to-host bytes attributed, by tenant cost row"),
				modeled:   l.reg.FloatCounter("tenant_modeled_seconds_total"+lb, "modeled pipeline seconds attributed, by tenant cost row"),
				degraded:  l.reg.Counter("tenant_degraded_total"+lb, "host-mirror degraded requests, by tenant cost row"),
				shed:      l.reg.Counter("tenant_shed_total"+lb, "requests shed, by tenant cost row"),
				failovers: l.reg.Counter("tenant_failovers_total"+lb, "replica failovers, by tenant cost row"),
			}
		}
	}
	return e, l.mirrors[k]
}

// Add accumulates d into k's row (and its prometheus mirror).
func (l *Ledger) Add(k LedgerKey, d LedgerEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e, m := l.row(k)
	e.add(d)
	l.mu.Unlock()
	if m != nil {
		m.requests.Add(d.Requests)
		m.elements.Add(d.Elements)
		m.cycles.Add(d.KernelCycles)
		m.bytesIn.Add(d.BytesIn)
		m.bytesOut.Add(d.BytesOut)
		m.modeled.Add(d.ModeledSeconds)
		m.degraded.Add(d.Degraded)
		m.shed.Add(d.Shed)
		m.failovers.Add(d.Failovers)
	}
}

// Overflowed reports how many distinct keys collapsed into the
// overflow row.
func (l *Ledger) Overflowed() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overflowed
}

// Snapshot copies the ledger, rows sorted by (tenant, function,
// method). Nil-safe: a nil ledger snapshots empty.
func (l *Ledger) Snapshot() LedgerSnapshot {
	if l == nil {
		return LedgerSnapshot{}
	}
	l.mu.Lock()
	s := LedgerSnapshot{Rows: make([]LedgerRow, 0, len(l.entries)), Overflowed: l.overflowed}
	for k, e := range l.entries {
		s.Rows = append(s.Rows, LedgerRow{LedgerKey: k, LedgerEntry: *e})
	}
	l.mu.Unlock()
	sortLedgerRows(s.Rows)
	return s
}

func sortLedgerRows(rows []LedgerRow) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		return a.Method < b.Method
	})
}

// MergeLedgers sums snapshots row-by-key into one — how a cluster
// combines its own shed/failover accounting with each replica
// engine's served-cost ledger.
func MergeLedgers(snaps ...LedgerSnapshot) LedgerSnapshot {
	acc := make(map[LedgerKey]*LedgerEntry)
	var order []LedgerKey
	var overflowed uint64
	for _, s := range snaps {
		overflowed += s.Overflowed
		for _, row := range s.Rows {
			e, ok := acc[row.LedgerKey]
			if !ok {
				e = &LedgerEntry{}
				acc[row.LedgerKey] = e
				order = append(order, row.LedgerKey)
			}
			e.add(row.LedgerEntry)
		}
	}
	out := LedgerSnapshot{Rows: make([]LedgerRow, 0, len(order)), Overflowed: overflowed}
	for _, k := range order {
		out.Rows = append(out.Rows, LedgerRow{LedgerKey: k, LedgerEntry: *acc[k]})
	}
	sortLedgerRows(out.Rows)
	return out
}
