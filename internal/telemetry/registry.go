package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics and renders them in the Prometheus
// text exposition format. Registration (Counter, Gauge, …) takes a
// lock and returns a stable pointer; the hot path then mutates that
// pointer directly without touching the registry again. Metric names
// may carry a Prometheus label set inline — e.g.
// "engine_shard_kernel_cycles_total{shard=\"0\"}" — and series of the
// same family (the part before '{') are grouped under one HELP/TYPE
// header on exposition.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string // registration order of full names

	// maxSeries, when > 0, caps the number of distinct label sets per
	// metric family. Registrations beyond the cap collapse into one
	// {overflow="true"} series per family — the cardinality guard that
	// keeps a hostile or buggy label source (unbounded tenant names,
	// say) from growing the registry without bound.
	maxSeries int
	overflow  uint64 // label sets collapsed by the guard
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindFloatCounter
	kindGauge
	kindHistogram
)

type entry struct {
	name   string // full name including any {labels}
	family string // name with labels stripped
	labels string // "{...}" or ""
	help   string
	kind   metricKind

	counter *Counter
	fcnt    *FloatCounter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// SetMaxSeriesPerFamily installs the cardinality guard: at most n
// distinct label sets per metric family (n ≤ 0 removes the cap).
// Registrations beyond the cap are redirected to the family's
// {overflow="true"} series, which counts against the cap's n. Series
// registered before the call are unaffected.
func (r *Registry) SetMaxSeriesPerFamily(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.maxSeries = n
	r.mu.Unlock()
}

// OverflowedSeries reports how many label sets the cardinality guard
// has collapsed into overflow series.
func (r *Registry) OverflowedSeries() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.overflow
}

// guardName applies the cardinality cap: when the family already holds
// maxSeries distinct label sets and name is a new one, it is rewritten
// to the family's overflow series. Callers hold r.mu.
func (r *Registry) guardName(name string) string {
	if r.maxSeries <= 0 {
		return name
	}
	if _, ok := r.entries[name]; ok {
		return name
	}
	family, labels := splitName(name)
	if labels == "" {
		return name // unlabeled singleton: nothing to collapse
	}
	n := 0
	for _, existing := range r.order {
		if e := r.entries[existing]; e.family == family {
			n++
		}
	}
	if n < r.maxSeries {
		return name
	}
	r.overflow++
	return family + `{overflow="true"}`
}

func (r *Registry) register(name, help string, kind metricKind) *entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.guardName(name)
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered with a different type", name))
		}
		return e
	}
	family, labels := splitName(name)
	e := &entry{name: name, family: family, labels: labels, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindFloatCounter:
		e.fcnt = &FloatCounter{}
	case kindGauge:
		e.gauge = &Gauge{}
	}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, kindCounter)
	if e == nil {
		return nil
	}
	return e.counter
}

// FloatCounter returns the named float accumulator, creating it on
// first use.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	e := r.register(name, help, kindFloatCounter)
	if e == nil {
		return nil
	}
	return e.fcnt
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, kindGauge)
	if e == nil {
		return nil
	}
	return e.gauge
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.guardName(name)
	if e, ok := r.entries[name]; ok {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("telemetry: %s re-registered with a different type", name))
		}
		return e.hist
	}
	family, labels := splitName(name)
	e := &entry{name: name, family: family, labels: labels, help: help, kind: kindHistogram, hist: NewHistogram(bounds)}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e.hist
}

// SeriesPoint is one registered series' current value, as enumerated
// by Registry.Series — the sampling seam the windowed timeline store
// reads through. Counters, float counters and gauges carry Value;
// histograms carry a full Snapshot in Hist.
type SeriesPoint struct {
	Name   string // full name including any {labels}
	Family string // name with labels stripped
	Kind   string // "counter", "float_counter", "gauge", "histogram"
	Value  float64
	Hist   *HistogramSnapshot // non-nil for histograms only
}

// Series enumerates every registered series in registration order with
// its current value. Individual loads are atomic; the slice as a whole
// is not a consistent cut — the standard metrics contract.
func (r *Registry) Series() []SeriesPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*entry, len(r.order))
	for i, name := range r.order {
		entries[i] = r.entries[name]
	}
	r.mu.Unlock()
	out := make([]SeriesPoint, 0, len(entries))
	for _, e := range entries {
		p := SeriesPoint{Name: e.name, Family: e.family}
		switch e.kind {
		case kindCounter:
			p.Kind = "counter"
			p.Value = float64(e.counter.Load())
		case kindFloatCounter:
			p.Kind = "float_counter"
			p.Value = e.fcnt.Load()
		case kindGauge:
			p.Kind = "gauge"
			p.Value = float64(e.gauge.Load())
		case kindHistogram:
			p.Kind = "histogram"
			s := e.hist.Snapshot()
			p.Hist = &s
		}
		out = append(out, p)
	}
	return out
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// mergeLabels splices extra (e.g. `le="0.5"`) into an existing label
// block, producing `{a="b",le="0.5"}`.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). Families are emitted in
// first-registration order; series within a family are sorted by
// label block for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Group entries by family, preserving family first-seen order.
	var famOrder []string
	byFam := map[string][]*entry{}
	for _, name := range r.order {
		e := r.entries[name]
		if _, seen := byFam[e.family]; !seen {
			famOrder = append(famOrder, e.family)
		}
		byFam[e.family] = append(byFam[e.family], e)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range famOrder {
		entries := byFam[fam]
		sort.Slice(entries, func(i, j int) bool { return entries[i].labels < entries[j].labels })
		e0 := entries[0]
		if e0.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, e0.help)
		}
		typ := "counter"
		switch e0.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, typ)
		for _, e := range entries {
			switch e.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s %d\n", e.name, e.counter.Load())
			case kindFloatCounter:
				fmt.Fprintf(&b, "%s %s\n", e.name, formatFloat(e.fcnt.Load()))
			case kindGauge:
				fmt.Fprintf(&b, "%s %d\n", e.name, e.gauge.Load())
			case kindHistogram:
				s := e.hist.Snapshot()
				cum := uint64(0)
				for i, bound := range s.Bounds {
					cum += s.Counts[i]
					fmt.Fprintf(&b, "%s%s %d\n", e.family,
						mergeLabels(e.labels, fmt.Sprintf("le=%q", formatFloat(bound))), cum)
				}
				cum += s.Counts[len(s.Bounds)]
				fmt.Fprintf(&b, "%s%s %d\n", e.family, mergeLabels(e.labels, `le="+Inf"`), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", e.family, e.labels, formatFloat(s.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", e.family, e.labels, s.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
