package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "t")
	f := reg.FloatCounter("test_seconds_total", "t")
	g := reg.Gauge("test_gauge", "t")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				f.Add(0.5)
				g.Add(1)
				// Interleave snapshots with writes: must not race
				// (the -race CI job is the real assertion here).
				_ = c.Load()
				_ = f.Load()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := f.Load(); math.Abs(got-workers*per*0.5) > 1e-9 {
		t.Errorf("float counter = %g, want %g", got, workers*per*0.5)
	}
	if got := g.Load(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// A value exactly on an upper bound belongs to that bucket
	// (Prometheus le semantics: bucket counts observations ≤ bound).
	for _, v := range []float64{0.5, 1.0} {
		h.Observe(v) // bucket 0 (≤1)
	}
	h.Observe(1.5) // bucket 1 (≤2)
	h.Observe(2.0) // bucket 1
	h.Observe(4.0) // bucket 2 (≤4)
	h.Observe(9.9) // overflow (+Inf)
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-(0.5+1+1.5+2+4+9.9)) > 1e-9 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i) * 1e-5)
				_ = h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

// TestNilSink: every metric type must be a no-op through a nil
// pointer — the disabled-telemetry fast path the engine relies on.
func TestNilSink(t *testing.T) {
	var c *Counter
	var f *FloatCounter
	var g *Gauge
	var h *Histogram
	c.Add(7)
	c.Inc()
	f.Add(1.5)
	g.Set(3)
	g.Add(1)
	h.Observe(2)
	if c.Load() != 0 || f.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil metrics must read zero")
	}

	var reg *Registry
	if reg.Counter("x", "") != nil || reg.FloatCounter("x", "") != nil ||
		reg.Gauge("x", "") != nil || reg.Histogram("x", "", nil) != nil {
		t.Error("nil registry must hand out nil metrics")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Error("nil registry must expose nothing")
	}

	var tr *Tracer
	if _, ok := tr.Last(); ok {
		t.Error("nil tracer must have no traces")
	}
	if tr.Traces() != nil {
		t.Error("nil tracer Traces must be nil")
	}
	tr.Push(&Trace{}) // must not panic
	if tr.NextID() != 0 {
		t.Error("nil tracer NextID must be 0")
	}
}

func TestRegistryReuseAndPanics(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same_total", "h")
	b := reg.Counter("same_total", "h")
	if a != b {
		t.Error("re-registration must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("type mismatch must panic")
		}
	}()
	reg.Gauge("same_total", "h")
}
