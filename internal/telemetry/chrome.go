package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one entry in the Chrome trace_event JSON format
// ("X" complete events), loadable in about:tracing and Perfetto.
// pid groups a trace's spans into one process row; tid is the shard
// the span ran on, so shard pipelines line up as parallel tracks.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  uint64            `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders traces as a Chrome trace_event JSON
// document. Timestamps are microseconds relative to the earliest span
// start across all traces, so the file is stable to re-generation of
// the same workload and small in absolute magnitude.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	var epoch time.Time
	for _, tr := range traces {
		if tr == nil || tr.Root == nil {
			continue
		}
		if epoch.IsZero() || tr.Root.Start.Before(epoch) {
			epoch = tr.Root.Start
		}
	}
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, tr := range traces {
		if tr == nil || tr.Root == nil {
			continue
		}
		var walk func(s *Span)
		walk = func(s *Span) {
			ev := chromeEvent{
				Name: s.Name,
				Ph:   "X",
				Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
				Dur:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
				Pid:  tr.ID,
				Tid:  s.Shard,
			}
			if s.Modeled != 0 || s.Err != "" || len(s.Attrs) > 0 {
				ev.Args = make(map[string]string, len(s.Attrs)+2)
				for _, a := range s.Attrs {
					ev.Args[a.Key] = a.Value
				}
				if s.Modeled != 0 {
					ev.Args["modeled_seconds"] = formatFloat(s.Modeled)
				}
				if s.Err != "" {
					ev.Args["err"] = s.Err
				}
			}
			file.TraceEvents = append(file.TraceEvents, ev)
			for _, c := range s.Child {
				walk(c)
			}
		}
		walk(tr.Root)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
