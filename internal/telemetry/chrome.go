package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one entry in the Chrome trace_event JSON format,
// loadable in about:tracing and Perfetto: "X" complete events for
// spans, "M" metadata events naming the process and thread rows. pid
// groups spans into one process row per Span.Proc lane (one per trace
// when no span names a proc); tid is the shard the span ran on, so
// shard pipelines line up as parallel tracks.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  uint64            `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeProcs assigns process ids to proc names in first-encounter
// order and remembers which (pid, tid) thread rows exist, so the
// encoder can emit process_name/thread_name metadata events and the
// viewer shows labeled lanes instead of bare numbers.
type chromeProcs struct {
	pids      map[string]uint64
	procOrder []string
	threads   map[[2]uint64]bool
	thrOrder  [][2]uint64
}

func (cp *chromeProcs) pid(proc string) uint64 {
	if p, ok := cp.pids[proc]; ok {
		return p
	}
	p := uint64(len(cp.procOrder) + 1)
	cp.pids[proc] = p
	cp.procOrder = append(cp.procOrder, proc)
	return p
}

func (cp *chromeProcs) thread(pid uint64, tid int) {
	key := [2]uint64{pid, uint64(tid)}
	if !cp.threads[key] {
		cp.threads[key] = true
		cp.thrOrder = append(cp.thrOrder, key)
	}
}

// spanProc resolves a span's effective process lane: its own Proc if
// set, else the inherited one.
func spanProc(s *Span, inherited string) string {
	if s.Proc != "" {
		return s.Proc
	}
	return inherited
}

// WriteChromeTrace renders traces as a Chrome trace_event JSON
// document. Timestamps are microseconds relative to the earliest span
// start across all traces, so the file is stable to re-generation of
// the same workload and small in absolute magnitude. Spans are grouped
// into process rows by Span.Proc (inherited down the tree; a trace
// whose spans name no proc gets its own "trace <ID>" row), with
// process_name and per-shard thread_name metadata events so the rows
// are labeled in the viewer.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	var epoch time.Time
	for _, tr := range traces {
		if tr == nil || tr.Root == nil {
			continue
		}
		if epoch.IsZero() || tr.Root.Start.Before(epoch) {
			epoch = tr.Root.Start
		}
	}
	cp := &chromeProcs{pids: make(map[string]uint64), threads: make(map[[2]uint64]bool)}
	var spans []chromeEvent
	for _, tr := range traces {
		if tr == nil || tr.Root == nil {
			continue
		}
		defaultProc := fmt.Sprintf("trace %d", tr.ID)
		var walk func(s *Span, proc string)
		walk = func(s *Span, proc string) {
			proc = spanProc(s, proc)
			pid := cp.pid(proc)
			cp.thread(pid, s.Shard)
			ev := chromeEvent{
				Name: s.Name,
				Ph:   "X",
				Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
				Dur:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
				Pid:  pid,
				Tid:  s.Shard,
			}
			if s.Modeled != 0 || s.Err != "" || len(s.Attrs) > 0 {
				ev.Args = make(map[string]string, len(s.Attrs)+2)
				for _, a := range s.Attrs {
					ev.Args[a.Key] = a.Value
				}
				if s.Modeled != 0 {
					ev.Args["modeled_seconds"] = formatFloat(s.Modeled)
				}
				if s.Err != "" {
					ev.Args["err"] = s.Err
				}
			}
			spans = append(spans, ev)
			for _, c := range s.Child {
				walk(c, proc)
			}
		}
		walk(tr.Root, defaultProc)
	}
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, proc := range cp.procOrder {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: cp.pids[proc],
			Args: map[string]string{"name": proc},
		})
	}
	for _, th := range cp.thrOrder {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: th[0], Tid: int(th[1]),
			Args: map[string]string{"name": fmt.Sprintf("shard %d", th[1])},
		})
	}
	file.TraceEvents = append(file.TraceEvents, spans...)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}
