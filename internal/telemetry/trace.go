package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (function name, shard
// id, cycle count, …). A small slice beats a map here: spans carry a
// handful of attrs and are built on the request path.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a request's journey through the
// pipeline: enqueue → coalesce → setup → transfer-in → kernel →
// transfer-out → drain. It carries both the host wall-clock interval
// and the modeled simulator seconds of the stage (the paper's cycle /
// bandwidth model), because on a cost simulator those deliberately
// disagree and the ratio is itself diagnostic.
type Span struct {
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Modeled float64   `json:"modeled_seconds,omitempty"`
	Err     string    `json:"err,omitempty"`
	Attrs   []Attr    `json:"attrs,omitempty"`
	Shard   int       `json:"shard"`
	// Proc names the process lane the span (and, unless overridden,
	// its subtree) belongs to — "cluster", "replica/2" — so one
	// propagated trace renders each replica's pipeline as its own
	// process row in the Chrome export. Empty spans inherit the
	// nearest ancestor's Proc.
	Proc  string  `json:"proc,omitempty"`
	Child []*Span `json:"children,omitempty"`
}

// Wall returns the span's wall-clock duration.
func (s *Span) Wall() time.Duration { return s.End.Sub(s.Start) }

// SetAttr appends an annotation.
func (s *Span) SetAttr(key, value string) {
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// AddChild appends a child span and returns it.
func (s *Span) AddChild(c *Span) *Span {
	s.Child = append(s.Child, c)
	return c
}

// Trace is one request's completed span tree.
type Trace struct {
	ID   uint64 `json:"id"`
	Root *Span  `json:"root"`
}

// Tracer retains the last N completed traces in a ring buffer.
// Push is lock-protected but runs once per completed request (not
// per element or per stage), so it is far off the hot path; readers
// get copies of the slice headers.
type Tracer struct {
	mu   sync.Mutex
	ring []*Trace
	next int
	n    int // traces stored (≤ len(ring))

	ids atomic.Uint64
}

// NewTracer retains up to depth completed traces (depth ≤ 0 is
// clamped to 1).
func NewTracer(depth int) *Tracer {
	if depth <= 0 {
		depth = 1
	}
	return &Tracer{ring: make([]*Trace, depth)}
}

// NextID allocates a trace id.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Add(1)
}

// Push records a completed trace, evicting the oldest when full.
func (t *Tracer) Push(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Last returns the most recently completed trace, or false when none
// has completed yet.
func (t *Tracer) Last() (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return nil, false
	}
	idx := (t.next - 1 + len(t.ring)) % len(t.ring)
	return t.ring[idx], true
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, t.n)
	start := t.next - t.n
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[((start+i)%len(t.ring)+len(t.ring))%len(t.ring)])
	}
	return out
}

// WriteJSON renders the retained traces (oldest first) as one
// indented JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Traces())
}
