package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestPrometheusGolden locks down the exposition format: HELP/TYPE
// headers once per family, label series grouped and sorted, histogram
// le-buckets cumulative with sum and count.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine_requests_total", "EvaluateBatch calls accepted").Add(42)
	reg.FloatCounter("engine_setup_seconds_total", "modeled setup seconds").Add(0.125)
	reg.Gauge("engine_cached_specs", "resident specs").Set(3)
	// Two series of one family, registered out of label order.
	reg.Counter(`engine_shard_batches_total{shard="1"}`, "batches per shard").Add(7)
	reg.Counter(`engine_shard_batches_total{shard="0"}`, "batches per shard").Add(9)
	h := reg.Histogram("engine_request_latency_seconds", "request latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(0.05)
	h.Observe(2)
	lh := reg.Histogram(`engine_shard_latency_seconds{shard="0"}`, "per-shard latency", []float64{0.5})
	lh.Observe(0.25)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", sb.String())
}

// TestChromeTraceGolden locks down the trace_event encoding with a
// fully deterministic span tree.
func TestChromeTraceGolden(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	root := &Span{Name: "request", Shard: 1, Start: t0, End: t0.Add(5 * time.Millisecond)}
	root.SetAttr("fn", "exp")
	root.SetAttr("method", "fx-l-lut")
	queue := &Span{Name: "queue", Shard: 1, Start: t0, End: t0.Add(500 * time.Microsecond)}
	batch := &Span{Name: "batch[0]", Shard: 1, Start: t0.Add(500 * time.Microsecond),
		End: t0.Add(5 * time.Millisecond), Modeled: 0.0025}
	kern := &Span{Name: "kernel", Shard: 1, Start: t0.Add(time.Millisecond),
		End: t0.Add(4 * time.Millisecond), Modeled: 0.002}
	kern.SetAttr("cycles", "700000")
	batch.AddChild(kern)
	failed := &Span{Name: "error", Shard: 1, Start: t0.Add(5 * time.Millisecond),
		End: t0.Add(5 * time.Millisecond), Err: "mram exhausted"}
	root.AddChild(queue)
	root.AddChild(batch)
	root.AddChild(failed)

	// A second, propagated trace: a cluster root span grafting a
	// replica engine subtree — per-replica process rows via Span.Proc,
	// inherited down the subtree.
	croot := &Span{Name: "cluster_request", Proc: "cluster", Shard: 0,
		Start: t0.Add(6 * time.Millisecond), End: t0.Add(9 * time.Millisecond)}
	route := &Span{Name: "route", Shard: 0, Start: t0.Add(6 * time.Millisecond),
		End: t0.Add(6*time.Millisecond + 100*time.Microsecond)}
	route.SetAttr("replica", "1")
	engRoot := &Span{Name: "request", Proc: "replica/1", Shard: 1,
		Start: t0.Add(6*time.Millisecond + 100*time.Microsecond), End: t0.Add(9 * time.Millisecond)}
	engKern := &Span{Name: "kernel", Shard: 1,
		Start: t0.Add(7 * time.Millisecond), End: t0.Add(8 * time.Millisecond), Modeled: 0.001}
	engRoot.AddChild(engKern)
	croot.AddChild(route)
	croot.AddChild(engRoot)

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, []*Trace{{ID: 9, Root: root}, {ID: 10, Root: croot}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"process_name"`, `"thread_name"`, `"cluster"`, `"replica/1"`, `"trace 9"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace lacks %s", want)
		}
	}
	checkGolden(t, "trace.chrome.golden", out)
}
