package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func span(name string, shard int, t0 time.Time, off, dur time.Duration) *Span {
	return &Span{Name: name, Shard: shard, Start: t0.Add(off), End: t0.Add(off + dur)}
}

func testTrace(id uint64, t0 time.Time) *Trace {
	root := span("request", 0, t0, 0, 10*time.Millisecond)
	root.SetAttr("fn", "sigmoid")
	q := span("queue", 0, t0, 0, time.Millisecond)
	b := span("batch[0]", 0, t0, time.Millisecond, 9*time.Millisecond)
	b.Modeled = 0.5
	b.AddChild(span("kernel", 0, t0, 2*time.Millisecond, 6*time.Millisecond))
	root.AddChild(q)
	root.AddChild(b)
	return &Trace{ID: id, Root: root}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	t0 := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	if _, ok := tr.Last(); ok {
		t.Fatal("empty tracer must have no last trace")
	}
	for i := 1; i <= 5; i++ {
		tr.Push(testTrace(uint64(i), t0))
	}
	last, ok := tr.Last()
	if !ok || last.ID != 5 {
		t.Fatalf("Last = %v, %v; want trace 5", last, ok)
	}
	got := tr.Traces()
	if len(got) != 3 || got[0].ID != 3 || got[2].ID != 5 {
		ids := []uint64{}
		for _, g := range got {
			ids = append(ids, g.ID)
		}
		t.Fatalf("ring = %v, want [3 4 5]", ids)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(8)
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Push(testTrace(tr.NextID(), t0))
				tr.Last()
				tr.Traces()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Traces()); got != 8 {
		t.Errorf("retained %d traces, want 8", got)
	}
}

func TestSpanLifecycle(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	tr := testTrace(1, t0)
	if got := tr.Root.Wall(); got != 10*time.Millisecond {
		t.Errorf("root wall = %v", got)
	}
	if len(tr.Root.Child) != 2 {
		t.Fatalf("children = %d", len(tr.Root.Child))
	}
	// Round-trips through JSON with the tree intact.
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Root.Child[1].Child[0].Name != "kernel" {
		t.Error("span tree lost through JSON")
	}
	if back.Root.Attrs[0].Value != "sigmoid" {
		t.Error("attrs lost through JSON")
	}
}

func TestChromeTraceShape(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, []*Trace{testTrace(1, t0), testTrace(2, t0.Add(time.Second))}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// 8 X span events plus the labeling metadata: one process_name per
	// trace (no Span.Proc set, so each trace is its own lane) and one
	// thread_name per (pid, shard 0) row.
	if len(doc.TraceEvents) != 12 {
		t.Fatalf("events = %d, want 12", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta["ph"] != "M" || meta["name"] != "process_name" {
		t.Errorf("first event = %v, want process_name metadata", meta)
	}
	if args := meta["args"].(map[string]any); args["name"] != "trace 1" {
		t.Errorf("process name = %v, want trace 1", args["name"])
	}
	if th := doc.TraceEvents[2]; th["name"] != "thread_name" {
		t.Errorf("event 2 = %v, want thread_name metadata", th)
	}
	ev := doc.TraceEvents[4]
	for _, k := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := ev[k]; !ok {
			t.Errorf("event missing %q", k)
		}
	}
	if ev["ph"] != "X" {
		t.Errorf("ph = %v, want X", ev["ph"])
	}
	// Timestamps are relative to the earliest span: the first trace
	// starts at 0, the second a second later.
	if ts := ev["ts"].(float64); ts != 0 {
		t.Errorf("first ts = %v, want 0", ts)
	}
	if ts := doc.TraceEvents[8]["ts"].(float64); ts != 1e6 {
		t.Errorf("second trace ts = %v, want 1e6", ts)
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "requests").Add(3)
	tracer := NewTracer(4)
	t0 := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	for i := 1; i <= 3; i++ {
		tracer.Push(testTrace(uint64(i), t0))
	}
	tel := &Telemetry{Registry: reg, Tracer: tracer}
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "requests_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get("/debug/trace")
	var traces []*Trace
	if code != 200 {
		t.Fatalf("/debug/trace = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil || len(traces) != 3 {
		t.Errorf("/debug/trace: %v, %d traces", err, len(traces))
	}
	code, body = get("/debug/trace?n=1")
	if err := json.Unmarshal([]byte(body), &traces); err != nil || len(traces) != 1 {
		t.Errorf("/debug/trace?n=1: %v, %d traces (code %d)", err, len(traces), code)
	}
	code, body = get("/debug/trace?format=chrome")
	if code != 200 || !strings.Contains(body, "traceEvents") {
		t.Errorf("chrome format = %d %q", code, body[:min(len(body), 80)])
	}
	if code, _ := get("/debug/trace?format=nope"); code != 400 {
		t.Errorf("bad format = %d, want 400", code)
	}
	if code, _ := get("/debug/trace?n=x"); code != 400 {
		t.Errorf("bad n = %d, want 400", code)
	}

	// Timeline and ledger disabled on this handle: both 404.
	if code, _ := get("/debug/timeline"); code != 404 {
		t.Errorf("disabled timeline = %d, want 404", code)
	}
	if code, _ := get("/debug/ledger"); code != 404 {
		t.Errorf("disabled ledger = %d, want 404", code)
	}

	// Tracing disabled: /metrics still works, /debug/trace 404s.
	off := httptest.NewServer((&Telemetry{Registry: reg}).Handler())
	defer off.Close()
	resp, err := off.Client().Get(off.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("disabled tracer = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPTimelineLedger serves enabled timeline and ledger documents.
func TestHTTPTimelineLedger(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "requests").Add(6)
	tl := NewTimeline(reg, TimelineConfig{Enabled: true, BucketWidth: time.Second, Buckets: 4})
	tl.Tick(time.Date(2026, 8, 7, 12, 0, 1, 0, time.UTC))
	led := NewLedger(reg, 0)
	led.Add(LedgerKey{Tenant: "acme", Function: "sin", Method: "m-lut"}, LedgerEntry{Requests: 1, KernelCycles: 99})

	tel := &Telemetry{Registry: reg, Timeline: tl, LedgerJSON: func() any { return led.Snapshot() }}
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	var snap TimelineSnapshot
	if err := json.Unmarshal([]byte(get("/debug/timeline")), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Windows) != 1 || snap.Windows[0].Values["requests_total:rate"] != 6 {
		t.Fatalf("timeline = %+v", snap)
	}
	var ls LedgerSnapshot
	if err := json.Unmarshal([]byte(get("/debug/ledger")), &ls); err != nil {
		t.Fatal(err)
	}
	if len(ls.Rows) != 1 || ls.Rows[0].Tenant != "acme" || ls.Rows[0].KernelCycles != 99 {
		t.Fatalf("ledger = %+v", ls)
	}
}
