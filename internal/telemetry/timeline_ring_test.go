package telemetry

import (
	"sync"
	"testing"
	"time"
)

// The ring must overwrite oldest-first once full and Snapshot must
// return the surviving windows in chronological order.
func TestTimelineRingWraparound(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("wrap_total", "test")
	tl := NewTimeline(reg, TimelineConfig{Enabled: true, BucketWidth: time.Second, Buckets: 3})
	base := time.Unix(5000, 0)
	// 7 ticks, window i (1-based) carries i increments → rate i/s.
	for i := 1; i <= 7; i++ {
		c.Add(uint64(i))
		tl.Tick(base.Add(time.Duration(i) * time.Second))
	}
	snap := tl.Snapshot()
	if len(snap.Windows) != 3 {
		t.Fatalf("want 3 retained windows, got %d", len(snap.Windows))
	}
	for i, w := range snap.Windows {
		wantRate := float64(i + 5) // windows 5, 6, 7 survive
		if got := w.Values["wrap_total:rate"]; got != wantRate {
			t.Fatalf("window %d rate = %v, want %v", i, got, wantRate)
		}
		wantEnd := base.Add(time.Duration(i+5) * time.Second)
		if !w.End.Equal(wantEnd) {
			t.Fatalf("window %d end = %v, want %v (not chronological)", i, w.End, wantEnd)
		}
		if i > 0 && !w.Start.Equal(snap.Windows[i-1].End) {
			t.Fatalf("window %d start %v does not abut previous end %v", i, w.Start, snap.Windows[i-1].End)
		}
	}
	// Wrap again: 3 more ticks fully replace the ring's contents.
	for i := 8; i <= 10; i++ {
		c.Add(uint64(i))
		tl.Tick(base.Add(time.Duration(i) * time.Second))
	}
	snap = tl.Snapshot()
	if got := snap.Windows[0].Values["wrap_total:rate"]; got != 8 {
		t.Fatalf("after second wrap, oldest rate = %v, want 8", got)
	}
}

// Close must seal the in-progress partial window: a session shorter
// than BucketWidth still leaves its traffic visible. Concurrent
// traffic during Start/Close exercises the locking under -race.
func TestTimelineCloseSealsPartialWindow(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("seal_total", "test")
	tl := NewTimeline(reg, TimelineConfig{Enabled: true, BucketWidth: time.Hour, Buckets: 4})
	tl.Start()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	tl.Close() // the ticker (1h) never fired; Close takes the only sample
	snap := tl.Snapshot()
	if len(snap.Windows) == 0 {
		t.Fatal("Close sealed no window")
	}
	last := snap.Windows[len(snap.Windows)-1]
	rate, ok := last.Values["seal_total:rate"]
	if !ok || rate <= 0 {
		t.Fatalf("sealed window lost the traffic: %+v", last.Values)
	}
	// All 1000 increments must be in the sealed window (rate × width).
	width := last.End.Sub(last.Start).Seconds()
	if got := rate * width; got < 999.5 || got > 1000.5 {
		t.Fatalf("sealed window carries %v increments, want 1000", got)
	}
	tl.Close() // second Close is a no-op, not a deadlock
	// The windows stay readable after Close.
	if got := tl.Snapshot(); len(got.Windows) != len(snap.Windows) {
		t.Fatalf("windows changed after second Close: %d vs %d", len(got.Windows), len(snap.Windows))
	}
}
