package telemetry

import (
	"sort"
	"sync"
	"time"
)

// TimelineConfig configures the windowed time-series store.
type TimelineConfig struct {
	// Enabled turns the timeline on; the zero value leaves it off and
	// the owning subsystem holds a nil *Timeline (one nil check on the
	// snapshot path, nothing on the serving path).
	Enabled bool
	// BucketWidth is the window width (default 1s).
	BucketWidth time.Duration
	// Buckets is the ring capacity — how many windows are retained
	// (default 60: one minute of 1s windows).
	Buckets int
}

func (c TimelineConfig) withDefaults() TimelineConfig {
	if c.BucketWidth <= 0 {
		c.BucketWidth = time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 60
	}
	return c
}

// TimelineWindow is one closed bucket: derived series values sampled
// over [Start, End). Counter and float-counter families appear as
// "<name>:rate" (per-second delta over the window); gauges appear
// under their own name (value at window close); histograms appear as
// "<name>:rate" (observations/s) plus "<name>:p50" / ":p95" / ":p99"
// estimated from the window's bucket deltas. Counter series with no
// movement in the window are omitted, so idle windows stay small.
type TimelineWindow struct {
	Start  time.Time          `json:"start"`
	End    time.Time          `json:"end"`
	Values map[string]float64 `json:"values"`
}

// TimelineSnapshot is the /debug/timeline document: the retained
// windows, oldest first.
type TimelineSnapshot struct {
	BucketSeconds float64          `json:"bucket_seconds"`
	Windows       []TimelineWindow `json:"windows"`
}

// Timeline turns a registry's cumulative series into fixed-capacity
// windowed views: rates for counters, values for gauges, windowed
// percentiles for histograms. It samples the registry once per bucket
// (Tick) — the serving hot path never touches it — and keeps the last
// Buckets windows in a ring. All methods are nil-safe and safe for
// concurrent use.
type Timeline struct {
	reg   *Registry
	width time.Duration

	mu      sync.Mutex
	ring    []TimelineWindow
	next    int
	n       int
	last    time.Time           // previous tick time (window start)
	prevVal map[string]float64  // counter/float_counter cumulative values
	prevCnt map[string][]uint64 // histogram cumulative bucket counts
	prevNum map[string]uint64   // histogram cumulative observation counts

	stop chan struct{}
	done chan struct{}
}

// NewTimeline builds a timeline over reg. It does not start the
// background ticker — call Start for live operation, or drive Tick
// directly for deterministic tests. Returns nil when cfg.Enabled is
// false.
func NewTimeline(reg *Registry, cfg TimelineConfig) *Timeline {
	if !cfg.Enabled {
		return nil
	}
	cfg = cfg.withDefaults()
	return &Timeline{
		reg:     reg,
		width:   cfg.BucketWidth,
		ring:    make([]TimelineWindow, cfg.Buckets),
		prevVal: make(map[string]float64),
		prevCnt: make(map[string][]uint64),
		prevNum: make(map[string]uint64),
	}
}

// Start launches the background ticker: one Tick per BucketWidth until
// Close. Idempotent per timeline; nil-safe.
func (t *Timeline) Start() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.stop != nil {
		t.mu.Unlock()
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	stop, done := t.stop, t.done
	t.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(t.width)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-ticker.C:
				t.Tick(now)
			}
		}
	}()
}

// Close stops the background ticker and seals the final partial
// window with one last Tick, so a session shorter than BucketWidth
// still leaves its traffic visible in the retained windows (no-op
// when Start was never called). The windows stay readable after
// Close.
func (t *Timeline) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
		t.Tick(time.Now())
	}
}

// Tick closes one window at now: sample the registry, derive rates and
// percentiles against the previous sample, and push the window into
// the ring. The first Tick establishes the baseline from process
// start (deltas are since-construction). Exported so tests can drive
// deterministic timelines with fixed clocks.
func (t *Timeline) Tick(now time.Time) {
	if t == nil {
		return
	}
	points := t.reg.Series()
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.last
	if start.IsZero() {
		start = now.Add(-t.width)
	}
	t.last = now
	secs := now.Sub(start).Seconds()
	if secs <= 0 {
		secs = t.width.Seconds()
	}
	w := TimelineWindow{Start: start, End: now, Values: make(map[string]float64)}
	for _, p := range points {
		switch p.Kind {
		case "counter", "float_counter":
			delta := p.Value - t.prevVal[p.Name]
			t.prevVal[p.Name] = p.Value
			if delta != 0 {
				w.Values[p.Name+":rate"] = delta / secs
			}
		case "gauge":
			w.Values[p.Name] = p.Value
		case "histogram":
			s := p.Hist
			prev := t.prevCnt[p.Name]
			deltas := make([]uint64, len(s.Counts))
			var total uint64
			for i, c := range s.Counts {
				d := c
				if i < len(prev) {
					d -= prev[i]
				}
				deltas[i] = d
				total += d
			}
			t.prevCnt[p.Name] = s.Counts
			nd := s.Count - t.prevNum[p.Name]
			t.prevNum[p.Name] = s.Count
			if total == 0 {
				continue
			}
			w.Values[p.Name+":rate"] = float64(nd) / secs
			w.Values[p.Name+":p50"] = bucketQuantile(0.50, s.Bounds, deltas, total)
			w.Values[p.Name+":p95"] = bucketQuantile(0.95, s.Bounds, deltas, total)
			w.Values[p.Name+":p99"] = bucketQuantile(0.99, s.Bounds, deltas, total)
		}
	}
	t.ring[t.next] = w
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
}

// bucketQuantile estimates quantile q from a window's bucket deltas
// the way PromQL's histogram_quantile does: find the bucket the rank
// falls in and interpolate linearly within it. Ranks landing in the
// +Inf bucket clamp to the highest finite bound (the standard
// convention — the histogram cannot resolve beyond its ladder).
func bucketQuantile(q float64, bounds []float64, deltas []uint64, total uint64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, d := range deltas {
		prev := cum
		cum += float64(d)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the last finite bound.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if d == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(d)
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Snapshot returns the retained windows, oldest first. Nil-safe: a
// nil timeline returns an empty snapshot.
func (t *Timeline) Snapshot() TimelineSnapshot {
	if t == nil {
		return TimelineSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TimelineSnapshot{
		BucketSeconds: t.width.Seconds(),
		Windows:       make([]TimelineWindow, 0, t.n),
	}
	start := t.next - t.n
	for i := 0; i < t.n; i++ {
		out.Windows = append(out.Windows, t.ring[((start+i)%len(t.ring)+len(t.ring))%len(t.ring)])
	}
	return out
}

// SeriesNames lists every derived series name present in the retained
// windows, sorted — the discovery call tpltop uses to build columns.
func (t *Timeline) SeriesNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[string]bool{}
	for i := 0; i < t.n; i++ {
		idx := ((t.next-t.n+i)%len(t.ring) + len(t.ring)) % len(t.ring)
		for name := range t.ring[idx].Values {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
