// Package promparse parses Prometheus 0.0.4 text exposition into a
// flat series-name → value map. It is the shared client-side half of
// internal/telemetry's exposition: tplwatch and tpltop both scrape
// registries this package's server side rendered, so anything
// unparseable is a bug worth surfacing, not a case to skip.
package promparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses Prometheus text exposition into a series-name → value
// map. Series names keep their label sets verbatim ("name{k=\"v\"}");
// comment and blank lines are skipped; malformed lines are an error.
func Parse(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the field after the last space outside braces —
		// label values may themselves contain spaces.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("metrics line %d: no value in %q", ln+1, line)
		}
		name, val := line[:i], line[i+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: bad value %q: %v", ln+1, val, err)
		}
		out[name] = f
	}
	return out, nil
}

// Family strips the label block from a series name ("a{b=\"c\"}" →
// "a").
func Family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Label extracts one label's value from a series name, or "" when the
// label is absent.
func Label(name, key string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	rest := name[i+1 : len(name)-1]
	for _, kv := range splitLabels(rest) {
		j := strings.IndexByte(kv, '=')
		if j < 0 {
			continue
		}
		if kv[:j] == key {
			v := kv[j+1:]
			if unq, err := strconv.Unquote(v); err == nil {
				return unq
			}
			return v
		}
	}
	return ""
}

// splitLabels splits a label block body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
