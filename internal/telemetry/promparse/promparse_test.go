package promparse

import "testing"

func TestParse(t *testing.T) {
	text := `# HELP engine_requests_total completed requests
# TYPE engine_requests_total counter
engine_requests_total 42

engine_accuracy_abs_error{fn="sin",method="l-lut(i)",tenant="a b"}_bucket{le="0.001"} 7
engine_accuracy_samples_total 9216
engine_queue_depth -3
pim_cycles 1.5e+06
`
	m, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if m["engine_requests_total"] != 42 {
		t.Fatalf("requests = %v", m["engine_requests_total"])
	}
	if m["engine_accuracy_samples_total"] != 9216 {
		t.Fatalf("samples = %v", m["engine_accuracy_samples_total"])
	}
	if m["engine_queue_depth"] != -3 {
		t.Fatalf("gauge = %v", m["engine_queue_depth"])
	}
	if m["pim_cycles"] != 1.5e6 {
		t.Fatalf("float = %v", m["pim_cycles"])
	}
	if m[`engine_accuracy_abs_error{fn="sin",method="l-lut(i)",tenant="a b"}_bucket{le="0.001"}`] != 7 {
		t.Fatalf("labeled series missing: %v", m)
	}
	if len(m) != 5 {
		t.Fatalf("parsed %d series, want 5", len(m))
	}

	for _, bad := range []string{"loneword", "name notanumber"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestFamily(t *testing.T) {
	if got := Family(`cluster_routed_total{replica="3"}`); got != "cluster_routed_total" {
		t.Fatalf("Family = %q", got)
	}
	if got := Family("engine_requests_total"); got != "engine_requests_total" {
		t.Fatalf("Family = %q", got)
	}
}

func TestLabel(t *testing.T) {
	name := `tenant_kernel_cycles_total{tenant="acme, inc",fn="sin",method="l-lut(i)"}`
	if got := Label(name, "tenant"); got != "acme, inc" {
		t.Fatalf("tenant = %q", got)
	}
	if got := Label(name, "fn"); got != "sin" {
		t.Fatalf("fn = %q", got)
	}
	if got := Label(name, "method"); got != "l-lut(i)" {
		t.Fatalf("method = %q", got)
	}
	if got := Label(name, "missing"); got != "" {
		t.Fatalf("missing = %q", got)
	}
	if got := Label("unlabeled_total", "tenant"); got != "" {
		t.Fatalf("unlabeled = %q", got)
	}
}
