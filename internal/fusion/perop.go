package fusion

import (
	"fmt"

	"transpimlib/internal/core"
)

// perOpStep is one node of the per-op decomposition that needs its own
// engine round trip: a vector elementwise op or a reduction, lowered to
// a single-node mini program evaluated like any fused program (which is
// what makes the per-step cycle accounting of the two paths exactly
// comparable).
type perOpStep struct {
	node     int
	mini     *Compiled
	vecArgs  []int // operand node ids, mini vector-input order
	scalArgs []int // runtime scalar node ids, mini scalar-input order
}

// perOp lazily lowers every live device node to its per-op form.
// Func nodes go through the engine's ordinary batch path directly;
// vector elementwise and reduction nodes become mini programs.
func (c *Compiled) perOp() ([]perOpStep, error) {
	c.perOpOnce.Do(func() {
		for i, nd := range c.nodes {
			if !c.live[i] {
				continue
			}
			switch {
			case nd.kind == nElem && !nd.scalar:
				st, err := c.miniElem(i)
				if err != nil {
					c.perOpErr = err
					return
				}
				c.perOpSteps = append(c.perOpSteps, st)
			case nd.kind == nReduce:
				q := NewProgram(fmt.Sprintf("%s/%s#%d", c.name, nd.rop, i))
				q.Return(q.reduce(nd.rop, q.Input()))
				mini, err := Compile(q, c.par, c.model)
				if err != nil {
					c.perOpErr = err
					return
				}
				c.perOpSteps = append(c.perOpSteps, perOpStep{
					node: i, mini: mini, vecArgs: []int{nd.a},
				})
			}
		}
	})
	return c.perOpSteps, c.perOpErr
}

// miniElem lowers vector elementwise node v to a single-node program:
// one Input per distinct vector operand, one ScalarInput per distinct
// runtime scalar operand, constants folded back to Const.
func (c *Compiled) miniElem(v int) (perOpStep, error) {
	nd := &c.nodes[v]
	q := NewProgram(fmt.Sprintf("%s/%s#%d", c.name, nd.eop, v))
	st := perOpStep{node: v}
	vals := map[int]Value{}
	get := func(opnd int) Value {
		od := &c.nodes[opnd]
		if !od.scalar {
			if val, ok := vals[opnd]; ok {
				return val
			}
			val := q.Input()
			vals[opnd] = val
			st.vecArgs = append(st.vecArgs, opnd)
			return val
		}
		s := c.derefScalar(opnd)
		if c.foldable[s] {
			return q.Const(c.foldVal[s])
		}
		if val, ok := vals[s]; ok {
			return val
		}
		val := q.ScalarInput()
		vals[s] = val
		st.scalArgs = append(st.scalArgs, s)
		return val
	}
	a := get(nd.a)
	b := get(nd.b)
	q.Return(q.elem(nd.eop, a, b))
	mini, err := Compile(q, c.par, c.model)
	st.mini = mini
	return st, err
}

// RunPerOp evaluates the program node by node — the per-op baseline:
// every device node pays its own host↔PIM round trip through the
// supplied callbacks while host scalar arithmetic stays free, exactly
// as in the fused path. evalFunc runs one transcendental through the
// engine's ordinary batch path; evalMini runs a single-node mini
// program. Outputs are bit-identical to the fused evaluation: the same
// operator tables, the same elementwise arithmetic, and reductions
// split over the same lanes combined in the same order.
func RunPerOp(c *Compiled, inputs [][]float32, scalars []float32,
	evalFunc func(fn core.Function, xs []float32) ([]float32, error),
	evalMini func(mini *Compiled, ins [][]float32, scalars []float32) ([]float32, error),
) ([]float32, error) {
	if _, err := c.CheckArgs(inputs, scalars); err != nil {
		return nil, err
	}
	steps, err := c.perOp()
	if err != nil {
		return nil, err
	}
	byNode := make(map[int]*perOpStep, len(steps))
	for i := range steps {
		byNode[steps[i].node] = &steps[i]
	}

	vec := make([][]float32, len(c.nodes))
	scal := make([]float32, len(c.nodes))
	for i := range c.nodes {
		nd := &c.nodes[i]
		if !c.live[i] {
			continue
		}
		switch nd.kind {
		case nInput:
			vec[i] = inputs[nd.idx]
		case nScalarInput:
			scal[i] = scalars[nd.idx]
		case nConst:
			scal[i] = nd.c
		case nBroadcast:
			scal[i] = scal[nd.a]
		case nFunc:
			out, err := evalFunc(nd.fn, vec[nd.a])
			if err != nil {
				return nil, err
			}
			vec[i] = out
		case nElem:
			if nd.scalar {
				scal[i] = core.ElemApply(nd.eop, scal[nd.a], scal[nd.b])
				continue
			}
			st := byNode[i]
			ins := make([][]float32, len(st.vecArgs))
			for j, id := range st.vecArgs {
				ins[j] = vec[id]
			}
			var ss []float32
			for _, id := range st.scalArgs {
				ss = append(ss, scal[id])
			}
			out, err := evalMini(st.mini, ins, ss)
			if err != nil {
				return nil, err
			}
			vec[i] = out
		case nReduce:
			st := byNode[i]
			out, err := evalMini(st.mini, [][]float32{vec[nd.a]}, nil)
			if err != nil {
				return nil, err
			}
			scal[i] = out[0]
		}
	}
	if c.retScalar {
		return []float32{scal[c.ret]}, nil
	}
	return vec[c.ret], nil
}
