package fusion

import (
	"strings"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
)

func testParams() core.Params {
	return core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}
}

func mustCompile(t *testing.T, p *Program) *Compiled {
	t.Helper()
	c, err := Compile(p, testParams(), pimsim.Default())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func wantCompileError(t *testing.T, p *Program, frag string) {
	t.Helper()
	if _, err := Compile(p, testParams(), pimsim.Default()); err == nil {
		t.Errorf("Compile succeeded, want error containing %q", frag)
	} else if !strings.Contains(err.Error(), frag) {
		t.Errorf("Compile error %q does not mention %q", err, frag)
	}
}

// The three end-to-end graphs, mirroring internal/workloads/fused.go.

func softmaxProg() *Program {
	p := NewProgram("softmax")
	x := p.Input()
	m := p.ReduceMax(x)
	e := p.Func(core.Exp, p.Sub(x, p.Broadcast(m)))
	s := p.ReduceSum(e)
	p.Return(p.Mul(e, p.Div(p.Const(1), p.Broadcast(s))))
	return p
}

func ffnProg() *Program {
	p := NewProgram("ffn-gelu")
	h, bias, gamma := p.Input(), p.Input(), p.Input()
	p.Return(p.Mul(p.Func(core.GELU, p.Add(h, bias)), gamma))
	return p
}

func logisticProg() *Program {
	p := NewProgram("logistic-step")
	z, y := p.Input(), p.Input()
	lr, invN := p.ScalarInput(), p.ScalarInput()
	g := p.Sub(p.Func(core.Sigmoid, z), y)
	mu := p.Mul(p.Broadcast(p.ReduceSum(g)), invN)
	p.Return(p.Sub(z, p.Mul(p.Sub(g, mu), lr)))
	return p
}

// --- builder and compile validation ---

func TestCompileValidation(t *testing.T) {
	p := NewProgram("no-return")
	p.Func(core.Exp, p.Input())
	wantCompileError(t, p, "no Return")

	p = NewProgram("no-vector")
	p.Return(p.Mul(p.ScalarInput(), p.Const(2)))
	wantCompileError(t, p, "no vector input")

	p = NewProgram("host-only")
	_ = p.Input()
	p.Return(p.Mul(p.ScalarInput(), p.Const(2)))
	wantCompileError(t, p, "computes nothing on the device")

	p = NewProgram("double-return")
	x := p.Input()
	p.Return(x)
	p.Return(x)
	wantCompileError(t, p, "Return called twice")

	p = NewProgram("scalar-func")
	_ = p.Input()
	p.Func(core.Exp, p.Const(1))
	wantCompileError(t, p, "must be a vector")

	p = NewProgram("scalar-reduce")
	_ = p.Input()
	p.ReduceSum(p.ScalarInput())
	wantCompileError(t, p, "must be a vector")

	p = NewProgram("vector-broadcast")
	p.Broadcast(p.Input())
	wantCompileError(t, p, "must be a scalar")

	p = NewProgram("foreign-value")
	_ = p.Input()
	p.Return(p.Func(core.Exp, Value{id: 99}))
	wantCompileError(t, p, "not a value of this program")

	p = NewProgram("too-big")
	x = p.Input()
	for i := 0; i <= maxNodes; i++ {
		x = p.Add(x, x)
	}
	p.Return(x)
	wantCompileError(t, p, "exceeds")

	// Method coverage gate: CORDIC has no route to GELU (Table 2).
	p = NewProgram("unsupported")
	p.Return(p.Func(core.GELU, p.Input()))
	if _, err := Compile(p, core.Params{Method: core.CORDIC}, pimsim.Default()); err == nil {
		t.Error("CORDIC GELU program compiled, want Table 2 rejection")
	}
}

func TestCheckArgs(t *testing.T) {
	c := mustCompile(t, logisticProg())
	if n, err := c.CheckArgs([][]float32{make([]float32, 5), make([]float32, 5)}, []float32{0.1, 0.2}); err != nil || n != 5 {
		t.Fatalf("CheckArgs = %d, %v", n, err)
	}
	bad := []struct {
		name    string
		inputs  [][]float32
		scalars []float32
	}{
		{"missing input", [][]float32{make([]float32, 5)}, []float32{0.1, 0.2}},
		{"missing scalar", [][]float32{make([]float32, 5), make([]float32, 5)}, []float32{0.1}},
		{"ragged", [][]float32{make([]float32, 5), make([]float32, 4)}, []float32{0.1, 0.2}},
		{"empty", [][]float32{{}, {}}, []float32{0.1, 0.2}},
	}
	for _, tc := range bad {
		if _, err := c.CheckArgs(tc.inputs, tc.scalars); err == nil {
			t.Errorf("%s: CheckArgs succeeded", tc.name)
		}
	}
}

// --- phase structure ---

func TestPhaseSplit(t *testing.T) {
	cases := []struct {
		prog   *Program
		phases int
		funcs  int
		scalar bool
	}{
		{softmaxProg(), 3, 1, false},  // max | exp+sum | scale
		{ffnProg(), 1, 1, false},      // no reduction barrier
		{logisticProg(), 2, 1, false}, // sigmoid+sum | update
	}
	for _, tc := range cases {
		c := mustCompile(t, tc.prog)
		if got := c.NumPhases(); got != tc.phases {
			t.Errorf("%s: %d phases, want %d", c.Name(), got, tc.phases)
		}
		if got := len(c.FuncNodes()); got != tc.funcs {
			t.Errorf("%s: %d func nodes, want %d", c.Name(), got, tc.funcs)
		}
		if c.ScalarResult() != tc.scalar {
			t.Errorf("%s: ScalarResult = %v", c.Name(), c.ScalarResult())
		}
	}

	// A pure reduction is one phase with a scalar result.
	p := NewProgram("sum")
	p.Return(p.ReduceSum(p.Input()))
	c := mustCompile(t, p)
	if c.NumPhases() != 1 || !c.ScalarResult() {
		t.Errorf("sum: phases=%d scalar=%v, want 1/true", c.NumPhases(), c.ScalarResult())
	}
}

func TestDeadCodeElimination(t *testing.T) {
	p := NewProgram("dead")
	x := p.Input()
	p.Func(core.Exp, x) // never used
	p.ReduceSum(x)      // never used
	p.Return(p.Func(core.Sigmoid, x))
	c := mustCompile(t, p)
	if fns := c.FuncNodes(); len(fns) != 1 || fns[0] != core.Sigmoid {
		t.Fatalf("live funcs = %v, want [sigmoid]", fns)
	}
	if c.NumPhases() != 1 {
		t.Errorf("phases = %d, want 1 (dead reduction must not split)", c.NumPhases())
	}
	// The byte model only pays for live nodes: exactly the single-Func
	// round trip, both fused and per-op.
	n, k := 1000, 8
	P := padded(n, k)
	if got := c.FusedBytes(n, k); got != 2*P {
		t.Errorf("FusedBytes = %d, want %d", got, 2*P)
	}
	if got := c.PerOpBytes(n, k); got != 2*P {
		t.Errorf("PerOpBytes = %d, want %d", got, 2*P)
	}
}

// --- analytic byte model ---

func TestByteModel(t *testing.T) {
	const (
		n = 1000
		k = 8
	)
	P := padded(n, k)

	// softmax: one padded input in, one out, two reductions each with a
	// gather and a result broadcast. Per-op: max(P+4k) + sub(2P+4k) +
	// exp(2P) + sum(P+4k) + scale-mul(2P+4k); the 1/s division is host
	// scalar arithmetic, free in both paths.
	c := mustCompile(t, softmaxProg())
	if got, want := c.InBytes(n, k), P; got != want {
		t.Errorf("softmax InBytes = %d, want %d", got, want)
	}
	if got, want := c.OutBytes(n, k), P; got != want {
		t.Errorf("softmax OutBytes = %d, want %d", got, want)
	}
	g, b := c.SyncBytes(k)
	if g != 2*4*k || b != 2*4*k {
		t.Errorf("softmax SyncBytes = %d, %d, want %d, %d", g, b, 8*k, 8*k)
	}
	if got, want := c.FusedBytes(n, k), 2*P+16*k; got != want {
		t.Errorf("softmax FusedBytes = %d, want %d", got, want)
	}
	if got, want := c.PerOpBytes(n, k), 8*P+16*k; got != want {
		t.Errorf("softmax PerOpBytes = %d, want %d", got, want)
	}

	// ffn-gelu: three inputs in, one out, no syncs. Per-op:
	// add(3P) + gelu(2P) + mul(3P).
	c = mustCompile(t, ffnProg())
	if got, want := c.FusedBytes(n, k), 4*P; got != want {
		t.Errorf("ffn FusedBytes = %d, want %d", got, want)
	}
	if got, want := c.PerOpBytes(n, k), 8*P; got != want {
		t.Errorf("ffn PerOpBytes = %d, want %d", got, want)
	}

	// logistic-step: two inputs plus the lr broadcast in, one out, one
	// reduction whose mean broadcasts at the sync. Per-op:
	// sigmoid(2P) + sub(3P) + sum(P+4k) + center(2P+4k) + scale(2P+4k)
	// + update(3P); the mu = sum·invN product is host arithmetic.
	c = mustCompile(t, logisticProg())
	if got, want := c.InBytes(n, k), 2*P+4*k; got != want {
		t.Errorf("logistic InBytes = %d, want %d", got, want)
	}
	g, b = c.SyncBytes(k)
	if g != 4*k || b != 4*k {
		t.Errorf("logistic SyncBytes = %d, %d, want %d, %d", g, b, 4*k, 4*k)
	}
	if got, want := c.FusedBytes(n, k), 3*P+12*k; got != want {
		t.Errorf("logistic FusedBytes = %d, want %d", got, want)
	}
	if got, want := c.PerOpBytes(n, k), 13*P+12*k; got != want {
		t.Errorf("logistic PerOpBytes = %d, want %d", got, want)
	}

	// Directional splits always total the same bytes, and fused never
	// moves more than per-op.
	for _, p := range []*Program{softmaxProg(), ffnProg(), logisticProg()} {
		c := mustCompile(t, p)
		fin, fout := c.splitBytes(n, k, true)
		if fin+fout != c.FusedBytes(n, k) {
			t.Errorf("%s: fused split %d+%d != total %d", c.Name(), fin, fout, c.FusedBytes(n, k))
		}
		pin, pout := c.splitBytes(n, k, false)
		if pin+pout != c.PerOpBytes(n, k) {
			t.Errorf("%s: per-op split %d+%d != total %d", c.Name(), pin, pout, c.PerOpBytes(n, k))
		}
		if c.FusedBytes(n, k) >= c.PerOpBytes(n, k) {
			t.Errorf("%s: fused bytes %d not below per-op %d", c.Name(), c.FusedBytes(n, k), c.PerOpBytes(n, k))
		}
		if c.SavedTransferSeconds(n, k, 1e9, 1e9) <= 0 {
			t.Errorf("%s: SavedTransferSeconds not positive", c.Name())
		}
	}
}

func TestConstFolding(t *testing.T) {
	p := NewProgram("folded")
	x := p.Input()
	// 1/4 folds at compile time; the scaled add costs no broadcast.
	q := p.Div(p.Const(1), p.Const(4))
	p.Return(p.Add(p.Mul(x, q), p.Const(3)))
	c := mustCompile(t, p)
	n, k := 64, 4
	if got, want := c.InBytes(n, k), padded(n, k); got != want {
		t.Errorf("InBytes = %d, want %d (folded consts must not broadcast)", got, want)
	}
	if c.NumPhases() != 1 {
		t.Errorf("phases = %d, want 1", c.NumPhases())
	}
	// A runtime scalar, by contrast, pays its per-lane broadcast.
	p = NewProgram("runtime")
	x = p.Input()
	p.Return(p.Mul(x, p.ScalarInput()))
	c = mustCompile(t, p)
	if got, want := c.InBytes(n, k), padded(n, k)+4*k; got != want {
		t.Errorf("runtime-scalar InBytes = %d, want %d", got, want)
	}
}

func TestStickyBuilderError(t *testing.T) {
	p := NewProgram("sticky")
	x := p.Input()
	bad := p.Func(core.Exp, p.Const(0)) // records the sticky error
	y := p.Add(x, bad)                  // builds on the failure silently
	p.Return(y)
	if _, err := Compile(p, testParams(), pimsim.Default()); err == nil {
		t.Fatal("sticky builder error did not surface at Compile")
	}
}
