package fusion

import (
	"transpimlib/internal/core"
	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
)

// Exec is the per-(program, shard, batch-size) execution state the
// engine's program-plan cache holds: resolved operator tables for every
// Func node, the intermediate vector buffers that model MRAM residency,
// the reduction partial slots, and the runtime scalar values. One Exec
// serves one shard's compute stage at a time (the engine serializes per
// shard); Bind rebinds it to each batch.
type Exec struct {
	c     *Compiled
	lanes int
	n     int // bound batch elements
	per   int // elements per lane (rank-padded chunk)

	// vec is indexed by node id: input nodes alias the caller's input
	// slices, the vector return node aliases the output slice, and every
	// other live computed vector gets an exec-owned buffer (its MRAM
	// stand-in — in the fused path these never cross the host boundary).
	vec   [][]float32
	owned [][]float32

	scalars []float32 // by node id, valid when ready
	ready   []bool
	sin     []float32 // bound runtime scalar inputs (kept for HostEval reset)

	partials [][]float32 // [redIdx][lane] in-flight reduction partials

	ops [][]*core.Operator // [fnIdx][lane] resolved transcendental tables
}

// NewExec builds execution state for a shard with the given lane count.
func (c *Compiled) NewExec(lanes int) *Exec {
	ex := &Exec{
		c:       c,
		lanes:   lanes,
		vec:     make([][]float32, len(c.nodes)),
		owned:   make([][]float32, len(c.nodes)),
		scalars: make([]float32, len(c.nodes)),
		ready:   make([]bool, len(c.nodes)),
		ops:     make([][]*core.Operator, len(c.funcs)),
	}
	ex.partials = make([][]float32, len(c.reduces))
	for i := range ex.partials {
		ex.partials[i] = make([]float32, lanes)
	}
	return ex
}

// Program returns the compiled program this Exec runs.
func (ex *Exec) Program() *Compiled { return ex.c }

// NumPhases returns the number of kernel launches per batch.
func (ex *Exec) NumPhases() int { return len(ex.c.phases) }

// SetOps installs the per-lane operator tables for Func node i (the
// engine resolves them through its setup cache, one Spec per entry of
// FuncNodes).
func (ex *Exec) SetOps(i int, ops []*core.Operator) { ex.ops[i] = ops }

// Bind attaches a batch: the caller's input vectors (aliased, not
// copied — the host-staging convention), the runtime scalar values, the
// output slice (aliased for a vector result; ignored for a scalar
// result, which ScalarResult returns after the last Sync), the element
// count and the per-lane chunk size from the shard plan.
func (ex *Exec) Bind(inputs [][]float32, scalars []float32, out []float32, n, per int) {
	ex.n, ex.per = n, per
	ex.sin = scalars
	c := ex.c
	for i, nd := range c.nodes {
		if !c.live[i] || nd.scalar || nd.kind == nReduce {
			continue
		}
		switch {
		case nd.kind == nInput:
			ex.vec[i] = inputs[nd.idx]
		case i == c.ret:
			ex.vec[i] = out
		default:
			if cap(ex.owned[i]) < n {
				ex.owned[i] = make([]float32, n)
			}
			ex.vec[i] = ex.owned[i][:n]
		}
	}
	ex.resetScalars()
}

// resetScalars restores the pre-launch scalar state: constants folded,
// scalar inputs bound, host expressions over them evaluated, reduction
// results cleared. HostEval reuses it to restart after a faulted run.
func (ex *Exec) resetScalars() {
	c := ex.c
	for i := range ex.ready {
		ex.ready[i] = false
	}
	for i, nd := range c.nodes {
		if !c.live[i] || !nd.scalar {
			continue
		}
		switch {
		case c.foldable[i]:
			ex.scalars[i], ex.ready[i] = c.foldVal[i], true
		case nd.kind == nScalarInput:
			ex.scalars[i], ex.ready[i] = ex.sin[nd.idx], true
		}
	}
	ex.evalScalars()
	for r := range ex.partials {
		id := core.ReduceInit(c.nodes[c.reduces[r]].rop)
		for lane := range ex.partials[r] {
			ex.partials[r][lane] = id
		}
	}
}

// evalScalars computes every host scalar expression whose operands are
// ready. Node ids are topological, so one forward pass settles all.
func (ex *Exec) evalScalars() {
	c := ex.c
	for i, nd := range c.nodes {
		if !c.live[i] || !nd.scalar || ex.ready[i] {
			continue
		}
		switch nd.kind {
		case nBroadcast:
			if ex.ready[nd.a] {
				ex.scalars[i], ex.ready[i] = ex.scalars[nd.a], true
			}
		case nElem:
			if ex.ready[nd.a] && ex.ready[nd.b] {
				ex.scalars[i] = core.ElemApply(nd.eop, ex.scalars[nd.a], ex.scalars[nd.b])
				ex.ready[i] = true
			}
		}
	}
}

// RunLane executes phase phi's fused kernel loop for one lane's chunk
// through ctx, charging exactly what the device loop would: kernel
// entry, the broadcast-scalar reads, one MRAM stream-in per external
// vector operand, the per-element op work, the per-element streaming
// overhead, and one MRAM stream-out per materialized vector. Lanes own
// disjoint element windows and disjoint partial slots, so concurrent
// RunLane calls for different lanes are safe. fast selects the PR 3/8
// bulk-signature path; false walks the interpreted per-element
// reference — outputs and cycle totals are bit-identical either way.
func (ex *Exec) RunLane(ctx *pimsim.Ctx, phi, lane int, arena *lut.Scratch, fast bool) {
	lo := lane * ex.per
	if lo >= ex.n {
		return
	}
	count := ex.per
	if lo+count > ex.n {
		count = ex.n - lo
	}
	c := ex.c
	ph := &c.phases[phi]
	fop := c.fop

	ctx.Charge(4)
	fop.ChargeScalarLoad(ctx, uint64(len(ph.scalarLoads)))
	for range ph.extVecIn {
		ctx.ChargeDMA(count * 4)
	}
	for _, st := range ph.steps {
		switch st.kind {
		case nFunc:
			xs := ex.vec[st.a][lo : lo+count]
			ys := ex.vec[st.node][lo : lo+count]
			op := ex.ops[st.fnIdx][lane]
			if fast && op.HasFastPath() {
				op.EvalBatchWith(ctx, xs, ys, arena)
			} else {
				for i, x := range xs {
					ys[i] = op.Eval(ctx, x)
				}
			}
		case nElem:
			ys := ex.vec[st.node][lo : lo+count]
			var as, bs []float32
			var sa, sb float32
			if c.nodes[st.a].scalar {
				sa = ex.scalars[st.a]
			} else {
				as = ex.vec[st.a][lo : lo+count]
			}
			if c.nodes[st.b].scalar {
				sb = ex.scalars[st.b]
			} else {
				bs = ex.vec[st.b][lo : lo+count]
			}
			av := func(i int) float32 {
				if as == nil {
					return sa
				}
				return as[i]
			}
			bv := func(i int) float32 {
				if bs == nil {
					return sb
				}
				return bs[i]
			}
			if fast {
				for i := 0; i < count; i++ {
					ys[i] = core.ElemApply(st.eop, av(i), bv(i))
				}
				fop.ChargeElem(ctx, st.eop, uint64(count))
			} else {
				for i := 0; i < count; i++ {
					ys[i] = fop.ElemEval(ctx, st.eop, av(i), bv(i))
				}
			}
		case nReduce:
			xs := ex.vec[st.a][lo : lo+count]
			acc := core.ReduceInit(st.rop)
			if fast {
				for _, x := range xs {
					acc = core.ReduceApply(st.rop, acc, x)
				}
				fop.ChargeReduce(ctx, st.rop, uint64(count))
			} else {
				for _, x := range xs {
					acc = fop.ReduceEval(ctx, st.rop, acc, x)
				}
			}
			ex.partials[st.redIdx][lane] = acc
			fop.ChargeScalarStore(ctx, 1)
		}
	}
	ctx.ChargeSig(&ph.streamSig, uint64(count))
	for range ph.matOut {
		ctx.ChargeDMA(count * 4)
	}
}

// Sync closes phase phi on the host: gathers the phase's reduction
// partials (combining only lanes that held data, in lane order — the
// same order the per-op baseline combines, so scalars match bit for
// bit), evaluates the host scalar expressions that became computable,
// and returns the host↔PIM bytes the sync moved (gather in, broadcast
// back out).
func (ex *Exec) Sync(phi int) (gatherBytes, bcastBytes int) {
	c := ex.c
	ph := &c.phases[phi]
	if len(ph.reduces) > 0 {
		active := (ex.n + ex.per - 1) / ex.per
		if active > ex.lanes {
			active = ex.lanes
		}
		for _, r := range ph.reduces {
			rop := c.nodes[r.node].rop
			acc := core.ReduceInit(rop)
			for lane := 0; lane < active; lane++ {
				acc = core.ReduceApply(rop, acc, ex.partials[r.redIdx][lane])
			}
			ex.scalars[r.node], ex.ready[r.node] = acc, true
		}
		ex.evalScalars()
	}
	return 4 * ex.lanes * len(ph.reduces), 4 * ex.lanes * len(ph.bcastAfter)
}

// ScalarResult returns the program's scalar return value after the
// final Sync (only meaningful when ScalarResult() is true on the
// program).
func (ex *Exec) ScalarResult() float32 { return ex.scalars[ex.c.ret] }

// HostEval re-runs the whole bound batch sequentially on the host
// mirror — the bottom rung of the recovery ladder. Charges go to ctx
// (the engine passes its discard recorder), state is reset first so a
// partially-faulted run leaves no residue, and the outputs land in the
// same bound slices, bit-identical to a clean device run. It runs the
// fast path with a nil arena: Func nodes then evaluate through the
// operators' unmetered host mirrors (the degradeBatch convention) —
// the interpreted path would read LUT tables through ctx's DPU, and
// the recorder's core holds none.
func (ex *Exec) HostEval(ctx *pimsim.Ctx) {
	ex.resetScalars()
	for phi := range ex.c.phases {
		for lane := 0; lane < ex.lanes; lane++ {
			ex.RunLane(ctx, phi, lane, nil, true)
		}
		ex.Sync(phi)
	}
}
