package fusion

import (
	"fmt"
	"sync"
	"sync/atomic"

	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
)

// progIDs mints unique program ids; the engine's program-plan cache
// keys on them.
var progIDs atomic.Uint64

// step is one device operation inside a phase, executed per element of
// a lane's chunk inside the fused kernel loop.
type step struct {
	node int
	kind nodeKind
	a, b int // operand node ids (scalar operands deref'd past Broadcast)
	eop  core.ElemOp
	rop  core.ReduceOp
	fnIdx  int // nFunc: index into the compiled funcs list
	redIdx int // nReduce: index into the compiled reduces list
}

// phReduce is one reduction closing at a phase boundary.
type phReduce struct {
	node   int
	redIdx int
}

// phase is one fused kernel launch: every step runs per element in one
// streamed loop, external vector operands DMA in once, materialized
// outputs DMA out once, and the reductions it carries sync (gather →
// host combine → broadcast) at its end.
type phase struct {
	steps       []step
	extVecIn    []int      // vector operands streamed from MRAM
	scalarLoads []int      // runtime scalars read from the broadcast slot
	matOut      []int      // vector nodes materialized back to MRAM
	reduces     []phReduce // reductions closing at this phase's end
	bcastAfter  []int      // runtime scalars broadcast at this phase's sync
	// streamSig is the per-element streaming overhead of this phase's
	// loop: len(extVecIn) WRAM loads + len(matOut) WRAM stores + loop
	// control, recorded once at compile time.
	streamSig pimsim.CostSig
}

// Compiled is an executable fused program: the validated graph, its
// phase split, the primitive cost table, and the analytic byte model
// the engine's accounting is checked against. Compile once, evaluate
// many times; safe for concurrent read-only use (per-batch mutable
// state lives in Exec).
type Compiled struct {
	id    uint64
	name  string
	par   core.Params
	model pimsim.CostModel
	fop   *core.FusedOperator

	nodes      []node
	live       []bool
	numInputs  int
	numScalars int
	ret        int
	retScalar  bool

	phases  []phase
	funcs   []int // nFunc node ids, id order; index = step.fnIdx
	reduces []int // nReduce node ids, id order; index = step.redIdx
	bcastIn []int // runtime scalars broadcast at transfer-in

	// Scalar analysis: foldable scalars are compile-time immediates
	// (free); runtime scalars depend on ScalarInput or a reduction and
	// cost a 4-byte-per-lane broadcast when the cores read them.
	foldable    []bool
	foldVal     []float32
	scalarPhase []int // earliest phase a runtime scalar is device-usable

	perOpOnce  sync.Once
	perOpSteps []perOpStep
	perOpErr   error
}

// Compile validates the program and lowers it to phases. Every Func
// node evaluates under the same normalized method parameters; the cost
// model must match the engine the program will run on (signatures are
// recorded against it).
func Compile(p *Program, par core.Params, model pimsim.CostModel) (*Compiled, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.ret < 0 {
		return nil, fmt.Errorf("fusion: %s: program has no Return", p.name)
	}
	if p.numInputs == 0 {
		return nil, fmt.Errorf("fusion: %s: program has no vector input", p.name)
	}
	par = par.Normalized()

	c := &Compiled{
		id:         progIDs.Add(1),
		name:       p.name,
		par:        par,
		model:      model,
		fop:        core.NewFusedOperator(model),
		nodes:      append([]node(nil), p.nodes...),
		numInputs:  p.numInputs,
		numScalars: p.numScalars,
		ret:        p.ret,
		retScalar:  p.nodes[p.ret].scalar,
	}

	// Liveness: only nodes the return value depends on execute (and
	// charge). Inputs are always shipped — the caller provides them —
	// but dead compute nodes are dropped.
	c.live = make([]bool, len(c.nodes))
	var mark func(int)
	mark = func(v int) {
		if v < 0 || c.live[v] {
			return
		}
		c.live[v] = true
		mark(c.nodes[v].a)
		mark(c.nodes[v].b)
	}
	mark(c.ret)

	// Scalar constant folding and runtime classification.
	n := len(c.nodes)
	c.foldable = make([]bool, n)
	c.foldVal = make([]float32, n)
	for i, nd := range c.nodes {
		if !nd.scalar {
			continue
		}
		switch nd.kind {
		case nConst:
			c.foldable[i], c.foldVal[i] = true, nd.c
		case nBroadcast:
			c.foldable[i], c.foldVal[i] = c.foldable[nd.a], c.foldVal[nd.a]
		case nElem:
			if c.foldable[nd.a] && c.foldable[nd.b] {
				c.foldable[i] = true
				c.foldVal[i] = core.ElemApply(nd.eop, c.foldVal[nd.a], c.foldVal[nd.b])
			}
		}
	}

	// Phase assignment. Node ids are topological by construction, so a
	// single forward pass sees every operand's phase before its user's.
	// A vector node joins its newest vector operand's phase (same-phase
	// values flow through registers); a scalar produced by a reduction
	// in phase q is device-usable from phase q+1 (after the sync).
	ph := make([]int, n)
	c.scalarPhase = make([]int, n)
	for i := range ph {
		ph[i] = -1
	}
	deref := c.derefScalar
	maxPhase := -1
	for i, nd := range c.nodes {
		if !c.live[i] {
			continue
		}
		// Reductions are scalar-valued but execute on the device; every
		// other scalar node is host arithmetic and takes no phase.
		if nd.kind == nInput || (nd.scalar && nd.kind != nReduce) {
			if nd.scalar {
				c.scalarPhase[i] = c.scalarReady(i, ph)
			}
			continue
		}
		// Device vector node or reduction.
		p0 := 0
		for _, opnd := range [2]int{nd.a, nd.b} {
			if opnd < 0 {
				continue
			}
			od := &c.nodes[opnd]
			if od.scalar {
				if sp := c.scalarReady(deref(opnd), ph); sp > p0 {
					p0 = sp
				}
			} else if od.kind != nInput {
				if ph[opnd] > p0 {
					p0 = ph[opnd]
				}
			}
		}
		ph[i] = p0
		if nd.kind == nReduce {
			c.scalarPhase[i] = p0 + 1
		}
		if p0 > maxPhase {
			maxPhase = p0
		}
		switch nd.kind {
		case nFunc:
			if !par.Method.Supports(nd.fn) {
				return nil, fmt.Errorf("fusion: %s: %v does not support %v (see Table 2)",
					p.name, par.Method, nd.fn)
			}
			c.funcs = append(c.funcs, i)
		case nReduce:
			c.reduces = append(c.reduces, i)
		}
	}
	if maxPhase < 0 {
		return nil, fmt.Errorf("fusion: %s: program computes nothing on the device", p.name)
	}

	// Materialization: a computed vector crossing a phase boundary (or
	// returned) round-trips through MRAM; same-phase uses stay in
	// registers.
	mat := make([]bool, n)
	if !c.retScalar {
		mat[c.ret] = true
	}
	for i, nd := range c.nodes {
		if !c.live[i] || nd.scalar || nd.kind == nInput || nd.kind == nReduce {
			continue
		}
		for _, opnd := range [2]int{nd.a, nd.b} {
			if opnd < 0 {
				continue
			}
			od := &c.nodes[opnd]
			if !od.scalar && od.kind != nInput && ph[opnd] < ph[i] {
				mat[opnd] = true
			}
		}
	}
	for _, i := range c.reduces {
		opnd := c.nodes[i].a
		if c.nodes[opnd].kind != nInput && ph[opnd] < ph[i] {
			mat[opnd] = true
		}
	}

	// Assemble phases.
	c.phases = make([]phase, maxPhase+1)
	fnIdx := make(map[int]int, len(c.funcs))
	for k, v := range c.funcs {
		fnIdx[v] = k
	}
	redIdx := make(map[int]int, len(c.reduces))
	for k, v := range c.reduces {
		redIdx[v] = k
	}
	for i, nd := range c.nodes {
		if !c.live[i] || ph[i] < 0 {
			continue
		}
		q := &c.phases[ph[i]]
		st := step{node: i, kind: nd.kind, a: nd.a, b: nd.b, eop: nd.eop, rop: nd.rop}
		for _, opnd := range [2]int{nd.a, nd.b} {
			if opnd < 0 {
				continue
			}
			od := &c.nodes[opnd]
			switch {
			case od.scalar:
				s := deref(opnd)
				if opnd == nd.a {
					st.a = s
				} else {
					st.b = s
				}
				if !c.foldable[s] {
					q.scalarLoads = appendUnique(q.scalarLoads, s)
				}
			case od.kind == nInput || ph[opnd] < ph[i]:
				q.extVecIn = appendUnique(q.extVecIn, opnd)
			}
		}
		switch nd.kind {
		case nFunc:
			st.fnIdx = fnIdx[i]
		case nReduce:
			st.redIdx = redIdx[i]
			q.reduces = append(q.reduces, phReduce{node: i, redIdx: redIdx[i]})
		}
		if mat[i] {
			q.matOut = append(q.matOut, i)
		}
		q.steps = append(q.steps, st)
	}
	for qi := range c.phases {
		q := &c.phases[qi]
		q.streamSig = core.RecordStreamSig(model, len(q.extVecIn), len(q.matOut))
	}

	// Broadcast scheduling: every runtime scalar a device step reads
	// crosses host→PIM exactly once — at transfer-in when it is derived
	// purely from scalar inputs, or at the sync of the phase whose
	// reductions make it computable.
	seen := map[int]bool{}
	for qi := range c.phases {
		for _, s := range c.phases[qi].scalarLoads {
			if seen[s] {
				continue
			}
			seen[s] = true
			if rp := c.scalarPhase[s]; rp == 0 {
				c.bcastIn = append(c.bcastIn, s)
			} else {
				c.phases[rp-1].bcastAfter = append(c.phases[rp-1].bcastAfter, s)
			}
		}
	}
	return c, nil
}

// derefScalar follows Broadcast chains to the underlying scalar node.
func (c *Compiled) derefScalar(v int) int {
	for c.nodes[v].kind == nBroadcast {
		v = c.nodes[v].a
	}
	return v
}

// scalarReady returns the earliest phase a scalar's value exists on
// the host: 0 for constants and scalar inputs, reduce-phase+1 for
// reduction results, the max over operands for host scalar arithmetic.
func (c *Compiled) scalarReady(v int, ph []int) int {
	nd := &c.nodes[v]
	switch nd.kind {
	case nConst, nScalarInput:
		return 0
	case nReduce:
		return ph[v] + 1
	case nBroadcast:
		return c.scalarReady(nd.a, ph)
	case nElem:
		a := c.scalarReady(nd.a, ph)
		if b := c.scalarReady(nd.b, ph); b > a {
			a = b
		}
		return a
	}
	return 0
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// --- public inspection ---

// ID returns the program's unique id (the engine's plan-cache key).
func (c *Compiled) ID() uint64 { return c.id }

// Name returns the program's label.
func (c *Compiled) Name() string { return c.name }

// Params returns the normalized method parameters every Func node
// evaluates under.
func (c *Compiled) Params() core.Params { return c.par }

// NumInputs returns the number of vector inputs the program binds.
func (c *Compiled) NumInputs() int { return c.numInputs }

// NumScalars returns the number of runtime scalar inputs.
func (c *Compiled) NumScalars() int { return c.numScalars }

// ScalarResult reports whether the program returns a scalar (output
// length 1) instead of a vector.
func (c *Compiled) ScalarResult() bool { return c.retScalar }

// NumPhases returns the number of fused kernel launches per batch.
func (c *Compiled) NumPhases() int { return len(c.phases) }

// FuncNodes returns the transcendental function of every Func node, in
// the order the engine resolves operator tables for them.
func (c *Compiled) FuncNodes() []core.Function {
	out := make([]core.Function, len(c.funcs))
	for i, v := range c.funcs {
		out[i] = c.nodes[v].fn
	}
	return out
}

// CheckArgs validates an evaluation call's inputs against the
// program's signature and returns the element count.
func (c *Compiled) CheckArgs(inputs [][]float32, scalars []float32) (int, error) {
	if len(inputs) != c.numInputs {
		return 0, fmt.Errorf("fusion: %s: got %d vector inputs, want %d", c.name, len(inputs), c.numInputs)
	}
	if len(scalars) != c.numScalars {
		return 0, fmt.Errorf("fusion: %s: got %d scalar inputs, want %d", c.name, len(scalars), c.numScalars)
	}
	n := len(inputs[0])
	for i, in := range inputs {
		if len(in) != n {
			return 0, fmt.Errorf("fusion: %s: input %d has %d elements, want %d", c.name, i, len(in), n)
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("fusion: %s: empty input", c.name)
	}
	return n, nil
}

// --- analytic byte model ---
// These are the numbers the engine's metered transfers must reproduce
// exactly; the differential suite asserts measured == analytic.

func padded(n, k int) int {
	per := (n + k - 1) / k
	return per * 4 * k
}

// InBytes is the host→PIM bytes charged at transfer-in for an
// n-element batch over k lanes: every vector input rank-padded, plus a
// 4-byte-per-lane broadcast for each runtime scalar the cores read
// that is available before the first launch.
func (c *Compiled) InBytes(n, k int) int {
	return c.numInputs*padded(n, k) + 4*k*len(c.bcastIn)
}

// OutBytes is the PIM→host bytes charged at transfer-out: the padded
// result vector, or zero for a scalar result (its value left the cores
// in the final reduction gather).
func (c *Compiled) OutBytes(n, k int) int {
	if c.retScalar {
		return 0
	}
	return padded(n, k)
}

// SyncBytes totals the mid-program reduction traffic over k lanes:
// one 4-byte-per-lane gather per reduction plus one broadcast per
// runtime scalar that becomes device-visible at a sync.
func (c *Compiled) SyncBytes(k int) (gather, bcast int) {
	gather = 4 * k * len(c.reduces)
	for qi := range c.phases {
		bcast += 4 * k * len(c.phases[qi].bcastAfter)
	}
	return gather, bcast
}

// FusedBytes is the total host↔PIM bytes one fused evaluation moves.
func (c *Compiled) FusedBytes(n, k int) int {
	g, b := c.SyncBytes(k)
	return c.InBytes(n, k) + c.OutBytes(n, k) + g + b
}

// PerOpBytes is the total host↔PIM bytes the per-op baseline moves:
// every live device node pays its own round trip — each vector operand
// in (padded), each runtime scalar operand broadcast, the result
// vector out (or a reduction gather). Host scalar arithmetic is free
// in both paths.
func (c *Compiled) PerOpBytes(n, k int) int {
	P := padded(n, k)
	total := 0
	for i, nd := range c.nodes {
		if !c.live[i] {
			continue
		}
		switch {
		case nd.kind == nFunc:
			total += 2 * P
		case nd.kind == nElem && !nd.scalar:
			var vecs, scals []int
			for _, opnd := range [2]int{nd.a, nd.b} {
				od := &c.nodes[opnd]
				if od.scalar {
					if s := c.derefScalar(opnd); !c.foldable[s] {
						scals = appendUnique(scals, s)
					}
				} else {
					vecs = appendUnique(vecs, opnd)
				}
			}
			total += P*len(vecs) + 4*k*len(scals) + P
		case nd.kind == nReduce:
			total += P + 4*k
		}
	}
	return total
}

// SavedTransferSeconds converts the fused-vs-per-op byte difference to
// modeled transfer time under the system's rank-parallel bandwidths.
// The split between directions follows the byte model: inbound bytes
// ride the host→PIM bandwidth, outbound the PIM→host one.
func (c *Compiled) SavedTransferSeconds(n, k int, h2p, p2h float64) float64 {
	fin, fout := c.splitBytes(n, k, true)
	pin, pout := c.splitBytes(n, k, false)
	return float64(pin-fin)/h2p + float64(pout-fout)/p2h
}

// splitBytes returns the directional byte totals of the fused path or
// the per-op baseline.
func (c *Compiled) splitBytes(n, k int, fused bool) (in, out int) {
	P := padded(n, k)
	if fused {
		g, b := c.SyncBytes(k)
		return c.InBytes(n, k) + b, c.OutBytes(n, k) + g
	}
	for i, nd := range c.nodes {
		if !c.live[i] {
			continue
		}
		switch {
		case nd.kind == nFunc:
			in += P
			out += P
		case nd.kind == nElem && !nd.scalar:
			var vecs, scals []int
			for _, opnd := range [2]int{nd.a, nd.b} {
				od := &c.nodes[opnd]
				if od.scalar {
					if s := c.derefScalar(opnd); !c.foldable[s] {
						scals = appendUnique(scals, s)
					}
				} else {
					vecs = appendUnique(vecs, opnd)
				}
			}
			in += P*len(vecs) + 4*k*len(scals)
			out += P
		case nd.kind == nReduce:
			in += P
			out += 4 * k
		}
	}
	return in, out
}
