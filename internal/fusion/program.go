// Package fusion is the PIM-resident operator-graph layer: a small
// program builder (vector inputs → transcendental Func nodes →
// elementwise add/sub/mul/div/max → reduction max/sum → broadcast)
// that compiles into a fused on-device program. Intermediate vectors
// stay in the cores' MRAM/WRAM between steps — only the program's
// inputs, its result, and the 4-byte-per-lane reduction syncs cross
// the host boundary — where the per-op baseline pays a full host↔PIM
// round trip per node. Compilation splits the graph into phases at
// reduction barriers; each phase is one streamed kernel loop per lane,
// charged through the PR 3/8 cost-signature machinery so the fast path
// and the interpreted reference stay bit-identical in both outputs and
// cycle accounting.
package fusion

import (
	"fmt"

	"transpimlib/internal/core"
)

// maxNodes bounds a program's graph; fused programs are small
// pipelines, not general tensor graphs.
const maxNodes = 64

type nodeKind uint8

const (
	nInvalid nodeKind = iota
	nInput
	nScalarInput
	nConst
	nFunc
	nElem
	nReduce
	nBroadcast
)

// node is one vertex of the program graph. Operands a/b are node ids
// (-1 when absent); whether a node is scalar-valued follows from its
// kind and operands: reductions, consts, scalar inputs, broadcasts of
// scalars, and elementwise ops between scalars are scalar; everything
// else is a vector over the program's element index.
type node struct {
	kind   nodeKind
	scalar bool
	fn     core.Function // nFunc
	eop    core.ElemOp   // nElem
	rop    core.ReduceOp // nReduce
	a, b   int
	c      float32 // nConst
	idx    int     // input ordinal (nInput / nScalarInput)
}

// Value is an opaque handle to a program node, returned by the builder
// methods and consumed as an operand. Handles from one Program must
// not be used with another.
type Value struct{ id int }

// Program is the operator-graph builder. Construct with NewProgram,
// add nodes through the builder methods, terminate with Return, then
// Compile. Builder errors are sticky and surface at Compile, so a
// construction chain reads without per-call error checks.
type Program struct {
	name       string
	nodes      []node
	numInputs  int
	numScalars int
	ret        int
	err        error
}

// NewProgram starts an empty program. The name labels the program in
// ledger rows ("fused:<name>"), traces and benchmark tables.
func NewProgram(name string) *Program {
	return &Program{name: name, ret: -1}
}

// Name returns the program's label.
func (p *Program) Name() string { return p.name }

func (p *Program) fail(format string, args ...any) Value {
	if p.err == nil {
		p.err = fmt.Errorf("fusion: %s: %s", p.name, fmt.Sprintf(format, args...))
	}
	return Value{id: -1}
}

func (p *Program) add(nd node) Value {
	if p.err != nil {
		return Value{id: -1}
	}
	if len(p.nodes) >= maxNodes {
		return p.fail("program exceeds %d nodes", maxNodes)
	}
	p.nodes = append(p.nodes, nd)
	return Value{id: len(p.nodes) - 1}
}

// valid reports whether v names a node of this program; on failure it
// records a sticky error.
func (p *Program) valid(v Value) bool {
	if p.err != nil {
		return false
	}
	if v.id < 0 || v.id >= len(p.nodes) {
		p.fail("operand is not a value of this program")
		return false
	}
	return true
}

func (p *Program) isScalar(v Value) bool { return p.nodes[v.id].scalar }

// Input declares the next vector input. Inputs bind positionally at
// evaluation time; all of a program's vector inputs must have the same
// length.
func (p *Program) Input() Value {
	v := p.add(node{kind: nInput, a: -1, b: -1, idx: p.numInputs})
	if v.id >= 0 {
		p.numInputs++
	}
	return v
}

// ScalarInput declares the next runtime scalar input (a per-call
// parameter such as a learning rate). It is broadcast to the cores at
// transfer-in — 4 bytes per lane — unlike Const, which folds into the
// program as a free immediate.
func (p *Program) ScalarInput() Value {
	v := p.add(node{kind: nScalarInput, scalar: true, a: -1, b: -1, idx: p.numScalars})
	if v.id >= 0 {
		p.numScalars++
	}
	return v
}

// Const embeds a compile-time scalar constant — an immediate in the
// program, costing no transfer and no per-element load.
func (p *Program) Const(c float32) Value {
	return p.add(node{kind: nConst, scalar: true, a: -1, b: -1, c: c})
}

// Func applies a transcendental function elementwise to a vector. The
// method that evaluates it is chosen at Compile time (one method
// configuration per program).
func (p *Program) Func(fn core.Function, a Value) Value {
	if !p.valid(a) {
		return Value{id: -1}
	}
	if p.isScalar(a) {
		return p.fail("%v operand must be a vector", fn)
	}
	return p.add(node{kind: nFunc, fn: fn, a: a.id, b: -1})
}

func (p *Program) elem(op core.ElemOp, a, b Value) Value {
	if !p.valid(a) || !p.valid(b) {
		return Value{id: -1}
	}
	// An elementwise op between scalars stays scalar: it is evaluated
	// on the host at the reduction sync that produces its operands,
	// costing no device cycles in either the fused or per-op path.
	sc := p.isScalar(a) && p.isScalar(b)
	return p.add(node{kind: nElem, eop: op, scalar: sc, a: a.id, b: b.id})
}

// Add returns a+b elementwise. Scalar operands broadcast.
func (p *Program) Add(a, b Value) Value { return p.elem(core.ElemAdd, a, b) }

// Sub returns a−b elementwise. Scalar operands broadcast.
func (p *Program) Sub(a, b Value) Value { return p.elem(core.ElemSub, a, b) }

// Mul returns a·b elementwise. Scalar operands broadcast.
func (p *Program) Mul(a, b Value) Value { return p.elem(core.ElemMul, a, b) }

// Div returns a/b elementwise. Scalar operands broadcast.
func (p *Program) Div(a, b Value) Value { return p.elem(core.ElemDiv, a, b) }

// Max returns max(a,b) elementwise (branchless compare+select; ties
// and NaN keep a). Scalar operands broadcast.
func (p *Program) Max(a, b Value) Value { return p.elem(core.ElemMax, a, b) }

func (p *Program) reduce(op core.ReduceOp, a Value) Value {
	if !p.valid(a) {
		return Value{id: -1}
	}
	if p.isScalar(a) {
		return p.fail("reduce-%v operand must be a vector", op)
	}
	return p.add(node{kind: nReduce, rop: op, scalar: true, a: a.id, b: -1})
}

// ReduceSum reduces a vector to the scalar sum of its elements:
// per-lane partials accumulated in the kernel loop, combined on the
// host in lane order at the phase sync.
func (p *Program) ReduceSum(a Value) Value { return p.reduce(core.ReduceSum, a) }

// ReduceMax reduces a vector to the scalar max of its elements.
func (p *Program) ReduceMax(a Value) Value { return p.reduce(core.ReduceMax, a) }

// Broadcast marks a scalar for use in vector context — the explicit
// form of the implicit broadcast a scalar operand of an elementwise op
// gets. Using the scalar's value on the cores costs one 4-byte-per-
// lane broadcast at the sync where it becomes available.
func (p *Program) Broadcast(a Value) Value {
	if !p.valid(a) {
		return Value{id: -1}
	}
	if !p.isScalar(a) {
		return p.fail("broadcast operand must be a scalar")
	}
	return p.add(node{kind: nBroadcast, scalar: true, a: a.id, b: -1})
}

// Return terminates the program with its result: a vector node (the
// output has the inputs' length) or a scalar node (the output has
// length 1).
func (p *Program) Return(a Value) {
	if !p.valid(a) {
		return
	}
	if p.ret >= 0 {
		p.fail("Return called twice")
		return
	}
	p.ret = a.id
}
