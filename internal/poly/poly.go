// Package poly implements the polynomial-approximation method that the
// paper's PIM baselines use (§4.1.2, [67, 124]): Chebyshev fits
// generated on the host and evaluated on the PIM core with Horner's
// rule. Each polynomial degree costs one float multiply and one float
// add per term, which is why the paper notes that Taylor-style
// approximation needs "one floating-point multiplication for each bit
// of precision" and loses badly to L-LUTs on PIM (§4.2.1).
//
// The package also provides the Abramowitz–Stegun cumulative normal
// distribution polynomial used by the original Blackscholes benchmark.
package poly

import (
	"fmt"
	"math"

	"transpimlib/internal/pimsim"
)

// Func is a reference function sampled during fitting.
type Func func(float64) float64

// Poly is a polynomial in the normalized variable t ∈ [-1, 1],
// affinely mapped from the input interval [Lo, Hi].
type Poly struct {
	Lo, Hi float64
	// Coeffs are monomial coefficients in t, constant term first.
	Coeffs []float32
	// scale/shift implement t = scale·x + shift on the device.
	scale, shift float32
}

// FitChebyshev fits f on [lo, hi] with a polynomial of the given
// degree (degree+1 coefficients) using Chebyshev interpolation at the
// Chebyshev nodes, then converts the Chebyshev series to monomial form
// for Horner evaluation. Degrees up to ~25 stay numerically stable in
// the float64 conversion; higher degrees are rejected.
func FitChebyshev(f Func, lo, hi float64, degree int) (*Poly, error) {
	if !(lo < hi) || math.IsNaN(lo) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("poly: invalid interval [%v, %v]", lo, hi)
	}
	if degree < 0 || degree > 25 {
		return nil, fmt.Errorf("poly: degree %d out of [0, 25]", degree)
	}
	n := degree + 1

	// Chebyshev coefficients from function values at the nodes.
	fv := make([]float64, n)
	for k := 0; k < n; k++ {
		xk := math.Cos(math.Pi * (float64(k) + 0.5) / float64(n))
		fv[k] = f(lo + (hi-lo)*(xk+1)/2)
	}
	cheb := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for k := 0; k < n; k++ {
			s += fv[k] * math.Cos(math.Pi*float64(j)*(float64(k)+0.5)/float64(n))
		}
		cheb[j] = 2 * s / float64(n)
	}
	cheb[0] /= 2

	// Chebyshev → monomial via the T recurrence: T₀=1, T₁=t,
	// T_{k+1} = 2t·T_k − T_{k−1}.
	mono := make([]float64, n)
	tPrev := make([]float64, n) // T₀
	tCur := make([]float64, n)  // T₁
	tPrev[0] = 1
	if n > 1 {
		tCur[1] = 1
	}
	addScaled := func(dst, src []float64, w float64) {
		for i, v := range src {
			dst[i] += w * v
		}
	}
	addScaled(mono, tPrev, cheb[0])
	if n > 1 {
		addScaled(mono, tCur, cheb[1])
	}
	for k := 2; k < n; k++ {
		tNext := make([]float64, n)
		for i := 1; i < n; i++ {
			tNext[i] = 2 * tCur[i-1]
		}
		for i := 0; i < n; i++ {
			tNext[i] -= tPrev[i]
		}
		addScaled(mono, tNext, cheb[k])
		tPrev, tCur = tCur, tNext
	}

	p := &Poly{Lo: lo, Hi: hi, Coeffs: make([]float32, n)}
	for i, c := range mono {
		p.Coeffs[i] = float32(c)
	}
	p.scale = float32(2 / (hi - lo))
	p.shift = float32(-(hi + lo) / (hi - lo))
	return p, nil
}

// Degree returns the polynomial degree.
func (p *Poly) Degree() int { return len(p.Coeffs) - 1 }

// Bytes returns the PIM memory footprint of the coefficients.
func (p *Poly) Bytes() int { return 4 * len(p.Coeffs) }

// Eval evaluates the polynomial on the PIM core with Horner's rule:
// one multiply and one add per degree, plus the affine input mapping
// (one multiply, one add). Coefficients live in registers/WRAM; we
// charge one scratchpad load per term.
func (p *Poly) Eval(ctx *pimsim.Ctx, x float32) float32 {
	t := ctx.FAdd(ctx.FMul(x, p.scale), p.shift)
	n := len(p.Coeffs)
	acc := p.Coeffs[n-1]
	ctx.Charge(1) // load of leading coefficient
	for i := n - 2; i >= 0; i-- {
		ctx.Charge(1) // coefficient load
		acc = ctx.FAdd(ctx.FMul(acc, t), p.Coeffs[i])
	}
	return acc
}

// EvalHost is the unmetered float32 mirror of Eval.
func (p *Poly) EvalHost(x float32) float32 {
	t := x*p.scale + p.shift
	n := len(p.Coeffs)
	acc := p.Coeffs[n-1]
	for i := n - 2; i >= 0; i-- {
		acc = acc*t + p.Coeffs[i]
	}
	return acc
}

// EvalHostMany runs EvalHost over a slice with the coefficient array
// and affine input mapping hoisted out of the per-element loop;
// bit-identical to per-element calls.
func (p *Poly) EvalHostMany(xs, ys []float32) {
	ys = ys[:len(xs)]
	coeffs := p.Coeffs
	if len(coeffs) == 0 {
		return
	}
	scale, shift := p.scale, p.shift
	lead := coeffs[len(coeffs)-1]
	rest := coeffs[:len(coeffs)-1]
	for i, x := range xs {
		t := x*scale + shift
		acc := lead
		for j := len(rest) - 1; j >= 0; j-- {
			acc = acc*t + rest[j]
		}
		ys[i] = acc
	}
}

// MaxError estimates the fit's maximum absolute error on a dense grid.
func (p *Poly) MaxError(f Func, samples int) float64 {
	var worst float64
	for i := 0; i <= samples; i++ {
		x := p.Lo + (p.Hi-p.Lo)*float64(i)/float64(samples)
		if e := math.Abs(float64(p.EvalHost(float32(x))) - f(x)); e > worst {
			worst = e
		}
	}
	return worst
}

// DegreeFor searches for the smallest degree whose Chebyshev fit of f
// on [lo, hi] reaches the target maximum error, up to degree 25. It
// returns the fitted polynomial.
func DegreeFor(f Func, lo, hi, target float64) (*Poly, error) {
	for d := 2; d <= 25; d++ {
		p, err := FitChebyshev(f, lo, hi, d)
		if err != nil {
			return nil, err
		}
		if p.MaxError(f, 2000) <= target {
			return p, nil
		}
	}
	return nil, fmt.Errorf("poly: no degree ≤ 25 reaches error %g for range [%g, %g]", target, lo, hi)
}

// Abramowitz–Stegun 26.2.17 constants for the cumulative normal
// distribution, as used in the original Blackscholes benchmark.
var cndfB = [5]float32{0.319381530, -0.356563782, 1.781477937, -1.821255978, 1.330274429}

const cndfGamma = float32(0.2316419)

// invSqrt2Pi is 1/√(2π) for the normal pdf.
const invSqrt2Pi = float32(0.39894228040143267794)

// CNDF evaluates the cumulative normal distribution Φ(x) on the PIM
// core using the Abramowitz–Stegun polynomial, taking the exp(−x²/2)
// factor from the supplied narrow-range exponential (so the same
// routine serves the poly baseline and the TransPimLib-backed
// versions).
func CNDF(ctx *pimsim.Ctx, x float32, expf func(*pimsim.Ctx, float32) float32) float32 {
	ax := ctx.FAbs(x)
	k := ctx.FDiv(1, ctx.FAdd(1, ctx.FMul(cndfGamma, ax)))
	// Horner over the five b-coefficients.
	acc := cndfB[4]
	for i := 3; i >= 0; i-- {
		ctx.Charge(1)
		acc = ctx.FAdd(ctx.FMul(acc, k), cndfB[i])
	}
	poly := ctx.FMul(acc, k)
	pdf := ctx.FMul(invSqrt2Pi, expf(ctx, ctx.FMul(-0.5, ctx.FMul(ax, ax))))
	res := ctx.FSub(1, ctx.FMul(pdf, poly))
	ctx.Branch()
	if ctx.FCmp(x, 0) < 0 {
		res = ctx.FSub(1, res)
	}
	return res
}

// CNDFHost is the float64 host reference of CNDF (exact Φ via erf).
func CNDFHost(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
