package poly

import (
	"math"
	"testing"
	"testing/quick"

	"transpimlib/internal/pimsim"
)

func newDPU() *pimsim.DPU { return pimsim.NewDPU(0, pimsim.Default(), 16) }

func TestFitChebyshevSin(t *testing.T) {
	p, err := FitChebyshev(math.Sin, 0, math.Pi/2, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The fit itself converges below 1e-8; float32 coefficient storage
	// and Horner arithmetic floor the end-to-end error near 1 ULP.
	if e := p.MaxError(math.Sin, 4000); e > 3e-7 {
		t.Fatalf("degree-9 sine fit max error %v", e)
	}
}

func TestFitChebyshevExp(t *testing.T) {
	p, err := FitChebyshev(math.Exp, -0.35, 0.35, 8)
	if err != nil {
		t.Fatal(err)
	}
	if e := p.MaxError(math.Exp, 4000); e > 3e-7 {
		t.Fatalf("degree-8 exp fit max error %v", e)
	}
}

func TestFitChebyshevLog(t *testing.T) {
	p, err := FitChebyshev(math.Log, 0.5, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if e := p.MaxError(math.Log, 4000); e > 1e-6 {
		t.Fatalf("degree-12 log fit max error %v", e)
	}
}

func TestErrorShrinksWithDegree(t *testing.T) {
	prev := math.Inf(1)
	// Stop before the float32 floor (~1.2e-7) flattens the curve.
	for _, d := range []int{3, 5, 7} {
		p, err := FitChebyshev(math.Sin, 0, math.Pi/2, d)
		if err != nil {
			t.Fatal(err)
		}
		e := p.MaxError(math.Sin, 2000)
		if e >= prev {
			t.Errorf("degree %d error %v did not improve on %v", d, e, prev)
		}
		prev = e
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := FitChebyshev(math.Sin, 1, 1, 5); err == nil {
		t.Fatal("empty interval must fail")
	}
	if _, err := FitChebyshev(math.Sin, 0, 1, 40); err == nil {
		t.Fatal("excessive degree must fail")
	}
	if _, err := FitChebyshev(math.Sin, 0, 1, -1); err == nil {
		t.Fatal("negative degree must fail")
	}
}

func TestDegreeZeroIsConstant(t *testing.T) {
	p, err := FitChebyshev(func(float64) float64 { return 7 }, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.EvalHost(0.3); math.Abs(float64(got)-7) > 1e-6 {
		t.Fatalf("constant fit = %v", got)
	}
}

func TestEvalDeviceMatchesHost(t *testing.T) {
	p, _ := FitChebyshev(math.Sin, 0, math.Pi/2, 9)
	dpu := newDPU()
	cx := dpu.NewCtx()
	f := func(u float32) bool {
		x := float32(math.Abs(math.Mod(float64(u), math.Pi/2)))
		return p.Eval(cx, x) == p.EvalHost(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEvalCostLinearInDegree(t *testing.T) {
	cost := func(d int) uint64 {
		p, err := FitChebyshev(math.Sin, 0, 1, d)
		if err != nil {
			t.Fatal(err)
		}
		dpu := newDPU()
		p.Eval(dpu.NewCtx(), 0.5)
		return dpu.Cycles()
	}
	c5, c10, c20 := cost(5), cost(10), cost(20)
	if (c10 - c5) != (c20-c10)/2 {
		t.Fatalf("per-degree cost not constant: %d %d %d", c5, c10, c20)
	}
	// One FMul+FAdd per degree.
	cm := pimsim.Default()
	perDeg := c10 - c5
	want := uint64(5 * (cm.FMul + cm.FAdd + 1))
	if perDeg != want {
		t.Fatalf("5 extra degrees cost %d, want %d", perDeg, want)
	}
}

func TestEvalMultiplyCount(t *testing.T) {
	// The Fig. 5 argument: polynomial evaluation needs ~1 multiply per
	// term, so a high-accuracy fit multiplies ~10× more than any LUT.
	p, _ := FitChebyshev(math.Sin, 0, math.Pi/2, 9)
	dpu := newDPU()
	p.Eval(dpu.NewCtx(), 0.5)
	if got := dpu.Counters().Ops[pimsim.OpFMul]; got != 10 {
		t.Fatalf("degree-9 Horner used %d fmuls, want 10 (incl. input map)", got)
	}
}

func TestDegreeFor(t *testing.T) {
	p, err := DegreeFor(math.Sin, 0, math.Pi/2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxError(math.Sin, 2000) > 1e-6 {
		t.Fatal("DegreeFor result misses target")
	}
	if p.Degree() > 12 {
		t.Fatalf("DegreeFor picked needlessly high degree %d", p.Degree())
	}
	if _, err := DegreeFor(math.Tan, 0, 1.57, 1e-12); err == nil {
		t.Fatal("impossible target must fail")
	}
}

func TestCNDFAgainstErf(t *testing.T) {
	dpu := newDPU()
	cx := dpu.NewCtx()
	expf := func(c *pimsim.Ctx, x float32) float32 {
		return float32(math.Exp(float64(x))) // exact exp isolates the A&S error
	}
	var worst float64
	for x := -6.0; x <= 6.0; x += 0.01 {
		got := float64(CNDF(cx, float32(x), expf))
		if e := math.Abs(got - CNDFHost(x)); e > worst {
			worst = e
		}
	}
	// Abramowitz–Stegun 26.2.17 is accurate to ~7.5e-8 in float64; our
	// float32 evaluation adds rounding noise.
	if worst > 1e-6 {
		t.Fatalf("CNDF max error %v", worst)
	}
}

func TestCNDFSymmetry(t *testing.T) {
	dpu := newDPU()
	cx := dpu.NewCtx()
	expf := func(c *pimsim.Ctx, x float32) float32 { return float32(math.Exp(float64(x))) }
	f := func(u float32) bool {
		x := float32(math.Mod(float64(u), 6))
		a := float64(CNDF(cx, x, expf))
		b := float64(CNDF(cx, -x, expf))
		return math.Abs(a+b-1) < 2e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCNDFBounds(t *testing.T) {
	dpu := newDPU()
	cx := dpu.NewCtx()
	expf := func(c *pimsim.Ctx, x float32) float32 { return float32(math.Exp(float64(x))) }
	if got := CNDF(cx, 8, expf); got < 0.9999 || got > 1.0001 {
		t.Fatalf("Φ(8) = %v", got)
	}
	if got := CNDF(cx, -8, expf); got > 0.0001 || got < -0.0001 {
		t.Fatalf("Φ(-8) = %v", got)
	}
	if got := CNDF(cx, 0, expf); math.Abs(float64(got)-0.5) > 1e-6 {
		t.Fatalf("Φ(0) = %v", got)
	}
}

func TestBytes(t *testing.T) {
	p, _ := FitChebyshev(math.Sin, 0, 1, 9)
	if p.Bytes() != 40 {
		t.Fatalf("Bytes = %d, want 40", p.Bytes())
	}
}
