package pimsim

import (
	"fmt"

	"transpimlib/internal/fixed"
	"transpimlib/internal/fpbits"
)

// Architectural constants of the simulated PIM core, matching the
// UPMEM DPU (§2.1 of the paper).
const (
	DefaultMRAMSize = 64 << 20 // 64 MB DRAM bank per PIM core
	DefaultWRAMSize = 64 << 10 // 64 KB scratchpad per PIM core
	DefaultIRAMSize = 24 << 10 // 24 KB instruction memory (informational)

	// PipelineDepth is the minimum issue distance, in cycles, between
	// two instructions of the same tasklet (the UPMEM "revolver"
	// pipeline needs ≥11 resident tasklets for full throughput).
	PipelineDepth = 11

	// DefaultTasklets is the number of PIM threads per core used in the
	// paper's experiments (§4.3: "16 PIM threads each").
	DefaultTasklets = 16

	// DefaultClockHz is the PIM core clock (350 MHz, §4.1).
	DefaultClockHz = 350e6
)

// DPU is one simulated PIM core together with its private memories and
// cycle/operation accounting.
type DPU struct {
	ID   int
	MRAM *Mem
	WRAM *Mem

	model    CostModel
	tasklets int

	issueCycles uint64 // pipeline-issue cycles charged by Ctx ops
	dmaCycles   uint64 // DMA-engine busy cycles (MRAM transfers)
	counters    Counters
}

// NewDPU creates a PIM core with the given cost model and resident
// tasklet count.
func NewDPU(id int, model CostModel, tasklets int) *DPU {
	if tasklets <= 0 {
		tasklets = DefaultTasklets
	}
	return &DPU{
		ID:       id,
		MRAM:     NewMem(fmt.Sprintf("mram[%d]", id), DefaultMRAMSize, 8),
		WRAM:     NewMem(fmt.Sprintf("wram[%d]", id), DefaultWRAMSize, 4),
		model:    model,
		tasklets: tasklets,
	}
}

// Model returns the DPU's cost model.
func (d *DPU) Model() CostModel { return d.model }

// Tasklets returns the number of resident PIM threads.
func (d *DPU) Tasklets() int { return d.tasklets }

// IssueCycles returns the raw pipeline-issue cycles charged so far,
// before the pipeline-occupancy correction.
func (d *DPU) IssueCycles() uint64 { return d.issueCycles }

// DMACycles returns the cycles the DMA engine has been busy.
func (d *DPU) DMACycles() uint64 { return d.dmaCycles }

// Cycles returns the modeled total execution cycles:
//
//	max(issue × max(1, PipelineDepth/tasklets), dma)
//
// With ≥11 tasklets the pipeline sustains one instruction per cycle, so
// total cycles equal charged issue cycles; with fewer tasklets the
// pipeline stalls between instructions of the same thread. DMA latency
// is overlapped with execution and only surfaces when the DMA engine is
// the bottleneck — which is how the paper's observation that MRAM- and
// WRAM-resident LUTs perform alike (§4.2.1, observation 4) emerges.
func (d *DPU) Cycles() uint64 {
	pipe := d.issueCycles
	if d.tasklets < PipelineDepth {
		pipe = (d.issueCycles*PipelineDepth + uint64(d.tasklets) - 1) / uint64(d.tasklets)
	}
	if d.dmaCycles > pipe {
		return d.dmaCycles
	}
	return pipe
}

// Seconds converts Cycles to wall time at the given core clock.
func (d *DPU) Seconds(clockHz float64) float64 {
	return float64(d.Cycles()) / clockHz
}

// Counters returns a copy of the per-class operation counters.
func (d *DPU) Counters() Counters { return d.counters }

// ResetCycles zeroes all cycle and operation accounting but leaves
// memory contents intact (like rereading a hardware counter).
func (d *DPU) ResetCycles() {
	d.issueCycles = 0
	d.dmaCycles = 0
	d.counters = Counters{}
}

// Ctx is the execution context a kernel uses on a DPU. Every method
// both performs the real computation and charges the cycle cost of the
// equivalent instruction sequence on the PIM core.
//
// A Ctx is not safe for concurrent use; a kernel runs single-threaded
// per DPU and models tasklet-level parallelism through the DPU's
// pipeline-occupancy correction.
type Ctx struct {
	d *DPU
	m CostModel

	// dma is the reusable staging buffer for MramRead/MramWrite, so the
	// simulated bulk DMAs do not allocate on every call.
	dma []byte
}

// NewCtx returns an execution context for d.
func (d *DPU) NewCtx() *Ctx { return &Ctx{d: d, m: d.model} }

// DPU returns the core this context executes on.
func (c *Ctx) DPU() *DPU { return c.d }

func (c *Ctx) charge(class OpClass, cycles int) {
	c.d.issueCycles += uint64(cycles)
	c.d.counters.Ops[class]++
	c.d.counters.Cycles[class] += uint64(cycles)
}

// Charge accounts n cycles of control overhead (loop bookkeeping,
// address arithmetic folded into a macro-op, …).
func (c *Ctx) Charge(n int) { c.charge(OpCtrl, n) }

// CycleCount returns the DPU's current modeled cycle count; kernels use
// it like the UPMEM hardware performance counter (§4.1.1).
func (c *Ctx) CycleCount() uint64 { return c.d.Cycles() }

// --- 32-bit integer ops (native, single cycle) ---

// IAdd returns a+b.
func (c *Ctx) IAdd(a, b int32) int32 { c.charge(OpIALU, c.m.IALU); return a + b }

// ISub returns a-b.
func (c *Ctx) ISub(a, b int32) int32 { c.charge(OpIALU, c.m.IALU); return a - b }

// IShl returns a<<s.
func (c *Ctx) IShl(a int32, s uint) int32 { c.charge(OpIALU, c.m.IALU); return a << s }

// IShr returns the arithmetic shift a>>s.
func (c *Ctx) IShr(a int32, s uint) int32 { c.charge(OpIALU, c.m.IALU); return a >> s }

// IUShr returns the logical shift a>>s.
func (c *Ctx) IUShr(a uint32, s uint) uint32 { c.charge(OpIALU, c.m.IALU); return a >> s }

// IAnd returns a&b.
func (c *Ctx) IAnd(a, b int32) int32 { c.charge(OpIALU, c.m.IALU); return a & b }

// IOr returns a|b.
func (c *Ctx) IOr(a, b int32) int32 { c.charge(OpIALU, c.m.IALU); return a | b }

// IXor returns a^b.
func (c *Ctx) IXor(a, b int32) int32 { c.charge(OpIALU, c.m.IALU); return a ^ b }

// ICmp compares a and b, returning -1/0/+1.
func (c *Ctx) ICmp(a, b int32) int {
	c.charge(OpIALU, c.m.IALU)
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// IMul returns a*b through the emulated 32-bit multiply.
func (c *Ctx) IMul(a, b int32) int32 { c.charge(OpIMul, c.m.IMul); return a * b }

// IDiv returns a/b through the emulated 32-bit divide.
func (c *Ctx) IDiv(a, b int32) int32 { c.charge(OpIDiv, c.m.IDiv); return a / b }

// Branch accounts a conditional branch.
func (c *Ctx) Branch() { c.charge(OpCtrl, c.m.Branch) }

// Move accounts a register move.
func (c *Ctx) Move() { c.charge(OpCtrl, c.m.Move) }

// --- 64-bit integer ops (multi-instruction on the 32-bit datapath) ---

// I64Add returns a+b on the 64-bit emulated path.
func (c *Ctx) I64Add(a, b int64) int64 { c.charge(OpI64, c.m.I64Add); return a + b }

// I64Sub returns a-b on the 64-bit emulated path.
func (c *Ctx) I64Sub(a, b int64) int64 { c.charge(OpI64, c.m.I64Add); return a - b }

// I64Shl returns a<<s on the 64-bit emulated path.
func (c *Ctx) I64Shl(a int64, s uint) int64 { c.charge(OpI64, c.m.I64Shl); return a << s }

// I64Shr returns the arithmetic shift a>>s on the 64-bit emulated path.
func (c *Ctx) I64Shr(a int64, s uint) int64 { c.charge(OpI64, c.m.I64Shr); return a >> s }

// I64Neg returns -a.
func (c *Ctx) I64Neg(a int64) int64 { c.charge(OpI64, c.m.I64Add); return -a }

// I64Cmp compares a and b, returning -1/0/+1.
func (c *Ctx) I64Cmp(a, b int64) int {
	c.charge(OpI64, c.m.I64Add)
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// --- Q3.28 fixed-point ops ---

// QAdd returns a+b; a native integer add.
func (c *Ctx) QAdd(a, b fixed.Q3_28) fixed.Q3_28 { c.charge(OpIALU, c.m.IALU); return a.Add(b) }

// QSub returns a-b; a native integer subtract.
func (c *Ctx) QSub(a, b fixed.Q3_28) fixed.Q3_28 { c.charge(OpIALU, c.m.IALU); return a.Sub(b) }

// QMul returns the fixed-point product, charged as the emulated 64-bit
// multiply sequence — the paper's "fixed-point multiplications
// [significantly cheaper] than floating-point multiplications" (§4.2.1).
func (c *Ctx) QMul(a, b fixed.Q3_28) fixed.Q3_28 { c.charge(OpI64, c.m.I64Mul); return a.Mul(b) }

// QAbs returns |a| with saturation (Abs(Min) = Max), charged as the
// compare-and-negate pair.
func (c *Ctx) QAbs(a fixed.Q3_28) fixed.Q3_28 { c.charge(OpIALU, 2*c.m.IALU); return a.Abs() }

// QDiv returns the fixed-point quotient, charged as the emulated
// 64-bit shift-divide sequence.
func (c *Ctx) QDiv(a, b fixed.Q3_28) fixed.Q3_28 { c.charge(OpIDiv, c.m.IDiv+4); return a.Div(b) }

// QShr returns a>>s.
func (c *Ctx) QShr(a fixed.Q3_28, s uint) fixed.Q3_28 { c.charge(OpIALU, c.m.IALU); return a.Shr(s) }

// QShl returns a<<s.
func (c *Ctx) QShl(a fixed.Q3_28, s uint) fixed.Q3_28 { c.charge(OpIALU, c.m.IALU); return a.Shl(s) }

// QFromF converts float32 → Q3.28 (an FToI-class conversion).
func (c *Ctx) QFromF(f float32) fixed.Q3_28 {
	c.charge(OpConv, c.m.FToI)
	return fixed.FromFloat32(f)
}

// QToF converts Q3.28 → float32 (an IToF-class conversion).
func (c *Ctx) QToF(q fixed.Q3_28) float32 {
	c.charge(OpConv, c.m.IToF)
	return q.Float32()
}

// --- software floating point ---

// FAdd returns a+b through the emulated float path.
func (c *Ctx) FAdd(a, b float32) float32 { c.charge(OpFAdd, c.m.FAdd); return a + b }

// FSub returns a-b through the emulated float path.
func (c *Ctx) FSub(a, b float32) float32 { c.charge(OpFAdd, c.m.FSub); return a - b }

// FMul returns a*b through the emulated float path.
func (c *Ctx) FMul(a, b float32) float32 { c.charge(OpFMul, c.m.FMul); return a * b }

// FDiv returns a/b through the emulated float path.
func (c *Ctx) FDiv(a, b float32) float32 { c.charge(OpFDiv, c.m.FDiv); return a / b }

// FNeg returns -a (a one-instruction sign-bit flip).
func (c *Ctx) FNeg(a float32) float32 { c.charge(OpFMisc, c.m.FNeg); return -a }

// FAbs returns |a| (a one-instruction mask).
func (c *Ctx) FAbs(a float32) float32 {
	c.charge(OpFMisc, c.m.FNeg)
	return fpbits.FromBits(fpbits.Bits(a) &^ fpbits.SignMask)
}

// FCmp compares a and b, returning -1/0/+1.
func (c *Ctx) FCmp(a, b float32) int {
	c.charge(OpFMisc, c.m.FCmp)
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// FToIRound converts a float32 to the nearest int32 (ties to even).
func (c *Ctx) FToIRound(a float32) int32 {
	c.charge(OpConv, c.m.FToI)
	return RoundToEven32(a)
}

// FToITrunc converts a float32 to int32 truncating toward zero.
func (c *Ctx) FToITrunc(a float32) int32 { c.charge(OpConv, c.m.FToI); return int32(a) }

// FToIFloor converts a float32 to int32 rounding toward -∞.
func (c *Ctx) FToIFloor(a float32) int32 {
	c.charge(OpConv, c.m.FToI)
	return FloorToInt32(a)
}

// IToF converts an int32 to float32.
func (c *Ctx) IToF(a int32) float32 { c.charge(OpConv, c.m.IToF); return float32(a) }

// Ldexp returns f×2ⁿ through TransPimLib's custom C99 ldexp (§3.2.2):
// integer manipulation of the exponent field.
func (c *Ctx) Ldexp(f float32, n int) float32 {
	c.charge(OpLdexp, c.m.Ldexp)
	return fpbits.Ldexp(f, n)
}

// Frexp splits f into mantissa ∈ [0.5,1) and exponent; the integer
// bit-field split used by range extension (§2.2.3).
func (c *Ctx) Frexp(f float32) (float32, int) {
	c.charge(OpFrexp, c.m.Frexp)
	return fpbits.Frexp(f)
}

// FBits exposes the raw bit pattern (a free reinterpretation on
// hardware; charged as a move).
func (c *Ctx) FBits(f float32) uint32 { c.charge(OpCtrl, c.m.Move); return fpbits.Bits(f) }

// FFromBits reinterprets bits as float32 (charged as a move).
func (c *Ctx) FFromBits(b uint32) float32 { c.charge(OpCtrl, c.m.Move); return fpbits.FromBits(b) }

// F32ToFix64 converts a float32 to a 64-bit fixed-point value with the
// given number of fractional bits, charged as a float→int conversion
// plus the 64-bit scaling shifts.
func (c *Ctx) F32ToFix64(f float32, frac uint) int64 {
	c.charge(OpConv, c.m.FToI)
	c.charge(OpI64, c.m.I64Shl)
	return int64(float64(f) * float64(uint64(1)<<frac))
}

// Fix64ToF32 converts a 64-bit fixed-point value back to float32,
// charged as the 64-bit scaling shift plus an int→float conversion.
func (c *Ctx) Fix64ToF32(v int64, frac uint) float32 {
	c.charge(OpI64, c.m.I64Shr)
	c.charge(OpConv, c.m.IToF)
	return float32(float64(v) / float64(uint64(1)<<frac))
}

// --- memory access ---

// WramLoadF32 loads a float32 from the scratchpad.
func (c *Ctx) WramLoadF32(addr int) float32 {
	c.charge(OpWRAM, c.m.WRAMLoad)
	return c.d.WRAM.Float32(addr)
}

// WramStoreF32 stores a float32 to the scratchpad.
func (c *Ctx) WramStoreF32(addr int, v float32) {
	c.charge(OpWRAM, c.m.WRAMStore)
	c.d.WRAM.PutFloat32(addr, v)
}

// WramLoadI32 loads an int32 from the scratchpad.
func (c *Ctx) WramLoadI32(addr int) int32 {
	c.charge(OpWRAM, c.m.WRAMLoad)
	return c.d.WRAM.Int32(addr)
}

// WramStoreI32 stores an int32 to the scratchpad.
func (c *Ctx) WramStoreI32(addr int, v int32) {
	c.charge(OpWRAM, c.m.WRAMStore)
	c.d.WRAM.PutInt32(addr, v)
}

// WramLoadI64 loads an int64 from the scratchpad (two word accesses).
func (c *Ctx) WramLoadI64(addr int) int64 {
	c.charge(OpWRAM, 2*c.m.WRAMLoad)
	return c.d.WRAM.Int64(addr)
}

// MramLoadF32 loads a float32 from the DRAM bank through the DMA
// engine. The issuing instruction occupies the pipeline briefly; the
// transfer occupies the DMA engine, overlapped with other tasklets.
func (c *Ctx) MramLoadF32(addr int) float32 {
	c.mramAccess(8) // minimum DMA granularity is 8 bytes
	return c.d.MRAM.Float32(addr)
}

// MramStoreF32 stores a float32 to the DRAM bank through the DMA engine.
func (c *Ctx) MramStoreF32(addr int, v float32) {
	c.mramAccess(8)
	c.d.MRAM.PutFloat32(addr, v)
}

// MramLoadI32 loads an int32 from the DRAM bank.
func (c *Ctx) MramLoadI32(addr int) int32 {
	c.mramAccess(8)
	return c.d.MRAM.Int32(addr)
}

// MramLoadI64 loads an int64 from the DRAM bank.
func (c *Ctx) MramLoadI64(addr int) int64 {
	c.mramAccess(8)
	return c.d.MRAM.Int64(addr)
}

// MramRead models a bulk DMA of n bytes (a kernel streaming its operand
// chunk from the DRAM bank into the scratchpad, §4.1.1) and copies the
// bytes into the scratchpad at wramAddr.
func (c *Ctx) MramRead(mramAddr, wramAddr, n int) {
	c.mramAccess(n)
	buf := c.dmaBuf(n)
	c.d.MRAM.Read(mramAddr, buf)
	c.d.WRAM.Write(wramAddr, buf)
}

// MramWrite models a bulk DMA of n bytes from scratchpad to DRAM bank.
func (c *Ctx) MramWrite(wramAddr, mramAddr, n int) {
	c.mramAccess(n)
	buf := c.dmaBuf(n)
	c.d.WRAM.Read(wramAddr, buf)
	c.d.MRAM.Write(mramAddr, buf)
}

// dmaBuf returns the Ctx's staging buffer sized to n bytes, growing it
// when a larger DMA comes through. The contents are fully overwritten
// by the caller before use.
func (c *Ctx) dmaBuf(n int) []byte {
	if cap(c.dma) < n {
		c.dma = make([]byte, n)
	}
	return c.dma[:n]
}

func (c *Ctx) mramAccess(bytes int) {
	c.charge(OpMRAM, c.m.MRAMIssue)
	c.d.dmaCycles += uint64(c.m.MRAMLatency) + uint64(float64(bytes)*c.m.MRAMPerByte)
}

// RoundToEven32 converts a float32 to the nearest int32, ties to even,
// matching the conversion sequence the software float library performs.
// It is the unmetered value function behind Ctx.FToIRound, exported so
// host-side mirrors of device kernels reproduce the exact conversion.
func RoundToEven32(a float32) int32 {
	i := int32(a)
	frac := a - float32(i)
	switch {
	case frac > 0.5 || (frac == 0.5 && i&1 != 0):
		i++
	case frac < -0.5 || (frac == -0.5 && i&1 != 0):
		i--
	}
	return i
}

// FloorToInt32 converts a float32 to int32 rounding toward -∞; the
// unmetered value function behind Ctx.FToIFloor.
func FloorToInt32(a float32) int32 {
	i := int32(a)
	if float32(i) > a {
		i--
	}
	return i
}

// Placement selects which PIM memory holds a lookup table or constant
// array: the 64-KB scratchpad or the core's DRAM bank. §4.2.1
// (observation 4) compares the two.
type Placement int

// Table placement options.
const (
	InWRAM Placement = iota // scratchpad
	InMRAM                  // DRAM bank
)

// String returns the placement name.
func (p Placement) String() string {
	if p == InWRAM {
		return "wram"
	}
	return "mram"
}

// MemFor returns the DPU memory corresponding to the placement.
func (d *DPU) MemFor(p Placement) *Mem {
	if p == InWRAM {
		return d.WRAM
	}
	return d.MRAM
}

// ChargeDMA accounts a bulk MRAM↔WRAM DMA of the given size without
// moving bytes — for kernels that stream operand chunks through the
// scratchpad but keep their working data in the host-side arrays.
func (c *Ctx) ChargeDMA(bytes int) { c.mramAccess(bytes) }

// LoadStreamedF32 reads a float32 the kernel previously streamed into
// the scratchpad with a bulk DMA: charged as a scratchpad load, read
// from the DRAM-bank backing store so the data is not duplicated.
func (c *Ctx) LoadStreamedF32(m *Mem, addr int) float32 {
	c.charge(OpWRAM, c.m.WRAMLoad)
	return m.Float32(addr)
}

// StoreStreamedF32 is the symmetric scratchpad store for results that
// a later bulk DMA writes back to the DRAM bank.
func (c *Ctx) StoreStreamedF32(m *Mem, addr int, v float32) {
	c.charge(OpWRAM, c.m.WRAMStore)
	m.PutFloat32(addr, v)
}
