package pimsim

import (
	"errors"
	"fmt"
)

// Injected-fault sentinel errors. Wrapped errors returned by
// LaunchShardSeq and the TryCharge transfer variants match these via
// errors.Is, so runtimes can distinguish injected faults (recoverable
// by retry/remap/degrade) from genuine kernel errors.
var (
	// ErrDPUFailed marks a hard injected core failure: the lane's
	// kernel did not run.
	ErrDPUFailed = errors.New("pimsim: dpu failed (injected)")
	// ErrTransferFault marks an injected host↔PIM transfer failure.
	// The transfer's time was still charged (a failed attempt costs).
	ErrTransferFault = errors.New("pimsim: transfer fault (injected)")
)

// LaunchVerdict is a FaultAgent's decision for one lane of a kernel
// launch.
type LaunchVerdict struct {
	// Fail skips the lane's kernel and reports the lane failed.
	Fail bool
	// SlowFactor, when > 1, scales the lane's modeled cycle delta for
	// this launch — the straggler model. Ignored when Fail is set.
	SlowFactor float64
}

// FaultAgent decides fault injection for the simulator's launch and
// transfer points. Implementations must be safe for concurrent use
// and deterministic in their arguments (the engine's chaos replays
// depend on it); see internal/faultsim for the seeded implementation.
type FaultAgent interface {
	// Launch is consulted once per lane per LaunchShardSeq attempt.
	// lane is the position in the launch's ids slice.
	Launch(seq, attempt uint64, lane int) LaunchVerdict
	// Transfer is consulted by TryChargeHostToPIM (out=false) and
	// TryChargePIMToHost (out=true); returning true injects a fault.
	Transfer(seq, attempt uint64, out bool) bool
}

// faultAgentBox wraps the interface so atomic.Pointer has a concrete
// element type (the same pattern as the launch observer).
type faultAgentBox struct{ agent FaultAgent }

// SetFaultAgent installs (or, with nil, removes) the system's fault
// agent. With no agent the launch and transfer paths pay one atomic
// load and behave exactly as before — fault injection disabled is the
// bit-identical baseline. Safe for concurrent use with in-flight
// launches: a launch snapshots the agent once at entry.
func (s *System) SetFaultAgent(a FaultAgent) {
	if a == nil {
		s.faultAgent.Store((*faultAgentBox)(nil))
		return
	}
	s.faultAgent.Store(&faultAgentBox{agent: a})
}

func (s *System) loadFaultAgent() FaultAgent {
	box := s.faultAgent.Load()
	if box == nil {
		return nil
	}
	return box.agent
}

// LaunchError aggregates the lanes of one launch that suffered an
// injected hard failure. Lanes are positions in the launch's ids
// slice. errors.Is(err, ErrDPUFailed) matches it.
type LaunchError struct {
	Seq     uint64
	Attempt uint64
	Lanes   []int
}

func (e *LaunchError) Error() string {
	return fmt.Sprintf("pimsim: %d dpu(s) failed (injected, seq %d attempt %d): lanes %v",
		len(e.Lanes), e.Seq, e.Attempt, e.Lanes)
}

func (e *LaunchError) Unwrap() error { return ErrDPUFailed }

// LaunchShardSeq is LaunchShard with a launch identity: the installed
// FaultAgent (if any) is consulted once per lane with (seq, attempt,
// lane). Failed lanes skip their kernel and are reported in a
// *LaunchError; slowed lanes run normally and then have their modeled
// cycle delta scaled by the verdict's factor. A genuine kernel error
// takes precedence over injected failures. With no agent installed it
// is exactly LaunchShard.
func (s *System) LaunchShardSeq(seq, attempt uint64, ids []int, kernel func(ctx *Ctx, dpuID int) error) error {
	return s.launchShard(seq, attempt, ids, kernel)
}

// TryChargeHostToPIM charges Host→PIM transfer time like
// ChargeHostToPIM and then consults the fault agent: an injected
// transfer fault is returned as an error wrapping ErrTransferFault.
// The time is charged either way — a failed attempt still costs.
func (s *System) TryChargeHostToPIM(seq, attempt uint64, totalBytes int, parallel bool) error {
	s.ChargeHostToPIM(totalBytes, parallel)
	if a := s.loadFaultAgent(); a != nil && a.Transfer(seq, attempt, false) {
		return fmt.Errorf("%w: host to pim, seq %d attempt %d", ErrTransferFault, seq, attempt)
	}
	return nil
}

// TryChargePIMToHost is the symmetric PIM→Host checked charge.
func (s *System) TryChargePIMToHost(seq, attempt uint64, totalBytes int, parallel bool) error {
	s.ChargePIMToHost(totalBytes, parallel)
	if a := s.loadFaultAgent(); a != nil && a.Transfer(seq, attempt, true) {
		return fmt.Errorf("%w: pim to host, seq %d attempt %d", ErrTransferFault, seq, attempt)
	}
	return nil
}
