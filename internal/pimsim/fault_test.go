package pimsim

import (
	"errors"
	"testing"
)

// scriptedAgent is a deterministic test FaultAgent: fail/slow specific
// lanes, fail transfers on specific attempts.
type scriptedAgent struct {
	failLanes    map[int]bool
	slowLanes    map[int]float64
	failTransfer func(seq, attempt uint64, out bool) bool
}

func (a scriptedAgent) Launch(seq, attempt uint64, lane int) LaunchVerdict {
	if a.failLanes[lane] {
		return LaunchVerdict{Fail: true}
	}
	if f, ok := a.slowLanes[lane]; ok {
		return LaunchVerdict{SlowFactor: f}
	}
	return LaunchVerdict{}
}

func (a scriptedAgent) Transfer(seq, attempt uint64, out bool) bool {
	if a.failTransfer == nil {
		return false
	}
	return a.failTransfer(seq, attempt, out)
}

func burnKernel(ctx *Ctx, _ int) error {
	for i := 0; i < 100; i++ {
		ctx.FAdd(1, 2)
	}
	return nil
}

// TestLaunchShardSeqFail: failed lanes skip their kernel (no cycles
// charged), surviving lanes run, and the error identifies the lanes.
func TestLaunchShardSeqFail(t *testing.T) {
	sys := NewSystem(Config{DPUs: 4})
	sys.SetFaultAgent(scriptedAgent{failLanes: map[int]bool{1: true, 3: true}})
	err := sys.LaunchShardSeq(7, 0, []int{0, 1, 2, 3}, burnKernel)
	if err == nil {
		t.Fatal("launch with failed lanes returned nil")
	}
	var le *LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("error %T, want *LaunchError", err)
	}
	if !errors.Is(err, ErrDPUFailed) {
		t.Error("LaunchError does not match ErrDPUFailed")
	}
	if le.Seq != 7 || le.Attempt != 0 {
		t.Errorf("LaunchError identity (%d,%d), want (7,0)", le.Seq, le.Attempt)
	}
	if len(le.Lanes) != 2 || le.Lanes[0] != 1 || le.Lanes[1] != 3 {
		t.Errorf("failed lanes %v, want [1 3]", le.Lanes)
	}
	for i := 0; i < 4; i++ {
		cycles := sys.DPU(i).Cycles()
		failed := i == 1 || i == 3
		if failed && cycles != 0 {
			t.Errorf("failed dpu %d charged %d cycles", i, cycles)
		}
		if !failed && cycles == 0 {
			t.Errorf("surviving dpu %d charged no cycles", i)
		}
	}
}

// TestLaunchShardSeqSlow: a slowed lane's cycle delta is scaled by the
// factor relative to a clean lane.
func TestLaunchShardSeqSlow(t *testing.T) {
	sys := NewSystem(Config{DPUs: 2})
	sys.SetFaultAgent(scriptedAgent{slowLanes: map[int]float64{1: 3}})
	if err := sys.LaunchShardSeq(0, 0, []int{0, 1}, burnKernel); err != nil {
		t.Fatal(err)
	}
	clean, slow := sys.DPU(0).IssueCycles(), sys.DPU(1).IssueCycles()
	if slow != clean*3 {
		t.Errorf("slowed lane issue cycles %d, want %d (3x %d)", slow, clean*3, clean)
	}
}

// TestLaunchNilAgentUnchanged: with no agent, LaunchShardSeq charges
// exactly what LaunchShard does.
func TestLaunchNilAgentUnchanged(t *testing.T) {
	a := NewSystem(Config{DPUs: 2})
	b := NewSystem(Config{DPUs: 2})
	if err := a.LaunchShard([]int{0, 1}, burnKernel); err != nil {
		t.Fatal(err)
	}
	if err := b.LaunchShardSeq(99, 5, []int{0, 1}, burnKernel); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if a.DPU(i).Cycles() != b.DPU(i).Cycles() {
			t.Errorf("dpu %d cycles diverge: %d vs %d", i, a.DPU(i).Cycles(), b.DPU(i).Cycles())
		}
	}
}

// TestKernelErrorOutranksInjected: a genuine kernel error is returned
// even when other lanes had injected failures.
func TestKernelErrorOutranksInjected(t *testing.T) {
	sys := NewSystem(Config{DPUs: 2})
	sys.SetFaultAgent(scriptedAgent{failLanes: map[int]bool{0: true}})
	boom := errors.New("boom")
	err := sys.LaunchShardSeq(0, 0, []int{0, 1}, func(ctx *Ctx, id int) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("error %v, want the kernel error", err)
	}
}

// TestTryChargeTransfer: injected transfer faults surface as
// ErrTransferFault but the transfer time is still charged.
func TestTryChargeTransfer(t *testing.T) {
	sys := NewSystem(Config{DPUs: 1})
	sys.SetFaultAgent(scriptedAgent{failTransfer: func(seq, attempt uint64, out bool) bool {
		return attempt == 0 // first attempt fails, retry succeeds
	}})
	if err := sys.TryChargeHostToPIM(1, 0, 4096, true); !errors.Is(err, ErrTransferFault) {
		t.Errorf("host→PIM fault = %v, want ErrTransferFault", err)
	}
	if err := sys.TryChargeHostToPIM(1, 1, 4096, true); err != nil {
		t.Errorf("retry failed: %v", err)
	}
	wantIn := 2 * 4096 / DefaultHostToPIMBandwidth
	if got := sys.HostToPIMSeconds(); got != wantIn {
		t.Errorf("host→PIM seconds %g, want %g (failed attempts still cost)", got, wantIn)
	}
	if err := sys.TryChargePIMToHost(2, 0, 1024, true); !errors.Is(err, ErrTransferFault) {
		t.Errorf("PIM→host fault = %v, want ErrTransferFault", err)
	}
	if got, want := sys.PIMToHostSeconds(), 1024/DefaultPIMToHostBandwidth; got != want {
		t.Errorf("PIM→host seconds %g, want %g", got, want)
	}
	// Removing the agent restores the unchecked behavior.
	sys.SetFaultAgent(nil)
	if err := sys.TryChargePIMToHost(3, 0, 1024, true); err != nil {
		t.Errorf("nil agent injected a fault: %v", err)
	}
}
