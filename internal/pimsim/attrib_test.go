package pimsim

import "testing"

// TestCycleAttribution: with attribution on, each launch charges the
// slowest lane's closed-form cycles — exactly what a caller derives
// from the counter deltas; off (the default), nothing accumulates.
func TestCycleAttribution(t *testing.T) {
	sys := NewSystem(Config{DPUs: 2})
	if err := sys.LaunchShard([]int{0, 1}, burnKernel); err != nil {
		t.Fatal(err)
	}
	if got := sys.AttributedKernelCycles(); got != 0 {
		t.Fatalf("attribution off charged %d cycles", got)
	}

	sys.SetCycleAttribution(true)
	issue0 := []uint64{sys.DPU(0).IssueCycles(), sys.DPU(1).IssueCycles()}
	dma0 := []uint64{sys.DPU(0).DMACycles(), sys.DPU(1).DMACycles()}
	if err := sys.LaunchShard([]int{0, 1}, func(ctx *Ctx, id int) error {
		// Unequal lanes: the attribution must follow the slower one.
		for i := 0; i < 50*(id+1); i++ {
			ctx.FMul(2, 3)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < 2; i++ {
		d := sys.DPU(i)
		c := ClosedFormCycles(d.IssueCycles()-issue0[i], d.DMACycles()-dma0[i], d.Tasklets())
		if c > want {
			want = c
		}
	}
	if want == 0 {
		t.Fatal("kernel charged no cycles")
	}
	if got := sys.AttributedKernelCycles(); got != want {
		t.Fatalf("attributed %d cycles, want %d", got, want)
	}

	// A second launch accumulates; disabling stops the accumulation.
	if err := sys.LaunchShard([]int{0}, burnKernel); err != nil {
		t.Fatal(err)
	}
	after := sys.AttributedKernelCycles()
	if after <= want {
		t.Fatalf("second launch did not accumulate: %d", after)
	}
	sys.SetCycleAttribution(false)
	if err := sys.LaunchShard([]int{0}, burnKernel); err != nil {
		t.Fatal(err)
	}
	if got := sys.AttributedKernelCycles(); got != after {
		t.Fatalf("disabled launch charged %d → %d", after, got)
	}
}

// TestCycleAttributionWithFaultAgent: attribution composes with an
// installed fault agent — slowed lanes charge their scaled delta.
func TestCycleAttributionWithFaultAgent(t *testing.T) {
	sys := NewSystem(Config{DPUs: 2})
	sys.SetCycleAttribution(true)
	sys.SetFaultAgent(scriptedAgent{slowLanes: map[int]float64{1: 3}})
	if err := sys.LaunchShardSeq(0, 0, []int{0, 1}, burnKernel); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < 2; i++ {
		d := sys.DPU(i)
		c := ClosedFormCycles(d.IssueCycles(), d.DMACycles(), d.Tasklets())
		if c > want {
			want = c
		}
	}
	if got := sys.AttributedKernelCycles(); got != want {
		t.Fatalf("attributed %d cycles under injection, want %d (post-verdict)", got, want)
	}
}
