package pimsim

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// The simulated memories are little-endian byte arrays (matching the
// UPMEM DPU). On a little-endian host a []float32 therefore has the
// exact byte layout of its simulated image, and the typed bulk
// accessors can copy through an unsafe byte view instead of encoding
// one element at a time. The probe runs once; big-endian hosts fall
// back to the portable per-element path.
var hostLittleEndian = func() bool {
	var probe uint32 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

func f32Bytes(vs []float32) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), 4*len(vs))
}

// WriteF32s bulk-stores a float32 slice starting at addr, bypassing
// per-element encoding on little-endian hosts.
func (m *Mem) WriteF32s(addr int, vs []float32) {
	if len(vs) == 0 {
		return
	}
	m.ensure(addr + 4*len(vs))
	dst := m.data[addr : addr+4*len(vs)]
	if hostLittleEndian {
		copy(dst, f32Bytes(vs))
		return
	}
	for i, v := range vs {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// ReadF32s bulk-loads len(out) float32 values starting at addr,
// bypassing per-element decoding on little-endian hosts.
func (m *Mem) ReadF32s(addr int, out []float32) {
	if len(out) == 0 {
		return
	}
	m.ensure(addr + 4*len(out))
	src := m.data[addr : addr+4*len(out)]
	if hostLittleEndian {
		copy(f32Bytes(out), src)
		return
	}
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}
