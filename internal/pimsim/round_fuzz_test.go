package pimsim

import (
	"math"
	"testing"
)

// FuzzRoundToEven32 pins the device round-to-nearest-even conversion
// against math.RoundToEven over the int32-representable float32 range,
// including the ±0.5 ties the integer-frac implementation handles
// explicitly.
func FuzzRoundToEven32(f *testing.F) {
	seeds := []float32{
		0, 0.5, -0.5, 1.5, -1.5, 2.5, -2.5, 0.49999997, -0.49999997,
		1, -1, 123456.5, -123456.5, 8388608.5, 2147483520,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, a float32) {
		// The device conversion is only defined where the result fits
		// an int32; 2147483520 is the largest float32 below 2^31.
		if math.IsNaN(float64(a)) || a < -2147483648 || a > 2147483520 {
			t.Skip()
		}
		want := int32(math.RoundToEven(float64(a)))
		if got := RoundToEven32(a); got != want {
			t.Fatalf("RoundToEven32(%v) = %d, want %d", a, got, want)
		}
	})
}

// TestRoundToEven32Ties pins the tie cases deterministically (the fuzz
// seeds only guarantee coverage under -fuzz).
func TestRoundToEven32Ties(t *testing.T) {
	cases := []struct {
		in   float32
		want int32
	}{
		{0.5, 0}, {-0.5, 0}, {1.5, 2}, {-1.5, -2}, {2.5, 2}, {-2.5, -2},
		{3.5, 4}, {-3.5, -4}, {0, 0}, {1, 1}, {-1, -1},
	}
	for _, c := range cases {
		if got := RoundToEven32(c.in); got != c.want {
			t.Errorf("RoundToEven32(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
