package pimsim

// CostSig is the recorded cost of one straight-line trace through a
// device kernel: per-class operation and cycle counts plus the DMA-
// engine busy cycles the trace incurred. Batch evaluators charge a
// signature n times in one call instead of replaying n × per-op
// charges, with bit-identical accounting.
type CostSig struct {
	Ops   Counters
	Issue uint64 // total pipeline-issue cycles (sum of Ops.Cycles)
	DMA   uint64 // DMA-engine busy cycles
}

// NewSigRecorder returns a Ctx on a throwaway core used purely to
// record cost signatures: run a representative trace through it, then
// harvest with TakeSig. Its memories start empty, so table loads read
// zeros — harmless for cost recording because charge sequences on the
// supported kernels depend only on the input operand, never on loaded
// table values.
func NewSigRecorder(model CostModel) *Ctx {
	return NewDPU(-1, model, DefaultTasklets).NewCtx()
}

// TakeSig snapshots everything charged on the context's core since the
// last TakeSig (or creation) as a CostSig and resets the accounting.
func (c *Ctx) TakeSig() CostSig {
	s := CostSig{Ops: c.d.counters, Issue: c.d.issueCycles, DMA: c.d.dmaCycles}
	c.d.ResetCycles()
	return s
}

// ChargeOps bulk-merges pre-aggregated per-class counts into the
// core's accounting, exactly as if each op had been charged
// individually.
func (c *Ctx) ChargeOps(ops Counters) {
	c.d.counters.Add(&ops)
	c.d.issueCycles += ops.TotalCycles()
}

// ChargeSig charges a recorded signature n times in one step.
func (c *Ctx) ChargeSig(sig *CostSig, n uint64) {
	if n == 0 {
		return
	}
	cnt := &c.d.counters
	for i := range cnt.Ops {
		cnt.Ops[i] += sig.Ops.Ops[i] * n
		cnt.Cycles[i] += sig.Ops.Cycles[i] * n
	}
	c.d.issueCycles += sig.Issue * n
	c.d.dmaCycles += sig.DMA * n
}
