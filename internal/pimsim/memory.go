package pimsim

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Mem is a byte-addressable simulated memory (an MRAM bank or a WRAM
// scratchpad). Backing storage grows on demand so that instantiating
// thousands of DPUs with 64-MB banks does not reserve host memory up
// front. All multi-byte accesses are little-endian, matching the UPMEM
// DPU.
type Mem struct {
	name  string
	size  int // architectural capacity in bytes
	data  []byte
	brk   int // bump-allocator high-water mark
	align int // minimum allocation alignment
}

// NewMem creates a memory of the given architectural size. align is
// the minimum allocation alignment (8 for MRAM, matching the DPU's
// 8-byte DMA granularity; 4 for WRAM).
func NewMem(name string, size, align int) *Mem {
	if size <= 0 {
		panic("pimsim: memory size must be positive")
	}
	if align <= 0 || align&(align-1) != 0 {
		panic("pimsim: alignment must be a positive power of two")
	}
	return &Mem{name: name, size: size, align: align}
}

// Name returns the memory's name (for diagnostics).
func (m *Mem) Name() string { return m.name }

// Size returns the architectural capacity in bytes.
func (m *Mem) Size() int { return m.size }

// Used returns the number of bytes currently allocated.
func (m *Mem) Used() int { return m.brk }

// Free returns the number of unallocated bytes.
func (m *Mem) Free() int { return m.size - m.brk }

// Alloc reserves n bytes and returns the base address. It returns an
// error when the memory is exhausted — the situation the paper
// describes when LUT sizes outgrow the scratchpad (§4.2.1 observation
// 4) or compete with operand arrays in the DRAM bank (§4.2.3).
func (m *Mem) Alloc(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("pimsim: negative allocation in %s", m.name)
	}
	base := (m.brk + m.align - 1) &^ (m.align - 1)
	if base+n > m.size {
		return 0, fmt.Errorf("pimsim: %s exhausted: need %d bytes at %d, capacity %d",
			m.name, n, base, m.size)
	}
	m.brk = base + n
	return base, nil
}

// MustAlloc is Alloc but panics on exhaustion; for setup code whose
// sizes were already validated.
func (m *Mem) MustAlloc(n int) int {
	a, err := m.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Reset frees all allocations and zeroes the backing store. Only the
// region up to the allocator high-water mark can hold allocated data,
// but raw Write/Put calls may have touched bytes beyond it, so the
// backing store is truncated to the high-water mark: anything past it
// is re-zeroed by ensure on the next growth.
func (m *Mem) Reset() {
	n := m.brk
	if n > len(m.data) {
		n = len(m.data)
	}
	clear(m.data[:n])
	m.data = m.data[:n]
	m.brk = 0
}

func (m *Mem) ensure(end int) {
	if end > m.size {
		panic(fmt.Sprintf("pimsim: %s access at %d beyond capacity %d", m.name, end, m.size))
	}
	if end > len(m.data) {
		grown := make([]byte, roundUp(end, 4096))
		if len(grown) > m.size {
			grown = grown[:m.size]
		}
		copy(grown, m.data)
		m.data = grown
	}
}

func roundUp(v, to int) int { return (v + to - 1) / to * to }

// Write copies raw bytes into memory at addr.
func (m *Mem) Write(addr int, p []byte) {
	m.ensure(addr + len(p))
	copy(m.data[addr:], p)
}

// Read copies len(p) raw bytes out of memory at addr.
func (m *Mem) Read(addr int, p []byte) {
	m.ensure(addr + len(p))
	copy(p, m.data[addr:])
}

// PutUint32 stores a 32-bit word.
func (m *Mem) PutUint32(addr int, v uint32) {
	m.ensure(addr + 4)
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// Uint32 loads a 32-bit word.
func (m *Mem) Uint32(addr int) uint32 {
	m.ensure(addr + 4)
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// PutUint64 stores a 64-bit word.
func (m *Mem) PutUint64(addr int, v uint64) {
	m.ensure(addr + 8)
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// Uint64 loads a 64-bit word.
func (m *Mem) Uint64(addr int) uint64 {
	m.ensure(addr + 8)
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// PutFloat32 stores an IEEE-754 single.
func (m *Mem) PutFloat32(addr int, v float32) { m.PutUint32(addr, math.Float32bits(v)) }

// Float32 loads an IEEE-754 single.
func (m *Mem) Float32(addr int) float32 { return math.Float32frombits(m.Uint32(addr)) }

// PutInt32 stores a 32-bit signed integer.
func (m *Mem) PutInt32(addr int, v int32) { m.PutUint32(addr, uint32(v)) }

// Int32 loads a 32-bit signed integer.
func (m *Mem) Int32(addr int) int32 { return int32(m.Uint32(addr)) }

// PutInt64 stores a 64-bit signed integer.
func (m *Mem) PutInt64(addr int, v int64) { m.PutUint64(addr, uint64(v)) }

// Int64 loads a 64-bit signed integer.
func (m *Mem) Int64(addr int) int64 { return int64(m.Uint64(addr)) }

// WriteFloat32s bulk-stores a float32 slice starting at addr.
func (m *Mem) WriteFloat32s(addr int, vs []float32) { m.WriteF32s(addr, vs) }

// ReadFloat32s bulk-loads len(out) float32 values starting at addr.
func (m *Mem) ReadFloat32s(addr int, out []float32) { m.ReadF32s(addr, out) }

// WriteInt32s bulk-stores an int32 slice starting at addr.
func (m *Mem) WriteInt32s(addr int, vs []int32) {
	m.ensure(addr + 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(m.data[addr+4*i:], uint32(v))
	}
}

// ReadInt32s bulk-loads len(out) int32 values starting at addr.
func (m *Mem) ReadInt32s(addr int, out []int32) {
	m.ensure(addr + 4*len(out))
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(m.data[addr+4*i:]))
	}
}

// WriteInt64s bulk-stores an int64 slice starting at addr.
func (m *Mem) WriteInt64s(addr int, vs []int64) {
	m.ensure(addr + 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(m.data[addr+8*i:], uint64(v))
	}
}
