package pimsim

import (
	"strings"
	"testing"
)

func TestNewMemValidation(t *testing.T) {
	for _, tc := range []struct{ size, align int }{
		{0, 4}, {-1, 4}, {64, 0}, {64, 3}, {64, -8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMem(%d, %d) should panic", tc.size, tc.align)
				}
			}()
			NewMem("bad", tc.size, tc.align)
		}()
	}
}

func TestMustAllocPanicsOnExhaustion(t *testing.T) {
	m := NewMem("tiny", 16, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlloc past capacity should panic")
		}
	}()
	m.MustAlloc(32)
}

func TestAllocNegative(t *testing.T) {
	m := NewMem("m", 64, 4)
	if _, err := m.Alloc(-1); err == nil {
		t.Fatal("negative allocation must fail")
	}
}

func TestMemName(t *testing.T) {
	m := NewMem("bank7", 64, 8)
	if m.Name() != "bank7" || m.Size() != 64 {
		t.Fatal("accessors wrong")
	}
}

func TestErrorMessagesNameTheMemory(t *testing.T) {
	m := NewMem("wram[3]", 64, 4)
	_, err := m.Alloc(128)
	if err == nil || !strings.Contains(err.Error(), "wram[3]") {
		t.Fatalf("exhaustion error should name the memory: %v", err)
	}
}

func TestScatterWrongCount(t *testing.T) {
	s := NewSystem(Config{DPUs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("scatter with wrong buffer count should panic")
		}
	}()
	s.ScatterToMRAM([][]byte{{1}})
}

func TestGatherWrongCount(t *testing.T) {
	s := NewSystem(Config{DPUs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("gather with wrong region count should panic")
		}
	}()
	s.GatherFromMRAMAt([]int{0}, []int{4})
}

func TestCustomBandwidths(t *testing.T) {
	s := NewSystem(Config{DPUs: 2, HostToPIMBandwidth: 1e6, PIMToHostBandwidth: 2e6, SerialBandwidth: 0.5e6})
	s.ChargeHostToPIM(1_000_000, true)
	if got := s.HostToPIMSeconds(); got != 1.0 {
		t.Fatalf("custom bandwidth not honored: %v", got)
	}
	s.ChargePIMToHost(1_000_000, false) // serial
	if got := s.PIMToHostSeconds(); got != 2.0 {
		t.Fatalf("serial bandwidth not honored: %v", got)
	}
}

func TestLaunchDeterministicCycles(t *testing.T) {
	// Host-side concurrency must not perturb the modeled cycle counts.
	run := func() uint64 {
		s := NewSystem(Config{DPUs: 32})
		_ = s.Launch(func(ctx *Ctx, id int) error {
			for i := 0; i < 100+id; i++ {
				ctx.FMul(1.1, 1.1)
			}
			return nil
		})
		return s.KernelCycles()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("cycle counts must be deterministic: %d vs %d", a, b)
	}
}

func TestCtxMiscOps(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	if got := ctx.IAnd(0b1100, 0b1010); got != 0b1000 {
		t.Errorf("IAnd = %b", got)
	}
	if got := ctx.IOr(0b1100, 0b1010); got != 0b1110 {
		t.Errorf("IOr = %b", got)
	}
	if got := ctx.IXor(0b1100, 0b1010); got != 0b0110 {
		t.Errorf("IXor = %b", got)
	}
	if got := ctx.IUShr(0x80000000, 4); got != 0x08000000 {
		t.Errorf("IUShr = %x", got)
	}
	if ctx.ICmp(1, 2) != -1 || ctx.ICmp(2, 1) != 1 || ctx.ICmp(3, 3) != 0 {
		t.Error("ICmp ordering")
	}
	if ctx.I64Cmp(-5, 5) != -1 || ctx.I64Cmp(5, -5) != 1 || ctx.I64Cmp(7, 7) != 0 {
		t.Error("I64Cmp ordering")
	}
	if got := ctx.I64Neg(-9); got != 9 {
		t.Errorf("I64Neg = %d", got)
	}
	if got := ctx.I64Shl(3, 4); got != 48 {
		t.Errorf("I64Shl = %d", got)
	}
	if got := ctx.IMul(-7, 6); got != -42 {
		t.Errorf("IMul = %d", got)
	}
	if got := ctx.IDiv(42, -6); got != -7 {
		t.Errorf("IDiv = %d", got)
	}
	if got := ctx.FNeg(2.5); got != -2.5 {
		t.Errorf("FNeg = %v", got)
	}
	if got := ctx.FAbs(-2.5); got != 2.5 {
		t.Errorf("FAbs = %v", got)
	}
	if ctx.FCmp(1, 2) != -1 || ctx.FCmp(2, 1) != 1 || ctx.FCmp(2, 2) != 0 {
		t.Error("FCmp ordering")
	}
	ctx.Move()
	ctx.Branch()
	if got := ctx.FBits(1.0); got != 0x3F800000 {
		t.Errorf("FBits = %#x", got)
	}
	if got := ctx.FFromBits(0x40000000); got != 2.0 {
		t.Errorf("FFromBits = %v", got)
	}
}

func TestFix64Conversions(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	v := ctx.F32ToFix64(3.25, 40)
	if got := ctx.Fix64ToF32(v, 40); got != 3.25 {
		t.Fatalf("fix64 round trip = %v", got)
	}
	if got := ctx.Fix64ToF32(ctx.F32ToFix64(-0.5, 40), 40); got != -0.5 {
		t.Fatalf("negative fix64 round trip = %v", got)
	}
}

func TestQOps(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	one := ctx.QFromF(1)
	two := ctx.QFromF(2)
	if got := ctx.QDiv(one, two).Float64(); got != 0.5 {
		t.Errorf("QDiv = %v", got)
	}
	if got := ctx.QAbs(ctx.QSub(one, two)).Float64(); got != 1 {
		t.Errorf("QAbs = %v", got)
	}
	if got := ctx.QShl(one, 1).Float64(); got != 2 {
		t.Errorf("QShl = %v", got)
	}
	if got := ctx.QShr(two, 1).Float64(); got != 1 {
		t.Errorf("QShr = %v", got)
	}
}

func TestPlacementString(t *testing.T) {
	if InWRAM.String() != "wram" || InMRAM.String() != "mram" {
		t.Fatal("placement names")
	}
	d := NewDPU(0, Default(), 16)
	if d.MemFor(InWRAM) != d.WRAM || d.MemFor(InMRAM) != d.MRAM {
		t.Fatal("MemFor wrong")
	}
}

func TestStreamedAccessors(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	d.MRAM.MustAlloc(64)
	ctx.StoreStreamedF32(d.MRAM, 8, 4.5)
	if got := ctx.LoadStreamedF32(d.MRAM, 8); got != 4.5 {
		t.Fatalf("streamed round trip = %v", got)
	}
	// Streamed accesses are scratchpad-priced: no DMA charge.
	if d.DMACycles() != 0 {
		t.Fatal("streamed access must not charge the DMA engine")
	}
	ctx.ChargeDMA(64)
	if d.DMACycles() == 0 {
		t.Fatal("ChargeDMA must charge the engine")
	}
}
