package pimsim

import (
	"math"
	"testing"
	"testing/quick"
)

// evenPrograms builds T identical compute-only programs totalling
// `instrs` unit instructions.
func evenPrograms(tasklets, instrsPerTasklet int) []PipeProgram {
	ps := make([]PipeProgram, tasklets)
	for i := range ps {
		ps[i] = PipeProgram{{Instrs: instrsPerTasklet}}
	}
	return ps
}

func TestPipelineFullOccupancyOneInstrPerCycle(t *testing.T) {
	// With ≥11 tasklets the pipeline retires one instruction per cycle.
	cm := Default()
	for _, tasklets := range []int{11, 12, 16, 24} {
		per := 200
		got := SimulatePipeline(evenPrograms(tasklets, per), cm)
		want := uint64(tasklets * per)
		// Small ramp-up slack allowed.
		if got < want || got > want+uint64(PipelineDepth) {
			t.Errorf("tasklets=%d: %d cycles for %d instrs, want ~%d", tasklets, got, tasklets*per, want)
		}
	}
}

func TestPipelineUnderfilledMatchesClosedForm(t *testing.T) {
	cm := Default()
	for _, tasklets := range []int{1, 2, 4, 8, 10} {
		per := 150
		got := SimulatePipeline(evenPrograms(tasklets, per), cm)
		issue := uint64(tasklets * per)
		want := ClosedFormCycles(issue, 0, tasklets)
		rel := math.Abs(float64(got)-float64(want)) / float64(want)
		if rel > 0.02 {
			t.Errorf("tasklets=%d: event model %d vs closed form %d (%.1f%% off)",
				tasklets, got, want, rel*100)
		}
	}
}

func TestPipelineSingleTaskletSpacing(t *testing.T) {
	// One tasklet: every instruction is PipelineDepth cycles apart.
	cm := Default()
	got := SimulatePipeline(evenPrograms(1, 10), cm)
	want := uint64(10 * PipelineDepth)
	if got < want-uint64(PipelineDepth) || got > want+uint64(PipelineDepth) {
		t.Fatalf("single tasklet: %d cycles for 10 instrs, want ~%d", got, want)
	}
}

func TestPipelineDMAOverlapsWithCompute(t *testing.T) {
	// DMA-issuing tasklets block, others keep the pipeline busy: total
	// time is compute-bound when compute ≫ DMA (observation 4).
	cm := Default()
	tasklets := 16
	ps := make([]PipeProgram, tasklets)
	for i := range ps {
		// Interleave compute and small DMA reads, like an MRAM-resident
		// LUT kernel.
		for j := 0; j < 10; j++ {
			ps[i] = append(ps[i], PipeOp{Instrs: 200}, PipeOp{DMABytes: 8})
		}
	}
	got := SimulatePipeline(ps, cm)
	issue := uint64(tasklets * 10 * (200 + 1))
	dma := uint64(tasklets*10) * (uint64(cm.MRAMLatency) + uint64(8*cm.MRAMPerByte))
	want := ClosedFormCycles(issue, dma, tasklets)
	rel := math.Abs(float64(got)-float64(want)) / float64(want)
	if rel > 0.10 {
		t.Fatalf("DMA-overlap: event %d vs closed form %d (%.1f%% off; dma=%d issue=%d)",
			got, want, rel*100, dma, issue)
	}
}

func TestPipelineDMABound(t *testing.T) {
	// Pure-DMA programs are bound by the engine's busy time.
	cm := Default()
	tasklets := 16
	ps := make([]PipeProgram, tasklets)
	for i := range ps {
		for j := 0; j < 20; j++ {
			ps[i] = append(ps[i], PipeOp{DMABytes: 64})
		}
	}
	got := SimulatePipeline(ps, cm)
	perDMA := uint64(cm.MRAMLatency) + uint64(64*cm.MRAMPerByte)
	dma := uint64(tasklets*20) * perDMA
	rel := math.Abs(float64(got)-float64(dma)) / float64(dma)
	if rel > 0.05 {
		t.Fatalf("DMA-bound: event %d vs engine busy %d (%.1f%% off)", got, dma, rel*100)
	}
}

func TestPipelineEmptyPrograms(t *testing.T) {
	cm := Default()
	if got := SimulatePipeline(nil, cm); got != 0 {
		t.Fatalf("no programs should cost 0, got %d", got)
	}
	if got := SimulatePipeline([]PipeProgram{{}, {}}, cm); got != 0 {
		t.Fatalf("empty programs should cost 0, got %d", got)
	}
	if got := SimulatePipeline([]PipeProgram{{{Instrs: 0}}}, cm); got > 1 {
		t.Fatalf("zero-instruction op should cost ~0, got %d", got)
	}
}

func TestPipelineUnevenPrograms(t *testing.T) {
	// Completion is governed by the aggregate instruction count when
	// the pipeline stays full, regardless of skew.
	cm := Default()
	ps := make([]PipeProgram, 16)
	total := 0
	for i := range ps {
		n := 50 + 37*i
		ps[i] = PipeProgram{{Instrs: n}}
		total += n
	}
	got := SimulatePipeline(ps, cm)
	// The tail (longest program minus the shared full-pipeline phase)
	// drains at 1 instruction per PipelineDepth cycles, so allow slack.
	if got < uint64(total) {
		t.Fatalf("cannot finish %d instrs in %d cycles", total, got)
	}
	if got > uint64(total)*2 {
		t.Fatalf("uneven drain too slow: %d cycles for %d instrs", got, total)
	}
}

func TestPropPipelineNeverBeatsTheoreticalBounds(t *testing.T) {
	cm := Default()
	f := func(seed uint8, tasklets8 uint8) bool {
		tasklets := int(tasklets8%16) + 1
		per := int(seed)%80 + 5
		ps := evenPrograms(tasklets, per)
		got := SimulatePipeline(ps, cm)
		issue := uint64(tasklets * per)
		// Never faster than one instruction per cycle, never slower than
		// fully serialized spacing.
		return got >= issue && got <= issue*uint64(PipelineDepth)+uint64(PipelineDepth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestClosedFormAgainstEventModelSweep is the headline validation: the
// formula used by DPU.Cycles stays within a few percent of the event
// model across the (tasklets, compute/DMA mix) plane.
func TestClosedFormAgainstEventModelSweep(t *testing.T) {
	cm := Default()
	for _, tasklets := range []int{1, 4, 8, 11, 16} {
		for _, dmaEvery := range []int{0, 4, 1} { // none, sparse, dense
			ps := make([]PipeProgram, tasklets)
			var issue, dma uint64
			for i := range ps {
				for j := 0; j < 12; j++ {
					ps[i] = append(ps[i], PipeOp{Instrs: 120})
					issue += 120
					if dmaEvery > 0 && j%dmaEvery == 0 {
						ps[i] = append(ps[i], PipeOp{DMABytes: 8})
						issue++
						dma += uint64(cm.MRAMLatency) + uint64(8*cm.MRAMPerByte)
					}
				}
			}
			got := SimulatePipeline(ps, cm)
			want := ClosedFormCycles(issue, dma, tasklets)
			rel := math.Abs(float64(got)-float64(want)) / float64(want)
			// The closed form ignores DMA-wait second-order effects in
			// underfilled pipelines; 25% envelope over the plane.
			if rel > 0.25 {
				t.Errorf("tasklets=%d dmaEvery=%d: event %d vs formula %d (%.0f%% off)",
					tasklets, dmaEvery, got, want, rel*100)
			}
		}
	}
}
