// Package pimsim simulates a generic UPMEM-like processing-in-memory
// system at the functional + cycle-cost level.
//
// The simulated machine follows the paper's generic PIM terminology
// (§2.1): a host CPU, PIM-enabled memory with one PIM core per DRAM
// bank, each core having exclusive access to its 64-MB DRAM bank
// (MRAM), a 64-KB scratchpad (WRAM), and running multiple PIM threads
// (tasklets) on a deeply pipelined, fine-grained multithreaded,
// in-order 32-bit RISC pipeline. Floating-point arithmetic and 32-bit
// integer multiplication/division are not native; they are emulated as
// multi-instruction sequences, which is what the CostModel encodes.
//
// The simulator is a *cost* simulator: kernels are ordinary Go
// functions that perform real arithmetic through a Ctx, and every Ctx
// operation charges the cycle cost the equivalent instruction sequence
// would take on the PIM core. This reproduces the relative cost
// structure that drives every conclusion in the paper (number of
// floating-point multiplies per lookup, iteration counts, DMA versus
// scratchpad placement) without an instruction-level ISA model.
package pimsim

// CostModel gives the cycle cost of each operation class at full
// pipeline utilization (one instruction issued per cycle; multi-cycle
// entries are emulated multi-instruction sequences).
//
// The default values follow the cost ordering reported by the PrIM
// characterization of the UPMEM architecture, which the paper relies
// on: native 32-bit integer ALU operations are single-cycle; 32-bit
// integer multiply/divide are emulated with the 8×8-bit multiplier
// (mul_step) and shift-subtract loops; floating-point operations are
// software-emulated with add < mul ≪ div; and transfers between MRAM
// and WRAM go through a DMA engine whose latency is overlapped with
// computation when enough tasklets are resident.
type CostModel struct {
	// Native integer ALU (32-bit add/sub/shift/logic/compare), moves,
	// and taken/untaken branches.
	IALU   int
	Move   int
	Branch int

	// Emulated 32-bit integer multiply and divide.
	IMul int
	IDiv int

	// 64-bit integer helpers on the 32-bit datapath.
	I64Add int // add/sub with carry: 2-3 instructions
	I64Shl int // variable 64-bit shift
	I64Shr int
	I64Mul int // 64-bit product of 32-bit halves (used by Q3.28 multiply)

	// Software-emulated IEEE-754 single precision.
	FAdd int
	FSub int
	FMul int
	FDiv int
	FNeg int // sign-bit flip: integer xor
	FCmp int // integer compare on massaged bits

	// Conversions.
	FToI int // float32 → int32 (round or truncate)
	IToF int // int32 → float32

	// TransPimLib's custom ldexp (C99): exponent-field integer add with
	// range checks (paper §3.2.2).
	Ldexp int
	// frexp-style exponent/mantissa split used by range extension.
	Frexp int

	// WRAM scratchpad access (native load/store).
	WRAMLoad  int
	WRAMStore int

	// MRAM DMA: the issuing instruction occupies the pipeline for
	// MRAMIssue cycles; the transfer itself occupies the DPU's DMA
	// engine for MRAMLatency + ceil(bytes×MRAMPerByte) cycles, which
	// overlaps with other tasklets' execution.
	MRAMIssue   int
	MRAMLatency int
	MRAMPerByte float64
}

// Default returns the cost model used throughout the reproduction. See
// the package comment and DESIGN.md §4 for the provenance of each
// constant.
func Default() CostModel {
	return CostModel{
		IALU:   1,
		Move:   1,
		Branch: 1,

		IMul: 32,
		IDiv: 56,

		I64Add: 3,
		I64Shl: 7,
		I64Shr: 7,
		I64Mul: 34,

		FAdd: 62,
		FSub: 62,
		FMul: 93,
		FDiv: 210,
		FNeg: 1,
		FCmp: 4,

		FToI: 28,
		IToF: 28,

		Ldexp: 12,
		Frexp: 10,

		WRAMLoad:  1,
		WRAMStore: 1,

		MRAMIssue:   2,
		MRAMLatency: 64,
		MRAMPerByte: 0.5,
	}
}

// OpClass identifies an operation class for per-kernel counting.
type OpClass int

// Operation classes tracked by the per-DPU counters.
const (
	OpIALU OpClass = iota
	OpIMul
	OpIDiv
	OpI64
	OpFAdd
	OpFMul
	OpFDiv
	OpFMisc // neg/cmp
	OpConv  // FToI / IToF
	OpLdexp
	OpFrexp
	OpWRAM
	OpMRAM
	OpCtrl // moves, branches, charged overhead
	numOpClasses
)

var opClassNames = [...]string{
	"ialu", "imul", "idiv", "i64", "fadd", "fmul", "fdiv", "fmisc",
	"conv", "ldexp", "frexp", "wram", "mram", "ctrl",
}

// NumOpClasses returns how many operation classes the counters track,
// for callers that index per-class accumulators by OpClass.
func NumOpClasses() OpClass { return numOpClasses }

// String returns a short lowercase mnemonic for the class.
func (c OpClass) String() string {
	if c < 0 || int(c) >= len(opClassNames) {
		return "op?"
	}
	return opClassNames[c]
}

// Counters accumulates per-class operation and cycle counts.
type Counters struct {
	Ops    [numOpClasses]uint64
	Cycles [numOpClasses]uint64
}

// Add merges other into c.
func (c *Counters) Add(other *Counters) {
	for i := range c.Ops {
		c.Ops[i] += other.Ops[i]
		c.Cycles[i] += other.Cycles[i]
	}
}

// TotalCycles returns the sum of cycles across all classes.
func (c *Counters) TotalCycles() uint64 {
	var t uint64
	for _, v := range c.Cycles {
		t += v
	}
	return t
}

// TotalOps returns the total operation count across all classes.
func (c *Counters) TotalOps() uint64 {
	var t uint64
	for _, v := range c.Ops {
		t += v
	}
	return t
}

// HBMPIMLike returns a cost model for a Samsung-HBM-PIM-class machine
// (§2.1): the PIM unit is a floating-point SIMD pipeline, so FP add
// and multiply are native single-digit-cycle operations, while general
// integer work and division remain comparatively awkward. On such a
// machine the paper's central asymmetry — multiplies dominate LUT
// lookup cost — collapses, which is the architecture-exploration
// experiment the conclusion invites ("TransPimLib methods can be
// suitable for other current and future PIM architectures").
func HBMPIMLike() CostModel {
	cm := Default()
	cm.FAdd = 2
	cm.FSub = 2
	cm.FMul = 2
	cm.FDiv = 16
	cm.FToI = 4
	cm.IToF = 4
	cm.Ldexp = 2
	cm.Frexp = 2
	cm.IMul = 4 // MAD datapath reused for integer products
	return cm
}

// FutureFP32PIM returns a forward-looking profile: a logic-layer PIM
// core with a genuine FP32 unit (e.g. 3D-stacked designs, §5.1) but
// still modest integer/division hardware.
func FutureFP32PIM() CostModel {
	cm := Default()
	cm.FAdd = 4
	cm.FSub = 4
	cm.FMul = 6
	cm.FDiv = 24
	cm.FToI = 6
	cm.IToF = 6
	cm.Ldexp = 3
	cm.Frexp = 3
	return cm
}

// Profiles maps profile names to cost models, for the harness flags.
func Profiles() map[string]CostModel {
	return map[string]CostModel{
		"upmem":   Default(),
		"hbm-pim": HBMPIMLike(),
		"fp32":    FutureFP32PIM(),
	}
}
