package pimsim

// This file contains an instruction-granularity discrete-event model
// of the PIM core's "revolver" pipeline, used to validate the
// closed-form cycle formula in DPU.Cycles (and exercised by the
// ablation benchmarks). The closed form says
//
//	cycles = max(issue × max(1, PipelineDepth/tasklets), dmaBusy)
//
// i.e. with ≥ PipelineDepth resident tasklets the pipeline retires one
// instruction per cycle, below that each tasklet's instructions are
// spaced PipelineDepth cycles apart, and the DMA engine's busy time
// only surfaces when it exceeds the pipeline time. The event model
// below simulates exactly the scheduling that motivates the formula:
// single-issue, round-robin among eligible tasklets, a tasklet
// ineligible for PipelineDepth cycles after each issued instruction,
// and a single DMA engine that blocks the issuing tasklet for the
// transfer latency while the other tasklets keep executing.

// PipeOp is one operation of a tasklet's instruction stream in the
// event model.
type PipeOp struct {
	// Instrs is the number of single-cycle instructions the operation
	// issues (an emulated float add is ~62 of them, etc.).
	Instrs int
	// DMABytes, when nonzero, makes this a DMA operation: one issue
	// instruction, then the tasklet blocks until the transfer engine
	// completes it.
	DMABytes int
}

// PipeProgram is the instruction stream of one tasklet.
type PipeProgram []PipeOp

// SimulatePipeline runs the event-level model for one PIM core: one
// program per resident tasklet, returning the cycle at which the last
// instruction retires and the last DMA completes. The cost model
// supplies the DMA timing.
func SimulatePipeline(programs []PipeProgram, cm CostModel) uint64 {
	n := len(programs)
	if n == 0 {
		return 0
	}
	type taskletState struct {
		pc        int    // next op index
		remaining int    // unit instructions left in the current ALU op
		readyAt   uint64 // earliest cycle the tasklet may issue again
	}
	ts := make([]taskletState, n)
	var now, dmaFree uint64

	finished := func(i int) bool {
		return ts[i].remaining == 0 && ts[i].pc >= len(programs[i])
	}
	allDone := func() bool {
		for i := range ts {
			if !finished(i) {
				return false
			}
		}
		return true
	}

	rr := 0
	for !allDone() {
		issued := false
		for k := 0; k < n && !issued; k++ {
			i := (rr + k) % n
			st := &ts[i]
			if finished(i) || st.readyAt > now {
				continue
			}
			if st.remaining == 0 {
				op := programs[i][st.pc]
				st.pc++
				if op.DMABytes > 0 {
					// One issue instruction this cycle, then block on the
					// engine: the transfer starts when the engine is free.
					latency := uint64(cm.MRAMLatency) + uint64(float64(op.DMABytes)*cm.MRAMPerByte)
					start := now + 1
					if dmaFree > start {
						start = dmaFree
					}
					dmaFree = start + latency
					st.readyAt = dmaFree
					issued = true
					rr = (i + 1) % n
					break
				}
				if op.Instrs <= 0 {
					continue // empty op: costs nothing
				}
				st.remaining = op.Instrs
			}
			st.remaining--
			st.readyAt = now + PipelineDepth
			issued = true
			rr = (i + 1) % n
		}
		if issued {
			now++
			continue
		}
		// Nobody could issue: fast-forward to the next wake-up.
		next := ^uint64(0)
		for i := range ts {
			if !finished(i) && ts[i].readyAt < next {
				next = ts[i].readyAt
			}
		}
		if next == ^uint64(0) || next <= now {
			now++ // defensive: avoid stalling
		} else {
			now = next
		}
	}
	if dmaFree > now {
		return dmaFree
	}
	return now
}

// ClosedFormCycles evaluates the DPU.Cycles formula for a given total
// instruction count, DMA busy time and tasklet count — the quantity
// SimulatePipeline validates.
func ClosedFormCycles(issue, dma uint64, tasklets int) uint64 {
	pipe := issue
	if tasklets < PipelineDepth && tasklets > 0 {
		pipe = (issue*PipelineDepth + uint64(tasklets) - 1) / uint64(tasklets)
	}
	if dma > pipe {
		return dma
	}
	return pipe
}
