package pimsim

import (
	"math"
	"testing"
)

// TestTypedF32RoundTrip cross-checks the bulk typed accessors against
// the scalar Put/Float32 path, including negative zero and NaN
// payloads, which must survive bit-exactly.
func TestTypedF32RoundTrip(t *testing.T) {
	m := NewMem("test", 4096, 4)
	vs := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.Float32frombits(0x7fc00001), // NaN with payload
		3.1415927, -2.7182817,
	}
	m.WriteF32s(64, vs)
	for i, want := range vs {
		if got := m.Float32(64 + 4*i); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("scalar read %d: %v (%#x) != %v (%#x)", i, got, math.Float32bits(got), want, math.Float32bits(want))
		}
	}
	out := make([]float32, len(vs))
	m.ReadF32s(64, out)
	for i, want := range vs {
		if math.Float32bits(out[i]) != math.Float32bits(want) {
			t.Fatalf("bulk read %d: %v != %v", i, out[i], want)
		}
	}
	// Bulk read of values stored through the scalar path.
	for i, v := range vs {
		m.PutFloat32(256+4*i, v)
	}
	m.ReadF32s(256, out)
	for i, want := range vs {
		if math.Float32bits(out[i]) != math.Float32bits(want) {
			t.Fatalf("bulk-after-scalar %d: %v != %v", i, out[i], want)
		}
	}
	// Empty slices are no-ops, not panics.
	m.WriteF32s(0, nil)
	m.ReadF32s(0, nil)
}

// TestMemResetTruncates pins the Reset contract: contents up to the
// allocator high-water mark are zeroed, the backing store is truncated
// to it, and bytes raw-written beyond it (never allocated) read back
// as zero after the next growth.
func TestMemResetTruncates(t *testing.T) {
	m := NewMem("test", 1<<20, 8)
	m.MustAlloc(16)
	m.PutUint32(0, 0xdeadbeef)
	// Raw write far beyond the high-water mark grows the backing store.
	m.PutUint32(1<<16, 0xcafebabe)
	m.Reset()
	if m.Used() != 0 {
		t.Fatalf("Used after Reset = %d", m.Used())
	}
	if got := m.Uint32(0); got != 0 {
		t.Fatalf("allocated region not zeroed: %#x", got)
	}
	// The region beyond brk was dropped by truncation; the re-grown
	// backing store must read zero there too.
	if got := m.Uint32(1 << 16); got != 0 {
		t.Fatalf("beyond-brk region survived Reset: %#x", got)
	}
}
