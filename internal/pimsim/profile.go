package pimsim

// CoreProfile is one PIM core's accounting delta over a single
// kernel launch: modeled cycles, the issue/DMA split behind them, and
// the per-instruction-class operation and cycle counters — the same
// decomposition as the paper's Fig. 7 per-method cycle breakdowns
// (mul vs. shift vs. load vs. branch), but captured per core per
// launch on a live system.
type CoreProfile struct {
	DPU         int
	Tasklets    int
	Cycles      uint64 // modeled completion cycles of this launch
	IssueCycles uint64 // pipeline-issue cycles charged
	DMACycles   uint64 // DMA-engine busy cycles
	Counters    Counters
}

// PerTasklet returns the estimated issue-cycle share of each resident
// tasklet. The simulator models tasklet-level parallelism through the
// pipeline-occupancy correction rather than per-thread scheduling, so
// the attribution is the even split a round-robin revolver pipeline
// produces, with the remainder spread over the first tasklets.
func (p CoreProfile) PerTasklet() []uint64 {
	if p.Tasklets <= 0 {
		return nil
	}
	out := make([]uint64, p.Tasklets)
	base := p.IssueCycles / uint64(p.Tasklets)
	rem := p.IssueCycles % uint64(p.Tasklets)
	for i := range out {
		out[i] = base
		if uint64(i) < rem {
			out[i]++
		}
	}
	return out
}

// LaunchProfile is the per-core accounting of one LaunchShard call.
type LaunchProfile struct {
	Cores []CoreProfile
}

// SlowestCycles returns the launch's completion time in cycles (the
// slowest core, since cores run concurrently).
func (p LaunchProfile) SlowestCycles() uint64 {
	var mx uint64
	for _, c := range p.Cores {
		if c.Cycles > mx {
			mx = c.Cycles
		}
	}
	return mx
}

// Total merges every core's per-class counters.
func (p LaunchProfile) Total() Counters {
	var t Counters
	for i := range p.Cores {
		t.Add(&p.Cores[i].Counters)
	}
	return t
}

// LaunchObserver receives the per-core profile of each completed
// LaunchShard call. Observers run on the launching goroutine after
// all kernels finish and before LaunchShard returns; they must not
// retain the slice past the call if they mutate it.
type LaunchObserver func(LaunchProfile)

// SetLaunchObserver installs (or, with nil, removes) the system's
// launch observer. The nil-sink fast path costs one atomic load per
// LaunchShard — nothing per instruction — so profiling is free when
// disabled. Safe for concurrent use with in-flight launches: a launch
// snapshots the observer once at entry.
func (s *System) SetLaunchObserver(obs LaunchObserver) {
	if obs == nil {
		s.observer.Store((*launchObserverBox)(nil))
		return
	}
	s.observer.Store(&launchObserverBox{fn: obs})
}

// launchObserverBox wraps the func so atomic.Pointer has a concrete
// comparable element type.
type launchObserverBox struct{ fn LaunchObserver }

func (s *System) loadObserver() LaunchObserver {
	box := s.observer.Load()
	if box == nil {
		return nil
	}
	return box.fn
}
