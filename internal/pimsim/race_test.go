package pimsim

import (
	"sync"
	"testing"
)

// TestConcurrentShardLaunches is the -race regression test for the
// System ownership discipline: several goroutines each own a disjoint
// shard of the same System and concurrently (1) write inputs into
// pre-touched MRAM buffers, (2) charge host→PIM transfer time, (3)
// launch a kernel on their shard, (4) charge PIM→host transfer time,
// and (5) read back results and their own cores' cycle counters —
// exactly the stage structure of internal/engine. Run with -race.
func TestConcurrentShardLaunches(t *testing.T) {
	const (
		shards   = 4
		perShard = 2
		elems    = 64
		rounds   = 25
	)
	sys := NewSystem(Config{DPUs: shards * perShard})

	// Per-DPU input/output buffers, pre-touched so Mem growth happens
	// before any concurrency (the documented discipline).
	inAddr := make([]int, sys.NumDPUs())
	outAddr := make([]int, sys.NumDPUs())
	zero := make([]byte, elems*4)
	for i, d := range sys.DPUs() {
		inAddr[i] = d.MRAM.MustAlloc(elems * 4)
		outAddr[i] = d.MRAM.MustAlloc(elems * 4)
		d.MRAM.Write(inAddr[i], zero)
		d.MRAM.Write(outAddr[i], zero)
	}

	var wg sync.WaitGroup
	errc := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ids := make([]int, perShard)
		for k := range ids {
			ids[k] = s*perShard + k
		}
		wg.Add(1)
		go func(shard int, ids []int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, id := range ids {
					m := sys.DPU(id).MRAM
					for j := 0; j < elems; j++ {
						m.PutFloat32(inAddr[id]+4*j, float32(shard+j)+0.5)
					}
				}
				sys.ChargeHostToPIM(perShard*elems*4, true)
				err := sys.LaunchShard(ids, func(ctx *Ctx, id int) error {
					m := ctx.DPU().MRAM
					ctx.ChargeDMA(elems * 4)
					for j := 0; j < elems; j++ {
						x := ctx.LoadStreamedF32(m, inAddr[id]+4*j)
						y := ctx.FAdd(ctx.FMul(x, 2), 1)
						ctx.StoreStreamedF32(m, outAddr[id]+4*j, y)
					}
					ctx.ChargeDMA(elems * 4)
					return nil
				})
				if err != nil {
					errc <- err
					return
				}
				sys.ChargePIMToHost(perShard*elems*4, true)
				for _, id := range ids {
					d := sys.DPU(id)
					if d.Cycles() == 0 {
						t.Errorf("shard %d: dpu %d charged no cycles", shard, id)
					}
					got := d.MRAM.Float32(outAddr[id])
					want := float32(shard)+0.5
					want = want*2 + 1
					if got != want {
						t.Errorf("shard %d dpu %d: got %v, want %v", shard, id, got, want)
					}
				}
				_ = sys.TransferSeconds() // shared clock read under load
			}
		}(s, ids)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if sys.TransferSeconds() <= 0 {
		t.Fatal("no transfer time accumulated")
	}
}
