package pimsim

import "testing"

// TestLaunchObserver: an installed observer must receive the exact
// per-core accounting delta of each launch — not cumulative totals —
// with per-class op counts matching what the kernel charged.
func TestLaunchObserver(t *testing.T) {
	s := NewSystem(Config{DPUs: 2})
	var got []LaunchProfile
	s.SetLaunchObserver(func(p LaunchProfile) { got = append(got, p) })

	kernel := func(ctx *Ctx, dpuID int) error {
		for i := 0; i < 10*(dpuID+1); i++ {
			ctx.IAdd(1, 2)
		}
		ctx.FMul(1.5, 2.5)
		return nil
	}
	for launch := 0; launch < 2; launch++ {
		if err := s.LaunchShard([]int{0, 1}, kernel); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 {
		t.Fatalf("observer fired %d times, want 2", len(got))
	}
	for li, prof := range got {
		if len(prof.Cores) != 2 {
			t.Fatalf("launch %d: %d cores, want 2", li, len(prof.Cores))
		}
		for _, cp := range prof.Cores {
			wantAdds := uint64(10 * (cp.DPU + 1))
			if cp.Counters.Ops[OpIALU] != wantAdds {
				t.Errorf("launch %d dpu %d: ialu ops = %d, want %d (delta, not cumulative)",
					li, cp.DPU, cp.Counters.Ops[OpIALU], wantAdds)
			}
			if cp.Counters.Ops[OpFMul] != 1 {
				t.Errorf("launch %d dpu %d: fmul ops = %d, want 1", li, cp.DPU, cp.Counters.Ops[OpFMul])
			}
			if cp.Cycles == 0 || cp.IssueCycles == 0 {
				t.Errorf("launch %d dpu %d: zero cycle delta", li, cp.DPU)
			}
			if cp.Tasklets <= 0 {
				t.Errorf("launch %d dpu %d: tasklets = %d", li, cp.DPU, cp.Tasklets)
			}
		}
		// DPU 1 did twice the adds, so it is the slowest core.
		if prof.SlowestCycles() != prof.Cores[1].Cycles {
			t.Errorf("launch %d: SlowestCycles = %d, want dpu 1's %d",
				li, prof.SlowestCycles(), prof.Cores[1].Cycles)
		}
		tot := prof.Total()
		if tot.Ops[OpIALU] != 30 {
			t.Errorf("launch %d: total ialu ops = %d, want 30", li, tot.Ops[OpIALU])
		}
	}

	// A shard launch must profile only its own cores.
	got = got[:0]
	if err := s.LaunchShard([]int{1}, kernel); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Cores) != 1 || got[0].Cores[0].DPU != 1 {
		t.Fatalf("shard launch profile = %+v, want dpu 1 only", got)
	}

	// Removing the observer silences it.
	s.SetLaunchObserver(nil)
	got = got[:0]
	if err := s.LaunchShard([]int{0}, kernel); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("observer fired after removal")
	}
}

// TestPerTasklet: the per-tasklet attribution is an even issue-cycle
// split with the remainder spread over the first tasklets.
func TestPerTasklet(t *testing.T) {
	p := CoreProfile{Tasklets: 4, IssueCycles: 10}
	want := []uint64{3, 3, 2, 2}
	got := p.PerTasklet()
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	var sum uint64
	for i, w := range want {
		if got[i] != w {
			t.Errorf("tasklet %d = %d, want %d", i, got[i], w)
		}
		sum += got[i]
	}
	if sum != p.IssueCycles {
		t.Errorf("split loses cycles: %d != %d", sum, p.IssueCycles)
	}
	if (CoreProfile{}).PerTasklet() != nil {
		t.Error("zero tasklets must yield nil")
	}
}
