package pimsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Transfer bandwidths of the host↔PIM interface, in bytes/second,
// for transfers performed in parallel across all DRAM banks (possible
// when all per-bank buffers have the same size, §2.1) and serially
// otherwise. Values follow the PrIM characterization of a 2500-DPU
// UPMEM system.
const (
	DefaultHostToPIMBandwidth = 6.0e9 // aggregate, parallel
	DefaultPIMToHostBandwidth = 4.7e9 // aggregate, parallel
	DefaultSerialBandwidth    = 0.35e9
)

// Config describes a simulated PIM system.
type Config struct {
	DPUs     int       // number of PIM cores
	Tasklets int       // PIM threads per core (default 16)
	ClockHz  float64   // PIM core clock (default 350 MHz)
	Cost     CostModel // per-op cycle costs (default Default())

	HostToPIMBandwidth float64
	PIMToHostBandwidth float64
	SerialBandwidth    float64
}

func (c Config) withDefaults() Config {
	if c.DPUs <= 0 {
		c.DPUs = 1
	}
	if c.Tasklets <= 0 {
		c.Tasklets = DefaultTasklets
	}
	if c.ClockHz <= 0 {
		c.ClockHz = DefaultClockHz
	}
	if c.Cost == (CostModel{}) {
		c.Cost = Default()
	}
	if c.HostToPIMBandwidth <= 0 {
		c.HostToPIMBandwidth = DefaultHostToPIMBandwidth
	}
	if c.PIMToHostBandwidth <= 0 {
		c.PIMToHostBandwidth = DefaultPIMToHostBandwidth
	}
	if c.SerialBandwidth <= 0 {
		c.SerialBandwidth = DefaultSerialBandwidth
	}
	return c
}

// System is a full PIM system: a set of PIM cores plus the host↔PIM
// transfer engine with its timing model.
//
// Concurrency/ownership discipline (for long-lived runtimes such as
// internal/engine that keep several kernels in flight):
//
//   - Each DPU — its Mem contents, allocator and cycle counters — must
//     be owned by at most one goroutine at a time. Concurrent
//     LaunchShard calls are safe when their shards are disjoint.
//   - Mem backing storage grows on demand; a host-side Write racing a
//     kernel on the same core can reallocate it. Owners that overlap
//     host transfers with kernels on the *same* core must pre-touch
//     their buffers (one Write over the full region) before going
//     concurrent.
//   - The transfer clock (ChargeHostToPIM, ChargePIMToHost, and the
//     Scatter/Gather/Broadcast helpers) is shared and internally
//     locked, so any goroutine may charge transfer time at any point.
type System struct {
	cfg  Config
	dpus []*DPU

	mu               sync.Mutex // guards the transfer clocks
	hostToPIMSeconds float64
	pimToHostSeconds float64

	// observer, when set, receives a per-core LaunchProfile after each
	// LaunchShard (see SetLaunchObserver). Atomic so installing or
	// removing it races safely with in-flight launches.
	observer atomic.Pointer[launchObserverBox]

	// faultAgent, when set, injects faults at the launch and transfer
	// points (see SetFaultAgent). Same atomic discipline as observer.
	faultAgent atomic.Pointer[faultAgentBox]

	// attribOn/attribCycles are the cost ledger's cycle-attribution
	// plumb-through: when enabled, every launch accumulates its
	// closed-form cycle count (slowest lane, post-verdict) so a ledger
	// can reconcile per-tenant charges against the simulator exactly.
	// Disabled (the default) the launch path pays one atomic load and
	// allocates nothing.
	attribOn     atomic.Bool
	attribCycles atomic.Uint64
}

// NewSystem builds a system from cfg (zero fields take defaults).
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, dpus: make([]*DPU, cfg.DPUs)}
	for i := range s.dpus {
		s.dpus[i] = NewDPU(i, cfg.Cost, cfg.Tasklets)
	}
	return s
}

// NewSingleDPU is a convenience for microbenchmarks on one PIM core.
func NewSingleDPU() *System { return NewSystem(Config{DPUs: 1}) }

// Config returns the system configuration (with defaults applied).
func (s *System) Config() Config { return s.cfg }

// NumDPUs returns the number of PIM cores.
func (s *System) NumDPUs() int { return len(s.dpus) }

// DPU returns core i.
func (s *System) DPU(i int) *DPU { return s.dpus[i] }

// DPUs returns all cores.
func (s *System) DPUs() []*DPU { return s.dpus }

// Launch runs kernel on every PIM core. Kernels for distinct cores run
// concurrently on the host (bounded by GOMAXPROCS); each kernel sees
// its own Ctx. Launch blocks until all kernels complete and returns the
// first kernel error, if any.
func (s *System) Launch(kernel func(ctx *Ctx, dpuID int) error) error {
	ids := make([]int, len(s.dpus))
	for i := range ids {
		ids[i] = i
	}
	return s.LaunchShard(ids, kernel)
}

// LaunchShard runs kernel on the listed PIM cores only — a rank-level
// launch. Kernels for distinct cores run concurrently on the host
// (bounded by GOMAXPROCS); each kernel sees its own Ctx. LaunchShard
// blocks until all kernels complete and returns the first kernel
// error, if any.
//
// LaunchShard may itself be called concurrently from several
// goroutines as long as their shards are disjoint (see the System
// ownership discipline): a core's memories and counters are touched
// only by its own kernel.
func (s *System) LaunchShard(ids []int, kernel func(ctx *Ctx, dpuID int) error) error {
	return s.launchShard(0, 0, ids, kernel)
}

// launchShard is the shared implementation behind LaunchShard and
// LaunchShardSeq: the worker pool plus the optional observer snapshot
// and fault-agent consultation.
func (s *System) launchShard(seq, attempt uint64, ids []int, kernel func(ctx *Ctx, dpuID int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ids) {
		workers = len(ids)
	}
	// Consult the fault agent once per lane before the kernels start.
	// Verdicts are applied on the launching goroutine (which owns the
	// cores): failed lanes skip their kernel entirely; slowed lanes
	// have their cycle delta scaled after the kernels finish.
	agent := s.loadFaultAgent()
	attrib := s.attribOn.Load()
	var verdicts []LaunchVerdict
	var preIssue, preDMA []uint64
	if agent != nil {
		verdicts = make([]LaunchVerdict, len(ids))
		preIssue = make([]uint64, len(ids))
		preDMA = make([]uint64, len(ids))
		for k := range ids {
			verdicts[k] = agent.Launch(seq, attempt, k)
			d := s.dpus[ids[k]]
			preIssue[k] = d.issueCycles
			preDMA[k] = d.dmaCycles
		}
	} else if attrib {
		// Attribution needs the same pre-launch snapshots the fault agent
		// takes; allocate them only on this (enabled) path.
		preIssue = make([]uint64, len(ids))
		preDMA = make([]uint64, len(ids))
		for k := range ids {
			d := s.dpus[ids[k]]
			preIssue[k] = d.issueCycles
			preDMA[k] = d.dmaCycles
		}
	}
	// Snapshot the shard's accounting before the kernels start when a
	// launch observer is installed. The launching goroutine owns these
	// cores (the shard discipline), so the reads race with nothing;
	// with no observer the cost is one atomic load per launch.
	obs := s.loadObserver()
	var before []CoreProfile
	if obs != nil {
		before = make([]CoreProfile, len(ids))
		for k, i := range ids {
			d := s.dpus[i]
			before[k] = CoreProfile{
				DPU:         i,
				Tasklets:    d.tasklets,
				Cycles:      d.Cycles(),
				IssueCycles: d.issueCycles,
				DMACycles:   d.dmaCycles,
				Counters:    d.counters,
			}
		}
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		err  error
		next int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				k := next
				next++
				mu.Unlock()
				if k >= len(ids) {
					return
				}
				if verdicts != nil && verdicts[k].Fail {
					continue // injected hard failure: the kernel never runs
				}
				i := ids[k]
				if e := kernel(s.dpus[i].NewCtx(), i); e != nil {
					mu.Lock()
					if err == nil {
						err = fmt.Errorf("pimsim: dpu %d: %w", i, e)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Apply the straggler verdicts before the observer snapshot so a
	// profiler sees the slowed (modeled) cycles, and collect the lanes
	// that suffered injected hard failures.
	var failed []int
	if agent != nil {
		for k, v := range verdicts {
			if v.Fail {
				failed = append(failed, k)
				continue
			}
			if v.SlowFactor > 1 {
				d := s.dpus[ids[k]]
				d.issueCycles = preIssue[k] + uint64(float64(d.issueCycles-preIssue[k])*v.SlowFactor)
				d.dmaCycles = preDMA[k] + uint64(float64(d.dmaCycles-preDMA[k])*v.SlowFactor)
			}
		}
	}
	// Charge the attribution counter after the straggler verdicts so the
	// accumulated count equals what a caller derives from the post-launch
	// counters: the slowest lane's closed-form cycles for this launch.
	if attrib {
		var worst uint64
		for k, i := range ids {
			d := s.dpus[i]
			c := ClosedFormCycles(d.issueCycles-preIssue[k], d.dmaCycles-preDMA[k], d.tasklets)
			if c > worst {
				worst = c
			}
		}
		s.attribCycles.Add(worst)
	}
	if obs != nil {
		prof := LaunchProfile{Cores: make([]CoreProfile, len(ids))}
		for k, i := range ids {
			d := s.dpus[i]
			cp := CoreProfile{
				DPU:         i,
				Tasklets:    d.tasklets,
				Cycles:      d.Cycles() - before[k].Cycles,
				IssueCycles: d.issueCycles - before[k].IssueCycles,
				DMACycles:   d.dmaCycles - before[k].DMACycles,
			}
			for cl := range cp.Counters.Ops {
				cp.Counters.Ops[cl] = d.counters.Ops[cl] - before[k].Counters.Ops[cl]
				cp.Counters.Cycles[cl] = d.counters.Cycles[cl] - before[k].Counters.Cycles[cl]
			}
			prof.Cores[k] = cp
		}
		obs(prof)
	}
	if err != nil {
		return err // a genuine kernel error outranks injected failures
	}
	if len(failed) > 0 {
		return &LaunchError{Seq: seq, Attempt: attempt, Lanes: failed}
	}
	return nil
}

// SetCycleAttribution enables or disables per-launch cycle attribution.
// While enabled, every LaunchShard adds its closed-form cycle count —
// the slowest lane's ClosedFormCycles over the launch's counter deltas,
// after any injected straggler verdicts — to an internal accumulator
// read by AttributedKernelCycles. Cost ledgers use this to reconcile
// per-tenant cycle charges against the simulator exactly. Toggling
// races safely with in-flight launches (per-launch atomic load).
func (s *System) SetCycleAttribution(on bool) { s.attribOn.Store(on) }

// AttributedKernelCycles returns the total closed-form kernel cycles
// accumulated across launches while cycle attribution was enabled.
func (s *System) AttributedKernelCycles() uint64 { return s.attribCycles.Load() }

// KernelCycles returns the cycle count of the slowest PIM core — the
// kernel completion time in cycles, since all cores run concurrently.
func (s *System) KernelCycles() uint64 {
	var mx uint64
	for _, d := range s.dpus {
		if c := d.Cycles(); c > mx {
			mx = c
		}
	}
	return mx
}

// KernelSeconds converts KernelCycles to wall time at the PIM clock.
func (s *System) KernelSeconds() float64 {
	return float64(s.KernelCycles()) / s.cfg.ClockHz
}

// ResetCycles zeroes the accounting on every core and the transfer
// clocks, leaving memory contents intact.
func (s *System) ResetCycles() {
	for _, d := range s.dpus {
		d.ResetCycles()
	}
	s.mu.Lock()
	s.hostToPIMSeconds = 0
	s.pimToHostSeconds = 0
	s.mu.Unlock()
}

// ResetMemory frees all MRAM/WRAM allocations on every core.
func (s *System) ResetMemory() {
	for _, d := range s.dpus {
		d.MRAM.Reset()
		d.WRAM.Reset()
	}
}

// BroadcastToMRAM copies the same buffer into every core's DRAM bank at
// the same address, charging parallel-transfer time once (all buffers
// have equal size, so the transfer is parallel across banks, §2.1).
// It returns the common MRAM address.
func (s *System) BroadcastToMRAM(buf []byte) int {
	addr := -1
	for _, d := range s.dpus {
		a := d.MRAM.MustAlloc(len(buf))
		if addr == -1 {
			addr = a
		} else if a != addr {
			panic("pimsim: broadcast allocation diverged across banks")
		}
		d.MRAM.Write(a, buf)
	}
	// Broadcast replicates the buffer to every bank; the interface moves
	// len(buf) bytes to each of the N banks but the copies proceed in
	// parallel rank-wide, so the cost scales with one buffer at the
	// aggregate parallel bandwidth divided by the per-bank share.
	s.ChargeHostToPIM(len(buf)*len(s.dpus), true)
	return addr
}

// ScatterToMRAM distributes per-core buffers (one per DPU). If all
// buffers have the same length the transfer is modeled as parallel;
// otherwise it degrades to the serial bandwidth (§2.1). Returns the
// per-core MRAM addresses.
func (s *System) ScatterToMRAM(bufs [][]byte) []int {
	if len(bufs) != len(s.dpus) {
		panic("pimsim: scatter needs one buffer per DPU")
	}
	addrs := make([]int, len(bufs))
	total, mx, equal := 0, 0, true
	for i, b := range bufs {
		addrs[i] = s.dpus[i].MRAM.MustAlloc(len(b))
		s.dpus[i].MRAM.Write(addrs[i], b)
		total += len(b)
		if len(b) != len(bufs[0]) {
			equal = false
		}
		if len(b) > mx {
			mx = len(b)
		}
	}
	s.ChargeHostToPIM(total, equal)
	return addrs
}

// GatherFromMRAM reads n bytes from every core's DRAM bank at addr into
// out[i], charging parallel transfer time. The per-core slices share
// one backing allocation (callers may retain them; they stay valid).
func (s *System) GatherFromMRAM(addr, n int) [][]byte {
	out := make([][]byte, len(s.dpus))
	backing := make([]byte, n*len(s.dpus))
	for i, d := range s.dpus {
		out[i] = backing[i*n : (i+1)*n : (i+1)*n]
		d.MRAM.Read(addr, out[i])
	}
	s.ChargePIMToHost(n*len(s.dpus), true)
	return out
}

// GatherFromMRAMAt reads per-core regions (addr[i], n[i]); parallel
// when all sizes match, serial otherwise. The per-core slices share
// one backing allocation.
func (s *System) GatherFromMRAMAt(addrs, ns []int) [][]byte {
	if len(addrs) != len(s.dpus) || len(ns) != len(s.dpus) {
		panic("pimsim: gather needs one region per DPU")
	}
	out := make([][]byte, len(s.dpus))
	total, equal := 0, true
	for _, n := range ns {
		total += n
		if n != ns[0] {
			equal = false
		}
	}
	backing := make([]byte, total)
	off := 0
	for i, d := range s.dpus {
		out[i] = backing[off : off+ns[i] : off+ns[i]]
		d.MRAM.Read(addrs[i], out[i])
		off += ns[i]
	}
	s.ChargePIMToHost(total, equal)
	return out
}

// HostToPIMSeconds returns accumulated modeled Host→PIM transfer time.
func (s *System) HostToPIMSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hostToPIMSeconds
}

// PIMToHostSeconds returns accumulated modeled PIM→Host transfer time.
func (s *System) PIMToHostSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pimToHostSeconds
}

// TransferSeconds returns total modeled transfer time in both
// directions.
func (s *System) TransferSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hostToPIMSeconds + s.pimToHostSeconds
}

// ChargeHostToPIM accounts Host→PIM transfer time for the given total
// byte count without moving data — used when a kernel clock was reset
// after setup and the input transfer belongs to execution time, or
// when a runtime moves bytes through the Mem API directly. Safe for
// concurrent use.
func (s *System) ChargeHostToPIM(totalBytes int, parallel bool) {
	bw := s.cfg.HostToPIMBandwidth
	if !parallel {
		bw = s.cfg.SerialBandwidth
	}
	s.mu.Lock()
	s.hostToPIMSeconds += float64(totalBytes) / bw
	s.mu.Unlock()
}

// ChargePIMToHost is the symmetric PIM→Host accounting. Safe for
// concurrent use.
func (s *System) ChargePIMToHost(totalBytes int, parallel bool) {
	bw := s.cfg.PIMToHostBandwidth
	if !parallel {
		bw = s.cfg.SerialBandwidth
	}
	s.mu.Lock()
	s.pimToHostSeconds += float64(totalBytes) / bw
	s.mu.Unlock()
}
