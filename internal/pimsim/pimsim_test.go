package pimsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"transpimlib/internal/fixed"
)

func TestMemAllocAlignment(t *testing.T) {
	m := NewMem("test", 1024, 8)
	a, err := m.Alloc(3)
	if err != nil || a != 0 {
		t.Fatalf("first alloc = %d, %v", a, err)
	}
	b, err := m.Alloc(8)
	if err != nil || b != 8 {
		t.Fatalf("second alloc = %d, %v; want 8 (aligned)", b, err)
	}
}

func TestMemAllocExhaustion(t *testing.T) {
	m := NewMem("test", 64, 8)
	if _, err := m.Alloc(65); err == nil {
		t.Fatal("allocating past capacity should fail")
	}
	if _, err := m.Alloc(64); err != nil {
		t.Fatalf("allocating exactly capacity should succeed: %v", err)
	}
	if _, err := m.Alloc(1); err == nil {
		t.Fatal("memory should be exhausted")
	}
	if m.Free() != 0 {
		t.Fatalf("Free = %d, want 0", m.Free())
	}
}

func TestMemReset(t *testing.T) {
	m := NewMem("test", 64, 4)
	m.MustAlloc(32)
	m.PutUint32(0, 0xdeadbeef)
	m.Reset()
	if m.Used() != 0 {
		t.Fatalf("Used after Reset = %d", m.Used())
	}
	if m.Uint32(0) != 0 {
		t.Fatal("Reset should zero contents")
	}
}

func TestMemRoundTrips(t *testing.T) {
	m := NewMem("test", 4096, 4)
	m.PutFloat32(0, 3.25)
	if got := m.Float32(0); got != 3.25 {
		t.Errorf("Float32 round trip: %v", got)
	}
	m.PutInt32(8, -42)
	if got := m.Int32(8); got != -42 {
		t.Errorf("Int32 round trip: %v", got)
	}
	m.PutInt64(16, -1<<40)
	if got := m.Int64(16); got != -1<<40 {
		t.Errorf("Int64 round trip: %v", got)
	}
	vs := []float32{1, 2, 3, -4.5}
	m.WriteFloat32s(64, vs)
	out := make([]float32, 4)
	m.ReadFloat32s(64, out)
	for i := range vs {
		if out[i] != vs[i] {
			t.Errorf("bulk float32 round trip at %d: %v != %v", i, out[i], vs[i])
		}
	}
	is := []int32{7, -8, 9}
	m.WriteInt32s(128, is)
	iout := make([]int32, 3)
	m.ReadInt32s(128, iout)
	for i := range is {
		if iout[i] != is[i] {
			t.Errorf("bulk int32 round trip at %d", i)
		}
	}
}

func TestMemOutOfBoundsPanics(t *testing.T) {
	m := NewMem("test", 16, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("access beyond capacity should panic")
		}
	}()
	m.PutUint32(20, 1)
}

func TestMemLazyGrowth(t *testing.T) {
	m := NewMem("test", DefaultMRAMSize, 8)
	if len(m.data) != 0 {
		t.Fatal("backing store should start empty")
	}
	m.PutUint32(0, 1)
	if len(m.data) >= DefaultMRAMSize {
		t.Fatal("backing store should grow lazily, not reserve full capacity")
	}
}

func TestDPUCyclesFullPipeline(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	ctx.IAdd(1, 2)
	ctx.IAdd(3, 4)
	if got := d.Cycles(); got != 2 {
		t.Fatalf("2 native adds at 16 tasklets = %d cycles, want 2", got)
	}
}

func TestDPUCyclesUnderfilledPipeline(t *testing.T) {
	d := NewDPU(0, Default(), 1)
	ctx := d.NewCtx()
	ctx.IAdd(1, 2)
	if got := d.Cycles(); got != PipelineDepth {
		t.Fatalf("1 add at 1 tasklet = %d cycles, want %d", got, PipelineDepth)
	}
}

func TestDPUFloatCosts(t *testing.T) {
	cm := Default()
	d := NewDPU(0, cm, 16)
	ctx := d.NewCtx()
	if got := ctx.FMul(2, 3); got != 6 {
		t.Fatalf("FMul result %v", got)
	}
	if got := d.Cycles(); got != uint64(cm.FMul) {
		t.Fatalf("FMul cycles = %d, want %d", got, cm.FMul)
	}
	d.ResetCycles()
	ctx.FDiv(1, 3)
	if got := d.Cycles(); got != uint64(cm.FDiv) {
		t.Fatalf("FDiv cycles = %d, want %d", got, cm.FDiv)
	}
}

func TestCostOrdering(t *testing.T) {
	// The cost relationships that drive the paper's conclusions.
	cm := Default()
	if !(cm.IALU < cm.IMul) {
		t.Error("integer multiply must be costlier than add")
	}
	if !(cm.FAdd < cm.FMul) {
		t.Error("float multiply must be costlier than float add")
	}
	if !(cm.FMul < cm.FDiv) {
		t.Error("float divide must be costlier than float multiply")
	}
	if !(cm.I64Mul < cm.FMul) {
		t.Error("fixed-point multiply must be cheaper than float multiply")
	}
	if !(cm.Ldexp < cm.FMul/2) {
		t.Error("ldexp must be far cheaper than float multiply")
	}
}

func TestMRAMOverlappedWithCompute(t *testing.T) {
	// With plenty of issue work, DMA latency must hide (observation 4:
	// MRAM-resident LUTs perform like WRAM-resident ones).
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	d.MRAM.MustAlloc(64)
	d.MRAM.PutFloat32(0, 1.5)
	for i := 0; i < 100; i++ {
		ctx.FMul(1.0001, 1.0001) // 9300 issue cycles
		ctx.MramLoadF32(0)       // 200 issue + 6800 dma cycles
	}
	cm := Default()
	wantIssue := uint64(100 * (cm.FMul + cm.MRAMIssue))
	if d.Cycles() != wantIssue {
		t.Fatalf("cycles = %d, want issue-bound %d (dma=%d)", d.Cycles(), wantIssue, d.DMACycles())
	}
}

func TestMRAMBoundWhenNoCompute(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	d.MRAM.MustAlloc(64)
	for i := 0; i < 10; i++ {
		ctx.MramLoadF32(0)
	}
	if d.Cycles() != d.DMACycles() {
		t.Fatalf("pure-DMA kernel should be DMA-bound: cycles=%d dma=%d", d.Cycles(), d.DMACycles())
	}
}

func TestCtxFixedOps(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	a := fixed.FromFloat64(1.5)
	b := fixed.FromFloat64(2.0)
	if got := ctx.QMul(a, b).Float64(); got != 3.0 {
		t.Fatalf("QMul = %v", got)
	}
	if got := ctx.QAdd(a, b).Float64(); got != 3.5 {
		t.Fatalf("QAdd = %v", got)
	}
	cm := Default()
	want := uint64(cm.I64Mul + cm.IALU)
	if d.Cycles() != want {
		t.Fatalf("fixed op cycles = %d, want %d", d.Cycles(), want)
	}
}

func TestCtxConversions(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	if got := ctx.FToIRound(2.5); got != 2 {
		t.Errorf("round-to-even(2.5) = %d, want 2", got)
	}
	if got := ctx.FToIRound(3.5); got != 4 {
		t.Errorf("round-to-even(3.5) = %d, want 4", got)
	}
	if got := ctx.FToIRound(-2.5); got != -2 {
		t.Errorf("round-to-even(-2.5) = %d, want -2", got)
	}
	if got := ctx.FToIFloor(-1.25); got != -2 {
		t.Errorf("floor(-1.25) = %d, want -2", got)
	}
	if got := ctx.FToIFloor(1.75); got != 1 {
		t.Errorf("floor(1.75) = %d, want 1", got)
	}
	if got := ctx.FToITrunc(-1.75); got != -1 {
		t.Errorf("trunc(-1.75) = %d, want -1", got)
	}
	if got := ctx.IToF(-7); got != -7.0 {
		t.Errorf("IToF(-7) = %v", got)
	}
}

func TestPropFToIFloorMatchesMathFloor(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	f := func(x float32) bool {
		if x != x || x > 1e9 || x < -1e9 {
			return true
		}
		return ctx.FToIFloor(x) == int32(math.Floor(float64(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCtxLdexp(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	if got := ctx.Ldexp(1.5, 4); got != 24 {
		t.Fatalf("Ldexp(1.5,4) = %v", got)
	}
	if fr, e := ctx.Frexp(24); fr != 0.75 || e != 5 {
		t.Fatalf("Frexp(24) = %v, %d", fr, e)
	}
}

func TestCtxWRAMAccess(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	addr := d.WRAM.MustAlloc(8)
	ctx.WramStoreF32(addr, 9.5)
	if got := ctx.WramLoadF32(addr); got != 9.5 {
		t.Fatalf("WRAM round trip = %v", got)
	}
	ctx.WramStoreI32(addr+4, -3)
	if got := ctx.WramLoadI32(addr + 4); got != -3 {
		t.Fatalf("WRAM int round trip = %v", got)
	}
}

func TestCtxBulkDMA(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	maddr := d.MRAM.MustAlloc(16)
	waddr := d.WRAM.MustAlloc(16)
	d.MRAM.WriteFloat32s(maddr, []float32{1, 2, 3, 4})
	ctx.MramRead(maddr, waddr, 16)
	if got := d.WRAM.Float32(waddr + 8); got != 3 {
		t.Fatalf("bulk read landed wrong: %v", got)
	}
	d.WRAM.PutFloat32(waddr, 42)
	ctx.MramWrite(waddr, maddr, 16)
	if got := d.MRAM.Float32(maddr); got != 42 {
		t.Fatalf("bulk write landed wrong: %v", got)
	}
}

func TestCountersTrackClasses(t *testing.T) {
	d := NewDPU(0, Default(), 16)
	ctx := d.NewCtx()
	ctx.FMul(1, 2)
	ctx.FMul(1, 2)
	ctx.FAdd(1, 2)
	ctx.IAdd(1, 2)
	c := d.Counters()
	if c.Ops[OpFMul] != 2 || c.Ops[OpFAdd] != 1 || c.Ops[OpIALU] != 1 {
		t.Fatalf("counter ops wrong: %+v", c.Ops)
	}
	if c.TotalOps() != 4 {
		t.Fatalf("TotalOps = %d", c.TotalOps())
	}
	if c.TotalCycles() != d.IssueCycles() {
		t.Fatalf("TotalCycles %d != issue %d", c.TotalCycles(), d.IssueCycles())
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a.Ops[OpFMul] = 2
	a.Cycles[OpFMul] = 186
	b.Ops[OpFMul] = 3
	b.Cycles[OpFMul] = 279
	a.Add(&b)
	if a.Ops[OpFMul] != 5 || a.Cycles[OpFMul] != 465 {
		t.Fatalf("Add merged wrong: %+v", a)
	}
}

func TestOpClassString(t *testing.T) {
	if OpFMul.String() != "fmul" || OpMRAM.String() != "mram" {
		t.Error("OpClass names wrong")
	}
	if OpClass(99).String() != "op?" {
		t.Error("out-of-range OpClass should be op?")
	}
}

func TestSystemDefaults(t *testing.T) {
	s := NewSystem(Config{})
	cfg := s.Config()
	if cfg.DPUs != 1 || cfg.Tasklets != DefaultTasklets || cfg.ClockHz != DefaultClockHz {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if s.NumDPUs() != 1 {
		t.Fatal("NumDPUs != 1")
	}
}

func TestSystemLaunchAllDPUs(t *testing.T) {
	s := NewSystem(Config{DPUs: 8})
	err := s.Launch(func(ctx *Ctx, id int) error {
		for i := 0; i <= id; i++ {
			ctx.IAdd(1, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := s.DPU(i).Cycles(); got != uint64(i+1) {
			t.Errorf("dpu %d cycles = %d, want %d", i, got, i+1)
		}
	}
	if s.KernelCycles() != 8 {
		t.Fatalf("KernelCycles = %d, want 8 (slowest core)", s.KernelCycles())
	}
}

func TestSystemLaunchError(t *testing.T) {
	s := NewSystem(Config{DPUs: 4})
	sentinel := errors.New("boom")
	err := s.Launch(func(ctx *Ctx, id int) error {
		if id == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Launch error = %v, want wrapped sentinel", err)
	}
}

func TestBroadcastToMRAM(t *testing.T) {
	s := NewSystem(Config{DPUs: 4})
	addr := s.BroadcastToMRAM([]byte{1, 2, 3, 4})
	for i := 0; i < 4; i++ {
		var buf [4]byte
		s.DPU(i).MRAM.Read(addr, buf[:])
		if buf != [4]byte{1, 2, 3, 4} {
			t.Errorf("dpu %d broadcast content wrong: %v", i, buf)
		}
	}
	if s.HostToPIMSeconds() <= 0 {
		t.Error("broadcast should charge transfer time")
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	s := NewSystem(Config{DPUs: 3})
	bufs := [][]byte{{1, 1}, {2, 2}, {3, 3}}
	addrs := s.ScatterToMRAM(bufs)
	out := s.GatherFromMRAMAt(addrs, []int{2, 2, 2})
	for i := range bufs {
		if out[i][0] != bufs[i][0] || out[i][1] != bufs[i][1] {
			t.Errorf("dpu %d gather = %v", i, out[i])
		}
	}
	if s.PIMToHostSeconds() <= 0 || s.HostToPIMSeconds() <= 0 {
		t.Error("transfers should charge time both ways")
	}
}

func TestScatterSerialSlowerThanParallel(t *testing.T) {
	mk := func(sizes []int) float64 {
		s := NewSystem(Config{DPUs: len(sizes)})
		bufs := make([][]byte, len(sizes))
		for i, n := range sizes {
			bufs[i] = make([]byte, n)
		}
		s.ScatterToMRAM(bufs)
		return s.HostToPIMSeconds()
	}
	parallel := mk([]int{1024, 1024, 1024, 1024})
	serial := mk([]int{1024, 1024, 1024, 1023}) // unequal → serial
	if serial <= parallel {
		t.Fatalf("unequal-size transfer (%.3g s) should be slower than parallel (%.3g s)", serial, parallel)
	}
}

func TestGatherFromMRAM(t *testing.T) {
	s := NewSystem(Config{DPUs: 2})
	addr := s.BroadcastToMRAM([]byte{9, 8, 7, 6})
	out := s.GatherFromMRAM(addr, 4)
	if len(out) != 2 || out[1][0] != 9 {
		t.Fatalf("gather wrong: %v", out)
	}
}

func TestResetCycles(t *testing.T) {
	s := NewSystem(Config{DPUs: 2})
	_ = s.Launch(func(ctx *Ctx, id int) error { ctx.FMul(1, 1); return nil })
	s.BroadcastToMRAM(make([]byte, 8))
	s.ResetCycles()
	if s.KernelCycles() != 0 || s.TransferSeconds() != 0 {
		t.Fatal("ResetCycles should zero all accounting")
	}
}

func TestKernelSeconds(t *testing.T) {
	s := NewSystem(Config{DPUs: 1, ClockHz: 1e6})
	_ = s.Launch(func(ctx *Ctx, id int) error {
		for i := 0; i < 1000; i++ {
			ctx.IAdd(1, 1)
		}
		return nil
	})
	if got := s.KernelSeconds(); math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("KernelSeconds = %v, want 1e-3", got)
	}
}
