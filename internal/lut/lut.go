// Package lut implements TransPimLib's fuzzy lookup-table methods
// (§2.2.2, §3.2, §3.3.1): the multiplication-based M-LUT, the
// LDEXP-based L-LUT (float and Q3.28 fixed-point), the direct
// float-conversion D-LUT, and the combined DL-LUT, each with and
// without linear interpolation.
//
// Every method splits into a host side and a device side. The host
// side builds the table: it evaluates the reference function f (in
// float64) at the points selected by the pseudo-inverse a⁻¹ of the
// address-generation function — the only place a⁻¹ is ever used, which
// is why accuracy can be improved freely without touching lookup cost
// (§2.2.2). The device side implements a(x) with the operations a PIM
// core can afford and performs the (interpolated) lookup through a
// metering Ctx.
package lut

import (
	"fmt"
	"math"

	"transpimlib/internal/pimsim"
)

// Func is a reference function evaluated on the host during table
// generation, in double precision.
type Func func(float64) float64

// devF32 is a float32 array resident in a PIM memory.
type devF32 struct {
	place pimsim.Placement
	addr  int
	n     int
}

func loadF32Array(dpu *pimsim.DPU, place pimsim.Placement, vals []float32) (devF32, error) {
	mem := dpu.MemFor(place)
	addr, err := mem.Alloc(4 * len(vals))
	if err != nil {
		return devF32{}, err
	}
	mem.WriteFloat32s(addr, vals)
	return devF32{place: place, addr: addr, n: len(vals)}, nil
}

// get fetches element idx, charging a scratchpad load or an 8-byte DMA.
func (a devF32) get(ctx *pimsim.Ctx, idx int32) float32 {
	off := a.addr + 4*int(idx)
	if a.place == pimsim.InWRAM {
		return ctx.WramLoadF32(off)
	}
	return ctx.MramLoadF32(off)
}

// devI32 is an int32 (Q3.28) array resident in a PIM memory.
type devI32 struct {
	place pimsim.Placement
	addr  int
	n     int
}

func loadI32Array(dpu *pimsim.DPU, place pimsim.Placement, vals []int32) (devI32, error) {
	mem := dpu.MemFor(place)
	addr, err := mem.Alloc(4 * len(vals))
	if err != nil {
		return devI32{}, err
	}
	mem.WriteInt32s(addr, vals)
	return devI32{place: place, addr: addr, n: len(vals)}, nil
}

func (a devI32) get(ctx *pimsim.Ctx, idx int32) int32 {
	off := a.addr + 4*int(idx)
	if a.place == pimsim.InWRAM {
		return ctx.WramLoadI32(off)
	}
	return ctx.MramLoadI32(off)
}

// clampIdx clamps idx into [0, n-1], charging the two compare+select
// instructions the device executes.
func clampIdx(ctx *pimsim.Ctx, idx int32, n int) int32 {
	ctx.Charge(2)
	if idx < 0 {
		return 0
	}
	if idx >= int32(n) {
		return int32(n - 1)
	}
	return idx
}

// splitIntFrac splits a scaled lookup argument t into its integer part
// (toward -∞) and fractional remainder, both needed by interpolated
// L-LUT/D-LUT addressing. On the PIM core this is pure bit
// manipulation of the float32 pattern — extract the exponent, shift
// the mantissa, reassemble the fraction — costing ~14 integer
// instructions instead of the float→int→float round trip the M-LUT
// performs (the key saving of the L-LUT methods, §3.2.2).
func splitIntFrac(ctx *pimsim.Ctx, t float32) (int32, float32) {
	ctx.Charge(14)
	f := math.Floor(float64(t))
	return int32(f), float32(float64(t) - f)
}

// truncIndex truncates a scaled lookup argument toward -∞ with the
// same bit-level extraction, without assembling the fraction (~8
// integer instructions). Used by non-interpolated L-LUT lookups, whose
// rounding lives in a⁻¹ at build time (midpoint entries).
func truncIndex(ctx *pimsim.Ctx, t float32) int32 {
	ctx.Charge(8)
	return int32(math.Floor(float64(t)))
}

// lerpF32 computes l0 + (l1-l0)·Δ with one float multiply (§3.2.1).
func lerpF32(ctx *pimsim.Ctx, l0, l1, delta float32) float32 {
	d := ctx.FSub(l1, l0)
	return ctx.FAdd(l0, ctx.FMul(d, delta))
}

func validateRange(lo, hi float64) error {
	if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		return fmt.Errorf("lut: invalid input range [%v, %v]", lo, hi)
	}
	return nil
}
