package lut

import (
	"fmt"
	"math"

	"transpimlib/internal/fpbits"
	"transpimlib/internal/pimsim"
)

// DLUT is a direct float-conversion fuzzy lookup table (§3.2.3): the
// address is carved straight out of the float32 bit pattern — sign,
// exponent, and the top MantBits mantissa bits — so entry density
// follows the density of the floats themselves: geometric spacing,
// denser toward zero (Fig. 4(c)). This makes it a natural fit for
// functions that flatten away from zero, like tanh and GELU (Key
// Takeaway 4).
//
// Entries cover |x| ∈ [2^MinExp, 2^MaxExp), with one table per sign.
// Inputs with |x| < 2^MinExp clamp to the smallest-magnitude entry —
// the D-LUT's inherent gap around zero that the DL-LUT fixes (§3.3.1).
type DLUT struct {
	MinExp   int // smallest covered binary exponent
	MaxExp   int // one past the largest covered exponent
	MantBits int // mantissa bits per exponent block: 2^MantBits entries
	Interp   bool
	Pos      []float32 // entries for x > 0
	Neg      []float32 // entries for x < 0
}

// BuildDLUT samples f for both signs across exponents [minExp, maxExp)
// with 2^mantBits entries per exponent block.
func BuildDLUT(f Func, minExp, maxExp, mantBits int, interp bool) (*DLUT, error) {
	if minExp >= maxExp {
		return nil, fmt.Errorf("lut: D-LUT exponent range [%d, %d) empty", minExp, maxExp)
	}
	if mantBits < 0 || mantBits > 20 {
		return nil, fmt.Errorf("lut: D-LUT mantissa bits %d out of [0, 20]", mantBits)
	}
	t := &DLUT{MinExp: minExp, MaxExp: maxExp, MantBits: mantBits, Interp: interp}
	blocks := maxExp - minExp
	n := blocks << mantBits
	if interp {
		n++ // guard entry at 2^maxExp, continuous across blocks
	}
	t.Pos = make([]float32, n)
	t.Neg = make([]float32, n)
	for i := 0; i < n; i++ {
		v := t.entryValue(i)
		t.Pos[i] = float32(f(v))
		t.Neg[i] = float32(f(-v))
	}
	return t, nil
}

// entryValue returns a⁻¹(i) for the positive table: the grid point for
// interpolated tables, the block midpoint for truncating ones.
func (t *DLUT) entryValue(i int) float64 {
	m := t.MantBits
	e := t.MinExp + i>>m
	frac := float64(i & (1<<m - 1))
	if !t.Interp {
		frac += 0.5 // midpoint: truncation at lookup ≡ round to nearest
	}
	return math.Ldexp(1+frac/float64(int(1)<<m), e)
}

// Bytes returns the PIM memory footprint of both sign tables.
func (t *DLUT) Bytes() int { return 4 * (len(t.Pos) + len(t.Neg)) }

// DevDLUT is a D-LUT resident in a PIM core's memory.
type DevDLUT struct {
	t        *DLUT
	pos, neg devF32
}

// Load writes both sign tables into the chosen memory of the PIM core.
func (t *DLUT) Load(dpu *pimsim.DPU, place pimsim.Placement) (*DevDLUT, error) {
	pos, err := loadF32Array(dpu, place, t.Pos)
	if err != nil {
		return nil, err
	}
	neg, err := loadF32Array(dpu, place, t.Neg)
	if err != nil {
		return nil, err
	}
	return &DevDLUT{t: t, pos: pos, neg: neg}, nil
}

// Table returns the host-side table.
func (d *DevDLUT) Table() *DLUT { return d.t }

// index computes the magnitude index and in-block fraction from the
// raw bit pattern: a shift, a subtract and a mask — no float
// arithmetic at all.
func (t *DLUT) index(bits uint32) (idx int32, fracBits uint32) {
	m := uint(t.MantBits)
	magnitude := bits &^ fpbits.SignMask
	top := int32(magnitude >> (23 - m)) // exponent ‖ top mantissa bits
	idx = top - int32(uint32(t.MinExp+fpbits.ExpBias)<<m)
	fracBits = bits & (1<<(23-m) - 1)
	return idx, fracBits
}

// Eval approximates f(x). Non-interpolated: bit extraction, clamp, one
// access — the cheapest method in the library. Interpolated: the
// in-block mantissa remainder becomes Δ (the spacing inside a block is
// uniform, and blocks join continuously at powers of two), plus the
// one-multiply interpolation.
func (d *DevDLUT) Eval(ctx *pimsim.Ctx, x float32) float32 {
	bits := ctx.FBits(x)
	arr := d.pos
	entries := d.t.Pos
	if ctx.ICmp(int32(bits), 0) < 0 { // sign-bit test: one integer compare
		arr = d.neg
		entries = d.t.Neg
	}
	idx, fracBits := d.t.index(bits)
	ctx.Charge(4) // shift, subtract, mask, move of the extraction
	if !d.t.Interp {
		idx = clampIdx(ctx, idx, len(entries))
		return arr.get(ctx, idx)
	}
	idx = clampIdx(ctx, idx, len(entries)-1)
	// Reassemble Δ ∈ [0, 1) from the remainder bits (integer ops).
	ctx.Charge(10)
	delta := float32(fracBits) / float32(uint32(1)<<(23-uint(d.t.MantBits)))
	l0 := arr.get(ctx, idx)
	l1 := arr.get(ctx, idx+1)
	return lerpF32(ctx, l0, l1, delta)
}

// EvalHost is the unmetered host-side reference of Eval.
func (t *DLUT) EvalHost(x float32) float32 {
	bits := fpbits.Bits(x)
	entries := t.Pos
	if bits&fpbits.SignMask != 0 {
		entries = t.Neg
	}
	idx, fracBits := t.index(bits)
	if !t.Interp {
		return entries[clampHost(idx, len(entries))]
	}
	idx = clampHost(idx, len(entries)-1)
	delta := float32(fracBits) / float32(uint32(1)<<(23-uint(t.MantBits)))
	l0 := entries[idx]
	l1 := entries[idx+1]
	return l0 + (l1-l0)*delta
}

// DLLUT combines an L-LUT covering the dense region around zero with a
// D-LUT covering larger magnitudes (§3.3.1), curing the D-LUT's gap
// between 0 and its smallest exponent (Fig. 4(d)).
type DLLUT struct {
	L *LLUT
	D *DLUT
	// Split is 2^D.MinExp: |x| below it routes to the L-LUT.
	Split float32
}

// BuildDLLUT builds the combination: a D-LUT over exponents
// [minExp, maxExp) and an L-LUT with density 2^lDensity over
// [-2^minExp, 2^minExp].
func BuildDLLUT(f Func, minExp, maxExp, mantBits, lDensity int, interp bool) (*DLLUT, error) {
	d, err := BuildDLUT(f, minExp, maxExp, mantBits, interp)
	if err != nil {
		return nil, err
	}
	split := math.Ldexp(1, minExp)
	l, err := BuildLLUT(f, -split, split, lDensity, interp)
	if err != nil {
		return nil, err
	}
	return &DLLUT{L: l, D: d, Split: float32(split)}, nil
}

// Bytes returns the combined PIM memory footprint.
func (t *DLLUT) Bytes() int { return t.L.Bytes() + t.D.Bytes() }

// DevDLLUT is a DL-LUT resident in a PIM core's memory.
type DevDLLUT struct {
	t *DLLUT
	l *DevLLUT
	d *DevDLUT
}

// Load writes both component tables into the chosen memory.
func (t *DLLUT) Load(dpu *pimsim.DPU, place pimsim.Placement) (*DevDLLUT, error) {
	l, err := t.L.Load(dpu, place)
	if err != nil {
		return nil, err
	}
	d, err := t.D.Load(dpu, place)
	if err != nil {
		return nil, err
	}
	return &DevDLLUT{t: t, l: l, d: d}, nil
}

// Table returns the host-side table.
func (d *DevDLLUT) Table() *DLLUT { return d.t }

// Eval approximates f(x): one magnitude compare routes to the L-LUT
// (small inputs) or the D-LUT (large inputs).
func (d *DevDLLUT) Eval(ctx *pimsim.Ctx, x float32) float32 {
	ax := ctx.FAbs(x)
	ctx.Branch()
	if ctx.FCmp(ax, d.t.Split) < 0 {
		return d.l.Eval(ctx, x)
	}
	return d.d.Eval(ctx, x)
}

// EvalHost is the unmetered host-side reference of Eval.
func (t *DLLUT) EvalHost(x float32) float32 {
	ax := x
	if ax < 0 {
		ax = -ax
	}
	if ax < t.Split {
		return t.L.EvalHost(x)
	}
	return t.D.EvalHost(x)
}
