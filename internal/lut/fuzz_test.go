package lut

import (
	"math"
	"testing"

	"transpimlib/internal/fixed"
	"transpimlib/internal/pimsim"
)

// FuzzLLUTDeviceHost checks device/host equivalence of the L-LUT for
// arbitrary inputs, including far out-of-range ones (which must clamp,
// not crash).
func FuzzLLUTDeviceHost(f *testing.F) {
	f.Add(float32(1.0), true)
	f.Add(float32(-100), false)
	f.Add(float32(math.Pi), true)
	f.Add(float32(math.Inf(1)), false)
	tabs := map[bool]*LLUT{}
	devs := map[bool]*DevLLUT{}
	dpu := pimsim.NewDPU(0, pimsim.Default(), 16)
	for _, interp := range []bool{false, true} {
		tb, err := BuildLLUT(math.Sin, 0, 2*math.Pi, 9, interp)
		if err != nil {
			f.Fatal(err)
		}
		dv, err := tb.Load(dpu, pimsim.InWRAM)
		if err != nil {
			f.Fatal(err)
		}
		tabs[interp], devs[interp] = tb, dv
	}
	ctx := dpu.NewCtx()
	f.Fuzz(func(t *testing.T, x float32, interp bool) {
		if x != x {
			return // NaN indexing is unspecified (clamps arbitrarily)
		}
		got := devs[interp].Eval(ctx, x)
		want := tabs[interp].EvalHost(x)
		if got != want && !(got != got && want != want) {
			t.Fatalf("interp=%v x=%v: device %v host %v", interp, x, got, want)
		}
	})
}

// FuzzFixedLLUT checks that arbitrary Q3.28 inputs never escape the
// table (clamping) and match the host mirror.
func FuzzFixedLLUT(f *testing.F) {
	f.Add(int32(0), false)
	f.Add(int32(-1)<<30, true)
	f.Add(int32(math.MaxInt32), true)
	tabs := map[bool]*FixedLLUT{}
	devs := map[bool]*DevFixedLLUT{}
	dpu := pimsim.NewDPU(0, pimsim.Default(), 16)
	for _, interp := range []bool{false, true} {
		tb, err := BuildFixedLLUT(math.Sin, 0, 2*math.Pi, 9, interp)
		if err != nil {
			f.Fatal(err)
		}
		dv, err := tb.Load(dpu, pimsim.InWRAM)
		if err != nil {
			f.Fatal(err)
		}
		tabs[interp], devs[interp] = tb, dv
	}
	ctx := dpu.NewCtx()
	f.Fuzz(func(t *testing.T, raw int32, interp bool) {
		q := fixed.Q3_28(raw)
		got := devs[interp].Eval(ctx, q)
		want := tabs[interp].EvalHost(q)
		if got != want {
			t.Fatalf("interp=%v q=%d: device %v host %v", interp, raw, got, want)
		}
	})
}
