package lut

import (
	"math"

	"transpimlib/internal/pimsim"
)

// MLUT is a multiplication-based fuzzy lookup table (§3.2.1): entries
// are regularly spaced with arbitrary density k, and the device
// address generation is a(x) = round((x − p)·k) — one float subtract,
// one float multiply and one rounding step.
type MLUT struct {
	P       float64 // input value mapped to address 0
	K       float64 // density (entries per unit input)
	Interp  bool
	Entries []float32
}

// BuildMLUT samples f over [lo, hi] into a table with the given number
// of addressable entries. For the interpolated variant one extra guard
// entry is stored so the a(x)+1 access never leaves the table.
func BuildMLUT(f Func, lo, hi float64, entries int, interp bool) (*MLUT, error) {
	if err := validateRange(lo, hi); err != nil {
		return nil, err
	}
	if entries < 2 {
		entries = 2
	}
	t := &MLUT{
		P:      lo,
		K:      float64(entries-1) / (hi - lo),
		Interp: interp,
	}
	n := entries
	if interp {
		n++ // guard entry for l(a(x)+1)
	}
	t.Entries = make([]float32, n)
	for i := range t.Entries {
		// a⁻¹(i) = i/k + p: the exact input each address represents.
		t.Entries[i] = float32(f(float64(i)/t.K + t.P))
	}
	return t, nil
}

// Bytes returns the PIM memory footprint of the table.
func (t *MLUT) Bytes() int { return 4 * len(t.Entries) }

// DevMLUT is an M-LUT resident in a PIM core's memory.
type DevMLUT struct {
	t   *MLUT
	arr devF32
	p   float32
	k   float32
}

// Load writes the table into the chosen memory of the PIM core.
func (t *MLUT) Load(dpu *pimsim.DPU, place pimsim.Placement) (*DevMLUT, error) {
	arr, err := loadF32Array(dpu, place, t.Entries)
	if err != nil {
		return nil, err
	}
	return &DevMLUT{t: t, arr: arr, p: float32(t.P), k: float32(t.K)}, nil
}

// Table returns the host-side table.
func (d *DevMLUT) Table() *MLUT { return d.t }

// Eval approximates f(x). Non-interpolated: one float subtract, one
// float multiply, one round-convert, one table access. Interpolated:
// additionally the floor/fraction split, a second access, and the
// one-multiply linear interpolation — two float multiplies total,
// making it the slowest LUT method (§4.2.1 observation 1).
func (d *DevMLUT) Eval(ctx *pimsim.Ctx, x float32) float32 {
	tt := ctx.FMul(ctx.FSub(x, d.p), d.k)
	if !d.t.Interp {
		idx := clampIdx(ctx, ctx.FToIRound(tt), len(d.t.Entries))
		return d.arr.get(ctx, idx)
	}
	idx := ctx.FToIFloor(tt)
	delta := ctx.FSub(tt, ctx.IToF(idx))
	idx = clampIdx(ctx, idx, len(d.t.Entries)-1)
	l0 := d.arr.get(ctx, idx)
	l1 := d.arr.get(ctx, idx+1)
	return lerpF32(ctx, l0, l1, delta)
}

// EvalHost is the unmetered host-side reference of Eval, used by tests
// and accuracy sweeps. It mirrors the device's float32 arithmetic
// exactly.
func (t *MLUT) EvalHost(x float32) float32 {
	tt := (x - float32(t.P)) * float32(t.K)
	if !t.Interp {
		idx := clampHost(int32(math.RoundToEven(float64(tt))), len(t.Entries))
		return t.Entries[idx]
	}
	f := math.Floor(float64(tt))
	idx := clampHost(int32(f), len(t.Entries)-1)
	delta := float32(float64(tt) - f)
	l0 := t.Entries[idx]
	l1 := t.Entries[idx+1]
	return l0 + (l1-l0)*delta
}

func clampHost(idx int32, n int) int32 {
	if idx < 0 {
		return 0
	}
	if idx >= int32(n) {
		return int32(n - 1)
	}
	return idx
}
