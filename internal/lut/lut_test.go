package lut

import (
	"math"
	"testing"
	"testing/quick"

	"transpimlib/internal/fixed"
	"transpimlib/internal/pimsim"
)

func newDPU() *pimsim.DPU { return pimsim.NewDPU(0, pimsim.Default(), 16) }

func maxErr(eval func(float32) float32, ref func(float64) float64, lo, hi float64, n int) float64 {
	var worst float64
	for i := 0; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		got := float64(eval(float32(x)))
		if e := math.Abs(got - ref(x)); e > worst {
			worst = e
		}
	}
	return worst
}

// --- M-LUT ---

func TestMLUTPaperExample(t *testing.T) {
	// §3.2.1: a 12-entry M-LUT for [0, 5] has k = 11/5 = 2.2 entries per
	// unit; address 7 represents input 7/k + 0.
	tab, err := BuildMLUT(math.Sin, 0, 5, 12, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Entries) != 12 {
		t.Fatalf("entries = %d", len(tab.Entries))
	}
	want := math.Sin(7 / tab.K)
	if math.Abs(float64(tab.Entries[7])-want) > 1e-6 {
		t.Fatalf("entry 7 = %v, want f(a⁻¹(7)) = %v", tab.Entries[7], want)
	}
}

func TestMLUTAccuracyImprovesWithSize(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{64, 256, 1024, 4096} {
		tab, err := BuildMLUT(math.Sin, 0, 2*math.Pi, n, false)
		if err != nil {
			t.Fatal(err)
		}
		e := maxErr(tab.EvalHost, math.Sin, 0, 2*math.Pi, 5000)
		if e >= prev {
			t.Errorf("M-LUT error with %d entries (%v) did not improve on %v", n, e, prev)
		}
		prev = e
	}
}

func TestMLUTInterpBeatsNonInterp(t *testing.T) {
	ni, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 1024, false)
	ip, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 1024, true)
	eNI := maxErr(ni.EvalHost, math.Sin, 0, 2*math.Pi, 5000)
	eIP := maxErr(ip.EvalHost, math.Sin, 0, 2*math.Pi, 5000)
	if eIP >= eNI/10 {
		t.Fatalf("interpolation should cut error dramatically: %v vs %v", eIP, eNI)
	}
}

func TestMLUTDeviceMatchesHost(t *testing.T) {
	tab, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 512, true)
	dev, err := tab.Load(newDPU(), pimsim.InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newDPU().NewCtx()
	_ = ctx
	c := dev.arr
	_ = c
	dctx := pimsim.NewDPU(1, pimsim.Default(), 16)
	tabDev, _ := tab.Load(dctx, pimsim.InWRAM)
	cx := dctx.NewCtx()
	f := func(u float32) bool {
		x := float32(math.Mod(math.Abs(float64(u)), 2*math.Pi))
		return tabDev.Eval(cx, x) == tab.EvalHost(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMLUTCycleCost(t *testing.T) {
	cm := pimsim.Default()
	for _, interp := range []bool{false, true} {
		tab, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 256, interp)
		dpu := newDPU()
		dev, _ := tab.Load(dpu, pimsim.InWRAM)
		dev.Eval(dpu.NewCtx(), 1.0)
		c := dpu.Counters()
		wantMuls := uint64(1)
		if interp {
			wantMuls = 2
		}
		if c.Ops[pimsim.OpFMul] != wantMuls {
			t.Errorf("interp=%v: %d float multiplies, want %d", interp, c.Ops[pimsim.OpFMul], wantMuls)
		}
	}
	_ = cm
}

func TestMLUTOutOfRangeClamps(t *testing.T) {
	tab, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 256, false)
	lo := tab.EvalHost(-1)
	hi := tab.EvalHost(100)
	if lo != tab.Entries[0] || hi != tab.Entries[len(tab.Entries)-1] {
		t.Fatal("out-of-range inputs must clamp to edge entries")
	}
}

func TestMLUTInvalidRange(t *testing.T) {
	if _, err := BuildMLUT(math.Sin, 5, 5, 16, false); err == nil {
		t.Fatal("empty range must fail")
	}
	if _, err := BuildMLUT(math.Sin, math.Inf(-1), 0, 16, false); err == nil {
		t.Fatal("infinite range must fail")
	}
}

// --- L-LUT ---

func TestLLUTAccuracy(t *testing.T) {
	tab, err := BuildLLUT(math.Sin, 0, 2*math.Pi, 10, false) // k = 1024/unit
	if err != nil {
		t.Fatal(err)
	}
	e := maxErr(tab.EvalHost, math.Sin, 0, 2*math.Pi, 5000)
	// Midpoint entries: max error ≈ half spacing × max|f'| = 2⁻¹¹.
	if e > math.Pow(2, -10) {
		t.Fatalf("L-LUT max error %v too large", e)
	}
}

func TestLLUTMidpointTrick(t *testing.T) {
	// Truncating lookup with midpoint entries must match the accuracy
	// of a rounding lookup with grid entries (the a⁻¹ freedom, §2.2.2).
	tabMid, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 8, false)
	e := maxErr(tabMid.EvalHost, math.Sin, 0, 2*math.Pi, 5000)
	spacing := math.Pow(2, -8)
	if e > spacing/2*1.05 {
		t.Fatalf("midpoint L-LUT error %v exceeds half-spacing bound %v", e, spacing/2)
	}
}

func TestLLUTInterpAccuracy(t *testing.T) {
	tab, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 10, true)
	e := maxErr(tab.EvalHost, math.Sin, 0, 2*math.Pi, 5000)
	// Interpolation error ≈ spacing²/8 × max|f''| = 2⁻²³/8, plus
	// float32 rounding of entries and arithmetic (~1 ULP of 1.0).
	if e > 5e-7 {
		t.Fatalf("interpolated L-LUT max error %v too large", e)
	}
}

func TestLLUTNoMultiplications(t *testing.T) {
	// §4.2.1 observation 1: the non-interpolated L-LUT executes no
	// float multiplications; the interpolated one exactly one.
	for _, tc := range []struct {
		interp bool
		want   uint64
	}{{false, 0}, {true, 1}} {
		tab, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 8, tc.interp)
		dpu := newDPU()
		dev, _ := tab.Load(dpu, pimsim.InWRAM)
		dev.Eval(dpu.NewCtx(), 1.5)
		if got := dpu.Counters().Ops[pimsim.OpFMul]; got != tc.want {
			t.Errorf("interp=%v: %d fmuls, want %d", tc.interp, got, tc.want)
		}
	}
}

func TestLLUTFasterThanMLUT(t *testing.T) {
	cycles := func(dev interface {
		Eval(*pimsim.Ctx, float32) float32
	}, dpu *pimsim.DPU) uint64 {
		dpu.ResetCycles()
		dev.Eval(dpu.NewCtx(), 1.5)
		return dpu.Cycles()
	}
	dpu := newDPU()
	m, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 256, false)
	l, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 8, false)
	mi, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 256, true)
	li, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 8, true)
	dm, _ := m.Load(dpu, pimsim.InWRAM)
	dl, _ := l.Load(dpu, pimsim.InWRAM)
	dmi, _ := mi.Load(dpu, pimsim.InWRAM)
	dli, _ := li.Load(dpu, pimsim.InWRAM)

	cM, cL := cycles(dm, dpu), cycles(dl, dpu)
	cMI, cLI := cycles(dmi, dpu), cycles(dli, dpu)

	// Fig. 5: non-interpolated L-LUT cuts ~80% versus M-LUT;
	// interpolated L-LUT cuts ~50% versus interpolated M-LUT.
	if r := float64(cL) / float64(cM); r > 0.35 {
		t.Errorf("L-LUT/M-LUT cycle ratio %.2f (L=%d M=%d), want ≲0.2-0.3", r, cL, cM)
	}
	if r := float64(cLI) / float64(cMI); r < 0.35 || r > 0.65 {
		t.Errorf("L-LUTi/M-LUTi cycle ratio %.2f (L=%d M=%d), want ~0.5", r, cLI, cMI)
	}
}

func TestLLUTDeviceMatchesHost(t *testing.T) {
	for _, interp := range []bool{false, true} {
		tab, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 9, interp)
		dpu := newDPU()
		dev, _ := tab.Load(dpu, pimsim.InWRAM)
		cx := dpu.NewCtx()
		f := func(u float32) bool {
			x := float32(math.Mod(math.Abs(float64(u)), 2*math.Pi))
			return dev.Eval(cx, x) == tab.EvalHost(x)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("interp=%v: %v", interp, err)
		}
	}
}

func TestLLUTNonzeroP(t *testing.T) {
	tab, _ := BuildLLUT(math.Exp, -2, 2, 10, true)
	e := maxErr(tab.EvalHost, math.Exp, -2, 2, 4000)
	if e > 3e-6 {
		t.Fatalf("L-LUT with p≠0 max error %v", e)
	}
	// p≠0 must charge the extra subtract.
	dpu := newDPU()
	dev, _ := tab.Load(dpu, pimsim.InWRAM)
	dev.Eval(dpu.NewCtx(), 0.5)
	if dpu.Counters().Ops[pimsim.OpFAdd] < 2 { // fsub(p) + 2 interp adds... at least the sub happened
		t.Error("nonzero p should charge a float subtract")
	}
}

func TestLLUTDensityExponentValidation(t *testing.T) {
	if _, err := BuildLLUT(math.Sin, 0, 1, 40, false); err == nil {
		t.Fatal("absurd density exponent must fail")
	}
}

// --- fixed-point L-LUT ---

func TestFixedLLUTAccuracy(t *testing.T) {
	tab, err := BuildFixedLLUT(math.Sin, 0, 2*math.Pi, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for x := 0.0; x <= 2*math.Pi; x += 0.001 {
		got := tab.EvalHost(fixed.FromFloat64(x)).Float64()
		if e := math.Abs(got - math.Sin(x)); e > worst {
			worst = e
		}
	}
	if worst > math.Pow(2, -10) {
		t.Fatalf("fixed L-LUT max error %v", worst)
	}
}

func TestFixedLLUTInterpAccuracy(t *testing.T) {
	tab, _ := BuildFixedLLUT(math.Sin, 0, 2*math.Pi, 10, true)
	var worst float64
	for x := 0.0; x <= 2*math.Pi; x += 0.001 {
		got := tab.EvalHost(fixed.FromFloat64(x)).Float64()
		if e := math.Abs(got - math.Sin(x)); e > worst {
			worst = e
		}
	}
	if worst > 3e-7 {
		t.Fatalf("interpolated fixed L-LUT max error %v", worst)
	}
}

func TestFixedLLUTDeviceMatchesHost(t *testing.T) {
	for _, interp := range []bool{false, true} {
		tab, _ := BuildFixedLLUT(math.Sin, 0, 2*math.Pi, 9, interp)
		dpu := newDPU()
		dev, _ := tab.Load(dpu, pimsim.InWRAM)
		cx := dpu.NewCtx()
		f := func(u float32) bool {
			x := fixed.FromFloat64(math.Mod(math.Abs(float64(u)), 2*math.Pi))
			return dev.Eval(cx, x) == tab.EvalHost(x)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("interp=%v: %v", interp, err)
		}
	}
}

func TestFixedInterpLLUTTwiceAsFastAsFloat(t *testing.T) {
	// §4.2.1 observation 1: the fixed-point interpolated L-LUT doubles
	// the performance of the float interpolated L-LUT.
	fl, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 10, true)
	fx, _ := BuildFixedLLUT(math.Sin, 0, 2*math.Pi, 10, true)
	dpu := newDPU()
	dfl, _ := fl.Load(dpu, pimsim.InWRAM)
	dfx, _ := fx.Load(dpu, pimsim.InWRAM)

	dpu.ResetCycles()
	dfl.Eval(dpu.NewCtx(), 1.5)
	cFloat := dpu.Cycles()

	dpu.ResetCycles()
	dfx.EvalFloat(dpu.NewCtx(), 1.5) // includes float↔fixed conversion
	cFixed := dpu.Cycles()

	r := float64(cFloat) / float64(cFixed)
	if r < 1.6 || r > 3.2 {
		t.Fatalf("float/fixed interpolated L-LUT ratio %.2f (float=%d fixed=%d), want ~2", r, cFloat, cFixed)
	}
}

func TestFixedNonInterpSimilarToFloat(t *testing.T) {
	// §4.2.1: the fixed-point non-interpolated L-LUT does not improve
	// over its float counterpart (neither uses multiplications).
	fl, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 10, false)
	fx, _ := BuildFixedLLUT(math.Sin, 0, 2*math.Pi, 10, false)
	dpu := newDPU()
	dfl, _ := fl.Load(dpu, pimsim.InWRAM)
	dfx, _ := fx.Load(dpu, pimsim.InWRAM)

	dpu.ResetCycles()
	dfl.Eval(dpu.NewCtx(), 1.5)
	cFloat := dpu.Cycles()

	dpu.ResetCycles()
	dfx.EvalFloat(dpu.NewCtx(), 1.5)
	cFixed := dpu.Cycles()

	// Neither variant multiplies; both sit at the bottom of Fig. 5.
	// The fixed path additionally pays the float↔fixed conversions of
	// Fig. 3(a) steps 2/6, so "similar" here means the same order of
	// magnitude, far below every multiplying method.
	r := float64(cFloat) / float64(cFixed)
	if r < 0.25 || r > 4 {
		t.Fatalf("float/fixed non-interp ratio %.2f (float=%d fixed=%d), want same order", r, cFloat, cFixed)
	}
	mi, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 1024, true)
	dmi, _ := mi.Load(dpu, pimsim.InWRAM)
	dpu.ResetCycles()
	dmi.Eval(dpu.NewCtx(), 1.5)
	if cM := dpu.Cycles(); cM < 4*cFloat || cM < 4*cFixed {
		t.Fatalf("both no-multiply variants (%d, %d) must be far below M-LUTi (%d)", cFloat, cFixed, cM)
	}
}

func TestFixedLLUTRangeValidation(t *testing.T) {
	if _, err := BuildFixedLLUT(math.Exp, 0, 9, 8, false); err == nil {
		t.Fatal("range beyond Q3.28 must fail")
	}
	if _, err := BuildFixedLLUT(math.Sin, 0, 1, 29, false); err == nil {
		t.Fatal("density exponent beyond fraction bits must fail")
	}
}

// --- D-LUT ---

func TestDLUTTanhAccuracy(t *testing.T) {
	tab, err := BuildDLUT(math.Tanh, -10, 4, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	e := maxErr(tab.EvalHost, math.Tanh, -14, 14, 8000)
	if e > 1e-2 {
		t.Fatalf("D-LUT tanh max error %v", e)
	}
}

func TestDLUTInterpTanhAccuracy(t *testing.T) {
	tab, _ := BuildDLUT(math.Tanh, -14, 4, 8, true)
	// Away from the near-zero gap the interpolation is tight…
	e := maxErr(tab.EvalHost, math.Tanh, 0.01, 14, 8000)
	if e > 2e-5 {
		t.Fatalf("interpolated D-LUT tanh max error %v", e)
	}
	// …and inside the gap the error is bounded by tanh(2^MinExp).
	eGap := maxErr(tab.EvalHost, math.Tanh, -0.001, 0.001, 500)
	if eGap > math.Pow(2, -13) {
		t.Fatalf("near-zero gap error %v exceeds 2^MinExp bound", eGap)
	}
}

func TestDLUTDensityFollowsFloats(t *testing.T) {
	// Entries per unit interval must be denser near zero (Fig. 4(c)):
	// block [2^-3, 2^-2) has the same entry count as [1, 2) over an 8×
	// narrower span.
	tab, _ := BuildDLUT(math.Tanh, -3, 2, 4, false)
	perBlock := 1 << 4
	spanSmall := math.Ldexp(1, -2) - math.Ldexp(1, -3)
	spanLarge := 2.0 - 1.0
	densSmall := float64(perBlock) / spanSmall
	densLarge := float64(perBlock) / spanLarge
	if densSmall <= densLarge*7 {
		t.Fatalf("density near zero (%v) should be ~8× density at 1 (%v)", densSmall, densLarge)
	}
	_ = tab
}

func TestDLUTSignHandling(t *testing.T) {
	tab, _ := BuildDLUT(math.Tanh, -10, 4, 8, true)
	if got := tab.EvalHost(-1.0); math.Abs(float64(got)-math.Tanh(-1)) > 1e-4 {
		t.Fatalf("tanh(-1) = %v", got)
	}
	if got := tab.EvalHost(1.0); math.Abs(float64(got)-math.Tanh(1)) > 1e-4 {
		t.Fatalf("tanh(1) = %v", got)
	}
}

func TestDLUTNearZeroGap(t *testing.T) {
	// The documented limitation (§3.3.1): inputs below 2^MinExp clamp,
	// so tanh(tiny) returns tanh(2^MinExp-ish) instead of ~tiny.
	tab, _ := BuildDLUT(math.Tanh, -4, 4, 6, false)
	got := float64(tab.EvalHost(1e-6))
	if got < 1e-3 {
		t.Fatalf("expected the near-zero clamp artifact, got %v", got)
	}
	// And the DL-LUT must fix it.
	dl, err := BuildDLLUT(math.Tanh, -4, 4, 6, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	fixedUp := float64(dl.EvalHost(1e-6))
	if math.Abs(fixedUp-math.Tanh(1e-6)) > 1e-3 {
		t.Fatalf("DL-LUT near zero = %v, want ~0", fixedUp)
	}
}

func TestDLUTDeviceMatchesHost(t *testing.T) {
	for _, interp := range []bool{false, true} {
		tab, _ := BuildDLUT(math.Tanh, -10, 4, 7, interp)
		dpu := newDPU()
		dev, _ := tab.Load(dpu, pimsim.InWRAM)
		cx := dpu.NewCtx()
		f := func(u float32) bool {
			x := float32(math.Mod(float64(u), 14))
			return dev.Eval(cx, x) == tab.EvalHost(x)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("interp=%v: %v", interp, err)
		}
	}
}

func TestDLUTInterpContinuousAcrossBlocks(t *testing.T) {
	tab, _ := BuildDLUT(math.Tanh, -6, 3, 6, true)
	// Just below and above a power of two must interpolate smoothly.
	below := float64(tab.EvalHost(math.Nextafter32(2, 0)))
	above := float64(tab.EvalHost(2.0))
	if math.Abs(below-above) > 1e-5 {
		t.Fatalf("discontinuity at block boundary: %v vs %v", below, above)
	}
}

func TestDLUTValidation(t *testing.T) {
	if _, err := BuildDLUT(math.Tanh, 4, 4, 6, false); err == nil {
		t.Fatal("empty exponent range must fail")
	}
	if _, err := BuildDLUT(math.Tanh, -4, 4, 25, false); err == nil {
		t.Fatal("too many mantissa bits must fail")
	}
}

// --- DL-LUT ---

func TestDLLUTAccuracyEverywhere(t *testing.T) {
	tab, err := BuildDLLUT(math.Tanh, -4, 4, 8, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	e := maxErr(tab.EvalHost, math.Tanh, -14, 14, 10000)
	if e > 1e-5 {
		t.Fatalf("DL-LUT tanh max error %v", e)
	}
	// Near-zero region specifically.
	e0 := maxErr(tab.EvalHost, math.Tanh, -0.05, 0.05, 4000)
	if e0 > 1e-5 {
		t.Fatalf("DL-LUT near-zero max error %v", e0)
	}
}

func TestDLLUTDeviceMatchesHost(t *testing.T) {
	tab, _ := BuildDLLUT(math.Tanh, -4, 4, 7, 10, true)
	dpu := newDPU()
	dev, err := tab.Load(dpu, pimsim.InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	cx := dpu.NewCtx()
	f := func(u float32) bool {
		x := float32(math.Mod(float64(u), 14))
		return dev.Eval(cx, x) == tab.EvalHost(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDLLUTBytes(t *testing.T) {
	tab, _ := BuildDLLUT(math.Tanh, -4, 4, 6, 10, false)
	if tab.Bytes() != tab.L.Bytes()+tab.D.Bytes() {
		t.Fatal("combined footprint must be the sum of parts")
	}
}

// --- placement ---

func TestLUTWRAMExhaustion(t *testing.T) {
	// A table larger than the 64-KB scratchpad must fail to load there
	// but load fine in the DRAM bank (observation 4).
	tab, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 14, false) // ~103k entries > 64 KB
	dpu := newDPU()
	if _, err := tab.Load(dpu, pimsim.InWRAM); err == nil {
		t.Fatal("oversized table must not fit in WRAM")
	}
	if _, err := tab.Load(dpu, pimsim.InMRAM); err != nil {
		t.Fatalf("table must fit in MRAM: %v", err)
	}
}

func TestLUTMRAMPlacementSameCyclesAtFullPipeline(t *testing.T) {
	// Observation 4: no significant performance difference between
	// MRAM- and WRAM-resident LUTs (DMA latency hides behind issue
	// cycles when the pipeline is full).
	tab, _ := BuildLLUT(math.Sin, 0, 2*math.Pi, 10, true)
	run := func(place pimsim.Placement) uint64 {
		dpu := newDPU()
		dev, err := tab.Load(dpu, place)
		if err != nil {
			t.Fatal(err)
		}
		cx := dpu.NewCtx()
		for i := 0; i < 1000; i++ {
			dev.Eval(cx, float32(i%6))
		}
		return dpu.Cycles()
	}
	w, m := run(pimsim.InWRAM), run(pimsim.InMRAM)
	diff := math.Abs(float64(w)-float64(m)) / float64(w)
	if diff > 0.05 {
		t.Fatalf("WRAM (%d) vs MRAM (%d) cycles differ by %.1f%%, want <5%%", w, m, diff*100)
	}
}

func TestPropDLLUTAccurateAroundSplit(t *testing.T) {
	// Both sides of the L/D split must approximate tanh tightly — no
	// seam artifact where the two tables meet.
	tab, _ := BuildDLLUT(math.Tanh, -4, 4, 8, 12, true)
	split := float64(tab.Split)
	for _, x := range []float64{split * 0.99, split * 0.999, split, split * 1.001, split * 1.01} {
		got := float64(tab.EvalHost(float32(x)))
		if math.Abs(got-math.Tanh(x)) > 1e-5 {
			t.Fatalf("error at %v near split: got %v want %v", x, got, math.Tanh(x))
		}
	}
}

func TestAllLUTKindsInMRAM(t *testing.T) {
	// Every LUT family must work with DRAM-bank placement end to end.
	dpu := newDPU()
	cx := dpu.NewCtx()

	mt, _ := BuildMLUT(math.Sin, 0, 2*math.Pi, 512, true)
	md, err := mt.Load(dpu, pimsim.InMRAM)
	if err != nil {
		t.Fatal(err)
	}
	if got := md.Eval(cx, 1.0); math.Abs(float64(got)-math.Sin(1)) > 1e-4 {
		t.Errorf("MRAM M-LUT sin(1) = %v", got)
	}

	ft, _ := BuildFixedLLUT(math.Sin, 0, 2*math.Pi, 10, true)
	fd, err := ft.Load(dpu, pimsim.InMRAM)
	if err != nil {
		t.Fatal(err)
	}
	if got := fd.EvalFloat(cx, 1.0); math.Abs(float64(got)-math.Sin(1)) > 1e-4 {
		t.Errorf("MRAM fixed L-LUT sin(1) = %v", got)
	}

	dt, _ := BuildDLUT(math.Tanh, -10, 4, 7, true)
	dd, err := dt.Load(dpu, pimsim.InMRAM)
	if err != nil {
		t.Fatal(err)
	}
	if got := dd.Eval(cx, -1.5); math.Abs(float64(got)-math.Tanh(-1.5)) > 1e-3 {
		t.Errorf("MRAM D-LUT tanh(-1.5) = %v", got)
	}

	lt, _ := BuildDLLUT(math.Tanh, -4, 4, 7, 10, true)
	ld, err := lt.Load(dpu, pimsim.InMRAM)
	if err != nil {
		t.Fatal(err)
	}
	if got := ld.Eval(cx, 0.001); math.Abs(float64(got)-math.Tanh(0.001)) > 1e-4 {
		t.Errorf("MRAM DL-LUT tanh(0.001) = %v", got)
	}
	if dpu.DMACycles() == 0 {
		t.Error("MRAM lookups must exercise the DMA engine")
	}
}

func TestDLUTLoadFailurePropagates(t *testing.T) {
	// When the scratchpad can hold the positive table but not the
	// negative one, the load must fail cleanly, not corrupt state.
	tab, _ := BuildDLUT(math.Tanh, -14, 4, 10, true) // 2×~74 KB
	dpu := newDPU()
	if _, err := tab.Load(dpu, pimsim.InWRAM); err == nil {
		t.Fatal("two 74-KB tables cannot fit 64-KB WRAM")
	}
}
