package lut

import "transpimlib/internal/fixed"

// Scratch is a reusable struct-of-arrays arena for the classed batch
// kernels: the SoA value lanes the pre-classification passes gather
// sub-batches into, the per-element class tags, and the integer lanes
// the range-reduction pipelines carry exponents and fixed-point values
// in. One Scratch serves one kernel invocation at a time (no internal
// locking); the engine keeps one per PIM lane, pre-grown to the lane's
// batch capacity, so steady-state batches never allocate. Lanes grow
// on demand and never shrink.
//
// Lane conventions (per kernel invocation):
//   - Cls tags each input element with its control-flow class.
//   - XA/YA and XB/YB are gathered per-class float sub-batches
//     (inputs/outputs); elementwise pipelines use XB/YB so a class
//     partition in XA/YA can feed a pipeline without clashing.
//   - IA carries per-element exponents (ldexp/frexp splits).
//   - QA/QB are the Q3.28 lanes of the fixed-point kernels.
//   - TA/TB/TC are the Q23.40 lanes of the CORDIC kernels (folded
//     angles in, sin/cos vectors out).
type Scratch struct {
	Cls        []uint8
	XA, YA     []float32
	XB, YB     []float32
	IA         []int32
	QA, QB     []fixed.Q3_28
	TA, TB, TC []int64

	// Counts is the per-class element tally a batch-kernel invocation
	// fills (core.maxCostClasses entries). It lives in the Scratch —
	// rather than on the caller's stack — because its address is passed
	// through an opaque kernel func value, which would otherwise force
	// a heap allocation per batch.
	Counts [4]uint64
}

// growTo returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growTo[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Grow ensures the class tags, float lanes and integer lane hold n
// elements.
func (s *Scratch) Grow(n int) {
	s.Cls = growTo(s.Cls, n)
	s.XA = growTo(s.XA, n)
	s.YA = growTo(s.YA, n)
	s.XB = growTo(s.XB, n)
	s.YB = growTo(s.YB, n)
	s.IA = growTo(s.IA, n)
}

// GrowQ ensures the fixed-point lanes hold n elements.
func (s *Scratch) GrowQ(n int) {
	s.QA = growTo(s.QA, n)
	s.QB = growTo(s.QB, n)
}

// GrowT ensures the Q23.40 lanes hold n elements.
func (s *Scratch) GrowT(n int) {
	s.TA = growTo(s.TA, n)
	s.TB = growTo(s.TB, n)
	s.TC = growTo(s.TC, n)
}
