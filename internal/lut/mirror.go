package lut

import (
	"math"

	"transpimlib/internal/fixed"
	"transpimlib/internal/fpbits"
	"transpimlib/internal/pimsim"
)

// Mirror methods are the unmetered host-side twins of the device Eval
// paths, used by the batch-evaluation fast path. Unlike the EvalHost
// reference implementations (which favor readable float64 math), a
// Mirror must replay the device's float32 operation order exactly so
// batch outputs are bit-identical to the interpreted path — including
// clamp-before/after ordering and out-of-range conversions.
//
// The MirrorMany forms are the hot loops of the engine's fused batch
// path. They hoist every loop-invariant (table slice, addressing
// constants, the ldexp exponent window) out of the per-element body
// and split each body into a straight-line fast class — in-range
// index, normal-exponent ldexp — with the rare inputs (NaN/Inf/
// subnormal, out-of-table, float64-floor boundary cases) routed to an
// out-of-line slow class that replays the scalar Mirror arithmetic
// verbatim. The fast classes use the uint(idx) < uint(hi) comparison
// form so the compiler proves the table accesses in bounds and drops
// the checks.

// Mirror mirrors DevMLUT.Eval bit-for-bit without metering.
func (d *DevMLUT) Mirror(x float32) float32 {
	tt := (x - d.p) * d.k
	if !d.t.Interp {
		idx := clampHost(pimsim.RoundToEven32(tt), len(d.t.Entries))
		return d.t.Entries[idx]
	}
	idx := pimsim.FloorToInt32(tt)
	delta := tt - float32(idx)
	idx = clampHost(idx, len(d.t.Entries)-1)
	l0 := d.t.Entries[idx]
	l1 := d.t.Entries[idx+1]
	return l0 + (l1-l0)*delta
}

// MirrorMany mirrors DevMLUT.Eval over a slice: the same arithmetic as
// Mirror with the table pointer and mapping constants hoisted out of
// the per-element loop and the in-range index handled by a checked,
// bounds-check-free fast class.
func (d *DevMLUT) MirrorMany(xs, ys []float32) {
	entries := d.t.Entries
	p, k := d.p, d.k
	ys = ys[:len(xs)]
	if !d.t.Interp {
		hi := len(entries)
		for i, x := range xs {
			idx := int(pimsim.RoundToEven32((x - p) * k))
			if uint(idx) < uint(hi) {
				ys[i] = entries[idx]
			} else {
				ys[i] = entries[clampHost(int32(idx), hi)]
			}
		}
		return
	}
	if len(entries) < 2 {
		return // interpolated tables always hold ≥ 2 entries + guard
	}
	hi := len(entries) - 1
	for i, x := range xs {
		tt := (x - p) * k
		// Truncation equals FloorToInt32 for non-negative in-range tt,
		// and the float32 fractional part is exact (Sterbenz); anything
		// else — negative, NaN, out of table — replays the scalar path.
		idx := int(tt)
		if tt >= 0 && uint(idx) < uint(hi) {
			delta := tt - float32(idx)
			l0 := entries[idx]
			l1 := entries[idx+1]
			ys[i] = l0 + (l1-l0)*delta
		} else {
			fi := pimsim.FloorToInt32(tt)
			delta := tt - float32(fi)
			ci := clampHost(fi, hi)
			l0 := entries[ci]
			l1 := entries[ci+1]
			ys[i] = l0 + (l1-l0)*delta
		}
	}
}

// ldexpSlow is the out-of-line fallback for the hand-inlined ldexp in
// MirrorMany: zero/subnormal/Inf/NaN inputs and over/underflowing
// results go through the full fpbits.Ldexp routine.
//
//go:noinline
func ldexpSlow(x float32, n int) float32 { return fpbits.Ldexp(x, n) }

// Mirror mirrors DevLLUT.Eval bit-for-bit without metering.
func (d *DevLLUT) Mirror(x float32) float32 {
	if !d.pZero {
		x = x - d.p
	}
	tt := fpbits.Ldexp(x, d.t.N)
	if !d.t.Interp {
		// truncIndex: floor through float64, exactly as the device does.
		idx := clampHost(int32(math.Floor(float64(tt))), len(d.t.Entries))
		return d.t.Entries[idx]
	}
	f := math.Floor(float64(tt))
	idx := int32(f)
	delta := float32(float64(tt) - f)
	idx = clampHost(idx, len(d.t.Entries)-1)
	l0 := d.t.Entries[idx]
	l1 := d.t.Entries[idx+1]
	return l0 + (l1-l0)*delta
}

// llutSlow replays the scalar Mirror tail (float64 floor, unclamped-
// floor delta, clamp) for an element that missed MirrorMany's fast
// class; interp selects the interpolated form.
//
//go:noinline
func llutSlow(entries []float32, tt float32, interp bool) float32 {
	if !interp {
		return entries[clampHost(int32(math.Floor(float64(tt))), len(entries))]
	}
	t64 := float64(tt)
	f := math.Floor(t64)
	idx := clampHost(int32(f), len(entries)-1)
	delta := float32(t64 - f)
	l0 := entries[idx]
	l1 := entries[idx+1]
	return l0 + (l1-l0)*delta
}

// MirrorMany mirrors DevLLUT.Eval over a slice. The per-element body
// is two checked fast classes: the ldexp collapses to one integer add
// when the (biased) exponent sits inside the precomputed LdexpWindow,
// and the float64 floor + clamp collapses to a float32 truncation when
// the scaled address is non-negative and in range. Elements outside
// either window take the out-of-line scalar-identical slow class.
func (d *DevLLUT) MirrorMany(xs, ys []float32) {
	entries := d.t.Entries
	n := d.t.N
	p, pZero := d.p, d.pZero
	eLo, eHi, ok := fpbits.LdexpWindow(n)
	if !ok {
		eLo, eHi = 0, -1 // empty window: uint32 span below never matches
	}
	span := uint32(eHi - eLo)
	add := uint32(n) << fpbits.MantBits
	ys = ys[:len(xs)]
	if !d.t.Interp {
		hi := len(entries)
		for i, x := range xs {
			if !pZero {
				x -= p
			}
			b := fpbits.Bits(x)
			var tt float32
			if uint32(int32(b>>fpbits.MantBits)&0xFF-eLo) <= span {
				tt = fpbits.FromBits(b + add)
			} else {
				tt = ldexpSlow(x, n)
			}
			// Truncation equals the float64 floor for non-negative
			// in-range tt (float32→float64 is exact).
			idx := int(tt)
			if tt >= 0 && uint(idx) < uint(hi) {
				ys[i] = entries[idx]
			} else {
				ys[i] = llutSlow(entries, tt, false)
			}
		}
		return
	}
	if len(entries) < 2 {
		return // interpolated tables always hold ≥ 2 entries + guard
	}
	// next[i] aliases entries[i+1]: indexing the pair through two
	// slices of the same length lets the compiler drop both checks.
	next := entries[1:]
	lo0 := entries[:len(next)]
	for i, x := range xs {
		if !pZero {
			x -= p
		}
		b := fpbits.Bits(x)
		var tt float32
		if uint32(int32(b>>fpbits.MantBits)&0xFF-eLo) <= span {
			tt = fpbits.FromBits(b + add)
		} else {
			tt = ldexpSlow(x, n)
		}
		idx := int(tt)
		if tt >= 0 && uint(idx) < uint(len(lo0)) {
			// The float32 subtraction is exact here (Sterbenz for
			// idx ≥ 1, trivial for idx = 0), so it equals the scalar
			// path's float64 tt − floor(tt) rounded to float32.
			delta := tt - float32(idx)
			l0 := lo0[idx]
			l1 := next[idx]
			ys[i] = l0 + (l1-l0)*delta
		} else {
			ys[i] = llutSlow(entries, tt, true)
		}
	}
}

// Mirror mirrors DevFixedLLUT.Eval (the fixed-point path) bit-for-bit
// without metering; FixedLLUT.EvalHost already replays the device
// integer arithmetic exactly.
func (d *DevFixedLLUT) Mirror(x fixed.Q3_28) fixed.Q3_28 { return d.t.EvalHost(x) }

// MirrorFloat mirrors DevFixedLLUT.EvalFloat bit-for-bit.
func (d *DevFixedLLUT) MirrorFloat(x float32) float32 {
	return d.t.EvalHost(fixed.FromFloat32(x)).Float32()
}

// MirrorMany mirrors DevFixedLLUT.Eval over Q3.28 slices: EvalHost
// with the table and addressing constants hoisted and the in-range
// index handled without bounds checks. The fixed-point arithmetic is
// integer-exact, so hoisting cannot change results.
func (d *DevFixedLLUT) MirrorMany(xs, ys []fixed.Q3_28) {
	t := d.t
	entries := t.Entries
	shift := uint(fixed.FracBits - t.N)
	p := t.P
	ys = ys[:len(xs)]
	if !t.Interp {
		hi := len(entries)
		for i, x := range xs {
			idx := int(int32(x-p) >> shift)
			if uint(idx) < uint(hi) {
				ys[i] = entries[idx]
			} else {
				ys[i] = entries[clampHost(int32(idx), hi)]
			}
		}
		return
	}
	if len(entries) < 2 {
		return // interpolated tables always hold ≥ 2 entries + guard
	}
	hi := len(entries) - 1
	mask := int32(1)<<shift - 1
	nbits := uint(t.N)
	for i, x := range xs {
		diff := x - p
		idx := int(int32(diff) >> shift)
		delta := fixed.Q3_28(int32(diff) & mask << nbits)
		var l0, l1 fixed.Q3_28
		if uint(idx) < uint(hi) {
			l0 = entries[idx]
			l1 = entries[idx+1]
		} else {
			ci := clampHost(int32(idx), hi)
			l0 = entries[ci]
			l1 = entries[ci+1]
		}
		ys[i] = l0.Add(l1.Sub(l0).Mul(delta))
	}
}

// MirrorFloatMany mirrors DevFixedLLUT.EvalFloat over float32 slices:
// the float↔Q3.28 conversions fused around the MirrorMany loop body.
func (d *DevFixedLLUT) MirrorFloatMany(xs, ys []float32) {
	t := d.t
	entries := t.Entries
	shift := uint(fixed.FracBits - t.N)
	p := t.P
	ys = ys[:len(xs)]
	if !t.Interp {
		hi := len(entries)
		for i, x := range xs {
			idx := int(int32(fixed.FromFloat32(x)-p) >> shift)
			if uint(idx) < uint(hi) {
				ys[i] = entries[idx].Float32()
			} else {
				ys[i] = entries[clampHost(int32(idx), hi)].Float32()
			}
		}
		return
	}
	if len(entries) < 2 {
		return // interpolated tables always hold ≥ 2 entries + guard
	}
	hi := len(entries) - 1
	mask := int32(1)<<shift - 1
	nbits := uint(t.N)
	for i, x := range xs {
		diff := fixed.FromFloat32(x) - p
		idx := int(int32(diff) >> shift)
		delta := fixed.Q3_28(int32(diff) & mask << nbits)
		var l0, l1 fixed.Q3_28
		if uint(idx) < uint(hi) {
			l0 = entries[idx]
			l1 = entries[idx+1]
		} else {
			ci := clampHost(int32(idx), hi)
			l0 = entries[ci]
			l1 = entries[ci+1]
		}
		ys[i] = l0.Add(l1.Sub(l0).Mul(delta)).Float32()
	}
}

// Mirror mirrors DevDLUT.Eval bit-for-bit without metering;
// DLUT.EvalHost already replays the device bit extraction and float32
// interpolation exactly.
func (d *DevDLUT) Mirror(x float32) float32 { return d.t.EvalHost(x) }

// MirrorMany mirrors DevDLUT.Eval over a slice: the bit-pattern
// address extraction with all constants hoisted, sign routing to the
// per-sign table, and a bounds-check-free in-range class.
func (d *DevDLUT) MirrorMany(xs, ys []float32) {
	t := d.t
	shift := uint(23 - t.MantBits)
	sub := int32(uint32(t.MinExp+fpbits.ExpBias) << uint(t.MantBits))
	fracMask := uint32(1)<<shift - 1
	scale := float32(uint32(1) << shift)
	pos, neg := t.Pos, t.Neg
	ys = ys[:len(xs)]
	if !t.Interp {
		for i, x := range xs {
			bits := fpbits.Bits(x)
			entries := pos
			if bits&fpbits.SignMask != 0 {
				entries = neg
			}
			idx := int(int32((bits&^uint32(fpbits.SignMask))>>shift) - sub)
			if uint(idx) < uint(len(entries)) {
				ys[i] = entries[idx]
			} else {
				ys[i] = entries[clampHost(int32(idx), len(entries))]
			}
		}
		return
	}
	if len(pos) < 2 || len(neg) < 2 {
		return // interpolated tables always hold ≥ 2 entries + guard
	}
	for i, x := range xs {
		bits := fpbits.Bits(x)
		entries := pos
		if bits&fpbits.SignMask != 0 {
			entries = neg
		}
		idx := int(int32((bits&^uint32(fpbits.SignMask))>>shift) - sub)
		delta := float32(bits&fracMask) / scale
		hi := len(entries) - 1
		var l0, l1 float32
		if uint(idx) < uint(hi) {
			l0 = entries[idx]
			l1 = entries[idx+1]
		} else {
			ci := clampHost(int32(idx), hi)
			l0 = entries[ci]
			l1 = entries[ci+1]
		}
		ys[i] = l0 + (l1-l0)*delta
	}
}

// Mirror mirrors DevDLLUT.Eval bit-for-bit without metering and
// reports which component served the lookup (true for the L-LUT), the
// branch the batch cost accounting needs.
func (d *DevDLLUT) Mirror(x float32) (v float32, lPath bool) {
	ax := fpbits.FromBits(fpbits.Bits(x) &^ fpbits.SignMask)
	if ax < d.t.Split {
		return d.l.Mirror(x), true
	}
	return d.d.Mirror(x), false
}

// MirrorMany mirrors DevDLLUT.Eval over a slice: one classification
// pass routes each element to the L-LUT (|x| below the split) or the
// D-LUT, the two gathered sub-batches run through their components'
// fused kernels, and a scatter pass restores input order. Returns the
// number of L-LUT-served elements — the class-0 count the batch cost
// accounting charges. NaN inputs route to the D-LUT, exactly as the
// scalar Mirror's ax < Split comparison does.
func (d *DevDLLUT) MirrorMany(xs, ys []float32, sc *Scratch) int {
	n := len(xs)
	sc.Grow(n)
	split := d.t.Split
	cls := sc.Cls[:n]
	xa := sc.XA[:0]
	xb := sc.XB[:0]
	for i, x := range xs {
		ax := fpbits.FromBits(fpbits.Bits(x) &^ uint32(fpbits.SignMask))
		if ax < split {
			cls[i] = 0
			xa = append(xa, x)
		} else {
			cls[i] = 1
			xb = append(xb, x)
		}
	}
	ya := sc.YA[:len(xa)]
	yb := sc.YB[:len(xb)]
	d.l.MirrorMany(xa, ya)
	d.d.MirrorMany(xb, yb)
	ys = ys[:n]
	j, k := 0, 0
	for i, c := range cls {
		if c == 0 {
			ys[i] = ya[j]
			j++
		} else {
			ys[i] = yb[k]
			k++
		}
	}
	return len(xa)
}
