package lut

import (
	"math"

	"transpimlib/internal/fixed"
	"transpimlib/internal/fpbits"
	"transpimlib/internal/pimsim"
)

// Mirror methods are the unmetered host-side twins of the device Eval
// paths, used by the batch-evaluation fast path. Unlike the EvalHost
// reference implementations (which favor readable float64 math), a
// Mirror must replay the device's float32 operation order exactly so
// batch outputs are bit-identical to the interpreted path — including
// clamp-before/after ordering and out-of-range conversions.

// Mirror mirrors DevMLUT.Eval bit-for-bit without metering.
func (d *DevMLUT) Mirror(x float32) float32 {
	tt := (x - d.p) * d.k
	if !d.t.Interp {
		idx := clampHost(pimsim.RoundToEven32(tt), len(d.t.Entries))
		return d.t.Entries[idx]
	}
	idx := pimsim.FloorToInt32(tt)
	delta := tt - float32(idx)
	idx = clampHost(idx, len(d.t.Entries)-1)
	l0 := d.t.Entries[idx]
	l1 := d.t.Entries[idx+1]
	return l0 + (l1-l0)*delta
}

// MirrorMany mirrors DevMLUT.Eval over a slice: the same arithmetic as
// Mirror with the table pointer and mapping constants hoisted out of
// the per-element loop.
func (d *DevMLUT) MirrorMany(xs, ys []float32) {
	entries := d.t.Entries
	p, k := d.p, d.k
	if !d.t.Interp {
		hi := len(entries)
		for i, x := range xs {
			ys[i] = entries[clampHost(pimsim.RoundToEven32((x-p)*k), hi)]
		}
		return
	}
	hi := len(entries) - 1
	for i, x := range xs {
		tt := (x - p) * k
		idx := pimsim.FloorToInt32(tt)
		delta := tt - float32(idx)
		idx = clampHost(idx, hi)
		l0 := entries[idx]
		l1 := entries[idx+1]
		ys[i] = l0 + (l1-l0)*delta
	}
}

// ldexpSlow is the out-of-line fallback for the hand-inlined ldexp in
// MirrorMany: zero/subnormal/Inf/NaN inputs and over/underflowing
// results go through the full fpbits.Ldexp routine.
//
//go:noinline
func ldexpSlow(x float32, n int) float32 { return fpbits.Ldexp(x, n) }

// Mirror mirrors DevLLUT.Eval bit-for-bit without metering.
func (d *DevLLUT) Mirror(x float32) float32 {
	if !d.pZero {
		x = x - d.p
	}
	tt := fpbits.Ldexp(x, d.t.N)
	if !d.t.Interp {
		// truncIndex: floor through float64, exactly as the device does.
		idx := clampHost(int32(math.Floor(float64(tt))), len(d.t.Entries))
		return d.t.Entries[idx]
	}
	f := math.Floor(float64(tt))
	idx := int32(f)
	delta := float32(float64(tt) - f)
	idx = clampHost(idx, len(d.t.Entries)-1)
	l0 := d.t.Entries[idx]
	l1 := d.t.Entries[idx+1]
	return l0 + (l1-l0)*delta
}

// MirrorMany mirrors DevLLUT.Eval over a slice, hoisting the table and
// addressing parameters out of the per-element loop and using the
// inline ldexp fast path.
func (d *DevLLUT) MirrorMany(xs, ys []float32) {
	entries := d.t.Entries
	n := d.t.N
	p, pZero := d.p, d.pZero
	if !d.t.Interp {
		hi := len(entries)
		for i, x := range xs {
			if !pZero {
				x -= p
			}
			// Hand-inlined normal→normal ldexp fast path (a single add on
			// the exponent field), bit-identical to fpbits.Ldexp.
			b := fpbits.Bits(x)
			e := int(b>>fpbits.MantBits)&0xFF + n
			var tt float32
			if e-n != 0 && e-n != fpbits.ExpMax && e >= 1 && e < fpbits.ExpMax {
				tt = fpbits.FromBits(b&^uint32(fpbits.ExpMask) | uint32(e)<<fpbits.MantBits)
			} else {
				tt = ldexpSlow(x, n)
			}
			ys[i] = entries[clampHost(int32(math.Floor(float64(tt))), hi)]
		}
		return
	}
	hi := len(entries) - 1
	for i, x := range xs {
		if !pZero {
			x -= p
		}
		b := fpbits.Bits(x)
		e := int(b>>fpbits.MantBits)&0xFF + n
		var ttf float32
		if e-n != 0 && e-n != fpbits.ExpMax && e >= 1 && e < fpbits.ExpMax {
			ttf = fpbits.FromBits(b&^uint32(fpbits.ExpMask) | uint32(e)<<fpbits.MantBits)
		} else {
			ttf = ldexpSlow(x, n)
		}
		tt := float64(ttf)
		f := math.Floor(tt)
		idx := clampHost(int32(f), hi)
		delta := float32(tt - f)
		l0 := entries[idx]
		l1 := entries[idx+1]
		ys[i] = l0 + (l1-l0)*delta
	}
}

// Mirror mirrors DevFixedLLUT.Eval (the fixed-point path) bit-for-bit
// without metering; FixedLLUT.EvalHost already replays the device
// integer arithmetic exactly.
func (d *DevFixedLLUT) Mirror(x fixed.Q3_28) fixed.Q3_28 { return d.t.EvalHost(x) }

// MirrorFloat mirrors DevFixedLLUT.EvalFloat bit-for-bit.
func (d *DevFixedLLUT) MirrorFloat(x float32) float32 {
	return d.t.EvalHost(fixed.FromFloat32(x)).Float32()
}

// Mirror mirrors DevDLUT.Eval bit-for-bit without metering;
// DLUT.EvalHost already replays the device bit extraction and float32
// interpolation exactly.
func (d *DevDLUT) Mirror(x float32) float32 { return d.t.EvalHost(x) }

// Mirror mirrors DevDLLUT.Eval bit-for-bit without metering and
// reports which component served the lookup (true for the L-LUT), the
// branch the batch cost accounting needs.
func (d *DevDLLUT) Mirror(x float32) (v float32, lPath bool) {
	ax := fpbits.FromBits(fpbits.Bits(x) &^ fpbits.SignMask)
	if ax < d.t.Split {
		return d.l.Mirror(x), true
	}
	return d.d.Mirror(x), false
}
