package lut

import (
	"math"
	"testing"

	"transpimlib/internal/fixed"
	"transpimlib/internal/fpbits"
	"transpimlib/internal/pimsim"
)

// mirrorInputs builds an adversarial input set for the Many-kernel
// differential tests: a dense sweep over the table domain plus every
// special the fast classes must punt on — NaN, ±Inf, ±0, subnormals,
// out-of-range magnitudes, and values straddling the index boundaries.
func mirrorInputs(lo, hi float64) []float32 {
	var xs []float32
	n := 4001
	for i := 0; i < n; i++ {
		xs = append(xs, float32(lo+(hi-lo)*float64(i)/float64(n-1)))
	}
	span := float32(hi - lo)
	xs = append(xs,
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)),
		fpbits.FromBits(1), fpbits.FromBits(0x007FFFFF), // subnormals
		-fpbits.FromBits(1),
		float32(lo), float32(hi), float32(lo)-span, float32(hi)+span,
		float32(lo)-1e-3, float32(hi)+1e-3,
		1e30, -1e30, 1e-30, -1e-30,
		float32(math.MaxFloat32), -float32(math.MaxFloat32),
	)
	// Index-boundary neighborhoods.
	for _, b := range []float32{float32(lo), float32((lo + hi) / 2), float32(hi)} {
		xs = append(xs, fpbits.NextUp(b), -fpbits.NextUp(-b))
	}
	return xs
}

func ref(x float64) float64 { return math.Tanh(x) }

func dpuForTest(t testing.TB) func() *pimsim.DPU {
	t.Helper()
	return func() *pimsim.DPU {
		return pimsim.NewSystem(pimsim.Config{DPUs: 1}).DPU(0)
	}
}

// TestMirrorManyMatchesScalar pins every Many kernel bit-identical to
// its per-element scalar Mirror over the adversarial input set, for
// both interpolation variants.
func TestMirrorManyMatchesScalar(t *testing.T) {
	newDPU := dpuForTest(t)
	for _, interp := range []bool{false, true} {
		xs := mirrorInputs(-7.9, 7.9)
		ys := make([]float32, len(xs))

		mt, err := BuildMLUT(ref, -7.9, 7.9, 1<<10, interp)
		if err != nil {
			t.Fatal(err)
		}
		mdev, err := mt.Load(newDPU(), pimsim.InWRAM)
		if err != nil {
			t.Fatal(err)
		}
		mdev.MirrorMany(xs, ys)
		for i, x := range xs {
			if got, want := fpbits.Bits(ys[i]), fpbits.Bits(mdev.Mirror(x)); got != want {
				t.Fatalf("MLUT interp=%v x=%v (bits %#x): many %#x != scalar %#x", interp, x, fpbits.Bits(x), got, want)
			}
		}

		// L-LUT across density exponents, including p=0 and p≠0 and a
		// negative density (coarse table) to stress the ldexp window.
		for _, c := range []struct {
			lo, hi float64
			n      int
		}{
			{-7.9, 7.9, 6},
			{0, 7.9, 8},
			{-7.9, 7.9, -2},
			{-0.1, 0.1, 12},
		} {
			lt, err := BuildLLUT(ref, c.lo, c.hi, c.n, interp)
			if err != nil {
				t.Fatal(err)
			}
			ldev, err := lt.Load(newDPU(), pimsim.InWRAM)
			if err != nil {
				t.Fatal(err)
			}
			lxs := mirrorInputs(c.lo, c.hi)
			lys := make([]float32, len(lxs))
			ldev.MirrorMany(lxs, lys)
			for i, x := range lxs {
				if got, want := fpbits.Bits(lys[i]), fpbits.Bits(ldev.Mirror(x)); got != want {
					t.Fatalf("LLUT n=%d interp=%v x=%v (bits %#x): many %#x != scalar %#x", c.n, interp, x, fpbits.Bits(x), got, want)
				}
			}
		}

		ft, err := BuildFixedLLUT(ref, 0, 7.9, 8, interp)
		if err != nil {
			t.Fatal(err)
		}
		fdev, err := ft.Load(newDPU(), pimsim.InWRAM)
		if err != nil {
			t.Fatal(err)
		}
		fdev.MirrorFloatMany(xs, ys)
		for i, x := range xs {
			if got, want := fpbits.Bits(ys[i]), fpbits.Bits(fdev.MirrorFloat(x)); got != want {
				t.Fatalf("FixedLLUT float interp=%v x=%v: many %#x != scalar %#x", interp, x, got, want)
			}
		}
		qxs := make([]fixed.Q3_28, len(xs))
		qys := make([]fixed.Q3_28, len(xs))
		for i, x := range xs {
			qxs[i] = fixed.FromFloat32(x)
		}
		fdev.MirrorMany(qxs, qys)
		for i, q := range qxs {
			if got, want := fdev.Mirror(q), qys[i]; got != want {
				t.Fatalf("FixedLLUT interp=%v q=%v: many %v != scalar %v", interp, q, want, got)
			}
		}

		dt, err := BuildDLUT(ref, -14, 3, 8, interp)
		if err != nil {
			t.Fatal(err)
		}
		ddev, err := dt.Load(newDPU(), pimsim.InWRAM)
		if err != nil {
			t.Fatal(err)
		}
		ddev.MirrorMany(xs, ys)
		for i, x := range xs {
			if got, want := fpbits.Bits(ys[i]), fpbits.Bits(ddev.Mirror(x)); got != want {
				t.Fatalf("DLUT interp=%v x=%v (bits %#x): many %#x != scalar %#x", interp, x, fpbits.Bits(x), got, want)
			}
		}

		dlt, err := BuildDLLUT(ref, -4, 3, 8, 12, interp)
		if err != nil {
			t.Fatal(err)
		}
		dldev, err := dlt.Load(newDPU(), pimsim.InWRAM)
		if err != nil {
			t.Fatal(err)
		}
		var sc Scratch
		lCount := dldev.MirrorMany(xs, ys, &sc)
		wantL := 0
		for i, x := range xs {
			want, lPath := dldev.Mirror(x)
			if lPath {
				wantL++
			}
			if got := fpbits.Bits(ys[i]); got != fpbits.Bits(want) {
				t.Fatalf("DLLUT interp=%v x=%v (bits %#x): many %#x != scalar %#x", interp, x, fpbits.Bits(x), got, fpbits.Bits(want))
			}
		}
		if lCount != wantL {
			t.Fatalf("DLLUT interp=%v: many lCount=%d, scalar classified %d", interp, lCount, wantL)
		}
	}
}

// TestLdexpWindow pins the window classification against fpbits.Ldexp
// across the full exponent range for a spread of scale factors.
func TestLdexpWindow(t *testing.T) {
	for _, n := range []int{-300, -30, -2, -1, 0, 1, 2, 8, 30, 253, 254, 300} {
		lo, hi, ok := fpbits.LdexpWindow(n)
		add := uint32(n) << fpbits.MantBits
		for e := 0; e <= 255; e++ {
			for _, mant := range []uint32{0, 1, fpbits.MantMask} {
				for _, sign := range []uint32{0, fpbits.SignMask} {
					b := sign | uint32(e)<<fpbits.MantBits | mant
					x := fpbits.FromBits(b)
					inWindow := ok && int32(e) >= lo && int32(e) <= hi
					if !inWindow {
						continue
					}
					got := fpbits.FromBits(b + add)
					want := fpbits.Ldexp(x, n)
					if fpbits.Bits(got) != fpbits.Bits(want) {
						t.Fatalf("n=%d e=%d bits %#x: window add %#x != Ldexp %#x",
							n, e, b, fpbits.Bits(got), fpbits.Bits(want))
					}
				}
			}
		}
	}
}

func benchInputs(n int) []float32 {
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = -6 + 12*float32(i)/float32(n-1)
	}
	return xs
}

// BenchmarkLLUTMirrorMany measures the fused L-LUT kernel, the
// dominant loop of the engine's batch fast path.
func BenchmarkLLUTMirrorMany(b *testing.B) {
	newDPU := dpuForTest(b)
	lt, err := BuildLLUT(ref, -7.9, 7.9, 8, true)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := lt.Load(newDPU(), pimsim.InWRAM)
	if err != nil {
		b.Fatal(err)
	}
	xs := benchInputs(16384)
	ys := make([]float32, len(xs))
	b.SetBytes(int64(4 * len(xs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.MirrorMany(xs, ys)
	}
	b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

// BenchmarkDLLUTMirrorMany measures the classed dual-LUT kernel.
func BenchmarkDLLUTMirrorMany(b *testing.B) {
	newDPU := dpuForTest(b)
	dlt, err := BuildDLLUT(ref, -4, 3, 8, 12, true)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := dlt.Load(newDPU(), pimsim.InWRAM)
	if err != nil {
		b.Fatal(err)
	}
	xs := benchInputs(16384)
	ys := make([]float32, len(xs))
	var sc Scratch
	sc.Grow(len(xs))
	b.SetBytes(int64(4 * len(xs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.MirrorMany(xs, ys, &sc)
	}
	b.ReportMetric(float64(len(xs))*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}
