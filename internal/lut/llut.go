package lut

import (
	"fmt"
	"math"

	"transpimlib/internal/fixed"
	"transpimlib/internal/fpbits"
	"transpimlib/internal/pimsim"
)

// LLUT is an LDEXP-based fuzzy lookup table (§3.2.2): the density is
// constrained to a power of two, k = 2^N, so the address generation
// a(x) = (x − p)·2^N needs no float multiplication — just TransPimLib's
// custom ldexp (an integer add on the exponent field) and bit-level
// extraction of the integer part.
//
// The non-interpolated variant hides its rounding in a⁻¹: entries hold
// f at *midpoints*, so the device can truncate instead of rounding and
// stays entirely multiplication- and addition-free on the float path
// when p = 0. The interpolated variant adds one float multiply.
type LLUT struct {
	P       float64 // input mapped to address 0
	N       int     // density exponent: k = 2^N (may be negative)
	Interp  bool
	Entries []float32
}

// BuildLLUT samples f over [lo, hi] with density 2^n.
func BuildLLUT(f Func, lo, hi float64, n int, interp bool) (*LLUT, error) {
	if err := validateRange(lo, hi); err != nil {
		return nil, err
	}
	if n < -30 || n > 30 {
		return nil, fmt.Errorf("lut: L-LUT density exponent %d out of range", n)
	}
	t := &LLUT{P: lo, N: n, Interp: interp}
	k := math.Ldexp(1, n)
	count := int(math.Ceil((hi-lo)*k)) + 1
	if count < 2 {
		count = 2
	}
	if interp {
		count++ // guard entry
	}
	t.Entries = make([]float32, count)
	for i := range t.Entries {
		if interp {
			// a⁻¹(i) = p + i·2⁻ⁿ: exact grid points, Δ interpolates between.
			t.Entries[i] = float32(f(lo + float64(i)/k))
		} else {
			// a⁻¹(i) = p + (i+½)·2⁻ⁿ: midpoints, so truncation at lookup
			// time delivers round-to-nearest accuracy for free.
			t.Entries[i] = float32(f(lo + (float64(i)+0.5)/k))
		}
	}
	return t, nil
}

// Bytes returns the PIM memory footprint of the table.
func (t *LLUT) Bytes() int { return 4 * len(t.Entries) }

// DevLLUT is an L-LUT resident in a PIM core's memory.
type DevLLUT struct {
	t     *LLUT
	arr   devF32
	p     float32
	pZero bool
}

// Load writes the table into the chosen memory of the PIM core.
func (t *LLUT) Load(dpu *pimsim.DPU, place pimsim.Placement) (*DevLLUT, error) {
	arr, err := loadF32Array(dpu, place, t.Entries)
	if err != nil {
		return nil, err
	}
	return &DevLLUT{t: t, arr: arr, p: float32(t.P), pZero: t.P == 0}, nil
}

// Table returns the host-side table.
func (d *DevLLUT) Table() *LLUT { return d.t }

// Eval approximates f(x). Non-interpolated: ldexp + truncation + one
// table access — no multiplications or other complex operations
// (§4.2.1). Interpolated: ldexp + integer floor/fraction split + two
// accesses + the one-multiply interpolation.
func (d *DevLLUT) Eval(ctx *pimsim.Ctx, x float32) float32 {
	if !d.pZero {
		x = ctx.FSub(x, d.p)
	}
	tt := ctx.Ldexp(x, d.t.N)
	if !d.t.Interp {
		idx := clampIdx(ctx, truncIndex(ctx, tt), len(d.t.Entries))
		return d.arr.get(ctx, idx)
	}
	idx, delta := splitIntFrac(ctx, tt)
	idx = clampIdx(ctx, idx, len(d.t.Entries)-1)
	l0 := d.arr.get(ctx, idx)
	l1 := d.arr.get(ctx, idx+1)
	return lerpF32(ctx, l0, l1, delta)
}

// EvalHost is the unmetered host-side reference of Eval.
func (t *LLUT) EvalHost(x float32) float32 {
	tt := float64(fpbits.Ldexp(x-float32(t.P), t.N))
	if !t.Interp {
		return t.Entries[clampHost(int32(math.Floor(tt)), len(t.Entries))]
	}
	f := math.Floor(tt)
	idx := clampHost(int32(f), len(t.Entries)-1)
	delta := float32(tt - f)
	l0 := t.Entries[idx]
	l1 := t.Entries[idx+1]
	return l0 + (l1-l0)*delta
}

// FixedLLUT is the Q3.28 fixed-point variant of the L-LUT: addresses
// come from a single arithmetic shift of the fixed-point difference,
// and interpolation uses one fixed-point multiply — which on a PIM
// core without native floats roughly doubles the speed of the
// interpolated float L-LUT (§4.2.1 observation 1).
type FixedLLUT struct {
	P       fixed.Q3_28
	N       int // density exponent, 0 ≤ N ≤ 28
	Interp  bool
	Entries []fixed.Q3_28
}

// BuildFixedLLUT samples f over [lo, hi] with density 2^n. Function
// outputs must fit the Q3.28 range [-8, 8).
func BuildFixedLLUT(f Func, lo, hi float64, n int, interp bool) (*FixedLLUT, error) {
	if err := validateRange(lo, hi); err != nil {
		return nil, err
	}
	if n < 0 || n > fixed.FracBits {
		return nil, fmt.Errorf("lut: fixed L-LUT density exponent %d out of [0, %d]", n, fixed.FracBits)
	}
	if lo < -8 || hi >= 8 {
		return nil, fmt.Errorf("lut: fixed L-LUT input range [%v, %v) exceeds Q3.28", lo, hi)
	}
	t := &FixedLLUT{P: fixed.FromFloat64(lo), N: n, Interp: interp}
	k := math.Ldexp(1, n)
	count := int(math.Ceil((hi-lo)*k)) + 1
	if count < 2 {
		count = 2
	}
	if interp {
		count++
	}
	t.Entries = make([]fixed.Q3_28, count)
	for i := range t.Entries {
		var v float64
		if interp {
			v = f(lo + float64(i)/k)
		} else {
			v = f(lo + (float64(i)+0.5)/k)
		}
		t.Entries[i] = fixed.FromFloat64(v)
	}
	return t, nil
}

// Bytes returns the PIM memory footprint of the table.
func (t *FixedLLUT) Bytes() int { return 4 * len(t.Entries) }

// DevFixedLLUT is a fixed-point L-LUT resident in a PIM core's memory.
type DevFixedLLUT struct {
	t   *FixedLLUT
	arr devI32
}

// Load writes the table into the chosen memory of the PIM core.
func (t *FixedLLUT) Load(dpu *pimsim.DPU, place pimsim.Placement) (*DevFixedLLUT, error) {
	raw := make([]int32, len(t.Entries))
	for i, e := range t.Entries {
		raw[i] = int32(e)
	}
	arr, err := loadI32Array(dpu, place, raw)
	if err != nil {
		return nil, err
	}
	return &DevFixedLLUT{t: t, arr: arr}, nil
}

// Table returns the host-side table.
func (d *DevFixedLLUT) Table() *FixedLLUT { return d.t }

// Eval approximates f(x) for a fixed-point input: one integer
// subtract, one arithmetic shift, and the access(es); interpolation
// extracts Δ with a mask+shift and spends one fixed-point multiply.
func (d *DevFixedLLUT) Eval(ctx *pimsim.Ctx, x fixed.Q3_28) fixed.Q3_28 {
	shift := uint(fixed.FracBits - d.t.N)
	diff := ctx.QSub(x, d.t.P)
	idx := int32(ctx.QShr(diff, shift))
	if !d.t.Interp {
		idx = clampIdx(ctx, idx, len(d.t.Entries))
		return fixed.Q3_28(d.arr.get(ctx, idx))
	}
	// Δ in Q3.28: the bits of diff below the index, rescaled to [0, 1).
	rem := ctx.IAnd(int32(diff), int32(1)<<shift-1)
	delta := fixed.Q3_28(ctx.IShl(rem, uint(d.t.N)))
	idx = clampIdx(ctx, idx, len(d.t.Entries)-1)
	l0 := fixed.Q3_28(d.arr.get(ctx, idx))
	l1 := fixed.Q3_28(d.arr.get(ctx, idx+1))
	dl := ctx.QSub(l1, l0)
	return ctx.QAdd(l0, ctx.QMul(dl, delta))
}

// EvalFloat wraps Eval with float32↔Q3.28 conversions, the form the
// microbenchmarks measure when operand arrays are float (Fig. 3(a),
// steps 2 and 6).
func (d *DevFixedLLUT) EvalFloat(ctx *pimsim.Ctx, x float32) float32 {
	return ctx.QToF(d.Eval(ctx, ctx.QFromF(x)))
}

// EvalHost is the unmetered host-side reference of Eval.
func (t *FixedLLUT) EvalHost(x fixed.Q3_28) fixed.Q3_28 {
	shift := uint(fixed.FracBits - t.N)
	diff := x.Sub(t.P)
	idx := int32(diff.Shr(shift))
	if !t.Interp {
		return t.Entries[clampHost(idx, len(t.Entries))]
	}
	rem := int32(diff) & (int32(1)<<shift - 1)
	delta := fixed.Q3_28(rem << uint(t.N))
	idx = clampHost(idx, len(t.Entries)-1)
	l0 := t.Entries[idx]
	l1 := t.Entries[idx+1]
	return l0.Add(l1.Sub(l0).Mul(delta))
}
