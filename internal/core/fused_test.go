package core

import (
	"math"
	"testing"

	"transpimlib/internal/pimsim"
)

// The fused-path contract: ChargeElem/ChargeReduce bulk signatures are
// bit-identical accounting to the interpreted per-element Eval calls,
// and the Apply host mirrors are bit-exact with the device arithmetic.
// The engine's differential suite leans on both.

func TestFusedChargesMatchInterpreted(t *testing.T) {
	const n = 9
	model := pimsim.Default()
	f := NewFusedOperator(model)
	rec := pimsim.NewSigRecorder(model)

	for op := ElemOp(0); op < NumElemOps; op++ {
		rec.TakeSig()
		for i := 0; i < n; i++ {
			// Mixed orderings so a data-dependent charge would show up.
			f.ElemEval(rec, op, float32(i)-4, 3-float32(i))
		}
		interp := rec.TakeSig()
		f.ChargeElem(rec, op, n)
		bulk := rec.TakeSig()
		if interp != bulk {
			t.Errorf("%v: interpreted sig %+v != bulk charge %+v", op, interp, bulk)
		}
	}
	for op := ReduceOp(0); op < NumReduceOps; op++ {
		rec.TakeSig()
		acc := ReduceInit(op)
		for i := 0; i < n; i++ {
			acc = f.ReduceEval(rec, op, acc, float32(i%3)-1)
		}
		interp := rec.TakeSig()
		f.ChargeReduce(rec, op, n)
		bulk := rec.TakeSig()
		if interp != bulk {
			t.Errorf("reduce-%v: interpreted sig %+v != bulk charge %+v", op, interp, bulk)
		}
	}
}

func TestElemApplyMirrorsElemEval(t *testing.T) {
	model := pimsim.Default()
	f := NewFusedOperator(model)
	rec := pimsim.NewSigRecorder(model)
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	vals := []float32{0, float32(math.Copysign(0, -1)), 1, -1, 2.5, -3.25, 1e-30, 1e30, inf, -inf, nan}
	for op := ElemOp(0); op < NumElemOps; op++ {
		for _, a := range vals {
			for _, b := range vals {
				dev := f.ElemEval(rec, op, a, b)
				host := ElemApply(op, a, b)
				if math.Float32bits(dev) != math.Float32bits(host) {
					t.Fatalf("%v(%g, %g): device %x, host mirror %x",
						op, a, b, math.Float32bits(dev), math.Float32bits(host))
				}
			}
		}
	}
}

func TestReduceApplyMirrorsReduceEval(t *testing.T) {
	model := pimsim.Default()
	f := NewFusedOperator(model)
	rec := pimsim.NewSigRecorder(model)
	if ReduceInit(ReduceSum) != 0 {
		t.Errorf("ReduceInit(sum) = %g, want 0", ReduceInit(ReduceSum))
	}
	if !math.IsInf(float64(ReduceInit(ReduceMax)), -1) {
		t.Errorf("ReduceInit(max) = %g, want -Inf", ReduceInit(ReduceMax))
	}
	xs := []float32{3, -1.5, 3, 0, float32(math.Copysign(0, -1)), 7.25, -8}
	for op := ReduceOp(0); op < NumReduceOps; op++ {
		dev, host := ReduceInit(op), ReduceInit(op)
		for _, x := range xs {
			dev = f.ReduceEval(rec, op, dev, x)
			host = ReduceApply(op, host, x)
			if math.Float32bits(dev) != math.Float32bits(host) {
				t.Fatalf("reduce-%v at x=%g: device %x, host mirror %x",
					op, x, math.Float32bits(dev), math.Float32bits(host))
			}
		}
	}
}

// TestRecordStreamSigMatchesEngineRecipe pins the (1 load, 1 store)
// stream signature to the engine's per-op recording — the property
// that makes a single-Func fused program charge exactly the cycles of
// the per-op batch path.
func TestRecordStreamSigMatchesEngineRecipe(t *testing.T) {
	model := pimsim.Default()
	rec := pimsim.NewSigRecorder(model)
	rec.TakeSig()
	v := rec.LoadStreamedF32(rec.DPU().MRAM, 0)
	rec.StoreStreamedF32(rec.DPU().MRAM, 0, v)
	rec.Charge(2)
	engineSig := rec.TakeSig()
	if got := RecordStreamSig(model, 1, 1); got != engineSig {
		t.Errorf("RecordStreamSig(1,1) = %+v, engine recipe records %+v", got, engineSig)
	}
	// More operands stream more: monotone in loads and stores.
	one := RecordStreamSig(model, 1, 1)
	if two := RecordStreamSig(model, 2, 1); two.Issue <= one.Issue {
		t.Errorf("two-load stream sig (%d) must out-cost one-load (%d)", two.Issue, one.Issue)
	}
	if zero := RecordStreamSig(model, 1, 0); zero.Issue >= one.Issue {
		t.Errorf("store-free stream sig (%d) must undercut one-store (%d)", zero.Issue, one.Issue)
	}
}

func TestScalarLoadStoreCharges(t *testing.T) {
	model := pimsim.Default()
	f := NewFusedOperator(model)
	rec := pimsim.NewSigRecorder(model)

	rec.TakeSig()
	_ = rec.LoadStreamedF32(rec.DPU().MRAM, 0)
	load := rec.TakeSig()
	f.ChargeScalarLoad(rec, 1)
	if got := rec.TakeSig(); got != load {
		t.Errorf("ChargeScalarLoad sig %+v, streamed load records %+v", got, load)
	}

	rec.StoreStreamedF32(rec.DPU().MRAM, 0, 0)
	store := rec.TakeSig()
	f.ChargeScalarStore(rec, 1)
	if got := rec.TakeSig(); got != store {
		t.Errorf("ChargeScalarStore sig %+v, streamed store records %+v", got, store)
	}
}
