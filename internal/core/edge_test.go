package core

import (
	"math"
	"strings"
	"testing"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

// Failure injection and edge cases for the operator compiler.

func TestBuildCORDICLUTWRAMExhaustion(t *testing.T) {
	// A 2^16-dense head table cannot fit the scratchpad.
	dpu := newDPU()
	_, err := Build(Sin, Params{Method: CORDICLUT, HeadBits: 16, Iterations: 10}, dpu)
	if err == nil {
		t.Fatal("oversized CORDIC+LUT head must fail in WRAM")
	}
	if !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("error should name the exhaustion: %v", err)
	}
	// The same configuration fits MRAM.
	if _, err := Build(Sin, Params{Method: CORDICLUT, HeadBits: 16, Iterations: 10,
		Placement: pimsim.InMRAM}, newDPU()); err != nil {
		t.Fatalf("MRAM build failed: %v", err)
	}
}

func TestBuildAccumulatesOnOneCore(t *testing.T) {
	// Building several operators onto one core shares its memories; the
	// allocator must account cumulatively until the scratchpad runs out.
	dpu := newDPU()
	built := 0
	for i := 0; i < 32; i++ {
		_, err := Build(Sin, Params{Method: LLUT, SizeLog2: 12}, dpu)
		if err != nil {
			break
		}
		built++
	}
	if built == 0 || built >= 32 {
		t.Fatalf("expected a handful of 12.9-KB tables to fit 64 KB, got %d", built)
	}
	if free := dpu.WRAM.Free(); free > 16<<10 {
		t.Fatalf("scratchpad should be nearly full, %d bytes free", free)
	}
}

func TestCORDICLUTTanUsesDivision(t *testing.T) {
	dpu := newDPU()
	op, err := Build(Tan, Params{Method: CORDICLUT, HeadBits: 8, Iterations: 20}, dpu)
	if err != nil {
		t.Fatal(err)
	}
	dpu.ResetCycles()
	op.Eval(dpu.NewCtx(), 1.0)
	if dpu.Counters().Ops[pimsim.OpFDiv] != 1 {
		t.Fatal("tangent must spend exactly one float division")
	}
}

func TestSinCosConsistency(t *testing.T) {
	// sin²+cos² ≈ 1 for every method that supports the circular family.
	for _, m := range []Method{CORDIC, CORDICLUT, MLUT, LLUT, LLUTFixed, Poly} {
		dpu := newDPU()
		pSin := Params{Method: m, Interp: true, SizeLog2: 12, Iterations: 30}
		sinOp, err := Build(Sin, pSin, dpu)
		if err != nil {
			t.Fatal(err)
		}
		cosOp, err := Build(Cos, pSin, dpu)
		if err != nil {
			t.Fatal(err)
		}
		ctx := dpu.NewCtx()
		for x := 0.05; x < 2*math.Pi; x += 0.31 {
			s := float64(sinOp.Eval(ctx, float32(x)))
			c := float64(cosOp.Eval(ctx, float32(x)))
			if math.Abs(s*s+c*c-1) > 2e-4 {
				t.Errorf("%v: sin²+cos² at %v = %v", m, x, s*s+c*c)
			}
		}
	}
}

func TestExpLogInverse(t *testing.T) {
	// log(exp(x)) ≈ x across the exp domain for LUT methods.
	dpu := newDPU()
	p := Params{Method: LLUT, Interp: true, SizeLog2: 12}
	expOp, err := Build(Exp, p, dpu)
	if err != nil {
		t.Fatal(err)
	}
	logOp, err := Build(Log, p, dpu)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dpu.NewCtx()
	for x := -2.4; x <= 2.4; x += 0.17 {
		back := float64(logOp.Eval(ctx, expOp.Eval(ctx, float32(x))))
		if math.Abs(back-x) > 2e-5 {
			t.Errorf("log(exp(%v)) = %v", x, back)
		}
	}
}

func TestSqrtSquares(t *testing.T) {
	dpu := newDPU()
	op, err := Build(Sqrt, Params{Method: LLUT, Interp: true, SizeLog2: 12}, dpu)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dpu.NewCtx()
	for _, v := range []float64{0.25, 1, 2, 9, 100, 1e4, 1e8} {
		got := float64(op.Eval(ctx, float32(v)))
		if math.Abs(got*got-v)/v > 1e-5 {
			t.Errorf("sqrt(%v)² = %v", v, got*got)
		}
	}
}

func TestCoshGeSinh(t *testing.T) {
	// cosh ≥ |sinh| and cosh² − sinh² ≈ 1.
	dpu := newDPU()
	p := Params{Method: MLUT, Interp: true, SizeLog2: 12}
	sinhOp, err := Build(Sinh, p, dpu)
	if err != nil {
		t.Fatal(err)
	}
	coshOp, err := Build(Cosh, p, dpu)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dpu.NewCtx()
	for x := -1.9; x <= 1.9; x += 0.13 {
		s := float64(sinhOp.Eval(ctx, float32(x)))
		c := float64(coshOp.Eval(ctx, float32(x)))
		if c < math.Abs(s) {
			t.Errorf("cosh(%v)=%v < |sinh|=%v", x, c, math.Abs(s))
		}
		if math.Abs(c*c-s*s-1) > 2e-3 {
			t.Errorf("cosh²−sinh² at %v = %v", x, c*c-s*s)
		}
	}
}

func TestMonotonicityOfSaturatingFunctions(t *testing.T) {
	// tanh, sigmoid and atan through interpolated tables must stay
	// monotonically non-decreasing (interpolation between monotone
	// entries preserves order).
	for _, fn := range []Function{Tanh, Sigmoid, Atan} {
		dpu := newDPU()
		op, err := Build(fn, Params{Method: LLUT, Interp: true, SizeLog2: 10}, dpu)
		if err != nil {
			t.Fatal(err)
		}
		ctx := dpu.NewCtx()
		prev := float32(math.Inf(-1))
		for x := -7.8; x <= 7.8; x += 0.01 {
			v := op.Eval(ctx, float32(x))
			if v < prev {
				t.Errorf("%v not monotone at %v: %v < %v", fn, x, v, prev)
				break
			}
			prev = v
		}
	}
}

func TestSweepSkipsImpossibleConfigs(t *testing.T) {
	// A WRAM-placed sweep drops the sizes that no longer fit; the run
	// reports the ones that do.
	pts := SweepConfig{
		Fn: Sin, Method: LLUT, Placement: pimsim.InWRAM,
		Sizes: []int{8, 10, 20}, // 2^20 entries ≫ 64 KB
	}.Run(stats.UniformInputs(0, 6, 64))
	if len(pts) != 2 {
		t.Fatalf("sweep kept %d points, want 2 (the 2^20 config cannot fit)", len(pts))
	}
}

func TestMeasureOperatorUnsupported(t *testing.T) {
	if _, err := MeasureOperator(GELU, Params{Method: CORDIC}, stats.UniformInputs(0, 1, 8)); err == nil {
		t.Fatal("unsupported pair must surface the build error")
	}
}

func TestWideRangeNegativeAngles(t *testing.T) {
	dpu := newDPU()
	op, err := Build(Cos, Params{Method: MLUT, Interp: true, SizeLog2: 12, WideRange: true}, dpu)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dpu.NewCtx()
	for _, x := range []float64{-0.5, -3.7, -20, -1000} {
		got := float64(op.Eval(ctx, float32(x)))
		if math.Abs(got-math.Cos(x)) > 2e-3 {
			t.Errorf("wide cos(%v) = %v, want %v", x, got, math.Cos(x))
		}
	}
}

// TestArchitectureProfiles: on an UPMEM-like machine the L-LUT's
// multiply avoidance is decisive; on an HBM-PIM-like machine with
// native floating point the gap between the LUT methods collapses and
// the polynomial baseline becomes competitive — the paper's
// future-architectures discussion, quantified.
func TestArchitectureProfiles(t *testing.T) {
	inputs := domainInputs(Sin, 1024)
	measure := func(cost pimsim.CostModel, m Method, interp bool, extra int) float64 {
		p := Params{Method: m, Interp: interp, SizeLog2: 12, Degree: 9}
		pt, err := MeasureOperatorCost(Sin, p, inputs, cost)
		if err != nil {
			t.Fatal(err)
		}
		return pt.CyclesPerElem
	}

	upmem := pimsim.Default()
	hbm := pimsim.HBMPIMLike()

	// UPMEM-like: M-LUTi pays ~2× L-LUTi.
	rUp := measure(upmem, MLUT, true, 0) / measure(upmem, LLUT, true, 0)
	if rUp < 1.7 {
		t.Errorf("UPMEM profile: M-LUTi/L-LUTi = %.2f, want ≳2", rUp)
	}
	// HBM-PIM-like: native multiplies erase most of the gap.
	rHbm := measure(hbm, MLUT, true, 0) / measure(hbm, LLUT, true, 0)
	if rHbm > 1.5 {
		t.Errorf("HBM profile: M-LUTi/L-LUTi = %.2f, want ≲1.5", rHbm)
	}
	if rHbm >= rUp {
		t.Errorf("native FP must narrow the gap: %.2f vs %.2f", rHbm, rUp)
	}

	// The polynomial baseline closes in dramatically when multiplies
	// are native: poly/L-LUTi ratio shrinks by ≥2× between profiles.
	pUp := measure(upmem, Poly, false, 0) / measure(upmem, LLUT, true, 0)
	pHbm := measure(hbm, Poly, false, 0) / measure(hbm, LLUT, true, 0)
	if pHbm > pUp/2 {
		t.Errorf("poly/L-LUTi: UPMEM %.1f → HBM %.1f, want ≥2× reduction", pUp, pHbm)
	}
}

// TestMemoryPressureFavorsCORDIC reproduces §4.2.3's scenario: an
// application whose operand arrays consume nearly the whole DRAM bank
// leaves no room for a high-accuracy LUT, while CORDIC's few hundred
// bytes still fit (Key Takeaway 3's second clause).
func TestMemoryPressureFavorsCORDIC(t *testing.T) {
	dpu := newDPU()
	// Operands take all but ~100 KB of the 64-MB bank.
	if _, err := dpu.MRAM.Alloc(dpu.MRAM.Size() - 100<<10); err != nil {
		t.Fatal(err)
	}
	// A 2^18-entry table (~1 MB) no longer fits anywhere.
	if _, err := Build(Sin, Params{Method: LLUT, SizeLog2: 18, Placement: pimsim.InMRAM}, dpu); err == nil {
		t.Fatal("1-MB LUT must not fit the crowded bank")
	}
	// High-accuracy CORDIC still does — in the remaining MRAM or WRAM.
	op, err := Build(Sin, Params{Method: CORDIC, Iterations: 36, Placement: pimsim.InMRAM}, dpu)
	if err != nil {
		t.Fatalf("CORDIC must fit the crowded bank: %v", err)
	}
	ctx := dpu.NewCtx()
	if got := op.Eval(ctx, 1.0); math.Abs(float64(got)-math.Sin(1)) > 1e-6 {
		t.Fatalf("CORDIC under memory pressure: sin(1) = %v", got)
	}
}
