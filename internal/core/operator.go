package core

import (
	"fmt"
	"math"
	"time"

	"transpimlib/internal/cordic"
	"transpimlib/internal/fixed"
	"transpimlib/internal/fpbits"
	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/poly"
	"transpimlib/internal/rangered"
)

// Operator is one function compiled for one method configuration and
// loaded onto one PIM core: the host-side setup has run (tables built
// and transferred) and Eval executes the device-side computation with
// full cycle accounting.
type Operator struct {
	Fn  Function
	Par Params

	eval func(*pimsim.Ctx, float32) float32

	// mirror and sigs drive the batch-evaluation fast path (batch.go):
	// an unmetered bit-exact host twin of eval plus one pre-recorded
	// cost signature per control-flow class. mirror is nil when only
	// the interpreted path is available.
	mirror *opMirror
	sigs   [maxCostClasses]pimsim.CostSig

	tableBytes      int
	buildSeconds    float64
	transferSeconds float64
}

// Eval computes fn(x) on the PIM core through ctx. The supported input
// domain is Fn.Domain(): trigonometric inputs are assumed reduced to
// [0, 2π] (the microbenchmark convention, §4.1.1); exp/log/sqrt accept
// their full float range via the built-in §2.2.3 extensions.
func (o *Operator) Eval(ctx *pimsim.Ctx, x float32) float32 { return o.eval(ctx, x) }

// TableBytes returns the PIM memory consumed by tables and constants
// (Fig. 7).
func (o *Operator) TableBytes() int { return o.tableBytes }

// BuildSeconds returns the measured host wall time spent generating
// tables (the host-CPU part of Fig. 6).
func (o *Operator) BuildSeconds() float64 { return o.buildSeconds }

// TransferSeconds returns the modeled Host→PIM transfer time for the
// tables (the transfer part of Fig. 6's setup time).
func (o *Operator) TransferSeconds() float64 { return o.transferSeconds }

// SetupSeconds returns the total setup time: host-side generation plus
// Host→PIM transfer (§4.1.1).
func (o *Operator) SetupSeconds() float64 { return o.buildSeconds + o.transferSeconds }

// Build compiles fn with params onto the PIM core: it generates any
// tables on the host (measuring wall time), loads them into the
// selected memory, and wires the device-side evaluator.
func Build(fn Function, p Params, dpu *pimsim.DPU) (*Operator, error) {
	p = p.withDefaults()
	if !p.Method.Supports(fn) {
		return nil, fmt.Errorf("core: %v does not support %v (see Table 2)", p.Method, fn)
	}
	o := &Operator{Fn: fn, Par: p}
	start := time.Now()
	var err error
	switch p.Method {
	case CORDIC:
		err = o.buildCORDIC(dpu)
	case CORDICLUT:
		err = o.buildCORDICLUT(dpu)
	case MLUT, LLUT:
		err = o.buildFloatLUT(dpu)
	case LLUTFixed:
		err = o.buildFixedLUT(dpu)
	case DLUT, DLLUT:
		err = o.buildDLUT(dpu)
	case Poly:
		err = o.buildPoly(dpu)
	default:
		err = fmt.Errorf("core: unknown method %v", p.Method)
	}
	if err != nil {
		return nil, err
	}
	if p.WideRange {
		switch fn {
		case Sin, Cos, Tan:
			inner := o.eval
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				return inner(ctx, rangered.To2Pi(ctx, x))
			}
			// To2Pi has a data-dependent guard-correction branch on top of
			// the quadrant classes; keep the interpreted path.
			o.mirror = nil
		}
	}
	// Domain guards: logarithm and square root of non-positive inputs
	// return NaN (one compare and branch on the device), matching the
	// host math library the accuracy metrics compare against.
	switch fn {
	case Log:
		inner := o.eval
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			ctx.Branch()
			if ctx.FCmp(x, 0) <= 0 {
				if x == 0 {
					return float32(math.Inf(-1))
				}
				return float32(math.NaN())
			}
			return inner(ctx, x)
		}
		o.mirror = wrapLogGuard(o.mirror)
	case Sqrt:
		inner := o.eval
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			ctx.Branch()
			if ctx.FCmp(x, 0) < 0 {
				return float32(math.NaN())
			}
			if x == 0 {
				return 0
			}
			return inner(ctx, x)
		}
		o.mirror = wrapSqrtGuard(o.mirror)
	}
	o.recordSigs(dpu.Model())
	o.buildSeconds = time.Since(start).Seconds()
	// Table transfer to a single PIM core's DRAM bank proceeds at the
	// serial (single-bank) bandwidth.
	o.transferSeconds = float64(o.tableBytes) / pimsim.DefaultSerialBandwidth
	return o, nil
}

// ---------- CORDIC ----------

var halfPi64 = cordic.FromFloat(math.Pi / 2)

// tanQuadrantHost is the quadrant fix-up of the CORDIC Tan mirrors:
// both trig fix-ups then the quotient, matching the scalar path.
func tanQuadrantHost(s, c float32, q rangered.Quadrant) float32 {
	return rangered.ApplySinQuadrantHost(s, c, q) / rangered.ApplyCosQuadrantHost(s, c, q)
}

// foldQuadrant64 reduces a Q23.40 angle in [0, 2π) to [0, π/2] plus
// its quadrant using 64-bit compare/subtract steps.
func foldQuadrant64(ctx *pimsim.Ctx, theta int64) (int64, rangered.Quadrant) {
	var q rangered.Quadrant
	for q = 0; q < 3; q++ {
		ctx.Branch()
		if ctx.I64Cmp(theta, halfPi64) < 0 {
			break
		}
		theta = ctx.I64Sub(theta, halfPi64)
	}
	return theta, q
}

func (o *Operator) buildCORDIC(dpu *pimsim.DPU) error {
	switch o.Fn {
	case Sin, Cos, Tan:
		tb := cordic.NewTables(cordic.Circular, o.Par.Iterations)
		dev, err := tb.Load(dpu, o.Par.Placement)
		if err != nil {
			return err
		}
		o.tableBytes = tb.TableBytes()
		sincos := func(ctx *pimsim.Ctx, x float32) (float32, float32) {
			xf := ctx.F32ToFix64(x, cordic.FracBits)
			theta, q := foldQuadrant64(ctx, xf)
			s64, c64 := dev.SinCos(ctx, theta)
			s := ctx.Fix64ToF32(s64, cordic.FracBits)
			c := ctx.Fix64ToF32(c64, cordic.FracBits)
			return rangered.ApplySinQuadrant(ctx, s, c, q), rangered.ApplyCosQuadrant(ctx, s, c, q)
		}
		sincosM := func(x float32) (float32, float32, rangered.Quadrant) {
			theta, q := foldQuadrant64Host(fix64FromF32(x))
			s64, c64 := tb.SinCosHost(theta)
			s := fix64ToF32(s64)
			c := fix64ToF32(c64)
			return rangered.ApplySinQuadrantHost(s, c, q), rangered.ApplyCosQuadrantHost(s, c, q), q
		}
		switch o.Fn {
		case Sin:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 { s, _ := sincos(ctx, x); return s }
			o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
				s, _, q := sincosM(x)
				return s, int(q)
			}}
			o.mirror.kernel = sincosKernel(tb.SinCosHostMany, rangered.ApplySinQuadrantHost)
		case Cos:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 { _, c := sincos(ctx, x); return c }
			o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
				_, c, q := sincosM(x)
				return c, int(q)
			}}
			o.mirror.kernel = sincosKernel(tb.SinCosHostMany, rangered.ApplyCosQuadrantHost)
		default: // Tan: sine, cosine and one float division (§4.2.4)
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				s, c := sincos(ctx, x)
				return ctx.FDiv(s, c)
			}
			o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
				s, c, q := sincosM(x)
				return s / c, int(q)
			}}
			o.mirror.kernel = sincosKernel(tb.SinCosHostMany, tanQuadrantHost)
		}
		return nil

	case Atan:
		// Circular vectoring of (1, x): the whole arctangent image fits
		// inside the mode's convergence range, so no extension is needed.
		tb := cordic.NewTables(cordic.Circular, o.Par.Iterations)
		dev, err := tb.Load(dpu, o.Par.Placement)
		if err != nil {
			return err
		}
		o.tableBytes = tb.TableBytes()
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			z := dev.Atan(ctx, ctx.F32ToFix64(x, cordic.FracBits))
			return ctx.Fix64ToF32(z, cordic.FracBits)
		}
		o.mirror = mirror1(func(x float32) float32 {
			return fix64ToF32(tb.AtanHost(fix64FromF32(x)))
		}, 0.7)
		o.mirror.kernel = plainKernel(func(xs, ys []float32) {
			for i, x := range xs {
				ys[i] = fix64ToF32(tb.AtanHost(fix64FromF32(x)))
			}
		})
		return nil

	case Sinh, Cosh, Tanh, Exp, Log, Sqrt, Sigmoid:
		tb := cordic.NewTables(cordic.Hyperbolic, o.Par.Iterations)
		dev, err := tb.Load(dpu, o.Par.Placement)
		if err != nil {
			return err
		}
		o.tableBytes = tb.TableBytes()
		expCore := func(ctx *pimsim.Ctx, x float32) float32 {
			r, k := rangered.SplitExp(ctx, x)
			er := ctx.Fix64ToF32(dev.Exp(ctx, ctx.F32ToFix64(r, cordic.FracBits)), cordic.FracBits)
			return rangered.JoinExp(ctx, er, k)
		}
		expCoreM := func(x float32) float32 {
			r, k := rangered.SplitExpHost(x)
			er := fix64ToF32(tb.ExpHost(fix64FromF32(r)))
			return rangered.JoinExpHost(er, k)
		}
		switch o.Fn {
		case Exp:
			o.eval = expCore
			o.mirror = mirror1(expCoreM, 0.7)
		case Sinh:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				ex := expCore(ctx, x)
				emx := ctx.FDiv(1, ex)
				return ctx.FMul(0.5, ctx.FSub(ex, emx))
			}
			o.mirror = mirror1(func(x float32) float32 {
				ex := expCoreM(x)
				return 0.5 * (ex - 1/ex)
			}, 0.5)
		case Cosh:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				ex := expCore(ctx, x)
				emx := ctx.FDiv(1, ex)
				return ctx.FMul(0.5, ctx.FAdd(ex, emx))
			}
			o.mirror = mirror1(func(x float32) float32 {
				ex := expCoreM(x)
				return 0.5 * (ex + 1/ex)
			}, 0.5)
		case Tanh:
			// tanh x = 1 − 2/(e^{2x}+1), valid over the whole line.
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				e2 := expCore(ctx, ctx.FAdd(x, x))
				return ctx.FSub(1, ctx.FDiv(2, ctx.FAdd(e2, 1)))
			}
			o.mirror = mirror1(func(x float32) float32 {
				e2 := expCoreM(x + x)
				return 1 - 2/(e2+1)
			}, 0.5)
		case Sigmoid:
			// S(x) = 1/(1+e^{−x}).
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				e := expCore(ctx, ctx.FNeg(x))
				return ctx.FDiv(1, ctx.FAdd(1, e))
			}
			o.mirror = mirror1(func(x float32) float32 {
				e := expCoreM(-x)
				return 1 / (1 + e)
			}, 0.5)
		case Log:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				m, e := rangered.SplitLog(ctx, x)
				lm := ctx.Fix64ToF32(dev.Ln(ctx, ctx.F32ToFix64(m, cordic.FracBits)), cordic.FracBits)
				return rangered.JoinLog(ctx, lm, e)
			}
			o.mirror = mirror1(func(x float32) float32 {
				m, e := rangered.SplitLogHost(x)
				lm := fix64ToF32(tb.LnHost(fix64FromF32(m)))
				return rangered.JoinLogHost(lm, e)
			}, 0.7)
		default: // Sqrt
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				m, h := rangered.SplitSqrt(ctx, x)
				sm := ctx.Fix64ToF32(dev.Sqrt(ctx, ctx.F32ToFix64(m, cordic.FracBits)), cordic.FracBits)
				return rangered.JoinSqrt(ctx, sm, h)
			}
			o.mirror = sqrtParityMirror(func(m float32) float32 {
				return fix64ToF32(tb.SqrtHost(fix64FromF32(m)))
			}, nil)
		}
		return nil
	}
	return fmt.Errorf("core: cordic cannot compute %v", o.Fn)
}

func (o *Operator) buildCORDICLUT(dpu *pimsim.DPU) error {
	la, err := cordic.NewLUTAssist(dpu, o.Par.Placement, o.Par.HeadBits, o.Par.Iterations)
	if err != nil {
		return err
	}
	o.tableBytes = la.TableBytes()
	sincos := func(ctx *pimsim.Ctx, x float32) (float32, float32) {
		xf := ctx.F32ToFix64(x, cordic.FracBits)
		theta, q := foldQuadrant64(ctx, xf)
		s64, c64 := la.SinCos(ctx, theta)
		s := ctx.Fix64ToF32(s64, cordic.FracBits)
		c := ctx.Fix64ToF32(c64, cordic.FracBits)
		return rangered.ApplySinQuadrant(ctx, s, c, q), rangered.ApplyCosQuadrant(ctx, s, c, q)
	}
	sincosM := func(x float32) (float32, float32, rangered.Quadrant) {
		theta, q := foldQuadrant64Host(fix64FromF32(x))
		s64, c64 := la.SinCosHost(theta)
		s := fix64ToF32(s64)
		c := fix64ToF32(c64)
		return rangered.ApplySinQuadrantHost(s, c, q), rangered.ApplyCosQuadrantHost(s, c, q), q
	}
	switch o.Fn {
	case Sin:
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 { s, _ := sincos(ctx, x); return s }
		o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
			s, _, q := sincosM(x)
			return s, int(q)
		}}
		o.mirror.kernel = sincosKernel(la.SinCosHostMany, rangered.ApplySinQuadrantHost)
	case Cos:
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 { _, c := sincos(ctx, x); return c }
		o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
			_, c, q := sincosM(x)
			return c, int(q)
		}}
		o.mirror.kernel = sincosKernel(la.SinCosHostMany, rangered.ApplyCosQuadrantHost)
	case Tan:
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			s, c := sincos(ctx, x)
			return ctx.FDiv(s, c)
		}
		o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
			s, c, q := sincosM(x)
			return s / c, int(q)
		}}
		o.mirror.kernel = sincosKernel(la.SinCosHostMany, tanQuadrantHost)
	default:
		return fmt.Errorf("core: cordic+lut cannot compute %v", o.Fn)
	}
	return nil
}

// ---------- float LUTs (M-LUT, L-LUT) ----------

// floatLUTFor builds one table of ref over [lo, hi] for the configured
// method and returns its device evaluator, its unmetered bit-exact
// mirror (scalar and fused-slice forms), and byte size.
func (o *Operator) floatLUTFor(dpu *pimsim.DPU, ref func(float64) float64, lo, hi float64) (func(*pimsim.Ctx, float32) float32, func(float32) float32, func(xs, ys []float32), int, error) {
	if o.Par.Method == MLUT {
		entries := 1 << o.Par.SizeLog2
		t, err := lut.BuildMLUT(ref, lo, hi, entries, o.Par.Interp)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		dev, err := t.Load(dpu, o.Par.Placement)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		return dev.Eval, dev.Mirror, dev.MirrorMany, t.Bytes(), nil
	}
	n := densityExp(lo, hi, o.Par.SizeLog2)
	t, err := lut.BuildLLUT(ref, lo, hi, n, o.Par.Interp)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	dev, err := t.Load(dpu, o.Par.Placement)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return dev.Eval, dev.Mirror, dev.MirrorMany, t.Bytes(), nil
}

// densityExp picks the power-of-two density exponent so that about
// 2^sizeLog2 entries cover [lo, hi].
func densityExp(lo, hi float64, sizeLog2 int) int {
	return sizeLog2 - int(math.Ceil(math.Log2(hi-lo)))
}

func (o *Operator) buildFloatLUT(dpu *pimsim.DPU) error {
	lo, hi := o.Fn.CoreRange()
	switch o.Fn {
	case Tan:
		sinEval, sinM, sinMany, sinBytes, err := o.floatLUTFor(dpu, math.Sin, lo, hi)
		if err != nil {
			return err
		}
		cosEval, cosM, cosMany, cosBytes, err := o.floatLUTFor(dpu, math.Cos, lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = sinBytes + cosBytes
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			return ctx.FDiv(sinEval(ctx, x), cosEval(ctx, x))
		}
		o.mirror = mirror1(func(x float32) float32 {
			return sinM(x) / cosM(x)
		}, float32((lo+hi)/2))
		o.mirror.kernel = divKernel(sinMany, cosMany)
		return nil
	case Exp:
		eval, evalM, evalMany, bytes, err := o.floatLUTFor(dpu, math.Exp, lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			r, k := rangered.SplitExp(ctx, x)
			return rangered.JoinExp(ctx, eval(ctx, r), k)
		}
		o.mirror = mirror1(func(x float32) float32 {
			r, k := rangered.SplitExpHost(x)
			return rangered.JoinExpHost(evalM(r), k)
		}, 0.7)
		o.mirror.kernel = expSplitKernel(evalMany)
		return nil
	case Log:
		eval, evalM, evalMany, bytes, err := o.floatLUTFor(dpu, math.Log, lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			m, e := rangered.SplitLog(ctx, x)
			return rangered.JoinLog(ctx, eval(ctx, m), e)
		}
		o.mirror = mirror1(func(x float32) float32 {
			m, e := rangered.SplitLogHost(x)
			return rangered.JoinLogHost(evalM(m), e)
		}, 0.7)
		o.mirror.kernel = logSplitKernel(evalMany)
		return nil
	case Sqrt:
		eval, evalM, evalMany, bytes, err := o.floatLUTFor(dpu, math.Sqrt, lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			m, h := rangered.SplitSqrt(ctx, x)
			return rangered.JoinSqrt(ctx, eval(ctx, m), h)
		}
		o.mirror = sqrtParityMirror(evalM, evalMany)
		return nil
	default: // direct-domain functions
		eval, evalM, evalMany, bytes, err := o.floatLUTFor(dpu, o.Fn.Ref(), lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		o.eval = eval
		o.mirror = mirror1(evalM, float32((lo+hi)/2))
		o.mirror.kernel = plainKernel(evalMany)
		return nil
	}
}

// ---------- fixed-point L-LUT ----------

func (o *Operator) fixedLUTFor(dpu *pimsim.DPU, ref func(float64) float64, lo, hi float64) (*lut.DevFixedLLUT, int, error) {
	n := densityExp(lo, hi, o.Par.SizeLog2)
	if n < 0 {
		n = 0
	}
	if n > 26 {
		n = 26
	}
	t, err := lut.BuildFixedLLUT(ref, lo, hi, n, o.Par.Interp)
	if err != nil {
		return nil, 0, err
	}
	dev, err := t.Load(dpu, o.Par.Placement)
	if err != nil {
		return nil, 0, err
	}
	return dev, t.Bytes(), nil
}

func (o *Operator) buildFixedLUT(dpu *pimsim.DPU) error {
	lo, hi := o.Fn.CoreRange()
	switch o.Fn {
	case Tanh, GELU, Atan, Sigmoid:
		// The ±7.9 domain spans 15.8 > 8, more than a Q3.28 difference
		// can express, so the fixed table covers [0, hi] only and the
		// negative side folds through symmetry: f(−x) = −f(x) for the
		// odd functions (tanh, atan), GELU(−x) = GELU(x) − x, and
		// σ(−x) = 1 − σ(x) — one integer fix-up each.
		dev, bytes, err := o.fixedLUTFor(dpu, o.Fn.Ref(), 0, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		fn := o.Fn
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			xq := ctx.QFromF(x)
			neg := ctx.ICmp(int32(xq), 0) < 0
			ctx.Branch()
			ax := xq
			if neg {
				ax = ctx.QSub(0, xq)
			}
			v := dev.Eval(ctx, ax)
			if neg {
				switch fn {
				case GELU:
					v = ctx.QSub(v, ax)
				case Sigmoid:
					v = ctx.QSub(fixed.One, v)
				default: // odd: Tanh, Atan
					v = ctx.QSub(0, v)
				}
			}
			return ctx.QToF(v)
		}
		o.mirror = &opMirror{n: 2, reps: [maxCostClasses]float32{1, -1}, eval: func(x float32) (float32, int) {
			xq := fixed.FromFloat32(x)
			neg := int32(xq) < 0
			ax := xq
			if neg {
				ax = fixed.Q3_28(0).Sub(xq)
			}
			v := dev.Mirror(ax)
			if neg {
				switch fn {
				case GELU:
					v = v.Sub(ax)
				case Sigmoid:
					v = fixed.One.Sub(v)
				default:
					v = fixed.Q3_28(0).Sub(v)
				}
				return v.Float32(), 1
			}
			return v.Float32(), 0
		}}
		// Fused form: fold the sign into the QA lane tagging negatives,
		// one fixed-point table pass, then the per-function fix-up
		// scattered by tag.
		o.mirror.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
			n := len(xs)
			sc.Grow(n)
			sc.GrowQ(n)
			qa, qb := sc.QA[:n], sc.QB[:n]
			cls := sc.Cls[:n]
			var negs uint64
			for i, x := range xs {
				xq := fixed.FromFloat32(x)
				if int32(xq) < 0 {
					cls[i] = 1
					negs++
					xq = fixed.Q3_28(0).Sub(xq)
				} else {
					cls[i] = 0
				}
				qa[i] = xq
			}
			dev.MirrorMany(qa, qb)
			switch fn {
			case GELU:
				for i := range ys {
					v := qb[i]
					if cls[i] != 0 {
						v = v.Sub(qa[i])
					}
					ys[i] = v.Float32()
				}
			case Sigmoid:
				for i := range ys {
					v := qb[i]
					if cls[i] != 0 {
						v = fixed.One.Sub(v)
					}
					ys[i] = v.Float32()
				}
			default: // odd: Tanh, Atan
				for i := range ys {
					v := qb[i]
					if cls[i] != 0 {
						v = fixed.Q3_28(0).Sub(v)
					}
					ys[i] = v.Float32()
				}
			}
			counts[0] += uint64(n) - negs
			counts[1] += negs
		}
		return nil
	case Tan:
		sinDev, sinBytes, err := o.fixedLUTFor(dpu, math.Sin, lo, hi)
		if err != nil {
			return err
		}
		cosDev, cosBytes, err := o.fixedLUTFor(dpu, math.Cos, lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = sinBytes + cosBytes
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			xq := ctx.QFromF(x)
			s := ctx.QToF(sinDev.Eval(ctx, xq))
			c := ctx.QToF(cosDev.Eval(ctx, xq))
			return ctx.FDiv(s, c)
		}
		o.mirror = mirror1(func(x float32) float32 {
			xq := fixed.FromFloat32(x)
			s := sinDev.Mirror(xq).Float32()
			c := cosDev.Mirror(xq).Float32()
			return s / c
		}, float32((lo+hi)/2))
		o.mirror.kernel = divKernel(sinDev.MirrorFloatMany, cosDev.MirrorFloatMany)
		return nil
	case Exp:
		dev, bytes, err := o.fixedLUTFor(dpu, math.Exp, lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			r, k := rangered.SplitExp(ctx, x)
			return rangered.JoinExp(ctx, dev.EvalFloat(ctx, r), k)
		}
		o.mirror = mirror1(func(x float32) float32 {
			r, k := rangered.SplitExpHost(x)
			return rangered.JoinExpHost(dev.MirrorFloat(r), k)
		}, 0.7)
		o.mirror.kernel = expSplitKernel(dev.MirrorFloatMany)
		return nil
	case Log:
		dev, bytes, err := o.fixedLUTFor(dpu, math.Log, lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			m, e := rangered.SplitLog(ctx, x)
			return rangered.JoinLog(ctx, dev.EvalFloat(ctx, m), e)
		}
		o.mirror = mirror1(func(x float32) float32 {
			m, e := rangered.SplitLogHost(x)
			return rangered.JoinLogHost(dev.MirrorFloat(m), e)
		}, 0.7)
		o.mirror.kernel = logSplitKernel(dev.MirrorFloatMany)
		return nil
	case Sqrt:
		dev, bytes, err := o.fixedLUTFor(dpu, math.Sqrt, lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			m, h := rangered.SplitSqrt(ctx, x)
			return rangered.JoinSqrt(ctx, dev.EvalFloat(ctx, m), h)
		}
		o.mirror = sqrtParityMirror(dev.MirrorFloat, dev.MirrorFloatMany)
		return nil
	default:
		dev, bytes, err := o.fixedLUTFor(dpu, o.Fn.Ref(), lo, hi)
		if err != nil {
			return err
		}
		o.tableBytes = bytes
		o.eval = dev.EvalFloat
		o.mirror = mirror1(dev.MirrorFloat, float32((lo+hi)/2))
		o.mirror.kernel = plainKernel(dev.MirrorFloatMany)
		return nil
	}
}

// ---------- D-LUT / DL-LUT ----------

func (o *Operator) buildDLUT(dpu *pimsim.DPU) error {
	ref := o.Fn.Ref()
	const maxExp = 3 // domain |x| < 8
	if o.Par.Method == DLUT {
		mant := clampInt(o.Par.SizeLog2-5, 1, 16)
		t, err := lut.BuildDLUT(ref, -14, maxExp, mant, o.Par.Interp)
		if err != nil {
			return err
		}
		dev, err := t.Load(dpu, o.Par.Placement)
		if err != nil {
			return err
		}
		o.tableBytes = t.Bytes()
		o.eval = dev.Eval
		o.mirror = mirror1(dev.Mirror, 1)
		o.mirror.kernel = plainKernel(dev.MirrorMany)
		return nil
	}
	mant := clampInt(o.Par.SizeLog2-4, 1, 16)
	t, err := lut.BuildDLLUT(ref, -4, maxExp, mant, mant+4, o.Par.Interp)
	if err != nil {
		return err
	}
	dev, err := t.Load(dpu, o.Par.Placement)
	if err != nil {
		return err
	}
	o.tableBytes = t.Bytes()
	o.eval = dev.Eval
	// The L-LUT serves |x| below the split point (2⁻⁴ here), the D-LUT
	// the rest — two distinct charge traces.
	o.mirror = &opMirror{n: 2, reps: [maxCostClasses]float32{0.01, 1.5}, eval: func(x float32) (float32, int) {
		v, l := dev.Mirror(x)
		if l {
			return v, 0
		}
		return v, 1
	}}
	o.mirror.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
		l := dev.MirrorMany(xs, ys, sc)
		counts[0] += uint64(l)
		counts[1] += uint64(len(xs) - l)
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ---------- polynomial baseline ----------

func (o *Operator) buildPoly(dpu *pimsim.DPU) error {
	deg := o.Par.Degree
	switch o.Fn {
	case Sin, Cos, Tan:
		sinP, err := poly.FitChebyshev(math.Sin, 0, math.Pi/2, deg)
		if err != nil {
			return err
		}
		cosP, err := poly.FitChebyshev(math.Cos, 0, math.Pi/2, deg)
		if err != nil {
			return err
		}
		o.tableBytes = sinP.Bytes() + cosP.Bytes()
		// Per quadrant only one of the two polynomials is needed:
		// sin(qπ/2+θ) = {sin θ, cos θ, −sin θ, −cos θ}[q].
		sinAt := func(ctx *pimsim.Ctx, x float32) float32 {
			theta, q := rangered.FoldQuadrant(ctx, x)
			var v float32
			ctx.Branch()
			if q&1 == 0 {
				v = sinP.Eval(ctx, theta)
			} else {
				v = cosP.Eval(ctx, theta)
			}
			if q >= 2 {
				v = ctx.FNeg(v)
			}
			return v
		}
		cosAt := func(ctx *pimsim.Ctx, x float32) float32 {
			theta, q := rangered.FoldQuadrant(ctx, x)
			var v float32
			ctx.Branch()
			if q&1 == 0 {
				v = cosP.Eval(ctx, theta)
			} else {
				v = sinP.Eval(ctx, theta)
			}
			if q == 1 || q == 2 {
				v = ctx.FNeg(v)
			}
			return v
		}
		sinAtH := func(x float32) (float32, rangered.Quadrant) {
			theta, q := rangered.FoldQuadrantHost(x)
			var v float32
			if q&1 == 0 {
				v = sinP.EvalHost(theta)
			} else {
				v = cosP.EvalHost(theta)
			}
			if q >= 2 {
				v = -v
			}
			return v, q
		}
		cosAtH := func(x float32) (float32, rangered.Quadrant) {
			theta, q := rangered.FoldQuadrantHost(x)
			var v float32
			if q&1 == 0 {
				v = cosP.EvalHost(theta)
			} else {
				v = sinP.EvalHost(theta)
			}
			if q == 1 || q == 2 {
				v = -v
			}
			return v, q
		}
		// polyQuadKernel fuses the quadrant-folded polynomial pipeline:
		// fold and partition thetas by quadrant parity into the XA
		// (even → evenP) and XB (odd → oddP) lanes, run each
		// polynomial once over its gathered sub-batch, then scatter
		// with the quadrant sign rule.
		polyQuadKernel := func(evenP, oddP *poly.Poly, negQ func(q uint8) bool) batchKernel {
			return func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
				n := len(xs)
				sc.Grow(n)
				cls := sc.Cls[:n]
				xa := sc.XA[:0]
				xb := sc.XB[:0]
				for i, x := range xs {
					theta, q := rangered.FoldQuadrantHost(x)
					cls[i] = uint8(q)
					counts[q]++
					if q&1 == 0 {
						xa = append(xa, theta)
					} else {
						xb = append(xb, theta)
					}
				}
				ya := sc.YA[:len(xa)]
				yb := sc.YB[:len(xb)]
				evenP.EvalHostMany(xa, ya)
				oddP.EvalHostMany(xb, yb)
				j, k := 0, 0
				for i := range ys {
					q := cls[i]
					var v float32
					if q&1 == 0 {
						v = ya[j]
						j++
					} else {
						v = yb[k]
						k++
					}
					if negQ(q) {
						v = -v
					}
					ys[i] = v
				}
			}
		}
		switch o.Fn {
		case Sin:
			o.eval = sinAt
			o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
				v, q := sinAtH(x)
				return v, int(q)
			}}
			o.mirror.kernel = polyQuadKernel(sinP, cosP, func(q uint8) bool { return q >= 2 })
		case Cos:
			o.eval = cosAt
			o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
				v, q := cosAtH(x)
				return v, int(q)
			}}
			o.mirror.kernel = polyQuadKernel(cosP, sinP, func(q uint8) bool { return q == 1 || q == 2 })
		default:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				return ctx.FDiv(sinAt(ctx, x), cosAt(ctx, x))
			}
			o.mirror = &opMirror{n: 4, reps: quadrantReps(), eval: func(x float32) (float32, int) {
				s, q := sinAtH(x)
				c, _ := cosAtH(x)
				return s / c, int(q)
			}}
			// Tan needs both polynomials per element: evaluate each over
			// all folded thetas, then apply both quadrant rules and divide.
			o.mirror.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
				n := len(xs)
				sc.Grow(n)
				cls := sc.Cls[:n]
				ts := sc.XB[:n]
				for i, x := range xs {
					theta, q := rangered.FoldQuadrantHost(x)
					ts[i] = theta
					cls[i] = uint8(q)
					counts[q]++
				}
				sp := sc.XA[:n]
				cp := sc.YA[:n]
				sinP.EvalHostMany(ts, sp)
				cosP.EvalHostMany(ts, cp)
				for i := range ys {
					q := cls[i]
					s, c := sp[i], cp[i]
					if q&1 != 0 {
						s, c = c, s
					}
					if q >= 2 {
						s = -s
					}
					if q == 1 || q == 2 {
						c = -c
					}
					ys[i] = s / c
				}
			}
		}
		return nil

	case Atan:
		// Chebyshev over [−8, 8] converges too slowly (poles at ±i), so
		// the baseline reduces by reciprocal: atan(x) = sign·(π/2 −
		// atan(1/|x|)) for |x| > 1, with one polynomial on [0, 1].
		p, err := poly.FitChebyshev(math.Atan, 0, 1, deg)
		if err != nil {
			return err
		}
		o.tableBytes = p.Bytes()
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			ax := ctx.FAbs(x)
			ctx.Branch()
			var v float32
			if ctx.FCmp(ax, 1) <= 0 {
				v = p.Eval(ctx, ax)
			} else {
				v = ctx.FSub(rangered.HalfPi, p.Eval(ctx, ctx.FDiv(1, ax)))
			}
			ctx.Branch()
			if ctx.FCmp(x, 0) < 0 {
				v = ctx.FNeg(v)
			}
			return v
		}
		// Classes: (|x| ≤ 1 vs reciprocal-reduced) × (sign negation).
		o.mirror = &opMirror{n: 4, reps: [maxCostClasses]float32{0.5, 2, -0.5, -2}, eval: func(x float32) (float32, int) {
			ax := fpbits.FromBits(fpbits.Bits(x) &^ fpbits.SignMask)
			var v float32
			cls := 0
			if !(ax > 1) { // FCmp(ax, 1) <= 0, NaN included
				v = p.EvalHost(ax)
			} else {
				v = rangered.HalfPi - p.EvalHost(1/ax)
				cls = 1
			}
			if x < 0 {
				v = -v
				cls += 2
			}
			return v, cls
		}}
		// Fused form: partition |x| ≤ 1 into the XA lane and the
		// reciprocal-reduced arguments into XB, one polynomial pass per
		// partition, then scatter with the reciprocal and sign fix-ups.
		o.mirror.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
			n := len(xs)
			sc.Grow(n)
			cls := sc.Cls[:n]
			xa := sc.XA[:0]
			xb := sc.XB[:0]
			for i, x := range xs {
				ax := fpbits.FromBits(fpbits.Bits(x) &^ fpbits.SignMask)
				c := 0
				if !(ax > 1) {
					xa = append(xa, ax)
				} else {
					xb = append(xb, 1/ax)
					c = 1
				}
				if x < 0 {
					c += 2
				}
				cls[i] = uint8(c)
				counts[c]++
			}
			ya := sc.YA[:len(xa)]
			yb := sc.YB[:len(xb)]
			p.EvalHostMany(xa, ya)
			p.EvalHostMany(xb, yb)
			j, k := 0, 0
			for i := range ys {
				c := cls[i]
				var v float32
				if c&1 == 0 {
					v = ya[j]
					j++
				} else {
					v = rangered.HalfPi - yb[k]
					k++
				}
				if c&2 != 0 {
					v = -v
				}
				ys[i] = v
			}
		}
		return nil

	case Exp, Sinh, Cosh, Tanh, Sigmoid:
		lo, hi := Exp.CoreRange()
		expP, err := poly.FitChebyshev(math.Exp, lo, hi, deg)
		if err != nil {
			return err
		}
		o.tableBytes = expP.Bytes()
		expCore := func(ctx *pimsim.Ctx, x float32) float32 {
			r, k := rangered.SplitExp(ctx, x)
			return rangered.JoinExp(ctx, expP.Eval(ctx, r), k)
		}
		expCoreM := func(x float32) float32 {
			r, k := rangered.SplitExpHost(x)
			return rangered.JoinExpHost(expP.EvalHost(r), k)
		}
		expKernel := expSplitKernel(expP.EvalHostMany)
		switch o.Fn {
		case Exp:
			o.eval = expCore
			o.mirror = mirror1(expCoreM, 0.5)
			o.mirror.kernel = expKernel
		case Sigmoid:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				e := expCore(ctx, ctx.FNeg(x))
				return ctx.FDiv(1, ctx.FAdd(1, e))
			}
			o.mirror = mirror1(func(x float32) float32 {
				e := expCoreM(-x)
				return 1 / (1 + e)
			}, 0.5)
			o.mirror.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
				n := len(xs)
				sc.Grow(n)
				nx := sc.XA[:n]
				for i, x := range xs {
					nx[i] = -x
				}
				expKernel(nx, ys, sc, counts)
				for i := range ys {
					ys[i] = 1 / (1 + ys[i])
				}
			}
		case Sinh:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				ex := expCore(ctx, x)
				return ctx.FMul(0.5, ctx.FSub(ex, ctx.FDiv(1, ex)))
			}
			o.mirror = mirror1(func(x float32) float32 {
				ex := expCoreM(x)
				return 0.5 * (ex - 1/ex)
			}, 0.5)
			o.mirror.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
				expKernel(xs, ys, sc, counts)
				for i := range ys {
					ex := ys[i]
					ys[i] = 0.5 * (ex - 1/ex)
				}
			}
		case Cosh:
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				ex := expCore(ctx, x)
				return ctx.FMul(0.5, ctx.FAdd(ex, ctx.FDiv(1, ex)))
			}
			o.mirror = mirror1(func(x float32) float32 {
				ex := expCoreM(x)
				return 0.5 * (ex + 1/ex)
			}, 0.5)
			o.mirror.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
				expKernel(xs, ys, sc, counts)
				for i := range ys {
					ex := ys[i]
					ys[i] = 0.5 * (ex + 1/ex)
				}
			}
		default: // Tanh
			o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
				e2 := expCore(ctx, ctx.FAdd(x, x))
				return ctx.FSub(1, ctx.FDiv(2, ctx.FAdd(e2, 1)))
			}
			o.mirror = mirror1(func(x float32) float32 {
				e2 := expCoreM(x + x)
				return 1 - 2/(e2+1)
			}, 0.5)
			o.mirror.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
				n := len(xs)
				sc.Grow(n)
				dx := sc.XA[:n]
				for i, x := range xs {
					dx[i] = x + x
				}
				expKernel(dx, ys, sc, counts)
				for i := range ys {
					ys[i] = 1 - 2/(ys[i]+1)
				}
			}
		}
		return nil

	case Log:
		lo, hi := Log.CoreRange()
		p, err := poly.FitChebyshev(math.Log, lo, hi, deg)
		if err != nil {
			return err
		}
		o.tableBytes = p.Bytes()
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			m, e := rangered.SplitLog(ctx, x)
			return rangered.JoinLog(ctx, p.Eval(ctx, m), e)
		}
		o.mirror = mirror1(func(x float32) float32 {
			m, e := rangered.SplitLogHost(x)
			return rangered.JoinLogHost(p.EvalHost(m), e)
		}, 0.7)
		o.mirror.kernel = logSplitKernel(p.EvalHostMany)
		return nil

	case Sqrt:
		lo, hi := Sqrt.CoreRange()
		p, err := poly.FitChebyshev(math.Sqrt, lo, hi, deg)
		if err != nil {
			return err
		}
		o.tableBytes = p.Bytes()
		o.eval = func(ctx *pimsim.Ctx, x float32) float32 {
			m, h := rangered.SplitSqrt(ctx, x)
			return rangered.JoinSqrt(ctx, p.Eval(ctx, m), h)
		}
		o.mirror = sqrtParityMirror(p.EvalHost, p.EvalHostMany)
		return nil

	case GELU:
		lo, hi := GELU.CoreRange()
		p, err := poly.FitChebyshev(geluRef, lo, hi, clampInt(deg*2, deg, 25))
		if err != nil {
			return err
		}
		o.tableBytes = p.Bytes()
		o.eval = p.Eval
		o.mirror = mirror1(p.EvalHost, float32((lo+hi)/2))
		o.mirror.kernel = plainKernel(p.EvalHostMany)
		return nil
	}
	return fmt.Errorf("core: poly cannot compute %v", o.Fn)
}
