package core

import (
	"fmt"
	"time"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

// Point is one measured configuration of a method: the accuracy it
// reached and what it cost in PIM cycles, host setup time, and PIM
// memory — the three axes of Figures 5, 6 and 7.
type Point struct {
	Fn     Function
	Par    Params
	Errors stats.Errors

	CyclesPerElem float64
	SetupSeconds  float64
	TableBytes    int

	// HostElemsPerSec is the wall-clock throughput of the operator's
	// fused batch path (EvalBatch) on the measuring host — the serving
	// engine's compute ceiling, as opposed to the modeled PIM cycles
	// above. Host-dependent by nature; tracked to watch the fast path's
	// trajectory across revisions, not as a simulator quantity.
	HostElemsPerSec float64

	// Counters holds the kernel's per-instruction-class op and cycle
	// totals over the whole input sweep (setup loads excluded) — the
	// same classes the modeled-cycle profiler attributes to.
	Counters pimsim.Counters
}

// String renders the point as one table row.
func (p Point) String() string {
	return fmt.Sprintf("%-28s rmse=%10.3g cycles/elem=%9.1f setup=%10.3gs mem=%9dB",
		p.Par.Label(), p.Errors.RMSE, p.CyclesPerElem, p.SetupSeconds, p.TableBytes)
}

// MeasureOperator builds fn(params) on a fresh single-core PIM system,
// streams the inputs through it the way the microbenchmarks do
// (operands DMAed from the DRAM bank in chunks, then evaluated
// element-wise), and returns accuracy plus per-element cycle cost.
func MeasureOperator(fn Function, p Params, inputs []float32) (Point, error) {
	return MeasureOperatorCost(fn, p, inputs, pimsim.Default())
}

// MeasureOperatorCost is MeasureOperator on a machine with the given
// cost model — the architecture-exploration entry point (UPMEM-like
// versus HBM-PIM-like versus future FP32 profiles).
func MeasureOperatorCost(fn Function, p Params, inputs []float32, cost pimsim.CostModel) (Point, error) {
	dpu := pimsim.NewDPU(0, cost, pimsim.DefaultTasklets)
	op, err := Build(fn, p, dpu)
	if err != nil {
		return Point{}, err
	}
	dpu.ResetCycles() // setup loads are not kernel cycles
	ctx := dpu.NewCtx()
	ref := fn.Ref()
	var col stats.Collector
	for _, x := range inputs {
		got := op.Eval(ctx, x)
		col.Add(got, ref(float64(x)))
	}
	cyclesPerElem := float64(dpu.Cycles()) / float64(len(inputs))
	// Snapshot the class counters now: measureHostRate below reruns the
	// batch path and would pollute them.
	counters := dpu.Counters()
	return Point{
		Fn:              fn,
		Par:             op.Par,
		Errors:          col.Result(),
		CyclesPerElem:   cyclesPerElem,
		SetupSeconds:    op.SetupSeconds(),
		TableBytes:      op.TableBytes(),
		HostElemsPerSec: measureHostRate(ctx, op, inputs),
		Counters:        counters,
	}, nil
}

// measureHostRate times the operator's fused batch path over the
// inputs: repeated EvalBatch passes until the sample is long enough to
// trust the wall clock. Runs after the cycle measurement is captured,
// so the extra modeled charges it accrues are never observed.
func measureHostRate(ctx *pimsim.Ctx, op *Operator, inputs []float32) float64 {
	if len(inputs) == 0 {
		return 0
	}
	ys := make([]float32, len(inputs))
	const minSample = 2 * time.Millisecond
	reps := 0
	start := time.Now()
	var elapsed time.Duration
	for {
		op.EvalBatch(ctx, inputs, ys)
		reps++
		elapsed = time.Since(start)
		if elapsed >= minSample || reps >= 64 {
			break
		}
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(len(inputs)) * float64(reps) / elapsed.Seconds()
}

// SweepConfig defines one accuracy sweep of one method (one curve in
// Figures 5–7).
type SweepConfig struct {
	Fn        Function
	Method    Method
	Interp    bool
	Placement pimsim.Placement
	// Sizes are the accuracy knobs: CORDIC iteration counts, LUT
	// SizeLog2 values, or polynomial degrees, per the method.
	Sizes []int
	// Cost selects the machine profile (zero value: the UPMEM-like
	// default).
	Cost pimsim.CostModel
}

// DefaultSizes returns the accuracy knob values the paper-style sweep
// uses for the method (tuned to produce RMSE between ~1e-4 and the
// float32 floor).
func DefaultSizes(m Method) []int {
	switch m {
	case CORDIC:
		return []int{8, 12, 16, 20, 24, 28, 32, 36}
	case CORDICLUT:
		return []int{4, 8, 12, 16, 20, 24}
	case Poly:
		return []int{3, 5, 7, 9, 11, 13}
	default: // LUT SizeLog2
		return []int{6, 8, 10, 12, 14, 16, 18}
	}
}

// Run executes the sweep: one MeasureOperator per size. Configurations
// that fail to build (e.g. a LUT that outgrows the scratchpad) are
// skipped — exactly the WRAM accuracy ceiling of §4.2.1 observation 4.
func (sc SweepConfig) Run(inputs []float32) []Point {
	sizes := sc.Sizes
	if len(sizes) == 0 {
		sizes = DefaultSizes(sc.Method)
	}
	var out []Point
	for _, size := range sizes {
		p := Params{Method: sc.Method, Interp: sc.Interp, Placement: sc.Placement}
		switch sc.Method {
		case CORDIC:
			p.Iterations = size
		case CORDICLUT:
			p.Iterations = size
			p.HeadBits = 8
		case Poly:
			p.Degree = size
		default:
			p.SizeLog2 = size
		}
		cost := sc.Cost
		if cost == (pimsim.CostModel{}) {
			cost = pimsim.Default()
		}
		pt, err := MeasureOperatorCost(sc.Fn, p, inputs, cost)
		if err != nil {
			continue
		}
		out = append(out, pt)
	}
	return out
}

// Fig5Curves returns the method configurations plotted in Figure 5 for
// a function: every TransPimLib method, interpolated and not where
// applicable, with WRAM and MRAM placements for the LUT families.
func Fig5Curves(fn Function) []SweepConfig {
	var out []SweepConfig
	add := func(m Method, interp bool, place pimsim.Placement) {
		if !m.Supports(fn) {
			return
		}
		if interp && !m.SupportsInterp() {
			return
		}
		out = append(out, SweepConfig{Fn: fn, Method: m, Interp: interp, Placement: place})
	}
	for _, m := range []Method{CORDIC, CORDICLUT} {
		add(m, false, pimsim.InWRAM)
	}
	for _, m := range []Method{MLUT, LLUT, LLUTFixed, DLUT, DLLUT} {
		for _, interp := range []bool{false, true} {
			add(m, interp, pimsim.InWRAM)
			add(m, interp, pimsim.InMRAM)
		}
	}
	return out
}
