package core

import (
	"fmt"
	"strings"

	"transpimlib/internal/pimsim"
)

// Method identifies a TransPimLib implementation method (§3, Table 2).
// Interpolation is a variation selected in Params.
type Method int

// The implementation methods.
const (
	CORDIC    Method = iota // §3.1: shift-add iterations
	CORDICLUT               // §3.3.2: LUT head + CORDIC tail
	MLUT                    // §3.2.1: multiplication-addressed LUT
	LLUT                    // §3.2.2: ldexp-addressed LUT (float)
	LLUTFixed               // §3.2.2 + Q3.28 fixed point
	DLUT                    // §3.2.3: direct float-bits-addressed LUT
	DLLUT                   // §3.3.1: L-LUT near zero + D-LUT beyond
	Poly                    // §4.1.2 baseline: polynomial approximation
	numMethods
)

// Methods lists every method, for sweeps.
func Methods() []Method {
	out := make([]Method, numMethods)
	for i := range out {
		out[i] = Method(i)
	}
	return out
}

var methodNames = [...]string{
	"cordic", "cordic+lut", "m-lut", "l-lut", "l-lut-fixed", "d-lut", "dl-lut", "poly",
}

// String returns the method's lowercase name.
func (m Method) String() string {
	if m < 0 || m >= numMethods {
		return "method?"
	}
	return methodNames[m]
}

// ParseMethod resolves a name produced by String.
func ParseMethod(s string) (Method, error) {
	for i, n := range methodNames {
		if n == s {
			return Method(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown method %q", s)
}

// UsesLUT reports whether the method stores a lookup table whose size
// grows with accuracy.
func (m Method) UsesLUT() bool {
	switch m {
	case MLUT, LLUT, LLUTFixed, DLUT, DLLUT, CORDICLUT:
		return true
	}
	return false
}

// SupportsInterp reports whether the Interp variation applies.
func (m Method) SupportsInterp() bool {
	switch m {
	case MLUT, LLUT, LLUTFixed, DLUT, DLLUT:
		return true
	}
	return false
}

// Supports reports whether this reproduction implements the given
// (function, method) pair — our reconstruction of Table 2:
//
//   - CORDIC covers the trigonometric and hyperbolic families plus
//     exp/log/sqrt through rotation and vectoring modes; it has no
//     route to GELU (which needs erf).
//   - CORDIC+LUT is implemented for the circular family, the paper's
//     representative use (sine).
//   - M-LUT, L-LUT and the fixed-point L-LUT cover all ten functions.
//   - D-LUT and DL-LUT target the approximately-linear,
//     range-extension-free functions (tanh, GELU, and the extension
//     functions sigmoid and atan), per Key Takeaway 4.
//   - The polynomial baseline covers all ten functions.
func (m Method) Supports(f Function) bool {
	switch m {
	case CORDIC:
		return f != GELU // no CORDIC route to erf
	case CORDICLUT:
		return f == Sin || f == Cos || f == Tan
	case MLUT, LLUT, LLUTFixed, Poly:
		return true
	case DLUT, DLLUT:
		return f == Tanh || f == GELU || f == Sigmoid || f == Atan
	}
	return false
}

// Params selects a concrete configuration of a method.
type Params struct {
	Method Method
	// Interp enables linear interpolation for LUT methods.
	Interp bool
	// Iterations is the CORDIC iteration count (CORDIC and the tail of
	// CORDIC+LUT). Zero picks a high-accuracy default.
	Iterations int
	// SizeLog2 controls LUT density: the L-LUT density exponent, the
	// M-LUT entry count as 2^SizeLog2 over the core range, or the D-LUT
	// per-exponent mantissa bits. Zero picks a mid default.
	SizeLog2 int
	// HeadBits is the CORDIC+LUT head-table density (default 8).
	HeadBits int
	// Degree is the polynomial degree for the Poly baseline (zero picks
	// a default reaching ~1e-7).
	Degree int
	// Placement selects WRAM or MRAM residence for tables.
	Placement pimsim.Placement
	// WideRange prepends the 2π range reduction (Fig. 8) to the
	// trigonometric functions so inputs outside [0, 2π] are accepted.
	WideRange bool
}

// Normalized returns the params with zero-valued knobs replaced by
// their defaults — the canonical form Build compiles, and therefore
// the form a setup cache must key on (so that e.g. SizeLog2 0 and the
// default 10 do not cache as distinct configurations).
func (p Params) Normalized() Params { return p.withDefaults() }

func (p Params) withDefaults() Params {
	if p.Iterations == 0 {
		p.Iterations = 30
	}
	if p.SizeLog2 == 0 {
		p.SizeLog2 = 10
	}
	if p.HeadBits == 0 {
		p.HeadBits = 8
	}
	if p.Degree == 0 {
		p.Degree = 9
	}
	return p
}

// Label gives a compact human-readable configuration name, e.g.
// "l-lut(i) n=10 wram".
func (p Params) Label() string {
	var b strings.Builder
	b.WriteString(p.Method.String())
	if p.Interp {
		b.WriteString("(i)")
	}
	switch p.Method {
	case CORDIC:
		fmt.Fprintf(&b, " it=%d", p.Iterations)
	case CORDICLUT:
		fmt.Fprintf(&b, " head=%d it=%d", p.HeadBits, p.Iterations)
	case Poly:
		fmt.Fprintf(&b, " deg=%d", p.Degree)
	default:
		fmt.Fprintf(&b, " n=%d", p.SizeLog2)
	}
	b.WriteByte(' ')
	b.WriteString(p.Placement.String())
	return b.String()
}

// SupportMatrix renders Table 2: which methods implement which
// functions.
func SupportMatrix() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("%-12s", "method"))
	for _, f := range Functions() {
		fmt.Fprintf(&b, "%6s", f)
	}
	b.WriteByte('\n')
	for _, m := range Methods() {
		fmt.Fprintf(&b, "%-12s", m)
		for _, f := range Functions() {
			mark := "-"
			if m.Supports(f) {
				mark = "x"
			}
			fmt.Fprintf(&b, "%6s", mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
