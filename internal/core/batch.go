package core

import (
	"math"
	"sync"

	"transpimlib/internal/cordic"
	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/rangered"
)

// The batch-evaluation fast path replaces the per-op interpreted walk
// through a kernel with (a) an unmetered host mirror that reproduces
// the device's float32/fixed-point arithmetic bit-for-bit and (b) a
// set of pre-recorded cost signatures, one per control-flow class of
// the kernel. Every supported kernel's charge sequence depends only on
// the input operand — which quadrant a trig argument folds into, the
// exponent parity of a sqrt argument, the sign of a symmetric fixed-
// point input, the L/D routing of a DL-LUT — never on loaded table
// values, so a handful of straight-line traces covers the whole input
// space exactly. EvalBatch classifies each element, evaluates it
// through the mirror, and bulk-charges signature × count.

// maxCostClasses bounds the control-flow classes of any one kernel:
// the four trigonometric quadrants are the widest case (domain guards
// replace, not extend, the inner classes they shadow — but composed
// guard + parity reaches 3, and quadrants reach 4).
const maxCostClasses = 4

// batchKernel is the fused slice form of a mirror: evaluate xs into ys
// through straight-line class-partitioned loops over SoA scratch,
// tallying how many elements ran through each cost class. Kernels may
// use the XB/YB, IA, QA/QB and TA/TB/TC scratch lanes freely; the
// XA/YA lanes are reserved for the outermost composition layer
// (domain-guard gathers, input pre-transforms), so a wrapped kernel
// can run on a gathered XA sub-batch without clobbering it.
type batchKernel func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64)

// opMirror is the host-side twin of an Operator's eval: a fused
// evaluate-and-classify function plus one representative input per
// cost class, used once at build time to record the signatures.
type opMirror struct {
	n    int // number of cost classes, ≤ maxCostClasses
	eval func(x float32) (float32, int)
	reps [maxCostClasses]float32
	// kernel, when set, replaces the per-element classify loop with a
	// fused slice pass; it must be bit-identical to eval in both values
	// and class tallies.
	kernel batchKernel
}

// plainKernel adapts a single-class fused slice kernel (a table's
// MirrorMany) into a batchKernel.
func plainKernel(f func(xs, ys []float32)) batchKernel {
	return func(xs, ys []float32, _ *lut.Scratch, counts *[maxCostClasses]uint64) {
		f(xs, ys)
		counts[0] += uint64(len(xs))
	}
}

// mirror1 wraps a single-class (straight-line) mirror.
func mirror1(f func(float32) float32, rep float32) *opMirror {
	return &opMirror{
		n:    1,
		eval: func(x float32) (float32, int) { return f(x), 0 },
		reps: [maxCostClasses]float32{rep},
	}
}

// quadrantReps returns one representative angle per quadrant of
// [0, 2π), the classes of the quadrant-folded trig kernels.
func quadrantReps() [maxCostClasses]float32 {
	return [maxCostClasses]float32{
		0.7,
		float32(0.7 + math.Pi/2),
		float32(0.7 + math.Pi),
		float32(0.7 + 3*math.Pi/2),
	}
}

// fix64FromF32 mirrors Ctx.F32ToFix64 with cordic.FracBits.
func fix64FromF32(f float32) int64 {
	return int64(float64(f) * float64(uint64(1)<<cordic.FracBits))
}

// fix64ToF32 mirrors Ctx.Fix64ToF32 with cordic.FracBits.
func fix64ToF32(v int64) float32 {
	return float32(float64(v) / float64(uint64(1)<<cordic.FracBits))
}

// foldQuadrant64Host mirrors foldQuadrant64.
func foldQuadrant64Host(theta int64) (int64, rangered.Quadrant) {
	var q rangered.Quadrant
	for q = 0; q < 3; q++ {
		if theta < halfPi64 {
			break
		}
		theta -= halfPi64
	}
	return theta, q
}

// sqrtParityMirror composes SplitSqrtHost → core → JoinSqrtHost with
// the exponent-parity branch as the class split: even exponents skip
// the fold, odd ones pay one extra ldexp. A non-nil coreMany adds the
// fused form: split into the XB/IA lanes, one fused core pass, a
// per-element ldexp join.
func sqrtParityMirror(core func(float32) float32, coreMany func(xs, ys []float32)) *opMirror {
	m := &opMirror{
		n:    2,
		reps: [maxCostClasses]float32{0.5, 1}, // frexp exponents 0 (even) and 1 (odd)
		eval: func(x float32) (float32, int) {
			m, h, odd := rangered.SplitSqrtHost(x)
			v := rangered.JoinSqrtHost(core(m), h)
			if odd {
				return v, 1
			}
			return v, 0
		},
	}
	if coreMany != nil {
		m.kernel = func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
			n := len(xs)
			sc.Grow(n)
			ms := sc.XB[:n]
			hs := sc.IA[:n]
			var odds uint64
			for i, x := range xs {
				mf, h, odd := rangered.SplitSqrtHost(x)
				ms[i] = mf
				hs[i] = h
				if odd {
					odds++
				}
			}
			coreMany(ms, ys)
			for i := range ys {
				ys[i] = rangered.JoinSqrtHost(ys[i], hs[i])
			}
			counts[0] += uint64(n) - odds
			counts[1] += odds
		}
	}
	return m
}

// expSplitKernel fuses the exp range reduction around a fused core
// kernel: SplitExpHost into the XB/IA lanes, one core pass, a
// per-element ldexp join. Single-class, like the scalar composition.
func expSplitKernel(coreMany func(xs, ys []float32)) batchKernel {
	return func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
		n := len(xs)
		sc.Grow(n)
		rs := sc.XB[:n]
		ks := sc.IA[:n]
		rangered.SplitExpHostMany(xs, rs, ks)
		coreMany(rs, ys)
		for i := range ys {
			ys[i] = rangered.JoinExpHost(ys[i], ks[i])
		}
		counts[0] += uint64(n)
	}
}

// logSplitKernel fuses the log range reduction around a fused core
// kernel: frexp into the XB/IA lanes, one core pass, a per-element
// linear join.
func logSplitKernel(coreMany func(xs, ys []float32)) batchKernel {
	return func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
		n := len(xs)
		sc.Grow(n)
		ms := sc.XB[:n]
		es := sc.IA[:n]
		rangered.SplitLogHostMany(xs, ms, es)
		coreMany(ms, ys)
		for i := range ys {
			ys[i] = rangered.JoinLogHost(ys[i], es[i])
		}
		counts[0] += uint64(n)
	}
}

// divKernel fuses a two-table quotient (the Tan builds): one numerator
// pass into the XB lane, one denominator pass into ys, one divide
// sweep.
func divKernel(numMany, denMany func(xs, ys []float32)) batchKernel {
	return func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
		n := len(xs)
		sc.Grow(n)
		ss := sc.XB[:n]
		numMany(xs, ss)
		denMany(xs, ys)
		for i := range ys {
			ys[i] = ss[i] / ys[i]
		}
		counts[0] += uint64(n)
	}
}

// sincosKernel fuses the quadrant-folded CORDIC trig pipeline: fold
// every angle into the TA lane tagging its quadrant, one fused
// rotation pass over the Q23.40 lanes, then a per-element quadrant
// fix-up through finish.
func sincosKernel(many func(thetas, sins, coss []int64), finish func(s, c float32, q rangered.Quadrant) float32) batchKernel {
	return func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
		n := len(xs)
		sc.Grow(n)
		sc.GrowT(n)
		ta, sb, cb := sc.TA[:n], sc.TB[:n], sc.TC[:n]
		cls := sc.Cls[:n]
		for i, x := range xs {
			theta, q := foldQuadrant64Host(fix64FromF32(x))
			ta[i] = theta
			cls[i] = uint8(q)
			counts[q]++
		}
		many(ta, sb, cb)
		for i := range ys {
			s := fix64ToF32(sb[i])
			c := fix64ToF32(cb[i])
			ys[i] = finish(s, c, rangered.Quadrant(cls[i]))
		}
	}
}

// guardKernel composes a domain-guard class onto a fused kernel. Clean
// batches (every element in domain) run the inner kernel unchanged —
// the common case costs one scan. Otherwise the in-domain elements
// gather into the reserved XA/YA lanes, the inner kernel runs on the
// gathered sub-batch (using its own disjoint lanes), and a scatter
// pass interleaves the guard results back in input order.
func guardKernel(inner batchKernel, guardClass int, inDomain func(float32) bool, guardVal func(float32) float32) batchKernel {
	return func(xs, ys []float32, sc *lut.Scratch, counts *[maxCostClasses]uint64) {
		clean := true
		for _, x := range xs {
			if !inDomain(x) {
				clean = false
				break
			}
		}
		if clean {
			inner(xs, ys, sc, counts)
			return
		}
		sc.Grow(len(xs))
		xa := sc.XA[:0]
		var g uint64
		for _, x := range xs {
			if inDomain(x) {
				xa = append(xa, x)
			} else {
				g++
			}
		}
		ya := sc.YA[:len(xa)]
		inner(xa, ya, sc, counts)
		j := 0
		for i, x := range xs {
			if inDomain(x) {
				ys[i] = ya[j]
				j++
			} else {
				ys[i] = guardVal(x)
			}
		}
		counts[guardClass] += g
	}
}

// wrapLogGuard composes the Log domain-guard branch onto a mirror: one
// extra class for non-positive (and NaN) inputs, which short-circuit
// after the guard's compare.
func wrapLogGuard(m *opMirror) *opMirror {
	if m == nil {
		return nil
	}
	inner, n := m.eval, m.n
	w := &opMirror{n: n + 1, reps: m.reps}
	w.reps[n] = -1
	w.eval = func(x float32) (float32, int) {
		if !(x > 0) { // FCmp(x, 0) <= 0, with NaN landing here too
			if x == 0 {
				return float32(math.Inf(-1)), n
			}
			return float32(math.NaN()), n
		}
		return inner(x)
	}
	if m.kernel != nil {
		w.kernel = guardKernel(m.kernel, n,
			func(x float32) bool { return x > 0 },
			func(x float32) float32 {
				if x == 0 {
					return float32(math.Inf(-1))
				}
				return float32(math.NaN())
			})
	}
	return w
}

// wrapSqrtGuard composes the Sqrt domain-guard branch: negative inputs
// (NaN result) and zero short-circuit with identical guard cost, so
// they share one class.
func wrapSqrtGuard(m *opMirror) *opMirror {
	if m == nil {
		return nil
	}
	inner, n := m.eval, m.n
	w := &opMirror{n: n + 1, reps: m.reps}
	w.reps[n] = -1
	w.eval = func(x float32) (float32, int) {
		if x < 0 {
			return float32(math.NaN()), n
		}
		if x == 0 {
			return 0, n
		}
		return inner(x)
	}
	if m.kernel != nil {
		// NaN fails both guard compares and falls through to the inner
		// kernel, exactly like the scalar wrapper.
		w.kernel = guardKernel(m.kernel, n,
			func(x float32) bool { return !(x < 0) && x != 0 },
			func(x float32) float32 {
				if x < 0 {
					return float32(math.NaN())
				}
				return 0
			})
	}
	return w
}

// recordSigs runs the interpreted eval once per cost class on a
// throwaway recorder core and stores the resulting signatures. When a
// representative input fails to classify as its own class (a kernel
// whose control flow the mirror mispredicts), the fast path is
// disabled rather than risk wrong accounting.
func (o *Operator) recordSigs(model pimsim.CostModel) {
	m := o.mirror
	if m == nil {
		return
	}
	if m.n < 1 || m.n > maxCostClasses {
		o.mirror = nil
		return
	}
	rec := pimsim.NewSigRecorder(model)
	for c := 0; c < m.n; c++ {
		rep := m.reps[c]
		if _, got := m.eval(rep); got != c {
			o.mirror = nil
			return
		}
		rec.TakeSig() // discard anything charged so far
		o.eval(rec, rep)
		o.sigs[c] = rec.TakeSig()
	}
}

// HasFastPath reports whether EvalBatch runs through the fused mirror
// (true for every built operator except WideRange trig, which falls
// back to the interpreted path).
func (o *Operator) HasFastPath() bool { return o.mirror != nil }

// DisableFastPath forces EvalBatch through the per-element interpreted
// reference path — the escape hatch the differential tests and the
// engine's Reference mode use.
func (o *Operator) DisableFastPath() { o.mirror = nil }

// scratchPool backs EvalBatch callers that don't carry their own
// arena; the engine's steady state passes a pre-grown per-lane Scratch
// through EvalBatchWith instead.
var scratchPool = sync.Pool{New: func() any { return new(lut.Scratch) }}

// EvalBatch evaluates fn over xs into ys (len(ys) must be ≥ len(xs)),
// bit-identical in outputs and cycle accounting to calling Eval per
// element. With a fast path it runs the unmetered mirror — fused slice
// kernel when available, per-element classify loop otherwise — and
// charges the per-class cost signatures in bulk; with no fast path it
// falls back to the interpreted loop.
func (o *Operator) EvalBatch(ctx *pimsim.Ctx, xs, ys []float32) {
	if m := o.mirror; m != nil && m.kernel != nil {
		sc := scratchPool.Get().(*lut.Scratch)
		o.EvalBatchWith(ctx, xs, ys, sc)
		scratchPool.Put(sc)
		return
	}
	o.EvalBatchWith(ctx, xs, ys, nil)
}

// EvalBatchWith is EvalBatch with a caller-provided scratch arena for
// the fused kernels' SoA lanes. sc may be nil, forcing the per-element
// mirror loop.
func (o *Operator) EvalBatchWith(ctx *pimsim.Ctx, xs, ys []float32, sc *lut.Scratch) {
	m := o.mirror
	if m == nil {
		for i, x := range xs {
			ys[i] = o.eval(ctx, x)
		}
		return
	}
	ys = ys[:len(xs)]
	if m.kernel != nil && sc != nil {
		// The tally lives in the scratch: its address passes through an
		// opaque func value, which would heap-allocate a stack array.
		sc.Counts = [maxCostClasses]uint64{}
		m.kernel(xs, ys, sc, &sc.Counts)
		for c := 0; c < m.n; c++ {
			if n := sc.Counts[c]; n != 0 {
				ctx.ChargeSig(&o.sigs[c], n)
			}
		}
		return
	}
	var counts [maxCostClasses]uint64
	f := m.eval
	for i, x := range xs {
		v, c := f(x)
		ys[i] = v
		counts[c]++
	}
	for c := 0; c < m.n; c++ {
		if counts[c] != 0 {
			ctx.ChargeSig(&o.sigs[c], counts[c])
		}
	}
}
