package core

import (
	"math"

	"transpimlib/internal/cordic"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/rangered"
)

// The batch-evaluation fast path replaces the per-op interpreted walk
// through a kernel with (a) an unmetered host mirror that reproduces
// the device's float32/fixed-point arithmetic bit-for-bit and (b) a
// set of pre-recorded cost signatures, one per control-flow class of
// the kernel. Every supported kernel's charge sequence depends only on
// the input operand — which quadrant a trig argument folds into, the
// exponent parity of a sqrt argument, the sign of a symmetric fixed-
// point input, the L/D routing of a DL-LUT — never on loaded table
// values, so a handful of straight-line traces covers the whole input
// space exactly. EvalBatch classifies each element, evaluates it
// through the mirror, and bulk-charges signature × count.

// maxCostClasses bounds the control-flow classes of any one kernel:
// the four trigonometric quadrants are the widest case (domain guards
// replace, not extend, the inner classes they shadow — but composed
// guard + parity reaches 3, and quadrants reach 4).
const maxCostClasses = 4

// opMirror is the host-side twin of an Operator's eval: a fused
// evaluate-and-classify function plus one representative input per
// cost class, used once at build time to record the signatures.
type opMirror struct {
	n    int // number of cost classes, ≤ maxCostClasses
	eval func(x float32) (float32, int)
	reps [maxCostClasses]float32
	// many, when set on a single-class mirror, is a fused slice kernel
	// (the table's MirrorMany) that skips the per-element closure
	// dispatch and classification. Only consulted when n == 1.
	many func(xs, ys []float32)
}

// mirror1 wraps a single-class (straight-line) mirror.
func mirror1(f func(float32) float32, rep float32) *opMirror {
	return &opMirror{
		n:    1,
		eval: func(x float32) (float32, int) { return f(x), 0 },
		reps: [maxCostClasses]float32{rep},
	}
}

// quadrantReps returns one representative angle per quadrant of
// [0, 2π), the classes of the quadrant-folded trig kernels.
func quadrantReps() [maxCostClasses]float32 {
	return [maxCostClasses]float32{
		0.7,
		float32(0.7 + math.Pi/2),
		float32(0.7 + math.Pi),
		float32(0.7 + 3*math.Pi/2),
	}
}

// fix64FromF32 mirrors Ctx.F32ToFix64 with cordic.FracBits.
func fix64FromF32(f float32) int64 {
	return int64(float64(f) * float64(uint64(1)<<cordic.FracBits))
}

// fix64ToF32 mirrors Ctx.Fix64ToF32 with cordic.FracBits.
func fix64ToF32(v int64) float32 {
	return float32(float64(v) / float64(uint64(1)<<cordic.FracBits))
}

// foldQuadrant64Host mirrors foldQuadrant64.
func foldQuadrant64Host(theta int64) (int64, rangered.Quadrant) {
	var q rangered.Quadrant
	for q = 0; q < 3; q++ {
		if theta < halfPi64 {
			break
		}
		theta -= halfPi64
	}
	return theta, q
}

// sqrtParityMirror composes SplitSqrtHost → core → JoinSqrtHost with
// the exponent-parity branch as the class split: even exponents skip
// the fold, odd ones pay one extra ldexp.
func sqrtParityMirror(core func(float32) float32) *opMirror {
	return &opMirror{
		n:    2,
		reps: [maxCostClasses]float32{0.5, 1}, // frexp exponents 0 (even) and 1 (odd)
		eval: func(x float32) (float32, int) {
			m, h, odd := rangered.SplitSqrtHost(x)
			v := rangered.JoinSqrtHost(core(m), h)
			if odd {
				return v, 1
			}
			return v, 0
		},
	}
}

// wrapLogGuard composes the Log domain-guard branch onto a mirror: one
// extra class for non-positive (and NaN) inputs, which short-circuit
// after the guard's compare.
func wrapLogGuard(m *opMirror) *opMirror {
	if m == nil {
		return nil
	}
	inner, n := m.eval, m.n
	w := &opMirror{n: n + 1, reps: m.reps}
	w.reps[n] = -1
	w.eval = func(x float32) (float32, int) {
		if !(x > 0) { // FCmp(x, 0) <= 0, with NaN landing here too
			if x == 0 {
				return float32(math.Inf(-1)), n
			}
			return float32(math.NaN()), n
		}
		return inner(x)
	}
	return w
}

// wrapSqrtGuard composes the Sqrt domain-guard branch: negative inputs
// (NaN result) and zero short-circuit with identical guard cost, so
// they share one class.
func wrapSqrtGuard(m *opMirror) *opMirror {
	if m == nil {
		return nil
	}
	inner, n := m.eval, m.n
	w := &opMirror{n: n + 1, reps: m.reps}
	w.reps[n] = -1
	w.eval = func(x float32) (float32, int) {
		if x < 0 {
			return float32(math.NaN()), n
		}
		if x == 0 {
			return 0, n
		}
		return inner(x)
	}
	return w
}

// recordSigs runs the interpreted eval once per cost class on a
// throwaway recorder core and stores the resulting signatures. When a
// representative input fails to classify as its own class (a kernel
// whose control flow the mirror mispredicts), the fast path is
// disabled rather than risk wrong accounting.
func (o *Operator) recordSigs(model pimsim.CostModel) {
	m := o.mirror
	if m == nil {
		return
	}
	if m.n < 1 || m.n > maxCostClasses {
		o.mirror = nil
		return
	}
	rec := pimsim.NewSigRecorder(model)
	for c := 0; c < m.n; c++ {
		rep := m.reps[c]
		if _, got := m.eval(rep); got != c {
			o.mirror = nil
			return
		}
		rec.TakeSig() // discard anything charged so far
		o.eval(rec, rep)
		o.sigs[c] = rec.TakeSig()
	}
}

// HasFastPath reports whether EvalBatch runs through the fused mirror
// (true for every built operator except WideRange trig, which falls
// back to the interpreted path).
func (o *Operator) HasFastPath() bool { return o.mirror != nil }

// DisableFastPath forces EvalBatch through the per-element interpreted
// reference path — the escape hatch the differential tests and the
// engine's Reference mode use.
func (o *Operator) DisableFastPath() { o.mirror = nil }

// EvalBatch evaluates fn over xs into ys (len(ys) must be ≥ len(xs)),
// bit-identical in outputs and cycle accounting to calling Eval per
// element. With a fast path it runs the unmetered mirror per element
// and charges the per-class cost signatures in bulk; otherwise it
// falls back to the interpreted loop.
func (o *Operator) EvalBatch(ctx *pimsim.Ctx, xs, ys []float32) {
	m := o.mirror
	if m == nil {
		for i, x := range xs {
			ys[i] = o.eval(ctx, x)
		}
		return
	}
	ys = ys[:len(xs)]
	if m.n == 1 && m.many != nil {
		m.many(xs, ys)
		ctx.ChargeSig(&o.sigs[0], uint64(len(xs)))
		return
	}
	var counts [maxCostClasses]uint64
	f := m.eval
	for i, x := range xs {
		v, c := f(x)
		ys[i] = v
		counts[c]++
	}
	for c := 0; c < m.n; c++ {
		if counts[c] != 0 {
			ctx.ChargeSig(&o.sigs[c], counts[c])
		}
	}
}
