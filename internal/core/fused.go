package core

import (
	"math"

	"transpimlib/internal/pimsim"
)

// FusedOperator is the device-primitive table behind fused programs
// (internal/fusion): the elementwise and reduction steps that ride in
// the same streamed kernel loop as a transcendental Operator, each with
// a bit-exact host mirror and a pre-recorded single-class cost
// signature in the PR 3/8 style. Every primitive's charge sequence is
// straight-line — the max/accumulate selects are compiled branchless
// (compare + conditional move, charged unconditionally) — so one
// signature per op covers the whole input space exactly and the batch
// fast path bulk-charges signature × count with accounting
// bit-identical to the per-element interpreted walk.

// ElemOp identifies one fused elementwise primitive.
type ElemOp uint8

// The elementwise primitives.
const (
	ElemAdd ElemOp = iota
	ElemSub
	ElemMul
	ElemDiv
	ElemMax
	NumElemOps
)

var elemOpNames = [...]string{"add", "sub", "mul", "div", "max"}

// String returns the op's lowercase name.
func (op ElemOp) String() string {
	if int(op) >= len(elemOpNames) {
		return "elem?"
	}
	return elemOpNames[op]
}

// ReduceOp identifies one fused reduction primitive.
type ReduceOp uint8

// The reduction primitives.
const (
	ReduceSum ReduceOp = iota
	ReduceMax
	NumReduceOps
)

var reduceOpNames = [...]string{"sum", "max"}

// String returns the op's lowercase name.
func (op ReduceOp) String() string {
	if int(op) >= len(reduceOpNames) {
		return "reduce?"
	}
	return reduceOpNames[op]
}

// FusedOperator carries the recorded cost signatures of the fused
// primitives under one cost model. Build once per compiled program
// with NewFusedOperator; safe for concurrent read-only use.
type FusedOperator struct {
	elem [NumElemOps]pimsim.CostSig
	red  [NumReduceOps]pimsim.CostSig

	// scalarLoad/scalarStore are the per-lane costs of reading a
	// broadcast scalar out of the streamed chunk and of parking a
	// reduction partial for the host gather — the WRAM access the
	// SoftmaxPIM workload kernel charges for the same steps.
	scalarLoad  pimsim.CostSig
	scalarStore pimsim.CostSig
}

// NewFusedOperator records the primitive signatures on a throwaway
// core under the given cost model.
func NewFusedOperator(model pimsim.CostModel) *FusedOperator {
	f := &FusedOperator{}
	rec := pimsim.NewSigRecorder(model)
	for op := ElemOp(0); op < NumElemOps; op++ {
		rec.TakeSig()
		f.ElemEval(rec, op, 1, 2)
		f.elem[op] = rec.TakeSig()
	}
	for op := ReduceOp(0); op < NumReduceOps; op++ {
		rec.TakeSig()
		f.ReduceEval(rec, op, 1, 2)
		f.red[op] = rec.TakeSig()
	}
	rec.TakeSig()
	_ = rec.LoadStreamedF32(rec.DPU().MRAM, 0)
	f.scalarLoad = rec.TakeSig()
	rec.StoreStreamedF32(rec.DPU().MRAM, 0, 0)
	f.scalarStore = rec.TakeSig()
	return f
}

// ElemEval computes op(a, b) on the PIM core through ctx — the
// interpreted reference path. ElemMax is the branchless select:
// compare then conditional move, both charged regardless of which
// operand wins, so the cost never depends on the data.
func (f *FusedOperator) ElemEval(ctx *pimsim.Ctx, op ElemOp, a, b float32) float32 {
	switch op {
	case ElemAdd:
		return ctx.FAdd(a, b)
	case ElemSub:
		return ctx.FSub(a, b)
	case ElemMul:
		return ctx.FMul(a, b)
	case ElemDiv:
		return ctx.FDiv(a, b)
	case ElemMax:
		c := ctx.FCmp(a, b)
		ctx.Move()
		if c < 0 {
			return b
		}
		return a
	}
	panic("core: bad elem op")
}

// ElemApply is the unmetered host mirror of ElemEval, bit-exact with
// the device arithmetic (plain float32 IEEE ops; the max select keeps
// a on ties and unordered compares, exactly like the FCmp sequence).
func ElemApply(op ElemOp, a, b float32) float32 {
	switch op {
	case ElemAdd:
		return a + b
	case ElemSub:
		return a - b
	case ElemMul:
		return a * b
	case ElemDiv:
		return a / b
	case ElemMax:
		if a < b {
			return b
		}
		return a
	}
	panic("core: bad elem op")
}

// ReduceInit returns the reduction's identity accumulator.
func ReduceInit(op ReduceOp) float32 {
	if op == ReduceMax {
		return float32(math.Inf(-1))
	}
	return 0
}

// ReduceEval folds x into acc on the PIM core through ctx — one
// accumulate step of the in-loop reduction.
func (f *FusedOperator) ReduceEval(ctx *pimsim.Ctx, op ReduceOp, acc, x float32) float32 {
	if op == ReduceMax {
		c := ctx.FCmp(acc, x)
		ctx.Move()
		if c < 0 {
			return x
		}
		return acc
	}
	return ctx.FAdd(acc, x)
}

// ReduceApply is the unmetered host mirror of ReduceEval. The host
// combine across lane partials uses the same function in lane order,
// so the fused path and the per-op baseline reach bit-identical
// scalars.
func ReduceApply(op ReduceOp, acc, x float32) float32 {
	if op == ReduceMax {
		if acc < x {
			return x
		}
		return acc
	}
	return acc + x
}

// ChargeElem bulk-charges n applications of the elementwise op —
// bit-identical accounting to n ElemEval calls.
func (f *FusedOperator) ChargeElem(ctx *pimsim.Ctx, op ElemOp, n uint64) {
	ctx.ChargeSig(&f.elem[op], n)
}

// ChargeReduce bulk-charges n accumulate steps of the reduction.
func (f *FusedOperator) ChargeReduce(ctx *pimsim.Ctx, op ReduceOp, n uint64) {
	ctx.ChargeSig(&f.red[op], n)
}

// ChargeScalarLoad accounts reading n broadcast scalars from the
// streamed chunk (once per lane per phase, not per element).
func (f *FusedOperator) ChargeScalarLoad(ctx *pimsim.Ctx, n uint64) {
	ctx.ChargeSig(&f.scalarLoad, n)
}

// ChargeScalarStore accounts parking n reduction partials for the
// host gather.
func (f *FusedOperator) ChargeScalarStore(ctx *pimsim.Ctx, n uint64) {
	ctx.ChargeSig(&f.scalarStore, n)
}

// RecordStreamSig records the per-element streaming overhead of a
// fused kernel loop with the given number of operand loads and result
// stores per element: loads × WRAM load + stores × WRAM store + the
// loop counter and branch. With one load and one store it is exactly
// the engine's per-op stream signature, which is what makes a
// single-node fused program charge the same cycles as the per-op
// batch path.
func RecordStreamSig(model pimsim.CostModel, loads, stores int) pimsim.CostSig {
	rec := pimsim.NewSigRecorder(model)
	m := rec.DPU().MRAM
	for i := 0; i < loads; i++ {
		_ = rec.LoadStreamedF32(m, 0)
	}
	for i := 0; i < stores; i++ {
		rec.StoreStreamedF32(m, 0, 0)
	}
	rec.Charge(2)
	return rec.TakeSig()
}
