package core

import (
	"fmt"
	"math"
	"testing"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

// diffInputs samples the function's domain plus the boundary and sign
// specials the branch classifiers have to get right.
func diffInputs(fn Function) []float32 {
	lo, hi := fn.Domain()
	xs := stats.RandomInputs(lo, hi, 240, 7)
	return append(xs,
		float32(lo), float32(hi),
		0, float32(math.Copysign(0, -1)),
		0.5, -0.5, 1, -1,
	)
}

// TestEvalBatchDifferential is the fast path's correctness contract:
// for every supported (function, method, interp, placement) combination
// EvalBatch must be bit-identical in outputs AND exact in issue cycles,
// DMA cycles, and per-class operation counters versus the per-element
// interpreted path.
func TestEvalBatchDifferential(t *testing.T) {
	placements := []pimsim.Placement{pimsim.InWRAM, pimsim.InMRAM}
	for _, fn := range Functions() {
		xs := diffInputs(fn)
		for _, m := range Methods() {
			if !m.Supports(fn) {
				continue
			}
			for _, interp := range []bool{false, true} {
				if interp && !m.SupportsInterp() {
					continue
				}
				for _, place := range placements {
					p := Params{Method: m, Interp: interp, Placement: place}
					t.Run(fmt.Sprintf("%v/%s", fn, p.Label()), func(t *testing.T) {
						dpuF := newDPU()
						opF, err := Build(fn, p, dpuF)
						if err != nil {
							t.Fatalf("build: %v", err)
						}
						if !opF.HasFastPath() {
							t.Fatal("no fast path for a non-wide-range operator")
						}
						dpuR := newDPU()
						opR, err := Build(fn, p, dpuR)
						if err != nil {
							t.Fatalf("build ref: %v", err)
						}
						opR.DisableFastPath()

						dpuF.ResetCycles()
						dpuR.ResetCycles()
						ysF := make([]float32, len(xs))
						ysR := make([]float32, len(xs))
						opF.EvalBatch(dpuF.NewCtx(), xs, ysF)
						opR.EvalBatch(dpuR.NewCtx(), xs, ysR)

						for i := range xs {
							if math.Float32bits(ysF[i]) != math.Float32bits(ysR[i]) {
								t.Fatalf("x=%v: fast %v (%#x) != ref %v (%#x)",
									xs[i], ysF[i], math.Float32bits(ysF[i]),
									ysR[i], math.Float32bits(ysR[i]))
							}
						}
						if got, want := dpuF.IssueCycles(), dpuR.IssueCycles(); got != want {
							t.Errorf("issue cycles: fast %d != ref %d", got, want)
						}
						if got, want := dpuF.DMACycles(), dpuR.DMACycles(); got != want {
							t.Errorf("dma cycles: fast %d != ref %d", got, want)
						}
						if got, want := dpuF.Counters(), dpuR.Counters(); got != want {
							t.Errorf("counters diverge:\nfast %+v\nref  %+v", got, want)
						}
					})
				}
			}
		}
	}
}

// TestEvalBatchWideRangeFallback pins the escape hatch: wide-range trig
// keeps the interpreted path (its guard correction is data-dependent
// beyond the quadrant classes) and EvalBatch must still match Eval.
func TestEvalBatchWideRangeFallback(t *testing.T) {
	dpu := newDPU()
	op, err := Build(Sin, Params{Method: CORDIC, WideRange: true}, dpu)
	if err != nil {
		t.Fatal(err)
	}
	if op.HasFastPath() {
		t.Fatal("wide-range sin must not claim a fast path")
	}
	xs := []float32{-100, -1, 0, 1, 7, 1000}
	ys := make([]float32, len(xs))
	op.EvalBatch(dpu.NewCtx(), xs, ys)
	ref := newDPU()
	opR, err := Build(Sin, Params{Method: CORDIC, WideRange: true}, ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ref.NewCtx()
	for i, x := range xs {
		if want := opR.Eval(ctx, x); math.Float32bits(ys[i]) != math.Float32bits(want) {
			t.Fatalf("x=%v: batch %v != eval %v", x, ys[i], want)
		}
	}
}
