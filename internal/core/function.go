// Package core assembles the substrates — CORDIC engines, fuzzy
// lookup tables, range reduction, polynomial baseline — into
// TransPimLib proper: for every supported (function, method) pair it
// builds the host-side setup (tables, measured setup time) and a
// device-side evaluator that runs on the simulated PIM core with full
// cycle accounting.
package core

import (
	"fmt"
	"math"
)

// Function identifies one of the transcendental / hard-to-calculate
// functions TransPimLib supports (Table 2).
type Function int

// The supported functions.
const (
	Sin Function = iota
	Cos
	Tan
	Sinh
	Cosh
	Tanh
	Exp
	Log
	Sqrt
	GELU
	// Extension functions beyond the paper's Table 2: arctangent
	// (listed for the circular CORDIC mode in Table 1) and the sigmoid
	// activation (the subject of one §4.3 workload, and — like tanh and
	// GELU — approximately linear and range-extension-free, so a
	// natural D-LUT/DL-LUT target per Key Takeaway 4).
	Atan
	Sigmoid
	numFunctions
)

// Functions lists every supported function, for sweeps.
func Functions() []Function {
	out := make([]Function, numFunctions)
	for i := range out {
		out[i] = Function(i)
	}
	return out
}

var functionNames = [...]string{
	"sin", "cos", "tan", "sinh", "cosh", "tanh", "exp", "log", "sqrt", "gelu",
	"atan", "sigmoid",
}

// String returns the function's lowercase name.
func (f Function) String() string {
	if f < 0 || f >= numFunctions {
		return "fn?"
	}
	return functionNames[f]
}

// ParseFunction resolves a name produced by String.
func ParseFunction(s string) (Function, error) {
	for i, n := range functionNames {
		if n == s {
			return Function(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown function %q", s)
}

// Ref returns the double-precision host reference implementation
// (§4.1.1: accuracy is compared against the host's standard math
// library).
func (f Function) Ref() func(float64) float64 {
	switch f {
	case Sin:
		return math.Sin
	case Cos:
		return math.Cos
	case Tan:
		return math.Tan
	case Sinh:
		return math.Sinh
	case Cosh:
		return math.Cosh
	case Tanh:
		return math.Tanh
	case Exp:
		return math.Exp
	case Log:
		return math.Log
	case Sqrt:
		return math.Sqrt
	case GELU:
		return geluRef
	case Atan:
		return math.Atan
	case Sigmoid:
		return sigmoidRef
	}
	panic("core: bad function")
}

// sigmoidRef is the logistic function S(x) = 1/(1+e^{−x}).
func sigmoidRef(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// geluRef is the exact Gaussian Error Linear Unit [56]:
// GELU(x) = x·Φ(x) = x/2 · (1 + erf(x/√2)).
func geluRef(x float64) float64 {
	return 0.5 * x * (1 + math.Erf(x/math.Sqrt2))
}

// Domain returns the input interval the microbenchmarks sweep for this
// function (§4.1.1 uses [0, 2π] for sine; the others get analogous
// representative ranges).
func (f Function) Domain() (lo, hi float64) {
	switch f {
	case Sin, Cos, Tan:
		return 0, 2 * math.Pi
	case Sinh, Cosh:
		return -2, 2
	case Tanh, GELU, Atan, Sigmoid:
		return -7.9, 7.9
	case Exp:
		// Outputs stay O(10), so the absolute-RMSE metric of §4.1.1
		// remains comparable with the other functions; the range
		// extension still exercises nonzero 2^k scaling.
		return -2.5, 2.5
	case Log:
		return 1.0 / 1024, 100
	case Sqrt:
		return 1.0 / 1024, 100
	}
	panic("core: bad function")
}

// CoreRange returns the reduced interval that tables and CORDIC cover
// after range reduction/extension (§2.2.3):
// trigonometric functions reduce periodically, exp/log/sqrt split
// exponent and mantissa, and the direct functions use their full
// domain.
func (f Function) CoreRange() (lo, hi float64) {
	switch f {
	case Sin, Cos, Tan:
		return 0, 2 * math.Pi
	case Sinh, Cosh:
		return -2, 2
	case Tanh, GELU, Atan, Sigmoid:
		return -7.9, 7.9
	case Exp:
		return -math.Ln2 / 2, math.Ln2 / 2
	case Log:
		return 0.5, 1
	case Sqrt:
		return 0.5, 2
	}
	panic("core: bad function")
}

// NeedsRangeExtension reports whether evaluation prepends/append the
// §2.2.3 conversions (Fig. 8 costs).
func (f Function) NeedsRangeExtension() bool {
	switch f {
	case Exp, Log, Sqrt:
		return true
	}
	return false
}
