package core

import (
	"transpimlib/internal/pimsim"
)

// OperatorSet is one (function, params) configuration replicated
// across a group of PIM cores — the reusable setup artifact a serving
// runtime caches. Where a per-sweep Build regenerates tables and pays
// a serial single-bank transfer for every core, a set is generated
// once on the host and broadcast to all banks in parallel (§2.1), so
// its setup cost is
//
//	generation (once) + tableBytes × cores / parallel Host→PIM bandwidth
//
// instead of cores × (generation + serial transfer).
type OperatorSet struct {
	Fn  Function
	Par Params

	ops []*Operator // index-aligned with the dpus passed to BuildSet

	buildSeconds    float64 // host-side generation, counted once
	transferSeconds float64 // parallel broadcast to every bank
	tableBytes      int     // per core
}

// BuildSet compiles fn(params) onto every listed core. The host-side
// generation cost is measured on the first core only (the generated
// tables are byte-identical across replicas, so a host keeps and
// reuses them; the per-replica regeneration below is a simulator-host
// artifact and is deliberately not re-counted). Table transfer is
// charged as one rank-wide parallel broadcast.
func BuildSet(fn Function, p Params, dpus []*pimsim.DPU) (*OperatorSet, error) {
	p = p.Normalized()
	set := &OperatorSet{Fn: fn, Par: p, ops: make([]*Operator, 0, len(dpus))}
	for i, dpu := range dpus {
		op, err := Build(fn, p, dpu)
		if err != nil {
			return nil, err
		}
		set.ops = append(set.ops, op)
		if i == 0 {
			set.buildSeconds = op.BuildSeconds()
			set.tableBytes = op.TableBytes()
		}
	}
	set.transferSeconds = float64(set.tableBytes) * float64(len(dpus)) / pimsim.DefaultHostToPIMBandwidth
	return set, nil
}

// Op returns the operator loaded onto the i-th core of the set.
func (s *OperatorSet) Op(i int) *Operator { return s.ops[i] }

// Len returns the number of cores the set is loaded onto.
func (s *OperatorSet) Len() int { return len(s.ops) }

// TableBytes returns the PIM memory the tables consume per core.
func (s *OperatorSet) TableBytes() int { return s.tableBytes }

// BuildSeconds returns the host-side generation time, counted once
// for the whole set.
func (s *OperatorSet) BuildSeconds() float64 { return s.buildSeconds }

// TransferSeconds returns the modeled rank-wide broadcast time.
func (s *OperatorSet) TransferSeconds() float64 { return s.transferSeconds }

// SetupSeconds returns the total setup cost of the set: one
// generation plus one parallel broadcast.
func (s *OperatorSet) SetupSeconds() float64 { return s.buildSeconds + s.transferSeconds }
