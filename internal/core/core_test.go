package core

import (
	"math"
	"strings"
	"testing"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

func newDPU() *pimsim.DPU { return pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets) }

func domainInputs(fn Function, n int) []float32 {
	lo, hi := fn.Domain()
	return stats.RandomInputs(lo, hi, n, 99)
}

func TestFunctionNamesRoundTrip(t *testing.T) {
	for _, f := range Functions() {
		got, err := ParseFunction(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFunction(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFunction("nope"); err == nil {
		t.Error("unknown function must fail to parse")
	}
}

func TestMethodNamesRoundTrip(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("unknown method must fail to parse")
	}
}

func TestGELURef(t *testing.T) {
	// GELU(0)=0, GELU(x)→x for large x, GELU(x)→0 for very negative x.
	if geluRef(0) != 0 {
		t.Error("GELU(0) != 0")
	}
	if math.Abs(geluRef(6)-6) > 1e-6 {
		t.Errorf("GELU(6) = %v", geluRef(6))
	}
	if math.Abs(geluRef(-6)) > 1e-6 {
		t.Errorf("GELU(-6) = %v", geluRef(-6))
	}
	// Known value: GELU(1) = 0.5·(1+erf(1/√2)) ≈ 0.841345.
	if math.Abs(geluRef(1)-0.8413447) > 1e-6 {
		t.Errorf("GELU(1) = %v", geluRef(1))
	}
}

func TestSupportMatrixTable2(t *testing.T) {
	// Structural facts of our Table 2 reconstruction.
	if CORDIC.Supports(GELU) {
		t.Error("CORDIC has no route to GELU")
	}
	if !CORDIC.Supports(Sqrt) || !CORDIC.Supports(Log) {
		t.Error("CORDIC must support log and sqrt via vectoring")
	}
	if !CORDICLUT.Supports(Sin) || CORDICLUT.Supports(Exp) {
		t.Error("CORDIC+LUT covers the circular family only")
	}
	for _, f := range Functions() {
		if !MLUT.Supports(f) || !LLUT.Supports(f) || !LLUTFixed.Supports(f) || !Poly.Supports(f) {
			t.Errorf("M-LUT/L-LUT/fixed/poly must support %v", f)
		}
	}
	if DLUT.Supports(Sin) || !DLUT.Supports(Tanh) || !DLLUT.Supports(GELU) {
		t.Error("D-LUT family targets tanh and GELU")
	}
	s := SupportMatrix()
	if !strings.Contains(s, "gelu") || !strings.Contains(s, "d-lut") {
		t.Error("SupportMatrix output incomplete")
	}
	if lines := strings.Count(s, "\n"); lines != int(numMethods)+1 {
		t.Errorf("SupportMatrix has %d lines, want %d", lines, numMethods+1)
	}
}

func TestBuildRejectsUnsupported(t *testing.T) {
	if _, err := Build(GELU, Params{Method: CORDIC}, newDPU()); err == nil {
		t.Fatal("building CORDIC GELU must fail")
	}
	if _, err := Build(Exp, Params{Method: DLUT}, newDPU()); err == nil {
		t.Fatal("building D-LUT exp must fail")
	}
}

// Every supported (function, method, interp) triple must build and
// reach a sane accuracy on its domain.
func TestAllPairsAccuracy(t *testing.T) {
	for _, fn := range Functions() {
		inputs := domainInputs(fn, 2000)
		ref := fn.Ref()
		for _, m := range Methods() {
			if !m.Supports(fn) {
				continue
			}
			for _, interp := range []bool{false, true} {
				if interp && !m.SupportsInterp() {
					continue
				}
				p := Params{Method: m, Interp: interp, SizeLog2: 12, Iterations: 32, Degree: 11}
				dpu := newDPU()
				op, err := Build(fn, p, dpu)
				if err != nil {
					t.Errorf("%v/%s: build failed: %v", fn, p.Label(), err)
					continue
				}
				ctx := dpu.NewCtx()
				var col stats.Collector
				for _, x := range inputs {
					col.Add(op.Eval(ctx, x), ref(float64(x)))
				}
				e := col.Result()
				// Tangent's absolute error explodes near the poles for
				// every method; judge it by mean error instead.
				metric, bound := e.RMSE, 2e-3
				if fn == Tan {
					metric, bound = e.MeanAbs, 0.5
				}
				if fn == GELU && m == Poly {
					bound = 1e-2 // baseline limitation, documented
				}
				if fn == GELU && (m == DLUT || m == DLLUT) && !interp {
					// Entry spacing grows with |x| while GELU's slope
					// approaches 1, so the truncating D-LUT coarsens at
					// large inputs; interpolation (exact on linear
					// segments) is the intended configuration (KT4).
					bound = 1e-2
				}
				if metric > bound {
					t.Errorf("%v/%s: error %v over bound %v", fn, p.Label(), e, bound)
				}
			}
		}
	}
}

func TestOperatorMetadata(t *testing.T) {
	dpu := newDPU()
	op, err := Build(Sin, Params{Method: LLUT, SizeLog2: 10}, dpu)
	if err != nil {
		t.Fatal(err)
	}
	if op.TableBytes() <= 0 {
		t.Error("L-LUT must report table memory")
	}
	if op.BuildSeconds() <= 0 {
		t.Error("BuildSeconds must be measured")
	}
	if op.TransferSeconds() <= 0 {
		t.Error("TransferSeconds must be modeled")
	}
	if op.SetupSeconds() != op.BuildSeconds()+op.TransferSeconds() {
		t.Error("SetupSeconds must be the sum")
	}
}

func TestWideRangeSine(t *testing.T) {
	dpu := newDPU()
	op, err := Build(Sin, Params{Method: LLUT, Interp: true, SizeLog2: 12, WideRange: true}, dpu)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dpu.NewCtx()
	for _, x := range []float64{-50, -7, 9, 100, 1234} {
		got := float64(op.Eval(ctx, float32(x)))
		want := math.Sin(x)
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("wide sin(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestWideRangeCostsMore(t *testing.T) {
	run := func(wide bool) uint64 {
		dpu := newDPU()
		op, err := Build(Sin, Params{Method: LLUT, SizeLog2: 10, WideRange: wide}, dpu)
		if err != nil {
			t.Fatal(err)
		}
		dpu.ResetCycles()
		op.Eval(dpu.NewCtx(), 1.5)
		return dpu.Cycles()
	}
	if narrow, wide := run(false), run(true); wide <= narrow {
		t.Fatalf("wide-range sine (%d) must cost more than narrow (%d)", wide, narrow)
	}
}

// --- Figure 5 shape assertions ---

func sweep(t *testing.T, fn Function, m Method, interp bool, sizes []int) []Point {
	t.Helper()
	pts := SweepConfig{Fn: fn, Method: m, Interp: interp, Placement: pimsim.InWRAM, Sizes: sizes}.
		Run(domainInputs(fn, 2048))
	if len(pts) == 0 {
		t.Fatalf("sweep %v/%v produced no points", fn, m)
	}
	return pts
}

func TestFig5LUTCyclesFlatInAccuracy(t *testing.T) {
	// Observation 1: each LUT method consumes the same cycles per
	// element regardless of RMSE (table size).
	pts := sweep(t, Sin, LLUT, true, []int{8, 10, 12, 14})
	base := pts[0].CyclesPerElem
	for _, p := range pts {
		if math.Abs(p.CyclesPerElem-base) > 1 {
			t.Fatalf("L-LUT cycles vary with size: %v vs %v", p.CyclesPerElem, base)
		}
	}
}

func TestFig5CORDICCyclesGrowWithAccuracy(t *testing.T) {
	pts := sweep(t, Sin, CORDIC, false, []int{12, 20, 28, 36})
	for i := 1; i < len(pts); i++ {
		if pts[i].CyclesPerElem <= pts[i-1].CyclesPerElem {
			t.Fatalf("CORDIC cycles must grow with iterations: %+v", pts)
		}
		if pts[i].Errors.RMSE >= pts[i-1].Errors.RMSE {
			t.Fatalf("CORDIC RMSE must shrink with iterations: %v then %v",
				pts[i-1].Errors.RMSE, pts[i].Errors.RMSE)
		}
	}
}

func TestFig5MethodOrdering(t *testing.T) {
	// At matched table size, the cycle ordering of observation 1:
	// M-LUT(i) > { L-LUT(i), M-LUT } > L-LUT, and fixed (i) ≈ ½ float (i).
	inputs := domainInputs(Sin, 1024)
	cycles := func(m Method, interp bool) float64 {
		pt, err := MeasureOperator(Sin, Params{Method: m, Interp: interp, SizeLog2: 10}, inputs)
		if err != nil {
			t.Fatal(err)
		}
		return pt.CyclesPerElem
	}
	mi, li := cycles(MLUT, true), cycles(LLUT, true)
	mn, ln := cycles(MLUT, false), cycles(LLUT, false)
	fi := cycles(LLUTFixed, true)
	if !(mi > li && li > ln) {
		t.Errorf("ordering M-LUTi(%v) > L-LUTi(%v) > L-LUT(%v) violated", mi, li, ln)
	}
	if !(mn > ln) {
		t.Errorf("M-LUT (%v) must exceed L-LUT (%v)", mn, ln)
	}
	if r := li / fi; r < 1.6 || r > 3.5 {
		t.Errorf("fixed interpolated L-LUT speedup %v, want ~2×", r)
	}
	if r := li / mi; r < 0.35 || r > 0.65 {
		t.Errorf("L-LUTi/M-LUTi = %v, want ~0.5", r)
	}
	if r := ln / mn; r > 0.35 {
		t.Errorf("L-LUT/M-LUT = %v, want ≲0.3 (~80%% cut)", r)
	}
}

func TestFig5CORDICLUTFasterThanCORDIC(t *testing.T) {
	inputs := domainInputs(Sin, 512)
	pure, err := MeasureOperator(Sin, Params{Method: CORDIC, Iterations: 30}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := MeasureOperator(Sin, Params{Method: CORDICLUT, Iterations: 22, HeadBits: 10}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.CyclesPerElem >= pure.CyclesPerElem {
		t.Fatalf("CORDIC+LUT (%v) must be faster than CORDIC (%v)",
			hybrid.CyclesPerElem, pure.CyclesPerElem)
	}
	if hybrid.Errors.RMSE > pure.Errors.RMSE*10 {
		t.Fatalf("hybrid accuracy (%v) must stay near pure CORDIC (%v)",
			hybrid.Errors.RMSE, pure.Errors.RMSE)
	}
}

func TestFig5MRAMvsWRAM(t *testing.T) {
	// Observation 4: placement does not change cycles at full pipeline,
	// but WRAM caps the reachable accuracy.
	inputs := domainInputs(Sin, 1024)
	w, err := MeasureOperator(Sin, Params{Method: LLUT, Interp: true, SizeLog2: 12, Placement: pimsim.InWRAM}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureOperator(Sin, Params{Method: LLUT, Interp: true, SizeLog2: 12, Placement: pimsim.InMRAM}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(w.CyclesPerElem-m.CyclesPerElem) / w.CyclesPerElem; rel > 0.05 {
		t.Fatalf("WRAM (%v) vs MRAM (%v) cycles differ %v%%", w.CyclesPerElem, m.CyclesPerElem, rel*100)
	}
	// A 2^17-entry table no longer fits WRAM but still fits MRAM.
	if _, err := Build(Sin, Params{Method: LLUT, SizeLog2: 17, Placement: pimsim.InWRAM}, newDPU()); err == nil {
		t.Fatal("oversized LUT must fail in WRAM")
	}
	if _, err := Build(Sin, Params{Method: LLUT, SizeLog2: 17, Placement: pimsim.InMRAM}, newDPU()); err != nil {
		t.Fatalf("oversized LUT must load in MRAM: %v", err)
	}
}

func TestFig5PolySlowerThanLUTAtAccuracy(t *testing.T) {
	// The Taylor-approximation argument of §4.2.1: reaching LUT-grade
	// accuracy by polynomial costs several× the cycles.
	inputs := domainInputs(Sin, 1024)
	lut, err := MeasureOperator(Sin, Params{Method: LLUT, Interp: true, SizeLog2: 12}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := MeasureOperator(Sin, Params{Method: Poly, Degree: 9}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CyclesPerElem < 3*lut.CyclesPerElem {
		t.Fatalf("poly (%v) should be ≥3× interpolated L-LUT (%v)", pl.CyclesPerElem, lut.CyclesPerElem)
	}
}

// --- Figure 6 shape assertions ---

func TestFig6SetupTimes(t *testing.T) {
	inputs := domainInputs(Sin, 256)
	// CORDIC setup is flat in accuracy; LUT setup grows with table size.
	c1, _ := MeasureOperator(Sin, Params{Method: CORDIC, Iterations: 12}, inputs)
	c2, _ := MeasureOperator(Sin, Params{Method: CORDIC, Iterations: 36}, inputs)
	l1, _ := MeasureOperator(Sin, Params{Method: LLUT, SizeLog2: 8}, inputs)
	l2, _ := MeasureOperator(Sin, Params{Method: LLUT, SizeLog2: 18, Placement: pimsim.InMRAM}, inputs)
	if c2.SetupSeconds > 20*c1.SetupSeconds+1e-4 {
		t.Errorf("CORDIC setup should stay flat: %v → %v", c1.SetupSeconds, c2.SetupSeconds)
	}
	if l2.SetupSeconds < 10*l1.SetupSeconds {
		t.Errorf("LUT setup should grow with size: %v → %v", l1.SetupSeconds, l2.SetupSeconds)
	}
	// At the largest size, LUT setup exceeds CORDIC setup (the
	// crossover of Key Takeaway 2).
	if l2.SetupSeconds <= c2.SetupSeconds {
		t.Errorf("large LUT setup (%v) must exceed CORDIC setup (%v)", l2.SetupSeconds, c2.SetupSeconds)
	}
}

func TestKeyTakeaway2Amortization(t *testing.T) {
	// CORDIC is preferable for kernels computing only a few
	// transcendental operations: with per-op cycle advantage Δc and
	// setup-time disadvantage Δs, the LUT needs Δs/(Δc/clock)
	// operations to break even — a small number (paper: ~40).
	inputs := domainInputs(Sin, 1024)
	cord, _ := MeasureOperator(Sin, Params{Method: CORDIC, Iterations: 30}, inputs)
	lut, _ := MeasureOperator(Sin, Params{Method: LLUT, Interp: true, SizeLog2: 14, Placement: pimsim.InMRAM}, inputs)
	dCycles := cord.CyclesPerElem - lut.CyclesPerElem
	if dCycles <= 0 {
		t.Fatal("CORDIC must cost more cycles per element than L-LUT")
	}
	dSetup := lut.SetupSeconds - cord.SetupSeconds
	if dSetup <= 0 {
		t.Fatal("L-LUT must cost more setup than CORDIC")
	}
	breakEven := dSetup / (dCycles / pimsim.DefaultClockHz)
	if breakEven < 1 || breakEven > 1e6 {
		t.Fatalf("break-even at %v ops is implausible", breakEven)
	}
	t.Logf("L-LUT amortizes its setup after ~%.0f sine operations (paper: ~40)", breakEven)
}

// --- Figure 7 shape assertions ---

func TestFig7MemoryShapes(t *testing.T) {
	inputs := domainInputs(Sin, 128)
	// Non-interpolated LUT memory grows ~4× per 2-step of SizeLog2…
	l1, _ := MeasureOperator(Sin, Params{Method: LLUT, SizeLog2: 10}, inputs)
	l2, _ := MeasureOperator(Sin, Params{Method: LLUT, SizeLog2: 14, Placement: pimsim.InMRAM}, inputs)
	if l2.TableBytes < 8*l1.TableBytes {
		t.Errorf("LUT memory should grow exponentially: %d → %d", l1.TableBytes, l2.TableBytes)
	}
	// …while CORDIC memory grows linearly with iterations.
	c1, _ := MeasureOperator(Sin, Params{Method: CORDIC, Iterations: 12}, inputs)
	c2, _ := MeasureOperator(Sin, Params{Method: CORDIC, Iterations: 36}, inputs)
	if c2.TableBytes > 4*c1.TableBytes {
		t.Errorf("CORDIC memory should grow only linearly: %d → %d", c1.TableBytes, c2.TableBytes)
	}
	// Interpolation raises accuracy at equal memory (observation 3).
	ni, _ := MeasureOperator(Sin, Params{Method: LLUT, SizeLog2: 12}, domainInputs(Sin, 2048))
	ip, _ := MeasureOperator(Sin, Params{Method: LLUT, Interp: true, SizeLog2: 12}, domainInputs(Sin, 2048))
	if ip.Errors.RMSE >= ni.Errors.RMSE/10 {
		t.Errorf("interpolation should cut RMSE ≥10× at equal memory: %v vs %v",
			ip.Errors.RMSE, ni.Errors.RMSE)
	}
}

// --- §4.2.4 assertions ---

func TestTangent2to3xSine(t *testing.T) {
	inputs := domainInputs(Sin, 1024)
	for _, m := range []Method{CORDIC, LLUT, MLUT} {
		pSin := Params{Method: m, Interp: true, SizeLog2: 10, Iterations: 30}
		pTan := pSin
		sin, err := MeasureOperator(Sin, pSin, inputs)
		if err != nil {
			t.Fatal(err)
		}
		tan, err := MeasureOperator(Tan, pTan, inputs)
		if err != nil {
			t.Fatal(err)
		}
		r := tan.CyclesPerElem / sin.CyclesPerElem
		if r < 1.15 || r > 4.5 {
			t.Errorf("%v: tan/sin cycle ratio %v, want ~1.2-4 (sine+cosine+division)", m, r)
		}
	}
}

func TestKeyTakeaway4(t *testing.T) {
	// D-LUT/DL-LUT on tanh (no range extension, ~linear) are ~2× faster
	// than an interpolated L-LUT sine that pays its 2π reduction, at
	// similar accuracy.
	sinInputs := stats.RandomInputs(-20, 20, 2048, 3)
	tanhInputs := domainInputs(Tanh, 2048)
	sinOp, err := MeasureOperator(Sin, Params{Method: LLUT, Interp: true, SizeLog2: 12, WideRange: true}, sinInputs)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := MeasureOperator(Tanh, Params{Method: DLLUT, Interp: true, SizeLog2: 12}, tanhInputs)
	if err != nil {
		t.Fatal(err)
	}
	r := sinOp.CyclesPerElem / dl.CyclesPerElem
	if r < 1.5 || r > 4 {
		t.Errorf("DL-LUT tanh speedup over wide-range L-LUTi sine = %v, want ~2×", r)
	}
}

func TestSweepDefaultSizesCoverMethods(t *testing.T) {
	for _, m := range Methods() {
		if len(DefaultSizes(m)) < 4 {
			t.Errorf("DefaultSizes(%v) too short", m)
		}
	}
}

func TestFig5CurvesComplete(t *testing.T) {
	curves := Fig5Curves(Sin)
	// sine: cordic, cordic+lut, + {m,l,fixed} × {interp?} × {wram,mram} = 2+12
	if len(curves) != 14 {
		t.Fatalf("Fig5Curves(sin) = %d curves, want 14", len(curves))
	}
	curves = Fig5Curves(Tanh)
	// tanh: cordic + {m,l,fixed,d,dl} × 2 × 2 = 1+20
	if len(curves) != 21 {
		t.Fatalf("Fig5Curves(tanh) = %d curves, want 21", len(curves))
	}
}

func TestPointString(t *testing.T) {
	pt, err := MeasureOperator(Sin, Params{Method: LLUT}, domainInputs(Sin, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pt.String(), "l-lut") {
		t.Error("Point.String must include the method label")
	}
}

func TestParamsLabel(t *testing.T) {
	cases := []struct {
		p    Params
		want string
	}{
		{Params{Method: LLUT, Interp: true, SizeLog2: 10}, "l-lut(i) n=10 wram"},
		{Params{Method: CORDIC, Iterations: 24}, "cordic it=24 wram"},
		{Params{Method: Poly, Degree: 7, Placement: pimsim.InMRAM}, "poly deg=7 mram"},
		{Params{Method: CORDICLUT, HeadBits: 8, Iterations: 16}, "cordic+lut head=8 it=16 wram"},
	}
	for _, c := range cases {
		if got := c.p.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
}

// --- extension functions (atan, sigmoid) ---

func TestAtanCORDICVectoring(t *testing.T) {
	dpu := newDPU()
	op, err := Build(Atan, Params{Method: CORDIC, Iterations: 32}, dpu)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dpu.NewCtx()
	for _, x := range []float64{-7.5, -2, -0.5, 0, 0.3, 1, 4, 7.9} {
		got := float64(op.Eval(ctx, float32(x)))
		if math.Abs(got-math.Atan(x)) > 1e-6 {
			t.Errorf("cordic atan(%v) = %v, want %v", x, got, math.Atan(x))
		}
	}
}

func TestAtanPolyReciprocalReduction(t *testing.T) {
	dpu := newDPU()
	op, err := Build(Atan, Params{Method: Poly, Degree: 13}, dpu)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dpu.NewCtx()
	var worst float64
	for x := -7.9; x <= 7.9; x += 0.01 {
		got := float64(op.Eval(ctx, float32(x)))
		if e := math.Abs(got - math.Atan(x)); e > worst {
			worst = e
		}
	}
	if worst > 1e-6 {
		t.Fatalf("poly atan max error %v", worst)
	}
}

func TestSigmoidDLUTSuitability(t *testing.T) {
	// KT4 extended: sigmoid, like tanh, is approximately linear and
	// needs no range extension, so interpolated DL-LUT should be both
	// fast and accurate.
	inputs := domainInputs(Sigmoid, 2048)
	dl, err := MeasureOperator(Sigmoid, Params{Method: DLLUT, Interp: true, SizeLog2: 12}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	li, err := MeasureOperator(Sigmoid, Params{Method: LLUT, Interp: true, SizeLog2: 12}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if dl.CyclesPerElem >= li.CyclesPerElem {
		t.Errorf("DL-LUT sigmoid (%v cyc) should beat L-LUT (%v cyc)",
			dl.CyclesPerElem, li.CyclesPerElem)
	}
	if dl.Errors.RMSE > 10*li.Errors.RMSE {
		t.Errorf("DL-LUT sigmoid accuracy %v too far from L-LUT %v",
			dl.Errors.RMSE, li.Errors.RMSE)
	}
}

func TestFixedSymmetryFixups(t *testing.T) {
	// The fixed-point folds: tanh/atan odd, GELU(−x)=GELU(x)−x,
	// σ(−x)=1−σ(x).
	for _, fn := range []Function{Tanh, GELU, Atan, Sigmoid} {
		dpu := newDPU()
		op, err := Build(fn, Params{Method: LLUTFixed, Interp: true, SizeLog2: 12}, dpu)
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		ctx := dpu.NewCtx()
		ref := fn.Ref()
		for _, x := range []float64{-7.5, -3.3, -1, -0.1} {
			got := float64(op.Eval(ctx, float32(x)))
			if math.Abs(got-ref(x)) > 2e-5 {
				t.Errorf("fixed %v(%v) = %v, want %v", fn, x, got, ref(x))
			}
		}
	}
}

func TestAtanSigmoidInSupportMatrix(t *testing.T) {
	if !DLUT.Supports(Sigmoid) || !DLLUT.Supports(Atan) {
		t.Error("D-LUT family must cover the extension functions")
	}
	if CORDICLUT.Supports(Atan) {
		t.Error("CORDIC+LUT remains circular-rotation only")
	}
	if !CORDIC.Supports(Atan) || !CORDIC.Supports(Sigmoid) {
		t.Error("CORDIC must cover atan (vectoring) and sigmoid (via exp)")
	}
}

// TestGoldenCycleCounts locks the deterministic per-element cycle
// counts of the headline sine configurations. These are the numbers
// EXPERIMENTS.md documents; a cost-model change that moves them should
// be deliberate (update both this test and the docs).
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		p    Params
		want float64
	}{
		{Params{Method: LLUT, SizeLog2: 10}, 23},
		{Params{Method: LLUTFixed, SizeLog2: 10}, 61},
		{Params{Method: LLUTFixed, Interp: true, SizeLog2: 10}, 100},
		{Params{Method: MLUT, SizeLog2: 10}, 186},
		{Params{Method: LLUT, Interp: true, SizeLog2: 10}, 247},
		{Params{Method: MLUT, Interp: true, SizeLog2: 10}, 494},
	}
	inputs := stats.UniformInputs(0.1, 6.1, 64)
	for _, g := range golden {
		pt, err := MeasureOperator(Sin, g.p, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if pt.CyclesPerElem != g.want {
			t.Errorf("%s: %v cycles/elem, golden %v", g.p.Label(), pt.CyclesPerElem, g.want)
		}
	}
}

func TestLogSqrtDomainGuards(t *testing.T) {
	for _, m := range []Method{CORDIC, LLUT, MLUT, LLUTFixed, Poly} {
		dpu := newDPU()
		logOp, err := Build(Log, Params{Method: m, SizeLog2: 10, Placement: pimsim.InMRAM}, dpu)
		if err != nil {
			t.Fatal(err)
		}
		sqrtOp, err := Build(Sqrt, Params{Method: m, SizeLog2: 10, Placement: pimsim.InMRAM}, dpu)
		if err != nil {
			t.Fatal(err)
		}
		ctx := dpu.NewCtx()
		if got := logOp.Eval(ctx, -1); got == got { // NaN check
			t.Errorf("%v: log(-1) = %v, want NaN", m, got)
		}
		if got := logOp.Eval(ctx, 0); !math.IsInf(float64(got), -1) {
			t.Errorf("%v: log(0) = %v, want -Inf", m, got)
		}
		if got := sqrtOp.Eval(ctx, -4); got == got {
			t.Errorf("%v: sqrt(-4) = %v, want NaN", m, got)
		}
		if got := sqrtOp.Eval(ctx, 0); got != 0 {
			t.Errorf("%v: sqrt(0) = %v, want 0", m, got)
		}
	}
}
