// Package stats computes the accuracy metrics of §4.1.1: root-mean-
// square absolute error (RMSE), maximum absolute error, and error in
// units of last place (ULP), always against a double-precision host
// reference.
package stats

import (
	"fmt"
	"math"

	"transpimlib/internal/fpbits"
)

// Errors summarizes the deviation of a set of computed values from
// their references.
type Errors struct {
	N       int
	RMSE    float64 // √(mean of squared absolute errors)
	MaxAbs  float64
	MeanAbs float64
	MaxULP  float64 // max |error| / ulp(reference), reference in float32
	// RelRMSE is the root-mean-square of |error|/|reference| over
	// references of meaningful magnitude (|ref| > 1e-30) — the metric
	// of choice for functions whose outputs span decades (tan near its
	// poles, exp over wide ranges).
	RelRMSE float64
}

// String formats the metrics compactly.
func (e Errors) String() string {
	return fmt.Sprintf("rmse=%.3g max=%.3g mean=%.3g relrmse=%.3g maxulp=%.1f (n=%d)",
		e.RMSE, e.MaxAbs, e.MeanAbs, e.RelRMSE, e.MaxULP, e.N)
}

// Collector accumulates errors incrementally.
type Collector struct {
	n        int
	sumSq    float64
	sumAbs   float64
	maxAbs   float64
	maxULP   float64
	sumRelSq float64
	nRel     int
}

// Add records one (computed, reference) pair. Non-finite pairs where
// both sides agree (both +Inf, both NaN) count as exact; disagreeing
// non-finite pairs count as the worst observed error so far plus one
// ULP step, keeping the collector finite.
func (c *Collector) Add(got float32, want float64) {
	c.n++
	g := float64(got)
	if math.IsNaN(g) && math.IsNaN(want) {
		return
	}
	if math.IsInf(g, 1) && math.IsInf(want, 1) || math.IsInf(g, -1) && math.IsInf(want, -1) {
		return
	}
	err := math.Abs(g - want)
	if math.IsNaN(err) || math.IsInf(err, 0) {
		err = math.MaxFloat32
	}
	c.sumSq += err * err
	c.sumAbs += err
	if err > c.maxAbs {
		c.maxAbs = err
	}
	if u := float64(fpbits.ULP(float32(want))); u > 0 && !math.IsNaN(u) {
		if ulps := err / u; ulps > c.maxULP {
			c.maxULP = ulps
		}
	}
	if a := math.Abs(want); a > 1e-30 {
		rel := err / a
		c.sumRelSq += rel * rel
		c.nRel++
	}
}

// Result returns the accumulated metrics.
func (c *Collector) Result() Errors {
	if c.n == 0 {
		return Errors{}
	}
	e := Errors{
		N:       c.n,
		RMSE:    math.Sqrt(c.sumSq / float64(c.n)),
		MaxAbs:  c.maxAbs,
		MeanAbs: c.sumAbs / float64(c.n),
		MaxULP:  c.maxULP,
	}
	if c.nRel > 0 {
		e.RelRMSE = math.Sqrt(c.sumRelSq / float64(c.nRel))
	}
	return e
}

// Measure evaluates approx against ref on the given inputs.
func Measure(inputs []float32, approx func(float32) float32, ref func(float64) float64) Errors {
	var c Collector
	for _, x := range inputs {
		c.Add(approx(x), ref(float64(x)))
	}
	return c.Result()
}

// UniformInputs returns n evenly spaced float32 samples over [lo, hi].
func UniformInputs(lo, hi float64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(lo + (hi-lo)*float64(i)/float64(n-1))
	}
	return out
}

// RandomInputs returns n pseudo-random float32 samples uniform over
// [lo, hi), from a fixed-seed xorshift generator so runs reproduce
// (the microbenchmarks use 2¹⁶ random uniform values, §4.1.1).
func RandomInputs(lo, hi float64, n int, seed uint64) []float32 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	out := make([]float32, n)
	s := seed
	for i := range out {
		// xorshift64*
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		u := float64(s*0x2545F4914F6CDD1D>>11) / float64(1<<53)
		out[i] = float32(lo + (hi-lo)*u)
	}
	return out
}
