// Package stats computes the accuracy metrics of §4.1.1: root-mean-
// square absolute error (RMSE), maximum absolute error, and error in
// units of last place (ULP), always against a double-precision host
// reference.
package stats

import (
	"fmt"
	"math"

	"transpimlib/internal/fpbits"
)

// Errors summarizes the deviation of a set of computed values from
// their references. The JSON tags make it directly embeddable in
// accuracy snapshots (the /debug/accuracy endpoint and the offline
// tplaccuracy -json report share this shape, so the numbers are
// bit-comparable).
type Errors struct {
	N       int     `json:"n"`
	RMSE    float64 `json:"rmse"`    // √(mean of squared absolute errors)
	MaxAbs  float64 `json:"max_abs"`
	MeanAbs float64 `json:"mean_abs"`
	MaxULP  float64 `json:"max_ulp"` // max |error| / ulp(reference), reference in float32
	// RelRMSE is the root-mean-square of |error|/|reference| over
	// references of meaningful magnitude (|ref| > 1e-30) — the metric
	// of choice for functions whose outputs span decades (tan near its
	// poles, exp over wide ranges).
	RelRMSE float64 `json:"rel_rmse"`
}

// String formats the metrics compactly.
func (e Errors) String() string {
	return fmt.Sprintf("rmse=%.3g max=%.3g mean=%.3g relrmse=%.3g maxulp=%.1f (n=%d)",
		e.RMSE, e.MaxAbs, e.MeanAbs, e.RelRMSE, e.MaxULP, e.N)
}

// Collector accumulates errors incrementally.
type Collector struct {
	n        int
	sumSq    float64
	sumAbs   float64
	maxAbs   float64
	maxULP   float64
	sumRelSq float64
	nRel     int
}

// Deviation is the single error-math kernel every accuracy surface in
// the repo shares — the offline Collector (tplaccuracy, sweeps) and
// the online shadow sampler (internal/accwatch) both call it, so
// their numbers are bit-comparable by construction. It returns the
// absolute error and the error in units of last place of the float32
// reference. exact reports a non-finite pair where both sides agree
// (both +Inf, both NaN): such pairs count as error-free and carry no
// meaningful relative error. Disagreeing non-finite pairs saturate
// the absolute error at MaxFloat32, keeping downstream aggregates
// finite.
func Deviation(got float32, want float64) (abs, ulps float64, exact bool) {
	g := float64(got)
	if math.IsNaN(g) && math.IsNaN(want) {
		return 0, 0, true
	}
	if math.IsInf(g, 1) && math.IsInf(want, 1) || math.IsInf(g, -1) && math.IsInf(want, -1) {
		return 0, 0, true
	}
	abs = math.Abs(g - want)
	if math.IsNaN(abs) || math.IsInf(abs, 0) {
		abs = math.MaxFloat32
	}
	if u := float64(fpbits.ULP(float32(want))); u > 0 && !math.IsNaN(u) {
		ulps = abs / u
	}
	return abs, ulps, false
}

// Add records one (computed, reference) pair using Deviation's error
// math.
func (c *Collector) Add(got float32, want float64) {
	c.n++
	abs, ulps, exact := Deviation(got, want)
	if exact {
		return
	}
	c.sumSq += abs * abs
	c.sumAbs += abs
	if abs > c.maxAbs {
		c.maxAbs = abs
	}
	if ulps > c.maxULP {
		c.maxULP = ulps
	}
	if a := math.Abs(want); a > 1e-30 {
		rel := abs / a
		c.sumRelSq += rel * rel
		c.nRel++
	}
}

// Result returns the accumulated metrics.
func (c *Collector) Result() Errors {
	if c.n == 0 {
		return Errors{}
	}
	e := Errors{
		N:       c.n,
		RMSE:    math.Sqrt(c.sumSq / float64(c.n)),
		MaxAbs:  c.maxAbs,
		MeanAbs: c.sumAbs / float64(c.n),
		MaxULP:  c.maxULP,
	}
	if c.nRel > 0 {
		e.RelRMSE = math.Sqrt(c.sumRelSq / float64(c.nRel))
	}
	return e
}

// Measure evaluates approx against ref on the given inputs.
func Measure(inputs []float32, approx func(float32) float32, ref func(float64) float64) Errors {
	var c Collector
	for _, x := range inputs {
		c.Add(approx(x), ref(float64(x)))
	}
	return c.Result()
}

// UniformInputs returns n evenly spaced float32 samples over [lo, hi].
func UniformInputs(lo, hi float64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(lo + (hi-lo)*float64(i)/float64(n-1))
	}
	return out
}

// RandomInputs returns n pseudo-random float32 samples uniform over
// [lo, hi), from a fixed-seed xorshift generator so runs reproduce
// (the microbenchmarks use 2¹⁶ random uniform values, §4.1.1).
func RandomInputs(lo, hi float64, n int, seed uint64) []float32 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	out := make([]float32, n)
	s := seed
	for i := range out {
		// xorshift64*
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		u := float64(s*0x2545F4914F6CDD1D>>11) / float64(1<<53)
		out[i] = float32(lo + (hi-lo)*u)
	}
	return out
}
