package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCollectorExact(t *testing.T) {
	var c Collector
	c.Add(1.5, 1.5)
	c.Add(-2, -2)
	r := c.Result()
	if r.RMSE != 0 || r.MaxAbs != 0 || r.N != 2 {
		t.Fatalf("exact values should give zero error: %+v", r)
	}
}

func TestCollectorKnownValues(t *testing.T) {
	var c Collector
	c.Add(1.0, 1.1) // err 0.1
	c.Add(2.0, 2.3) // err 0.3
	r := c.Result()
	wantRMSE := math.Sqrt((0.1*0.1 + 0.3*0.3) / 2)
	if math.Abs(r.RMSE-wantRMSE) > 1e-6 {
		t.Errorf("RMSE = %v, want %v", r.RMSE, wantRMSE)
	}
	if math.Abs(r.MaxAbs-0.3) > 1e-6 {
		t.Errorf("MaxAbs = %v, want 0.3", r.MaxAbs)
	}
	if math.Abs(r.MeanAbs-0.2) > 1e-6 {
		t.Errorf("MeanAbs = %v, want 0.2", r.MeanAbs)
	}
}

func TestCollectorULP(t *testing.T) {
	var c Collector
	// Error of exactly 1 ULP at 1.0 (2^-23).
	c.Add(1.0+1.1920929e-7, 1.0)
	r := c.Result()
	if r.MaxULP < 0.99 || r.MaxULP > 1.01 {
		t.Fatalf("MaxULP = %v, want ~1", r.MaxULP)
	}
}

func TestCollectorNonFinite(t *testing.T) {
	var c Collector
	nan := float32(math.NaN())
	c.Add(nan, math.NaN()) // agreeing NaN = exact
	c.Add(float32(math.Inf(1)), math.Inf(1))
	r := c.Result()
	if r.MaxAbs != 0 {
		t.Fatalf("agreeing non-finite values should be exact: %+v", r)
	}
	c.Add(nan, 1.0) // disagreement is penalized but finite
	r = c.Result()
	if math.IsNaN(r.RMSE) || math.IsInf(r.RMSE, 0) {
		t.Fatalf("metrics must stay finite: %+v", r)
	}
}

func TestEmptyCollector(t *testing.T) {
	var c Collector
	if r := c.Result(); r.N != 0 || r.RMSE != 0 {
		t.Fatalf("empty collector: %+v", r)
	}
}

func TestMeasure(t *testing.T) {
	inputs := UniformInputs(0, 1, 100)
	e := Measure(inputs,
		func(x float32) float32 { return x + 0.001 },
		func(x float64) float64 { return x })
	if math.Abs(e.MaxAbs-0.001) > 1e-5 {
		t.Fatalf("MaxAbs = %v", e.MaxAbs)
	}
	if e.N != 100 {
		t.Fatalf("N = %d", e.N)
	}
}

func TestUniformInputsEndpoints(t *testing.T) {
	in := UniformInputs(-2, 3, 11)
	if in[0] != -2 || in[10] != 3 {
		t.Fatalf("endpoints wrong: %v %v", in[0], in[10])
	}
	if len(in) != 11 {
		t.Fatalf("len = %d", len(in))
	}
}

func TestRandomInputsDeterministic(t *testing.T) {
	a := RandomInputs(0, 1, 64, 42)
	b := RandomInputs(0, 1, 64, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	c := RandomInputs(0, 1, 64, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestPropRandomInputsInRange(t *testing.T) {
	f := func(seed uint64) bool {
		for _, v := range RandomInputs(2, 5, 50, seed) {
			if v < 2 || v >= 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropRMSEBounds(t *testing.T) {
	// RMSE is always between mean and max absolute error.
	f := func(errs []float32) bool {
		if len(errs) == 0 {
			return true
		}
		var c Collector
		for _, e := range errs {
			if math.IsNaN(float64(e)) || math.IsInf(float64(e), 0) {
				return true
			}
			c.Add(e, 0)
		}
		r := c.Result()
		return r.RMSE >= r.MeanAbs-1e-9 && r.RMSE <= r.MaxAbs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestErrorsString(t *testing.T) {
	var c Collector
	c.Add(1, 1.25)
	s := c.Result().String()
	if s == "" {
		t.Fatal("String should not be empty")
	}
}

func TestRelRMSE(t *testing.T) {
	var c Collector
	c.Add(101, 100) // rel err 0.01
	c.Add(202, 200) // rel err 0.01
	r := c.Result()
	if math.Abs(r.RelRMSE-0.01) > 1e-9 {
		t.Fatalf("RelRMSE = %v, want 0.01", r.RelRMSE)
	}
	// Near-zero references are excluded from the relative metric.
	var c2 Collector
	c2.Add(1e-3, 0)
	if got := c2.Result().RelRMSE; got != 0 {
		t.Fatalf("RelRMSE with zero reference = %v, want 0", got)
	}
}
