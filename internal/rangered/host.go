package rangered

import (
	"transpimlib/internal/fpbits"
	"transpimlib/internal/pimsim"
)

// Unmetered host twins of the device reductions, for the batch-
// evaluation fast path. Each replays the float32 operation order of
// its device form exactly, so values are bit-identical; the quadrant /
// parity results double as the cost-class discriminators the batch
// accounting charges per branch.

// FoldQuadrantHost mirrors FoldQuadrant.
func FoldQuadrantHost(r float32) (float32, Quadrant) {
	var q Quadrant
	for q = 0; q < 3; q++ {
		if r < HalfPi {
			break
		}
		r = r - HalfPi
	}
	return r, q
}

// ApplySinQuadrantHost mirrors ApplySinQuadrant.
func ApplySinQuadrantHost(sin, cos float32, q Quadrant) float32 {
	switch q & 3 {
	case 0:
		return sin
	case 1:
		return cos
	case 2:
		return -sin
	default:
		return -cos
	}
}

// ApplyCosQuadrantHost mirrors ApplyCosQuadrant.
func ApplyCosQuadrantHost(sin, cos float32, q Quadrant) float32 {
	switch q & 3 {
	case 0:
		return cos
	case 1:
		return -sin
	case 2:
		return -cos
	default:
		return sin
	}
}

// SplitExpHost mirrors SplitExp.
func SplitExpHost(x float32) (r float32, k int32) {
	k = pimsim.RoundToEven32(x * Log2E)
	kf := float32(k)
	r = x - kf*Ln2Hi
	r = r - kf*Ln2Lo
	return r, k
}

// JoinExpHost mirrors JoinExp.
func JoinExpHost(expR float32, k int32) float32 { return fpbits.Ldexp(expR, int(k)) }

// SplitExpHostMany runs SplitExpHost over a slice, filling the reduced
// arguments and scale exponents; bit-identical to per-element calls.
func SplitExpHostMany(xs []float32, rs []float32, ks []int32) {
	rs = rs[:len(xs)]
	ks = ks[:len(xs)]
	for i, x := range xs {
		k := pimsim.RoundToEven32(x * Log2E)
		kf := float32(k)
		r := x - kf*Ln2Hi
		rs[i] = r - kf*Ln2Lo
		ks[i] = k
	}
}

// SplitLogHost mirrors SplitLog.
func SplitLogHost(x float32) (m float32, e int32) {
	mf, ei := fpbits.Frexp(x)
	return mf, int32(ei)
}

// JoinLogHost mirrors JoinLog.
func JoinLogHost(logM float32, e int32) float32 { return logM + float32(e)*Ln2 }

// SplitLogHostMany runs SplitLogHost over a slice.
func SplitLogHostMany(xs []float32, ms []float32, es []int32) {
	ms = ms[:len(xs)]
	es = es[:len(xs)]
	for i, x := range xs {
		mf, ei := fpbits.Frexp(x)
		ms[i] = mf
		es[i] = int32(ei)
	}
}

// SplitSqrtHost mirrors SplitSqrt; odd reports whether the exponent-
// parity fold ran (the branch the batch cost accounting charges).
func SplitSqrtHost(x float32) (m float32, h int32, odd bool) {
	mf, e := fpbits.Frexp(x)
	if e&1 != 0 {
		mf = fpbits.Ldexp(mf, 1)
		e--
		odd = true
	}
	return mf, int32(e / 2), odd
}

// JoinSqrtHost mirrors JoinSqrt.
func JoinSqrtHost(sqrtM float32, h int32) float32 { return fpbits.Ldexp(sqrtM, int(h)) }
