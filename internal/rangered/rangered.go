// Package rangered implements the range reductions and extensions of
// §2.2.3: periodic reduction and quadrant folding for trigonometric
// functions, and exponent/mantissa splits for exponentiation,
// logarithm and square root. These are the per-function conversion
// costs Figure 8 measures.
//
// Each reduction has a device form (charging PIM cycles through a Ctx)
// and, where useful, a Q3.28 fixed-point form.
package rangered

import (
	"math"

	"transpimlib/internal/fixed"
	"transpimlib/internal/pimsim"
)

// Float32 constants used by the reductions.
const (
	TwoPi    = float32(2 * math.Pi)
	Pi       = float32(math.Pi)
	HalfPi   = float32(math.Pi / 2)
	InvTwoPi = float32(1 / (2 * math.Pi))
	Ln2      = float32(math.Ln2)
	Log2E    = float32(math.Log2E)
)

// Cody–Waite split of 2π (high part exact for |k| < 2¹²).
const (
	TwoPiHi = float32(6.28125)
	TwoPiLo = float32(1.9353072e-03)
)

// To2Pi reduces any finite x to r ∈ [0, 2π): r = x − ⌊x/2π⌋·2π, with
// the subtraction in two-constant Cody–Waite form so cancellation does
// not destroy the residual for large |x|. Cost: three float multiplies,
// two subtracts and two conversions — the most expensive reduction in
// Figure 8, which is why the sine microbenchmarks (whose inputs
// already live in [0, 2π]) skip it.
func To2Pi(ctx *pimsim.Ctx, x float32) float32 {
	k := ctx.FToIFloor(ctx.FMul(x, InvTwoPi))
	kf := ctx.IToF(k)
	r := ctx.FSub(x, ctx.FMul(kf, TwoPiHi))
	r = ctx.FSub(r, ctx.FMul(kf, TwoPiLo))
	// One guard compare: float rounding can land r marginally outside.
	ctx.Branch()
	if ctx.FCmp(r, 0) < 0 {
		r = ctx.FAdd(r, TwoPi)
	} else if ctx.FCmp(r, TwoPi) >= 0 {
		r = ctx.FSub(r, TwoPi)
	}
	return r
}

// Quadrant identifies which quarter of the period an angle fell in.
type Quadrant int32

// FoldQuadrant reduces r ∈ [0, 2π) to θ ∈ [0, π/2] plus the quadrant,
// for methods (CORDIC) whose core range is a quarter period
// (Fig. 3(a), step 3). Cost: one multiply-free scaled compare chain —
// we charge the two compares and subtracts the device executes.
func FoldQuadrant(ctx *pimsim.Ctx, r float32) (float32, Quadrant) {
	var q Quadrant
	for q = 0; q < 3; q++ {
		ctx.Branch()
		if ctx.FCmp(r, HalfPi) < 0 {
			break
		}
		r = ctx.FSub(r, HalfPi)
	}
	return r, q
}

// ApplySinQuadrant reconstructs sin(x) from (sin θ, cos θ) of the
// folded angle: sin(qπ/2 + θ) = {sin θ, cos θ, −sin θ, −cos θ}[q]
// (Fig. 3(a), step 5). Cost: a two-way branch and possibly a sign flip.
func ApplySinQuadrant(ctx *pimsim.Ctx, sin, cos float32, q Quadrant) float32 {
	ctx.Branch()
	switch q & 3 {
	case 0:
		return sin
	case 1:
		return cos
	case 2:
		return ctx.FNeg(sin)
	default:
		return ctx.FNeg(cos)
	}
}

// ApplyCosQuadrant reconstructs cos(x) analogously:
// cos(qπ/2 + θ) = {cos θ, −sin θ, −cos θ, sin θ}[q].
func ApplyCosQuadrant(ctx *pimsim.Ctx, sin, cos float32, q Quadrant) float32 {
	ctx.Branch()
	switch q & 3 {
	case 0:
		return cos
	case 1:
		return ctx.FNeg(sin)
	case 2:
		return ctx.FNeg(cos)
	default:
		return sin
	}
}

// To2PiFixed reduces a Q3.28 angle (necessarily within (-8, 8)) to
// [0, 2π) with at most two compare-subtract steps — pure integer
// arithmetic, far cheaper than the float path.
func To2PiFixed(ctx *pimsim.Ctx, x fixed.Q3_28) fixed.Q3_28 {
	twoPi := fixed.TwoPi
	for ctx.ICmp(int32(x), int32(twoPi)) >= 0 {
		x = ctx.QSub(x, twoPi)
		ctx.Branch()
	}
	for ctx.ICmp(int32(x), 0) < 0 {
		x = ctx.QAdd(x, twoPi)
		ctx.Branch()
	}
	return x
}

// FoldQuadrantFixed is FoldQuadrant on Q3.28 values.
func FoldQuadrantFixed(ctx *pimsim.Ctx, r fixed.Q3_28) (fixed.Q3_28, Quadrant) {
	var q Quadrant
	for q = 0; q < 3; q++ {
		ctx.Branch()
		if ctx.ICmp(int32(r), int32(fixed.HalfPi)) < 0 {
			break
		}
		r = ctx.QSub(r, fixed.HalfPi)
	}
	return r, q
}

// Cody–Waite split of ln2: Ln2Hi has its 12 low mantissa bits zeroed so
// k·Ln2Hi is exact for |k| < 2¹², and Ln2Lo supplies the remainder.
// This keeps the residual r accurate to ~1 ulp instead of letting the
// reduction error grow with |k|.
const (
	Ln2Hi = float32(0.693145751953125)
	Ln2Lo = float32(1.42860677e-06)
)

// SplitExp prepares exponentiation over the full float range:
// e^x = 2^k · e^r with k = round(x·log₂e) and r = x − k·ln2,
// r ∈ [−ln2/2, ln2/2] (§2.2.3). The subtraction uses the two-constant
// Cody–Waite form (one extra multiply and subtract) so the residual
// stays accurate for large |x|. The caller computes e^r with a narrow-
// range method and rebuilds the result with JoinExp.
func SplitExp(ctx *pimsim.Ctx, x float32) (r float32, k int32) {
	k = ctx.FToIRound(ctx.FMul(x, Log2E))
	kf := ctx.IToF(k)
	r = ctx.FSub(x, ctx.FMul(kf, Ln2Hi))
	r = ctx.FSub(r, ctx.FMul(kf, Ln2Lo))
	return r, k
}

// JoinExp rebuilds e^x = e^r · 2^k with one ldexp.
func JoinExp(ctx *pimsim.Ctx, expR float32, k int32) float32 {
	return ctx.Ldexp(expR, int(k))
}

// SplitLog prepares logarithm over the full positive float range:
// x = m·2^e with m ∈ [0.5, 1), so ln x = ln m + e·ln2 (§2.2.3: "we can
// separate exponent and mantissa"). The split itself is the integer
// frexp bit operation.
func SplitLog(ctx *pimsim.Ctx, x float32) (m float32, e int32) {
	mf, ei := ctx.Frexp(x)
	return mf, int32(ei)
}

// JoinLog rebuilds ln x = ln m + e·ln2: one conversion, one multiply,
// one add.
func JoinLog(ctx *pimsim.Ctx, logM float32, e int32) float32 {
	return ctx.FAdd(logM, ctx.FMul(ctx.IToF(e), Ln2))
}

// SplitSqrt prepares square root over the full positive float range:
// x = m·2^(2h) with m ∈ [0.5, 2), so √x = √m · 2^h. Cost: the frexp
// bit split, one parity test and one conditional ldexp — the cheapest
// reduction in Figure 8.
func SplitSqrt(ctx *pimsim.Ctx, x float32) (m float32, h int32) {
	mf, e := ctx.Frexp(x)
	ctx.Branch()
	if e&1 != 0 { // odd exponent: fold one factor of two into m
		mf = ctx.Ldexp(mf, 1)
		e--
	}
	return mf, int32(e / 2)
}

// JoinSqrt rebuilds √x = √m · 2^h with one ldexp.
func JoinSqrt(ctx *pimsim.Ctx, sqrtM float32, h int32) float32 {
	return ctx.Ldexp(sqrtM, int(h))
}
