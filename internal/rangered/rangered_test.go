package rangered

import (
	"math"
	"testing"
	"testing/quick"

	"transpimlib/internal/fixed"
	"transpimlib/internal/pimsim"
)

func newCtx() *pimsim.Ctx { return pimsim.NewDPU(0, pimsim.Default(), 16).NewCtx() }

func TestTo2PiBasics(t *testing.T) {
	ctx := newCtx()
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{2 * math.Pi, 0},
		{2*math.Pi + 1, 1},
		{100, math.Mod(100, 2*math.Pi)},
		{-1, 2*math.Pi - 1},
		{-100, math.Mod(-100, 2*math.Pi) + 2*math.Pi},
	}
	for _, c := range cases {
		got := float64(To2Pi(ctx, float32(c.in)))
		if math.Abs(got-c.want) > 1e-4*(1+math.Abs(c.in)) {
			t.Errorf("To2Pi(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPropTo2PiInRange(t *testing.T) {
	ctx := newCtx()
	f := func(x float32) bool {
		if x != x || math.Abs(float64(x)) > 1e6 {
			return true
		}
		r := To2Pi(ctx, x)
		return r >= 0 && r < TwoPi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPropTo2PiPreservesSin(t *testing.T) {
	ctx := newCtx()
	f := func(x float32) bool {
		if x != x || math.Abs(float64(x)) > 1e4 {
			return true
		}
		r := To2Pi(ctx, x)
		// Absolute error grows with |x| through cancellation, as on any
		// single-precision mod reduction.
		return math.Abs(math.Sin(float64(r))-math.Sin(float64(x))) < 2e-3*(1+math.Abs(float64(x)))/10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFoldQuadrant(t *testing.T) {
	ctx := newCtx()
	cases := []struct {
		in    float64
		wantQ Quadrant
	}{
		{0.5, 0},
		{math.Pi/2 + 0.5, 1},
		{math.Pi + 0.5, 2},
		{3*math.Pi/2 + 0.5, 3},
	}
	for _, c := range cases {
		theta, q := FoldQuadrant(ctx, float32(c.in))
		if q != c.wantQ {
			t.Errorf("FoldQuadrant(%v) quadrant = %d, want %d", c.in, q, c.wantQ)
		}
		if theta < 0 || float64(theta) > math.Pi/2+1e-5 {
			t.Errorf("FoldQuadrant(%v) theta = %v out of [0, π/2]", c.in, theta)
		}
		if math.Abs(float64(theta)-0.5) > 1e-5 {
			t.Errorf("FoldQuadrant(%v) theta = %v, want 0.5", c.in, theta)
		}
	}
}

func TestQuadrantReconstruction(t *testing.T) {
	ctx := newCtx()
	for x := 0.01; x < 2*math.Pi; x += 0.05 {
		theta, q := FoldQuadrant(ctx, float32(x))
		s := float32(math.Sin(float64(theta)))
		c := float32(math.Cos(float64(theta)))
		gotSin := float64(ApplySinQuadrant(ctx, s, c, q))
		gotCos := float64(ApplyCosQuadrant(ctx, s, c, q))
		if math.Abs(gotSin-math.Sin(x)) > 1e-5 {
			t.Errorf("sin reconstruction at %v: %v want %v (q=%d)", x, gotSin, math.Sin(x), q)
		}
		if math.Abs(gotCos-math.Cos(x)) > 1e-5 {
			t.Errorf("cos reconstruction at %v: %v want %v (q=%d)", x, gotCos, math.Cos(x), q)
		}
	}
}

func TestTo2PiFixed(t *testing.T) {
	ctx := newCtx()
	for _, in := range []float64{0, 1, 6.3, 7.9, -1, -7.9} {
		got := To2PiFixed(ctx, fixed.FromFloat64(in)).Float64()
		want := math.Mod(in, 2*math.Pi)
		if want < 0 {
			want += 2 * math.Pi
		}
		if math.Abs(got-want) > 1e-7 {
			t.Errorf("To2PiFixed(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestFoldQuadrantFixed(t *testing.T) {
	ctx := newCtx()
	for x := 0.01; x < 2*math.Pi; x += 0.1 {
		theta, q := FoldQuadrantFixed(ctx, fixed.FromFloat64(x))
		back := float64(theta.Float64()) + float64(q)*math.Pi/2
		if math.Abs(back-x) > 1e-6 {
			t.Errorf("fixed fold of %v: theta=%v q=%d", x, theta.Float64(), q)
		}
	}
}

func TestSplitJoinExp(t *testing.T) {
	ctx := newCtx()
	for _, x := range []float64{-20, -3.3, -0.1, 0, 0.1, 1, 5.7, 20} {
		r, k := SplitExp(ctx, float32(x))
		if math.Abs(float64(r)) > math.Ln2/2+1e-6 {
			t.Errorf("SplitExp(%v): r = %v outside ±ln2/2", x, r)
		}
		got := float64(JoinExp(ctx, float32(math.Exp(float64(r))), k))
		want := math.Exp(x)
		if math.Abs(got-want)/want > 1e-5 {
			t.Errorf("exp(%v) via split = %v, want %v", x, got, want)
		}
	}
}

func TestPropSplitExpResidual(t *testing.T) {
	ctx := newCtx()
	f := func(x float32) bool {
		if x != x || math.Abs(float64(x)) > 80 {
			return true
		}
		r, _ := SplitExp(ctx, x)
		return math.Abs(float64(r)) <= math.Ln2/2+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestSplitJoinLog(t *testing.T) {
	ctx := newCtx()
	for _, x := range []float64{1e-10, 0.001, 0.5, 1, 2.5, 1000, 1e20} {
		m, e := SplitLog(ctx, float32(x))
		if m < 0.5 || m >= 1 {
			t.Errorf("SplitLog(%v): m = %v outside [0.5, 1)", x, m)
		}
		got := float64(JoinLog(ctx, float32(math.Log(float64(m))), e))
		want := math.Log(x)
		if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("log(%v) via split = %v, want %v", x, got, want)
		}
	}
}

func TestSplitJoinSqrt(t *testing.T) {
	ctx := newCtx()
	for _, x := range []float64{1e-12, 0.25, 0.5, 1, 2, 3, 1e6, 1e30} {
		m, h := SplitSqrt(ctx, float32(x))
		if m < 0.5 || m >= 2 {
			t.Errorf("SplitSqrt(%v): m = %v outside [0.5, 2)", x, m)
		}
		got := float64(JoinSqrt(ctx, float32(math.Sqrt(float64(m))), h))
		want := math.Sqrt(x)
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("sqrt(%v) via split = %v, want %v", x, got, want)
		}
	}
}

func TestPropSplitSqrtReconstruct(t *testing.T) {
	ctx := newCtx()
	f := func(x float32) bool {
		if x != x || x <= 0 || math.IsInf(float64(x), 0) {
			return true
		}
		m, h := SplitSqrt(ctx, x)
		// m·4^h must reconstruct x exactly (pure exponent surgery).
		back := float64(m) * math.Pow(4, float64(h))
		return math.Abs(back-float64(x))/float64(x) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Figure 8's cost ordering: sin reduction > exp ≈ log > sqrt.
func TestReductionCostOrdering(t *testing.T) {
	cost := func(f func(ctx *pimsim.Ctx)) uint64 {
		d := pimsim.NewDPU(0, pimsim.Default(), 16)
		f(d.NewCtx())
		return d.Cycles()
	}
	sinC := cost(func(c *pimsim.Ctx) {
		// The full sine conversion path (Fig. 3(a) steps 1, 3 and 5):
		// 2π reduction, quadrant fold, quadrant fix-up.
		r := To2Pi(c, 100)
		theta, q := FoldQuadrant(c, r)
		ApplySinQuadrant(c, theta, theta, q)
	})
	expC := cost(func(c *pimsim.Ctx) { r, k := SplitExp(c, 5.5); JoinExp(c, r, k) })
	logC := cost(func(c *pimsim.Ctx) { m, e := SplitLog(c, 123); JoinLog(c, m, e) })
	sqrtC := cost(func(c *pimsim.Ctx) { m, h := SplitSqrt(c, 123); JoinSqrt(c, m, h) })
	if !(sinC > expC && expC > logC && logC > sqrtC) {
		t.Fatalf("cost ordering sin(%d) > exp(%d) > log(%d) > sqrt(%d) violated",
			sinC, expC, logC, sqrtC)
	}
}

func TestFixedReductionCheaperThanFloat(t *testing.T) {
	costFloat := func() uint64 {
		d := pimsim.NewDPU(0, pimsim.Default(), 16)
		To2Pi(d.NewCtx(), 6.9)
		return d.Cycles()
	}()
	costFixed := func() uint64 {
		d := pimsim.NewDPU(0, pimsim.Default(), 16)
		To2PiFixed(d.NewCtx(), fixed.FromFloat64(6.9))
		return d.Cycles()
	}()
	if costFixed >= costFloat/4 {
		t.Fatalf("fixed 2π reduction (%d) should be far cheaper than float (%d)", costFixed, costFloat)
	}
}
