package accwatch

import "transpimlib/internal/stats"

// Snapshot is the watcher's point-in-time JSON view — the
// /debug/accuracy document. It carries no wall-clock timestamps, so a
// deterministic feed yields a byte-identical snapshot (the golden
// test relies on this).
type Snapshot struct {
	SampleRate float64          `json:"sample_rate"`
	Window     int              `json:"window"`
	Samples    uint64           `json:"samples"`
	Breaches   uint64           `json:"slo_breaches"`
	Drifts     uint64           `json:"drift_events"`
	OutOfRange uint64           `json:"out_of_range"`
	Series     []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one (function, method, tenant) series' view.
type SeriesSnapshot struct {
	Key        Key          `json:"key"`
	Samples    uint64       `json:"samples"`
	Cumulative stats.Errors `json:"cumulative"`
	// LastWindow is the most recently completed rolling window (zero
	// until the first window closes).
	LastWindow stats.Errors  `json:"last_window"`
	Windows    uint64        `json:"windows"`
	Breaches   uint64        `json:"slo_breaches"`
	Drifts     uint64        `json:"drift_events"`
	OutOfRange uint64        `json:"out_of_range"`
	Coverage   []CoverBucket `json:"coverage,omitempty"` // non-empty exponent buckets only
	WorstAbs   *Exemplar     `json:"worst_abs,omitempty"`
	WorstULP   *Exemplar     `json:"worst_ulp,omitempty"`
	SLOs       []SLO         `json:"slos,omitempty"`
}

// CoverBucket is one occupied input-coverage bucket.
type CoverBucket struct {
	Label string `json:"label"` // "zero", "2^-3", …, "nonfinite"
	Count uint64 `json:"count"`
}

// Snapshot assembles the watcher's current state, series sorted by
// (function, method, tenant) for stable output. Per-series state is
// read under the series lock; the snapshot as a whole is not a
// consistent cut under concurrent traffic (the standard metrics
// contract).
func (w *Watcher) Snapshot() Snapshot {
	if w == nil {
		return Snapshot{}
	}
	w.mu.Lock()
	all := make([]*series, 0, len(w.series))
	for _, s := range w.series {
		all = append(all, s)
	}
	w.mu.Unlock()

	snap := Snapshot{
		SampleRate: w.cfg.SampleRate,
		Window:     w.cfg.Window,
		Samples:    w.samplesTotal.Load(),
		Breaches:   w.breachesTotal.Load(),
		Drifts:     w.driftsTotal.Load(),
		OutOfRange: w.oorTotal.Load(),
	}
	for _, s := range all {
		s.mu.Lock()
		ss := SeriesSnapshot{
			Key:        s.key,
			Samples:    s.samples,
			Cumulative: s.cum.Result(),
			LastWindow: s.lastWin,
			Windows:    s.windows,
			Breaches:   s.breaches,
			Drifts:     s.drifts,
			OutOfRange: s.outOfRange,
			SLOs:       s.slos,
		}
		for i, c := range s.cover {
			if c > 0 {
				ss.Coverage = append(ss.Coverage, CoverBucket{Label: CoverLabel(i), Count: c})
			}
		}
		if s.worstAbs.Set {
			ex := s.worstAbs
			ss.WorstAbs = &ex
		}
		if s.worstULP.Set {
			ex := s.worstULP
			ss.WorstULP = &ex
		}
		s.mu.Unlock()
		snap.Series = append(snap.Series, ss)
	}
	sortSeries(snap.Series)
	return snap
}

func sortSeries(ss []SeriesSnapshot) {
	for i := 1; i < len(ss); i++ { // insertion sort: series counts are small
		for j := i; j > 0 && lessKey(ss[j].Key, ss[j-1].Key); j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func lessKey(a, b Key) bool {
	if a.Function != b.Function {
		return a.Function < b.Function
	}
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	return a.Tenant < b.Tenant
}
