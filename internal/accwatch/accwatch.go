// Package accwatch is the serving engine's online accuracy
// observability layer. The paper's central claim is a quantified
// accuracy-vs-performance tradeoff per method (Figs. 5–7: CORDIC vs.
// the M/L/D-LUT families); the serving stack measures the performance
// half continuously but, before this package, accuracy only offline
// (cmd/tplaccuracy). accwatch closes that gap the way production ML
// serving systems treat model-quality drift — as a first-class
// observable next to latency:
//
//   - a deterministic stride shadow-sampler re-evaluates a
//     configurable fraction of each request's elements against the
//     float64 host reference (the same stats.Deviation error math the
//     offline tools use, so online and offline numbers are
//     bit-comparable);
//   - per-(function, method, tenant) absolute-error and ULP
//     histograms feed the shared telemetry registry, with bounded
//     worst-error exemplars (input bits, output bits, shard id, trace
//     id) attached to histogram buckets;
//   - input-domain coverage histograms over exponent buckets make the
//     paper's L-LUT/D-LUT table-density argument observable: when a
//     tenant's traffic leaves the table's dense region, the coverage
//     histogram shifts before the error does;
//   - rolling-window drift detection with configurable accuracy SLOs
//     trips engine_accuracy_slo_breached_total, emits a structured
//     log/slog event, and lets the engine annotate traces.
//
// Cost discipline: a disabled watcher is a nil pointer in the engine
// (one nil check per request, zero allocation); an enabled watcher is
// O(sampled elements) per request and touches only per-series state
// under a short mutex, never the engine's compute pipeline.
package accwatch

import (
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"transpimlib/internal/fpbits"
	"transpimlib/internal/stats"
	"transpimlib/internal/telemetry"
)

// Config configures the watcher. The zero value is disabled; see
// withDefaults for the enabled-path defaults.
type Config struct {
	// Enabled turns shadow sampling on. Off, the engine holds a nil
	// watcher and the serving path is bit-identical to an engine
	// without accuracy monitoring.
	Enabled bool
	// SampleRate is the fraction of each request's elements re-evaluated
	// against the float64 host reference (default 0.01; clamped to
	// [0, 1]). At 1.0 every element is shadow-checked.
	SampleRate float64
	// Seed drives the deterministic stride phase; identical seeds over
	// identical sequential request streams sample identical elements.
	Seed uint64
	// Window is the rolling-window length in samples per series; SLO
	// and drift checks run once per completed window (default 4096).
	Window int
	// MaxSeries caps the number of (function, method, tenant) series
	// (default 64). Beyond the cap, samples collapse into one overflow
	// series — the same cardinality guard the telemetry registry
	// applies to label sets.
	MaxSeries int
	// DriftFactor flags a completed window whose MAE exceeds
	// DriftFactor × the series' cumulative MAE (default 8; ≤ 0
	// disables drift detection).
	DriftFactor float64
	// SLOs are the accuracy objectives checked per completed window.
	SLOs []SLO
}

// SLO is one accuracy objective: the window MAE and/or max-ULP bound
// for the series its selectors match (empty selector fields match
// anything).
type SLO struct {
	Function string  `json:"function,omitempty"` // e.g. "sin"; "" = any
	Method   string  `json:"method,omitempty"`   // e.g. "l-lut(i)"; "" = any
	Tenant   string  `json:"tenant,omitempty"`   // "" = any
	MaxMAE   float64 `json:"max_mae,omitempty"`  // breach when window MAE exceeds this (0 = unchecked)
	MaxULP   float64 `json:"max_ulp,omitempty"`  // breach when window max ULP exceeds this (0 = unchecked)
}

func (s SLO) matches(k Key) bool {
	return (s.Function == "" || s.Function == k.Function) &&
		(s.Method == "" || s.Method == k.Method) &&
		(s.Tenant == "" || s.Tenant == k.Tenant)
}

func (c Config) withDefaults() Config {
	if c.SampleRate <= 0 {
		c.SampleRate = 0.01
	}
	if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.Seed == 0 {
		c.Seed = 0xACC0B5
	}
	if c.Window <= 0 {
		c.Window = 4096
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 64
	}
	if c.DriftFactor == 0 {
		c.DriftFactor = 8
	}
	return c
}

// Key identifies one monitored series.
type Key struct {
	Function string `json:"function"`
	Method   string `json:"method"`
	Tenant   string `json:"tenant,omitempty"`
}

// overflowKey is where samples land once MaxSeries distinct keys
// exist — bounded state no matter how many tenants show up.
var overflowKey = Key{Function: "overflow", Method: "overflow", Tenant: "overflow"}

// Request describes one completed request to Sample: identity, the
// float64 reference, the function's dense input domain, and the
// observability coordinates for exemplars.
type Request struct {
	Key     Key
	Ref     func(float64) float64 // float64 host reference
	Lo, Hi  float64               // dense table domain (coverage accounting)
	Shard   int
	TraceID uint64
}

// Outcome reports what one Sample call did.
type Outcome struct {
	Sampled  int  // elements shadow-evaluated
	Breached bool // an SLO window check failed during this call
	Drifted  bool // a drift window check fired during this call
}

// coverage exponent buckets: unbiased exponent of |x| clamped to
// [coverMin, coverMax], plus a dedicated zero bucket below and a
// non-finite bucket above.
const (
	coverMin = -20
	coverMax = 20
	// coverBuckets = zero + exponents + nonfinite
	coverBuckets = 1 + (coverMax - coverMin + 1) + 1
)

func coverIndex(x float32) int {
	e := fpbits.Exponent(x)
	switch {
	case e == math.MinInt: // ±0
		return 0
	case e == math.MaxInt: // Inf/NaN
		return coverBuckets - 1
	case e < coverMin:
		e = coverMin
	case e > coverMax:
		e = coverMax
	}
	return 1 + (e - coverMin)
}

// CoverLabel names a coverage bucket index ("zero", "2^-3", "nonfinite").
func CoverLabel(i int) string {
	switch {
	case i == 0:
		return "zero"
	case i == coverBuckets-1:
		return "nonfinite"
	default:
		return "2^" + itoa(coverMin+i-1)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// series is the per-(function, method, tenant) accumulator.
type series struct {
	mu  sync.Mutex
	key Key

	cum     stats.Collector // since engine start — bit-comparable with tplaccuracy
	win     stats.Collector // current rolling window
	winN    int
	windows uint64
	lastWin stats.Errors // most recently completed window

	samples    uint64
	outOfRange uint64
	breaches   uint64
	drifts     uint64
	cover      [coverBuckets]uint64

	worstAbs Exemplar
	worstULP Exemplar

	slos []SLO // objectives matching this key, resolved at creation

	absHist *telemetry.Histogram
	ulpHist *telemetry.Histogram
	expHist *telemetry.Histogram
}

// Exemplar is the worst observed sample of a series: enough bits to
// reproduce it exactly (input, output, reference) plus where it ran.
type Exemplar struct {
	InputBits  uint32  `json:"input_bits"`
	OutputBits uint32  `json:"output_bits"`
	RefBits    uint64  `json:"ref_bits"`
	Input      float32 `json:"input"`
	Output     float32 `json:"output"`
	Ref        float64 `json:"ref"`
	AbsErr     float64 `json:"abs_err"`
	ULP        float64 `json:"ulp"`
	Index      int     `json:"index"` // element index within its request
	Shard      int     `json:"shard"`
	TraceID    uint64  `json:"trace_id,omitempty"`
	Set        bool    `json:"-"`
}

// Watcher is the online accuracy monitor. Create with New; Sample is
// safe for concurrent use from the engine's drain stages.
type Watcher struct {
	cfg Config
	log *slog.Logger

	samplesTotal  *telemetry.Counter
	breachesTotal *telemetry.Counter
	driftsTotal   *telemetry.Counter
	oorTotal      *telemetry.Counter
	seriesGauge   *telemetry.Gauge

	reg *telemetry.Registry

	// reqSeq is the deterministic per-request clock the stride phase
	// keys on. For a sequentially fed engine, identical request
	// streams sample identical elements.
	reqSeq atomic.Uint64

	mu     sync.Mutex
	series map[Key]*series
}

// New builds a watcher over the given registry. log may be nil
// (breach/drift events are then counted and snapshotted but not
// logged).
func New(cfg Config, reg *telemetry.Registry, log *slog.Logger) *Watcher {
	cfg = cfg.withDefaults()
	return &Watcher{
		cfg:           cfg,
		log:           log,
		reg:           reg,
		samplesTotal:  reg.Counter("engine_accuracy_samples_total", "elements shadow-evaluated against the float64 host reference"),
		breachesTotal: reg.Counter("engine_accuracy_slo_breached_total", "accuracy SLO window checks that failed"),
		driftsTotal:   reg.Counter("engine_accuracy_drift_total", "windows whose MAE drifted beyond DriftFactor x the cumulative baseline"),
		oorTotal:      reg.Counter("engine_accuracy_out_of_range_total", "sampled inputs outside the function's dense table domain"),
		seriesGauge:   reg.Gauge("engine_accuracy_series", "monitored (function, method, tenant) series"),
		series:        make(map[Key]*series),
	}
}

// Rate returns the effective sample rate.
func (w *Watcher) Rate() float64 { return w.cfg.SampleRate }

// splitmix64 is the phase hash — the same generator faultsim uses for
// deterministic decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// AbsErrorBuckets is the shadow-sampler's absolute-error ladder.
func AbsErrorBuckets() []float64 {
	return []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
}

// ULPBuckets is the shadow-sampler's ULP-error ladder.
func ULPBuckets() []float64 {
	return []float64{0.5, 1, 2, 4, 8, 16, 64, 256, 1024, 4096}
}

// ExponentBuckets is the input-coverage exponent ladder (values are
// unbiased binary exponents).
func ExponentBuckets() []float64 {
	return []float64{-16, -12, -8, -6, -4, -2, -1, 0, 1, 2, 4, 6, 8, 12, 16}
}

func (w *Watcher) getSeries(k Key) *series {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.series[k]; ok {
		return s
	}
	if len(w.series) >= w.cfg.MaxSeries {
		if s, ok := w.series[overflowKey]; ok {
			return s
		}
		k = overflowKey
	}
	lb := `{fn="` + k.Function + `",method="` + k.Method + `",tenant="` + k.Tenant + `"}`
	s := &series{
		key:     k,
		absHist: w.reg.Histogram("engine_accuracy_abs_error"+lb, "shadow-sampled absolute error vs. the float64 reference", AbsErrorBuckets()),
		ulpHist: w.reg.Histogram("engine_accuracy_ulp_error"+lb, "shadow-sampled ULP error vs. the float32-rounded reference", ULPBuckets()),
		expHist: w.reg.Histogram("engine_accuracy_input_exponent"+lb, "unbiased binary exponent of sampled inputs (domain coverage)", ExponentBuckets()),
	}
	for _, o := range w.cfg.SLOs {
		if o.matches(k) {
			s.slos = append(s.slos, o)
		}
	}
	w.series[k] = s
	w.seriesGauge.Set(int64(len(w.series)))
	return s
}

// Sample shadow-evaluates a deterministic stride subset of the
// request's elements and folds the deviations into the request's
// series. xs and ys are the request's inputs and outputs; they are
// only read. O(sampled elements).
func (w *Watcher) Sample(req Request, xs, ys []float32) Outcome {
	if w == nil {
		return Outcome{}
	}
	n := len(xs)
	if n == 0 || len(ys) < n {
		return Outcome{}
	}
	k := int(math.Ceil(w.cfg.SampleRate * float64(n)))
	if k <= 0 {
		return Outcome{}
	}
	if k > n {
		k = n
	}
	stride := n / k
	if stride < 1 {
		stride = 1
	}
	seq := w.reqSeq.Add(1)
	phase := int(splitmix64(w.cfg.Seed^seq) % uint64(stride))

	s := w.getSeries(req.Key)
	var out Outcome
	s.mu.Lock()
	for i := phase; i < n; i += stride {
		x, y := xs[i], ys[i]
		want := req.Ref(float64(x))
		abs, ulps, _ := stats.Deviation(y, want)
		s.cum.Add(y, want)
		s.win.Add(y, want)
		s.samples++
		s.winN++
		out.Sampled++

		ci := coverIndex(x)
		s.cover[ci]++
		s.expHist.Observe(expValue(x))
		if xf := float64(x); xf < req.Lo || xf > req.Hi || ci == coverBuckets-1 {
			s.outOfRange++
			w.oorTotal.Inc()
		}

		exLabels := exemplarLabels(req.TraceID, x)
		s.absHist.ObserveExemplar(abs, exLabels)
		s.ulpHist.ObserveExemplar(ulps, exLabels)
		if abs > s.worstAbs.AbsErr || !s.worstAbs.Set {
			s.worstAbs = makeExemplar(x, y, want, abs, ulps, i, req)
		}
		if ulps > s.worstULP.ULP || !s.worstULP.Set {
			s.worstULP = makeExemplar(x, y, want, abs, ulps, i, req)
		}

		if s.winN >= w.cfg.Window {
			breached, drifted := w.closeWindow(s)
			out.Breached = out.Breached || breached
			out.Drifted = out.Drifted || drifted
		}
	}
	s.mu.Unlock()
	w.samplesTotal.Add(uint64(out.Sampled))
	return out
}

// expValue maps an input to its exponent-histogram observation value.
func expValue(x float32) float64 {
	e := fpbits.Exponent(x)
	switch {
	case e == math.MinInt:
		return float64(coverMin) - 1 // zero: below every exponent bucket
	case e == math.MaxInt:
		return float64(coverMax) + 1 // non-finite: the overflow bucket
	}
	return float64(e)
}

func exemplarLabels(traceID uint64, x float32) string {
	return `trace_id="` + utoa(traceID) + `",x="0x` + hex32(fpbits.Bits(x)) + `"`
}

func utoa(v uint64) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return utoa(v/10) + string(rune('0'+v%10))
}

func hex32(b uint32) string {
	const digits = "0123456789abcdef"
	var out [8]byte
	for i := 7; i >= 0; i-- {
		out[i] = digits[b&0xF]
		b >>= 4
	}
	return string(out[:])
}

func makeExemplar(x, y float32, want, abs, ulps float64, idx int, req Request) Exemplar {
	return Exemplar{
		InputBits:  fpbits.Bits(x),
		OutputBits: fpbits.Bits(y),
		RefBits:    math.Float64bits(want),
		Input:      x,
		Output:     y,
		Ref:        want,
		AbsErr:     abs,
		ULP:        ulps,
		Index:      idx,
		Shard:      req.Shard,
		TraceID:    req.TraceID,
		Set:        true,
	}
}

// closeWindow finishes a series' rolling window: SLO checks, drift
// detection, reset. Caller holds s.mu.
func (w *Watcher) closeWindow(s *series) (breached, drifted bool) {
	e := s.win.Result()
	s.lastWin = e
	s.windows++
	s.win = stats.Collector{}
	s.winN = 0

	for _, o := range s.slos {
		bad := (o.MaxMAE > 0 && e.MeanAbs > o.MaxMAE) ||
			(o.MaxULP > 0 && e.MaxULP > o.MaxULP)
		if !bad {
			continue
		}
		breached = true
		s.breaches++
		w.breachesTotal.Inc()
		if w.log != nil {
			w.log.Warn("accuracy SLO breached",
				"fn", s.key.Function, "method", s.key.Method, "tenant", s.key.Tenant,
				"window_mae", e.MeanAbs, "window_max_ulp", e.MaxULP,
				"slo_max_mae", o.MaxMAE, "slo_max_ulp", o.MaxULP,
				"out_of_range", s.outOfRange, "samples", s.samples)
		}
	}

	cum := s.cum.Result()
	if w.cfg.DriftFactor > 0 && cum.MeanAbs > 0 && e.MeanAbs > w.cfg.DriftFactor*cum.MeanAbs {
		drifted = true
		s.drifts++
		w.driftsTotal.Inc()
		if w.log != nil {
			w.log.Warn("accuracy drift detected",
				"fn", s.key.Function, "method", s.key.Method, "tenant", s.key.Tenant,
				"window_mae", e.MeanAbs, "baseline_mae", cum.MeanAbs,
				"factor", e.MeanAbs/cum.MeanAbs)
		}
	}
	return breached, drifted
}

// CheckSLOs evaluates every series' cumulative errors against its
// SLOs — the shutdown/gate check tplserve -acc-gate uses, independent
// of window boundaries. Violations are returned sorted by series key.
func (w *Watcher) CheckSLOs() []Violation {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	all := make([]*series, 0, len(w.series))
	for _, s := range w.series {
		all = append(all, s)
	}
	w.mu.Unlock()

	var out []Violation
	for _, s := range all {
		s.mu.Lock()
		e := s.cum.Result()
		for _, o := range s.slos {
			if o.MaxMAE > 0 && e.MeanAbs > o.MaxMAE {
				out = append(out, Violation{Key: s.key, SLO: o, Got: e.MeanAbs, Metric: "mae"})
			}
			if o.MaxULP > 0 && e.MaxULP > o.MaxULP {
				out = append(out, Violation{Key: s.key, SLO: o, Got: e.MaxULP, Metric: "max_ulp"})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Function != b.Function {
			return a.Function < b.Function
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.Tenant < b.Tenant
	})
	return out
}

// Violation is one failed cumulative SLO check.
type Violation struct {
	Key    Key     `json:"key"`
	SLO    SLO     `json:"slo"`
	Metric string  `json:"metric"` // "mae" or "max_ulp"
	Got    float64 `json:"got"`
}
