package accwatch

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"

	"transpimlib/internal/stats"
	"transpimlib/internal/telemetry"
)

func sinReq(tenant string) Request {
	return Request{
		Key: Key{Function: "sin", Method: "l-lut(i)", Tenant: tenant},
		Ref: math.Sin,
		Lo:  0, Hi: 2 * math.Pi,
		Shard: 1, TraceID: 7,
	}
}

// approxSin simulates a device evaluation with a small fixed error.
func approxSin(xs []float32) []float32 {
	ys := make([]float32, len(xs))
	for i, x := range xs {
		ys[i] = float32(math.Sin(float64(x))) + 1e-5
	}
	return ys
}

func feed(w *Watcher, req Request, n, reqs int, seed uint64) {
	for r := 0; r < reqs; r++ {
		xs := stats.RandomInputs(0, 2*math.Pi, n, seed+uint64(r))
		w.Sample(req, xs, approxSin(xs))
	}
}

// TestSamplerDeterminism pins that two watchers with the same seed and
// the same sequential feed produce byte-identical snapshots.
func TestSamplerDeterminism(t *testing.T) {
	mk := func() Snapshot {
		w := New(Config{Enabled: true, SampleRate: 0.1, Seed: 99, Window: 64}, telemetry.NewRegistry(), nil)
		feed(w, sinReq("a"), 512, 10, 42)
		return w.Snapshot()
	}
	a, b := mk(), mk()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed, same feed, different snapshots:\n%s\n%s", ja, jb)
	}
	if a.Samples == 0 {
		t.Fatal("sampler took no samples")
	}

	// A different seed must change the sampled subset phase for at
	// least some request (the inputs differ per element, so the
	// cumulative sums differ).
	w2 := New(Config{Enabled: true, SampleRate: 0.1, Seed: 100, Window: 64}, telemetry.NewRegistry(), nil)
	feed(w2, sinReq("a"), 512, 10, 42)
	c := w2.Snapshot()
	if reflect.DeepEqual(a.Series[0].Cumulative, c.Series[0].Cumulative) {
		t.Fatal("different seeds sampled identical subsets (phase not seed-driven)")
	}
}

// TestFullRateMatchesCollector pins bit-comparability with the offline
// path: at SampleRate 1.0 the watcher's cumulative errors equal a
// stats.Collector fed the same (output, reference) pairs in order —
// the exact math cmd/tplaccuracy uses.
func TestFullRateMatchesCollector(t *testing.T) {
	w := New(Config{Enabled: true, SampleRate: 1.0, Window: 1 << 20}, telemetry.NewRegistry(), nil)
	xs := stats.RandomInputs(0, 2*math.Pi, 1000, 7)
	ys := approxSin(xs)
	w.Sample(sinReq(""), xs, ys)

	var c stats.Collector
	for i := range xs {
		c.Add(ys[i], math.Sin(float64(xs[i])))
	}
	want := c.Result()
	got := w.Snapshot().Series[0].Cumulative
	if got != want {
		t.Fatalf("online %+v != offline %+v", got, want)
	}
}

// TestSampleRateScaling pins the O(sample) contract: the sampled
// count tracks rate × n within rounding.
func TestSampleRateScaling(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5, 1.0} {
		w := New(Config{Enabled: true, SampleRate: rate}, telemetry.NewRegistry(), nil)
		xs := stats.RandomInputs(0, 1, 1000, 3)
		out := w.Sample(sinReq(""), xs, approxSin(xs))
		k := int(math.Ceil(rate * 1000))
		stride := 1000 / k
		min := 1000/stride - 1
		max := 1000/stride + 1
		if out.Sampled < min || out.Sampled > max {
			t.Fatalf("rate %v sampled %d, want ~%d", rate, out.Sampled, k)
		}
	}
}

// TestSLOTripAndCoverageShift drives traffic out of the dense domain
// and checks the two observables the paper's density argument
// predicts: the coverage histogram shifts (out-of-range counts) and
// the SLO counter trips once the window MAE degrades.
func TestSLOTripAndCoverageShift(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := New(Config{
		Enabled: true, SampleRate: 1.0, Window: 256,
		SLOs: []SLO{{Function: "sin", MaxMAE: 1e-4}},
	}, reg, nil)

	// In-domain traffic with tiny error: no breach.
	req := sinReq("t0")
	xs := stats.RandomInputs(0, 2*math.Pi, 512, 5)
	w.Sample(req, xs, approxSin(xs))
	if got := w.Snapshot(); got.Breaches != 0 {
		t.Fatalf("clean traffic breached: %+v", got)
	}

	// Out-of-range traffic with gross error: coverage moves and the
	// SLO trips.
	far := stats.RandomInputs(800, 1000, 512, 6)
	bad := make([]float32, len(far))
	for i := range far {
		bad[i] = float32(math.Sin(float64(far[i]))) + 0.25
	}
	out := w.Sample(req, far, bad)
	if !out.Breached {
		t.Fatal("gross out-of-range error did not breach the SLO window")
	}
	snap := w.Snapshot()
	if snap.Breaches == 0 {
		t.Fatalf("breach not counted: %+v", snap)
	}
	s := snap.Series[0]
	if s.OutOfRange != 512 {
		t.Fatalf("out-of-range count %d, want 512", s.OutOfRange)
	}
	// Coverage must show mass in the high-exponent buckets (800..1000
	// has exponent 9).
	var high uint64
	for _, cb := range s.Coverage {
		if cb.Label == "2^9" {
			high = cb.Count
		}
	}
	if high != 512 {
		t.Fatalf("coverage histogram did not shift: %+v", s.Coverage)
	}
	if s.WorstAbs == nil || s.WorstAbs.AbsErr < 0.2 {
		t.Fatalf("worst exemplar not captured: %+v", s.WorstAbs)
	}
	if s.WorstAbs.TraceID != 7 || s.WorstAbs.Shard != 1 {
		t.Fatalf("exemplar lost its coordinates: %+v", s.WorstAbs)
	}
	// The bit-level fields must reproduce the sample exactly.
	if math.Float32bits(s.WorstAbs.Input) != s.WorstAbs.InputBits ||
		math.Float32bits(s.WorstAbs.Output) != s.WorstAbs.OutputBits {
		t.Fatalf("exemplar bits disagree with values: %+v", s.WorstAbs)
	}
}

// TestDriftDetection pins the rolling-window drift signal: a stable
// baseline followed by a much worse window fires the drift counter.
func TestDriftDetection(t *testing.T) {
	w := New(Config{Enabled: true, SampleRate: 1.0, Window: 256, DriftFactor: 4}, telemetry.NewRegistry(), nil)
	req := sinReq("")
	for r := 0; r < 8; r++ {
		xs := stats.RandomInputs(0, 2*math.Pi, 256, uint64(r))
		w.Sample(req, xs, approxSin(xs))
	}
	xs := stats.RandomInputs(0, 2*math.Pi, 256, 99)
	bad := make([]float32, len(xs))
	for i := range xs {
		bad[i] = float32(math.Sin(float64(xs[i]))) + 0.1
	}
	out := w.Sample(req, xs, bad)
	if !out.Drifted {
		t.Fatal("40x error inflation did not register as drift")
	}
	if w.Snapshot().Drifts == 0 {
		t.Fatal("drift not counted in snapshot")
	}
}

// TestConcurrentSampling exercises Sample from many goroutines under
// -race: per-series mutexes must fully serialize the collectors.
func TestConcurrentSampling(t *testing.T) {
	w := New(Config{Enabled: true, SampleRate: 1.0, Window: 128}, telemetry.NewRegistry(), nil)
	var wg sync.WaitGroup
	const G, N = 8, 400
	for g := 0; g < G; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := sinReq("tenant-" + string(rune('a'+g%3)))
			for r := 0; r < 5; r++ {
				xs := stats.RandomInputs(0, 2*math.Pi, N, uint64(g*100+r))
				w.Sample(req, xs, approxSin(xs))
			}
		}()
	}
	wg.Wait()
	snap := w.Snapshot()
	if snap.Samples != G*5*N {
		t.Fatalf("samples %d, want %d", snap.Samples, G*5*N)
	}
	var per uint64
	for _, s := range snap.Series {
		per += s.Samples
	}
	if per != snap.Samples {
		t.Fatalf("per-series samples %d != total %d", per, snap.Samples)
	}
	if len(snap.Series) != 3 {
		t.Fatalf("want 3 tenant series, got %d", len(snap.Series))
	}
}

// TestSeriesCardinalityGuard pins bounded state under unbounded tenant
// names.
func TestSeriesCardinalityGuard(t *testing.T) {
	w := New(Config{Enabled: true, SampleRate: 1.0, MaxSeries: 4}, telemetry.NewRegistry(), nil)
	xs := stats.RandomInputs(0, 1, 16, 1)
	ys := approxSin(xs)
	for i := 0; i < 50; i++ {
		req := sinReq("tenant-" + itoa(i))
		w.Sample(req, xs, ys)
	}
	snap := w.Snapshot()
	if len(snap.Series) != 5 { // 4 real + 1 overflow
		t.Fatalf("cardinality guard failed: %d series", len(snap.Series))
	}
	var overflow *SeriesSnapshot
	for i := range snap.Series {
		if snap.Series[i].Key == overflowKey {
			overflow = &snap.Series[i]
		}
	}
	if overflow == nil || overflow.Samples != 46*16 {
		t.Fatalf("overflow series wrong: %+v", overflow)
	}
}

// TestCheckSLOs pins the cumulative gate check.
func TestCheckSLOs(t *testing.T) {
	w := New(Config{
		Enabled: true, SampleRate: 1.0,
		SLOs: []SLO{{Method: "l-lut(i)", MaxMAE: 1e-9}},
	}, telemetry.NewRegistry(), nil)
	xs := stats.RandomInputs(0, 2*math.Pi, 100, 2)
	w.Sample(sinReq("x"), xs, approxSin(xs))
	v := w.CheckSLOs()
	if len(v) != 1 || v[0].Metric != "mae" || v[0].Got <= 1e-9 {
		t.Fatalf("gate check: %+v", v)
	}
}

func TestCoverLabels(t *testing.T) {
	if got := coverIndex(0); got != 0 || CoverLabel(got) != "zero" {
		t.Fatalf("zero bucket: %d %q", got, CoverLabel(got))
	}
	if got := coverIndex(float32(math.Inf(1))); CoverLabel(got) != "nonfinite" {
		t.Fatalf("inf bucket: %q", CoverLabel(got))
	}
	if got := CoverLabel(coverIndex(1.5)); got != "2^0" {
		t.Fatalf("1.5 bucket: %q", got)
	}
	if got := CoverLabel(coverIndex(0.25)); got != "2^-2" {
		t.Fatalf("0.25 bucket: %q", got)
	}
}

// TestNilWatcher pins the disabled path: a nil watcher's methods are
// no-ops and allocate nothing.
func TestNilWatcher(t *testing.T) {
	var w *Watcher
	xs := []float32{1, 2, 3}
	if avg := testing.AllocsPerRun(100, func() {
		if out := w.Sample(sinReq(""), xs, xs); out.Sampled != 0 {
			t.Fatal("nil watcher sampled")
		}
	}); avg != 0 {
		t.Fatalf("nil watcher allocates %.1f per call, want 0", avg)
	}
	if s := w.Snapshot(); len(s.Series) != 0 {
		t.Fatal("nil watcher produced series")
	}
	if v := w.CheckSLOs(); v != nil {
		t.Fatal("nil watcher produced violations")
	}
}
