package engine

import (
	"sync"

	"transpimlib/internal/core"
)

// planKey identifies one compiled batch plan: a spec served by a
// specific shard at an exact batch size. Production traffic repeats a
// small set of shapes (the batcher emits MaxBatch-sized batches in
// steady state), so keying on the exact size keeps the plan a pure
// lookup with no per-batch arithmetic.
type planKey struct {
	spec  Spec
	shard int
	n     int
}

// batchPlan is the compiled execution recipe for a recurring
// (spec, shard, size) shape: the resolved per-core operators, the
// padded lane layout, and whether the fused direct-staging path
// applies. gen pins the table-cache generation the plan was compiled
// against; a table hot-swap bumps the generation and lazily
// invalidates every outstanding plan on its next lookup.
type batchPlan struct {
	ops    []*core.Operator
	fast   bool // operators carry the fused batch fast path
	perDPU int  // elements per core (shard planning, precomputed)
	padded int  // rank-wide padded bytes per direction
	gen    uint64
}

// defaultPlanCacheLimit bounds the compiled-plan store. Each plan is a
// few words plus a shared operator slice, so the bound exists to cap
// pathological workloads (every batch a unique size), not memory
// pressure; FIFO eviction is deliberate — a plan is cheap to recompile
// and the steady state reuses a handful of shapes.
const defaultPlanCacheLimit = 256

// planCache is the bounded compiled-plan store. Unlike the table cache
// (which tracks physical PIM residency and never evicts), plans are
// pure host-side artifacts: eviction only costs a recompile on the
// next matching batch.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*batchPlan
	fifo    []planKey // insertion order; may hold stale keys
	limit   int
}

func newPlanCache(limit int) *planCache {
	if limit <= 0 {
		limit = defaultPlanCacheLimit
	}
	return &planCache{entries: make(map[planKey]*batchPlan), limit: limit}
}

// lookup returns the plan for the key when present and still valid
// against the table-cache generation gen; stale plans (compiled before
// a hot-swap) are dropped and reported as a miss.
func (c *planCache) lookup(k planKey, gen uint64) *batchPlan {
	c.mu.Lock()
	p := c.entries[k]
	if p != nil && p.gen != gen {
		delete(c.entries, k)
		p = nil
	}
	c.mu.Unlock()
	return p
}

// store records a freshly compiled plan, evicting oldest entries past
// the bound. It returns the number of live plans evicted (stale fifo
// keys whose entries were already dropped don't count).
func (c *planCache) store(k planKey, p *batchPlan) (evicted int) {
	c.mu.Lock()
	if _, ok := c.entries[k]; !ok {
		for len(c.entries) >= c.limit && len(c.fifo) > 0 {
			old := c.fifo[0]
			c.fifo = c.fifo[1:]
			if _, live := c.entries[old]; live {
				delete(c.entries, old)
				evicted++
			}
		}
		c.fifo = append(c.fifo, k)
	}
	c.entries[k] = p
	c.mu.Unlock()
	return evicted
}

// size returns the number of live compiled plans.
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
