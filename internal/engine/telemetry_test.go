package engine

import (
	"strings"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
	"transpimlib/internal/telemetry"
)

// collectSpans flattens a span tree into name → spans.
func collectSpans(root *telemetry.Span) map[string][]*telemetry.Span {
	out := map[string][]*telemetry.Span{}
	var walk func(s *telemetry.Span)
	walk = func(s *telemetry.Span) {
		name := s.Name
		if strings.HasPrefix(name, "batch[") {
			name = "batch"
		}
		out[name] = append(out[name], s)
		for _, c := range s.Child {
			walk(c)
		}
	}
	walk(root)
	return out
}

// TestRequestTrace: a traced request must leave a full span tree —
// queue, batch, transfer_in, setup, kernel, transfer_out — with
// wall-clock ordering and the batch's modeled seconds attached, and
// its RequestStats must carry the trace id.
func TestRequestTrace(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, TraceDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 64, 1)
	_, st, err := e.EvaluateBatch(fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID == 0 {
		t.Fatal("RequestStats.TraceID not set with tracing enabled")
	}
	tr, ok := e.TraceLast()
	if !ok {
		t.Fatal("TraceLast empty after a completed request")
	}
	if tr.ID != st.TraceID {
		t.Fatalf("trace id %d != stats trace id %d", tr.ID, st.TraceID)
	}
	spans := collectSpans(tr.Root)
	for _, name := range []string{"request", "queue", "batch", "transfer_in", "setup", "kernel", "transfer_out"} {
		if len(spans[name]) == 0 {
			t.Errorf("span %q missing from trace", name)
		}
	}
	req := spans["request"][0]
	if req.Wall() <= 0 {
		t.Error("request span has no wall-clock extent")
	}
	batch := spans["batch"][0]
	if batch.Start.Before(req.Start) || batch.End.After(req.End) {
		t.Error("batch span not contained in request span")
	}
	kern := spans["kernel"][0]
	if kern.Modeled <= 0 {
		t.Error("kernel span has no modeled seconds")
	}
	if got := st.ComputeSeconds; got != kern.Modeled {
		t.Errorf("kernel modeled %g != stats compute %g", kern.Modeled, got)
	}
	// One cold request: the setup span must carry the miss.
	if spans["setup"][0].Modeled <= 0 {
		t.Error("cold setup span has no modeled seconds")
	}
	if spans["error"] != nil {
		t.Error("successful request must not carry an error span")
	}
}

// TestRequestErrors: a request whose batch fails (table build
// overflows the 64-KB WRAM) must increment both the per-batch and the
// new per-request error counters, and its trace must end in an
// Err-carrying terminal span.
func TestRequestErrors(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, TraceDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	xs := stats.RandomInputs(-1, 1, 16, 1)
	// 2^18 float entries ≫ 64 KB WRAM: the shard's table build fails.
	bad := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 18, Placement: pimsim.InWRAM}
	_, st, err := e.EvaluateBatch(core.Sigmoid, bad, xs)
	if err == nil {
		t.Fatal("oversized WRAM table must fail")
	}
	stats := e.Stats()
	if stats.Errors != 1 {
		t.Errorf("Errors = %d, want 1", stats.Errors)
	}
	if stats.RequestErrors != 1 {
		t.Errorf("RequestErrors = %d, want 1", stats.RequestErrors)
	}
	tr, ok := e.TraceLast()
	if !ok {
		t.Fatal("failed request left no trace")
	}
	if tr.ID != st.TraceID {
		t.Errorf("trace id %d != stats trace id %d", tr.ID, st.TraceID)
	}
	if tr.Root.Err == "" {
		t.Error("failed request's root span carries no error")
	}
	spans := collectSpans(tr.Root)
	if len(spans["error"]) != 1 || spans["error"][0].Err == "" {
		t.Error("failed request's trace lacks the Err-carrying terminal span")
	}

	// A subsequent good request must not disturb the error counters.
	fn, par := llutSpec()
	if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
		t.Fatal(err)
	}
	stats = e.Stats()
	if stats.RequestErrors != 1 || stats.Errors != 1 {
		t.Errorf("error counters moved: batch %d request %d", stats.Errors, stats.RequestErrors)
	}
}

// TestMetricsExposition: the engine's registry must expose the core
// series in Prometheus text format with per-shard attribution.
func TestMetricsExposition(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 2, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 256, 1)
	for i := 0; i < 3; i++ {
		if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := e.Observe().Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"engine_requests_total 3",
		"engine_request_latency_seconds_count 3",
		`engine_shard_batches_total{shard="0"}`,
		`engine_shard_batches_total{shard="1"}`,
		"engine_cache_hits_total",
		"pim_launches_total",
		`pim_op_cycles_total{class="wram"}`,
		`pim_dpu_kernel_cycles_total{dpu="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Kernel profiling must attribute cycles: the wram class is the
	// streaming kernel's hottest, so its counter must be non-zero.
	if strings.Contains(text, `pim_ops_total{class="wram"} 0`) {
		t.Error("profiler attributed zero wram ops despite traffic")
	}
}

// TestTracingDisabledPath: with TraceDepth 0 no trace may appear and
// no stage stamps may be taken (batch.tr stays nil), and TraceID
// stays zero.
func TestTracingDisabledPath(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 64, 1)
	_, st, err := e.EvaluateBatch(fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != 0 {
		t.Error("TraceID set with tracing disabled")
	}
	if _, ok := e.TraceLast(); ok {
		t.Error("TraceLast returned a trace with tracing disabled")
	}
	if e.Traces() != nil {
		t.Error("Traces non-nil with tracing disabled")
	}
	// Metrics still work.
	if e.Stats().Requests != 1 {
		t.Error("metrics lost with tracing disabled")
	}
}

// BenchmarkEvaluateBatchTelemetry compares the warm EvaluateBatch
// path with telemetry disabled (the default: atomic counters only)
// and fully enabled (tracing + kernel profiling). The disabled
// variant is the <2%-overhead acceptance benchmark against the
// pre-telemetry mutex collector; run with -benchtime=... and compare.
func BenchmarkEvaluateBatchTelemetry(b *testing.B) {
	for _, bc := range []struct {
		name string
		cfg  Config
	}{
		{"disabled", Config{DPUs: 4, Shards: 2}},
		{"trace+profile", Config{DPUs: 4, Shards: 2, TraceDepth: 64, Profile: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			e, err := New(bc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			fn, par := llutSpec()
			xs := stats.RandomInputs(-7.9, 7.9, 1024, 1)
			if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
				b.Fatal(err) // warm the table cache
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(xs) * 4))
		})
	}
}

// TestEvaluateBatchTraced: an externally minted trace ID propagates
// into the request's stats, its span tree (returned to the caller and
// retained in the engine's own ring), and the configured process lane.
func TestEvaluateBatchTraced(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, TraceDepth: 4, ProcName: "replica/3"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 64, 1)
	const mintID = 0xfeed
	out, st, tr, err := e.EvaluateBatchTraced("acme", mintID, fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(xs) {
		t.Fatalf("outputs = %d, want %d", len(out), len(xs))
	}
	if st.TraceID != mintID {
		t.Fatalf("stats trace id %d, want the minted %d", st.TraceID, mintID)
	}
	if tr == nil || tr.ID != mintID {
		t.Fatalf("returned trace = %+v, want id %d", tr, mintID)
	}
	if tr.Root.Proc != "replica/3" {
		t.Fatalf("root proc = %q, want replica/3", tr.Root.Proc)
	}
	last, ok := e.TraceLast()
	if !ok || last.ID != mintID {
		t.Fatalf("engine ring trace = %v %v, want the same minted id", last, ok)
	}
	// With tracing disabled the traced call degrades gracefully.
	e2, err := New(Config{DPUs: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	_, st2, tr2, err := e2.EvaluateBatchTraced("acme", mintID, fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if tr2 != nil || st2.TraceID != 0 {
		t.Fatalf("untraced engine returned trace %v, id %d", tr2, st2.TraceID)
	}
}
