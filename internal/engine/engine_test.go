package engine

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

func llutSpec() (core.Function, core.Params) {
	return core.Sigmoid, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}
}

func checkAccuracy(t *testing.T, fn core.Function, xs, ys []float32, tol float64) {
	t.Helper()
	ref := fn.Ref()
	for i, x := range xs {
		want := ref(float64(x))
		if diff := math.Abs(float64(ys[i]) - want); diff > tol {
			t.Fatalf("%v(%v) = %v, want %v (diff %g > tol %g)", fn, x, ys[i], want, diff, tol)
		}
	}
}

// TestTableCacheReuse is the satellite regression: two consecutive
// EvaluateBatch calls with the same (function, method, size) must
// build tables exactly once and charge zero setup time the second
// time.
func TestTableCacheReuse(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 100, 1)

	out1, st1, err := e.EvaluateBatch(fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	if st1.SetupSeconds <= 0 {
		t.Fatal("first request charged no setup time")
	}
	checkAccuracy(t, fn, xs, out1, 1e-3)

	out2, st2, err := e.EvaluateBatch(fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("second identical request missed the table cache")
	}
	if st2.SetupSeconds != 0 {
		t.Fatalf("second request charged setup time: %g s", st2.SetupSeconds)
	}
	checkAccuracy(t, fn, xs, out2, 1e-3)

	s := e.Stats()
	if s.CacheMisses != 1 {
		t.Fatalf("tables built %d times, want exactly 1", s.CacheMisses)
	}
	if s.CacheHits < 1 {
		t.Fatalf("cache hits = %d, want ≥ 1", s.CacheHits)
	}
	if e.CachedSpecs() != 1 {
		t.Fatalf("cached specs = %d, want 1", e.CachedSpecs())
	}

	// A default-knob spec must normalize onto the same cache entry.
	if _, st3, err := e.EvaluateBatch(fn, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}, xs[:4]); err != nil {
		t.Fatal(err)
	} else if !st3.CacheHit {
		t.Fatal("normalized-equal spec missed the cache")
	}
}

// TestWarmCheaperThanCold is the acceptance check: a cache-warm
// EvaluateBatch must be measurably cheaper than the equivalent cold
// one-shot internal/core path — no table rebuild, no redundant
// host→PIM table transfer.
func TestWarmCheaperThanCold(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 512, 2)

	if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
		t.Fatal(err) // cold call: pays generation + broadcast
	}
	_, warm, err := e.EvaluateBatch(fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}

	// The cold one-shot path: fresh core, tables generated and
	// transferred per call, as internal/core sweeps do.
	dpu := pimsim.NewDPU(0, pimsim.Default(), pimsim.DefaultTasklets)
	op, err := core.Build(fn, par, dpu)
	if err != nil {
		t.Fatal(err)
	}
	coldSetup := op.SetupSeconds()

	if warm.SetupSeconds != 0 {
		t.Fatalf("warm request charged setup: %g s", warm.SetupSeconds)
	}
	if coldSetup <= 0 {
		t.Fatal("cold path charged no setup")
	}
	// The cold path pays setup plus the same evaluation; warm pays
	// evaluation only, so it must be cheaper by the full setup cost.
	coldTotal := coldSetup + warm.TransferInSeconds + warm.ComputeSeconds + warm.TransferOutSeconds
	if warm.ModeledSeconds() >= coldTotal {
		t.Fatalf("warm request (%g s) not cheaper than cold setup + evaluation (%g s)",
			warm.ModeledSeconds(), coldTotal)
	}
	if !warm.CacheHit {
		t.Fatal("second request was not warm")
	}
	if warm.ComputeSeconds <= 0 || warm.TransferInSeconds <= 0 || warm.TransferOutSeconds <= 0 {
		t.Fatalf("warm request missing stage costs: %+v", warm)
	}
}

// TestConcurrentMixedRequests drives many goroutines with a mixed
// sigmoid/GELU/exp workload across 2 shards — the -race regression
// for the serving pipeline.
func TestConcurrentMixedRequests(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 2, MaxBatch: 128, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	specs := []struct {
		fn  core.Function
		par core.Params
		lo  float64
		hi  float64
		tol float64
	}{
		{core.Sigmoid, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}, -7.9, 7.9, 1e-3},
		{core.GELU, core.Params{Method: core.DLLUT, Interp: true, SizeLog2: 12}, -7.9, 7.9, 1e-2},
		{core.Exp, core.Params{Method: core.LLUTFixed, Interp: true, SizeLog2: 12}, -2.5, 2.5, 1e-2},
	}
	const goroutines = 12
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sp := specs[(g+r)%len(specs)]
				xs := stats.RandomInputs(sp.lo, sp.hi, 50+7*g, uint64(g*100+r))
				ys, st, err := e.EvaluateBatch(sp.fn, sp.par, xs)
				if err != nil {
					errs <- err
					return
				}
				if len(ys) != len(xs) {
					t.Errorf("got %d outputs for %d inputs", len(ys), len(xs))
					return
				}
				ref := sp.fn.Ref()
				for i, x := range xs {
					if diff := math.Abs(float64(ys[i]) - ref(float64(x))); diff > sp.tol {
						t.Errorf("g%d r%d: %v(%v) diff %g > %g", g, r, sp.fn, x, diff, sp.tol)
						return
					}
				}
				if st.Latency <= 0 {
					t.Errorf("g%d r%d: no latency recorded", g, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := e.Stats()
	if s.Requests != goroutines*rounds {
		t.Fatalf("requests = %d, want %d", s.Requests, goroutines*rounds)
	}
	// Tables exist on at most shards × specs: builds are bounded by
	// residency, not by request count.
	if s.CacheMisses > uint64(len(specs)*len(e.shards)) {
		t.Fatalf("cache misses = %d, want ≤ %d", s.CacheMisses, len(specs)*len(e.shards))
	}
	if e.CachedSpecs() != len(specs) {
		t.Fatalf("cached specs = %d, want %d", e.CachedSpecs(), len(specs))
	}
}

// TestCoalescing holds the batcher window open while several small
// same-spec requests arrive; they must ride in fewer batches than
// requests.
func TestCoalescing(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 4096, BatchWindow: 50 * time.Millisecond, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()

	const n = 8
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xs := stats.RandomInputs(-7.9, 7.9, 16, uint64(g))
			if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()

	s := e.Stats()
	if s.Batches >= s.Requests {
		t.Fatalf("no coalescing: %d batches for %d requests", s.Batches, s.Requests)
	}
	if s.CoalescedBatches == 0 {
		t.Fatal("no batch carried more than one request")
	}
}

// TestLargeRequestSplits checks a request bigger than MaxBatch is
// split across batches and still completes correctly.
func TestLargeRequestSplits(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 300, 7)
	ys, st, err := e.EvaluateBatch(fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := (300 + 63) / 64; st.Batches != want {
		t.Fatalf("request rode in %d batches, want %d", st.Batches, want)
	}
	checkAccuracy(t, fn, xs, ys, 1e-3)
}

// TestUnsupportedSpec checks the support matrix is enforced before
// anything is enqueued.
func TestUnsupportedSpec(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// CORDIC has no route to GELU (Table 2).
	if _, _, err := e.EvaluateBatch(core.GELU, core.Params{Method: core.CORDIC}, []float32{1}); err == nil {
		t.Fatal("expected an unsupported-pair error")
	}
	if _, _, err := e.EvaluateBatch(core.Sin, core.Params{Method: core.LLUT}, nil); err != nil {
		t.Fatalf("empty input should be a no-op, got %v", err)
	}
}

// TestClose checks shutdown drains cleanly and rejects later calls.
func TestClose(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	fn, par := llutSpec()
	if _, _, err := e.EvaluateBatch(fn, par, []float32{0.5}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, _, err := e.EvaluateBatch(fn, par, []float32{0.5}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("EvaluateBatch after Close = %v, want ErrEngineClosed", err)
	}
}

// --- pure helpers ---

func TestPlanBatches(t *testing.T) {
	mk := func(n int) *request {
		return &request{inputs: make([]float32, n), done: make(chan struct{})}
	}
	spec := Spec{Fn: core.Sin, Par: core.Params{Method: core.LLUT}.Normalized()}
	r1, r2, r3 := mk(10), mk(50), mk(100)
	batches := planBatches(spec, []*request{r1, r2, r3}, 64)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	// 10+50 fill batch 1 to 60; r3 splits 4 / 64 / 32.
	if batches[0].n != 64 || batches[1].n != 64 || batches[2].n != 32 {
		t.Fatalf("batch sizes %d/%d/%d, want 64/64/32", batches[0].n, batches[1].n, batches[2].n)
	}
	if len(batches[0].segs) != 3 {
		t.Fatalf("batch 0 has %d segs, want 3 (r1, r2, head of r3)", len(batches[0].segs))
	}
	if r3.remaining != 3 {
		t.Fatalf("r3 outstanding segments = %d, want 3", r3.remaining)
	}
	total := 0
	for _, b := range batches {
		for _, sg := range b.segs {
			total += sg.n
		}
	}
	if total != 160 {
		t.Fatalf("planned %d elements, want 160", total)
	}
}

func TestShardPlan(t *testing.T) {
	cases := []struct{ n, k, per, bytes int }{
		{100, 4, 25, 400},
		{101, 4, 26, 416}, // padded to equal chunks → parallel transfer
		{1, 8, 1, 32},     // n == 1: every bank still receives one padded element
		{8, 8, 1, 32},
		{3, 8, 1, 32},  // n < cores: padding fills the idle banks
		{9, 8, 2, 64},  // n % cores != 0: one extra element per chunk
		{63, 8, 8, 256},
	}
	for _, c := range cases {
		per, bytes := shardPlan(c.n, c.k)
		if per != c.per || bytes != c.bytes {
			t.Errorf("shardPlan(%d,%d) = (%d,%d), want (%d,%d)", c.n, c.k, per, bytes, c.per, c.bytes)
		}
	}
}
