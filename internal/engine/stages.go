package engine

import (
	"transpimlib/internal/core"
	"transpimlib/internal/telemetry"
)

// This file names the engine's pipeline seams as small interfaces so
// the stages are separable: a BatchPlanner decides how queued requests
// become batches, a ShardPlanner decides how a batch's elements spread
// over a shard's lanes, and an Executor is the whole execution stage a
// front-end router can feed. The engine wires the default
// implementations at construction; internal/cluster treats each engine
// replica as one Executor and never reaches below this surface.

// BatchPlanner packs same-spec requests into dispatchable batches. It
// runs on the batcher goroutine; implementations must record each
// request's outstanding segment count (see planBatches).
type BatchPlanner interface {
	Plan(spec Spec, reqs []*request, maxBatch int) []*batch
}

// coalescePlanner is the default BatchPlanner: greedy packing up to
// maxBatch elements with oversized requests split across batches.
type coalescePlanner struct{}

func (coalescePlanner) Plan(spec Spec, reqs []*request, maxBatch int) []*batch {
	return planBatches(spec, reqs, maxBatch)
}

// ShardPlanner distributes a batch's n elements over a shard's k
// lanes, returning the per-lane element count and the padded
// rank-wide byte count charged per transfer direction.
type ShardPlanner interface {
	Plan(n, lanes int) (perLane, paddedBytes int)
}

// paddedPlanner is the default ShardPlanner: equal ceil(n/k) chunks
// padded so every bank moves the same buffer size and the host↔PIM
// interface stays in its parallel mode (§2.1).
type paddedPlanner struct{}

func (paddedPlanner) Plan(n, lanes int) (int, int) { return shardPlan(n, lanes) }

// Executor is the execution stage seen from above: something that can
// evaluate a batch for a tenant, report its backlog and counters, and
// shut down. *Engine is the canonical implementation; the cluster
// router feeds requests to a set of Executors and a test can feed it
// fakes.
type Executor interface {
	// EvaluateBatchTenant evaluates fn(x) for every x under p,
	// attributing the request to tenant. Safe for concurrent use.
	EvaluateBatchTenant(tenant string, fn core.Function, p core.Params, xs []float32) ([]float32, RequestStats, error)
	// QueueDepth is the current coalescing-batcher backlog — the
	// router's least-loaded placement signal.
	QueueDepth() int
	// Stats snapshots the executor-wide counters.
	Stats() Stats
	// Close drains in-flight work and stops the executor.
	Close()
}

var _ Executor = (*Engine)(nil)

// TracedExecutor is an Executor that accepts an externally minted
// trace identity and returns the request's assembled span tree, so a
// router can graft the execution-side spans under its own placement
// spans — one connected trace across layers. Executors without tracing
// enabled return a nil trace.
type TracedExecutor interface {
	Executor
	EvaluateBatchTraced(tenant string, traceID uint64, fn core.Function, p core.Params, xs []float32) ([]float32, RequestStats, *telemetry.Trace, error)
}

var _ TracedExecutor = (*Engine)(nil)
