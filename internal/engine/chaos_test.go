package engine

import (
	"reflect"
	"sync"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/faultsim"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

// mustPlan parses a fault plan or fails the test.
func mustPlan(t *testing.T, s string) *faultsim.Plan {
	t.Helper()
	p, err := faultsim.ParsePlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return &p
}

// runSequential evaluates each input slice as its own request, in
// order, returning outputs and per-request stats.
func runSequential(t *testing.T, e *Engine, fn core.Function, par core.Params, inputs [][]float32) ([][]float32, []RequestStats) {
	t.Helper()
	outs := make([][]float32, len(inputs))
	sts := make([]RequestStats, len(inputs))
	for i, xs := range inputs {
		ys, st, err := e.EvaluateBatch(fn, par, xs)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		outs[i], sts[i] = ys, st
	}
	return outs, sts
}

func chaosInputs(n, elems int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = stats.RandomInputs(-7.5, 7.5, elems, uint64(i+1))
	}
	return out
}

// TestFaultsDisabledBitIdentical is the differential acceptance gate:
// an engine whose plan is enabled but can never fire (the window sits
// beyond any batch the workload dispatches) must produce outputs,
// modeled cycles and modeled stage seconds bit-identical to the
// fault-free engine. This pins the gating invariant — the reliability
// machinery adds nothing when no fault fires.
func TestFaultsDisabledBitIdentical(t *testing.T) {
	fn, par := llutSpec()
	inputs := chaosInputs(12, 300)

	clean, err := New(Config{DPUs: 4, Shards: 1, MaxBatch: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	armed, err := New(Config{
		DPUs: 4, Shards: 1, MaxBatch: 512,
		Faults: mustPlan(t, "seed=42,dpufail=1@1000000-2000000,transfer=1@1000000-2000000"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer armed.Close()

	outC, stC := runSequential(t, clean, fn, par, inputs)
	outA, stA := runSequential(t, armed, fn, par, inputs)
	for i := range inputs {
		if !reflect.DeepEqual(outC[i], outA[i]) {
			t.Fatalf("request %d outputs diverge with a never-firing plan", i)
		}
		if stC[i].KernelCycles != stA[i].KernelCycles {
			t.Fatalf("request %d cycles diverge: %d vs %d", i, stC[i].KernelCycles, stA[i].KernelCycles)
		}
		// SetupSeconds carries a wall-clock generation component (the
		// Fig.-6 host-side build is measured, not modeled) and is never
		// bit-comparable across engines; the fully modeled stage costs
		// must match exactly.
		if stC[i].TransferInSeconds != stA[i].TransferInSeconds ||
			stC[i].ComputeSeconds != stA[i].ComputeSeconds ||
			stC[i].TransferOutSeconds != stA[i].TransferOutSeconds {
			t.Fatalf("request %d modeled stage seconds diverge:\nclean %+v\narmed %+v", i, stC[i], stA[i])
		}
		if stA[i].Degraded || stA[i].Retries != 0 || stA[i].Remaps != 0 {
			t.Fatalf("request %d reports recovery activity with no faults: %+v", i, stA[i])
		}
	}
	if ev := armed.FaultEvents(); len(ev) != 0 {
		t.Fatalf("never-firing plan recorded %d events", len(ev))
	}
}

// chaosConfig is the acceptance scenario: ≥5%% hard-failure rate plus
// transfer and bit-flip faults on a single shard (the configuration
// whose event log is replay-deterministic).
func chaosConfig(seed string) Config {
	return Config{
		DPUs: 4, Shards: 1, MaxBatch: 512,
		Faults: &faultsim.Plan{
			Seed:        42,
			DPUFail:     faultsim.Schedule{Rate: 0.05},
			DPUSlow:     faultsim.Schedule{Rate: 0.05},
			BitFlip:     faultsim.Schedule{Rate: 0.02},
			TransferIn:  faultsim.Schedule{Rate: 0.05},
			TransferOut: faultsim.Schedule{Rate: 0.05},
		},
	}
}

// TestChaosAllRequestsCorrect: under seeded random DPU failures,
// stragglers, bit-flips and transfer errors, every request completes
// and every output is bit-identical to the fault-free engine — either
// the device produced it after recovery, or the bit-exact host mirror
// did and the request carries the Degraded marker.
func TestChaosAllRequestsCorrect(t *testing.T) {
	fn, par := llutSpec()
	inputs := chaosInputs(40, 333)

	clean, err := New(Config{DPUs: 4, Shards: 1, MaxBatch: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	chaos, err := New(chaosConfig("42"))
	if err != nil {
		t.Fatal(err)
	}
	defer chaos.Close()

	outC, _ := runSequential(t, clean, fn, par, inputs)
	outX, stX := runSequential(t, chaos, fn, par, inputs)
	for i := range inputs {
		if !reflect.DeepEqual(outC[i], outX[i]) {
			t.Fatalf("request %d outputs wrong under chaos (degraded=%v)", i, stX[i].Degraded)
		}
	}
	st := chaos.Stats()
	if st.FaultsInjected == 0 {
		t.Fatal("chaos plan injected no faults — the scenario tested nothing")
	}
	if len(chaos.FaultEvents()) == 0 {
		t.Fatal("no fault events recorded")
	}
	t.Logf("chaos: %d faults, %d launch retries, %d transfer retries, %d remaps, %d degraded, %d repairs",
		st.FaultsInjected, st.LaunchRetries, st.TransferRetries, st.Remaps, st.DegradedBatches, st.TableRepairs)
}

// TestChaosEventLogReproducible: re-running the identical workload
// under the identical seed reproduces the identical canonical event
// log — the replayability acceptance criterion.
func TestChaosEventLogReproducible(t *testing.T) {
	fn, par := llutSpec()
	inputs := chaosInputs(30, 257)
	run := func() []faultsim.Event {
		e, err := New(chaosConfig("42"))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		runSequential(t, e, fn, par, inputs)
		return e.FaultEvents()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events fired")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event logs diverge across identical runs:\n%d events vs %d", len(a), len(b))
	}
}

// TestChaosConcurrentClients: correctness (not log determinism, which
// needs a single shard) holds with concurrent submitters over two
// shards; runs under -race in CI.
func TestChaosConcurrentClients(t *testing.T) {
	fn, par := llutSpec()
	inputs := chaosInputs(16, 200)

	clean, err := New(Config{DPUs: 4, Shards: 2, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	outC, _ := runSequential(t, clean, fn, par, inputs)

	cfg := chaosConfig("42")
	cfg.Shards = 2
	cfg.MaxBatch = 256
	chaos, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer chaos.Close()

	var wg sync.WaitGroup
	errs := make([]error, len(inputs))
	outs := make([][]float32, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _, errs[i] = chaos.EvaluateBatch(fn, par, inputs[i])
		}(i)
	}
	wg.Wait()
	for i := range inputs {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if !reflect.DeepEqual(outC[i], outs[i]) {
			t.Fatalf("request %d outputs wrong under concurrent chaos", i)
		}
	}
}

// TestForcedDegrade: with a 100%% hard-failure rate no launch can ever
// succeed; every request must still complete with correct outputs via
// the host mirror, carrying the Degraded marker.
func TestForcedDegrade(t *testing.T) {
	fn, par := llutSpec()
	inputs := chaosInputs(6, 150)

	clean, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	outC, _ := runSequential(t, clean, fn, par, inputs)

	e, err := New(Config{
		DPUs: 2, Shards: 1, MaxBatch: 256,
		Faults: mustPlan(t, "seed=7,dpufail=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	outX, stX := runSequential(t, e, fn, par, inputs)
	for i := range inputs {
		if !stX[i].Degraded {
			t.Fatalf("request %d not marked degraded under total DPU failure", i)
		}
		if !reflect.DeepEqual(outC[i], outX[i]) {
			t.Fatalf("request %d degraded outputs differ from the device reference", i)
		}
	}
	if st := e.Stats(); st.DegradedBatches == 0 {
		t.Fatal("no degraded batches counted")
	}
}

// TestBitFlipScrubRepair: with flips on every batch, the scrubber must
// detect and repair the corruption before any kernel reads the tables
// — outputs stay bit-identical to the clean engine. Tables must live
// in MRAM: the fault class models DRAM-bank bit-flips, so
// WRAM-resident tables are out of scope (and out of reach).
func TestBitFlipScrubRepair(t *testing.T) {
	fn, par := llutSpec()
	par.Placement = pimsim.InMRAM
	inputs := chaosInputs(8, 200)

	clean, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	outC, _ := runSequential(t, clean, fn, par, inputs)

	e, err := New(Config{
		DPUs: 2, Shards: 1, MaxBatch: 256,
		Faults: mustPlan(t, "seed=3,bitflip=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	outX, _ := runSequential(t, e, fn, par, inputs)
	for i := range inputs {
		if !reflect.DeepEqual(outC[i], outX[i]) {
			t.Fatalf("request %d outputs wrong after bit-flip scrubbing", i)
		}
	}
	st := e.Stats()
	if st.TableCorruptions == 0 || st.TableRepairs == 0 {
		t.Fatalf("scrubber found %d corruptions / %d repairs, want > 0",
			st.TableCorruptions, st.TableRepairs)
	}
}

// TestQuarantineRemap: three consecutive triggered failures of one
// lane quarantine it; subsequent batches are remapped onto the healthy
// core with correct (non-degraded) results.
func TestQuarantineRemap(t *testing.T) {
	fn, par := llutSpec()
	inputs := chaosInputs(10, 60) // small enough for one core's slot

	clean, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	outC, _ := runSequential(t, clean, fn, par, inputs)

	e, err := New(Config{
		DPUs: 2, Shards: 1, MaxBatch: 256,
		Faults: mustPlan(t, "seed=1,failat=1:1;2:1;3:1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	outX, _ := runSequential(t, e, fn, par, inputs)
	for i := range inputs {
		if !reflect.DeepEqual(outC[i], outX[i]) {
			t.Fatalf("request %d outputs wrong after quarantine remap", i)
		}
	}
	st := e.Stats()
	if st.Remaps == 0 {
		t.Fatal("no remaps despite a quarantined core")
	}
	if st.DegradedBatches != 0 {
		t.Fatalf("%d batches degraded; remapping should have absorbed the failures", st.DegradedBatches)
	}
	quarantined := 0
	for _, lh := range e.Health() {
		if lh.Quarantined || lh.Probation {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Fatal("health scoreboard shows no quarantined/probation core")
	}
}

// TestHedgedLaunch: a triggered straggler beyond the hedge ratio gets
// its chunk relaunched; outputs stay correct and the hedge is counted.
func TestHedgedLaunch(t *testing.T) {
	fn, par := llutSpec()
	inputs := chaosInputs(3, 200)

	clean, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	outC, _ := runSequential(t, clean, fn, par, inputs)

	e, err := New(Config{
		DPUs: 2, Shards: 1, MaxBatch: 256,
		Faults:      mustPlan(t, "seed=5,slowat=1:1;2:1;3:1,slowfactor=8"),
		Reliability: ReliabilityConfig{HedgeRatio: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	outX, stX := runSequential(t, e, fn, par, inputs)
	for i := range inputs {
		if !reflect.DeepEqual(outC[i], outX[i]) {
			t.Fatalf("request %d outputs wrong with hedging", i)
		}
	}
	if st := e.Stats(); st.Hedges == 0 {
		t.Fatal("no hedged launches despite forced stragglers")
	}
	hedged := false
	for _, st := range stX {
		hedged = hedged || st.Hedges > 0
	}
	if !hedged {
		t.Fatal("no request reported a hedge")
	}
}

// TestLaunchTimeout: a straggler beyond the modeled launch timeout is
// failed and retried (fresh draws usually run clean); outputs stay
// correct and the timeout is counted.
func TestLaunchTimeout(t *testing.T) {
	fn, par := llutSpec()
	inputs := chaosInputs(3, 200)

	// Measure a clean batch's modeled compute time to place the cutoff
	// between 1x and 8x of it.
	clean, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	outC, stC := runSequential(t, clean, fn, par, inputs)
	clean.Close()
	cutoff := 2 * stC[0].ComputeSeconds

	e, err := New(Config{
		DPUs: 2, Shards: 1, MaxBatch: 256,
		Faults:      mustPlan(t, "seed=5,slowat=1:1,slowfactor=8"),
		Reliability: ReliabilityConfig{LaunchTimeout: cutoff},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	outX, _ := runSequential(t, e, fn, par, inputs)
	for i := range inputs {
		if !reflect.DeepEqual(outC[i], outX[i]) {
			t.Fatalf("request %d outputs wrong with launch timeouts", i)
		}
	}
	if st := e.Stats(); st.LaunchTimeouts == 0 {
		t.Fatal("no launch timeouts despite a forced straggler")
	}
}
