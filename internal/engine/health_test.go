package engine

import (
	"reflect"
	"testing"
)

func testRel() ReliabilityConfig {
	return ReliabilityConfig{}.withDefaults() // QuarantineAfter 3, ProbationAfter 16, ProbationSuccesses 2
}

// TestQuarantineEntry: a DPU is quarantined exactly at the consecutive-
// failure threshold, and a success before it resets the streak.
func TestQuarantineEntry(t *testing.T) {
	h := NewHealthTracker(2, testRel())
	h.RecordFailure(0, 1)
	h.RecordFailure(0, 2)
	if !h.Available(0, 3) {
		t.Fatal("dpu 0 quarantined below the threshold")
	}
	h.RecordSuccess(0) // streak reset
	h.RecordFailure(0, 4)
	h.RecordFailure(0, 5)
	if !h.Available(0, 6) {
		t.Fatal("dpu 0 quarantined after a reset streak of 2")
	}
	h.RecordFailure(0, 6) // third consecutive → quarantine
	if h.Available(0, 7) {
		t.Fatal("dpu 0 available at the quarantine threshold")
	}
	if h.QuarantinedCount() != 1 {
		t.Fatalf("quarantinedCount = %d, want 1", h.QuarantinedCount())
	}
	if h.Available(1, 7) != true {
		t.Fatal("healthy dpu 1 unavailable")
	}
}

// TestQuarantineExitAndProbation: the penalty lapses after
// ProbationAfter seqs, the core returns on probation, and
// ProbationSuccesses clean launches fully re-admit it.
func TestQuarantineExitAndProbation(t *testing.T) {
	rel := testRel()
	h := NewHealthTracker(1, rel)
	for i := uint64(1); i <= 3; i++ {
		h.RecordFailure(0, 10)
	}
	if h.Available(0, 10+rel.ProbationAfter-1) {
		t.Fatal("available before the penalty lapsed")
	}
	if !h.Available(0, 10+rel.ProbationAfter) {
		t.Fatal("not re-admitted on probation after the penalty")
	}
	sn := h.Snapshot()[0]
	if !sn.Probation || sn.Quarantined {
		t.Fatalf("post-penalty state = %+v, want probation", sn)
	}
	h.RecordSuccess(0)
	if sn := h.Snapshot()[0]; !sn.Probation {
		t.Fatal("probation cleared after one success, want two")
	}
	h.RecordSuccess(0)
	if sn := h.Snapshot()[0]; sn.Probation || sn.Quarantined {
		t.Fatalf("state after full re-admission = %+v", sn)
	}
}

// TestProbationFailureRequarantines: any failure on probation
// re-quarantines immediately with a doubled penalty.
func TestProbationFailureRequarantines(t *testing.T) {
	rel := testRel()
	h := NewHealthTracker(1, rel)
	for i := 0; i < 3; i++ {
		h.RecordFailure(0, 10)
	}
	if !h.Available(0, 10+rel.ProbationAfter) {
		t.Fatal("not on probation")
	}
	h.RecordFailure(0, 30) // single probation failure
	if h.Available(0, 31) {
		t.Fatal("probation failure did not re-quarantine")
	}
	// Penalty doubled: 2×ProbationAfter from seq 30.
	if h.Available(0, 30+2*rel.ProbationAfter-1) {
		t.Fatal("re-quarantine penalty did not double")
	}
	if !h.Available(0, 30+2*rel.ProbationAfter) {
		t.Fatal("not re-admitted after the doubled penalty")
	}
}

// TestHealthDeterminism: identical failure/success sequences produce
// identical scoreboards — the property that makes chaos-run remapping
// replayable.
func TestHealthDeterminism(t *testing.T) {
	run := func() []LaneHealth {
		h := NewHealthTracker(4, testRel())
		script := []struct {
			dpu  int
			seq  uint64
			fail bool
		}{
			{0, 1, true}, {1, 1, false}, {0, 2, true}, {0, 3, true},
			{2, 4, true}, {1, 5, true}, {0, 20, false}, {3, 21, true},
		}
		for _, s := range script {
			if s.fail {
				h.RecordFailure(s.dpu, s.seq)
			} else {
				h.RecordSuccess(s.dpu)
			}
			h.Available(s.dpu, s.seq)
		}
		return h.Snapshot()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical scripts diverged:\n%+v\n%+v", a, b)
	}
}

// TestBackoffSchedule: the modeled backoff doubles per attempt and is
// a pure function of the config (deterministic across identical
// seeds/plans).
func TestBackoffSchedule(t *testing.T) {
	rel := ReliabilityConfig{RetryBackoff: 2e-6}.withDefaults()
	want := []float64{2e-6, 4e-6, 8e-6, 16e-6}
	for i, w := range want {
		if got := rel.backoff(uint64(i + 1)); got != w {
			t.Errorf("backoff(%d) = %g, want %g", i+1, got, w)
		}
	}
	again := ReliabilityConfig{RetryBackoff: 2e-6}.withDefaults()
	for n := uint64(1); n < 8; n++ {
		if rel.backoff(n) != again.backoff(n) {
			t.Fatalf("backoff(%d) not deterministic", n)
		}
	}
}
