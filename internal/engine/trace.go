package engine

import (
	"fmt"
	"time"

	"transpimlib/internal/telemetry"
)

// batchTrace carries the wall-clock stage stamps of one batch while
// it moves through a shard's pipeline. It is allocated only when
// tracing is enabled (batch.tr stays nil otherwise, so the disabled
// path never calls time.Now on the stage goroutines), and each field
// is written by exactly one stage goroutine before the batch is
// handed to the next stage — the channel send is the happens-before
// edge, so the drain stage reads a fully stamped struct.
type batchTrace struct {
	shard int

	inStart, inEnd       time.Time // stageTransferIn: scatter + charge
	setupStart, setupEnd time.Time // stageCompute: cache ensure (≈0 on a hit)
	kernStart, kernEnd   time.Time // stageCompute: LaunchShard
	outStart, outEnd     time.Time // stageTransferOut: gather + charge
}

// buildTrace assembles a completed request's span tree:
//
//	request
//	├─ queue              (enqueue → first batch picked up)
//	├─ batch[k]           (one per pipeline batch the request rode in)
//	│  ├─ transfer_in     wall + modeled host→PIM seconds
//	│  ├─ setup           cache ensure; modeled generation+broadcast
//	│  ├─ kernel          wall + modeled cycles/seconds
//	│  └─ transfer_out    gather + modeled PIM→host seconds
//	└─ error              terminal span, present only on failure
//
// It runs on the drain-stage goroutine after the request's last
// segment completed, so every field it reads is quiescent.
func buildTrace(r *request, id uint64, end time.Time, proc string) *telemetry.Trace {
	root := &telemetry.Span{
		Name:  "request",
		Start: r.enqueued,
		End:   end,
		Shard: r.stats.ShardID,
		Proc:  proc,
	}
	if r.prog != nil {
		root.SetAttr("program", r.prog.Name())
		root.SetAttr("method", "fused:"+r.prog.Name())
		root.SetAttr("phases", fmt.Sprint(r.prog.NumPhases()))
		root.SetAttr("elements", fmt.Sprint(len(r.pinputs[0])))
	} else {
		root.SetAttr("fn", r.spec.Fn.String())
		root.SetAttr("method", r.spec.Par.Method.String())
		root.SetAttr("elements", fmt.Sprint(len(r.inputs)))
	}
	root.SetAttr("batches", fmt.Sprint(r.stats.Batches))
	root.SetAttr("cache_hit", fmt.Sprint(r.stats.CacheHit))
	if r.tenant != "" {
		root.SetAttr("tenant", r.tenant)
	}
	if r.sloBreached {
		// The accuracy watcher tripped an SLO window on this request's
		// shadow samples; fault-free, SLO-clean traces stay unchanged.
		root.SetAttr("accuracy_slo_breached", "true")
	}

	if len(r.batchTraces) > 0 {
		q := &telemetry.Span{
			Name:  "queue",
			Start: r.enqueued,
			End:   r.batchTraces[0].tr.inStart,
			Shard: r.batchTraces[0].tr.shard,
		}
		root.AddChild(q)
	}
	for k, bt := range r.batchTraces {
		b, tr := bt.b, bt.tr
		bs := &telemetry.Span{
			Name:    fmt.Sprintf("batch[%d]", k),
			Start:   tr.inStart,
			End:     tr.outEnd,
			Shard:   tr.shard,
			Modeled: b.setup + b.tin + b.tcomp + b.tout,
		}
		bs.SetAttr("elements", fmt.Sprint(b.n))
		bs.SetAttr("requests", fmt.Sprint(len(b.segs)))
		// Recovery outcomes, attached only when something happened so
		// fault-free traces stay unchanged.
		if b.retries > 0 {
			bs.SetAttr("retries", fmt.Sprint(b.retries))
		}
		if b.remapped {
			bs.SetAttr("remapped", "true")
		}
		if b.hedged {
			bs.SetAttr("hedged", "true")
		}
		if b.degraded {
			bs.SetAttr("degraded", "true")
		}
		if b.err != nil {
			bs.Err = b.err.Error()
		}
		bs.AddChild(&telemetry.Span{
			Name: "transfer_in", Start: tr.inStart, End: tr.inEnd,
			Shard: tr.shard, Modeled: b.tin,
		})
		setup := &telemetry.Span{
			Name: "setup", Start: tr.setupStart, End: tr.setupEnd,
			Shard: tr.shard, Modeled: b.setup,
		}
		setup.SetAttr("cache_hit", fmt.Sprint(b.hit))
		bs.AddChild(setup)
		if b.err == nil {
			kern := &telemetry.Span{
				Name: "kernel", Start: tr.kernStart, End: tr.kernEnd,
				Shard: tr.shard, Modeled: b.tcomp,
			}
			kern.SetAttr("cycles", fmt.Sprint(b.cycles))
			bs.AddChild(kern)
			bs.AddChild(&telemetry.Span{
				Name: "transfer_out", Start: tr.outStart, End: tr.outEnd,
				Shard: tr.shard, Modeled: b.tout,
			})
		}
		root.AddChild(bs)
	}
	if r.err != nil {
		// The Err-carrying terminal span: failed requests stay visible
		// in the trace tree, not just in the error return.
		root.Err = r.err.Error()
		root.AddChild(&telemetry.Span{
			Name: "error", Start: end, End: end,
			Shard: r.stats.ShardID, Err: r.err.Error(),
		})
	}
	return &telemetry.Trace{ID: id, Root: root}
}
