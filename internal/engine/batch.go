package engine

import (
	"sync"
	"time"

	"transpimlib/internal/fusion"
	"transpimlib/internal/telemetry"
)

// request is one in-flight EvaluateBatch call. A request may be split
// into several batches (when larger than MaxBatch) and may share a
// batch with other requests (when coalesced); it completes when its
// last segment drains.
type request struct {
	spec Spec
	// tenant attributes the request's shadow samples to a
	// per-(function, method, tenant) accuracy series; "" is the
	// anonymous series. It does not affect batching or results.
	tenant   string
	inputs   []float32
	outputs  []float32
	enqueued time.Time
	done     chan struct{}

	// Fused-program request fields (program.go): prog is the compiled
	// program and pinputs/pscalars its bound arguments; spec/inputs are
	// unused when prog is set. outputs holds the program result (the
	// batch size, or 1 for a scalar-returning program).
	prog     *fusion.Compiled
	pinputs  [][]float32
	pscalars []float32

	mu        sync.Mutex
	remaining int // segments not yet drained
	err       error
	stats     RequestStats

	// sloBreached is set by the drain stage's shadow-sampling hook
	// when this request's samples closed a window that failed an
	// accuracy SLO; buildTrace annotates the root span with it. The
	// request is quiescent when it is written (see finishRequest).
	sloBreached bool

	// batchTraces collects the stage stamps of every batch the request
	// rode in, in completion order; nil unless tracing is enabled.
	batchTraces []batchRef

	// extID, when nonzero, is an externally minted trace ID (the
	// cluster router's) that replaces the tracer's own; wantTrace asks
	// finishRequest to store the assembled span tree in trace before
	// releasing the caller (see EvaluateBatchTraced). Both are written
	// before submit and read only after the request is quiescent.
	extID     uint64
	wantTrace bool
	trace     *telemetry.Trace
}

// batchRef pairs a drained batch with its wall-clock stage stamps for
// trace assembly.
type batchRef struct {
	b  *batch
	tr *batchTrace
}

// complete records one drained batch against the request. It reports
// whether this was the request's last outstanding segment; the caller
// (the drain stage) finishes the request — latency observation, trace
// assembly, closing done — outside the lock.
func (r *request) complete(b *batch, shardID int) (last bool) {
	r.mu.Lock()
	if b.err != nil && r.err == nil {
		r.err = b.err
	}
	r.stats.ShardID = shardID
	r.stats.Batches++
	r.stats.BatchElements += b.n
	if !b.hit {
		r.stats.CacheHit = false
	}
	r.stats.SetupSeconds += b.setup
	r.stats.TransferInSeconds += b.tin
	r.stats.ComputeSeconds += b.tcomp
	r.stats.TransferOutSeconds += b.tout
	r.stats.KernelCycles += b.cycles
	if b.degraded {
		r.stats.Degraded = true
	}
	r.stats.Retries += b.retries
	if b.remapped {
		r.stats.Remaps++
	}
	if b.hedged {
		r.stats.Hedges++
	}
	if b.tr != nil {
		r.batchTraces = append(r.batchTraces, batchRef{b: b, tr: b.tr})
	}
	r.remaining--
	last = r.remaining == 0
	if last {
		r.stats.Latency = time.Since(r.enqueued)
	}
	r.mu.Unlock()
	return last
}

// seg is a contiguous slice of one request packed into a batch.
type seg struct {
	req *request
	off int // offset into req.inputs / req.outputs
	n   int
}

// batch is the pipeline's unit of work: same-spec segments coalesced
// up to MaxBatch elements, dispatched to one shard, and carried
// through transfer-in → compute → transfer-out.
type batch struct {
	spec Spec
	segs []seg
	n    int // total elements

	// seq is the batch's dispatch sequence number — the deterministic
	// clock fault-injection decisions key on. Assigned by the batcher.
	seq uint64

	// Set by the pipeline stages.
	slot   int     // shard buffer slot held while in flight
	perDPU int     // elements per core after shard planning
	hit    bool    // tables were resident on the serving shard
	setup  float64 // modeled setup charged (cache miss only)
	tin    float64 // modeled host→PIM seconds
	tcomp  float64 // modeled kernel seconds (slowest core)
	tout   float64 // modeled PIM→host seconds
	cycles uint64  // modeled kernel cycles (slowest core)
	err    error

	// Compiled-plan staging decisions, made at transfer-in when a plan
	// hit resolves the batch's shape (plan.go). direct evaluates a
	// single-segment batch straight between the request's own
	// input/output slices — no staging copy, no MRAM round-trip;
	// hostOut stages coalesced batches through the flat host buffers
	// but skips MRAM. Modeled charges are identical either way (the
	// differential contract). Both stay false under fault injection.
	plan    *batchPlan
	direct  bool
	hostOut bool

	// Fused-program batch fields (program.go): prog carries the whole
	// program as one single-segment batch; pIn/pOut accumulate its
	// metered host↔PIM bytes across transfer-in, the phase syncs, and
	// transfer-out (they reconcile exactly against the compiler's
	// analytic byte model).
	prog     *fusion.Compiled
	pIn, pOut int

	// Reliability outcomes (fault injection only; see reliability.go).
	lanes    []int // healthy-lane chunk layout when remapped
	retries  int   // launch + transfer retries spent on this batch
	remapped bool  // served by a subset of the shard's cores
	hedged   bool  // slowest lane relaunched
	degraded bool  // completed via the recovery ladder's last rung
	hostEval bool  // outputs produced by the host mirror (staging only)
	inFailed bool  // transfer-in exhausted its retries

	// tr holds the wall-clock stage stamps when tracing is enabled;
	// nil otherwise, so the disabled path skips every time.Now call.
	tr *batchTrace
}

// batchPool recycles drained batches (and their segment slices) so the
// steady-state pipeline allocates nothing per batch. Traced batches
// are retained by request span trees and bypass the pool.
var batchPool = sync.Pool{New: func() any { return new(batch) }}

// newBatch takes a recycled batch from the pool, reset for spec but
// keeping its segment slice capacity.
func newBatch(spec Spec) *batch {
	b := batchPool.Get().(*batch)
	segs := b.segs[:0]
	lanes := b.lanes[:0]
	*b = batch{spec: spec, segs: segs, lanes: lanes}
	return b
}

// releaseBatch returns a fully drained batch to the pool. Batches with
// trace stamps are kept alive by their requests' traces and must not
// be recycled.
func releaseBatch(b *batch) {
	if b.tr != nil {
		return
	}
	batchPool.Put(b)
}

// planBatches packs same-spec requests into batches of at most
// maxBatch elements, splitting oversized requests across several
// batches, and records each request's outstanding segment count. Pure
// packing logic, separated from the batcher goroutine for testing.
func planBatches(spec Spec, reqs []*request, maxBatch int) []*batch {
	var out []*batch
	b := newBatch(spec)
	for _, r := range reqs {
		segments := 0
		for off := 0; off < len(r.inputs); {
			space := maxBatch - b.n
			if space == 0 {
				out = append(out, b)
				b = newBatch(spec)
				space = maxBatch
			}
			n := len(r.inputs) - off
			if n > space {
				n = space
			}
			b.segs = append(b.segs, seg{req: r, off: off, n: n})
			b.n += n
			off += n
			segments++
		}
		r.mu.Lock()
		r.remaining += segments
		r.mu.Unlock()
	}
	if b.n > 0 {
		out = append(out, b)
	} else {
		releaseBatch(b)
	}
	return out
}

// shardPlan distributes n batch elements over k cores: equal
// ceil(n/k)-element chunks, padded so every bank receives the same
// buffer size and the host↔PIM interface stays in its parallel mode
// (unequal per-bank buffers would degrade to the serial bandwidth,
// §2.1). Returns elements per core and the padded rank-wide byte
// count per direction.
func shardPlan(n, k int) (perDPU, paddedBytes int) {
	perDPU = (n + k - 1) / k
	return perDPU, perDPU * 4 * k
}
