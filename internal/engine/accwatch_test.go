package engine

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"transpimlib/internal/accwatch"
	"transpimlib/internal/core"
	"transpimlib/internal/stats"
)

// TestAccuracyDisabledBitIdentical is the acceptance check for the
// watcher's cost discipline: an engine with shadow sampling enabled at
// full rate must produce bit-identical outputs and identical modeled
// cycle accounting to one without it — the watcher reads completed
// requests, it never touches the compute pipeline.
func TestAccuracyDisabledBitIdentical(t *testing.T) {
	cfg := Config{DPUs: 2, Shards: 1, MaxBatch: 256}
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	wcfg := cfg
	wcfg.Accuracy = accwatch.Config{Enabled: true, SampleRate: 1.0}
	watched, err := New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer watched.Close()

	fn, par := llutSpec()
	for round := 0; round < 3; round++ {
		xs := stats.RandomInputs(-7.9, 7.9, 300, uint64(round+1))
		pOut, pSt, err := plain.EvaluateBatch(fn, par, xs)
		if err != nil {
			t.Fatal(err)
		}
		wOut, wSt, err := watched.EvaluateBatch(fn, par, xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if math.Float32bits(pOut[i]) != math.Float32bits(wOut[i]) {
				t.Fatalf("round %d output %d: plain %v != watched %v", round, i, pOut[i], wOut[i])
			}
		}
		if pSt.KernelCycles != wSt.KernelCycles {
			t.Fatalf("round %d kernel cycles: plain %d != watched %d", round, pSt.KernelCycles, wSt.KernelCycles)
		}
	}
	if _, ok := plain.Accuracy(); ok {
		t.Fatal("disabled engine reports an accuracy snapshot")
	}
	if snap, ok := watched.Accuracy(); !ok || snap.Samples == 0 {
		t.Fatalf("watched engine snapshot = %+v, ok=%v; want samples > 0", snap, ok)
	}
}

// TestAccuracyDisabledNoWatcher pins the disabled path's shape: no
// watcher object exists, the sampling hook is one nil check, and a nil
// watcher's Sample is allocation-free (the accwatch package pins the
// same property; this is the engine-level face of it).
func TestAccuracyDisabledNoWatcher(t *testing.T) {
	e, err := New(Config{DPUs: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.acc != nil {
		t.Fatal("engine built a watcher with Accuracy.Enabled false")
	}
	if avg := testing.AllocsPerRun(100, func() {
		e.acc.Sample(accwatch.Request{}, nil, nil)
	}); avg != 0 {
		t.Fatalf("nil-watcher Sample allocates %.1f objects, want 0", avg)
	}
}

// TestOnlineMatchesOffline is the bit-comparability acceptance check:
// at SampleRate 1.0 the watcher's cumulative per-series errors must
// exactly equal an offline stats.Collector fed the same (output,
// reference) pairs — both paths route through stats.Deviation, so
// online /debug/accuracy numbers and cmd/tplaccuracy numbers agree to
// the last bit on the same inputs.
func TestOnlineMatchesOffline(t *testing.T) {
	e, err := New(Config{
		DPUs: 1, Shards: 1, MaxBatch: 128,
		Accuracy: accwatch.Config{Enabled: true, SampleRate: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	fn, par := llutSpec()
	ref := fn.Ref()
	var offline stats.Collector
	for round := 0; round < 4; round++ {
		xs := stats.RandomInputs(-7.9, 7.9, 257, uint64(100+round))
		ys, _, err := e.EvaluateBatch(fn, par, xs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			offline.Add(ys[i], ref(float64(xs[i])))
		}
	}

	snap, ok := e.Accuracy()
	if !ok || len(snap.Series) != 1 {
		t.Fatalf("snapshot ok=%v series=%d, want 1 series", ok, len(snap.Series))
	}
	if snap.Series[0].Key.Method != "l-lut(i)" {
		t.Fatalf("method label = %q, want %q", snap.Series[0].Key.Method, "l-lut(i)")
	}
	if got, want := snap.Series[0].Cumulative, offline.Result(); got != want {
		t.Fatalf("online cumulative %+v != offline collector %+v", got, want)
	}
}

// TestAccuracySLOTripAndCoverage drives the acceptance scenario: a
// traffic shift to out-of-range inputs must visibly move the coverage
// histogram, raise the out-of-range counter, trip the SLO breach
// counter, and annotate the request trace.
func TestAccuracySLOTripAndCoverage(t *testing.T) {
	e, err := New(Config{
		DPUs: 1, Shards: 1, MaxBatch: 1024, TraceDepth: 4,
		Accuracy: accwatch.Config{
			Enabled:    true,
			SampleRate: 1.0,
			Window:     256,
			SLOs:       []accwatch.SLO{{Function: "sigmoid", MaxMAE: 1e-15}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	fn, par := llutSpec()
	// In-domain traffic first, then a shift far outside the table's
	// dense region (sigmoid's domain is about [-8, 8]).
	in := stats.RandomInputs(-7.9, 7.9, 256, 7)
	out := stats.RandomInputs(600, 1000, 256, 8)
	if _, _, err := e.EvaluateBatch(fn, par, in); err != nil {
		t.Fatal(err)
	}
	if _, st, err := e.EvaluateBatch(fn, par, out); err != nil {
		t.Fatal(err)
	} else if st.Latency <= 0 {
		t.Fatal("request reported no latency")
	}

	snap, ok := e.Accuracy()
	if !ok {
		t.Fatal("accuracy snapshot unavailable")
	}
	if snap.Breaches == 0 {
		t.Fatalf("no SLO breach recorded: %+v", snap)
	}
	if snap.OutOfRange != 256 {
		t.Fatalf("out-of-range samples = %d, want 256", snap.OutOfRange)
	}
	// The shift must occupy high-exponent coverage buckets (600..1000
	// spans 2^9..2^9 exponents) absent from the in-domain phase.
	var high uint64
	for _, cb := range snap.Series[0].Coverage {
		if cb.Label == "2^9" {
			high = cb.Count
		}
	}
	if high != 256 {
		t.Fatalf("coverage bucket 2^9 = %d, want 256 (coverage: %+v)", high, snap.Series[0].Coverage)
	}

	// The breach shows up in the Prometheus exposition…
	var sb strings.Builder
	e.Observe().Registry.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "engine_accuracy_slo_breached_total") {
		t.Fatal("exposition lacks engine_accuracy_slo_breached_total")
	}
	// …and on the breaching request's trace.
	tr, ok := e.TraceLast()
	if !ok {
		t.Fatal("no trace retained")
	}
	found := false
	for _, a := range tr.Root.Attrs {
		if a.Key == "accuracy_slo_breached" && a.Value == "true" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace root lacks accuracy_slo_breached attr: %+v", tr.Root.Attrs)
	}
}

// TestAccuracyTenantSeries checks that EvaluateBatchTenant splits the
// accuracy accounting per tenant without affecting results.
func TestAccuracyTenantSeries(t *testing.T) {
	e, err := New(Config{
		DPUs: 1, Shards: 1,
		Accuracy: accwatch.Config{Enabled: true, SampleRate: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 64, 21)
	a, _, err := e.EvaluateBatchTenant("team-a", fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.EvaluateBatchTenant("team-b", fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("tenant tag changed results at %d: %v != %v", i, a[i], b[i])
		}
	}
	snap, _ := e.Accuracy()
	if len(snap.Series) != 2 {
		t.Fatalf("series = %d, want 2 (one per tenant)", len(snap.Series))
	}
	if snap.Series[0].Key.Tenant != "team-a" || snap.Series[1].Key.Tenant != "team-b" {
		t.Fatalf("tenant keys = %q, %q", snap.Series[0].Key.Tenant, snap.Series[1].Key.Tenant)
	}
}

// TestDebugAccuracyEndpoint golden-checks /debug/accuracy: the JSON
// document is valid, carries the expected shape, and — because the
// snapshot holds no wall-clock state — two identical deterministic
// sessions serve byte-identical documents.
func TestDebugAccuracyEndpoint(t *testing.T) {
	serve := func() string {
		e, err := New(Config{
			DPUs: 1, Shards: 1,
			Accuracy: accwatch.Config{Enabled: true, SampleRate: 0.25, Seed: 99},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		fn, par := llutSpec()
		for round := 0; round < 3; round++ {
			xs := stats.RandomInputs(-7.9, 7.9, 200, uint64(50+round))
			if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
				t.Fatal(err)
			}
		}
		rec := httptest.NewRecorder()
		e.Observe().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/accuracy", nil))
		if rec.Code != 200 {
			t.Fatalf("/debug/accuracy status %d", rec.Code)
		}
		return rec.Body.String()
	}

	body1, body2 := serve(), serve()
	if body1 != body2 {
		t.Fatalf("identical sessions served different documents:\n%s\n---\n%s", body1, body2)
	}
	var snap accwatch.Snapshot
	if err := json.Unmarshal([]byte(body1), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.SampleRate != 0.25 || snap.Samples == 0 || len(snap.Series) != 1 {
		t.Fatalf("unexpected document: %+v", snap)
	}
	if snap.Series[0].Key.Function != "sigmoid" {
		t.Fatalf("series key = %+v", snap.Series[0].Key)
	}

	// Disabled engines 404 the endpoint.
	e, err := New(Config{DPUs: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rec := httptest.NewRecorder()
	e.Observe().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/accuracy", nil))
	if rec.Code != 404 {
		t.Fatalf("disabled /debug/accuracy status %d, want 404", rec.Code)
	}
}

// TestAccuracyGateViolations checks the cumulative end-of-session gate
// behind Engine.AccuracyViolations.
func TestAccuracyGateViolations(t *testing.T) {
	e, err := New(Config{
		DPUs: 1, Shards: 1,
		Accuracy: accwatch.Config{
			Enabled:    true,
			SampleRate: 1.0,
			SLOs: []accwatch.SLO{
				{Method: "l-lut(i)", MaxMAE: 1e-15}, // unmeetable: must fail
				{Function: "nothing-uses-this", MaxMAE: 1e-15},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 128, 31)
	if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
		t.Fatal(err)
	}
	v := e.AccuracyViolations()
	if len(v) != 1 {
		t.Fatalf("violations = %+v, want exactly 1", v)
	}
	if v[0].Metric != "mae" || v[0].Got <= 1e-15 {
		t.Fatalf("violation = %+v", v[0])
	}

	// A sane bound passes.
	e2, err := New(Config{
		DPUs: 1, Shards: 1,
		Accuracy: accwatch.Config{
			Enabled:    true,
			SampleRate: 1.0,
			SLOs:       []accwatch.SLO{{Method: "l-lut(i)", MaxMAE: 1e-2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, _, err := e2.EvaluateBatch(fn, par, xs); err != nil {
		t.Fatal(err)
	}
	if v := e2.AccuracyViolations(); v != nil {
		t.Fatalf("unexpected violations: %+v", v)
	}
}

// TestMethodLabel pins the method label convention shared with
// cmd/tplaccuracy ("l-lut" plain, "l-lut(i)" interpolated).
func TestMethodLabel(t *testing.T) {
	cases := []struct {
		par  core.Params
		want string
	}{
		{core.Params{Method: core.LLUT, SizeLog2: 12}, "l-lut"},
		{core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}, "l-lut(i)"},
		{core.Params{Method: core.CORDIC}, "cordic"},
	}
	for _, c := range cases {
		if got := methodLabel(c.par); got != c.want {
			t.Fatalf("methodLabel(%+v) = %q, want %q", c.par, got, c.want)
		}
	}
}
