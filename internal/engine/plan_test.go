package engine

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/stats"
)

// TestPlanCacheUnit exercises the bounded plan store directly: hits,
// generation-based staleness, and FIFO eviction accounting.
func TestPlanCacheUnit(t *testing.T) {
	c := newPlanCache(2)
	spec := makeSpec(llutSpec())
	k1 := planKey{spec: spec, shard: 0, n: 64}
	k2 := planKey{spec: spec, shard: 0, n: 128}
	k3 := planKey{spec: spec, shard: 1, n: 64}

	if got := c.lookup(k1, 0); got != nil {
		t.Fatalf("lookup on empty cache returned %v", got)
	}
	p1 := &batchPlan{perDPU: 64, gen: 0}
	if ev := c.store(k1, p1); ev != 0 {
		t.Fatalf("first store evicted %d", ev)
	}
	if got := c.lookup(k1, 0); got != p1 {
		t.Fatalf("lookup after store: got %v want %v", got, p1)
	}
	// A bumped table-cache generation invalidates the plan lazily.
	if got := c.lookup(k1, 1); got != nil {
		t.Fatalf("stale plan survived a generation bump: %v", got)
	}
	if c.size() != 0 {
		t.Fatalf("stale plan still counted: size=%d", c.size())
	}

	// Filling past the bound evicts the oldest live entry.
	c.store(k1, &batchPlan{gen: 1})
	c.store(k2, &batchPlan{gen: 1})
	ev := c.store(k3, &batchPlan{gen: 1})
	if ev != 1 {
		t.Fatalf("store past bound evicted %d, want 1", ev)
	}
	if c.size() != 2 {
		t.Fatalf("size after eviction = %d, want 2", c.size())
	}
	if got := c.lookup(k1, 1); got != nil {
		t.Fatalf("oldest entry should have been evicted, got %v", got)
	}
	// Re-storing an existing key must not evict or duplicate.
	if ev := c.store(k2, &batchPlan{gen: 1}); ev != 0 {
		t.Fatalf("overwrite evicted %d", ev)
	}
	if c.size() != 2 {
		t.Fatalf("size after overwrite = %d, want 2", c.size())
	}
}

// TestEnginePlanCounters pins the serving-path telemetry: the first
// batch of a shape compiles its plan (miss), every later identical
// batch hits, and a hit still reports the table cache as warm.
func TestEnginePlanCounters(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 256, 5)

	if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.PlanMisses != 1 || st.PlanHits != 0 {
		t.Fatalf("after first batch: hits=%d misses=%d, want 0/1", st.PlanHits, st.PlanMisses)
	}
	if e.CachedPlans() != 1 {
		t.Fatalf("CachedPlans=%d, want 1", e.CachedPlans())
	}

	for i := 0; i < 3; i++ {
		_, rst, err := e.EvaluateBatch(fn, par, xs)
		if err != nil {
			t.Fatal(err)
		}
		if !rst.CacheHit || rst.SetupSeconds != 0 {
			t.Fatalf("plan-hit request not reported warm: %+v", rst)
		}
	}
	st = e.Stats()
	if st.PlanMisses != 1 || st.PlanHits != 3 {
		t.Fatalf("after warm batches: hits=%d misses=%d, want 3/1", st.PlanHits, st.PlanMisses)
	}
	// A different batch size is a different shape: one more miss.
	if _, _, err := e.EvaluateBatch(fn, par, xs[:100]); err != nil {
		t.Fatal(err)
	}
	if st = e.Stats(); st.PlanMisses != 2 {
		t.Fatalf("new shape did not compile a plan: misses=%d", st.PlanMisses)
	}
}

// TestInvalidateTablesRecompiles drives the hot-swap path: after
// InvalidateTables the next request rebuilds tables (a real cache
// miss with a setup charge), the compiled plan self-invalidates via
// the generation, and outputs stay bit-identical to the pre-swap run
// (same spec ⇒ same tables ⇒ same values).
func TestInvalidateTablesRecompiles(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 256, 7)

	before, _, err := e.EvaluateBatch(fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
		t.Fatal(err) // plan hit
	}
	warm := e.Stats()
	if warm.PlanHits == 0 {
		t.Fatal("warmup never hit the plan cache")
	}

	if !e.InvalidateTables(fn, par) {
		t.Fatal("InvalidateTables found no resident tables")
	}
	if e.CachedSpecs() != 0 {
		t.Fatalf("CachedSpecs=%d after invalidation, want 0", e.CachedSpecs())
	}
	after, rst, err := e.EvaluateBatch(fn, par, xs)
	if err != nil {
		t.Fatal(err)
	}
	if rst.CacheHit || rst.SetupSeconds == 0 {
		t.Fatalf("post-swap request did not rebuild tables: %+v", rst)
	}
	st := e.Stats()
	if st.PlanMisses != warm.PlanMisses+1 {
		t.Fatalf("post-swap plan misses = %d, want %d (stale plan must recompile)",
			st.PlanMisses, warm.PlanMisses+1)
	}
	for i := range xs {
		if math.Float32bits(before[i]) != math.Float32bits(after[i]) {
			t.Fatalf("output %d drifted across hot-swap: %v != %v", i, after[i], before[i])
		}
	}
	// Invalidating a spec that was never built reports false.
	if e.InvalidateTables(core.Exp, core.Params{Method: core.MLUT, SizeLog2: 8}) {
		t.Fatal("InvalidateTables reported residency for an unbuilt spec")
	}
}

// TestPlanCacheConcurrentTenants hammers the plan cache from many
// tenants with mixed specs and sizes while a hot-swapper invalidates
// tables mid-flight — the -race exercise. Every output is checked
// bit-identical against a quiet reference engine.
func TestPlanCacheConcurrentTenants(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 2, MaxBatch: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ref, err := New(Config{DPUs: 4, Shards: 2, MaxBatch: 512, Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	specs := []struct {
		fn  core.Function
		par core.Params
		lo  float64
		hi  float64
	}{
		{core.Sigmoid, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}, -7.9, 7.9},
		{core.Tanh, core.Params{Method: core.DLLUT, Interp: true, SizeLog2: 12}, -7.9, 7.9},
		{core.Exp, core.Params{Method: core.MLUT, Interp: true, SizeLog2: 10}, -10, 10},
	}
	type job struct {
		si   int
		xs   []float32
		want []float32
	}
	var jobs []job
	for si, sp := range specs {
		for _, n := range []int{100, 512, 700} {
			xs := stats.RandomInputs(sp.lo, sp.hi, n, uint64(31*si+n))
			want, _, err := ref.EvaluateBatch(sp.fn, sp.par, xs)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{si: si, xs: xs, want: want})
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", w)
			for round := 0; round < 6; round++ {
				j := jobs[(w+round)%len(jobs)]
				sp := specs[j.si]
				out, _, err := e.EvaluateBatchTenant(tenant, sp.fn, sp.par, j.xs)
				if err != nil {
					errCh <- err
					return
				}
				for i := range out {
					if math.Float32bits(out[i]) != math.Float32bits(j.want[i]) {
						errCh <- fmt.Errorf("%s round %d: output %d = %v, want %v",
							tenant, round, i, out[i], j.want[i])
						return
					}
				}
			}
		}()
	}
	// The hot-swapper: invalidate each spec once while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, sp := range specs {
			e.InvalidateTables(sp.fn, sp.par)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := e.Stats()
	if st.PlanHits == 0 {
		t.Error("concurrent run never hit the plan cache")
	}
}
