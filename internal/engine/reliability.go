package engine

import (
	"errors"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/faultsim"
	"transpimlib/internal/pimsim"
)

// This file is the engine's recovery ladder, active only when
// Config.Faults enables the injector (e.inj != nil): launch retries
// with modeled exponential backoff, health-driven shard remapping onto
// the surviving cores, optional hedged relaunches for stragglers,
// MRAM table scrubbing with checksum repair, and — when everything
// else is exhausted — graceful degradation onto the bit-exact host
// mirrors. With injection disabled none of these paths run and the
// pipeline is bit-identical to the fault-free engine.

// engineFaultAgent adapts the faultsim injector to the simulator's
// FaultAgent hook, counting injected faults into the engine metrics.
// It keeps faultsim free of pimsim imports.
type engineFaultAgent struct {
	inj *faultsim.Injector
	met *metrics
}

func (a *engineFaultAgent) Launch(seq, attempt uint64, lane int) pimsim.LaunchVerdict {
	fail, slow := a.inj.LaunchDecision(seq, uint64(lane), attempt)
	if fail {
		a.met.faults[faultsim.DPUFail].Inc()
		return pimsim.LaunchVerdict{Fail: true}
	}
	if slow > 1 {
		a.met.faults[faultsim.DPUSlow].Inc()
		return pimsim.LaunchVerdict{SlowFactor: slow}
	}
	return pimsim.LaunchVerdict{}
}

func (a *engineFaultAgent) Transfer(seq, attempt uint64, out bool) bool {
	c := faultsim.TransferIn
	if out {
		c = faultsim.TransferOut
	}
	if a.inj.TransferDecision(c, seq, attempt) {
		a.met.faults[c].Inc()
		return true
	}
	return false
}

// chargeTransferIn is the checked host→PIM charge with bounded retry:
// every attempt (failed ones included) costs the transfer time, each
// retry adds the modeled backoff. Exhaustion marks the batch so the
// compute stage degrades it to the host mirror — the inputs are still
// in host staging, so no result is lost.
func (e *Engine) chargeTransferIn(s *shard, b *batch, padded int) {
	bw := e.sys.Config().HostToPIMBandwidth
	for attempt := uint64(0); ; attempt++ {
		err := e.sys.TryChargeHostToPIM(b.seq, attempt, padded, true)
		b.tin += float64(padded) / bw
		if err == nil {
			return
		}
		e.met.transferRetries.Inc()
		if attempt >= uint64(e.rel.MaxRetries) {
			b.inFailed = true
			return
		}
		b.retries++
		b.tin += e.rel.backoff(attempt + 1)
	}
}

// chargeTransferOut mirrors chargeTransferIn for PIM→host. On
// exhaustion the results — already gathered into host staging and
// bit-exact by construction — stand in for a host-mirror re-evaluation
// and the batch is marked degraded.
func (e *Engine) chargeTransferOut(s *shard, b *batch, padded int) {
	bw := e.sys.Config().PIMToHostBandwidth
	for attempt := uint64(0); ; attempt++ {
		err := e.sys.TryChargePIMToHost(b.seq, attempt, padded, true)
		b.tout += float64(padded) / bw
		if err == nil {
			return
		}
		e.met.transferRetries.Inc()
		if attempt >= uint64(e.rel.MaxRetries) {
			if !b.degraded {
				b.degraded = true
				e.met.degraded.Inc()
			}
			return
		}
		b.retries++
		b.tout += e.rel.backoff(attempt + 1)
	}
}

// fnv1a is the per-lane table checksum (FNV-1a 64).
func fnv1a(p []byte) uint64 {
	h := uint64(0xCBF29CE484222325)
	for _, b := range p {
		h = (h ^ uint64(b)) * 0x1099511628211
	}
	return h
}

// captureGolden refreshes each lane's golden table image — the MRAM
// region between the pre-touched I/O buffers and the allocation brk,
// i.e. every table resident on the core — whenever a build grew it.
// The golden copy plus its checksum are the scrub reference.
func (e *Engine) captureGolden(s *shard) {
	for k, d := range s.dpus {
		end := d.MRAM.Used()
		if end == s.goldenEnd[k] {
			continue
		}
		n := end - s.ioEnd[k]
		if cap(s.golden[k]) < n {
			s.golden[k] = make([]byte, n)
		}
		s.golden[k] = s.golden[k][:n]
		d.MRAM.Read(s.ioEnd[k], s.golden[k])
		s.goldenSum[k] = fnv1a(s.golden[k])
		s.goldenEnd[k] = end
	}
}

// flipAndRepair injects this batch's scheduled MRAM bit-flips into the
// lanes' table regions, then scrubs every lane: a checksum mismatch
// rewrites the golden image (charged as a serial host→PIM re-stage
// into the batch's setup time). Tables are verified-clean when it
// returns, so kernels and mirror-nil fallbacks never read corrupted
// entries. The region is pre-backed and disjoint from the I/O
// buffers, so no memory lock is needed.
func (e *Engine) flipAndRepair(s *shard, b *batch) {
	bw := e.sys.Config().HostToPIMBandwidth
	for k, d := range s.dpus {
		region := s.golden[k]
		if off, bit, ok := e.inj.FlipBit(b.seq, uint64(k), len(region)); ok {
			e.met.faults[faultsim.BitFlip].Inc()
			addr := s.ioEnd[k] + off
			var one [1]byte
			d.MRAM.Read(addr, one[:])
			one[0] ^= 1 << bit
			d.MRAM.Write(addr, one[:])
		}
		if len(region) == 0 {
			continue
		}
		if cap(s.scratch) < len(region) {
			s.scratch = make([]byte, len(region))
		}
		cur := s.scratch[:len(region)]
		d.MRAM.Read(s.ioEnd[k], cur)
		if fnv1a(cur) == s.goldenSum[k] {
			continue
		}
		e.met.corruptions.Inc()
		d.MRAM.Write(s.ioEnd[k], region)
		e.sys.ChargeHostToPIM(len(region), false)
		b.setup += float64(len(region)) / bw
		e.met.repairs.Inc()
		if e.log != nil {
			e.log.Warn("table corruption repaired",
				"shard", s.id, "dpu", s.ids[k], "seq", b.seq,
				"region_bytes", len(region))
		}
	}
}

// healthyLanes returns the shard-local indices of the cores allowed to
// serve seq (probation re-admissions happen inside available).
func (e *Engine) healthyLanes(s *shard, seq uint64) []int {
	lanes := s.lanesScratch[:0]
	for k, id := range s.ids {
		if e.health.Available(id, seq) {
			lanes = append(lanes, k)
		}
	}
	s.lanesScratch = lanes
	return lanes
}

// restage rewrites the batch's inputs into the healthy lanes' MRAM
// input buffers under the remapped ceil(n/len(lanes)) layout and
// charges the extra rank-parallel transfer into the batch.
func (e *Engine) restage(s *shard, b *batch, lanes []int, per int) {
	flat := s.inBuf[b.slot]
	for j, k := range lanes {
		lo := j * per
		if lo >= b.n {
			break
		}
		hi := lo + per
		if hi > b.n {
			hi = b.n
		}
		s.dpus[k].MRAM.WriteF32s(s.inAddr[b.slot][k], flat[lo:hi])
	}
	padded := per * 4 * len(lanes)
	e.sys.ChargeHostToPIM(padded, true)
	b.tin += float64(padded) / e.sys.Config().HostToPIMBandwidth
}

// computeShardFaulty is the compute stage's body under fault
// injection: ensure tables, scrub them, then walk the recovery ladder
// — retry (fresh injector draws per attempt), remap onto healthy
// lanes, hedge stragglers, and finally degrade to the host mirror.
func (e *Engine) computeShardFaulty(s *shard, b *batch) {
	if b.tr != nil {
		b.tr.setupStart = time.Now()
	}
	ops, hit, setup, err := e.cache.ensure(b.spec, s)
	if b.tr != nil {
		b.tr.setupEnd = time.Now()
	}
	e.met.cachedSpecs.Set(int64(e.cache.size()))
	if err != nil {
		b.err = err
		return
	}
	b.hit, b.setup = hit, setup

	if b.tr != nil {
		b.tr.kernStart = time.Now()
		defer func() { b.tr.kernEnd = time.Now() }()
	}
	if e.inj.Active(faultsim.BitFlip) {
		e.captureGolden(s)
		e.flipAndRepair(s, b)
	}
	if b.inFailed {
		// Transfer-in never delivered the inputs to the cores; the host
		// staging copy still has them.
		e.degradeBatch(s, b, ops)
		return
	}

	base := s.ids[0]
	minLanes := (b.n + s.capPerDPU - 1) / s.capPerDPU
	staged := -1 // number of lanes the current MRAM layout targets; -1 = original full layout
	for i := range s.failedLane {
		s.failedLane[i] = false
	}
	for attempt := uint64(0); ; attempt++ {
		lanes := e.healthyLanes(s, b.seq)
		if len(lanes) < minLanes {
			e.degradeBatch(s, b, ops)
			return
		}
		per := (b.n + len(lanes) - 1) / len(lanes)
		remapped := len(lanes) < len(s.ids)
		if remapped && len(lanes) != staged {
			e.restage(s, b, lanes, per)
			staged = len(lanes)
			if !b.remapped {
				b.remapped = true
				e.met.remaps.Inc()
			}
		}

		ids := s.launchIDs[:0]
		for i := range s.chunkOf {
			s.chunkOf[i] = -1
		}
		for j, k := range lanes {
			ids = append(ids, s.ids[k])
			s.chunkOf[k] = j
			d := s.dpus[k]
			s.issue0[j] = d.IssueCycles()
			s.dma0[j] = d.DMACycles()
		}
		s.launchIDs = ids

		if e.prof != nil {
			stage := "kernel"
			if remapped {
				stage = "remap"
			}
			e.profContext(s, b, stage)
		}
		err := e.sys.LaunchShardSeq(b.seq, attempt, ids, func(ctx *pimsim.Ctx, id int) error {
			ln := id - base
			j := s.chunkOf[ln]
			count := b.n - j*per
			if count > per {
				count = per
			}
			if count <= 0 {
				return nil
			}
			e.computeCoreAt(ctx, s, b, ops[ln], ln, j, per, count)
			return nil
		})

		// Account the attempt — failed attempts still burned the
		// surviving lanes' cycles.
		var mx uint64
		slowest := 0
		for j, k := range lanes {
			d := s.dpus[k]
			c := pimsim.ClosedFormCycles(d.IssueCycles()-s.issue0[j], d.DMACycles()-s.dma0[j], d.Tasklets())
			s.deltas[j] = c
			if c > mx {
				mx, slowest = c, j
			}
		}

		retry := false
		var le *pimsim.LaunchError
		switch {
		case errors.As(err, &le):
			for _, p := range le.Lanes {
				s.failedLane[lanes[p]] = true
				if e.health.RecordFailure(s.ids[lanes[p]], b.seq) && e.log != nil {
					e.log.Warn("dpu quarantined",
						"dpu", s.ids[lanes[p]], "shard", s.id, "seq", b.seq,
						"cause", "launch_failure")
				}
			}
			retry = true
		case err != nil:
			// A genuine kernel error is not recoverable by retry.
			b.cycles += mx
			b.tcomp += float64(mx) / e.sys.Config().ClockHz
			b.err = err
			return
		case e.rel.LaunchTimeout > 0 && float64(mx)/e.sys.Config().ClockHz > e.rel.LaunchTimeout:
			e.met.timeouts.Inc()
			s.failedLane[lanes[slowest]] = true
			if e.log != nil {
				e.log.Warn("launch timeout",
					"dpu", s.ids[lanes[slowest]], "shard", s.id, "seq", b.seq,
					"modeled_s", float64(mx)/e.sys.Config().ClockHz,
					"cutoff_s", e.rel.LaunchTimeout)
			}
			if e.health.RecordFailure(s.ids[lanes[slowest]], b.seq) && e.log != nil {
				e.log.Warn("dpu quarantined",
					"dpu", s.ids[lanes[slowest]], "shard", s.id, "seq", b.seq,
					"cause", "timeout")
			}
			retry = true
		}

		if retry {
			b.cycles += mx
			b.tcomp += float64(mx) / e.sys.Config().ClockHz
			e.met.quarantined.Set(int64(e.health.QuarantinedCount()))
			if attempt >= uint64(e.rel.MaxRetries) {
				e.degradeBatch(s, b, ops)
				return
			}
			b.retries++
			e.met.launchRetries.Inc()
			b.tcomp += e.rel.backoff(attempt + 1)
			continue
		}

		mx = e.maybeHedge(s, b, ops, lanes, per, mx)
		b.cycles += mx
		b.tcomp += float64(mx) / e.sys.Config().ClockHz
		for _, k := range lanes {
			// A lane that failed earlier in this batch keeps its streak:
			// a retry succeeding elsewhere says nothing good about it.
			if !s.failedLane[k] {
				e.health.RecordSuccess(s.ids[k])
			}
		}
		e.met.quarantined.Set(int64(e.health.QuarantinedCount()))
		if b.remapped {
			b.lanes = append(b.lanes[:0], lanes...)
			b.perDPU = per
		}
		return
	}
}

// maybeHedge relaunches the slowest lane of a successful launch when
// its cycle delta exceeds HedgeRatio × the lane median, keeping the
// cheaper of the two runs (the kernel is idempotent: the relaunch
// rewrites the same outputs). Returns the batch's effective
// slowest-lane cycles.
func (e *Engine) maybeHedge(s *shard, b *batch, ops []*core.Operator, lanes []int, per int, mx uint64) uint64 {
	if e.rel.HedgeRatio <= 1 || len(lanes) < 2 {
		return mx
	}
	deltas := s.deltas[:len(lanes)]
	slowest := 0
	for j := range deltas {
		if deltas[j] > deltas[slowest] {
			slowest = j
		}
	}
	med := medianCycles(deltas, s.medScratch)
	if med == 0 || float64(deltas[slowest]) < e.rel.HedgeRatio*float64(med) {
		return mx
	}
	k := lanes[slowest]
	j := slowest
	count := b.n - j*per
	if count > per {
		count = per
	}
	if count <= 0 {
		return mx
	}
	d := s.dpus[k]
	i0, d0 := d.IssueCycles(), d.DMACycles()
	if e.prof != nil {
		e.profContext(s, b, "hedge")
	}
	// A large attempt bias gives the hedge a fresh, independent draw
	// stream that ordinary retries never reach.
	err := e.sys.LaunchShardSeq(b.seq, uint64(e.rel.MaxRetries)+1000, []int{s.ids[k]}, func(ctx *pimsim.Ctx, id int) error {
		e.computeCoreAt(ctx, s, b, ops[k], k, j, per, count)
		return nil
	})
	e.met.hedges.Inc()
	b.hedged = true
	if err != nil {
		// The hedge itself failed; the original run's outputs stand.
		return mx
	}
	hedged := pimsim.ClosedFormCycles(d.IssueCycles()-i0, d.DMACycles()-d0, d.Tasklets())
	eff := deltas[slowest]
	if hedged < eff {
		eff = hedged
	}
	// The batch's critical path is the slower of the other lanes and
	// the better of the two runs of the straggler's chunk.
	best := eff
	for jj := range deltas {
		if jj != slowest && deltas[jj] > best {
			best = deltas[jj]
		}
	}
	return best
}

// medianCycles computes the lower median of deltas using scratch for
// the sort (insertion sort: lane counts are small). Lower median so a
// single straggler among few lanes cannot drag the reference up to
// itself and mask the comparison.
func medianCycles(deltas, scratch []uint64) uint64 {
	sc := scratch[:0]
	sc = append(sc, deltas...)
	for i := 1; i < len(sc); i++ {
		for j := i; j > 0 && sc[j] < sc[j-1]; j-- {
			sc[j], sc[j-1] = sc[j-1], sc[j]
		}
	}
	return sc[(len(sc)-1)/2]
}

// degradeBatch is the ladder's last rung: evaluate the batch on the
// host-side mirrors (bit-exact with the device kernels by the PR-3
// differential contract), charging a throwaway recorder so no device
// cycles are accounted. Results land directly in the output staging
// buffer and the batch is marked degraded.
func (e *Engine) degradeBatch(s *shard, b *batch, ops []*core.Operator) {
	xs := s.inBuf[b.slot][:b.n]
	ys := s.outBuf[b.slot][:b.n]
	ops[0].EvalBatch(s.rec, xs, ys)
	b.degraded, b.hostEval = true, true
	e.met.degraded.Inc()
	if e.log != nil {
		e.log.Warn("batch degraded to host mirror",
			"shard", s.id, "seq", b.seq, "elements", b.n,
			"fn", b.spec.Fn.String(), "method", b.spec.Par.Method.String(),
			"retries", b.retries)
	}
}

// computeCoreAt is computeCore generalized for remapping and hedging:
// the serving lane ln (MRAM buffers, scratch, operator) is decoupled
// from the batch chunk j it evaluates. computeCore is the ln == j
// case.
func (e *Engine) computeCoreAt(ctx *pimsim.Ctx, s *shard, b *batch, op *core.Operator, ln, j, per, count int) {
	m := ctx.DPU().MRAM
	in, out := s.inAddr[b.slot][ln], s.outAddr[b.slot][ln]
	ctx.Charge(4)
	ctx.ChargeDMA(count * 4)
	if !e.cfg.Reference && op.HasFastPath() {
		lo := j * per
		xs := s.inBuf[b.slot][lo : lo+count]
		ys := s.ys[ln][:count]
		op.EvalBatchWith(ctx, xs, ys, s.arena[ln])
		ctx.ChargeSig(&e.streamSig, uint64(count))
		m.WriteF32s(out, ys)
	} else {
		for i := 0; i < count; i++ {
			x := ctx.LoadStreamedF32(m, in+4*i)
			y := op.Eval(ctx, x)
			ctx.StoreStreamedF32(m, out+4*i, y)
			ctx.Charge(2)
		}
	}
	ctx.ChargeDMA(count * 4)
}

// FaultEvents returns the canonical injected-fault log (nil when
// injection is disabled). For a single-shard engine fed sequentially,
// re-running the same workload under the same plan reproduces the log
// byte for byte; with concurrent shards the retry attempt counts can
// depend on batch routing.
func (e *Engine) FaultEvents() []faultsim.Event {
	if e.inj == nil {
		return nil
	}
	return e.inj.Events()
}

// Health returns the per-DPU health scoreboard (nil when fault
// injection is disabled).
func (e *Engine) Health() []LaneHealth {
	if e.health == nil {
		return nil
	}
	return e.health.Snapshot()
}
