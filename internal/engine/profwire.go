package engine

import (
	"strconv"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/profiler"
)

// Profiler wiring: the collector consumes the same pimsim launch
// observer the metrics kernelProfiler uses, plus a per-shard
// LaunchContext the compute stage fills immediately before each
// LaunchShard. The observer runs synchronously on the launching
// goroutine, so the context handoff needs no lock; contexts live one
// per shard because shards launch concurrently.

// Profiler returns the modeled-cycle collector, nil unless
// Config.Profiler.Enabled.
func (e *Engine) Profiler() *profiler.Collector { return e.prof }

// ProfileSnapshot returns the cumulative profile; ok is false when
// profiling is disabled.
func (e *Engine) ProfileSnapshot() (profiler.Profile, bool) {
	if e.prof == nil {
		return profiler.Profile{}, false
	}
	return e.prof.Snapshot(), true
}

// observeLaunch routes a launch profile to the owning shard's context.
// Shard resolution from the first core id is exact: every engine
// launch (ordinary, program phase, remap, hedge) targets cores of a
// single shard's contiguous range.
func (e *Engine) observeLaunch(prof pimsim.LaunchProfile) {
	if len(prof.Cores) == 0 {
		return
	}
	perShard := e.cfg.DPUs / e.cfg.Shards
	sid := prof.Cores[0].DPU / perShard
	if sid < 0 || sid >= len(e.shards) {
		return
	}
	e.prof.Observe(&e.shards[sid].lctx, prof)
}

// profContext fills the shard's launch context from the batch about to
// launch: function/method labels matching the cost ledger's convention
// (so profile cycles reconcile row-for-row), the pipeline stage (or
// fused-program phase), and the tenant segments in ledger order. The
// Segs slice is reused; steady state allocates nothing.
func (e *Engine) profContext(s *shard, b *batch, stage string) {
	lc := &s.lctx
	if b.prog != nil {
		lc.Function, lc.Method = "program", "fused:"+b.prog.Name()
	} else {
		lc.Function, lc.Method = b.spec.Fn.String(), methodLabel(b.spec.Par)
	}
	lc.Stage = stage
	lc.Segs = lc.Segs[:0]
	for _, sg := range b.segs {
		lc.Segs = append(lc.Segs, profiler.Seg{Tenant: sg.req.tenant, N: sg.n})
	}
	lc.N = b.n
}

// phaseNames pre-renders the common fused-program phase labels so the
// per-phase context write stays allocation-free for realistic graphs.
var phaseNames = [...]string{
	"phase0", "phase1", "phase2", "phase3", "phase4", "phase5", "phase6", "phase7",
	"phase8", "phase9", "phase10", "phase11", "phase12", "phase13", "phase14", "phase15",
}

// phaseStage names fused-program phase phi for the profiler's stage
// label.
func phaseStage(phi int) string {
	if phi >= 0 && phi < len(phaseNames) {
		return phaseNames[phi]
	}
	return "phase" + strconv.Itoa(phi)
}
