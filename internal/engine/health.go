package engine

import "sync"

// ReliabilityConfig tunes the engine's recovery ladder when fault
// injection is enabled (Config.Faults). The zero value selects the
// defaults noted per field. All durations are modeled simulator
// seconds, not wall clock — recovery costs show up in the same
// accounting as the work they protect, and tests stay fast and
// scheduler-independent.
type ReliabilityConfig struct {
	// MaxRetries bounds launch and transfer retries per batch (default
	// 3). When exhausted the batch degrades to the host mirror.
	MaxRetries int
	// RetryBackoff is the modeled pause before the first retry (default
	// 1µs); it doubles per subsequent attempt.
	RetryBackoff float64
	// LaunchTimeout, when > 0, fails a launch attempt whose modeled
	// kernel time (slowest lane) exceeds it — the straggler cutoff. The
	// slowest lane is blamed on the health tracker. Zero disables.
	LaunchTimeout float64
	// QuarantineAfter quarantines a DPU after this many consecutive
	// failures (default 3). A failure during probation re-quarantines
	// immediately.
	QuarantineAfter int
	// ProbationAfter is how many batch sequence numbers a DPU sits
	// quarantined before it is re-admitted on probation (default 16).
	// The penalty doubles on every re-quarantine.
	ProbationAfter uint64
	// ProbationSuccesses is how many clean launches a probationary DPU
	// needs for full re-admission (default 2).
	ProbationSuccesses int
	// HedgeRatio, when > 1, relaunches a batch's slowest lane on its
	// own when that lane's modeled cycles exceed HedgeRatio times the
	// lane median, keeping the cheaper of the two runs. Zero disables.
	HedgeRatio float64
}

func (c ReliabilityConfig) withDefaults() ReliabilityConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 1e-6
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.ProbationAfter == 0 {
		c.ProbationAfter = 16
	}
	if c.ProbationSuccesses <= 0 {
		c.ProbationSuccesses = 2
	}
	return c
}

// backoff returns the modeled pause before retry attempt n (1-based):
// RetryBackoff doubling per attempt.
func (c ReliabilityConfig) backoff(attempt uint64) float64 {
	d := c.RetryBackoff
	for i := uint64(1); i < attempt; i++ {
		d *= 2
	}
	return d
}

// LaneHealth is one DPU's row of the health scoreboard.
type LaneHealth struct {
	DPU         int    // global core id
	Errors      uint64 // lifetime failures (injected hard fails, timeouts)
	Consecutive int    // current consecutive-failure streak
	Quarantined bool   // excluded from launches until the penalty lapses
	Probation   bool   // re-admitted, needs clean launches to clear
}

// HealthTracker is the per-DPU error/latency scoreboard driving shard
// remapping: consecutive failures quarantine a core, quarantined cores
// are excluded from launch plans, and after a (doubling) penalty the
// core is re-admitted on probation — a failure there re-quarantines it
// immediately, successes clear it. Quarantine time is measured in
// batch sequence numbers, the engine's deterministic clock.
type HealthTracker struct {
	rel ReliabilityConfig

	mu    sync.Mutex
	lanes []laneState
}

type laneState struct {
	errors      uint64
	consecutive int
	quarantined bool
	probation   bool
	since       uint64 // seq at quarantine entry
	penalty     uint64 // quarantine length in seqs; doubles per re-entry
	probationOK int    // clean launches accumulated on probation
}

func NewHealthTracker(dpus int, rel ReliabilityConfig) *HealthTracker {
	return &HealthTracker{rel: rel, lanes: make([]laneState, dpus)}
}

// RecordFailure charges one failure (hard fail or timeout) against a
// DPU at batch seq. Reaching the consecutive threshold — or any
// failure while on probation — quarantines the core, doubling the
// penalty on every re-entry. It reports whether this call moved the
// core into quarantine, so the engine can log the transition.
func (h *HealthTracker) RecordFailure(dpu int, seq uint64) (quarantined bool) {
	h.mu.Lock()
	st := &h.lanes[dpu]
	st.errors++
	st.consecutive++
	if st.probation || st.consecutive >= h.rel.QuarantineAfter {
		quarantined = !st.quarantined
		st.quarantined = true
		st.probation = false
		st.probationOK = 0
		st.since = seq
		if st.penalty == 0 {
			st.penalty = h.rel.ProbationAfter
		} else {
			st.penalty *= 2
		}
	}
	h.mu.Unlock()
	return quarantined
}

// RecordSuccess clears a DPU's failure streak; enough successes on
// probation fully re-admit it.
func (h *HealthTracker) RecordSuccess(dpu int) {
	h.mu.Lock()
	st := &h.lanes[dpu]
	st.consecutive = 0
	if st.probation {
		st.probationOK++
		if st.probationOK >= h.rel.ProbationSuccesses {
			st.probation = false
			st.probationOK = 0
		}
	}
	h.mu.Unlock()
}

// Available reports whether a DPU may serve the batch at seq. A
// quarantined core whose penalty has lapsed transitions to probation
// (and becomes available) here.
func (h *HealthTracker) Available(dpu int, seq uint64) bool {
	h.mu.Lock()
	st := &h.lanes[dpu]
	if st.quarantined {
		if seq >= st.since+st.penalty {
			st.quarantined = false
			st.probation = true
			st.probationOK = 0
		} else {
			h.mu.Unlock()
			return false
		}
	}
	h.mu.Unlock()
	return true
}

// QuarantinedCount returns how many DPUs are currently quarantined.
func (h *HealthTracker) QuarantinedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for i := range h.lanes {
		if h.lanes[i].quarantined {
			n++
		}
	}
	return n
}

// Snapshot returns the scoreboard, one row per DPU.
func (h *HealthTracker) Snapshot() []LaneHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]LaneHealth, len(h.lanes))
	for i := range h.lanes {
		st := &h.lanes[i]
		out[i] = LaneHealth{
			DPU:         i,
			Errors:      st.errors,
			Consecutive: st.consecutive,
			Quarantined: st.quarantined,
			Probation:   st.probation,
		}
	}
	return out
}
