package engine

import (
	"math"
	"strings"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/fusion"
	"transpimlib/internal/stats"
)

// The three fused end-to-end scenarios, rebuilt locally (the workloads
// package sits above the engine, so the differential suite carries its
// own copies of the graphs it certifies).

func progSoftmax() *fusion.Program {
	p := fusion.NewProgram("softmax")
	x := p.Input()
	m := p.ReduceMax(x)
	e := p.Func(core.Exp, p.Sub(x, p.Broadcast(m)))
	s := p.ReduceSum(e)
	p.Return(p.Mul(e, p.Div(p.Const(1), p.Broadcast(s))))
	return p
}

func progFFNGELU() *fusion.Program {
	p := fusion.NewProgram("ffn-gelu")
	h := p.Input()
	bias := p.Input()
	gamma := p.Input()
	p.Return(p.Mul(p.Func(core.GELU, p.Add(h, bias)), gamma))
	return p
}

func progLogisticStep() *fusion.Program {
	p := fusion.NewProgram("logistic-step")
	z := p.Input()
	y := p.Input()
	lr := p.ScalarInput()
	invN := p.ScalarInput()
	g := p.Sub(p.Func(core.Sigmoid, z), y)
	mu := p.Mul(p.Broadcast(p.ReduceSum(g)), invN)
	p.Return(p.Sub(z, p.Mul(p.Sub(g, mu), lr)))
	return p
}

type progCase struct {
	name    string
	build   func() *fusion.Program
	inputs  func(n int) [][]float32
	scalars func(n int) []float32
}

func progCases() []progCase {
	return []progCase{
		{
			name:   "softmax",
			build:  progSoftmax,
			inputs: func(n int) [][]float32 { return [][]float32{stats.RandomInputs(-7.5, 7.5, n, 11)} },
		},
		{
			name:  "ffn-gelu",
			build: progFFNGELU,
			inputs: func(n int) [][]float32 {
				return [][]float32{
					stats.RandomInputs(-4, 4, n, 21),
					stats.RandomInputs(-1, 1, n, 22),
					stats.RandomInputs(0.5, 1.5, n, 23),
				}
			},
		},
		{
			name:  "logistic-step",
			build: progLogisticStep,
			inputs: func(n int) [][]float32 {
				labels := stats.RandomInputs(0, 1, n, 32)
				for i, v := range labels {
					if v < 0.5 {
						labels[i] = 0
					} else {
						labels[i] = 1
					}
				}
				return [][]float32{stats.RandomInputs(-6, 6, n, 31), labels}
			},
			scalars: func(n int) []float32 { return []float32{0.1, float32(1) / float32(n)} },
		},
	}
}

func progParams() core.Params {
	return core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}
}

func mustBits(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: [%d] = %x (%v), want %x (%v)", label, i,
				math.Float32bits(got[i]), got[i], math.Float32bits(want[i]), want[i])
		}
	}
}

// TestProgramDifferential is the fused-vs-per-op acceptance gate: every
// fused scenario must be bit-identical across (a) the fused on-device
// program, (b) the per-op baseline on the same engine, and (c) the
// fused program on a Reference (interpreted-kernel) engine — while the
// fused path moves strictly fewer host↔PIM bytes than the baseline.
func TestProgramDifferential(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 2, MaxBatch: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ref, err := New(Config{DPUs: 4, Shards: 2, MaxBatch: 4096, Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	const n = 1000
	for _, cs := range progCases() {
		prog, err := e.CompileProgram(cs.build(), progParams())
		if err != nil {
			t.Fatalf("%s: compile: %v", cs.name, err)
		}
		inputs := cs.inputs(n)
		var scalars []float32
		if cs.scalars != nil {
			scalars = cs.scalars(n)
		}

		fused, fst, err := e.EvaluateProgramTenant("diff", prog, inputs, scalars)
		if err != nil {
			t.Fatalf("%s: fused: %v", cs.name, err)
		}
		perOp, pst, err := e.EvaluateProgramPerOp("diff", prog, inputs, scalars)
		if err != nil {
			t.Fatalf("%s: per-op: %v", cs.name, err)
		}
		interp, _, err := ref.EvaluateProgramTenant("diff", prog, inputs, scalars)
		if err != nil {
			t.Fatalf("%s: reference: %v", cs.name, err)
		}

		mustBits(t, cs.name+" fused vs per-op", fused, perOp)
		mustBits(t, cs.name+" fused vs interpreted", fused, interp)

		if fst.FusedBytes >= fst.PerOpBytes {
			t.Fatalf("%s: fused moved %d bytes, per-op %d — fusion saved nothing",
				cs.name, fst.FusedBytes, fst.PerOpBytes)
		}
		if fst.SavedBytes != fst.PerOpBytes-fst.FusedBytes {
			t.Fatalf("%s: SavedBytes %d ≠ %d−%d", cs.name, fst.SavedBytes, fst.PerOpBytes, fst.FusedBytes)
		}
		if fst.SavedTransferCycles == 0 {
			t.Fatalf("%s: saved transfer cycles = 0", cs.name)
		}
		if pst.MovedBytes != fst.PerOpBytes {
			t.Fatalf("%s: baseline MovedBytes %d ≠ model PerOpBytes %d",
				cs.name, pst.MovedBytes, fst.PerOpBytes)
		}
		// Sanity: the fused run produced finite numbers.
		for i, v := range fused {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: fused[%d] = %v", cs.name, i, v)
			}
		}
	}
}

// TestProgramSingleFuncCycles pins the fused path to the per-op charge
// convention: a program that is exactly one transcendental node must
// cost the same modeled kernel cycles as EvaluateBatch of that function
// — same DMA staging charges, same streaming signature, same per-
// element kernel cost — and return bit-identical outputs.
func TestProgramSingleFuncCycles(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 1, MaxBatch: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	p := fusion.NewProgram("just-sigmoid")
	p.Return(p.Func(core.Sigmoid, p.Input()))
	prog, err := e.CompileProgram(p, progParams())
	if err != nil {
		t.Fatal(err)
	}

	xs := stats.RandomInputs(-7.5, 7.5, 777, 5)
	fused, fst, err := e.EvaluateProgramTenant("", prog, [][]float32{xs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, bst, err := e.EvaluateBatch(core.Sigmoid, progParams(), xs)
	if err != nil {
		t.Fatal(err)
	}

	mustBits(t, "single-func program vs EvaluateBatch", fused, plain)
	if fst.KernelCycles != bst.KernelCycles {
		t.Fatalf("fused program cycles %d ≠ batch cycles %d — the shared sub-step charge conventions diverged",
			fst.KernelCycles, bst.KernelCycles)
	}
}

// TestProgramBytesReconcile checks the compiler's analytic byte model
// against the engine's metered transfer counters: the Stats.BytesIn/
// BytesOut deltas of one fused evaluation must equal the model's
// directional split exactly, and the per-op baseline's metered total
// must equal PerOpBytes.
func TestProgramBytesReconcile(t *testing.T) {
	for _, cs := range progCases() {
		e, err := New(Config{DPUs: 4, Shards: 1, MaxBatch: 4096})
		if err != nil {
			t.Fatal(err)
		}
		const n = 513 // odd on purpose: exercises rank padding
		prog, err := e.CompileProgram(cs.build(), progParams())
		if err != nil {
			e.Close()
			t.Fatalf("%s: %v", cs.name, err)
		}
		inputs := cs.inputs(n)
		var scalars []float32
		if cs.scalars != nil {
			scalars = cs.scalars(n)
		}
		k := 4 // DPUs/Shards

		before := e.Stats()
		_, fst, err := e.EvaluateProgramTenant("", prog, inputs, scalars)
		if err != nil {
			e.Close()
			t.Fatalf("%s: %v", cs.name, err)
		}
		mid := e.Stats()
		gotIn := int(mid.BytesIn - before.BytesIn)
		gotOut := int(mid.BytesOut - before.BytesOut)
		if gotIn+gotOut != fst.FusedBytes {
			t.Fatalf("%s: metered fused bytes %d+%d ≠ model %d",
				cs.name, gotIn, gotOut, fst.FusedBytes)
		}
		redBytes, bcastBytes := prog.SyncBytes(k)
		wantIn := prog.InBytes(n, k) + bcastBytes
		wantOut := prog.OutBytes(n, k) + redBytes
		if gotIn != wantIn || gotOut != wantOut {
			t.Fatalf("%s: metered (in=%d, out=%d), model (in=%d, out=%d)",
				cs.name, gotIn, gotOut, wantIn, wantOut)
		}

		_, pst, err := e.EvaluateProgramPerOp("", prog, inputs, scalars)
		if err != nil {
			e.Close()
			t.Fatalf("%s: per-op: %v", cs.name, err)
		}
		after := e.Stats()
		perTotal := int(after.BytesIn-mid.BytesIn) + int(after.BytesOut-mid.BytesOut)
		if perTotal != pst.MovedBytes {
			t.Fatalf("%s: metered per-op bytes %d ≠ model %d", cs.name, perTotal, pst.MovedBytes)
		}
		e.Close()
	}
}

// TestProgramLedgerAttribution: fused evaluations must land in the
// ledger under the "fused:<program-name>" method label — their own
// rows, not the overflow bucket.
func TestProgramLedgerAttribution(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 1, MaxBatch: 4096, Ledger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	prog, err := e.CompileProgram(progSoftmax(), progParams())
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float32{stats.RandomInputs(-5, 5, 256, 9)}
	if _, _, err := e.EvaluateProgramTenant("tenant-a", prog, xs, nil); err != nil {
		t.Fatal(err)
	}

	snap := e.Ledger()
	found := false
	for _, row := range snap.Rows {
		if row.Method == "fused:softmax" {
			found = true
			if row.Tenant != "tenant-a" {
				t.Fatalf("fused row tenant %q, want tenant-a", row.Tenant)
			}
			if row.Function != "program" {
				t.Fatalf("fused row function %q, want program", row.Function)
			}
			if row.KernelCycles == 0 {
				t.Fatal("fused ledger row charged zero cycles")
			}
		}
		if strings.Contains(row.Method, "overflow") {
			t.Fatalf("fused evaluation collapsed into overflow bucket: %+v", row.LedgerKey)
		}
	}
	if !found {
		t.Fatalf("no fused:softmax ledger row; rows: %+v", snap.Rows)
	}
}

// TestProgramPlanCache: the second evaluation of the same program at
// the same batch shape must reuse the cached execution plan — zero
// setup seconds and a plan hit, mirroring the batchPlan contract.
func TestProgramPlanCache(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 1, MaxBatch: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	prog, err := e.CompileProgram(progFFNGELU(), progParams())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() [][]float32 {
		return [][]float32{
			stats.RandomInputs(-4, 4, 300, 41),
			stats.RandomInputs(-1, 1, 300, 42),
			stats.RandomInputs(0.5, 1.5, 300, 43),
		}
	}
	out1, _, err := e.EvaluateProgramTenant("", prog, mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.CachedProgramPlans() == 0 {
		t.Fatal("first evaluation cached no program plan")
	}
	hits0 := e.Stats().PlanHits
	out2, st2, err := e.EvaluateProgramTenant("", prog, mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mustBits(t, "plan-cache rerun", out2, out1)
	if st2.SetupSeconds != 0 {
		t.Fatalf("warm program evaluation charged setup: %g s", st2.SetupSeconds)
	}
	if e.Stats().PlanHits <= hits0 {
		t.Fatal("second evaluation did not hit the program plan cache")
	}
	// A table invalidation must drop the pinned generation: the next
	// run rebuilds rather than serving stale operators.
	if !e.InvalidateTables(core.GELU, progParams()) {
		t.Fatal("invalidate found no tables")
	}
	out3, _, err := e.EvaluateProgramTenant("", prog, mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mustBits(t, "post-invalidate rerun", out3, out1)
}

// TestProgramDegrade proves the recovery ladder's last rung for fused
// programs: under a fault plan that exhausts retries, the program
// completes on the bit-exact host mirror, flagged Degraded, with
// outputs identical to a fault-free fused run.
func TestProgramDegrade(t *testing.T) {
	clean, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	faulty, err := New(Config{
		DPUs: 2, Shards: 1, MaxBatch: 4096,
		Faults: mustPlan(t, "seed=9,dpufail=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	for _, cs := range progCases() {
		pc, err := clean.CompileProgram(cs.build(), progParams())
		if err != nil {
			t.Fatalf("%s: %v", cs.name, err)
		}
		pf, err := faulty.CompileProgram(cs.build(), progParams())
		if err != nil {
			t.Fatalf("%s: %v", cs.name, err)
		}
		const n = 400
		inputs := cs.inputs(n)
		var scalars []float32
		if cs.scalars != nil {
			scalars = cs.scalars(n)
		}
		want, _, err := clean.EvaluateProgramTenant("", pc, inputs, scalars)
		if err != nil {
			t.Fatalf("%s: clean: %v", cs.name, err)
		}
		got, st, err := faulty.EvaluateProgramTenant("", pf, inputs, scalars)
		if err != nil {
			t.Fatalf("%s: faulted: %v", cs.name, err)
		}
		mustBits(t, cs.name+" degraded vs clean", got, want)
		if !st.Degraded {
			t.Fatalf("%s: permanent dpufail plan did not degrade the program", cs.name)
		}
	}
	if faulty.Stats().DegradedBatches == 0 {
		t.Fatal("faulty engine recorded no degraded batches")
	}
}

// TestProgramValidation covers the builder/compiler error surface and
// the batch ceiling.
func TestProgramValidation(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// No Return.
	p := fusion.NewProgram("no-return")
	p.Func(core.Exp, p.Input())
	if _, err := e.CompileProgram(p, progParams()); err == nil {
		t.Fatal("compiled a program without Return")
	}

	// Nothing on the device.
	q := fusion.NewProgram("host-only")
	q.Input()
	q.Return(q.Add(q.Const(1), q.Const(2)))
	if _, err := e.CompileProgram(q, progParams()); err == nil {
		t.Fatal("compiled a program with no device work")
	}

	// Batch ceiling.
	r := fusion.NewProgram("big")
	r.Return(r.Func(core.Exp, r.Input()))
	prog, err := e.CompileProgram(r, progParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.EvaluateProgramTenant("", prog, [][]float32{make([]float32, 65)}, nil); err == nil {
		t.Fatal("accepted a program batch above MaxBatch")
	}

	// Arity mismatch.
	if _, _, err := e.EvaluateProgramTenant("", prog, nil, nil); err == nil {
		t.Fatal("accepted a program evaluation with no inputs")
	}
}
