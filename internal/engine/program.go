package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/fusion"
	"transpimlib/internal/pimsim"
)

// This file is the engine's fused-program path: a compiled
// fusion.Program rides the same submit → batcher → transfer-in →
// compute → transfer-out pipeline as ordinary requests, but one batch
// carries the whole program. Its intermediate vectors never cross the
// host boundary — transfer-in ships the input vectors (plus the initial
// scalar broadcasts) once, each phase is one fused kernel launch, the
// 4-byte-per-lane reduction syncs are the only mid-program traffic, and
// transfer-out ships only the result. The per-op baseline
// (EvaluateProgramPerOp) pays a full round trip per node through the
// ordinary paths instead; outputs are bit-identical between the two.

// ProgramStats reports one fused program evaluation: the underlying
// request costs plus the byte model the fusion compiler guarantees.
type ProgramStats struct {
	RequestStats

	// FusedBytes is the total host↔PIM bytes this evaluation moved
	// (inputs + scalar broadcasts + reduction syncs + result);
	// PerOpBytes is what the per-op baseline moves for the same
	// program and batch; SavedBytes is the difference. The engine's
	// metered transfers reconcile exactly against these (the
	// differential suite's contract).
	FusedBytes int
	PerOpBytes int
	SavedBytes int

	// SavedTransferSeconds/Cycles convert the byte saving to modeled
	// transfer time under the system's rank-parallel bandwidths (split
	// per direction) and to equivalent PIM clock cycles.
	SavedTransferSeconds float64
	SavedTransferCycles  uint64
}

// PerOpStats aggregates the per-op baseline evaluation of a program:
// one ordinary engine round trip per device node.
type PerOpStats struct {
	// Requests is how many engine round trips the decomposition made.
	Requests int
	// MovedBytes is the total host↔PIM bytes the baseline moved
	// (analytic, reconciled against the engine's byte counters by the
	// differential suite).
	MovedBytes int

	KernelCycles       uint64
	SetupSeconds       float64
	TransferInSeconds  float64
	ComputeSeconds     float64
	TransferOutSeconds float64
}

// ModeledSeconds returns the baseline's total modeled pipeline time.
func (s PerOpStats) ModeledSeconds() float64 {
	return s.SetupSeconds + s.TransferInSeconds + s.ComputeSeconds + s.TransferOutSeconds
}

// progKey identifies a cached program execution plan: one compiled
// program, one shard (whose cores hold the operator tables), one batch
// shape.
type progKey struct {
	pid   uint64
	shard int
	n     int
}

// progEntry pins the table-cache generation like batchPlan does: a
// table hot-swap bumps the generation and the entry self-invalidates.
type progEntry struct {
	ex  *fusion.Exec
	gen uint64
}

const defaultProgPlanLimit = 64

// progPlanCache is the bounded FIFO cache of program execution plans.
// An Exec carries per-batch mutable state, but a shard's compute stage
// runs one batch at a time and entries are keyed by shard, so a cached
// Exec never serves two batches concurrently.
type progPlanCache struct {
	mu    sync.Mutex
	m     map[progKey]progEntry
	order []progKey
	limit int
}

func newProgPlanCache(limit int) *progPlanCache {
	return &progPlanCache{m: make(map[progKey]progEntry), limit: limit}
}

func (c *progPlanCache) lookup(k progKey, gen uint64) *fusion.Exec {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok || e.gen != gen {
		return nil
	}
	return e.ex
}

func (c *progPlanCache) store(k progKey, ex *fusion.Exec, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; !ok {
		c.order = append(c.order, k)
	}
	c.m[k] = progEntry{ex: ex, gen: gen}
	for len(c.order) > c.limit {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.m, old)
	}
}

func (c *progPlanCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// CachedProgramPlans returns how many program execution plans are live.
func (e *Engine) CachedProgramPlans() int { return e.pplans.size() }

// CompileProgram compiles a fused program against this engine's cost
// model under the given method parameters. The compiled program is
// reusable across evaluations and engines sharing the same cost model.
func (e *Engine) CompileProgram(p *fusion.Program, par core.Params) (*fusion.Compiled, error) {
	return fusion.Compile(p, par, e.cfg.Cost)
}

// EvaluateProgram evaluates a compiled fused program over the given
// vector inputs and runtime scalars and returns the result (length n,
// or 1 for a scalar-returning program) with its cost report. Safe for
// concurrent use.
func (e *Engine) EvaluateProgram(c *fusion.Compiled, inputs [][]float32, scalars []float32) ([]float32, ProgramStats, error) {
	return e.EvaluateProgramTenant("", c, inputs, scalars)
}

// EvaluateProgramTenant is EvaluateProgram with a tenant tag for
// ledger attribution (the "fused:<program-name>" method rows).
func (e *Engine) EvaluateProgramTenant(tenant string, c *fusion.Compiled, inputs [][]float32, scalars []float32) ([]float32, ProgramStats, error) {
	n, err := c.CheckArgs(inputs, scalars)
	if err != nil {
		return nil, ProgramStats{}, err
	}
	if n > e.cfg.MaxBatch {
		// A fused program's intermediates live on-device for the whole
		// batch; splitting would break reduction semantics, so the batch
		// bound is a hard ceiling here rather than a split point.
		return nil, ProgramStats{}, fmt.Errorf("engine: program batch %d exceeds MaxBatch %d (fused programs are not split)", n, e.cfg.MaxBatch)
	}
	outLen := n
	if c.ScalarResult() {
		outLen = 1
	}
	r := &request{
		prog:     c,
		pinputs:  inputs,
		pscalars: scalars,
		tenant:   tenant,
		outputs:  make([]float32, outLen),
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	r.stats.CacheHit = true

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ProgramStats{}, ErrEngineClosed
	}
	e.met.requests.Inc()
	e.submit <- r
	e.met.queueDepth.Set(int64(len(e.submit)))
	e.mu.RUnlock()

	<-r.done
	k := e.cfg.DPUs / e.cfg.Shards
	st := ProgramStats{RequestStats: r.stats}
	st.FusedBytes = c.FusedBytes(n, k)
	st.PerOpBytes = c.PerOpBytes(n, k)
	st.SavedBytes = st.PerOpBytes - st.FusedBytes
	sc := e.sys.Config()
	st.SavedTransferSeconds = c.SavedTransferSeconds(n, k, sc.HostToPIMBandwidth, sc.PIMToHostBandwidth)
	st.SavedTransferCycles = uint64(st.SavedTransferSeconds * sc.ClockHz)
	return r.outputs, st, r.err
}

// EvaluateProgramPerOp evaluates the same program through the per-op
// baseline: every transcendental node goes through the ordinary batch
// path, every vector elementwise and reduction node through a
// single-node mini program — one full host↔PIM round trip per device
// node, with host scalar arithmetic free exactly as in the fused path.
// Outputs are bit-identical to EvaluateProgram.
func (e *Engine) EvaluateProgramPerOp(tenant string, c *fusion.Compiled, inputs [][]float32, scalars []float32) ([]float32, PerOpStats, error) {
	var st PerOpStats
	add := func(rs RequestStats) {
		st.Requests++
		st.KernelCycles += rs.KernelCycles
		st.SetupSeconds += rs.SetupSeconds
		st.TransferInSeconds += rs.TransferInSeconds
		st.ComputeSeconds += rs.ComputeSeconds
		st.TransferOutSeconds += rs.TransferOutSeconds
	}
	out, err := fusion.RunPerOp(c, inputs, scalars,
		func(fn core.Function, xs []float32) ([]float32, error) {
			ys, rs, err := e.EvaluateBatchTenant(tenant, fn, c.Params(), xs)
			if err == nil {
				add(rs)
			}
			return ys, err
		},
		func(mini *fusion.Compiled, ins [][]float32, ss []float32) ([]float32, error) {
			ys, ps, err := e.EvaluateProgramTenant(tenant, mini, ins, ss)
			if err == nil {
				add(ps.RequestStats)
			}
			return ys, err
		})
	if err != nil {
		return nil, PerOpStats{}, err
	}
	st.MovedBytes = c.PerOpBytes(len(inputs[0]), e.cfg.DPUs/e.cfg.Shards)
	return out, st, nil
}

// stageProgramIn is transfer-in for a program batch: charge the
// program's inbound bytes — every input vector rank-padded plus the
// initial scalar broadcasts — in one checked (or plain) transfer.
// Programs always use host staging (the compiled-plan convention): the
// fused kernels read and write host memory while the simulator charges
// the exact modeled costs, so no MRAM copies are made here.
func (e *Engine) stageProgramIn(s *shard, b *batch) {
	per, _ := e.splan.Plan(b.n, len(s.dpus))
	b.perDPU = per
	inBytes := b.prog.InBytes(b.n, len(s.dpus))
	if e.inj != nil {
		e.chargeTransferIn(s, b, inBytes)
	} else {
		e.sys.ChargeHostToPIM(inBytes, true)
		b.tin = float64(inBytes) / e.sys.Config().HostToPIMBandwidth
	}
	b.pIn = inBytes
}

// computeProgram is the compute stage for a program batch: resolve (or
// plan-hit) the execution plan, then run each phase as one shard-wide
// fused kernel launch with a reduction sync between phases. Under
// fault injection a failed launch retries the whole phase — RunLane is
// idempotent over its bound state — and exhaustion (or a failed
// transfer-in) degrades to the bit-exact host mirror, the same last
// rung as the per-op ladder.
func (e *Engine) computeProgram(s *shard, b *batch) {
	c := b.prog
	r := b.segs[0].req
	if b.tr != nil {
		b.tr.setupStart = time.Now()
	}
	gen := e.cache.generation()
	key := progKey{pid: c.ID(), shard: s.id, n: b.n}
	var ex *fusion.Exec
	if e.inj == nil {
		ex = e.pplans.lookup(key, gen)
	}
	if ex != nil {
		b.hit, b.setup = true, 0
		e.met.planHits.Inc()
	} else {
		e.met.planMisses.Inc()
		ex = c.NewExec(len(s.dpus))
		hit := true
		var setup float64
		for i, fn := range c.FuncNodes() {
			ops, h, su, err := e.cache.ensure(Spec{Fn: fn, Par: c.Params()}, s)
			e.met.cachedSpecs.Set(int64(e.cache.size()))
			if err != nil {
				b.err = err
				if b.tr != nil {
					b.tr.setupEnd = time.Now()
				}
				return
			}
			if !h {
				hit = false
			}
			setup += su
			ex.SetOps(i, ops)
		}
		b.hit, b.setup = hit, setup
		if e.inj == nil {
			e.pplans.store(key, ex, gen)
		}
	}
	if b.tr != nil {
		b.tr.setupEnd = time.Now()
	}

	var out []float32
	if !c.ScalarResult() {
		out = r.outputs
	}
	ex.Bind(r.pinputs, r.pscalars, out, b.n, b.perDPU)

	if b.tr != nil {
		b.tr.kernStart = time.Now()
	}
	if b.inFailed {
		e.degradeProgram(s, b, ex)
		if b.tr != nil {
			b.tr.kernEnd = time.Now()
		}
		return
	}
	fast := !e.cfg.Reference
	base := s.ids[0]
	for phi := 0; phi < ex.NumPhases(); phi++ {
		if e.prof != nil {
			// Each phase is its own launch: label it so flamegraphs
			// split a fused program's cycles phase by phase.
			e.profContext(s, b, phaseStage(phi))
		}
		kern := func(ctx *pimsim.Ctx, id int) error {
			local := id - base
			ex.RunLane(ctx, phi, local, s.arena[local], fast)
			return nil
		}
		var launchErr error
		for attempt := uint64(0); ; attempt++ {
			for i, d := range s.dpus {
				s.issue0[i] = d.IssueCycles()
				s.dma0[i] = d.DMACycles()
			}
			if e.inj == nil {
				launchErr = e.sys.LaunchShard(s.ids, kern)
			} else {
				launchErr = e.sys.LaunchShardSeq(b.seq, attempt, s.ids, kern)
			}
			var mx uint64
			for i, d := range s.dpus {
				cyc := pimsim.ClosedFormCycles(d.IssueCycles()-s.issue0[i], d.DMACycles()-s.dma0[i], d.Tasklets())
				if cyc > mx {
					mx = cyc
				}
			}
			b.cycles += mx
			b.tcomp += float64(mx) / e.sys.Config().ClockHz
			if launchErr == nil {
				break
			}
			var le *pimsim.LaunchError
			if e.inj != nil && errors.As(launchErr, &le) && attempt < uint64(e.rel.MaxRetries) {
				e.met.launchRetries.Inc()
				b.retries++
				b.tcomp += e.rel.backoff(attempt + 1)
				continue
			}
			break
		}
		if launchErr != nil {
			var le *pimsim.LaunchError
			if e.inj != nil && errors.As(launchErr, &le) {
				e.degradeProgram(s, b, ex)
			} else {
				b.err = launchErr
			}
			if b.tr != nil {
				b.tr.kernEnd = time.Now()
			}
			return
		}
		// Phase sync: gather the reduction partials, combine on the
		// host, broadcast the scalars the next phases read. These small
		// transfers ride the plain charge paths even under injection —
		// the ladder's retry/degrade rungs guard the bulk transfers and
		// the launches.
		gather, bcast := ex.Sync(phi)
		if gather > 0 {
			e.sys.ChargePIMToHost(gather, true)
			b.tout += float64(gather) / e.sys.Config().PIMToHostBandwidth
			b.pOut += gather
		}
		if bcast > 0 {
			e.sys.ChargeHostToPIM(bcast, true)
			b.tin += float64(bcast) / e.sys.Config().HostToPIMBandwidth
			b.pIn += bcast
		}
	}
	if c.ScalarResult() {
		r.outputs[0] = ex.ScalarResult()
	}
	if b.tr != nil {
		b.tr.kernEnd = time.Now()
	}
}

// degradeProgram completes a program batch on the host mirror: the
// whole bound batch re-runs sequentially through the interpreted
// reference against a throwaway recorder, bit-identical to a clean
// device run (the PR 4 ladder's last rung, extended to programs).
func (e *Engine) degradeProgram(s *shard, b *batch, ex *fusion.Exec) {
	rec := s.rec
	if rec == nil {
		rec = pimsim.NewSigRecorder(e.cfg.Cost)
	}
	ex.HostEval(rec)
	if b.prog.ScalarResult() {
		b.segs[0].req.outputs[0] = ex.ScalarResult()
	}
	b.degraded, b.hostEval = true, true
	e.met.degraded.Inc()
	if e.log != nil {
		e.log.Warn("program degraded to host mirror",
			"shard", s.id, "seq", b.seq, "elements", b.n,
			"program", b.prog.Name(), "retries", b.retries)
	}
}

// drainProgramOut is transfer-out for a program batch: only the result
// vector crosses back (nothing for a scalar result — its value left in
// the final reduction gather), and nothing moves when the host mirror
// produced the outputs.
func (e *Engine) drainProgramOut(s *shard, b *batch) (bytesIn, bytesOut int) {
	if b.err == nil && !b.hostEval {
		ob := b.prog.OutBytes(b.n, len(s.dpus))
		if ob > 0 {
			if e.inj != nil {
				e.chargeTransferOut(s, b, ob)
			} else {
				e.sys.ChargePIMToHost(ob, true)
				b.tout += float64(ob) / e.sys.Config().PIMToHostBandwidth
			}
			b.pOut += ob
		}
	}
	return b.pIn, b.pOut
}
