package engine

import (
	"fmt"
	"time"

	"transpimlib/internal/faultsim"
	"transpimlib/internal/telemetry"
)

// RequestStats reports what one EvaluateBatch call cost. Modeled
// quantities are simulator time (PIM cycles, transfer-bandwidth
// seconds); Latency is host wall-clock.
type RequestStats struct {
	// Latency is the wall-clock time from enqueue to completion,
	// including queueing, coalescing and all pipeline stages.
	Latency time.Duration
	// ShardID is the shard that served the request (the last one, for
	// requests split across several batches).
	ShardID int
	// Batches is how many pipeline batches carried the request: 1 for
	// a small request, more when it was split, and shared with other
	// requests when it was coalesced.
	Batches int
	// BatchElements is the total element count of those batches —
	// larger than the request's own length when coalescing packed it
	// with neighbours.
	BatchElements int
	// CacheHit reports whether every batch found its tables already
	// resident on its shard (the Fig.-6 setup cost was skipped).
	CacheHit bool
	// SetupSeconds is the modeled setup time charged to this request's
	// batches: table generation plus rank-wide broadcast on a cache
	// miss, exactly zero on a warm hit.
	SetupSeconds float64
	// Per-stage modeled seconds of the batches the request rode in.
	TransferInSeconds  float64
	ComputeSeconds     float64
	TransferOutSeconds float64
	// KernelCycles is the modeled PIM cycle count of those batches
	// (slowest core of the shard, per batch).
	KernelCycles uint64
	// TraceID identifies this request's span tree in the engine's
	// trace ring (Engine.TraceLast / /debug/trace). Zero when tracing
	// is disabled.
	TraceID uint64

	// Degraded marks a request whose outputs (in part) came from the
	// recovery ladder's last rung — host-mirror evaluation after
	// retries and remapping were exhausted. The values are bit-exact
	// with a healthy device run; the marker records that the PIM side
	// did not produce them. Only set under fault injection.
	Degraded bool
	// Retries is the launch + transfer retries spent on the request's
	// batches; Remaps/Hedges count its batches that were remapped onto
	// a core subset or had a straggler lane hedged.
	Retries int
	Remaps  int
	Hedges  int
}

// ModeledSeconds returns the total modeled pipeline time of the
// request: transfer-in + compute + transfer-out + any setup.
func (s RequestStats) ModeledSeconds() float64 {
	return s.SetupSeconds + s.TransferInSeconds + s.ComputeSeconds + s.TransferOutSeconds
}

// Stats is the engine-wide accumulated view.
type Stats struct {
	Requests uint64 // EvaluateBatch calls accepted
	Batches  uint64 // pipeline batches dispatched
	Elements uint64 // elements evaluated
	Errors   uint64 // batches that failed
	// RequestErrors counts accepted EvaluateBatch calls that completed
	// with an error — the per-request view of Errors, which counts per
	// batch (one failed batch shared by three coalesced requests is 1
	// batch error but 3 request errors).
	RequestErrors uint64

	// CoalescedBatches counts batches that carried more than one
	// request — the amortization the batcher exists for.
	CoalescedBatches uint64

	// CacheHits/CacheMisses count per-batch table lookups; a miss is a
	// shard-level table build (generation and/or broadcast).
	CacheHits   uint64
	CacheMisses uint64

	// PlanHits/PlanMisses count per-batch compiled-plan lookups: a hit
	// skips table-cache locking and shard planning entirely; a miss
	// compiles (or recompiles, after a table hot-swap) the plan.
	// PlanEvictions counts plans dropped by the bounded plan cache.
	PlanHits      uint64
	PlanMisses    uint64
	PlanEvictions uint64

	// SetupSeconds is the total modeled setup time paid (all misses).
	SetupSeconds float64

	// Modeled per-stage totals across all batches.
	TransferInSeconds  float64
	ComputeSeconds     float64
	TransferOutSeconds float64
	KernelCycles       uint64

	BytesIn  uint64 // host→PIM payload bytes (padded, rank-parallel)
	BytesOut uint64 // PIM→host payload bytes

	// QueueDepth is the coalescing-batcher backlog at snapshot time:
	// requests accepted but not yet pulled into a batching round. A
	// point-in-time gauge, not a counter — the cluster router's
	// least-loaded placement and tplwatch both read it.
	QueueDepth int

	// Reliability counters (all zero unless fault injection is on).
	FaultsInjected   uint64 // faults fired across all classes
	LaunchRetries    uint64 // kernel launch attempts beyond the first
	TransferRetries  uint64 // transfer attempts beyond the first
	LaunchTimeouts   uint64 // launches failed by the straggler cutoff
	Remaps           uint64 // batches remapped onto a healthy core subset
	Hedges           uint64 // straggler lanes relaunched
	DegradedBatches  uint64 // batches completed on the host mirror
	TableCorruptions uint64 // checksum mismatches found by scrubbing
	TableRepairs     uint64 // table regions rewritten from golden copies
	QuarantinedDPUs  uint64 // cores currently quarantined
}

// metrics is the atomic-counter accumulator behind Stats, registered
// on the engine's telemetry registry so the same numbers serve both
// the Stats() API and the /metrics Prometheus exposition. Every hot
// update is a single atomic op (the old statsCollector serialized
// every batch completion on one mutex).
type metrics struct {
	requests      *telemetry.Counter
	requestErrors *telemetry.Counter
	batches       *telemetry.Counter
	batchErrors   *telemetry.Counter
	elements      *telemetry.Counter
	coalesced     *telemetry.Counter
	cacheHits     *telemetry.Counter
	cacheMisses   *telemetry.Counter
	planHits      *telemetry.Counter
	planMisses    *telemetry.Counter
	planEvictions *telemetry.Counter

	setupSeconds *telemetry.FloatCounter
	tinSeconds   *telemetry.FloatCounter
	tcompSeconds *telemetry.FloatCounter
	toutSeconds  *telemetry.FloatCounter

	kernelCycles *telemetry.Counter
	bytesIn      *telemetry.Counter
	bytesOut     *telemetry.Counter

	// Reliability series (registered unconditionally; they only move
	// when fault injection is on).
	faults          [faultsim.NumClasses]*telemetry.Counter
	launchRetries   *telemetry.Counter
	transferRetries *telemetry.Counter
	timeouts        *telemetry.Counter
	remaps          *telemetry.Counter
	hedges          *telemetry.Counter
	degraded        *telemetry.Counter
	corruptions     *telemetry.Counter
	repairs         *telemetry.Counter
	quarantined     *telemetry.Gauge

	cachedSpecs *telemetry.Gauge
	queueDepth  *telemetry.Gauge

	latency    *telemetry.Histogram
	batchElems *telemetry.Histogram

	// Per-shard attribution: who is the straggler, which shard's
	// tables are cold, where the bytes went.
	shard []shardMetrics
}

type shardMetrics struct {
	batches      *telemetry.Counter
	kernelCycles *telemetry.Counter
	bytesIn      *telemetry.Counter
	bytesOut     *telemetry.Counter
	cacheHits    *telemetry.Counter
	cacheMisses  *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry, shards int) *metrics {
	m := &metrics{
		requests:      reg.Counter("engine_requests_total", "EvaluateBatch calls accepted into the pipeline"),
		requestErrors: reg.Counter("engine_request_errors_total", "accepted requests that completed with an error"),
		batches:       reg.Counter("engine_batches_total", "pipeline batches dispatched"),
		batchErrors:   reg.Counter("engine_batch_errors_total", "pipeline batches that failed"),
		elements:      reg.Counter("engine_elements_total", "elements evaluated"),
		coalesced:     reg.Counter("engine_coalesced_batches_total", "batches carrying more than one request"),
		cacheHits:     reg.Counter("engine_cache_hits_total", "per-batch table lookups served from resident tables"),
		cacheMisses:   reg.Counter("engine_cache_misses_total", "per-batch table lookups that built tables"),
		planHits:      reg.Counter("engine_plan_hits_total", "batches served by a compiled batch plan"),
		planMisses:    reg.Counter("engine_plan_misses_total", "batches that compiled or recompiled their plan"),
		planEvictions: reg.Counter("engine_plan_evictions_total", "compiled plans evicted by the bounded plan cache"),
		setupSeconds:  reg.FloatCounter("engine_setup_seconds_total", "modeled table generation + broadcast seconds"),
		tinSeconds:    reg.FloatCounter("engine_transfer_in_seconds_total", "modeled host-to-PIM transfer seconds"),
		tcompSeconds:  reg.FloatCounter("engine_compute_seconds_total", "modeled kernel seconds (slowest core per batch)"),
		toutSeconds:   reg.FloatCounter("engine_transfer_out_seconds_total", "modeled PIM-to-host transfer seconds"),
		kernelCycles:  reg.Counter("engine_kernel_cycles_total", "modeled kernel cycles (slowest core per batch)"),
		bytesIn:       reg.Counter("engine_bytes_in_total", "host-to-PIM payload bytes (padded, rank-parallel)"),
		bytesOut:      reg.Counter("engine_bytes_out_total", "PIM-to-host payload bytes"),
		cachedSpecs:   reg.Gauge("engine_cached_specs", "configurations holding resident tables"),
		queueDepth:    reg.Gauge("engine_queue_depth", "requests waiting in the submit queue"),
		latency:       reg.Histogram("engine_request_latency_seconds", "wall-clock request latency", telemetry.LatencyBuckets()),
		batchElems:    reg.Histogram("engine_batch_elements", "elements per dispatched batch", telemetry.SizeBuckets()),

		launchRetries:   reg.Counter("engine_launch_retries_total", "kernel launch attempts beyond the first"),
		transferRetries: reg.Counter("engine_transfer_retries_total", "host-PIM transfer attempts beyond the first"),
		timeouts:        reg.Counter("engine_launch_timeouts_total", "launches failed by the modeled straggler cutoff"),
		remaps:          reg.Counter("engine_remaps_total", "batches remapped onto a healthy core subset"),
		hedges:          reg.Counter("engine_hedges_total", "straggler lanes relaunched"),
		degraded:        reg.Counter("engine_degraded_total", "batches completed on the bit-exact host mirror"),
		corruptions:     reg.Counter("engine_table_corruptions_total", "table checksum mismatches found by scrubbing"),
		repairs:         reg.Counter("engine_table_repairs_total", "table regions rewritten from golden copies"),
		quarantined:     reg.Gauge("engine_quarantined_dpus", "cores currently quarantined by the health tracker"),
	}
	for c := 0; c < faultsim.NumClasses; c++ {
		lb := fmt.Sprintf("{class=%q}", faultsim.Class(c).String())
		m.faults[c] = reg.Counter("engine_faults_injected_total"+lb, "injected faults fired, by class")
	}
	for s := 0; s < shards; s++ {
		lb := fmt.Sprintf("{shard=%q}", fmt.Sprint(s))
		m.shard = append(m.shard, shardMetrics{
			batches:      reg.Counter("engine_shard_batches_total"+lb, "batches served per shard"),
			kernelCycles: reg.Counter("engine_shard_kernel_cycles_total"+lb, "modeled kernel cycles per shard"),
			bytesIn:      reg.Counter("engine_shard_bytes_in_total"+lb, "host-to-PIM bytes per shard"),
			bytesOut:     reg.Counter("engine_shard_bytes_out_total"+lb, "PIM-to-host bytes per shard"),
			cacheHits:    reg.Counter("engine_shard_cache_hits_total"+lb, "table-cache hits per shard"),
			cacheMisses:  reg.Counter("engine_shard_cache_misses_total"+lb, "table-cache misses per shard"),
		})
	}
	return m
}

// addBatch accounts one drained batch. bytesIn/bytesOut are zero for
// failed batches.
func (m *metrics) addBatch(b *batch, shardID, bytesIn, bytesOut int) {
	m.batches.Inc()
	m.elements.Add(uint64(b.n))
	m.batchElems.Observe(float64(b.n))
	if len(b.segs) > 1 {
		m.coalesced.Inc()
	}
	if b.err != nil {
		m.batchErrors.Inc()
	}
	if b.hit {
		m.cacheHits.Inc()
	} else {
		m.cacheMisses.Inc()
	}
	m.setupSeconds.Add(b.setup)
	m.tinSeconds.Add(b.tin)
	m.tcompSeconds.Add(b.tcomp)
	m.toutSeconds.Add(b.tout)
	m.kernelCycles.Add(b.cycles)
	m.bytesIn.Add(uint64(bytesIn))
	m.bytesOut.Add(uint64(bytesOut))
	if shardID >= 0 && shardID < len(m.shard) {
		sm := &m.shard[shardID]
		sm.batches.Inc()
		sm.kernelCycles.Add(b.cycles)
		sm.bytesIn.Add(uint64(bytesIn))
		sm.bytesOut.Add(uint64(bytesOut))
		if b.hit {
			sm.cacheHits.Inc()
		} else {
			sm.cacheMisses.Inc()
		}
	}
}

// snapshot assembles the Stats view from the individual atomics. Each
// field load is atomic; the struct as a whole is not a consistent cut
// under concurrent traffic — the standard metrics contract, and the
// price of taking no lock on the batch path.
func (m *metrics) snapshot() Stats {
	return Stats{
		Requests:           m.requests.Load(),
		Batches:            m.batches.Load(),
		Elements:           m.elements.Load(),
		Errors:             m.batchErrors.Load(),
		RequestErrors:      m.requestErrors.Load(),
		CoalescedBatches:   m.coalesced.Load(),
		CacheHits:          m.cacheHits.Load(),
		CacheMisses:        m.cacheMisses.Load(),
		PlanHits:           m.planHits.Load(),
		PlanMisses:         m.planMisses.Load(),
		PlanEvictions:      m.planEvictions.Load(),
		SetupSeconds:       m.setupSeconds.Load(),
		TransferInSeconds:  m.tinSeconds.Load(),
		ComputeSeconds:     m.tcompSeconds.Load(),
		TransferOutSeconds: m.toutSeconds.Load(),
		KernelCycles:       m.kernelCycles.Load(),
		BytesIn:            m.bytesIn.Load(),
		BytesOut:           m.bytesOut.Load(),

		FaultsInjected:   m.faultsTotal(),
		LaunchRetries:    m.launchRetries.Load(),
		TransferRetries:  m.transferRetries.Load(),
		LaunchTimeouts:   m.timeouts.Load(),
		Remaps:           m.remaps.Load(),
		Hedges:           m.hedges.Load(),
		DegradedBatches:  m.degraded.Load(),
		TableCorruptions: m.corruptions.Load(),
		TableRepairs:     m.repairs.Load(),
		QuarantinedDPUs:  uint64(m.quarantined.Load()),
	}
}

func (m *metrics) faultsTotal() uint64 {
	var n uint64
	for _, c := range m.faults {
		n += c.Load()
	}
	return n
}
