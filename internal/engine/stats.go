package engine

import (
	"sync"
	"time"
)

// RequestStats reports what one EvaluateBatch call cost. Modeled
// quantities are simulator time (PIM cycles, transfer-bandwidth
// seconds); Latency is host wall-clock.
type RequestStats struct {
	// Latency is the wall-clock time from enqueue to completion,
	// including queueing, coalescing and all pipeline stages.
	Latency time.Duration
	// ShardID is the shard that served the request (the last one, for
	// requests split across several batches).
	ShardID int
	// Batches is how many pipeline batches carried the request: 1 for
	// a small request, more when it was split, and shared with other
	// requests when it was coalesced.
	Batches int
	// BatchElements is the total element count of those batches —
	// larger than the request's own length when coalescing packed it
	// with neighbours.
	BatchElements int
	// CacheHit reports whether every batch found its tables already
	// resident on its shard (the Fig.-6 setup cost was skipped).
	CacheHit bool
	// SetupSeconds is the modeled setup time charged to this request's
	// batches: table generation plus rank-wide broadcast on a cache
	// miss, exactly zero on a warm hit.
	SetupSeconds float64
	// Per-stage modeled seconds of the batches the request rode in.
	TransferInSeconds  float64
	ComputeSeconds     float64
	TransferOutSeconds float64
	// KernelCycles is the modeled PIM cycle count of those batches
	// (slowest core of the shard, per batch).
	KernelCycles uint64
}

// ModeledSeconds returns the total modeled pipeline time of the
// request: transfer-in + compute + transfer-out + any setup.
func (s RequestStats) ModeledSeconds() float64 {
	return s.SetupSeconds + s.TransferInSeconds + s.ComputeSeconds + s.TransferOutSeconds
}

// Stats is the engine-wide accumulated view.
type Stats struct {
	Requests uint64 // EvaluateBatch calls accepted
	Batches  uint64 // pipeline batches dispatched
	Elements uint64 // elements evaluated
	Errors   uint64 // batches that failed

	// CoalescedBatches counts batches that carried more than one
	// request — the amortization the batcher exists for.
	CoalescedBatches uint64

	// CacheHits/CacheMisses count per-batch table lookups; a miss is a
	// shard-level table build (generation and/or broadcast).
	CacheHits   uint64
	CacheMisses uint64

	// SetupSeconds is the total modeled setup time paid (all misses).
	SetupSeconds float64

	// Modeled per-stage totals across all batches.
	TransferInSeconds  float64
	ComputeSeconds     float64
	TransferOutSeconds float64
	KernelCycles       uint64

	BytesIn  uint64 // host→PIM payload bytes (padded, rank-parallel)
	BytesOut uint64 // PIM→host payload bytes
}

// statsCollector is the mutex-guarded accumulator behind Stats.
type statsCollector struct {
	mu sync.Mutex
	s  Stats
}

func (c *statsCollector) addRequest() {
	c.mu.Lock()
	c.s.Requests++
	c.mu.Unlock()
}

func (c *statsCollector) addBatch(b *batch, bytesIn, bytesOut int) {
	c.mu.Lock()
	c.s.Batches++
	c.s.Elements += uint64(b.n)
	if len(b.segs) > 1 {
		c.s.CoalescedBatches++
	}
	if b.err != nil {
		c.s.Errors++
	}
	if b.hit {
		c.s.CacheHits++
	} else {
		c.s.CacheMisses++
	}
	c.s.SetupSeconds += b.setup
	c.s.TransferInSeconds += b.tin
	c.s.ComputeSeconds += b.tcomp
	c.s.TransferOutSeconds += b.tout
	c.s.KernelCycles += b.cycles
	c.s.BytesIn += uint64(bytesIn)
	c.s.BytesOut += uint64(bytesOut)
	c.mu.Unlock()
}

func (c *statsCollector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}
