// Package engine is a batched, multi-tenant serving runtime on top of
// the PIM simulator — the step from the paper's one-shot
// setup→transfer→launch→retrieve benchmarks (Figs. 5–9) to a
// long-lived inference-style service.
//
// The engine keeps a table/setup cache keyed by (function, method,
// LUT size, placement) so repeated requests skip the Fig.-6 setup
// cost entirely; it coalesces concurrent small requests into batches
// and shards each batch across a group of PIM cores with equal-size
// (padded) per-bank buffers, preserving the parallel-transfer
// semantics of §2.1; and it pipelines host→PIM transfer against
// kernel execution with a bounded buffer-slot pool per shard
// (transfer-in / compute / transfer-out stages, backpressure all the
// way to the caller). Every request reports its wall-clock latency
// plus the modeled per-stage costs; the engine accumulates fleet-wide
// counters.
//
// Concurrency discipline (see pimsim.System): each shard's cores are
// owned by that shard's pipeline; the transfer clock is shared and
// internally locked; all per-shard MRAM I/O buffers are pre-touched
// at construction so overlapped stages never grow a Mem under a
// reader, and table builds (which do grow memories) serialize against
// the shard's transfer stages via a per-shard memory lock.
package engine

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"transpimlib/internal/accwatch"
	"transpimlib/internal/core"
	"transpimlib/internal/faultsim"
	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/profiler"
	"transpimlib/internal/telemetry"
)

// ErrEngineClosed is returned by submit paths after Close.
var ErrEngineClosed = errors.New("engine: closed")

// Config describes an engine.
type Config struct {
	// DPUs is the total number of simulated PIM cores (default 8).
	DPUs int
	// Shards is the number of independent pipeline groups the cores
	// are divided into; batches are load-balanced across shards. DPUs
	// must be divisible by Shards. Default: 2 when DPUs is even and
	// >1, else 1.
	Shards int
	// MaxBatch is the largest number of elements dispatched as one
	// batch (default 4096). Larger requests are split; smaller
	// concurrent same-spec requests are coalesced up to this bound.
	MaxBatch int
	// BatchWindow is how long the batcher holds the first request of a
	// round to let more arrive and coalesce. Zero (the default) only
	// coalesces requests that are already queued.
	BatchWindow time.Duration
	// QueueDepth bounds the submit queue; callers block (backpressure)
	// when it is full. Default 64.
	QueueDepth int
	// Buffers is the number of MRAM I/O buffer slots per shard; 2 (the
	// default) double-buffers transfer-in against compute.
	Buffers int
	// Cost selects the machine profile (zero value: the UPMEM-like
	// default).
	Cost pimsim.CostModel
	// TraceDepth retains the span trees of the last N completed
	// requests (Engine.TraceLast, /debug/trace). Zero disables
	// tracing: no stage timestamps are taken and no spans allocated.
	TraceDepth int
	// Profile enables per-DPU kernel-launch profiling: instruction-
	// class cycle counters and per-core kernel cycles accumulate into
	// the telemetry registry (pim_* series). Off by default; when off,
	// the simulator pays one atomic nil-check per launch.
	Profile bool
	// Profiler enables the continuous modeled-cycle profiler: every
	// kernel launch is attributed to (tenant, function, method,
	// pipeline stage / program phase, instruction class) frames with
	// per-DPU utilization heatmaps, exported at /debug/profile and
	// /debug/heatmap (see internal/profiler). Disabled (the zero
	// value), the launch path is unchanged — the simulator pays the
	// same single atomic nil-observer load as with Profile off.
	Profiler profiler.Config
	// Reference forces the compute stage through the per-element
	// interpreted kernel instead of the fused batch fast path — the
	// escape hatch for differential debugging. Cycle accounting and
	// outputs are bit-identical either way (the contract the
	// differential tests enforce); only host-side wall time differs.
	Reference bool
	// Faults, when non-nil and enabled, installs a deterministic fault
	// injector (see internal/faultsim) and activates the engine's
	// recovery ladder: retry with modeled backoff, health-aware shard
	// remapping, optional hedged launches, and host-mirror degradation.
	// Nil (or a plan that never fires) leaves the pipeline bit-identical
	// to the fault-free engine.
	Faults *faultsim.Plan
	// Reliability tunes the recovery ladder; zero value = defaults.
	// Only consulted when Faults is enabled.
	Reliability ReliabilityConfig
	// Accuracy enables the online accuracy observability layer: a
	// deterministic shadow-sampler re-evaluates a fraction of each
	// request's elements against the float64 host reference and feeds
	// per-(function, method, tenant) error/coverage series with SLO
	// gating (see internal/accwatch). Disabled (the zero value), the
	// serving path is bit-identical to an engine without it — one nil
	// check per completed request, no allocation.
	Accuracy accwatch.Config
	// Ledger enables the per-tenant cost ledger: every drained batch
	// charges its modeled kernel cycles, transfer bytes and elements to
	// the (tenant, function, method) row of the requests it carried,
	// with exact integer partitioning — the ledger's cycle total
	// reconciles ±0 against the simulator's attributed cycles. Disabled
	// (the default), the drain path pays one nil check per batch and
	// the serving path is bit-identical.
	Ledger bool
	// Timeline enables the windowed metrics store: a background ticker
	// snapshots the registry into fixed-width buckets served at
	// /debug/timeline. Zero value (disabled) adds nothing.
	Timeline telemetry.TimelineConfig
	// ProcName, when set, names this engine's process lane on every
	// exported trace span tree ("replica/2" under a cluster). Empty,
	// each trace renders in its own per-trace lane.
	ProcName string
	// Log, when non-nil, receives structured events from the recovery
	// ladder (degrades, quarantines, table repairs) and the accuracy
	// watcher (SLO breaches, drift). Nil disables logging; counters
	// and snapshots still move.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.DPUs <= 0 {
		c.DPUs = 8
	}
	if c.Shards <= 0 {
		if c.DPUs > 1 && c.DPUs%2 == 0 {
			c.Shards = 2
		} else {
			c.Shards = 1
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Buffers <= 0 {
		c.Buffers = 2
	}
	if c.Cost == (pimsim.CostModel{}) {
		c.Cost = pimsim.Default()
	}
	return c
}

// shard is one pipeline group: a contiguous range of cores with its
// own buffer slots and stage channels.
type shard struct {
	id   int
	ids  []int // global core ids (contiguous)
	dpus []*pimsim.DPU

	capPerDPU int // elements per core per slot
	// inAddr/outAddr are [slot][localCore] MRAM addresses, allocated
	// and pre-touched at construction.
	inAddr  [][]int
	outAddr [][]int

	// inBuf/outBuf are [slot] flat host staging buffers in core-major
	// order (core k owns [k·perDPU, (k+1)·perDPU)), sized
	// capPerDPU·cores: segments pack into them with contiguous copies
	// and each core's chunk moves to/from MRAM in one typed bulk
	// access. A slot's staging is owned by the batch holding the slot.
	inBuf  [][]float32
	outBuf [][]float32
	// ys is per-local-core kernel scratch for the batch fast path's
	// outputs; safe because a shard computes one batch at a time.
	ys [][]float32
	// arena is per-local-core classifier scratch for the fused batch
	// kernels' SoA lanes, pre-grown to capPerDPU at construction so
	// steady-state batches allocate nothing. Indexed by serving lane,
	// so remapped and hedged launches never share an arena.
	arena []*lut.Scratch
	// issue0/dma0 are the compute stage's per-core cycle baselines,
	// persistent so steady-state batches allocate nothing.
	issue0, dma0 []uint64

	// lctx is the profiler's launch context: written by this shard's
	// compute goroutine immediately before each launch, read by the
	// observer on the same goroutine. Unused when profiling is off.
	lctx profiler.LaunchContext

	slots chan int    // free buffer slots (the double-buffer pool)
	mid   chan *batch // transfer-in → compute
	out   chan *batch // compute → transfer-out

	// memMu serializes operations that may grow a core's Mem (table
	// builds) against the transfer stages that read/write the
	// pre-touched I/O buffers concurrently with kernels.
	memMu sync.Mutex

	// Reliability state, allocated only when fault injection is on
	// (see reliability.go). rec is a throwaway recorder Ctx for
	// host-mirror degraded evaluation; ioEnd[k] marks the end of lane
	// k's pre-touched I/O region, so [ioEnd, MRAM.Used()) is the
	// resident-table region that golden/goldenSum scrub against.
	rec          *pimsim.Ctx
	ioEnd        []int
	goldenEnd    []int
	golden       [][]byte
	goldenSum    []uint64
	scratch      []byte
	lanesScratch []int
	launchIDs    []int
	chunkOf      []int  // local lane -> chunk index in the current launch
	failedLane   []bool // lanes that failed within the current batch
	deltas       []uint64
	medScratch   []uint64
}

// Engine is the serving runtime. Create with New, submit with
// EvaluateBatch (safe for concurrent use), and Close when done.
type Engine struct {
	cfg    Config
	sys    *pimsim.System
	shards []*shard
	cache  *tableCache
	// plans caches compiled batch plans per (spec, shard, size) so the
	// steady state skips table-cache locking and shard planning; see
	// plan.go. Invalidated lazily by the table cache's generation.
	plans *planCache
	// pplans caches fused-program execution plans per (program, shard,
	// size); see program.go. Pins the same table-cache generation.
	pplans *progPlanCache

	// bplan/splan are the pipeline's stage seams (see stages.go): the
	// batcher plans batches through bplan, the transfer stages plan
	// lane layouts through splan. New installs the defaults; they are
	// behavioral constants of a running engine, never swapped live.
	bplan BatchPlanner
	splan ShardPlanner

	submit   chan *request
	dispatch chan *batch

	mu     sync.RWMutex // guards closed / submit send
	closed bool
	wg     sync.WaitGroup

	tel    *telemetry.Telemetry // registry always present; Tracer nil unless TraceDepth > 0
	met    *metrics
	tracer *telemetry.Tracer // alias of tel.Tracer, nil when tracing is off

	// streamSig is the per-element streaming overhead of the kernel
	// loop (WRAM load + store + loop control), recorded once at
	// construction and bulk-charged by the batch fast path.
	streamSig pimsim.CostSig

	// Reliability subsystem, nil unless Config.Faults enables
	// injection. seq is the batcher-owned batch sequence counter — the
	// deterministic clock every injection decision keys on.
	inj    *faultsim.Injector
	rel    ReliabilityConfig
	health *HealthTracker
	seq    uint64

	// acc is the accuracy watcher, nil unless Config.Accuracy.Enabled
	// — the disabled serving path pays one nil check per request.
	// log is the structured event sink (nil = no logging).
	acc *accwatch.Watcher
	log *slog.Logger

	// led is the per-tenant cost ledger, nil unless Config.Ledger;
	// timeline is the windowed metrics store, nil unless enabled.
	led      *telemetry.Ledger
	timeline *telemetry.Timeline

	// prof is the modeled-cycle profiler's collector, nil unless
	// Config.Profiler.Enabled.
	prof *profiler.Collector
}

// New builds and starts an engine: the PIM system, the per-shard I/O
// buffers (pre-touched), the batcher, and the three pipeline stages
// per shard.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.DPUs%cfg.Shards != 0 {
		return nil, fmt.Errorf("engine: %d DPUs not divisible into %d shards", cfg.DPUs, cfg.Shards)
	}
	e := &Engine{
		cfg:      cfg,
		sys:      pimsim.NewSystem(pimsim.Config{DPUs: cfg.DPUs, Cost: cfg.Cost}),
		cache:    newTableCache(),
		plans:    newPlanCache(defaultPlanCacheLimit),
		pplans:   newProgPlanCache(defaultProgPlanLimit),
		bplan:    coalescePlanner{},
		splan:    paddedPlanner{},
		submit:   make(chan *request, cfg.QueueDepth),
		dispatch: make(chan *batch, cfg.Shards),
	}
	reg := telemetry.NewRegistry()
	e.met = newMetrics(reg, cfg.Shards)
	if cfg.TraceDepth > 0 {
		e.tracer = telemetry.NewTracer(cfg.TraceDepth)
	}
	e.tel = &telemetry.Telemetry{Registry: reg, Tracer: e.tracer}
	if cfg.Profiler.Enabled {
		e.prof = profiler.New(cfg.Profiler, cfg.DPUs)
		e.prof.Start()
		// Attribution gives reconciliation tests (and operators) the
		// simulator-side total that profile wall cycles must sum to.
		e.sys.SetCycleAttribution(true)
		srcName := cfg.ProcName
		if srcName == "" {
			srcName = "engine"
		}
		sources := func() []profiler.Source {
			return []profiler.Source{{Name: srcName, C: e.prof}}
		}
		e.tel.ProfileHandler = profiler.ProfileHandler(sources)
		e.tel.HeatmapHandler = profiler.HeatmapHandler(sources)
	}
	switch {
	case cfg.Profile && e.prof != nil:
		kp := newKernelProfiler(reg, cfg.DPUs)
		e.sys.SetLaunchObserver(func(prof pimsim.LaunchProfile) {
			kp.observe(prof)
			e.observeLaunch(prof)
		})
	case cfg.Profile:
		e.sys.SetLaunchObserver(newKernelProfiler(reg, cfg.DPUs).observe)
	case e.prof != nil:
		e.sys.SetLaunchObserver(e.observeLaunch)
	}
	// Record the per-element streaming overhead signature on a
	// throwaway core: one WRAM load, one WRAM store, and the loop
	// counter + branch the interpreted kernel charges per element.
	rec := pimsim.NewSigRecorder(cfg.Cost)
	rec.TakeSig()
	v := rec.LoadStreamedF32(rec.DPU().MRAM, 0)
	rec.StoreStreamedF32(rec.DPU().MRAM, 0, v)
	rec.Charge(2)
	e.streamSig = rec.TakeSig()

	e.log = cfg.Log
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		e.inj = faultsim.NewInjector(*cfg.Faults)
		e.rel = cfg.Reliability.withDefaults()
		e.health = NewHealthTracker(cfg.DPUs, e.rel)
		e.sys.SetFaultAgent(&engineFaultAgent{inj: e.inj, met: e.met})
	}
	if cfg.Accuracy.Enabled {
		e.acc = accwatch.New(cfg.Accuracy, reg, cfg.Log)
		e.tel.AccuracyJSON = func() any { return e.acc.Snapshot() }
	}
	if cfg.Ledger {
		e.led = telemetry.NewLedger(reg, 0)
		e.tel.LedgerJSON = func() any { return e.led.Snapshot() }
		// Attribution makes the simulator accumulate per-launch
		// closed-form cycles, the reconciliation target for the
		// ledger's cycle totals.
		e.sys.SetCycleAttribution(true)
	}
	if cfg.Timeline.Enabled {
		e.timeline = telemetry.NewTimeline(reg, cfg.Timeline)
		e.timeline.Start()
		e.tel.Timeline = e.timeline
	}

	perShard := cfg.DPUs / cfg.Shards
	capPerDPU := (cfg.MaxBatch + perShard - 1) / perShard
	zero := make([]byte, capPerDPU*4)
	for sID := 0; sID < cfg.Shards; sID++ {
		s := &shard{
			id:        sID,
			capPerDPU: capPerDPU,
			slots:     make(chan int, cfg.Buffers),
			mid:       make(chan *batch, 1),
			out:       make(chan *batch, 1),
			issue0:    make([]uint64, perShard),
			dma0:      make([]uint64, perShard),
		}
		for k := 0; k < perShard; k++ {
			id := sID*perShard + k
			s.ids = append(s.ids, id)
			s.dpus = append(s.dpus, e.sys.DPU(id))
			s.ys = append(s.ys, make([]float32, capPerDPU))
			sc := new(lut.Scratch)
			sc.Grow(capPerDPU)
			sc.GrowQ(capPerDPU)
			sc.GrowT(capPerDPU)
			s.arena = append(s.arena, sc)
		}
		s.inAddr = make([][]int, cfg.Buffers)
		s.outAddr = make([][]int, cfg.Buffers)
		s.inBuf = make([][]float32, cfg.Buffers)
		s.outBuf = make([][]float32, cfg.Buffers)
		for slot := 0; slot < cfg.Buffers; slot++ {
			s.inAddr[slot] = make([]int, perShard)
			s.outAddr[slot] = make([]int, perShard)
			s.inBuf[slot] = make([]float32, capPerDPU*perShard)
			s.outBuf[slot] = make([]float32, capPerDPU*perShard)
			for k, d := range s.dpus {
				s.inAddr[slot][k] = d.MRAM.MustAlloc(capPerDPU * 4)
				s.outAddr[slot][k] = d.MRAM.MustAlloc(capPerDPU * 4)
				// Pre-touch so the backing store never grows while
				// stages overlap (the pimsim ownership discipline).
				d.MRAM.Write(s.inAddr[slot][k], zero)
				d.MRAM.Write(s.outAddr[slot][k], zero)
			}
			s.slots <- slot
		}
		if e.inj != nil {
			s.rec = pimsim.NewSigRecorder(cfg.Cost)
			s.ioEnd = make([]int, perShard)
			s.goldenEnd = make([]int, perShard)
			s.golden = make([][]byte, perShard)
			s.goldenSum = make([]uint64, perShard)
			s.lanesScratch = make([]int, 0, perShard)
			s.launchIDs = make([]int, 0, perShard)
			s.chunkOf = make([]int, perShard)
			s.failedLane = make([]bool, perShard)
			s.deltas = make([]uint64, perShard)
			s.medScratch = make([]uint64, 0, perShard)
			for k, d := range s.dpus {
				// Everything below this brk is the pre-touched I/O
				// region; tables built later live above it.
				s.ioEnd[k] = d.MRAM.Used()
				s.goldenEnd[k] = s.ioEnd[k]
			}
		}
		e.shards = append(e.shards, s)
	}
	e.wg.Add(1)
	go e.batcher()
	for _, s := range e.shards {
		e.wg.Add(3)
		go e.stageTransferIn(s)
		go e.stageCompute(s)
		go e.stageTransferOut(s)
	}
	return e, nil
}

// System exposes the underlying simulated PIM system (for inspection;
// do not launch kernels on it while the engine is serving).
func (e *Engine) System() *pimsim.System { return e.sys }

// Stats returns a snapshot of the engine-wide counters. Individual
// fields are read atomically; the struct is not a consistent cut
// under concurrent traffic.
func (e *Engine) Stats() Stats {
	s := e.met.snapshot()
	s.QueueDepth = len(e.submit)
	return s
}

// QueueDepth returns the current coalescing-batcher backlog: requests
// accepted but not yet pulled into a batching round. It is the load
// signal the cluster router's least-loaded placement reads.
func (e *Engine) QueueDepth() int { return len(e.submit) }

// Observe returns the engine's telemetry handle: the metrics registry
// behind Stats and /metrics, plus the request tracer when TraceDepth
// is set. The handle is valid for the engine's lifetime.
func (e *Engine) Observe() *telemetry.Telemetry { return e.tel }

// TraceLast returns the span tree of the most recently completed
// request, or false when tracing is disabled or nothing has completed.
func (e *Engine) TraceLast() (*telemetry.Trace, bool) { return e.tracer.Last() }

// Traces returns the retained request traces, oldest first (nil when
// tracing is disabled).
func (e *Engine) Traces() []*telemetry.Trace { return e.tracer.Traces() }

// CachedSpecs returns how many (function, method) configurations hold
// resident tables.
func (e *Engine) CachedSpecs() int { return e.cache.size() }

// CachedPlans returns how many compiled batch plans are live.
func (e *Engine) CachedPlans() int { return e.plans.size() }

// InvalidateTables drops the resident tables for one configuration —
// the hot-swap hook for regenerating a function's tables (say, after
// retuning its fit). The next request for the spec rebuilds; every
// compiled batch plan self-invalidates via the bumped table-cache
// generation, so in-flight batches finish on the old tables (which
// physically remain — PIM memories never free) and no pipeline stage
// is paused. Returns whether tables were resident. Safe for
// concurrent use with serving traffic.
func (e *Engine) InvalidateTables(fn core.Function, p core.Params) bool {
	ok := e.cache.invalidate(makeSpec(fn, p))
	e.met.cachedSpecs.Set(int64(e.cache.size()))
	return ok
}

// Accuracy returns a point-in-time snapshot of the accuracy watcher's
// shadow-sample statistics; ok is false when accuracy monitoring is
// disabled (Config.Accuracy.Enabled false).
func (e *Engine) Accuracy() (accwatch.Snapshot, bool) {
	if e.acc == nil {
		return accwatch.Snapshot{}, false
	}
	return e.acc.Snapshot(), true
}

// AccuracyViolations evaluates the configured accuracy SLOs against
// the cumulative shadow-sample statistics and returns the failures
// (nil when monitoring is disabled or every series is within bounds).
// This is the batch-gate check: unlike the rolling-window breach
// counter it judges the whole session, so CI can fail a run whose
// final error exceeds the bounds even if no single window tripped.
func (e *Engine) AccuracyViolations() []accwatch.Violation {
	if e.acc == nil {
		return nil
	}
	return e.acc.CheckSLOs()
}

// EvaluateBatch evaluates fn(x) for every x under the given method
// parameters and returns the outputs with the request's cost report.
// It blocks until the result is complete (internally the work is
// batched, sharded and pipelined with concurrent callers). Safe for
// concurrent use.
func (e *Engine) EvaluateBatch(fn core.Function, p core.Params, xs []float32) ([]float32, RequestStats, error) {
	return e.EvaluateBatchTenant("", fn, p, xs)
}

// EvaluateBatchTenant is EvaluateBatch with a tenant tag: the
// accuracy watcher attributes the request's shadow samples to the
// (function, method, tenant) series, so per-client quality is
// separable in /debug/accuracy. The tag does not affect batching,
// coalescing, or results; an empty tenant is the anonymous series.
func (e *Engine) EvaluateBatchTenant(tenant string, fn core.Function, p core.Params, xs []float32) ([]float32, RequestStats, error) {
	out, st, _, err := e.evaluate(tenant, 0, false, fn, p, xs)
	return out, st, err
}

// EvaluateBatchTraced is EvaluateBatchTenant with an externally minted
// trace identity: the request's span tree takes traceID instead of an
// engine-local one, and the assembled trace is returned to the caller
// (in addition to the engine's own trace ring) so a router can graft
// it under its placement spans — one connected trace across layers.
// With tracing disabled (TraceDepth 0) the returned trace is nil and
// the call behaves exactly like EvaluateBatchTenant.
func (e *Engine) EvaluateBatchTraced(tenant string, traceID uint64, fn core.Function, p core.Params, xs []float32) ([]float32, RequestStats, *telemetry.Trace, error) {
	return e.evaluate(tenant, traceID, true, fn, p, xs)
}

// evaluate is the shared submit path behind the EvaluateBatch
// variants. extID, when nonzero, overrides the trace ring's minted ID;
// wantTrace asks finishRequest to hand the assembled span tree back on
// the request.
func (e *Engine) evaluate(tenant string, extID uint64, wantTrace bool, fn core.Function, p core.Params, xs []float32) ([]float32, RequestStats, *telemetry.Trace, error) {
	spec := makeSpec(fn, p)
	if !spec.Par.Method.Supports(fn) {
		return nil, RequestStats{}, nil, fmt.Errorf("engine: %v does not support %v (see Table 2)", spec.Par.Method, fn)
	}
	if len(xs) == 0 {
		return nil, RequestStats{}, nil, nil
	}
	r := &request{
		spec:      spec,
		tenant:    tenant,
		inputs:    xs,
		outputs:   make([]float32, len(xs)),
		extID:     extID,
		wantTrace: wantTrace,
		enqueued:  time.Now(),
		done:      make(chan struct{}),
	}
	r.stats.CacheHit = true // cleared by the first miss

	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, RequestStats{}, nil, ErrEngineClosed
	}
	e.met.requests.Inc()
	e.submit <- r
	e.met.queueDepth.Set(int64(len(e.submit)))
	e.mu.RUnlock()

	<-r.done
	return r.outputs, r.stats, r.trace, r.err
}

// Close drains in-flight work and stops the pipeline. Subsequent
// EvaluateBatch calls fail.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.submit)
	e.mu.Unlock()
	e.wg.Wait()
	e.timeline.Close()
	e.prof.Close()
}

// batcher collects queued requests, groups them by spec, and emits
// packed batches. One round: take the first request (blocking), then
// coalesce whatever else is immediately queued — plus whatever
// arrives within BatchWindow, when configured — and flush.
func (e *Engine) batcher() {
	defer e.wg.Done()
	defer close(e.dispatch)
	// The round-grouping map and its per-spec request slices persist
	// across rounds (reset in place, requests nil'd so completed work
	// isn't retained): a steady-state round allocates nothing.
	bySpec := make(map[Spec][]*request)
	var order []Spec
	// Program requests are never coalesced or split: one batch carries
	// the whole program so its intermediates stay device-resident.
	var progs []*request
	add := func(r *request) {
		if r.prog != nil {
			progs = append(progs, r)
			return
		}
		lst := bySpec[r.spec]
		if len(lst) == 0 {
			order = append(order, r.spec)
		}
		bySpec[r.spec] = append(lst, r)
	}
	for {
		r, ok := <-e.submit
		if !ok {
			return
		}
		for _, sp := range order {
			lst := bySpec[sp]
			for i := range lst {
				lst[i] = nil
			}
			bySpec[sp] = lst[:0]
		}
		order = order[:0]
		for i := range progs {
			progs[i] = nil
		}
		progs = progs[:0]
		add(r)
		closed := false
		if e.cfg.BatchWindow > 0 {
			timer := time.NewTimer(e.cfg.BatchWindow)
		window:
			for {
				select {
				case r2, ok := <-e.submit:
					if !ok {
						closed = true
						break window
					}
					add(r2)
				case <-timer.C:
					break window
				}
			}
			timer.Stop()
		}
	drain:
		for {
			select {
			case r2, ok := <-e.submit:
				if !ok {
					closed = true
					break drain
				}
				add(r2)
			default:
				break drain
			}
		}
		e.met.queueDepth.Set(int64(len(e.submit)))
		for _, spec := range order {
			for _, b := range e.bplan.Plan(spec, bySpec[spec], e.cfg.MaxBatch) {
				e.seq++
				b.seq = e.seq
				if e.tracer != nil {
					b.tr = &batchTrace{}
				}
				e.dispatch <- b
			}
		}
		for _, pr := range progs {
			b := newBatch(Spec{})
			b.prog = pr.prog
			n := len(pr.pinputs[0])
			b.segs = append(b.segs, seg{req: pr, off: 0, n: n})
			b.n = n
			pr.mu.Lock()
			pr.remaining++
			pr.mu.Unlock()
			e.seq++
			b.seq = e.seq
			if e.tracer != nil {
				b.tr = &batchTrace{}
			}
			e.dispatch <- b
		}
		if closed {
			return
		}
	}
}

// stageTransferIn is a shard's first pipeline stage: claim a buffer
// slot (blocking until the drain stage recycles one — the
// double-buffer backpressure), pack the batch's segments into the
// slot's flat staging buffer with contiguous copies, push each core's
// chunk to MRAM in one typed bulk write, and charge the rank-parallel
// host→PIM transfer. It overlaps with the compute stage working on the
// previous batch in another slot.
func (e *Engine) stageTransferIn(s *shard) {
	defer e.wg.Done()
	defer close(s.mid)
	for b := range e.dispatch {
		b.slot = <-s.slots
		if b.tr != nil {
			b.tr.shard = s.id
			b.tr.inStart = time.Now()
		}
		if b.prog != nil {
			e.stageProgramIn(s, b)
			if b.tr != nil {
				b.tr.inEnd = time.Now()
			}
			s.mid <- b
			continue
		}
		var per, padded int
		if e.inj == nil {
			b.plan = e.plans.lookup(planKey{spec: b.spec, shard: s.id, n: b.n}, e.cache.generation())
			if b.plan != nil {
				e.met.planHits.Inc()
			} else {
				e.met.planMisses.Inc()
			}
		}
		if b.plan != nil {
			per, padded = b.plan.perDPU, b.plan.padded
			// A fast plan licenses host-side staging: the fused kernels
			// read and write host memory while the simulator charges the
			// exact same DMA/transfer costs, so the MRAM round-trip (and
			// for single-segment batches, the pack copy too) is elided.
			b.direct = b.plan.fast && len(b.segs) == 1
			b.hostOut = b.plan.fast && !b.direct
		} else {
			per, padded = e.splan.Plan(b.n, len(s.dpus))
		}
		b.perDPU = per

		if !b.direct {
			flat := s.inBuf[b.slot]
			idx := 0
			for _, sg := range b.segs {
				copy(flat[idx:idx+sg.n], sg.req.inputs[sg.off:sg.off+sg.n])
				idx += sg.n
			}
			if !b.hostOut {
				s.memMu.Lock()
				for d := range s.dpus {
					lo := d * per
					if lo >= b.n {
						break
					}
					hi := lo + per
					if hi > b.n {
						hi = b.n
					}
					s.dpus[d].MRAM.WriteF32s(s.inAddr[b.slot][d], flat[lo:hi])
				}
				s.memMu.Unlock()
			}
		}

		if e.inj != nil {
			e.chargeTransferIn(s, b, padded)
		} else {
			e.sys.ChargeHostToPIM(padded, true)
			b.tin = float64(padded) / e.sys.Config().HostToPIMBandwidth
		}
		if b.tr != nil {
			b.tr.inEnd = time.Now()
		}
		s.mid <- b
	}
}

// stageCompute is a shard's second stage: ensure the spec's tables
// are resident (the cache hit/miss point), then launch the streaming
// kernel on the shard's cores and account its cycles.
func (e *Engine) stageCompute(s *shard) {
	defer e.wg.Done()
	defer close(s.out)
	for b := range s.mid {
		if b.prog != nil {
			e.computeProgram(s, b)
			s.out <- b
			continue
		}
		if e.inj != nil {
			e.computeShardFaulty(s, b)
			s.out <- b
			continue
		}
		if b.tr != nil {
			b.tr.setupStart = time.Now()
		}
		var ops []*core.Operator
		if b.plan != nil {
			// A plan hit proves the tables were resident when the plan
			// was compiled and the generation hasn't moved since: no
			// table-cache lock, no shard planning, no setup charge.
			ops = b.plan.ops
			b.hit, b.setup = true, 0
		} else {
			gen := e.cache.generation()
			resolved, hit, setup, err := e.cache.ensure(b.spec, s)
			e.met.cachedSpecs.Set(int64(e.cache.size()))
			if err != nil {
				if b.tr != nil {
					b.tr.setupEnd = time.Now()
				}
				b.err = err
				s.out <- b
				continue
			}
			ops = resolved
			b.hit, b.setup = hit, setup
			// Compile the batch plan for this shape. The generation was
			// read before ensure: a hot-swap racing the build leaves the
			// plan stale, and the next lookup recompiles it.
			per, padded := e.splan.Plan(b.n, len(s.dpus))
			evicted := e.plans.store(planKey{spec: b.spec, shard: s.id, n: b.n}, &batchPlan{
				ops:    ops,
				fast:   !e.cfg.Reference && len(ops) > 0 && ops[0].HasFastPath(),
				perDPU: per,
				padded: padded,
				gen:    gen,
			})
			if evicted > 0 {
				e.met.planEvictions.Add(uint64(evicted))
			}
		}
		if b.tr != nil {
			b.tr.setupEnd = time.Now()
		}

		if b.tr != nil {
			b.tr.kernStart = time.Now()
		}
		for i, d := range s.dpus {
			s.issue0[i] = d.IssueCycles()
			s.dma0[i] = d.DMACycles()
		}
		per := b.perDPU
		base := s.ids[0]
		if e.prof != nil {
			e.profContext(s, b, "kernel")
		}
		b.err = e.sys.LaunchShard(s.ids, func(ctx *pimsim.Ctx, id int) error {
			local := id - base
			count := b.n - local*per
			if count > per {
				count = per
			}
			if count <= 0 {
				return nil
			}
			e.computeCore(ctx, s, b, ops[local], local, count)
			return nil
		})
		var mx uint64
		for i, d := range s.dpus {
			c := pimsim.ClosedFormCycles(d.IssueCycles()-s.issue0[i], d.DMACycles()-s.dma0[i], d.Tasklets())
			if c > mx {
				mx = c
			}
		}
		b.cycles = mx
		b.tcomp = float64(mx) / e.sys.Config().ClockHz
		if b.tr != nil {
			b.tr.kernEnd = time.Now()
		}
		s.out <- b
	}
}

// computeCore runs one core's share of a batch: the streamed kernel of
// Fig. 3(a) — input DMA, per-element evaluation, output DMA. With the
// operator's batch fast path it evaluates the staged inputs through
// the fused mirror, bulk-charges the per-element streaming overhead,
// and stores the results with one typed bulk write; accounting is
// bit-identical to the per-element interpreted loop (Config.Reference
// forces the latter). Allocation-free in steady state.
func (e *Engine) computeCore(ctx *pimsim.Ctx, s *shard, b *batch, op *core.Operator, local, count int) {
	if b.direct || b.hostOut {
		e.computeCoreHost(ctx, s, b, op, local, count)
		return
	}
	e.computeCoreAt(ctx, s, b, op, local, local, b.perDPU, count)
}

// computeCoreHost is the compiled-plan staging path: the fused mirror
// reads and writes host memory — the request's own slices for a direct
// batch, the slot's flat staging buffers for a coalesced one — while
// every modeled charge of computeCoreAt's fast branch is replayed
// verbatim (loop setup, input DMA, per-class kernel signatures,
// streaming overhead, output DMA), so cycle accounting stays
// bit-identical to the MRAM round-trip it elides. Lanes own disjoint
// [lo, lo+count) windows, so concurrent cores never overlap.
func (e *Engine) computeCoreHost(ctx *pimsim.Ctx, s *shard, b *batch, op *core.Operator, local, count int) {
	lo := local * b.perDPU
	var xs, ys []float32
	if b.direct {
		sg := b.segs[0]
		xs = sg.req.inputs[sg.off+lo : sg.off+lo+count]
		ys = sg.req.outputs[sg.off+lo : sg.off+lo+count]
	} else {
		xs = s.inBuf[b.slot][lo : lo+count]
		ys = s.outBuf[b.slot][lo : lo+count]
	}
	ctx.Charge(4)
	ctx.ChargeDMA(count * 4)
	op.EvalBatchWith(ctx, xs, ys, s.arena[local])
	ctx.ChargeSig(&e.streamSig, uint64(count))
	ctx.ChargeDMA(count * 4)
}

// gatherOutputs reads a drained batch's results back into its
// requests' output slices: one typed bulk read per core into the
// slot's flat staging buffer, then contiguous copies out to the
// segments.
func (s *shard) gatherOutputs(b *batch) {
	if b.direct {
		// The compiled-plan direct path wrote straight into the
		// request's output slice; nothing to gather.
		return
	}
	per := b.perDPU
	flat := s.outBuf[b.slot]
	switch {
	case b.hostEval || b.hostOut:
		// Host-side results — the degraded mirror's, or the
		// compiled-plan host staging path's — are already in the
		// staging buffer; there is nothing to read back from MRAM.
	case b.remapped:
		// Remapped: chunk j lives on healthy lane b.lanes[j].
		s.memMu.Lock()
		for j, k := range b.lanes {
			lo := j * per
			if lo >= b.n {
				break
			}
			hi := lo + per
			if hi > b.n {
				hi = b.n
			}
			s.dpus[k].MRAM.ReadF32s(s.outAddr[b.slot][k], flat[lo:hi])
		}
		s.memMu.Unlock()
	default:
		s.memMu.Lock()
		for d := range s.dpus {
			lo := d * per
			if lo >= b.n {
				break
			}
			hi := lo + per
			if hi > b.n {
				hi = b.n
			}
			s.dpus[d].MRAM.ReadF32s(s.outAddr[b.slot][d], flat[lo:hi])
		}
		s.memMu.Unlock()
	}
	idx := 0
	for _, sg := range b.segs {
		copy(sg.req.outputs[sg.off:sg.off+sg.n], flat[idx:idx+sg.n])
		idx += sg.n
	}
}

// stageTransferOut is a shard's third stage: gather results, charge
// the PIM→host transfer, recycle the buffer slot, and complete the
// batch's requests.
func (e *Engine) stageTransferOut(s *shard) {
	defer e.wg.Done()
	for b := range s.out {
		if b.tr != nil {
			b.tr.outStart = time.Now()
		}
		var bytesIn, bytesOut int
		switch {
		case b.prog != nil:
			// Program outputs are already in the request's slices (host
			// staging); only the result transfer remains to charge.
			bytesIn, bytesOut = e.drainProgramOut(s, b)
		case b.err == nil:
			s.gatherOutputs(b)
			var padded int
			if b.plan != nil {
				padded = b.plan.padded
			} else {
				_, padded = e.splan.Plan(b.n, len(s.dpus))
			}
			bytesIn = padded
			switch {
			case b.hostEval:
				// Degraded results come from host memory: nothing to
				// transfer back from the cores.
			case e.inj != nil:
				if b.remapped {
					padded = b.perDPU * 4 * len(b.lanes)
				}
				e.chargeTransferOut(s, b, padded)
				bytesOut = padded
			default:
				e.sys.ChargePIMToHost(padded, true)
				b.tout = float64(padded) / e.sys.Config().PIMToHostBandwidth
				bytesOut = padded
			}
		}
		if b.tr != nil {
			b.tr.outEnd = time.Now()
		}
		s.slots <- b.slot
		e.met.addBatch(b, s.id, bytesIn, bytesOut)
		if e.led != nil {
			e.chargeLedger(b, bytesIn, bytesOut)
		}
		for _, sg := range b.segs {
			if sg.req.complete(b, s.id) {
				e.finishRequest(sg.req)
			}
		}
		releaseBatch(b)
	}
}

// finishRequest runs on the drain stage after a request's last
// segment completed and before its caller is released: observe the
// latency, count request-level errors (the per-request view the batch
// counter can't give), shadow-sample the outputs for accuracy
// monitoring, assemble and publish the trace, then close done. The
// request is quiescent here — every other stage is finished with it
// and the caller is still parked on done — so the reads and the
// TraceID write need no lock.
func (e *Engine) finishRequest(r *request) {
	end := time.Now()
	e.met.latency.Observe(r.stats.Latency.Seconds())
	if r.err != nil {
		e.met.requestErrors.Inc()
	}
	var traceID uint64
	if e.tracer != nil {
		if r.extID != 0 {
			traceID = r.extID // propagated from the router's mint
		} else {
			traceID = e.tracer.NextID()
		}
		r.stats.TraceID = traceID
	}
	if e.led != nil {
		d := telemetry.LedgerEntry{Requests: 1}
		if r.stats.Degraded {
			d.Degraded = 1
		}
		key := telemetry.LedgerKey{
			Tenant:   r.tenant,
			Function: r.spec.Fn.String(),
			Method:   methodLabel(r.spec.Par),
		}
		if r.prog != nil {
			key.Function, key.Method = "program", "fused:"+r.prog.Name()
		}
		e.led.Add(key, d)
	}
	// The shadow sampler compares outputs[i] against fn(inputs[i]); a
	// fused program's output is a whole-graph composite with no single
	// reference function, so programs skip accuracy sampling.
	if e.acc != nil && r.err == nil && r.prog == nil {
		// The shadow sampler only reads inputs/outputs; it never
		// touches the pipeline, so modeled cycles and outputs are
		// untouched whether it runs or not.
		lo, hi := r.spec.Fn.Domain()
		out := e.acc.Sample(accwatch.Request{
			Key: accwatch.Key{
				Function: r.spec.Fn.String(),
				Method:   methodLabel(r.spec.Par),
				Tenant:   r.tenant,
			},
			Ref: r.spec.Fn.Ref(),
			Lo:  lo, Hi: hi,
			Shard:   r.stats.ShardID,
			TraceID: traceID,
		}, r.inputs, r.outputs)
		r.sloBreached = out.Breached
	}
	if e.tracer != nil {
		tr := buildTrace(r, traceID, end, e.cfg.ProcName)
		if r.wantTrace {
			r.trace = tr
		}
		e.tracer.Push(tr)
	}
	close(r.done)
}

// methodLabel renders a request's method the way tplaccuracy labels
// it — "l-lut(i)" for the interpolated variant — so online series and
// offline reports key identically.
func methodLabel(p core.Params) string {
	if p.Interp {
		return p.Method.String() + "(i)"
	}
	return p.Method.String()
}
