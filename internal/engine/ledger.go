package engine

import (
	"transpimlib/internal/core"
	"transpimlib/internal/telemetry"
)

// MethodLabel renders method parameters the way tplaccuracy labels
// them — "l-lut(i)" for the interpolated variant — so cost-ledger rows,
// online accuracy series and offline reports all key identically.
func MethodLabel(p core.Params) string { return methodLabel(p) }

// Ledger returns a snapshot of the per-tenant cost ledger; empty when
// Config.Ledger is off.
func (e *Engine) Ledger() telemetry.LedgerSnapshot { return e.led.Snapshot() }

// chargeLedger attributes one drained batch to the (tenant, function,
// method) rows of the requests it carried. Integer quantities — kernel
// cycles and transfer bytes, charged per batch at its slowest-lane
// granularity — are split across segments by exact prefix
// partitioning: segment i takes total·cum_i/n − total·cum_{i−1}/n,
// so the shares always sum to the batch total and the ledger's cycle
// column reconciles ±0 against the simulator's attributed cycles.
// Runs on the drain-stage goroutine, where every batch field is
// quiescent.
func (e *Engine) chargeLedger(b *batch, bytesIn, bytesOut int) {
	fn := b.spec.Fn.String()
	method := methodLabel(b.spec.Par)
	if b.prog != nil {
		// Fused programs get their own method-label convention so their
		// rows don't collapse into tpltop's overflow bucket: the
		// function column reads "program" and the method column carries
		// the program's name.
		fn, method = "program", "fused:"+b.prog.Name()
	}
	n := uint64(b.n)
	modeled := b.setup + b.tin + b.tcomp + b.tout
	var cum, cycPrev, binPrev, boutPrev uint64
	for _, sg := range b.segs {
		cum += uint64(sg.n)
		cyc := b.cycles * cum / n
		bin := uint64(bytesIn) * cum / n
		bout := uint64(bytesOut) * cum / n
		e.led.Add(telemetry.LedgerKey{
			Tenant:   sg.req.tenant,
			Function: fn,
			Method:   method,
		}, telemetry.LedgerEntry{
			Elements:       uint64(sg.n),
			KernelCycles:   cyc - cycPrev,
			BytesIn:        bin - binPrev,
			BytesOut:       bout - boutPrev,
			ModeledSeconds: modeled * float64(sg.n) / float64(b.n),
		})
		cycPrev, binPrev, boutPrev = cyc, bin, bout
	}
}
