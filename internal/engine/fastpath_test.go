package engine

import (
	"math"
	"testing"

	"transpimlib/internal/core"
	"transpimlib/internal/stats"
)

// TestFastPathMatchesReference runs identical request streams through
// a fast-path engine and a Reference engine and demands bit-identical
// outputs and identical modeled cycle accounting — the engine-level
// face of the operator differential tests.
func TestFastPathMatchesReference(t *testing.T) {
	specs := []struct {
		fn  core.Function
		par core.Params
		lo  float64
		hi  float64
	}{
		{core.Sigmoid, core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}, -7.9, 7.9},
		{core.Sin, core.Params{Method: core.CORDIC}, 0, 2 * math.Pi},
		{core.Exp, core.Params{Method: core.MLUT, Interp: true, SizeLog2: 10}, -10, 10},
		{core.Tanh, core.Params{Method: core.Poly}, -7.9, 7.9},
	}
	cfg := Config{DPUs: 4, Shards: 1, MaxBatch: 256}
	fast, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	refCfg := cfg
	refCfg.Reference = true
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for _, sp := range specs {
		xs := stats.RandomInputs(sp.lo, sp.hi, 300, 11)
		fOut, fSt, err := fast.EvaluateBatch(sp.fn, sp.par, xs)
		if err != nil {
			t.Fatalf("%v/%v fast: %v", sp.fn, sp.par.Method, err)
		}
		rOut, rSt, err := ref.EvaluateBatch(sp.fn, sp.par, xs)
		if err != nil {
			t.Fatalf("%v/%v reference: %v", sp.fn, sp.par.Method, err)
		}
		for i := range xs {
			if math.Float32bits(fOut[i]) != math.Float32bits(rOut[i]) {
				t.Fatalf("%v/%v output %d: fast %v != reference %v (x=%v)",
					sp.fn, sp.par.Method, i, fOut[i], rOut[i], xs[i])
			}
		}
		if fSt.KernelCycles != rSt.KernelCycles {
			t.Fatalf("%v/%v kernel cycles: fast %d != reference %d",
				sp.fn, sp.par.Method, fSt.KernelCycles, rSt.KernelCycles)
		}
	}

	fs, rs := fast.Stats(), ref.Stats()
	if fs.KernelCycles != rs.KernelCycles {
		t.Fatalf("engine-wide kernel cycles: fast %d != reference %d", fs.KernelCycles, rs.KernelCycles)
	}
}

// TestComputeCoreZeroAlloc pins the zero-allocation contract of the
// compute stage: once the engine is warm (tables resident, staging and
// scratch buffers constructed), evaluating a core's share of a batch
// through the fast path allocates nothing.
func TestComputeCoreZeroAlloc(t *testing.T) {
	e, err := New(Config{DPUs: 1, Shards: 1, MaxBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	xs := stats.RandomInputs(-7.9, 7.9, 256, 3)
	if _, _, err := e.EvaluateBatch(fn, par, xs); err != nil {
		t.Fatal(err) // warm: tables built, pools primed
	}

	s := e.shards[0]
	ops, hit, _, err := e.cache.ensure(makeSpec(fn, par), s)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warmup did not populate the table cache")
	}
	op := ops[0]
	if !op.HasFastPath() {
		t.Fatal("LLUT operator has no batch fast path")
	}

	// The pipeline is idle (the warmup request completed), so driving
	// slot 0 directly is safe.
	b := &batch{spec: makeSpec(fn, par), n: 256, perDPU: 256, slot: 0}
	copy(s.inBuf[0][:256], xs)
	s.dpus[0].MRAM.WriteF32s(s.inAddr[0][0], s.inBuf[0][:256])
	ctx := s.dpus[0].NewCtx()

	if avg := testing.AllocsPerRun(200, func() {
		e.computeCore(ctx, s, b, op, 0, 256)
	}); avg != 0 {
		t.Fatalf("computeCore allocates %.1f objects per batch, want 0", avg)
	}
}
