package engine

import (
	"sync"
	"sync/atomic"

	"transpimlib/internal/core"
)

// Spec identifies one cacheable configuration: a function compiled
// with normalized method parameters. It is the setup-cache key — two
// requests with the same Spec share tables, so only the first pays the
// Fig.-6 setup cost.
type Spec struct {
	Fn  core.Function
	Par core.Params
}

func makeSpec(fn core.Function, p core.Params) Spec {
	return Spec{Fn: fn, Par: p.Normalized()}
}

// tableCache memoizes operator sets per (Spec, shard). Tables must
// physically exist in each serving core's memory, so residency is
// tracked per shard; the host-side generation artifact is shared —
// the first shard pays generation + broadcast, later shards broadcast
// only. Entries are never evicted: PIM memories use a bump allocator
// (there is no free), so eviction could not reclaim the bank anyway.
// When a build outgrows the selected memory the error is reported to
// the requests that needed it.
type tableCache struct {
	mu      sync.Mutex
	entries map[Spec]*cacheEntry

	// gen counts invalidations. Compiled batch plans (plan.go) pin the
	// generation they were built against and self-invalidate when it
	// moves, so a table hot-swap needs no plan-cache walk.
	gen atomic.Uint64
}

type cacheEntry struct {
	mu        sync.Mutex
	generated bool // host-side table generation has run once
	shardOps  map[int][]*core.Operator
}

func newTableCache() *tableCache {
	return &tableCache{entries: make(map[Spec]*cacheEntry)}
}

// ensure returns the spec's operators for the shard, building them if
// absent. hit reports whether the tables were already resident;
// setupSeconds is the modeled setup charged by this call (generation
// plus broadcast on the first build, broadcast only for an extra
// shard, zero on a hit).
//
// ensure is called from a shard's compute stage, which owns the
// shard's cores, so loading tables into their memories is safe. The
// entry lock is held across the build: concurrent requests for the
// same spec on other shards wait for the generation artifact instead
// of regenerating it.
func (c *tableCache) ensure(spec Spec, s *shard) (ops []*core.Operator, hit bool, setupSeconds float64, err error) {
	c.mu.Lock()
	e, ok := c.entries[spec]
	if !ok {
		e = &cacheEntry{shardOps: make(map[int][]*core.Operator)}
		c.entries[spec] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if ops, ok := e.shardOps[s.id]; ok {
		return ops, true, 0, nil
	}
	// Building loads tables into the shard's core memories, which may
	// grow their backing stores: exclude the shard's overlapped
	// transfer stages for the duration (the pimsim discipline).
	s.memMu.Lock()
	set, err := core.BuildSet(spec.Fn, spec.Par, s.dpus)
	s.memMu.Unlock()
	if err != nil {
		return nil, false, 0, err
	}
	ops = make([]*core.Operator, set.Len())
	for i := range ops {
		ops[i] = set.Op(i)
	}
	e.shardOps[s.id] = ops
	if e.generated {
		setupSeconds = set.TransferSeconds() // artifact reused: broadcast only
	} else {
		setupSeconds = set.SetupSeconds()
		e.generated = true
	}
	return ops, false, setupSeconds, nil
}

// size returns the number of cached specs.
func (c *tableCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// generation returns the invalidation counter compiled plans pin.
func (c *tableCache) generation() uint64 { return c.gen.Load() }

// invalidate drops the spec's residency bookkeeping and bumps the
// generation, lazily invalidating every compiled plan. The old tables
// physically stay in the PIM memories (bump allocator, no free), so
// in-flight batches holding the old operators finish safely; the next
// request for the spec rebuilds fresh tables above them. Returns
// whether tables were resident.
func (c *tableCache) invalidate(spec Spec) bool {
	c.mu.Lock()
	_, ok := c.entries[spec]
	delete(c.entries, spec)
	c.mu.Unlock()
	if ok {
		c.gen.Add(1)
	}
	return ok
}
