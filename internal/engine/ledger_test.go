package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/stats"
	"transpimlib/internal/telemetry"
)

// TestLedgerReconcilesCycles: with the ledger on, the sum of the
// ledger's per-row kernel cycles must equal — exactly, ±0 — both the
// engine's batch-counter cycle total and the simulator's attributed
// cycles, across a multi-tenant mixed workload with coalescing and
// splitting in play.
func TestLedgerReconcilesCycles(t *testing.T) {
	e, err := New(Config{DPUs: 4, Shards: 2, MaxBatch: 128, Ledger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	fnA, parA := llutSpec()
	parB := core.Params{Method: core.CORDIC, Iterations: 20}
	tenants := []string{"acme", "globex", ""}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 8; i++ {
				n := 1 + rng.Intn(300) // some requests split, some coalesce
				xs := stats.RandomInputs(-3, 3, n, uint64(w*100+i))
				var err error
				if w%2 == 0 {
					_, _, err = e.EvaluateBatchTenant(tenants[w%3], fnA, parA, xs)
				} else {
					_, _, err = e.EvaluateBatchTenant(tenants[w%3], core.Sin, parB, xs)
				}
				if err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	snap := e.Ledger()
	if len(snap.Rows) == 0 {
		t.Fatal("ledger is empty after traffic")
	}
	var ledCycles, ledElems, ledIn, ledOut, ledReqs uint64
	for _, r := range snap.Rows {
		ledCycles += r.KernelCycles
		ledElems += r.Elements
		ledIn += r.BytesIn
		ledOut += r.BytesOut
		ledReqs += r.Requests
	}
	st := e.Stats()
	if ledCycles != st.KernelCycles {
		t.Errorf("ledger cycles %d != engine cycles %d", ledCycles, st.KernelCycles)
	}
	if got := e.System().AttributedKernelCycles(); ledCycles != got {
		t.Errorf("ledger cycles %d != simulator attributed cycles %d", ledCycles, got)
	}
	if ledElems != st.Elements {
		t.Errorf("ledger elements %d != engine elements %d", ledElems, st.Elements)
	}
	if ledIn != st.BytesIn || ledOut != st.BytesOut {
		t.Errorf("ledger bytes (%d,%d) != engine bytes (%d,%d)", ledIn, ledOut, st.BytesIn, st.BytesOut)
	}
	if ledReqs != st.Requests {
		t.Errorf("ledger requests %d != engine requests %d", ledReqs, st.Requests)
	}
}

// TestLedgerPartitionExact drives two tenants through one coalesced
// batch and checks the prefix partition: per-row shares sum to the
// batch totals with no element lost to rounding.
func TestLedgerPartitionExact(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 4096, BatchWindow: 20 * time.Millisecond, Ledger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()

	var wg sync.WaitGroup
	for _, tn := range []struct {
		tenant string
		n      int
	}{{"a", 7}, {"b", 13}, {"a", 29}} {
		wg.Add(1)
		go func(tenant string, n int) {
			defer wg.Done()
			xs := stats.RandomInputs(-3, 3, n, uint64(n))
			if _, _, err := e.EvaluateBatchTenant(tenant, fn, par, xs); err != nil {
				t.Error(err)
			}
		}(tn.tenant, tn.n)
	}
	wg.Wait()

	snap := e.Ledger()
	byTenant := map[string]telemetry.LedgerEntry{}
	var cyc, elems uint64
	for _, r := range snap.Rows {
		byTenant[r.Tenant] = r.LedgerEntry
		cyc += r.KernelCycles
		elems += r.Elements
	}
	st := e.Stats()
	if cyc != st.KernelCycles || elems != st.Elements {
		t.Errorf("partitioned totals (%d cycles, %d elems) != engine (%d, %d)",
			cyc, elems, st.KernelCycles, st.Elements)
	}
	if byTenant["a"].Elements != 36 || byTenant["b"].Elements != 13 {
		t.Errorf("per-tenant elements a=%d b=%d, want 36/13", byTenant["a"].Elements, byTenant["b"].Elements)
	}
	if byTenant["a"].Requests != 2 || byTenant["b"].Requests != 1 {
		t.Errorf("per-tenant requests a=%d b=%d, want 2/1", byTenant["a"].Requests, byTenant["b"].Requests)
	}
}

// TestLedgerDisabledBitIdentical: the ledger is pure observation — a
// ledger-on engine must produce bit-identical outputs and identical
// modeled accounting to a ledger-off engine over the same workload.
func TestLedgerDisabledBitIdentical(t *testing.T) {
	run := func(ledger bool) ([]float32, Stats) {
		e, err := New(Config{DPUs: 2, Shards: 1, MaxBatch: 128, Ledger: ledger})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		fn, par := llutSpec()
		xs := stats.RandomInputs(-7, 7, 300, 42)
		out, _, err := e.EvaluateBatchTenant("acme", fn, par, xs)
		if err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		st.QueueDepth = 0
		// Setup seconds derive in part from host wall time and vary
		// run to run regardless of the ledger; everything else in the
		// modeled accounting is deterministic.
		st.SetupSeconds = 0
		return out, st
	}
	outOn, stOn := run(true)
	outOff, stOff := run(false)
	for i := range outOn {
		if outOn[i] != outOff[i] {
			t.Fatalf("output %d diverges: %v vs %v", i, outOn[i], outOff[i])
		}
	}
	if stOn != stOff {
		t.Fatalf("stats diverge:\non  = %+v\noff = %+v", stOn, stOff)
	}
}

// TestMethodLabelExport: the exported label matches the internal one
// used by accuracy series.
func TestMethodLabelExport(t *testing.T) {
	p := core.Params{Method: core.LLUT, Interp: true, SizeLog2: 12}
	if got := MethodLabel(p); got != methodLabel(p) || got != "l-lut(i)" {
		t.Fatalf("MethodLabel = %q", got)
	}
	if got := MethodLabel(core.Params{Method: core.CORDIC}); got != "cordic" {
		t.Fatalf("MethodLabel cordic = %q", got)
	}
}
