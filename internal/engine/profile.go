package engine

import (
	"fmt"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/telemetry"
)

// kernelProfiler accumulates pimsim per-launch core profiles into the
// telemetry registry: instruction-class operation/cycle totals (the
// paper's Fig.-7-style mul/shift/load/branch breakdown, live) and
// per-DPU kernel/DMA cycle attribution. All counters are pre-created
// at construction so the observer itself — which runs on the compute
// stage once per launch — does no allocation and takes no registry
// lock.
type kernelProfiler struct {
	launches *telemetry.Counter
	opOps    []*telemetry.Counter // per OpClass
	opCycles []*telemetry.Counter
	dpuKern  []*telemetry.Counter // per DPU id
	dpuIssue []*telemetry.Counter
	dpuDMA   []*telemetry.Counter
}

func newKernelProfiler(reg *telemetry.Registry, dpus int) *kernelProfiler {
	p := &kernelProfiler{
		launches: reg.Counter("pim_launches_total", "kernel launches observed"),
	}
	for cl := pimsim.OpClass(0); cl < pimsim.NumOpClasses(); cl++ {
		lb := fmt.Sprintf("{class=%q}", cl.String())
		p.opOps = append(p.opOps, reg.Counter("pim_ops_total"+lb, "instructions retired per operation class"))
		p.opCycles = append(p.opCycles, reg.Counter("pim_op_cycles_total"+lb, "issue cycles charged per operation class"))
	}
	for d := 0; d < dpus; d++ {
		lb := fmt.Sprintf("{dpu=%q}", fmt.Sprint(d))
		p.dpuKern = append(p.dpuKern, reg.Counter("pim_dpu_kernel_cycles_total"+lb, "modeled kernel cycles per core"))
		p.dpuIssue = append(p.dpuIssue, reg.Counter("pim_dpu_issue_cycles_total"+lb, "pipeline-issue cycles per core"))
		p.dpuDMA = append(p.dpuDMA, reg.Counter("pim_dpu_dma_cycles_total"+lb, "DMA-engine busy cycles per core"))
	}
	return p
}

// observe is the pimsim.LaunchObserver: it runs after each
// LaunchShard on the launching goroutine (one shard's compute stage),
// so concurrent shards contend only on the atomic counters.
func (p *kernelProfiler) observe(prof pimsim.LaunchProfile) {
	p.launches.Inc()
	for i := range prof.Cores {
		c := &prof.Cores[i]
		if c.DPU >= 0 && c.DPU < len(p.dpuKern) {
			p.dpuKern[c.DPU].Add(c.Cycles)
			p.dpuIssue[c.DPU].Add(c.IssueCycles)
			p.dpuDMA[c.DPU].Add(c.DMACycles)
		}
		for cl := range c.Counters.Ops {
			p.opOps[cl].Add(c.Counters.Ops[cl])
			p.opCycles[cl].Add(c.Counters.Cycles[cl])
		}
	}
}
