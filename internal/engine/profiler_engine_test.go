package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/profiler"
	"transpimlib/internal/stats"
)

// profKey mirrors the ledger's row identity for reconciliation.
type profKey struct{ tenant, fn, method string }

// TestProfilerReconcilesWithLedgerAndSimulator: with the profiler and
// ledger both on, every quantity must agree ±0 — the profile's wall
// cycles sum to the simulator's attributed cycles, and per
// (tenant, function, method) they match the ledger's kernel-cycle rows
// exactly, under a concurrent multi-tenant mix with coalescing and
// splitting in play.
func TestProfilerReconcilesWithLedgerAndSimulator(t *testing.T) {
	e, err := New(Config{
		DPUs: 4, Shards: 2, MaxBatch: 128,
		Ledger:   true,
		Profiler: profiler.Config{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	fnA, parA := llutSpec()
	parB := core.Params{Method: core.CORDIC, Iterations: 20}
	tenants := []string{"acme", "globex", ""}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 8; i++ {
				n := 1 + rng.Intn(300)
				xs := stats.RandomInputs(-3, 3, n, uint64(w*100+i))
				var err error
				if w%2 == 0 {
					_, _, err = e.EvaluateBatchTenant(tenants[w%3], fnA, parA, xs)
				} else {
					_, _, err = e.EvaluateBatchTenant(tenants[w%3], core.Sin, parB, xs)
				}
				if err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	p, ok := e.ProfileSnapshot()
	if !ok || len(p.Frames) == 0 {
		t.Fatal("profiler produced no frames")
	}
	if got := e.System().AttributedKernelCycles(); p.TotalWall != got {
		t.Errorf("profile wall %d != simulator attributed cycles %d", p.TotalWall, got)
	}
	if st := e.Stats(); p.TotalWall != st.KernelCycles {
		t.Errorf("profile wall %d != engine kernel cycles %d", p.TotalWall, st.KernelCycles)
	}

	// Row-for-row against the ledger.
	ledger := map[profKey]uint64{}
	for _, r := range e.Ledger().Rows {
		ledger[profKey{r.Tenant, r.Function, r.Method}] += r.KernelCycles
	}
	prof := map[profKey]uint64{}
	for _, f := range p.Frames {
		prof[profKey{f.Tenant, f.Function, f.Method}] += f.WallCycles
	}
	for k, want := range ledger {
		if got := prof[k]; got != want {
			t.Errorf("row %+v: profile wall %d != ledger cycles %d", k, got, want)
		}
	}
	for k := range prof {
		if _, ok := ledger[k]; !ok {
			t.Errorf("profile row %+v has no ledger counterpart", k)
		}
	}

	// The heatmap's decomposition is exact per core: issue + DMA excess
	// + idle = wall, and every configured core has a row.
	h := e.Profiler().HeatmapSnapshot()
	if len(h.DPUs) != 4 {
		t.Fatalf("want 4 heatmap rows, got %d", len(h.DPUs))
	}
	for _, d := range h.DPUs {
		if d.IssueCycles+d.DMACycles+d.IdleCycles != d.WallCycles {
			t.Errorf("dpu %d decomposition broken: %d+%d+%d != %d",
				d.DPU, d.IssueCycles, d.DMACycles, d.IdleCycles, d.WallCycles)
		}
	}
}

// TestProfilerProgramPhases: fused-program launches are labeled per
// phase under the program's ledger identity, and the program's profile
// cycles reconcile with its ledger row.
func TestProfilerProgramPhases(t *testing.T) {
	e, err := New(Config{
		DPUs: 4, Shards: 1, MaxBatch: 4096,
		Ledger:   true,
		Profiler: profiler.Config{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	prog, err := e.CompileProgram(progSoftmax(), progParams())
	if err != nil {
		t.Fatal(err)
	}
	xs := stats.RandomInputs(-7.5, 7.5, 512, 11)
	if _, _, err := e.EvaluateProgramTenant("ml-team", prog, [][]float32{xs}, nil); err != nil {
		t.Fatal(err)
	}

	p, _ := e.ProfileSnapshot()
	stages := map[string]uint64{}
	var progWall uint64
	for _, f := range p.Frames {
		if f.Function != "program" {
			t.Errorf("unexpected non-program frame: %+v", f)
			continue
		}
		if f.Method != "fused:softmax" || f.Tenant != "ml-team" {
			t.Errorf("program frame mislabeled: %+v", f)
		}
		stages[f.Stage] += f.WallCycles
		progWall += f.WallCycles
	}
	if len(stages) < 2 {
		t.Fatalf("softmax should profile as multiple phases, got stages %v", stages)
	}
	for st := range stages {
		if len(st) < 5 || st[:5] != "phase" {
			t.Errorf("program stage %q is not a phase label", st)
		}
	}
	var ledgerCycles uint64
	for _, r := range e.Ledger().Rows {
		if r.Function == "program" && r.Method == "fused:softmax" {
			ledgerCycles += r.KernelCycles
		}
	}
	if progWall != ledgerCycles {
		t.Errorf("program profile wall %d != ledger cycles %d", progWall, ledgerCycles)
	}
	if got := e.System().AttributedKernelCycles(); p.TotalWall != got {
		t.Errorf("profile wall %d != attributed cycles %d", p.TotalWall, got)
	}
}

// TestProfilerIdenticalRunsZeroDiff: two engines, same config, same
// workload — modeled cycles are deterministic, so the rolled-up
// profiles must diff to nothing (the CI gate's premise).
func TestProfilerIdenticalRunsZeroDiff(t *testing.T) {
	run := func() profiler.Profile {
		e, err := New(Config{
			DPUs: 4, Shards: 2, MaxBatch: 256,
			Profiler: profiler.Config{Enabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		fn, par := llutSpec()
		for i := 0; i < 4; i++ {
			xs := stats.RandomInputs(-3, 3, 200+i, uint64(i))
			if _, _, err := e.EvaluateBatchTenant("t", fn, par, xs); err != nil {
				t.Fatal(err)
			}
		}
		prog, err := e.CompileProgram(progSoftmax(), progParams())
		if err != nil {
			t.Fatal(err)
		}
		xs := stats.RandomInputs(-7.5, 7.5, 256, 3)
		if _, _, err := e.EvaluateProgramTenant("t", prog, [][]float32{xs}, nil); err != nil {
			t.Fatal(err)
		}
		p, _ := e.ProfileSnapshot()
		return p
	}
	a, b := run(), run()
	if deltas := profiler.Diff(profiler.Rollup(a), profiler.Rollup(b)); len(deltas) != 0 {
		t.Fatalf("identical runs diff to %d deltas: %+v", len(deltas), deltas[0])
	}
}

// TestProfilerDisabledExposesNothing: the zero-value config leaves the
// collector nil and the debug endpoints unmounted.
func TestProfilerDisabledExposesNothing(t *testing.T) {
	e, err := New(Config{DPUs: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Profiler() != nil {
		t.Fatal("collector exists with profiling disabled")
	}
	if _, ok := e.ProfileSnapshot(); ok {
		t.Fatal("snapshot ok with profiling disabled")
	}
	if e.Observe().ProfileHandler != nil || e.Observe().HeatmapHandler != nil {
		t.Fatal("debug handlers mounted with profiling disabled")
	}
}

// TestProfilerCoalescedTenantsSplitExactly pins the segment partition
// against a hand-built coalesced batch: three requests from two
// tenants land in one batch (BatchWindow), and the per-tenant wall
// shares must match the ledger's splits exactly.
func TestProfilerCoalescedTenantsSplitExactly(t *testing.T) {
	e, err := New(Config{
		DPUs: 2, Shards: 1, MaxBatch: 4096, BatchWindow: 20 * time.Millisecond,
		Ledger:   true,
		Profiler: profiler.Config{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fn, par := llutSpec()
	var wg sync.WaitGroup
	for _, tn := range []struct {
		tenant string
		n      int
	}{{"a", 7}, {"b", 13}, {"a", 29}} {
		wg.Add(1)
		go func(tenant string, n int) {
			defer wg.Done()
			xs := stats.RandomInputs(-3, 3, n, uint64(n))
			if _, _, err := e.EvaluateBatchTenant(tenant, fn, par, xs); err != nil {
				t.Error(err)
			}
		}(tn.tenant, tn.n)
	}
	wg.Wait()

	p, _ := e.ProfileSnapshot()
	profByTenant := map[string]uint64{}
	for _, f := range p.Frames {
		profByTenant[f.Tenant] += f.WallCycles
	}
	ledByTenant := map[string]uint64{}
	for _, r := range e.Ledger().Rows {
		ledByTenant[r.Tenant] += r.KernelCycles
	}
	for tn, want := range ledByTenant {
		if got := profByTenant[tn]; got != want {
			t.Errorf("tenant %q: profile wall %d != ledger cycles %d", tn, got, want)
		}
	}
}
