package profiler

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

func nowNano() int64 { return time.Now().UnixNano() }

// Frame is one leaf of the attribution tree: the full label stack and
// its accumulated counters. WallCycles is the frame's share of modeled
// launch wall cycles (sums to the simulator's attributed kernel
// cycles); Cycles is the per-class issue-cycle charge (the paper's
// Fig.-7 measure); Ops is instructions retired.
type Frame struct {
	Tenant     string `json:"tenant"`
	Function   string `json:"function"`
	Method     string `json:"method"`
	Stage      string `json:"stage"`
	Class      string `json:"class"`
	Ops        uint64 `json:"ops"`
	Cycles     uint64 `json:"cycles"`
	WallCycles uint64 `json:"wall_cycles"`
}

// key renders the frame's identity (not its values).
func (f Frame) key() string {
	return f.Tenant + "\x00" + f.Function + "\x00" + f.Method + "\x00" + f.Stage + "\x00" + f.Class
}

// Stack renders the frame as a folded flamegraph stack,
// root-to-leaf, semicolon-separated.
func (f Frame) Stack() string {
	t := f.Tenant
	if t == "" {
		t = "-"
	}
	return t + ";" + f.Function + ";" + f.Method + ";" + f.Stage + ";" + f.Class
}

// Profile is a point-in-time (or interval) snapshot of the collector.
type Profile struct {
	StartUnixNano int64   `json:"start_unix_nano"`
	EndUnixNano   int64   `json:"end_unix_nano"`
	Launches      uint64  `json:"launches"`
	TotalOps      uint64  `json:"total_ops"`
	TotalCycles   uint64  `json:"total_cycles"`
	TotalWall     uint64  `json:"total_wall_cycles"`
	Frames        []Frame `json:"frames"`
}

// Snapshot returns the cumulative profile since the collector
// started. Frames are sorted by descending wall cycles (ties broken
// by identity), so the output is deterministic for a given state.
func (c *Collector) Snapshot() Profile {
	if c == nil {
		return Profile{}
	}
	now := nowNano()
	p := Profile{
		StartUnixNano: c.start.UnixNano(),
		EndUnixNano:   now,
		Launches:      c.launches.Load(),
	}
	c.mu.RLock()
	p.Frames = make([]Frame, 0, len(c.frames)+1)
	for k, cell := range c.frames {
		p.Frames = append(p.Frames, Frame{
			Tenant:     k.tenant,
			Function:   k.function,
			Method:     k.method,
			Stage:      k.stage,
			Class:      k.class.String(),
			Ops:        cell.ops.Load(),
			Cycles:     cell.cycles.Load(),
			WallCycles: cell.wall.Load(),
		})
	}
	if c.overflow != nil {
		p.Frames = append(p.Frames, Frame{
			Tenant: "~other", Function: "~other", Method: "~other",
			Stage: "~other", Class: "~other",
			Ops:        c.overflow.ops.Load(),
			Cycles:     c.overflow.cycles.Load(),
			WallCycles: c.overflow.wall.Load(),
		})
	}
	c.mu.RUnlock()
	sortFrames(p.Frames)
	p.total()
	return p
}

func (p *Profile) total() {
	p.TotalOps, p.TotalCycles, p.TotalWall = 0, 0, 0
	for i := range p.Frames {
		p.TotalOps += p.Frames[i].Ops
		p.TotalCycles += p.Frames[i].Cycles
		p.TotalWall += p.Frames[i].WallCycles
	}
}

func sortFrames(fs []Frame) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].WallCycles != fs[j].WallCycles {
			return fs[i].WallCycles > fs[j].WallCycles
		}
		return fs[i].key() < fs[j].key()
	})
}

// Merge sums any number of profiles frame-by-frame — the cluster's
// merged /debug/profile across replica collectors.
func Merge(profiles ...Profile) Profile {
	var out Profile
	idx := make(map[string]int)
	for _, p := range profiles {
		if out.StartUnixNano == 0 || (p.StartUnixNano != 0 && p.StartUnixNano < out.StartUnixNano) {
			out.StartUnixNano = p.StartUnixNano
		}
		if p.EndUnixNano > out.EndUnixNano {
			out.EndUnixNano = p.EndUnixNano
		}
		out.Launches += p.Launches
		for _, f := range p.Frames {
			k := f.key()
			if i, ok := idx[k]; ok {
				out.Frames[i].Ops += f.Ops
				out.Frames[i].Cycles += f.Cycles
				out.Frames[i].WallCycles += f.WallCycles
			} else {
				idx[k] = len(out.Frames)
				out.Frames = append(out.Frames, f)
			}
		}
	}
	sortFrames(out.Frames)
	out.total()
	return out
}

// Sub returns the interval profile cur − prev (per-frame saturating
// subtraction, zero frames dropped) — the /debug/profile?seconds=N
// window. Counters are monotonic, so on a live collector cur ≥ prev
// frame-by-frame and the subtraction is exact.
func Sub(cur, prev Profile) Profile {
	old := make(map[string]Frame, len(prev.Frames))
	for _, f := range prev.Frames {
		old[f.key()] = f
	}
	out := Profile{
		StartUnixNano: prev.EndUnixNano,
		EndUnixNano:   cur.EndUnixNano,
		Launches:      cur.Launches - prev.Launches,
	}
	for _, f := range cur.Frames {
		if o, ok := old[f.key()]; ok {
			f.Ops -= min64(f.Ops, o.Ops)
			f.Cycles -= min64(f.Cycles, o.Cycles)
			f.WallCycles -= min64(f.WallCycles, o.WallCycles)
		}
		if f.Ops == 0 && f.Cycles == 0 && f.WallCycles == 0 {
			continue
		}
		out.Frames = append(out.Frames, f)
	}
	sortFrames(out.Frames)
	out.total()
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// FrameDelta is one frame's change between two profiles.
type FrameDelta struct {
	Frame      // identity fields; Ops/Cycles/WallCycles carry the NEW values
	OldOps     uint64  `json:"old_ops"`
	OldCycles  uint64  `json:"old_cycles"`
	OldWall    uint64  `json:"old_wall_cycles"`
	DeltaWall  int64   `json:"delta_wall_cycles"`
	DeltaCycle int64   `json:"delta_cycles"`
	Growth     float64 `json:"growth"` // (new−old)/old on wall cycles; +Inf for new frames
}

// Diff subtracts old from new frame-by-frame and returns only the
// frames that changed, sorted by |delta wall| descending. Two
// identical profiles produce an empty diff — the zero-regression
// contract tplprof -diff and the CI gate rely on.
func Diff(oldP, newP Profile) []FrameDelta {
	old := make(map[string]Frame, len(oldP.Frames))
	for _, f := range oldP.Frames {
		old[f.key()] = f
	}
	seen := make(map[string]bool, len(newP.Frames))
	var out []FrameDelta
	add := func(nf Frame, of Frame) {
		d := FrameDelta{
			Frame:      nf,
			OldOps:     of.Ops,
			OldCycles:  of.Cycles,
			OldWall:    of.WallCycles,
			DeltaWall:  int64(nf.WallCycles) - int64(of.WallCycles),
			DeltaCycle: int64(nf.Cycles) - int64(of.Cycles),
		}
		if d.DeltaWall == 0 && d.DeltaCycle == 0 && nf.Ops == of.Ops {
			return
		}
		if of.WallCycles > 0 {
			d.Growth = float64(d.DeltaWall) / float64(of.WallCycles)
		} else if nf.WallCycles > 0 {
			d.Growth = 1e308 // new frame: infinite growth, render as "new"
		}
		out = append(out, d)
	}
	for _, nf := range newP.Frames {
		seen[nf.key()] = true
		add(nf, old[nf.key()])
	}
	for _, of := range oldP.Frames {
		if !seen[of.key()] {
			add(Frame{
				Tenant: of.Tenant, Function: of.Function, Method: of.Method,
				Stage: of.Stage, Class: of.Class,
			}, of)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs64(out[i].DeltaWall), abs64(out[j].DeltaWall)
		if ai != aj {
			return ai > aj
		}
		return out[i].key() < out[j].key()
	})
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Rollup collapses a profile to (function, method, class) — the CI
// cycle-gate granularity. Tenant and stage are dropped; frames merge.
func Rollup(p Profile) Profile {
	out := Profile{
		StartUnixNano: p.StartUnixNano,
		EndUnixNano:   p.EndUnixNano,
		Launches:      p.Launches,
	}
	idx := make(map[string]int)
	for _, f := range p.Frames {
		f.Tenant, f.Stage = "", ""
		k := f.key()
		if i, ok := idx[k]; ok {
			out.Frames[i].Ops += f.Ops
			out.Frames[i].Cycles += f.Cycles
			out.Frames[i].WallCycles += f.WallCycles
		} else {
			idx[k] = len(out.Frames)
			out.Frames = append(out.Frames, f)
		}
	}
	sortFrames(out.Frames)
	out.total()
	return out
}

// WriteFolded writes the profile as folded flamegraph stacks —
// `tenant;function;method;stage;class <wall-cycles>` per line, the
// input format of flamegraph.pl / speedscope / inferno. Lines follow
// the profile's frame order (wall-descending), so output is
// deterministic.
func (p Profile) WriteFolded(w io.Writer) error {
	var b strings.Builder
	for _, f := range p.Frames {
		if f.WallCycles == 0 {
			continue
		}
		b.WriteString(f.Stack())
		fmt.Fprintf(&b, " %d\n", f.WallCycles)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Top returns the profile's n largest frames by wall cycles (the
// frames are already sorted; this is a bounds-checked prefix).
func (p Profile) Top(n int) []Frame {
	if n < 0 || n > len(p.Frames) {
		n = len(p.Frames)
	}
	return p.Frames[:n]
}
