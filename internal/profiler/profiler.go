// Package profiler is the continuous modeled-cycle profiler: it
// consumes pimsim per-launch counter deltas and attributes every
// modeled kernel cycle to a stack of (tenant, function, method,
// pipeline stage / fused-program phase, instruction class) — the
// paper's Fig.-7 per-method cycle breakdowns (mul vs. shift vs. load
// vs. branch), captured live, per tenant, on a serving system.
//
// Attribution is exact by construction. Each launch's wall cycles are
// the slowest lane's closed-form cycles over the observer's counter
// deltas — the same quantity the engine charges a batch and the
// simulator accumulates under SetCycleAttribution — and every split
// (across tenant segments, then across instruction classes within a
// segment) uses integer prefix partitioning, so the shares always sum
// to the whole. Summed over any subset of frames, profile cycles
// reconcile ±0 against the pimsim attribution counter and the cost
// ledger for the same run.
//
// The collector also keeps per-DPU utilization accumulators — issue
// vs. DMA-excess vs. idle cycles per core — both cumulative and as a
// ring of time-windowed snapshots (the Timeline discipline), exported
// as heatmaps.
package profiler

import (
	"sync"
	"sync/atomic"
	"time"

	"transpimlib/internal/pimsim"
)

// Config describes a collector.
type Config struct {
	// Enabled turns the profiler on. Off (the zero value), the engine
	// installs no launch observer for it and the hot path is unchanged.
	Enabled bool
	// Window is the width of one heatmap window (default 1s).
	Window time.Duration
	// Windows is the ring capacity: how many closed windows the
	// heatmap retains (default 60).
	Windows int
	// MaxFrames caps frame cardinality; past it, new stacks collapse
	// into a single "~other" overflow frame (default 4096).
	MaxFrames int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.Windows <= 0 {
		c.Windows = 60
	}
	if c.MaxFrames <= 0 {
		c.MaxFrames = 4096
	}
	return c
}

// Seg is one tenant's contiguous element range within a launch.
type Seg struct {
	Tenant string
	N      int
}

// LaunchContext carries the labels the engine's compute stage knows
// and the simulator does not: which function/method the kernel serves,
// which pipeline stage (or fused-program phase) is launching, and the
// tenant segments the batch carries. The launching goroutine writes it
// immediately before LaunchShard and the observer — which runs
// synchronously on the same goroutine — reads it; no lock is needed
// and the Segs slice is reused across batches.
type LaunchContext struct {
	Function string
	Method   string
	Stage    string
	Segs     []Seg
	N        int // total elements across Segs
}

// Set fills the context in place, reusing the Segs backing array.
func (lc *LaunchContext) Set(function, method, stage string) {
	lc.Function, lc.Method, lc.Stage = function, method, stage
}

// frameKey identifies one leaf of the attribution tree.
type frameKey struct {
	tenant   string
	function string
	method   string
	stage    string
	class    pimsim.OpClass
}

// frameCell is one frame's accumulators. Cells are insert-only (the
// map grows, entries never move), so Observe increments them with
// atomics under the map's read lock.
type frameCell struct {
	ops    atomic.Uint64 // instructions retired in this frame's class
	cycles atomic.Uint64 // per-class issue cycles (the Fig.-7 measure)
	wall   atomic.Uint64 // wall-cycle share (sums to attributed kernel cycles)
}

// dpuCell is one core's cumulative utilization decomposition. Per
// launch: issueAdj is the occupancy-adjusted issue time, dmaExcess the
// cycles by which the DMA engine outran the pipeline, idle the gap to
// the launch's slowest lane. The three sum to the launch wall for
// every core, so shares are exact.
type dpuCell struct {
	launches  atomic.Uint64
	wall      atomic.Uint64
	issueAdj  atomic.Uint64
	dmaExcess atomic.Uint64
	idle      atomic.Uint64
}

// dpuAccum is a plain snapshot of a dpuCell (window delta math).
type dpuAccum struct {
	launches, wall, issueAdj, dmaExcess, idle uint64
}

// Collector aggregates launch profiles. One collector serves one
// engine (one pimsim.System); a cluster keeps one per replica and
// merges snapshots at export time.
type Collector struct {
	cfg   Config
	start time.Time

	mu       sync.RWMutex
	frames   map[frameKey]*frameCell
	overflow *frameCell // the "~other" sink once MaxFrames is hit

	launches atomic.Uint64
	dpus     []dpuCell

	// Window ring, sealed by Tick (Start's ticker or an explicit call).
	wmu      sync.Mutex
	prev     []dpuAccum
	ring     []HeatWindow
	head     int // next write position
	count    int
	winStart time.Time

	tickStop  chan struct{}
	tickDone  chan struct{}
	closeOnce sync.Once
}

// New builds a collector for a system with the given core count.
func New(cfg Config, dpus int) *Collector {
	cfg = cfg.withDefaults()
	if dpus < 0 {
		dpus = 0
	}
	now := time.Now()
	return &Collector{
		cfg:      cfg,
		start:    now,
		frames:   make(map[frameKey]*frameCell),
		dpus:     make([]dpuCell, dpus),
		prev:     make([]dpuAccum, dpus),
		ring:     make([]HeatWindow, 0, cfg.Windows),
		winStart: now,
	}
}

// Start launches the background window ticker. Optional: a collector
// works without it (cumulative views only); Close is still required
// to stop the ticker once started.
func (c *Collector) Start() {
	if c == nil || c.tickStop != nil {
		return
	}
	c.tickStop = make(chan struct{})
	c.tickDone = make(chan struct{})
	go func() {
		defer close(c.tickDone)
		t := time.NewTicker(c.cfg.Window)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				c.Tick(now)
			case <-c.tickStop:
				return
			}
		}
	}()
}

// Close stops the ticker and seals the final partial window. Nil-safe
// and idempotent.
func (c *Collector) Close() {
	if c == nil {
		return
	}
	c.closeOnce.Do(func() {
		if c.tickStop != nil {
			close(c.tickStop)
			<-c.tickDone
		}
		c.Tick(time.Now())
	})
}

// Observe is the launch observer body: attribute one launch's counter
// deltas to the context's frames. It runs synchronously on the
// launching goroutine (one shard's compute stage), so distinct shards
// contend only on the frame map's read lock and the cells' atomics.
func (c *Collector) Observe(lc *LaunchContext, prof pimsim.LaunchProfile) {
	if c == nil || len(prof.Cores) == 0 {
		return
	}
	// The launch wall: slowest lane's closed-form cycles over the
	// deltas — identical to the engine's batch charge and the
	// simulator's attribution counter.
	var wall uint64
	for i := range prof.Cores {
		cp := &prof.Cores[i]
		if w := pimsim.ClosedFormCycles(cp.IssueCycles, cp.DMACycles, cp.Tasklets); w > wall {
			wall = w
		}
	}
	c.launches.Add(1)
	for i := range prof.Cores {
		cp := &prof.Cores[i]
		if cp.DPU < 0 || cp.DPU >= len(c.dpus) {
			continue
		}
		cell := &c.dpus[cp.DPU]
		issueAdj := pimsim.ClosedFormCycles(cp.IssueCycles, 0, cp.Tasklets)
		busy := pimsim.ClosedFormCycles(cp.IssueCycles, cp.DMACycles, cp.Tasklets)
		cell.launches.Add(1)
		cell.wall.Add(wall)
		cell.issueAdj.Add(issueAdj)
		cell.dmaExcess.Add(busy - issueAdj)
		cell.idle.Add(wall - busy)
	}

	// Per-class totals across the launch's cores.
	var tot pimsim.Counters
	for i := range prof.Cores {
		tot.Add(&prof.Cores[i].Counters)
	}

	segs := lc.Segs
	n := uint64(lc.N)
	if n == 0 || len(segs) == 0 {
		// A launch with no element context (shouldn't happen from the
		// engine, but keep the invariant): one anonymous segment.
		c.attributeSeg(lc, "", wall, &tot)
		return
	}

	// Split wall cycles and per-class counters across tenant segments
	// by exact integer prefix partitioning — the ledger's rule, in the
	// ledger's segment order, so per-tenant profile cycles reconcile
	// ±0 against per-tenant ledger cycles.
	var cum, wallPrev uint64
	var prev pimsim.Counters // prefix state: Cycles and Ops per class
	for _, sg := range segs {
		cum += uint64(sg.N)
		wallCum := wall * cum / n
		wallShare := wallCum - wallPrev
		wallPrev = wallCum
		var seg pimsim.Counters
		for cl := range tot.Cycles {
			cc := tot.Cycles[cl] * cum / n
			oc := tot.Ops[cl] * cum / n
			seg.Cycles[cl] = cc - prev.Cycles[cl]
			seg.Ops[cl] = oc - prev.Ops[cl]
			prev.Cycles[cl] = cc
			prev.Ops[cl] = oc
		}
		c.attributeSeg(lc, sg.Tenant, wallShare, &seg)
	}
}

// attributeSeg splits one segment's wall-cycle share across
// instruction classes in proportion to the segment's per-class issue
// cycles (prefix partitioning again, so the class shares sum to the
// segment share exactly) and adds the result to the frames. When the
// segment charged no class cycles at all, the whole share lands on
// ctrl — cycles have to go somewhere for the totals to reconcile.
func (c *Collector) attributeSeg(lc *LaunchContext, tenant string, wallShare uint64, seg *pimsim.Counters) {
	var segTot uint64
	for _, v := range seg.Cycles {
		segTot += v
	}
	if segTot == 0 {
		for cl := range seg.Ops {
			w := uint64(0)
			if pimsim.OpClass(cl) == pimsim.OpCtrl {
				w = wallShare
			}
			if seg.Ops[cl] == 0 && w == 0 {
				continue
			}
			c.addFrame(lc, tenant, pimsim.OpClass(cl), seg.Ops[cl], 0, w)
		}
		return
	}
	var cumC, wPrev uint64
	for cl := range seg.Cycles {
		cumC += seg.Cycles[cl]
		wCum := wallShare * cumC / segTot
		w := wCum - wPrev
		wPrev = wCum
		if seg.Ops[cl] == 0 && seg.Cycles[cl] == 0 && w == 0 {
			continue
		}
		c.addFrame(lc, tenant, pimsim.OpClass(cl), seg.Ops[cl], seg.Cycles[cl], w)
	}
}

// addFrame bumps one frame's accumulators, creating the cell on first
// sight. Steady state: one read-lock map hit and three atomic adds.
func (c *Collector) addFrame(lc *LaunchContext, tenant string, cl pimsim.OpClass, ops, cycles, wall uint64) {
	key := frameKey{
		tenant:   tenant,
		function: lc.Function,
		method:   lc.Method,
		stage:    lc.Stage,
		class:    cl,
	}
	c.mu.RLock()
	cell := c.frames[key]
	c.mu.RUnlock()
	if cell == nil {
		c.mu.Lock()
		cell = c.frames[key]
		if cell == nil {
			if len(c.frames) >= c.cfg.MaxFrames {
				// Cardinality cap: collapse into the overflow frame.
				if c.overflow == nil {
					c.overflow = new(frameCell)
				}
				cell = c.overflow
			} else {
				cell = new(frameCell)
				c.frames[key] = cell
			}
		}
		c.mu.Unlock()
	}
	cell.ops.Add(ops)
	cell.cycles.Add(cycles)
	cell.wall.Add(wall)
}

// Tick seals the window ending at now: per-DPU deltas since the last
// tick go into the ring (overwriting the oldest once full). Safe for
// concurrent use with Observe; empty windows (no launches anywhere)
// are still recorded so the heatmap's time axis has no holes.
func (c *Collector) Tick(now time.Time) {
	if c == nil {
		return
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	w := HeatWindow{
		Start: c.winStart,
		End:   now,
		DPUs:  make([]HeatDPU, len(c.dpus)),
	}
	for i := range c.dpus {
		cell := &c.dpus[i]
		cur := dpuAccum{
			launches:  cell.launches.Load(),
			wall:      cell.wall.Load(),
			issueAdj:  cell.issueAdj.Load(),
			dmaExcess: cell.dmaExcess.Load(),
			idle:      cell.idle.Load(),
		}
		p := c.prev[i]
		w.DPUs[i] = makeHeatDPU(i, dpuAccum{
			launches:  cur.launches - p.launches,
			wall:      cur.wall - p.wall,
			issueAdj:  cur.issueAdj - p.issueAdj,
			dmaExcess: cur.dmaExcess - p.dmaExcess,
			idle:      cur.idle - p.idle,
		})
		c.prev[i] = cur
	}
	if len(c.ring) < c.cfg.Windows {
		c.ring = append(c.ring, w)
	} else {
		c.ring[c.head] = w
	}
	c.head = (c.head + 1) % c.cfg.Windows
	c.count++
	c.winStart = now
}

func makeHeatDPU(id int, d dpuAccum) HeatDPU {
	h := HeatDPU{
		DPU:         id,
		Launches:    d.launches,
		WallCycles:  d.wall,
		IssueCycles: d.issueAdj,
		DMACycles:   d.dmaExcess,
		IdleCycles:  d.idle,
	}
	if d.wall > 0 {
		h.IssueShare = float64(d.issueAdj) / float64(d.wall)
		h.DMAShare = float64(d.dmaExcess) / float64(d.wall)
		h.IdleShare = float64(d.idle) / float64(d.wall)
	}
	return h
}

// HeatDPU is one core's utilization decomposition over one window (or
// cumulatively): occupancy-adjusted issue cycles, DMA-excess cycles
// (DMA busy beyond the pipeline), and idle cycles waiting on the
// launch's slowest lane. The three cycle columns sum to WallCycles.
type HeatDPU struct {
	DPU         int     `json:"dpu"`
	Launches    uint64  `json:"launches"`
	WallCycles  uint64  `json:"wall_cycles"`
	IssueCycles uint64  `json:"issue_cycles"`
	DMACycles   uint64  `json:"dma_excess_cycles"`
	IdleCycles  uint64  `json:"idle_cycles"`
	IssueShare  float64 `json:"issue_share"`
	DMAShare    float64 `json:"dma_share"`
	IdleShare   float64 `json:"idle_share"`
}

// HeatWindow is one sealed heatmap window.
type HeatWindow struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	DPUs  []HeatDPU `json:"dpus"`
}

// Heatmap is the per-DPU utilization export: cumulative totals plus
// the retained windows, oldest first.
type Heatmap struct {
	Launches uint64       `json:"launches"`
	DPUs     []HeatDPU    `json:"dpus"`
	Windows  []HeatWindow `json:"windows"`
}

// HeatmapSnapshot returns the cumulative per-DPU decomposition and the
// closed windows, oldest first.
func (c *Collector) HeatmapSnapshot() Heatmap {
	if c == nil {
		return Heatmap{}
	}
	h := Heatmap{
		Launches: c.launches.Load(),
		DPUs:     make([]HeatDPU, len(c.dpus)),
	}
	for i := range c.dpus {
		cell := &c.dpus[i]
		h.DPUs[i] = makeHeatDPU(i, dpuAccum{
			launches:  cell.launches.Load(),
			wall:      cell.wall.Load(),
			issueAdj:  cell.issueAdj.Load(),
			dmaExcess: cell.dmaExcess.Load(),
			idle:      cell.idle.Load(),
		})
	}
	c.wmu.Lock()
	if c.count <= len(c.ring) {
		h.Windows = append(h.Windows, c.ring...)
	} else {
		for i := 0; i < len(c.ring); i++ {
			h.Windows = append(h.Windows, c.ring[(c.head+i)%len(c.ring)])
		}
	}
	c.wmu.Unlock()
	return h
}
