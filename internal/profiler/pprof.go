package profiler

import (
	"bytes"
	"compress/gzip"
	"io"
)

// pprof profile.proto encoder, hand-rolled against the message layout
// of github.com/google/pprof/proto/profile.proto (the format `go tool
// pprof` and speedscope read) so the repo stays dependency-free.
//
// Field numbers used:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table, 9 time_nanos, 10 duration_nanos
//	ValueType: 1 type (string idx), 2 unit (string idx)
//	Sample:    1 location_id (repeated), 2 value (repeated)
//	Location:  1 id, 4 line (Line)
//	Line:      1 function_id
//	Function:  1 id, 2 name (string idx)
//
// Each frame becomes one sample whose location stack reads leaf-first:
// class, stage, method, function, tenant — so flamegraph roots are
// tenants and leaves are instruction classes, matching the folded
// export. Three values per sample: wall cycles, per-class issue
// cycles, and ops.

// protoBuf is a minimal protobuf writer.
type protoBuf struct{ bytes.Buffer }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

// tag writes a field key: (field number << 3) | wire type.
func (b *protoBuf) tag(field int, wire int) { b.varint(uint64(field)<<3 | uint64(wire)) }

func (b *protoBuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(v)
}

func (b *protoBuf) intField(field int, v int64) { b.uintField(field, uint64(v)) }

func (b *protoBuf) bytesField(field int, p []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(p)))
	b.Write(p)
}

func (b *protoBuf) stringField(field int, s string) {
	b.tag(field, 2)
	b.varint(uint64(len(s)))
	b.WriteString(s)
}

// packedField writes repeated varints in packed encoding.
func (b *protoBuf) packedField(field int, vs []uint64) {
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	b.bytesField(field, inner.Bytes())
}

// stringTable interns strings; index 0 is "" per the pprof contract.
type stringTable struct {
	idx  map[string]uint64
	list []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]uint64{"": 0}, list: []string{""}}
}

func (t *stringTable) id(s string) uint64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := uint64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// writeProto encodes the profile as an uncompressed profile.proto
// message. Byte-stable for a given Profile value (iteration follows
// the sorted frame order), which the golden test pins.
func (p Profile) writeProto() []byte {
	var out protoBuf
	strs := newStringTable()

	// sample_type: wall/cycles, issue/cycles, ops/count. Interned
	// before any frame strings so the table layout is deterministic.
	sampleTypes := [][2]uint64{
		{strs.id("wall"), strs.id("cycles")},
		{strs.id("issue"), strs.id("cycles")},
		{strs.id("ops"), strs.id("count")},
	}
	for _, st := range sampleTypes {
		var vt protoBuf
		vt.intField(1, int64(st[0]))
		vt.intField(2, int64(st[1]))
		out.bytesField(1, vt.Bytes())
	}

	// One Function+Location per unique label string, ids assigned in
	// frame order (leaf-first within a frame).
	locOf := map[string]uint64{}
	var locNames []string
	locID := func(name string) uint64 {
		if name == "" {
			name = "-"
		}
		if id, ok := locOf[name]; ok {
			return id
		}
		id := uint64(len(locNames) + 1) // ids are 1-based
		locOf[name] = id
		locNames = append(locNames, name)
		strs.id(name)
		return id
	}

	for _, f := range p.Frames {
		stack := []uint64{
			locID("class:" + f.Class),
			locID("stage:" + f.Stage),
			locID("method:" + f.Method),
			locID("fn:" + f.Function),
			locID("tenant:" + orDash(f.Tenant)),
		}
		var s protoBuf
		s.packedField(1, stack)
		s.packedField(2, []uint64{f.WallCycles, f.Cycles, f.Ops})
		out.bytesField(2, s.Bytes())
	}

	for i, name := range locNames {
		id := uint64(i + 1)
		var fn protoBuf
		fn.uintField(1, id)
		fn.intField(2, int64(strs.idx[name]))
		out.bytesField(5, fn.Bytes())
		var line protoBuf
		line.uintField(1, id)
		var loc protoBuf
		loc.uintField(1, id)
		loc.bytesField(4, line.Bytes())
		out.bytesField(4, loc.Bytes())
	}

	for _, s := range strs.list {
		// Index 0 ("") must still be written so table indices line up.
		out.stringField(6, s)
	}
	out.intField(9, p.StartUnixNano)
	if p.EndUnixNano > p.StartUnixNano {
		out.intField(10, p.EndUnixNano-p.StartUnixNano)
	}
	return out.Bytes()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// WritePprof writes the gzip-compressed profile.proto encoding — the
// on-the-wire format of /debug/profile?format=pprof and the artifact
// `go tool pprof` opens directly.
func (p Profile) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.writeProto()); err != nil {
		return err
	}
	return zw.Close()
}
