package profiler

import (
	"bytes"
	"compress/gzip"
	"encoding/hex"
	"fmt"
	"io"
	"testing"
)

// goldenProfile is a fixed two-frame profile with pinned timestamps;
// its uncompressed encoding must never drift (the byte-stable
// contract external pprof tooling depends on).
func goldenProfile() Profile {
	p := Profile{
		StartUnixNano: 1_700_000_000_000_000_000,
		EndUnixNano:   1_700_000_001_000_000_000,
		Launches:      2,
		Frames: []Frame{
			{Tenant: "a", Function: "sin", Method: "l-lut(i)", Stage: "kernel",
				Class: "fadd", Ops: 100, Cycles: 500, WallCycles: 900},
			{Tenant: "", Function: "program", Method: "fused:softmax", Stage: "phase1",
				Class: "mram", Ops: 7, Cycles: 77, WallCycles: 200},
		},
	}
	p.total()
	return p
}

// pprofGolden is the pinned hex of goldenProfile().writeProto().
const pprofGolden = "0a04080110020a04080310020a0408041005120e0a0501020304051205" +
	"8407f40364120d0a05060708090a1204c8014d072a04080110062206080122020801" +
	"2a040802100722060802220208022a040803100822060803220208032a0408041009" +
	"22060804220208042a040805100a22060805220208052a040806100b220608062202" +
	"08062a040807100c22060807220208072a040808100d22060808220208082a040809" +
	"100e22060809220208092a04080a100f2206080a2202080a3200320477616c6c3206" +
	"6379636c65733205697373756532036f70733205636f756e74320a636c6173733a66" +
	"616464320c73746167653a6b65726e656c320f6d6574686f643a6c2d6c7574286929" +
	"3206666e3a73696e320874656e616e743a61320a636c6173733a6d72616d320c7374" +
	"6167653a70686173653132146d6574686f643a66757365643a736f66746d6178320a" +
	"666e3a70726f6772616d320874656e616e743a2d488080a8b1e39fe7cb1750809" +
	"4ebdc03"

func TestPprofByteStable(t *testing.T) {
	p := goldenProfile()
	a := p.writeProto()
	b := p.writeProto()
	if !bytes.Equal(a, b) {
		t.Fatal("writeProto is not deterministic")
	}
	if got := hex.EncodeToString(a); got != pprofGolden {
		t.Fatalf("pprof encoding drifted:\n got  %s\n want %s", got, pprofGolden)
	}
}

// protoField is one decoded top-level field.
type protoField struct {
	num  int
	wire int
	uval uint64
	data []byte
}

func parseVarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("truncated varint")
}

func parseMessage(b []byte) ([]protoField, error) {
	var out []protoField
	for len(b) > 0 {
		key, n, err := parseVarint(b)
		if err != nil {
			return nil, err
		}
		b = b[n:]
		f := protoField{num: int(key >> 3), wire: int(key & 7)}
		switch f.wire {
		case 0:
			v, n, err := parseVarint(b)
			if err != nil {
				return nil, err
			}
			f.uval = v
			b = b[n:]
		case 2:
			l, n, err := parseVarint(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			if uint64(len(b)) < l {
				return nil, fmt.Errorf("field %d: length %d overruns buffer", f.num, l)
			}
			f.data = b[:l]
			b = b[l:]
		default:
			return nil, fmt.Errorf("unexpected wire type %d", f.wire)
		}
		out = append(out, f)
	}
	return out, nil
}

func parsePacked(b []byte) ([]uint64, error) {
	var out []uint64
	for len(b) > 0 {
		v, n, err := parseVarint(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = b[n:]
	}
	return out, nil
}

// TestPprofFraming walks the varint/length-delimited structure and
// checks the profile.proto invariants the external readers rely on.
func TestPprofFraming(t *testing.T) {
	p := goldenProfile()
	fields, err := parseMessage(p.writeProto())
	if err != nil {
		t.Fatalf("framing broken: %v", err)
	}
	counts := map[int]int{}
	var strtab []string
	var samples [][]protoField
	for _, f := range fields {
		counts[f.num]++
		switch f.num {
		case 1, 2, 4, 5, 9, 10: // known message/scalar fields
		case 6:
			strtab = append(strtab, string(f.data))
			continue
		default:
			t.Fatalf("unknown top-level field %d", f.num)
		}
		if f.num == 2 {
			sf, err := parseMessage(f.data)
			if err != nil {
				t.Fatalf("sample framing: %v", err)
			}
			samples = append(samples, sf)
		}
	}
	if counts[1] != 3 {
		t.Fatalf("want 3 sample_types, got %d", counts[1])
	}
	if counts[2] != len(p.Frames) {
		t.Fatalf("want %d samples, got %d", len(p.Frames), counts[2])
	}
	if counts[4] != counts[5] {
		t.Fatalf("locations (%d) and functions (%d) must pair 1:1", counts[4], counts[5])
	}
	if len(strtab) == 0 || strtab[0] != "" {
		t.Fatal("string table must start with the empty string")
	}
	for i, sf := range samples {
		var locs, vals []uint64
		for _, f := range sf {
			switch f.num {
			case 1:
				locs, _ = parsePacked(f.data)
			case 2:
				vals, _ = parsePacked(f.data)
			}
		}
		if len(locs) != 5 {
			t.Fatalf("sample %d: want 5-deep stack, got %d", i, len(locs))
		}
		want := []uint64{p.Frames[i].WallCycles, p.Frames[i].Cycles, p.Frames[i].Ops}
		if len(vals) != 3 || vals[0] != want[0] || vals[1] != want[1] || vals[2] != want[2] {
			t.Fatalf("sample %d values = %v, want %v", i, vals, want)
		}
	}
	// Every label string made it into the table with its level prefix.
	has := func(s string) bool {
		for _, v := range strtab {
			if v == s {
				return true
			}
		}
		return false
	}
	for _, s := range []string{"wall", "issue", "ops", "cycles", "count",
		"tenant:a", "tenant:-", "fn:sin", "fn:program", "method:fused:softmax",
		"stage:kernel", "stage:phase1", "class:fadd", "class:mram"} {
		if !has(s) {
			t.Fatalf("string table missing %q (have %q)", s, strtab)
		}
	}
}

func TestPprofGzipRoundTrip(t *testing.T) {
	p := goldenProfile()
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, p.writeProto()) {
		t.Fatal("gzip payload differs from the raw encoding")
	}
}
