package profiler

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Source is one named collector behind an export endpoint — a bare
// engine exposes one, a cluster one per replica (merged for profiles,
// listed side by side for heatmaps).
type Source struct {
	Name string
	C    *Collector
}

// maxProfileWindow bounds ?seconds=N so a client cannot park a
// handler goroutine for hours.
const maxProfileWindow = 5 * time.Minute

// ProfileHandler serves /debug/profile over the given sources.
//
//	?seconds=N   profile the next N seconds (delta of two snapshots);
//	             absent or 0: cumulative since start
//	?format=json|folded|pprof   (default json)
func ProfileHandler(sources func() []Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := func() Profile {
			ps := make([]Profile, 0, 4)
			for _, s := range sources() {
				if s.C != nil {
					ps = append(ps, s.C.Snapshot())
				}
			}
			if len(ps) == 1 {
				return ps[0]
			}
			return Merge(ps...)
		}
		var prof Profile
		if secs, _ := strconv.ParseFloat(r.URL.Query().Get("seconds"), 64); secs > 0 {
			d := time.Duration(secs * float64(time.Second))
			if d > maxProfileWindow {
				d = maxProfileWindow
			}
			before := snap()
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				http.Error(w, "client went away", http.StatusRequestTimeout)
				return
			}
			prof = Sub(snap(), before)
		} else {
			prof = snap()
		}
		switch r.URL.Query().Get("format") {
		case "folded":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = prof.WriteFolded(w)
		case "pprof":
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="profile.pb.gz"`)
			_ = prof.WritePprof(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(prof)
		}
	})
}

// heatmapSource is one source's heatmap in the JSON export.
type heatmapSource struct {
	Name string `json:"name"`
	Heatmap
}

// HeatmapHandler serves /debug/heatmap: per-DPU utilization
// decompositions per source (one per replica under a cluster),
// cumulative plus the retained windows.
func HeatmapHandler(sources func() []Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := struct {
			Sources []heatmapSource `json:"sources"`
		}{Sources: []heatmapSource{}}
		for _, s := range sources() {
			if s.C == nil {
				continue
			}
			out.Sources = append(out.Sources, heatmapSource{Name: s.Name, Heatmap: s.C.HeatmapSnapshot()})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}
