package profiler

import (
	"strings"
	"sync"
	"testing"
	"time"

	"transpimlib/internal/pimsim"
)

// synthProfile builds a two-core launch with known counters.
func synthProfile() pimsim.LaunchProfile {
	var c0, c1 pimsim.Counters
	c0.Ops[pimsim.OpFAdd] = 100
	c0.Cycles[pimsim.OpFAdd] = 500
	c0.Ops[pimsim.OpWRAM] = 40
	c0.Cycles[pimsim.OpWRAM] = 160
	c1.Ops[pimsim.OpFMul] = 30
	c1.Cycles[pimsim.OpFMul] = 210
	return pimsim.LaunchProfile{Cores: []pimsim.CoreProfile{
		{DPU: 0, Tasklets: 16, IssueCycles: 660, DMACycles: 900, Counters: c0},
		{DPU: 1, Tasklets: 16, IssueCycles: 210, DMACycles: 100, Counters: c1},
	}}
}

func launchWall(prof pimsim.LaunchProfile) uint64 {
	var mx uint64
	for _, c := range prof.Cores {
		if w := pimsim.ClosedFormCycles(c.IssueCycles, c.DMACycles, c.Tasklets); w > mx {
			mx = w
		}
	}
	return mx
}

func sumProfile(p Profile) (ops, cycles, wall uint64) {
	for _, f := range p.Frames {
		ops += f.Ops
		cycles += f.Cycles
		wall += f.WallCycles
	}
	return
}

// The core exactness contract: every split is integer prefix
// partitioning, so ops, per-class cycles and wall cycles each sum
// back to the launch totals with zero remainder.
func TestObserveAttributionExact(t *testing.T) {
	c := New(Config{Enabled: true}, 2)
	prof := synthProfile()
	lc := &LaunchContext{
		Function: "sin", Method: "l-lut(i)", Stage: "kernel",
		Segs: []Seg{{Tenant: "a", N: 7}, {Tenant: "b", N: 13}, {Tenant: "a", N: 3}},
		N:    23,
	}
	c.Observe(lc, prof)

	p := c.Snapshot()
	wall := launchWall(prof)
	tot := prof.Total()
	ops, cycles, gotWall := sumProfile(p)
	if gotWall != wall {
		t.Fatalf("wall sum = %d, want %d", gotWall, wall)
	}
	if cycles != tot.TotalCycles() {
		t.Fatalf("class-cycle sum = %d, want %d", cycles, tot.TotalCycles())
	}
	if ops != tot.TotalOps() {
		t.Fatalf("ops sum = %d, want %d", ops, tot.TotalOps())
	}
	if p.TotalWall != wall || p.TotalCycles != tot.TotalCycles() || p.TotalOps != tot.TotalOps() {
		t.Fatalf("profile totals %d/%d/%d diverge from frame sums", p.TotalWall, p.TotalCycles, p.TotalOps)
	}

	// Per-tenant wall shares follow the ledger's prefix rule over the
	// segment order: cum ∈ {7, 20, 23} of 23.
	wantA := wall*7/23 + (wall - wall*20/23)
	wantB := wall*20/23 - wall*7/23
	var gotA, gotB uint64
	for _, f := range p.Frames {
		switch f.Tenant {
		case "a":
			gotA += f.WallCycles
		case "b":
			gotB += f.WallCycles
		}
	}
	if gotA != wantA || gotB != wantB {
		t.Fatalf("tenant shares a=%d b=%d, want a=%d b=%d", gotA, gotB, wantA, wantB)
	}

	// Every frame carries the full label stack.
	for _, f := range p.Frames {
		if f.Function != "sin" || f.Method != "l-lut(i)" || f.Stage != "kernel" {
			t.Fatalf("frame labels lost: %+v", f)
		}
	}
}

// A launch that charged no per-class cycles still has its wall
// attributed (to ctrl), so totals keep reconciling.
func TestObserveNoClassCyclesFallsToCtrl(t *testing.T) {
	c := New(Config{Enabled: true}, 1)
	prof := pimsim.LaunchProfile{Cores: []pimsim.CoreProfile{
		{DPU: 0, Tasklets: 16, IssueCycles: 100, DMACycles: 0},
	}}
	lc := &LaunchContext{Function: "f", Method: "m", Stage: "kernel",
		Segs: []Seg{{Tenant: "t", N: 4}}, N: 4}
	c.Observe(lc, prof)
	p := c.Snapshot()
	wall := launchWall(prof)
	if len(p.Frames) != 1 || p.Frames[0].Class != pimsim.OpCtrl.String() || p.Frames[0].WallCycles != wall {
		t.Fatalf("want single ctrl frame with wall %d, got %+v", wall, p.Frames)
	}
}

func TestHeatmapDecompositionSumsToWall(t *testing.T) {
	c := New(Config{Enabled: true}, 2)
	prof := synthProfile()
	lc := &LaunchContext{Function: "f", Method: "m", Stage: "kernel",
		Segs: []Seg{{Tenant: "", N: 8}}, N: 8}
	c.Observe(lc, prof)
	c.Observe(lc, prof)
	wall := 2 * launchWall(prof)
	h := c.HeatmapSnapshot()
	if len(h.DPUs) != 2 {
		t.Fatalf("want 2 dpu rows, got %d", len(h.DPUs))
	}
	for _, d := range h.DPUs {
		if d.WallCycles != wall {
			t.Fatalf("dpu %d wall = %d, want %d", d.DPU, d.WallCycles, wall)
		}
		if d.IssueCycles+d.DMACycles+d.IdleCycles != d.WallCycles {
			t.Fatalf("dpu %d: issue %d + dma %d + idle %d != wall %d",
				d.DPU, d.IssueCycles, d.DMACycles, d.IdleCycles, d.WallCycles)
		}
		if d.Launches != 2 {
			t.Fatalf("dpu %d launches = %d, want 2", d.DPU, d.Launches)
		}
	}
}

// The window ring overwrites oldest-first and the snapshot returns
// windows in chronological order, Timeline-style.
func TestHeatmapWindowRingWraparound(t *testing.T) {
	c := New(Config{Enabled: true, Windows: 3}, 1)
	lc := &LaunchContext{Function: "f", Method: "m", Stage: "kernel",
		Segs: []Seg{{Tenant: "", N: 1}}, N: 1}
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		// i+1 launches in window i → per-window launch delta = i+1.
		for j := 0; j <= i; j++ {
			c.Observe(lc, pimsim.LaunchProfile{Cores: []pimsim.CoreProfile{
				{DPU: 0, Tasklets: 16, IssueCycles: 10},
			}})
		}
		c.Tick(base.Add(time.Duration(i+1) * time.Second))
	}
	h := c.HeatmapSnapshot()
	if len(h.Windows) != 3 {
		t.Fatalf("want 3 retained windows, got %d", len(h.Windows))
	}
	for i, w := range h.Windows {
		wantLaunches := uint64(i + 3) // windows 2,3,4 survive
		if w.DPUs[0].Launches != wantLaunches {
			t.Fatalf("window %d launches = %d, want %d", i, w.DPUs[0].Launches, wantLaunches)
		}
		wantEnd := base.Add(time.Duration(i+3) * time.Second)
		if !w.End.Equal(wantEnd) {
			t.Fatalf("window %d end = %v, want %v", i, w.End, wantEnd)
		}
	}
}

func TestMergeSumsAndDiffOfIdenticalIsEmpty(t *testing.T) {
	c := New(Config{Enabled: true}, 2)
	lc := &LaunchContext{Function: "sin", Method: "l-lut", Stage: "kernel",
		Segs: []Seg{{Tenant: "a", N: 5}}, N: 5}
	c.Observe(lc, synthProfile())
	p := c.Snapshot()

	m := Merge(p, p)
	if m.TotalWall != 2*p.TotalWall || m.TotalOps != 2*p.TotalOps {
		t.Fatalf("merge totals %d/%d, want doubled %d/%d", m.TotalWall, m.TotalOps, 2*p.TotalWall, 2*p.TotalOps)
	}
	if len(m.Frames) != len(p.Frames) {
		t.Fatalf("merge frame count %d, want %d", len(m.Frames), len(p.Frames))
	}

	if d := Diff(p, p); len(d) != 0 {
		t.Fatalf("diff of identical profiles = %d deltas, want 0", len(d))
	}

	// A doubled profile diffs with +100% growth everywhere.
	for _, d := range Diff(p, m) {
		if d.Growth < 0.999 || d.Growth > 1.001 {
			t.Fatalf("doubled profile growth = %v, want 1.0", d.Growth)
		}
	}
}

func TestSubIsIntervalDelta(t *testing.T) {
	c := New(Config{Enabled: true}, 2)
	lc := &LaunchContext{Function: "sin", Method: "l-lut", Stage: "kernel",
		Segs: []Seg{{Tenant: "a", N: 5}}, N: 5}
	c.Observe(lc, synthProfile())
	before := c.Snapshot()
	c.Observe(lc, synthProfile())
	delta := Sub(c.Snapshot(), before)
	if delta.TotalWall != before.TotalWall {
		t.Fatalf("interval wall = %d, want %d", delta.TotalWall, before.TotalWall)
	}
	if delta.Launches != 1 {
		t.Fatalf("interval launches = %d, want 1", delta.Launches)
	}
}

func TestRollupCollapsesTenantAndStage(t *testing.T) {
	c := New(Config{Enabled: true}, 2)
	for _, tn := range []string{"a", "b"} {
		lc := &LaunchContext{Function: "sin", Method: "l-lut", Stage: "kernel",
			Segs: []Seg{{Tenant: tn, N: 5}}, N: 5}
		c.Observe(lc, synthProfile())
		lc.Stage = "remap"
		c.Observe(lc, synthProfile())
	}
	p := c.Snapshot()
	r := Rollup(p)
	if r.TotalWall != p.TotalWall {
		t.Fatalf("rollup wall %d != profile wall %d", r.TotalWall, p.TotalWall)
	}
	for _, f := range r.Frames {
		if f.Tenant != "" || f.Stage != "" {
			t.Fatalf("rollup kept tenant/stage: %+v", f)
		}
	}
	if len(r.Frames) >= len(p.Frames) {
		t.Fatalf("rollup did not collapse: %d vs %d frames", len(r.Frames), len(p.Frames))
	}
}

func TestMaxFramesOverflow(t *testing.T) {
	c := New(Config{Enabled: true, MaxFrames: 2}, 1)
	prof := pimsim.LaunchProfile{Cores: []pimsim.CoreProfile{
		{DPU: 0, Tasklets: 16, IssueCycles: 100},
	}}
	for _, fn := range []string{"a", "b", "c", "d"} {
		lc := &LaunchContext{Function: fn, Method: "m", Stage: "kernel",
			Segs: []Seg{{Tenant: "", N: 1}}, N: 1}
		c.Observe(lc, prof)
	}
	p := c.Snapshot()
	if len(p.Frames) != 3 { // 2 real + 1 overflow
		t.Fatalf("want 2 frames + overflow, got %d", len(p.Frames))
	}
	wall := launchWall(prof)
	if p.TotalWall != 4*wall {
		t.Fatalf("overflow lost cycles: total %d, want %d", p.TotalWall, 4*wall)
	}
	var hasOverflow bool
	for _, f := range p.Frames {
		if f.Function == "~other" {
			hasOverflow = true
			if f.WallCycles != 2*wall {
				t.Fatalf("overflow wall = %d, want %d", f.WallCycles, 2*wall)
			}
		}
	}
	if !hasOverflow {
		t.Fatal("no overflow frame emitted")
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	c := New(Config{Enabled: true}, 2)
	lc := &LaunchContext{Function: "sin", Method: "l-lut(i)", Stage: "kernel",
		Segs: []Seg{{Tenant: "", N: 5}}, N: 5}
	c.Observe(lc, synthProfile())
	var sb strings.Builder
	if err := c.Snapshot().WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		parts := strings.Split(line, " ")
		if len(parts) != 2 {
			t.Fatalf("folded line %q: want `stack value`", line)
		}
		if got := strings.Count(parts[0], ";"); got != 4 {
			t.Fatalf("folded stack %q: want 5 levels, got %d", parts[0], got+1)
		}
		if !strings.HasPrefix(parts[0], "-;sin;l-lut(i);kernel;") {
			t.Fatalf("unexpected stack %q", parts[0])
		}
	}
}

// Concurrent Observe from several goroutines (the multi-shard case)
// keeps exact totals — run under -race.
func TestObserveConcurrent(t *testing.T) {
	c := New(Config{Enabled: true}, 2)
	prof := synthProfile()
	wall := launchWall(prof)
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lc := &LaunchContext{Function: "sin", Method: "l-lut", Stage: "kernel",
				Segs: []Seg{{Tenant: "t", N: 3}, {Tenant: "u", N: 5}}, N: 8}
			for i := 0; i < per; i++ {
				c.Observe(lc, prof)
				if i%10 == 0 {
					c.Tick(time.Now())
				}
			}
		}(g)
	}
	wg.Wait()
	p := c.Snapshot()
	if want := uint64(goroutines*per) * wall; p.TotalWall != want {
		t.Fatalf("concurrent wall total = %d, want %d", p.TotalWall, want)
	}
	if c.launches.Load() != goroutines*per {
		t.Fatalf("launches = %d, want %d", c.launches.Load(), goroutines*per)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Observe(&LaunchContext{}, pimsim.LaunchProfile{})
	c.Tick(time.Now())
	c.Close()
	if p := c.Snapshot(); len(p.Frames) != 0 {
		t.Fatal("nil collector produced frames")
	}
	if h := c.HeatmapSnapshot(); len(h.DPUs) != 0 {
		t.Fatal("nil collector produced heatmap rows")
	}
}

func TestStartCloseSealsPartialWindow(t *testing.T) {
	c := New(Config{Enabled: true, Window: time.Hour}, 1)
	c.Start()
	lc := &LaunchContext{Function: "f", Method: "m", Stage: "kernel",
		Segs: []Seg{{Tenant: "", N: 1}}, N: 1}
	c.Observe(lc, pimsim.LaunchProfile{Cores: []pimsim.CoreProfile{
		{DPU: 0, Tasklets: 16, IssueCycles: 10},
	}})
	c.Close()
	h := c.HeatmapSnapshot()
	if len(h.Windows) == 0 || h.Windows[len(h.Windows)-1].DPUs[0].Launches != 1 {
		t.Fatalf("Close did not seal the partial window: %+v", h.Windows)
	}
	c.Close() // idempotent
}
