package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloat64RoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.5, math.Pi, 2 * math.Pi, -math.Pi, 7.5, -7.5, 1e-9}
	for _, f := range cases {
		q := FromFloat64(f)
		got := q.Float64()
		if math.Abs(got-f) > 1.0/(1<<FracBits) {
			t.Errorf("FromFloat64(%v).Float64() = %v, want within 2^-28", f, got)
		}
	}
}

func TestFromFloat64Saturates(t *testing.T) {
	if got := FromFloat64(100); got != Max {
		t.Errorf("FromFloat64(100) = %v, want Max", got)
	}
	if got := FromFloat64(-100); got != Min {
		t.Errorf("FromFloat64(-100) = %v, want Min", got)
	}
	if got := FromFloat64(8.0); got != Max {
		t.Errorf("FromFloat64(8.0) = %v, want Max (8.0 is out of range)", got)
	}
	if got := FromFloat64(-8.0); got != Min {
		t.Errorf("FromFloat64(-8.0) = %v, want Min", got)
	}
}

func TestFromInt(t *testing.T) {
	for i := -8; i < 8; i++ {
		q := FromInt(i)
		if q.Float64() != float64(i) {
			t.Errorf("FromInt(%d).Float64() = %v", i, q.Float64())
		}
	}
	if FromInt(8) != Max {
		t.Errorf("FromInt(8) should saturate to Max")
	}
	if FromInt(-9) != Min {
		t.Errorf("FromInt(-9) should saturate to Min")
	}
}

func TestOneConstant(t *testing.T) {
	if One.Float64() != 1.0 {
		t.Fatalf("One.Float64() = %v", One.Float64())
	}
}

func TestConstants(t *testing.T) {
	check := func(name string, q Q3_28, want float64) {
		t.Helper()
		if math.Abs(q.Float64()-want) > 1e-8 {
			t.Errorf("%s = %v, want %v", name, q.Float64(), want)
		}
	}
	check("Pi", Pi, math.Pi)
	check("TwoPi", TwoPi, 2*math.Pi)
	check("HalfPi", HalfPi, math.Pi/2)
	check("Ln2", Ln2, math.Ln2)
	check("E", E, math.E)
}

func TestAddSub(t *testing.T) {
	a := FromFloat64(1.25)
	b := FromFloat64(2.5)
	if got := a.Add(b).Float64(); got != 3.75 {
		t.Errorf("1.25+2.5 = %v", got)
	}
	if got := b.Sub(a).Float64(); got != 1.25 {
		t.Errorf("2.5-1.25 = %v", got)
	}
}

func TestAddSatSaturates(t *testing.T) {
	if got := Max.AddSat(One); got != Max {
		t.Errorf("Max+1 = %v, want Max", got)
	}
	if got := Min.SubSat(One); got != Min {
		t.Errorf("Min-1 = %v, want Min", got)
	}
}

func TestMul(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{1, 1, 1},
		{2, 3, 6},
		{0.5, 0.5, 0.25},
		{-2, 3, -6},
		{-0.5, -0.5, 0.25},
		{math.Pi, 2, 2 * math.Pi},
	}
	for _, c := range cases {
		got := FromFloat64(c.a).Mul(FromFloat64(c.b)).Float64()
		if math.Abs(got-c.want) > 2.0/(1<<FracBits) {
			t.Errorf("%v*%v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMulRoundCloserThanTruncate(t *testing.T) {
	// For positive operands, MulRound error must be at most half of
	// Mul's worst-case truncation error.
	a := FromFloat64(1.0 / 3.0)
	b := FromFloat64(1.0 / 7.0)
	want := (1.0 / 3.0) * (1.0 / 7.0)
	errTrunc := math.Abs(a.Mul(b).Float64() - want)
	errRound := math.Abs(a.MulRound(b).Float64() - want)
	if errRound > errTrunc+1e-12 {
		t.Errorf("MulRound error %v > Mul error %v", errRound, errTrunc)
	}
	if errRound > 0.5/(1<<FracBits)+1e-12 {
		t.Errorf("MulRound error %v exceeds half-ULP bound", errRound)
	}
}

func TestDiv(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{6, 3, 2},
		{1, 2, 0.5},
		{-6, 3, -2},
		{1, 3, 1.0 / 3.0},
	}
	for _, c := range cases {
		got := FromFloat64(c.a).Div(FromFloat64(c.b)).Float64()
		if math.Abs(got-c.want) > 2.0/(1<<FracBits) {
			t.Errorf("%v/%v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDivByZero(t *testing.T) {
	if got := One.Div(0); got != Max {
		t.Errorf("1/0 = %v, want Max", got)
	}
	if got := One.Neg().Div(0); got != Min {
		t.Errorf("-1/0 = %v, want Min", got)
	}
	if got := Q3_28(0).Div(0); got != Max {
		t.Errorf("0/0 = %v, want Max", got)
	}
}

func TestShifts(t *testing.T) {
	q := FromFloat64(1.5)
	if got := q.Shl(1).Float64(); got != 3.0 {
		t.Errorf("1.5<<1 = %v", got)
	}
	if got := q.Shr(1).Float64(); got != 0.75 {
		t.Errorf("1.5>>1 = %v", got)
	}
	neg := FromFloat64(-1.0)
	if got := neg.Shr(1).Float64(); got != -0.5 {
		t.Errorf("-1.0>>1 = %v (arithmetic shift expected)", got)
	}
}

func TestNegAbs(t *testing.T) {
	q := FromFloat64(2.5)
	if got := q.Neg().Float64(); got != -2.5 {
		t.Errorf("Neg(2.5) = %v", got)
	}
	if got := q.Neg().Abs().Float64(); got != 2.5 {
		t.Errorf("Abs(-2.5) = %v", got)
	}
	if got := Min.Abs(); got != Max {
		t.Errorf("Abs(Min) = %v, want Max", got)
	}
}

func TestFloor(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1.75, 1}, {1.0, 1}, {0.25, 0}, {-0.25, -1}, {-1.75, -2}, {7.9, 7},
	}
	for _, c := range cases {
		if got := FromFloat64(c.in).Floor().Float64(); got != c.want {
			t.Errorf("Floor(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRound(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1.4, 1}, {1.6, 2}, {-1.4, -1}, {-1.6, -2}, {2.5, 3}, {-2.5, -3}, {0, 0},
	}
	for _, c := range cases {
		if got := FromFloat64(c.in).Round().Float64(); got != c.want {
			t.Errorf("Round(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIntFrac(t *testing.T) {
	cases := []struct {
		in       float64
		wantInt  int
		wantFrac float64
	}{
		{3.25, 3, 0.25},
		{-3.25, -3, -0.25},
		{0.75, 0, 0.75},
		{-0.75, 0, -0.75},
		{5, 5, 0},
	}
	for _, c := range cases {
		q := FromFloat64(c.in)
		if got := q.Int(); got != c.wantInt {
			t.Errorf("Int(%v) = %d, want %d", c.in, got, c.wantInt)
		}
		if got := q.Frac().Float64(); math.Abs(got-c.wantFrac) > 1e-8 {
			t.Errorf("Frac(%v) = %v, want %v", c.in, got, c.wantFrac)
		}
	}
}

func TestCmp(t *testing.T) {
	a, b := FromFloat64(1), FromFloat64(2)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Errorf("Cmp ordering wrong: %d %d %d", a.Cmp(b), b.Cmp(a), a.Cmp(a))
	}
}

func TestLerp(t *testing.T) {
	a, b := FromFloat64(2), FromFloat64(4)
	if got := Lerp(a, b, FromFloat64(0.5)).Float64(); math.Abs(got-3) > 1e-8 {
		t.Errorf("Lerp midpoint = %v, want 3", got)
	}
	if got := Lerp(a, b, 0).Float64(); got != 2 {
		t.Errorf("Lerp(.,.,0) = %v, want 2", got)
	}
	if got := Lerp(a, b, One).Float64(); math.Abs(got-4) > 1e-8 {
		t.Errorf("Lerp(.,.,1) = %v, want 4", got)
	}
}

// --- property-based tests ---

// smallFloat generates arguments whose sum/product stays in range.
func inRange(f float64) bool { return f > -2.8 && f < 2.8 }

func TestPropAddCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 2.8), math.Mod(b, 2.8)
		x, y := FromFloat64(a), FromFloat64(b)
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddSubInverse(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 2.8), math.Mod(b, 2.8)
		x, y := FromFloat64(a), FromFloat64(b)
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 2.8), math.Mod(b, 2.8)
		if !inRange(a) || !inRange(b) {
			return true
		}
		x, y := FromFloat64(a), FromFloat64(b)
		d := x.Mul(y) - y.Mul(x)
		return d >= -1 && d <= 1 // truncation order may differ by 1 ulp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulMatchesFloat(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 2.8), math.Mod(b, 2.8)
		if !inRange(a) || !inRange(b) {
			return true
		}
		x, y := FromFloat64(a), FromFloat64(b)
		got := x.Mul(y).Float64()
		want := x.Float64() * y.Float64()
		return math.Abs(got-want) <= 2.0/(1<<FracBits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropRoundTrip(t *testing.T) {
	f := func(a float64) bool {
		a = math.Mod(a, 7.9)
		q := FromFloat64(a)
		return math.Abs(q.Float64()-a) <= 0.5/(1<<FracBits)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFloorLeqRound(t *testing.T) {
	f := func(a float64) bool {
		a = math.Mod(a, 6.9)
		q := FromFloat64(a)
		return q.Floor() <= q && q.Floor() > q-One
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIntPlusFrac(t *testing.T) {
	f := func(a float64) bool {
		a = math.Mod(a, 7.4)
		q := FromFloat64(a)
		return FromInt(q.Int()).Add(q.Frac()) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropLerpBounded(t *testing.T) {
	f := func(a, b, tt float64) bool {
		a, b = math.Mod(a, 2.8), math.Mod(b, 2.8)
		tt = math.Abs(math.Mod(tt, 1.0))
		lo, hi := FromFloat64(a), FromFloat64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Lerp(lo, hi, FromFloat64(tt))
		return got >= lo-2 && got <= hi+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
