// Package fixed implements the Q3.28 signed fixed-point format used by
// TransPimLib's fixed-point method variants.
//
// The format matches Section 3.1 of the paper: 1 sign bit, 3 integer
// bits (enough to represent values up to 2π) and 28 fractional bits,
// stored in a two's-complement int32. The representable range is
// [-8, 8) with a resolution of 2⁻²⁸ ≈ 3.7e-9, which the paper notes is
// sufficient to match the accuracy attainable with float32 values.
//
// All operations are pure integer arithmetic so that, on a PIM core
// without native floating point, they map to cheap native instructions
// (except multiplication, which is itself emulated on UPMEM).
package fixed

import "math"

// FracBits is the number of fractional bits in the Q3.28 format.
const FracBits = 28

// One is the fixed-point representation of 1.0.
const One Q3_28 = 1 << FracBits

// Max and Min bound the representable range of Q3.28.
const (
	Max Q3_28 = math.MaxInt32 // ≈ 7.99999999
	Min Q3_28 = math.MinInt32 // -8.0
)

// Q3_28 is a signed fixed-point number with 3 integer bits and 28
// fractional bits. The zero value represents 0.0.
type Q3_28 int32

// Useful constants in Q3.28.
var (
	Pi     = FromFloat64(math.Pi)
	TwoPi  = FromFloat64(2 * math.Pi)
	HalfPi = FromFloat64(math.Pi / 2)
	Ln2    = FromFloat64(math.Ln2)
	E      = FromFloat64(math.E)
)

// FromFloat64 converts a float64 to Q3.28, rounding to nearest and
// saturating at the representable range.
func FromFloat64(f float64) Q3_28 {
	scaled := f * (1 << FracBits)
	switch {
	case scaled >= float64(math.MaxInt32):
		return Max
	case scaled <= float64(math.MinInt32):
		return Min
	}
	return Q3_28(math.RoundToEven(scaled))
}

// FromFloat32 converts a float32 to Q3.28 with the same rounding and
// saturation rules as FromFloat64.
func FromFloat32(f float32) Q3_28 { return FromFloat64(float64(f)) }

// FromInt converts a small integer to Q3.28, saturating out-of-range
// values.
func FromInt(i int) Q3_28 {
	if i >= 8 {
		return Max
	}
	if i < -8 {
		return Min
	}
	return Q3_28(i) << FracBits
}

// Float64 converts q to float64. The conversion is exact: every Q3.28
// value is representable as a float64.
func (q Q3_28) Float64() float64 { return float64(q) / (1 << FracBits) }

// Float32 converts q to the nearest float32.
func (q Q3_28) Float32() float32 { return float32(q.Float64()) }

// Add returns q+r with wrap-around two's-complement semantics, exactly
// as a 32-bit integer add instruction behaves on the PIM core.
func (q Q3_28) Add(r Q3_28) Q3_28 { return q + r }

// Sub returns q-r with wrap-around semantics.
func (q Q3_28) Sub(r Q3_28) Q3_28 { return q - r }

// AddSat returns q+r, saturating instead of wrapping on overflow.
func (q Q3_28) AddSat(r Q3_28) Q3_28 {
	s := int64(q) + int64(r)
	return saturate(s)
}

// SubSat returns q-r, saturating instead of wrapping on overflow.
func (q Q3_28) SubSat(r Q3_28) Q3_28 {
	s := int64(q) - int64(r)
	return saturate(s)
}

// Mul returns the fixed-point product q·r, computed with a 64-bit
// intermediate and truncated toward negative infinity (arithmetic
// right shift), the behaviour of the shift-based sequence a PIM core
// executes.
func (q Q3_28) Mul(r Q3_28) Q3_28 {
	return Q3_28((int64(q) * int64(r)) >> FracBits)
}

// MulRound returns the fixed-point product q·r rounded to nearest.
func (q Q3_28) MulRound(r Q3_28) Q3_28 {
	p := int64(q) * int64(r)
	p += 1 << (FracBits - 1)
	return Q3_28(p >> FracBits)
}

// Div returns q/r in fixed point. Division by zero saturates to Max or
// Min depending on the sign of q (and Max for 0/0).
func (q Q3_28) Div(r Q3_28) Q3_28 {
	if r == 0 {
		if q < 0 {
			return Min
		}
		return Max
	}
	return saturate((int64(q) << FracBits) / int64(r))
}

// Shl returns q shifted left by n bits (multiplication by 2ⁿ) with
// wrap-around semantics. n must be in [0, 31].
func (q Q3_28) Shl(n uint) Q3_28 { return q << n }

// Shr returns q arithmetically shifted right by n bits (division by 2ⁿ
// rounding toward negative infinity). n must be in [0, 31].
func (q Q3_28) Shr(n uint) Q3_28 { return q >> n }

// Neg returns -q. Negating Min wraps to Min, matching two's-complement
// hardware.
func (q Q3_28) Neg() Q3_28 { return -q }

// Abs returns the absolute value of q. Abs(Min) saturates to Max.
func (q Q3_28) Abs() Q3_28 {
	if q == Min {
		return Max
	}
	if q < 0 {
		return -q
	}
	return q
}

// Floor returns the largest integer value (as Q3.28) not greater than q.
func (q Q3_28) Floor() Q3_28 { return q &^ (One - 1) }

// Round returns q rounded to the nearest integer value (ties away from
// zero), as Q3.28, saturating on overflow.
func (q Q3_28) Round() Q3_28 {
	if q >= 0 {
		return saturate((int64(q) + 1<<(FracBits-1)) &^ (1<<FracBits - 1))
	}
	return saturate(-((-int64(q) + 1<<(FracBits-1)) &^ (1<<FracBits - 1)))
}

// Int returns the integer part of q, truncated toward zero.
func (q Q3_28) Int() int {
	if q < 0 {
		return -int(-int64(q) >> FracBits)
	}
	return int(q >> FracBits)
}

// Frac returns the fractional part of q, with the same sign as q, such
// that FromInt(q.Int()) + q.Frac() == q for all non-saturating q.
func (q Q3_28) Frac() Q3_28 {
	return q - FromInt(q.Int())
}

// Cmp compares q and r, returning -1, 0 or +1.
func (q Q3_28) Cmp(r Q3_28) int {
	switch {
	case q < r:
		return -1
	case q > r:
		return 1
	}
	return 0
}

// Lerp returns the linear interpolation a + (b-a)·t where t is a
// fixed-point fraction in [0, 1]. It uses one fixed-point multiply.
func Lerp(a, b, t Q3_28) Q3_28 {
	return a + (b - a).Mul(t)
}

func saturate(v int64) Q3_28 {
	switch {
	case v > int64(Max):
		return Max
	case v < int64(Min):
		return Min
	}
	return Q3_28(v)
}
