package cordic

import (
	"math"
	"testing"
	"testing/quick"

	"transpimlib/internal/pimsim"
)

func ctx(t *testing.T) *pimsim.Ctx {
	t.Helper()
	return pimsim.NewDPU(0, pimsim.Default(), 16).NewCtx()
}

func TestFixedConversions(t *testing.T) {
	for _, f := range []float64{0, 1, -1, math.Pi, -2.75, 1e-9} {
		if got := ToFloat(FromFloat(f)); math.Abs(got-f) > 1.0/float64(One) {
			t.Errorf("round trip %v → %v", f, got)
		}
	}
	if One != 1<<40 {
		t.Errorf("One = %d", One)
	}
}

// Table 1 checks: rotation matrices / angles / stretching factors.

func TestTable1CircularAngles(t *testing.T) {
	tb := NewTables(Circular, 10)
	for i, s := range tb.Shifts {
		want := math.Atan(math.Pow(2, -float64(s)))
		if got := ToFloat(tb.Angles[i]); math.Abs(got-want) > 1e-10 {
			t.Errorf("circular φ_%d = %v, want atan(2^-%d) = %v", i, got, s, want)
		}
	}
	if tb.Shifts[0] != 0 || tb.Shifts[1] != 1 {
		t.Error("circular shifts must start at 0 and increment")
	}
}

func TestTable1CircularGain(t *testing.T) {
	tb := NewTables(Circular, 30)
	// K_∞ ≈ 1.6467602581210654
	if math.Abs(tb.GainF-1.646760258121) > 1e-9 {
		t.Errorf("circular gain = %v", tb.GainF)
	}
	if math.Abs(ToFloat(tb.InvGain)*tb.GainF-1) > 1e-9 {
		t.Errorf("InvGain inconsistent with GainF")
	}
}

func TestTable1HyperbolicAngles(t *testing.T) {
	tb := NewTables(Hyperbolic, 10)
	if tb.Shifts[0] != 1 {
		t.Fatal("hyperbolic iterations must start at index 1")
	}
	for i, s := range tb.Shifts {
		want := math.Atanh(math.Pow(2, -float64(s)))
		if got := ToFloat(tb.Angles[i]); math.Abs(got-want) > 1e-10 {
			t.Errorf("hyperbolic φ_%d = %v, want atanh(2^-%d) = %v", i, got, s, want)
		}
	}
}

func TestHyperbolicRepeatSchedule(t *testing.T) {
	tb := NewTables(Hyperbolic, 20)
	// Index 4 must appear twice (classic 4, 13, 40 repeat schedule).
	count := map[uint]int{}
	for _, s := range tb.Shifts {
		count[s]++
	}
	if count[4] != 2 {
		t.Errorf("shift 4 appears %d times, want 2", count[4])
	}
	if count[13] != 2 {
		t.Errorf("shift 13 appears %d times, want 2", count[13])
	}
	if count[3] != 1 || count[5] != 1 {
		t.Error("non-repeat indices must appear exactly once")
	}
}

func TestTable1LinearAngles(t *testing.T) {
	tb := NewTables(Linear, 8)
	for i, s := range tb.Shifts {
		if tb.Angles[i] != One>>s {
			t.Errorf("linear φ_%d = %d, want 2^-%d", i, tb.Angles[i], s)
		}
	}
	if tb.GainF != 1 || tb.InvGain != One {
		t.Error("linear mode has no stretching")
	}
}

func TestModeString(t *testing.T) {
	if Circular.String() != "circular" || Hyperbolic.String() != "hyperbolic" || Linear.String() != "linear" {
		t.Error("mode names wrong")
	}
}

func TestNewTablesClamping(t *testing.T) {
	if got := NewTables(Circular, 1000).Iterations(); got != MaxIterations {
		t.Errorf("iterations clamped to %d, want %d", got, MaxIterations)
	}
	if got := NewTables(Circular, -5).Iterations(); got != 1 {
		t.Errorf("negative iterations → %d, want 1", got)
	}
}

// Host rotation accuracy.

func TestRotateHostSinCos(t *testing.T) {
	tb := NewTables(Circular, 32)
	for theta := 0.0; theta <= math.Pi/2; theta += 0.05 {
		x, y, _ := tb.RotateHost(tb.InvGain, 0, FromFloat(theta))
		if got, want := ToFloat(y), math.Sin(theta); math.Abs(got-want) > 1e-8 {
			t.Errorf("sin(%v) = %v, want %v", theta, got, want)
		}
		if got, want := ToFloat(x), math.Cos(theta); math.Abs(got-want) > 1e-8 {
			t.Errorf("cos(%v) = %v, want %v", theta, got, want)
		}
	}
}

func TestRotateHostNegativeAngles(t *testing.T) {
	tb := NewTables(Circular, 32)
	x, y, _ := tb.RotateHost(tb.InvGain, 0, FromFloat(-0.7))
	if math.Abs(ToFloat(y)-math.Sin(-0.7)) > 1e-8 {
		t.Errorf("sin(-0.7) = %v", ToFloat(y))
	}
	if math.Abs(ToFloat(x)-math.Cos(-0.7)) > 1e-8 {
		t.Errorf("cos(-0.7) = %v", ToFloat(x))
	}
}

func TestErrorShrinksWithIterations(t *testing.T) {
	// The maximum error shrinks (roughly exponentially) with the number
	// of iterations (§2.2.1).
	theta := FromFloat(1.0)
	var prevErr float64 = math.Inf(1)
	for _, n := range []int{6, 12, 18, 24, 30} {
		tb := NewTables(Circular, n)
		_, y, _ := tb.RotateHost(tb.InvGain, 0, theta)
		err := math.Abs(ToFloat(y) - math.Sin(1.0))
		if err > prevErr*0.5 {
			t.Errorf("error at %d iterations (%v) not < half of previous (%v)", n, err, prevErr)
		}
		prevErr = err
	}
}

func TestVectorHostAtan(t *testing.T) {
	tb := NewTables(Circular, 32)
	for _, v := range []float64{0.1, 0.5, 1.0, -0.5} {
		_, _, z := tb.VectorHost(One, FromFloat(v), 0)
		if got, want := ToFloat(z), math.Atan(v); math.Abs(got-want) > 1e-8 {
			t.Errorf("atan(%v) = %v, want %v", v, got, want)
		}
	}
}

// Device kernels: correctness + cycle accounting.

func TestDeviceSinCos(t *testing.T) {
	c := ctx(t)
	tb := NewTables(Circular, 32)
	dev, err := tb.Load(c.DPU(), InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	for theta := 0.0; theta <= math.Pi/2; theta += 0.1 {
		sin, cos := dev.SinCos(c, FromFloat(theta))
		if math.Abs(ToFloat(sin)-math.Sin(theta)) > 1e-8 {
			t.Errorf("device sin(%v) = %v", theta, ToFloat(sin))
		}
		if math.Abs(ToFloat(cos)-math.Cos(theta)) > 1e-8 {
			t.Errorf("device cos(%v) = %v", theta, ToFloat(cos))
		}
	}
}

func TestDeviceMatchesHost(t *testing.T) {
	c := ctx(t)
	tb := NewTables(Circular, 24)
	dev, err := tb.Load(c.DPU(), InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw int32) bool {
		theta := int64(raw) % thetaMax
		if theta < 0 {
			theta = -theta
		}
		hx, hy, _ := tb.RotateHost(tb.InvGain, 0, theta)
		dsin, dcos := dev.SinCos(c, theta)
		return hx == dcos && hy == dsin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeviceCyclesGrowLinearly(t *testing.T) {
	cycles := func(iters int) uint64 {
		d := pimsim.NewDPU(0, pimsim.Default(), 16)
		tb := NewTables(Circular, iters)
		dev, err := tb.Load(d, InWRAM)
		if err != nil {
			t.Fatal(err)
		}
		dev.SinCos(d.NewCtx(), FromFloat(1.0))
		return d.Cycles()
	}
	c10, c20, c40 := cycles(10), cycles(20), cycles(40)
	if c20 <= c10 || c40 <= c20 {
		t.Fatalf("cycles must grow with iterations: %d %d %d", c10, c20, c40)
	}
	perIter := float64(c40-c20) / 20
	perIter2 := float64(c20-c10) / 10
	if math.Abs(perIter-perIter2) > 2 {
		t.Fatalf("per-iteration cost not linear: %v vs %v", perIter, perIter2)
	}
}

func TestDeviceMRAMPlacement(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	tb := NewTables(Circular, 32)
	dev, err := tb.Load(d, InMRAM)
	if err != nil {
		t.Fatal(err)
	}
	sin, _ := dev.SinCos(d.NewCtx(), FromFloat(0.5))
	if math.Abs(ToFloat(sin)-math.Sin(0.5)) > 1e-8 {
		t.Errorf("MRAM-placed tables give wrong sine: %v", ToFloat(sin))
	}
	if d.DMACycles() == 0 {
		t.Error("MRAM placement must exercise the DMA engine")
	}
	if dev.Placement() != InMRAM {
		t.Error("placement accessor wrong")
	}
}

func TestWRAMPlacementCapacity(t *testing.T) {
	// Loading an enormous head table into the 64-KB scratchpad must
	// fail (observation 4: scratchpad caps LUT size).
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	if _, err := NewLUTAssist(d, InWRAM, 16, 8); err == nil {
		t.Fatal("2^16-dense head table cannot fit in 64-KB WRAM")
	}
	if _, err := NewLUTAssist(d, InMRAM, 16, 8); err != nil {
		t.Fatalf("the same table must fit in MRAM: %v", err)
	}
}

func TestDeviceSinhCoshExp(t *testing.T) {
	c := ctx(t)
	tb := NewTables(Hyperbolic, 40)
	dev, err := tb.Load(c.DPU(), InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{-1.0, -0.3, 0, 0.4, 1.0} {
		sinh, cosh := dev.SinhCosh(c, FromFloat(theta))
		if math.Abs(ToFloat(sinh)-math.Sinh(theta)) > 1e-8 {
			t.Errorf("sinh(%v) = %v, want %v", theta, ToFloat(sinh), math.Sinh(theta))
		}
		if math.Abs(ToFloat(cosh)-math.Cosh(theta)) > 1e-8 {
			t.Errorf("cosh(%v) = %v, want %v", theta, ToFloat(cosh), math.Cosh(theta))
		}
		e := dev.Exp(c, FromFloat(theta))
		if math.Abs(ToFloat(e)-math.Exp(theta)) > 2e-8 {
			t.Errorf("exp(%v) = %v, want %v", theta, ToFloat(e), math.Exp(theta))
		}
	}
}

func TestDeviceLn(t *testing.T) {
	c := ctx(t)
	tb := NewTables(Hyperbolic, 40)
	dev, err := tb.Load(c.DPU(), InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0.5, 0.75, 1.0, 1.5, 2.0} {
		got := ToFloat(dev.Ln(c, FromFloat(w)))
		if math.Abs(got-math.Log(w)) > 2e-8 {
			t.Errorf("ln(%v) = %v, want %v", w, got, math.Log(w))
		}
	}
}

func TestDeviceSqrt(t *testing.T) {
	c := ctx(t)
	tb := NewTables(Hyperbolic, 40)
	dev, err := tb.Load(c.DPU(), InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0.25, 0.5, 1.0, 1.7, 2.0} {
		got := ToFloat(dev.Sqrt(c, FromFloat(w)))
		if math.Abs(got-math.Sqrt(w)) > 3e-8 {
			t.Errorf("sqrt(%v) = %v, want %v", w, got, math.Sqrt(w))
		}
	}
}

func TestDeviceLinearMulDiv(t *testing.T) {
	c := ctx(t)
	tb := NewTables(Linear, 40)
	dev, err := tb.Load(c.DPU(), InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	if got := ToFloat(dev.MulLinear(c, FromFloat(1.25), FromFloat(1.5))); math.Abs(got-1.875) > 1e-8 {
		t.Errorf("linear mul = %v, want 1.875", got)
	}
	if got := ToFloat(dev.DivLinear(c, FromFloat(1.2), FromFloat(1.6))); math.Abs(got-0.75) > 1e-8 {
		t.Errorf("linear div = %v, want 0.75", got)
	}
}

func TestMulFixHost(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{1, 1}, {2, 3}, {-2, 3}, {0.5, -0.5}, {1.646, 0.607},
	}
	for _, cse := range cases {
		got := ToFloat(MulFixHost(FromFloat(cse.a), FromFloat(cse.b)))
		if math.Abs(got-cse.a*cse.b) > 2.0/float64(One) {
			t.Errorf("mulFix(%v, %v) = %v", cse.a, cse.b, got)
		}
	}
}

func TestPropMulFixHost(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 1000)
		b = math.Mod(b, 1000)
		got := ToFloat(MulFixHost(FromFloat(a), FromFloat(b)))
		return math.Abs(got-a*b) < 2e-6 // |product| < 1e6, Q23.40 rounding
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// CORDIC+LUT hybrid.

func TestLUTAssistSinCos(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	la, err := NewLUTAssist(d, InWRAM, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	c := d.NewCtx()
	for theta := 0.0; theta <= math.Pi/2; theta += 0.07 {
		sin, cos := la.SinCos(c, FromFloat(theta))
		if math.Abs(ToFloat(sin)-math.Sin(theta)) > 1e-7 {
			t.Errorf("hybrid sin(%v) = %v, want %v", theta, ToFloat(sin), math.Sin(theta))
		}
		if math.Abs(ToFloat(cos)-math.Cos(theta)) > 1e-7 {
			t.Errorf("hybrid cos(%v) = %v, want %v", theta, ToFloat(cos), math.Cos(theta))
		}
	}
}

func TestLUTAssistFasterThanPureCORDIC(t *testing.T) {
	// Same accuracy target, fewer executed iterations → fewer cycles
	// (Fig. 5: CORDIC+LUT runs faster than pure CORDIC).
	run := func(f func(c *pimsim.Ctx, d *pimsim.DPU)) uint64 {
		d := pimsim.NewDPU(0, pimsim.Default(), 16)
		f(d.NewCtx(), d)
		return d.Cycles()
	}
	pure := run(func(c *pimsim.Ctx, d *pimsim.DPU) {
		tb := NewTables(Circular, 30)
		dev, _ := tb.Load(d, InWRAM)
		dev.SinCos(c, FromFloat(1.0))
	})
	hybrid := run(func(c *pimsim.Ctx, d *pimsim.DPU) {
		la, err := NewLUTAssist(d, InWRAM, 10, 21)
		if err != nil {
			t.Fatal(err)
		}
		la.SinCos(c, FromFloat(1.0))
	})
	if hybrid >= pure {
		t.Fatalf("hybrid (%d cycles) must beat pure CORDIC (%d cycles)", hybrid, pure)
	}
}

func TestLUTAssistAccuracyComparable(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	la, err := NewLUTAssist(d, InWRAM, 10, 22)
	if err != nil {
		t.Fatal(err)
	}
	c := d.NewCtx()
	var worst float64
	for theta := 0.0; theta <= math.Pi/2; theta += 0.003 {
		sin, _ := la.SinCos(c, FromFloat(theta))
		if e := math.Abs(ToFloat(sin) - math.Sin(theta)); e > worst {
			worst = e
		}
	}
	if worst > 1e-6 {
		t.Fatalf("hybrid max error %v too large", worst)
	}
}

func TestLUTAssistTableBytes(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	la, err := NewLUTAssist(d, InMRAM, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if la.TableBytes() <= 0 || la.TailIterations() != 16 {
		t.Fatalf("TableBytes=%d TailIterations=%d", la.TableBytes(), la.TailIterations())
	}
}

func TestMaxAngleConvergence(t *testing.T) {
	tb := NewTables(Circular, 30)
	// Circular CORDIC converges for |θ| ≤ ~1.743 rad > π/2.
	if tb.MaxAngle() < math.Pi/2 {
		t.Fatalf("circular convergence range %v must cover [0, π/2]", tb.MaxAngle())
	}
	hb := NewTables(Hyperbolic, 40)
	// With repeats, hyperbolic converges for |θ| ≤ ~1.118.
	if hb.MaxAngle() < 1.1 {
		t.Fatalf("hyperbolic convergence range %v must reach ~1.118", hb.MaxAngle())
	}
}

func TestNewTablesFromGain(t *testing.T) {
	tb := NewTablesFrom(5, 10)
	if tb.Shifts[0] != 5 {
		t.Fatalf("first shift = %d, want 5", tb.Shifts[0])
	}
	want := 1.0
	for i := 5; i < 15; i++ {
		want *= math.Sqrt(1 + math.Pow(2, -2*float64(i)))
	}
	if math.Abs(tb.GainF-want) > 1e-12 {
		t.Fatalf("partial gain = %v, want %v", tb.GainF, want)
	}
}
