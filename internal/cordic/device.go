package cordic

import (
	"fmt"
	"math/bits"

	"transpimlib/internal/pimsim"
)

// Placement re-exports pimsim.Placement for table locations.
type Placement = pimsim.Placement

// Table placement options (§4.2.1 observation 4 compares them).
const (
	InWRAM = pimsim.InWRAM
	InMRAM = pimsim.InMRAM
)

// Device is a set of CORDIC tables resident in a PIM core's memory,
// ready to be used by kernels on that core.
type Device struct {
	t       *Tables
	place   Placement
	dpu     *pimsim.DPU
	addr    int // base of the packed (angle int64, shift int64) entries
	invGain int64
}

// Load allocates and writes the iteration constants into the chosen
// memory of the PIM core. It returns an error when the memory cannot
// hold them (e.g. the 64-KB scratchpad).
func (t *Tables) Load(dpu *pimsim.DPU, place Placement) (*Device, error) {
	n := len(t.Angles)
	size := 16 * n // angle + shift per entry, 8 bytes each
	var addr int
	var err error
	switch place {
	case InWRAM:
		addr, err = dpu.WRAM.Alloc(size)
	case InMRAM:
		addr, err = dpu.MRAM.Alloc(size)
	default:
		return nil, fmt.Errorf("cordic: bad placement %d", place)
	}
	if err != nil {
		return nil, err
	}
	mem := dpu.WRAM
	if place == InMRAM {
		mem = dpu.MRAM
	}
	for i := 0; i < n; i++ {
		mem.PutInt64(addr+16*i, t.Angles[i])
		mem.PutInt64(addr+16*i+8, int64(t.Shifts[i]))
	}
	return &Device{t: t, place: place, dpu: dpu, addr: addr, invGain: t.InvGain}, nil
}

// Tables returns the host-side tables backing the device.
func (d *Device) Tables() *Tables { return d.t }

// Placement returns where the constants live.
func (d *Device) Placement() Placement { return d.place }

// loadEntry fetches (angle, shift) for iteration i, charging the
// appropriate memory cost: two word-pair scratchpad loads, or one
// 16-byte DMA from the DRAM bank.
func (d *Device) loadEntry(ctx *pimsim.Ctx, i int) (phi int64, s uint) {
	base := d.addr + 16*i
	if d.place == InWRAM {
		phi = ctx.WramLoadI64(base)
		s = uint(ctx.WramLoadI64(base + 8))
		return phi, s
	}
	phi = ctx.MramLoadI64(base)
	s = uint(ctx.MramLoadI64(base + 8))
	return phi, s
}

// Rotate runs rotation-mode CORDIC on the PIM core starting from
// (x0, y0) with target angle theta, charging every per-iteration
// operation: the table fetch, the sign test, two 64-bit shifts and
// three 64-bit add/subtracts, plus loop overhead.
func (d *Device) Rotate(ctx *pimsim.Ctx, x0, y0, theta int64) (x, y, z int64) {
	x, y, z = x0, y0, theta
	for i := range d.t.Shifts {
		phi, s := d.loadEntry(ctx, i)
		xs := ctx.I64Shr(x, s)
		ys := ctx.I64Shr(y, s)
		if ctx.I64Cmp(z, 0) >= 0 {
			x = d.stepX(ctx, x, ys, true)
			y = ctx.I64Add(y, xs)
			z = ctx.I64Sub(z, phi)
		} else {
			x = d.stepX(ctx, x, ys, false)
			y = ctx.I64Sub(y, xs)
			z = ctx.I64Add(z, phi)
		}
		ctx.Charge(2) // loop counter + branch
	}
	return x, y, z
}

// Vector runs vectoring-mode CORDIC on the PIM core, driving y toward
// zero and accumulating the rotation angle into z.
func (d *Device) Vector(ctx *pimsim.Ctx, x0, y0, z0 int64) (x, y, z int64) {
	x, y, z = x0, y0, z0
	for i := range d.t.Shifts {
		phi, s := d.loadEntry(ctx, i)
		xs := ctx.I64Shr(x, s)
		ys := ctx.I64Shr(y, s)
		if ctx.I64Cmp(y, 0) < 0 {
			x = d.stepX(ctx, x, ys, true)
			y = ctx.I64Add(y, xs)
			z = ctx.I64Sub(z, phi)
		} else {
			x = d.stepX(ctx, x, ys, false)
			y = ctx.I64Sub(y, xs)
			z = ctx.I64Add(z, phi)
		}
		ctx.Charge(2)
	}
	return x, y, z
}

func (d *Device) stepX(ctx *pimsim.Ctx, x, ys int64, positive bool) int64 {
	switch d.t.Mode {
	case Circular:
		if positive {
			return ctx.I64Sub(x, ys)
		}
		return ctx.I64Add(x, ys)
	case Hyperbolic:
		if positive {
			return ctx.I64Add(x, ys)
		}
		return ctx.I64Sub(x, ys)
	default: // Linear: x is invariant
		return x
	}
}

// SinCos computes (sin θ, cos θ) for θ ∈ [-π/2, π/2] in Q23.40 using
// circular rotation mode with the gain pre-folded into the initial
// vector (no final multiply). The device must be in Circular mode.
func (d *Device) SinCos(ctx *pimsim.Ctx, theta int64) (sin, cos int64) {
	x, y, _ := d.Rotate(ctx, d.invGain, 0, theta)
	return y, x
}

// SinhCosh computes (sinh θ, cosh θ) for θ within the hyperbolic
// convergence range (|θ| ≲ 1.11) using hyperbolic rotation mode. The
// device must be in Hyperbolic mode.
func (d *Device) SinhCosh(ctx *pimsim.Ctx, theta int64) (sinh, cosh int64) {
	x, y, _ := d.Rotate(ctx, d.invGain, 0, theta)
	return y, x
}

// Exp computes e^θ = cosh θ + sinh θ for θ in the convergence range.
func (d *Device) Exp(ctx *pimsim.Ctx, theta int64) int64 {
	sinh, cosh := d.SinhCosh(ctx, theta)
	return ctx.I64Add(sinh, cosh)
}

// Atanh computes artanh(y/x) via hyperbolic vectoring; used for
// ln(w) = 2·artanh((w−1)/(w+1)) (§2.2.3 range extension for log).
func (d *Device) Atanh(ctx *pimsim.Ctx, x0, y0 int64) int64 {
	_, _, z := d.Vector(ctx, x0, y0, 0)
	return z
}

// Ln computes ln(w) for w in (0, ~2.3] using hyperbolic vectoring:
// ln(w) = 2·artanh((w−1)/(w+1)).
func (d *Device) Ln(ctx *pimsim.Ctx, w int64) int64 {
	xp := ctx.I64Add(w, One)
	ym := ctx.I64Sub(w, One)
	z := d.Atanh(ctx, xp, ym)
	return ctx.I64Shl(z, 1)
}

// Sqrt computes √w for w in the vectoring convergence range
// (≈ [0.03, 2.3]) via hyperbolic vectoring of (w+¼, w−¼):
// x_n = K'·√((w+¼)² − (w−¼)²) = K'·√w, then removes the gain with one
// fixed multiply.
func (d *Device) Sqrt(ctx *pimsim.Ctx, w int64) int64 {
	quarter := One >> 2
	xp := ctx.I64Add(w, quarter)
	ym := ctx.I64Sub(w, quarter)
	x, _, _ := d.Vector(ctx, xp, ym, 0)
	return mulFix(ctx, x, d.invGain)
}

// Atan computes arctan(w) via circular vectoring of (1, w): the
// accumulated angle z converges to atan(w/1). The convergence range of
// the circular mode (Σφᵢ ≈ 1.743 rad) covers the whole arctangent
// image (±π/2), so no range extension is needed — arctan is listed for
// the circular mode in Table 1. The device must be in Circular mode.
func (d *Device) Atan(ctx *pimsim.Ctx, w int64) int64 {
	_, _, z := d.Vector(ctx, One, w, 0)
	return z
}

// MulLinear computes a·b with linear rotation mode (Table 1, last
// row); |b| must be < 2 for convergence. Provided for Table 1
// completeness.
func (d *Device) MulLinear(ctx *pimsim.Ctx, a, b int64) int64 {
	_, y, _ := d.Rotate(ctx, a, 0, b)
	return y
}

// DivLinear computes a/b with linear vectoring mode; |a/b| must be < 2
// for convergence. Provided for Table 1 completeness.
func (d *Device) DivLinear(ctx *pimsim.Ctx, a, b int64) int64 {
	_, _, z := d.Vector(ctx, b, a, 0)
	return z
}

// mulFix multiplies two Q23.40 values with an exact 128-bit
// intermediate, charging the 64-bit emulated multiply sequence (three
// 32×32 partial products on the 32-bit core).
func mulFix(ctx *pimsim.Ctx, a, b int64) int64 {
	ctx.Charge(3 * 34)
	return MulFixHost(a, b)
}

// --- unmetered host twins of the Device entry points ---
// These replay the device value paths exactly (RotateHost/VectorHost
// are bit-identical to Rotate/Vector), for the batch-evaluation fast
// path and tests.

// SinCosHost mirrors Device.SinCos.
func (t *Tables) SinCosHost(theta int64) (sin, cos int64) {
	x, y, _ := t.RotateHost(t.InvGain, 0, theta)
	return y, x
}

// SinCosHostMany runs SinCosHost over Q23.40 slices with the iteration
// tables and the mode's step rule hoisted out of the per-element loop;
// bit-identical to per-element calls.
func (t *Tables) SinCosHostMany(thetas, sins, coss []int64) {
	sins = sins[:len(thetas)]
	coss = coss[:len(thetas)]
	if t.Mode != Circular {
		for i, theta := range thetas {
			sins[i], coss[i] = t.SinCosHost(theta)
		}
		return
	}
	shifts := t.Shifts
	angles := t.Angles[:len(shifts)]
	inv := t.InvGain
	for i, theta := range thetas {
		x, y, z := inv, int64(0), theta
		for j, s := range shifts {
			phi := angles[j]
			xs, ys := x>>s, y>>s
			if z >= 0 {
				x, y, z = x-ys, y+xs, z-phi
			} else {
				x, y, z = x+ys, y-xs, z+phi
			}
		}
		sins[i] = y
		coss[i] = x
	}
}

// SinhCoshHost mirrors Device.SinhCosh.
func (t *Tables) SinhCoshHost(theta int64) (sinh, cosh int64) {
	x, y, _ := t.RotateHost(t.InvGain, 0, theta)
	return y, x
}

// ExpHost mirrors Device.Exp.
func (t *Tables) ExpHost(theta int64) int64 {
	sinh, cosh := t.SinhCoshHost(theta)
	return sinh + cosh
}

// LnHost mirrors Device.Ln.
func (t *Tables) LnHost(w int64) int64 {
	_, _, z := t.VectorHost(w+One, w-One, 0)
	return z << 1
}

// SqrtHost mirrors Device.Sqrt.
func (t *Tables) SqrtHost(w int64) int64 {
	quarter := One >> 2
	x, _, _ := t.VectorHost(w+quarter, w-quarter, 0)
	return MulFixHost(x, t.InvGain)
}

// AtanHost mirrors Device.Atan.
func (t *Tables) AtanHost(w int64) int64 {
	_, _, z := t.VectorHost(One, w, 0)
	return z
}

// MulFixHost is the unmetered Q23.40 multiply used by host-side code
// and tests.
func MulFixHost(a, b int64) int64 {
	neg := false
	if a < 0 {
		a, neg = -a, !neg
	}
	if b < 0 {
		b, neg = -b, !neg
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	r := int64(hi<<(64-FracBits) | lo>>FracBits)
	if neg {
		return -r
	}
	return r
}
