// Package cordic implements the CORDIC shift-and-add algorithm in its
// three classic modes — circular, hyperbolic and linear (Table 1 of
// the paper) — in both rotation and vectoring form, plus the
// CORDIC+LUT hybrid of §3.3.2 that replaces the first iterations with
// a lookup.
//
// The device-side kernels operate on 64-bit fixed-point values
// (Q23.40) so the algorithmic error floor sits safely below the
// float32 output precision, mirroring the paper's use of a fixed-point
// core representation for CORDIC (Figure 3(a), step 2). Host-side
// table generation uses float64.
package cordic

import "math"

// FracBits is the number of fractional bits of the 64-bit fixed-point
// representation used inside the CORDIC kernels.
const FracBits = 40

// One is 1.0 in the kernel fixed-point format.
const One int64 = 1 << FracBits

// FromFloat converts a float64 to kernel fixed point (host-side).
func FromFloat(f float64) int64 { return int64(math.Round(f * float64(One))) }

// ToFloat converts kernel fixed point to float64 (host-side).
func ToFloat(v int64) float64 { return float64(v) / float64(One) }

// Mode selects the CORDIC coordinate system (Table 1).
type Mode int

// The three CORDIC modes.
const (
	Circular   Mode = iota // sin, cos, tan, arctan
	Hyperbolic             // sinh, cosh, tanh, exp, log, sqrt, artanh
	Linear                 // multiplication, division
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Circular:
		return "circular"
	case Hyperbolic:
		return "hyperbolic"
	case Linear:
		return "linear"
	}
	return "mode?"
}

// MaxIterations bounds the useful iteration count: beyond the fixed-
// point fraction width additional iterations only shift in zeros.
const MaxIterations = FracBits

// Tables holds the host-generated per-iteration constants for one mode
// and iteration count: the shift schedule sᵢ, the rotation angles
// φᵢ (arctan 2^-sᵢ, artanh 2^-sᵢ, or 2^-sᵢ per Table 1), and the
// accumulated inverse stretching factor 1/K.
type Tables struct {
	Mode   Mode
	Shifts []uint  // shift amount per iteration (with hyperbolic repeats)
	Angles []int64 // φ per iteration, in Q23.40
	// InvGain is 1/∏kᵢ in Q23.40: pre-scaling the initial vector with it
	// removes the stretching factor without a final multiplication.
	InvGain int64
	// GainF is ∏kᵢ as float64 (host-side diagnostics).
	GainF float64
}

// hyperbolicRepeats lists the iteration indices that must be executed
// twice for the hyperbolic CORDIC to converge (the classic 4, 13, 40,
// … schedule: next = 3·prev + 1).
func hyperbolicRepeats(maxIdx int) map[int]bool {
	rep := map[int]bool{}
	for k := 4; k <= maxIdx; k = 3*k + 1 {
		rep[k] = true
	}
	return rep
}

// NewTables generates the constants for the given mode and iteration
// count. iters counts executed iterations (including hyperbolic
// repeats) and is clamped to [1, MaxIterations+repeats].
func NewTables(mode Mode, iters int) *Tables {
	if iters < 1 {
		iters = 1
	}
	t := &Tables{Mode: mode}
	switch mode {
	case Circular:
		if iters > MaxIterations {
			iters = MaxIterations
		}
		gain := 1.0
		for i := 0; i < iters; i++ {
			s := uint(i)
			t.Shifts = append(t.Shifts, s)
			t.Angles = append(t.Angles, FromFloat(math.Atan(math.Pow(2, -float64(s)))))
			gain *= math.Sqrt(1 + math.Pow(2, -2*float64(s)))
		}
		t.GainF = gain
		t.InvGain = FromFloat(1 / gain)
	case Hyperbolic:
		rep := hyperbolicRepeats(MaxIterations)
		gain := 1.0
		idx := 1
		for len(t.Shifts) < iters && idx <= MaxIterations {
			n := 1
			if rep[idx] {
				n = 2
			}
			for ; n > 0 && len(t.Shifts) < iters; n-- {
				s := uint(idx)
				t.Shifts = append(t.Shifts, s)
				t.Angles = append(t.Angles, FromFloat(math.Atanh(math.Pow(2, -float64(s)))))
				gain *= math.Sqrt(1 - math.Pow(2, -2*float64(s)))
			}
			idx++
		}
		t.GainF = gain
		t.InvGain = FromFloat(1 / gain)
	case Linear:
		if iters > MaxIterations {
			iters = MaxIterations
		}
		for i := 0; i < iters; i++ {
			s := uint(i)
			t.Shifts = append(t.Shifts, s)
			t.Angles = append(t.Angles, One>>s) // φᵢ = 2⁻ⁱ exactly
		}
		t.GainF = 1
		t.InvGain = One
	default:
		panic("cordic: unknown mode")
	}
	return t
}

// NewTablesFrom generates circular-mode constants whose first
// iteration index is start instead of 0 — the tail iterations of the
// CORDIC+LUT hybrid (§3.3.2), whose head rotations were replaced by a
// table lookup.
func NewTablesFrom(start, iters int) *Tables {
	if start < 0 {
		start = 0
	}
	if start+iters > MaxIterations {
		iters = MaxIterations - start
	}
	if iters < 1 {
		iters = 1
	}
	t := &Tables{Mode: Circular}
	gain := 1.0
	for i := start; i < start+iters; i++ {
		s := uint(i)
		t.Shifts = append(t.Shifts, s)
		t.Angles = append(t.Angles, FromFloat(math.Atan(math.Pow(2, -float64(s)))))
		gain *= math.Sqrt(1 + math.Pow(2, -2*float64(s)))
	}
	t.GainF = gain
	t.InvGain = FromFloat(1 / gain)
	return t
}

// Iterations returns the number of executed iterations.
func (t *Tables) Iterations() int { return len(t.Shifts) }

// TableBytes returns the PIM memory footprint of the iteration
// constants: one packed (shift, angle) entry of 8 bytes per iteration
// (the 6-bit shift rides in the angle word's spare high bits on real
// hardware; we account 8 bytes and store them separately for clarity)
// plus the pre-scaled initial vector.
func (t *Tables) TableBytes() int { return 8*len(t.Angles) + 16 }

// MaxAngle returns the convergence range of the rotation: the sum of
// all remaining φ (plus the final residual bound).
func (t *Tables) MaxAngle() float64 {
	var sum int64
	for _, a := range t.Angles {
		sum += a
	}
	last := t.Angles[len(t.Angles)-1]
	return ToFloat(sum + last)
}

// --- host-side (unmetered) reference implementations ---
// These mirror the device kernels exactly, for table verification and
// accuracy-only sweeps where no cycle accounting is needed.

// RotateHost runs rotation-mode CORDIC from (x0, y0, theta) and returns
// the final vector and residual angle, all in Q23.40.
func (t *Tables) RotateHost(x0, y0, theta int64) (x, y, z int64) {
	x, y, z = x0, y0, theta
	for i, s := range t.Shifts {
		phi := t.Angles[i]
		xs, ys := x>>s, y>>s
		if z >= 0 {
			x, y, z = t.stepPos(x, y, xs, ys), y+xs, z-phi
		} else {
			x, y, z = t.stepNeg(x, y, xs, ys), y-xs, z+phi
		}
	}
	return x, y, z
}

// VectorHost runs vectoring-mode CORDIC from (x0, y0, z0), driving y to
// zero, and returns the final vector and accumulated angle.
func (t *Tables) VectorHost(x0, y0, z0 int64) (x, y, z int64) {
	x, y, z = x0, y0, z0
	for i, s := range t.Shifts {
		phi := t.Angles[i]
		xs, ys := x>>s, y>>s
		if y < 0 {
			x, y, z = t.stepPos(x, y, xs, ys), y+xs, z-phi
		} else {
			x, y, z = t.stepNeg(x, y, xs, ys), y-xs, z+phi
		}
	}
	return x, y, z
}

// stepPos/stepNeg give the x update for d=+1 / d=-1 in the mode's
// coordinate system (Table 1): circular x∓2⁻ⁱy, hyperbolic x±2⁻ⁱy,
// linear x unchanged.
func (t *Tables) stepPos(x, _ int64, _, ys int64) int64 {
	switch t.Mode {
	case Circular:
		return x - ys
	case Hyperbolic:
		return x + ys
	default:
		return x
	}
}

func (t *Tables) stepNeg(x, _ int64, _, ys int64) int64 {
	switch t.Mode {
	case Circular:
		return x + ys
	case Hyperbolic:
		return x - ys
	default:
		return x
	}
}
