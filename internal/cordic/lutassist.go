package cordic

import (
	"fmt"
	"math"

	"transpimlib/internal/pimsim"
)

// LUTAssist is the CORDIC+LUT hybrid of §3.3.2: the first lutBits
// iterations of a circular rotation are replaced by a single lookup of
// a pre-rotated vector (while still updating θ), and the remaining
// iterations run as ordinary CORDIC. This trades table memory against
// iteration count, interpolating between the pure-LUT and pure-CORDIC
// corners of the design space.
type LUTAssist struct {
	lutBits  int // k: table indexed by the top k bits of θ ∈ [0, 2)
	shiftAmt uint
	entries  int
	place    Placement
	dpu      *pimsim.DPU
	addr     int // base of packed (x, y, φ) int64 triples
	tail     *Device

	// Host-side copies of the head-table triples, for the unmetered
	// SinCosHost mirror.
	hx, hy, hphi []int64
}

// lutAssistEntryBytes is the footprint of one head-table entry:
// (x, y, φ) in Q23.40.
const lutAssistEntryBytes = 24

// thetaMax bounds the supported input range, [0, π/2].
var thetaMax = FromFloat(math.Pi / 2)

// NewLUTAssist builds the hybrid for angles θ ∈ [0, π/2]: a head table
// with 2^lutBits-per-unit-interval density and tailIters remaining
// CORDIC iterations, loaded into the given memory of the PIM core.
func NewLUTAssist(dpu *pimsim.DPU, place Placement, lutBits, tailIters int) (*LUTAssist, error) {
	if lutBits < 2 || lutBits > 24 {
		return nil, fmt.Errorf("cordic: lutBits %d out of range [2, 24]", lutBits)
	}
	// The residual after the lookup is < 2^(1-k); tail iterations start
	// at index k-1 so their combined range covers it.
	start := lutBits - 1
	tailTables := NewTablesFrom(start, tailIters)
	tail, err := tailTables.Load(dpu, place)
	if err != nil {
		return nil, err
	}

	shiftAmt := uint(FracBits + 1 - lutBits) // index = θ >> shiftAmt, θ ∈ [0, 2)
	step := int64(1) << shiftAmt
	entries := int(thetaMax/step) + 2

	la := &LUTAssist{
		lutBits:  lutBits,
		shiftAmt: shiftAmt,
		entries:  entries,
		place:    place,
		dpu:      dpu,
		tail:     tail,
	}

	size := entries * lutAssistEntryBytes
	mem := dpu.WRAM
	if place == InMRAM {
		mem = dpu.MRAM
	}
	la.addr, err = mem.Alloc(size)
	if err != nil {
		return nil, err
	}
	invGain := 1 / tailTables.GainF
	la.hx = make([]int64, entries)
	la.hy = make([]int64, entries)
	la.hphi = make([]int64, entries)
	for i := 0; i < entries; i++ {
		phi := int64(i) << shiftAmt
		ang := ToFloat(phi)
		la.hx[i] = FromFloat(math.Cos(ang) * invGain)
		la.hy[i] = FromFloat(math.Sin(ang) * invGain)
		la.hphi[i] = phi
		mem.PutInt64(la.addr+lutAssistEntryBytes*i, la.hx[i])
		mem.PutInt64(la.addr+lutAssistEntryBytes*i+8, la.hy[i])
		mem.PutInt64(la.addr+lutAssistEntryBytes*i+16, phi)
	}
	return la, nil
}

// TableBytes returns the PIM memory footprint: head table plus tail
// iteration constants.
func (la *LUTAssist) TableBytes() int {
	return la.entries*lutAssistEntryBytes + la.tail.t.TableBytes()
}

// TailIterations returns the number of CORDIC iterations run after the
// lookup.
func (la *LUTAssist) TailIterations() int { return la.tail.t.Iterations() }

// SinCos computes (sin θ, cos θ) for θ ∈ [0, π/2] in Q23.40: one
// shift to form the index, one 24-byte fetch of the pre-rotated
// vector, one subtract to update θ, then the tail iterations.
func (la *LUTAssist) SinCos(ctx *pimsim.Ctx, theta int64) (sin, cos int64) {
	idx := ctx.I64Shr(theta, la.shiftAmt)
	if idx < 0 {
		idx = 0
	}
	if int(idx) >= la.entries {
		idx = int64(la.entries - 1)
	}
	base := la.addr + lutAssistEntryBytes*int(idx)
	var x0, y0, phi int64
	if la.place == InWRAM {
		x0 = ctx.WramLoadI64(base)
		y0 = ctx.WramLoadI64(base + 8)
		phi = ctx.WramLoadI64(base + 16)
	} else {
		x0 = ctx.MramLoadI64(base)
		y0 = ctx.MramLoadI64(base + 8)
		phi = ctx.MramLoadI64(base + 16)
	}
	z0 := ctx.I64Sub(theta, phi)
	x, y, _ := la.tail.Rotate(ctx, x0, y0, z0)
	return y, x
}

// SinCosHost is the unmetered host twin of SinCos, bit-identical in
// value.
func (la *LUTAssist) SinCosHost(theta int64) (sin, cos int64) {
	idx := theta >> la.shiftAmt
	if idx < 0 {
		idx = 0
	}
	if int(idx) >= la.entries {
		idx = int64(la.entries - 1)
	}
	x0, y0, phi := la.hx[idx], la.hy[idx], la.hphi[idx]
	x, y, _ := la.tail.t.RotateHost(x0, y0, theta-phi)
	return y, x
}

// SinCosHostMany runs SinCosHost over Q23.40 slices with the head
// table and tail iteration tables hoisted out of the per-element loop;
// bit-identical to per-element calls.
func (la *LUTAssist) SinCosHostMany(thetas, sins, coss []int64) {
	sins = sins[:len(thetas)]
	coss = coss[:len(thetas)]
	hx, hy, hphi := la.hx, la.hy, la.hphi
	shifts := la.tail.t.Shifts
	angles := la.tail.t.Angles[:len(shifts)]
	for i, theta := range thetas {
		idx := theta >> la.shiftAmt
		if idx < 0 {
			idx = 0
		}
		if int(idx) >= la.entries {
			idx = int64(la.entries - 1)
		}
		x, y, z := hx[idx], hy[idx], theta-hphi[idx]
		for j, s := range shifts {
			phi := angles[j]
			xs, ys := x>>s, y>>s
			if z >= 0 {
				x, y, z = x-ys, y+xs, z-phi
			} else {
				x, y, z = x+ys, y-xs, z+phi
			}
		}
		sins[i] = y
		coss[i] = x
	}
}
