package cordic

import (
	"math"
	"testing"

	"transpimlib/internal/pimsim"
)

func TestLoadBadPlacement(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	tb := NewTables(Circular, 8)
	if _, err := tb.Load(d, Placement(99)); err == nil {
		t.Fatal("bad placement must fail")
	}
}

func TestLUTAssistValidation(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	if _, err := NewLUTAssist(d, InWRAM, 1, 8); err == nil {
		t.Fatal("lutBits below 2 must fail")
	}
	if _, err := NewLUTAssist(d, InWRAM, 30, 8); err == nil {
		t.Fatal("lutBits above 24 must fail")
	}
}

func TestLUTAssistClampsOutOfRange(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	la, err := NewLUTAssist(d, InWRAM, 6, 16)
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewCtx()
	// Slightly beyond π/2 and below 0 must clamp, not crash.
	sin, _ := la.SinCos(ctx, FromFloat(math.Pi/2+0.01))
	if v := ToFloat(sin); v < 0.95 || v > 1.05 {
		t.Errorf("clamped sin(π/2+ε) = %v", v)
	}
	sin, _ = la.SinCos(ctx, FromFloat(-0.005))
	if v := ToFloat(sin); math.Abs(v) > 0.05 {
		t.Errorf("clamped sin(-ε) = %v", v)
	}
}

func TestTableBytesGrowsWithIterations(t *testing.T) {
	a := NewTables(Circular, 8).TableBytes()
	b := NewTables(Circular, 32).TableBytes()
	if b <= a {
		t.Fatalf("TableBytes: %d then %d", a, b)
	}
}

func TestVectoringSqrtEdge(t *testing.T) {
	// The vectoring convergence range just covers the reduced sqrt
	// domain [0.5, 2): check both edges.
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	tb := NewTables(Hyperbolic, 40)
	dev, err := tb.Load(d, InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewCtx()
	for _, w := range []float64{0.5, 0.500001, 1.999, 1.9999999} {
		got := ToFloat(dev.Sqrt(ctx, FromFloat(w)))
		if math.Abs(got-math.Sqrt(w)) > 5e-8 {
			t.Errorf("sqrt(%v) = %v, want %v", w, got, math.Sqrt(w))
		}
	}
}

func TestLnEdges(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	tb := NewTables(Hyperbolic, 40)
	dev, err := tb.Load(d, InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewCtx()
	for _, w := range []float64{0.5, 0.7071, 0.9999999, 1.0000001} {
		got := ToFloat(dev.Ln(ctx, FromFloat(w)))
		if math.Abs(got-math.Log(w)) > 5e-8 {
			t.Errorf("ln(%v) = %v, want %v", w, got, math.Log(w))
		}
	}
}

func TestAtanDevice(t *testing.T) {
	d := pimsim.NewDPU(0, pimsim.Default(), 16)
	tb := NewTables(Circular, 36)
	dev, err := tb.Load(d, InWRAM)
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewCtx()
	for _, w := range []float64{-1000, -8, -1, -0.01, 0, 0.5, 1, 7.9, 500} {
		// Q23.40 holds ±2^23; large |w| still converges since only the
		// ratio matters.
		got := ToFloat(dev.Atan(ctx, FromFloat(w)))
		if math.Abs(got-math.Atan(w)) > 1e-7 {
			t.Errorf("atan(%v) = %v, want %v", w, got, math.Atan(w))
		}
	}
}

func TestModeStringUnknown(t *testing.T) {
	if Mode(42).String() != "mode?" {
		t.Fatal("unknown mode name")
	}
}

func TestNewTablesPanicsOnBadMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mode must panic")
		}
	}()
	NewTables(Mode(9), 8)
}
