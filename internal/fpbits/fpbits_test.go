package fpbits

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLdexpMatchesStdlib(t *testing.T) {
	cases := []struct {
		f float32
		n int
	}{
		{1, 0}, {1, 1}, {1, -1}, {1.5, 10}, {3.25, -10},
		{0.1, 20}, {-2.75, 5}, {-0.001, -5},
		{1, 127}, {1, -126}, {1, -149}, {1.9999999, 127},
		{1e-40, 10}, {1e-40, -10}, // subnormal inputs
		{1, 200}, {1, -200}, // overflow / underflow
		{-1, 300}, {-1, -300},
		{float32(math.Pi), 3},
	}
	for _, c := range cases {
		got := Ldexp(c.f, c.n)
		want := float32(math.Ldexp(float64(c.f), c.n))
		if Bits(got) != Bits(want) {
			t.Errorf("Ldexp(%v, %d) = %v (%#x), want %v (%#x)",
				c.f, c.n, got, Bits(got), want, Bits(want))
		}
	}
}

func TestLdexpSpecials(t *testing.T) {
	nan := float32(math.NaN())
	if !IsNaN(Ldexp(nan, 5)) {
		t.Error("Ldexp(NaN, 5) should be NaN")
	}
	inf := float32(math.Inf(1))
	if Ldexp(inf, -5) != inf {
		t.Error("Ldexp(+Inf, -5) should be +Inf")
	}
	if Ldexp(float32(math.Inf(-1)), 5) != float32(math.Inf(-1)) {
		t.Error("Ldexp(-Inf, 5) should be -Inf")
	}
	if Ldexp(0, 100) != 0 {
		t.Error("Ldexp(0, 100) should be 0")
	}
	negZero := FromBits(SignMask)
	if Bits(Ldexp(negZero, 10)) != SignMask {
		t.Error("Ldexp(-0, 10) should be -0")
	}
}

func TestLdexpOverflowSign(t *testing.T) {
	if got := Ldexp(-1, 1000); !IsInf(got) || !SignBit(got) {
		t.Errorf("Ldexp(-1, 1000) = %v, want -Inf", got)
	}
	if got := Ldexp(-1, -1000); Bits(got) != SignMask {
		t.Errorf("Ldexp(-1, -1000) = %#x, want -0", Bits(got))
	}
}

func TestPropLdexpMatchesStdlib(t *testing.T) {
	f := func(f float32, n int16) bool {
		nn := int(n % 300)
		got := Ldexp(f, nn)
		want := float32(math.Ldexp(float64(f), nn))
		if IsNaN(got) && IsNaN(want) {
			return true
		}
		return Bits(got) == Bits(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFrexpMatchesStdlib(t *testing.T) {
	cases := []float32{1, 2, 3, 0.5, 0.1, -7.25, 1e-40, 1e30, float32(math.Pi)}
	for _, f := range cases {
		gotF, gotE := Frexp(f)
		wantF64, wantE := math.Frexp(float64(f))
		if float64(gotF) != wantF64 || gotE != wantE {
			t.Errorf("Frexp(%v) = (%v, %d), want (%v, %d)", f, gotF, gotE, wantF64, wantE)
		}
	}
}

func TestFrexpSpecials(t *testing.T) {
	if f, e := Frexp(0); f != 0 || e != 0 {
		t.Errorf("Frexp(0) = %v, %d", f, e)
	}
	inf := float32(math.Inf(1))
	if f, e := Frexp(inf); f != inf || e != 0 {
		t.Errorf("Frexp(+Inf) = %v, %d", f, e)
	}
	if f, _ := Frexp(float32(math.NaN())); !IsNaN(f) {
		t.Error("Frexp(NaN) should return NaN")
	}
}

func TestPropFrexpReconstruct(t *testing.T) {
	f := func(x float32) bool {
		if IsNaN(x) || IsInf(x) {
			return true
		}
		fr, e := Frexp(x)
		back := Ldexp(fr, e)
		return Bits(back) == Bits(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPropFrexpRange(t *testing.T) {
	f := func(x float32) bool {
		if IsNaN(x) || IsInf(x) || IsZero(x) {
			return true
		}
		fr, _ := Frexp(x)
		a := fr
		if a < 0 {
			a = -a
		}
		return a >= 0.5 && a < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestExponent(t *testing.T) {
	cases := []struct {
		f    float32
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {0.5, -1}, {0.75, -1}, {-8, 3},
		{1.5e-45, -149}, // smallest subnormal
	}
	for _, c := range cases {
		if got := Exponent(c.f); got != c.want {
			t.Errorf("Exponent(%v) = %d, want %d", c.f, got, c.want)
		}
	}
	if Exponent(0) != math.MinInt {
		t.Error("Exponent(0) should be MinInt")
	}
	if Exponent(float32(math.Inf(1))) != math.MaxInt {
		t.Error("Exponent(Inf) should be MaxInt")
	}
}

func TestClassifiers(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	sub := FromBits(1)
	if !IsNaN(nan) || IsNaN(inf) || IsNaN(1) {
		t.Error("IsNaN misclassifies")
	}
	if !IsInf(inf) || IsInf(nan) || IsInf(1) {
		t.Error("IsInf misclassifies")
	}
	if !IsZero(0) || !IsZero(FromBits(SignMask)) || IsZero(sub) {
		t.Error("IsZero misclassifies")
	}
	if !IsSubnormal(sub) || IsSubnormal(0) || IsSubnormal(1) {
		t.Error("IsSubnormal misclassifies")
	}
	if !SignBit(-1) || SignBit(1) || !SignBit(FromBits(SignMask)) {
		t.Error("SignBit misclassifies")
	}
}

func TestRawFields(t *testing.T) {
	// 1.0 = sign 0, exponent 127, mantissa 0
	if RawExp(1) != 127 || RawMant(1) != 0 {
		t.Errorf("fields of 1.0: exp=%d mant=%#x", RawExp(1), RawMant(1))
	}
	// 1.5 = mantissa 0x400000
	if RawMant(1.5) != 1<<22 {
		t.Errorf("mant of 1.5 = %#x", RawMant(1.5))
	}
}

func TestNextUp(t *testing.T) {
	if NextUp(0) != FromBits(1) {
		t.Error("NextUp(0) should be smallest subnormal")
	}
	if NextUp(FromBits(SignMask)) != FromBits(1) {
		t.Error("NextUp(-0) should be smallest subnormal")
	}
	one := float32(1)
	if got := NextUp(one); got <= one {
		t.Errorf("NextUp(1) = %v", got)
	}
	if got := NextUp(float32(-1)); got >= -1+2e-7 || got <= -1 {
		t.Errorf("NextUp(-1) = %v", got)
	}
	inf := float32(math.Inf(1))
	if NextUp(inf) != inf {
		t.Error("NextUp(+Inf) should be +Inf")
	}
}

func TestPropNextUpMonotone(t *testing.T) {
	f := func(x float32) bool {
		if IsNaN(x) || IsInf(x) {
			return true
		}
		return NextUp(x) > x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestULP(t *testing.T) {
	// ULP of 1.0 is 2^-23.
	if got := ULP(1); got != FromBits(Bits(float32(1))+1)-1 {
		t.Errorf("ULP(1) = %v", got)
	}
	if ULP(1) != ULP(-1) {
		t.Error("ULP should be symmetric in sign")
	}
	// ULP in [4,8) is 4*2^-23 ≈ 4.77e-7, the paper's observation 5 bound.
	u := float64(ULP(5))
	if math.Abs(u-4*math.Pow(2, -23)) > 1e-12 {
		t.Errorf("ULP(5) = %v, want 4*2^-23", u)
	}
	if !math.IsNaN(float64(ULP(float32(math.Inf(1))))) {
		t.Error("ULP(Inf) should be NaN")
	}
}

func TestScalbnAlias(t *testing.T) {
	if Scalbn(1.5, 4) != Ldexp(1.5, 4) {
		t.Error("Scalbn should equal Ldexp")
	}
}
