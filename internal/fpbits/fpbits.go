// Package fpbits provides bit-level IEEE-754 single-precision
// utilities: ldexp, frexp, and direct access to sign/exponent/mantissa
// fields.
//
// The UPMEM runtime library does not provide ldexp; TransPimLib
// implements it in accordance with the C99 standard (paper §3.2.2)
// because multiplying by 2ⁿ via exponent manipulation is dramatically
// cheaper than a general floating-point multiplication on a PIM core.
// This package is that implementation: integer-only manipulation of
// the raw float32 bit pattern, handling zero, subnormal, infinite and
// NaN inputs, plus overflow and underflow of the result.
package fpbits

import "math"

// IEEE-754 binary32 field layout.
const (
	MantBits = 23
	ExpBits  = 8
	ExpBias  = 127
	ExpMax   = 0xFF
	MantMask = 1<<MantBits - 1
	ExpMask  = (1<<ExpBits - 1) << MantBits
	SignMask = 1 << 31
)

// Bits returns the raw bit pattern of f.
func Bits(f float32) uint32 { return math.Float32bits(f) }

// FromBits reinterprets a bit pattern as a float32.
func FromBits(b uint32) float32 { return math.Float32frombits(b) }

// SignBit reports whether f is negative (including -0 and negative NaN
// payloads).
func SignBit(f float32) bool { return Bits(f)&SignMask != 0 }

// RawExp returns the biased exponent field of f (0..255).
func RawExp(f float32) int { return int(Bits(f)>>MantBits) & 0xFF }

// RawMant returns the 23-bit mantissa field of f (without the implicit
// leading one).
func RawMant(f float32) uint32 { return Bits(f) & MantMask }

// IsNaN reports whether f is a NaN, using only integer comparisons.
func IsNaN(f float32) bool {
	b := Bits(f)
	return b&ExpMask == ExpMask && b&MantMask != 0
}

// IsInf reports whether f is +Inf or -Inf.
func IsInf(f float32) bool {
	b := Bits(f)
	return b&ExpMask == ExpMask && b&MantMask == 0
}

// IsZero reports whether f is +0 or -0.
func IsZero(f float32) bool { return Bits(f)&^SignMask == 0 }

// IsSubnormal reports whether f is a nonzero subnormal value.
func IsSubnormal(f float32) bool {
	b := Bits(f)
	return b&ExpMask == 0 && b&MantMask != 0
}

// Ldexp returns f × 2ⁿ, computed per C99 ldexpf semantics:
//   - ±0, ±Inf and NaN are returned unchanged;
//   - overflow returns ±Inf;
//   - results too small for a normal are computed as subnormals, and
//     underflow below the smallest subnormal returns ±0.
//
// The fast path — a normal input whose result is also normal — is a
// single integer add to the exponent field, which is what makes the
// L-LUT address generation cheap on a PIM core.
func Ldexp(f float32, n int) float32 {
	b := Bits(f)
	exp := int(b>>MantBits) & 0xFF
	switch exp {
	case ExpMax: // Inf or NaN
		return f
	case 0:
		if b&MantMask == 0 { // ±0
			return f
		}
		// Subnormal: normalize first so the exponent add below works.
		f, b, exp = normalizeSubnormal(b)
	}
	exp += n
	switch {
	case exp >= ExpMax: // overflow → ±Inf
		return FromBits(b&SignMask | ExpMask)
	case exp >= 1: // normal result: rewrite exponent field
		return FromBits(b&^uint32(ExpMask) | uint32(exp)<<MantBits)
	case exp >= -MantBits: // subnormal result (possibly rounding up from below)
		// Shift the full significand (implicit one restored) right.
		mant := b&MantMask | 1<<MantBits
		shift := uint(1 - exp)
		half := uint32(1) << (shift - 1)
		rounded := mant + half
		// Round half to even.
		if mant&(half<<1-1) == half && rounded&(1<<shift) != 0 && rounded&(half<<1-1) == 0 {
			rounded -= half
		}
		return FromBits(b&SignMask | rounded>>shift)
	default: // total underflow → ±0
		return FromBits(b & SignMask)
	}
}

// LdexpWindow returns the inclusive biased-exponent window [lo, hi]
// for which Ldexp(x, n) reduces to a single integer add on the
// exponent field: a normal input whose scaled result is also normal.
// For a float32 with raw exponent field e (Bits(x)>>MantBits & 0xFF),
// e ∈ [lo, hi] guarantees Ldexp(x, n) == FromBits(Bits(x) +
// uint32(n)<<MantBits). ok is false when the window is empty (no
// input takes the fast path). The batch mirror kernels hoist this
// classification out of their inner loops.
func LdexpWindow(n int) (lo, hi int32, ok bool) {
	if n >= ExpMax-1 || n <= -(ExpMax-1) {
		return 0, -1, false
	}
	lo, hi = 1, ExpMax-1
	if n > 0 {
		hi -= int32(n) // result exponent e+n must stay ≤ 254
	} else {
		lo -= int32(n) // result exponent e+n must stay ≥ 1
	}
	return lo, hi, true
}

// normalizeSubnormal rescales a subnormal bit pattern into an
// equivalent (float, bits, unbiased-field) triple with a synthetic
// exponent field that may be ≤ 0; used internally by Ldexp.
func normalizeSubnormal(b uint32) (float32, uint32, int) {
	mant := b & MantMask
	exp := 1
	for mant&(1<<MantBits) == 0 {
		mant <<= 1
		exp--
	}
	nb := b&SignMask | mant&MantMask // drop the implicit one
	return FromBits(nb), nb, exp
}

// Frexp decomposes f into a normalized fraction frac in [0.5, 1) and an
// integer exponent such that f = frac × 2^exp, per C99 frexpf:
// ±0, ±Inf and NaN return f itself with exponent 0.
func Frexp(f float32) (frac float32, exp int) {
	b := Bits(f)
	e := int(b>>MantBits) & 0xFF
	switch e {
	case ExpMax:
		return f, 0
	case 0:
		if b&MantMask == 0 {
			return f, 0
		}
		var nb uint32
		f, nb, e = normalizeSubnormal(b)
		b = nb
	}
	// Set the exponent field to represent [0.5, 1): biased value 126.
	frac = FromBits(b&^uint32(ExpMask) | (ExpBias-1)<<MantBits)
	return frac, e - (ExpBias - 1)
}

// Exponent returns the unbiased binary exponent of f, i.e. the e such
// that |f| ∈ [2^e, 2^(e+1)). For zero it returns the minimum int; for
// subnormals it returns the true exponent of the leading bit.
func Exponent(f float32) int {
	b := Bits(f)
	e := int(b>>MantBits) & 0xFF
	switch e {
	case 0:
		if b&MantMask == 0 {
			return math.MinInt
		}
		_, _, e = normalizeSubnormal(b)
		return e - ExpBias
	case ExpMax:
		return math.MaxInt
	}
	return e - ExpBias
}

// Scalbn is an alias for Ldexp, named per the C99 scalbnf synonym.
func Scalbn(f float32, n int) float32 { return Ldexp(f, n) }

// NextUp returns the least float32 greater than f (f + 1 ulp). NaN is
// returned unchanged; +Inf maps to +Inf.
func NextUp(f float32) float32 {
	if IsNaN(f) {
		return f
	}
	b := Bits(f)
	switch {
	case b == SignMask || b == 0: // ±0 → smallest positive subnormal
		return FromBits(1)
	case b&SignMask != 0:
		return FromBits(b - 1)
	case b&ExpMask == ExpMask: // +Inf
		return f
	default:
		return FromBits(b + 1)
	}
}

// ULP returns the distance between f and the next representable
// float32 away from zero, i.e. the unit in the last place at |f|.
func ULP(f float32) float32 {
	if IsNaN(f) || IsInf(f) {
		return float32(math.NaN())
	}
	af := FromBits(Bits(f) &^ SignMask)
	next := FromBits(Bits(af) + 1)
	return next - af
}
