package fpbits

import (
	"math"
	"testing"
)

// FuzzLdexp cross-checks the bit-level ldexp against the stdlib over
// arbitrary bit patterns and exponents.
func FuzzLdexp(f *testing.F) {
	f.Add(uint32(0x3F800000), 10)    // 1.0
	f.Add(uint32(0x00000001), -5)    // smallest subnormal
	f.Add(uint32(0x7F7FFFFF), 1)     // max finite
	f.Add(uint32(0xFF800000), 100)   // -Inf
	f.Add(uint32(0x7FC00000), 3)     // NaN
	f.Add(uint32(0x80000000), -1000) // -0
	f.Fuzz(func(t *testing.T, bitsIn uint32, n int) {
		if n > 1000 {
			n = n % 1000
		}
		if n < -1000 {
			n = -(-n % 1000)
		}
		x := FromBits(bitsIn)
		got := Ldexp(x, n)
		want := float32(math.Ldexp(float64(x), n))
		if IsNaN(got) && IsNaN(want) {
			return
		}
		if Bits(got) != Bits(want) {
			t.Fatalf("Ldexp(%#x, %d) = %#x, want %#x", bitsIn, n, Bits(got), Bits(want))
		}
	})
}

// FuzzFrexp checks the frexp/ldexp inverse over arbitrary patterns.
func FuzzFrexp(f *testing.F) {
	f.Add(uint32(0x3F800000))
	f.Add(uint32(0x00000001))
	f.Add(uint32(0x00400000))
	f.Fuzz(func(t *testing.T, bitsIn uint32) {
		x := FromBits(bitsIn)
		if IsNaN(x) || IsInf(x) {
			return
		}
		fr, e := Frexp(x)
		if !IsZero(x) {
			a := fr
			if a < 0 {
				a = -a
			}
			if a < 0.5 || a >= 1 {
				t.Fatalf("Frexp(%#x) fraction %v out of [0.5, 1)", bitsIn, fr)
			}
		}
		if back := Ldexp(fr, e); Bits(back) != Bits(x) {
			t.Fatalf("reconstruction of %#x gave %#x", bitsIn, Bits(back))
		}
	})
}
