package workloads

import (
	"math"
	"time"
)

// Calibration measures the per-call cost of the host's math library on
// *this* machine, in nanoseconds, so the analytic CPUModel can be
// cross-checked against reality (`tplworkloads -measured` uses the
// measured baselines directly; the calibration quantifies how far this
// host is from the paper's 2.1-GHz Xeon).
type Calibration struct {
	ExpNs  float64
	LogNs  float64
	SqrtNs float64
	DivNs  float64
	FlopNs float64
}

// Calibrate times tight loops over the host math library. The sink
// accumulation defeats dead-code elimination; loop overhead is
// subtracted via the Flop measurement.
func Calibrate(iters int) Calibration {
	if iters <= 0 {
		iters = 1 << 20
	}
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = 0.5 + float64(i)/256*3
	}
	timeIt := func(f func(x float64) float64) float64 {
		var sink float64
		start := time.Now()
		for i := 0; i < iters; i++ {
			sink += f(xs[i&255])
		}
		elapsed := time.Since(start).Seconds()
		if sink == math.Pi {
			panic("unreachable") // keep sink alive
		}
		return elapsed / float64(iters) * 1e9
	}
	flop := timeIt(func(x float64) float64 { return x + 1.000001 })
	return Calibration{
		ExpNs:  timeIt(math.Exp) - flop,
		LogNs:  timeIt(math.Log) - flop,
		SqrtNs: timeIt(math.Sqrt) - flop,
		DivNs:  timeIt(func(x float64) float64 { return 1.0 / x }) - flop,
		FlopNs: flop,
	}
}

// ModelFor converts the calibration into a CPUModel with this host's
// effective per-op costs, expressed at the model clock (the cycle
// counts become host-ns × clock).
func (c Calibration) ModelFor(clockHz float64, threads int) (CPUModel, func(workload string) float64) {
	m := CPUModel{ClockHz: clockHz, Threads: threads, Efficiency: 0.9}
	toCycles := func(ns float64) float64 {
		if ns < 0 {
			ns = 0
		}
		return ns * 1e-9 * clockHz
	}
	perElem := func(workload string) float64 {
		switch workload {
		case "blackscholes":
			return toCycles(c.LogNs) + toCycles(c.SqrtNs) + toCycles(c.ExpNs) +
				2*(toCycles(c.ExpNs)+10*toCycles(c.FlopNs)+toCycles(c.DivNs)) +
				30*toCycles(c.FlopNs)
		case "sigmoid":
			return toCycles(c.ExpNs) + toCycles(c.DivNs) + 2*toCycles(c.FlopNs)
		case "softmax":
			return toCycles(c.ExpNs) + toCycles(c.DivNs) + 3*toCycles(c.FlopNs)
		}
		return 0
	}
	return m, perElem
}
