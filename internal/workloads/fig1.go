package workloads

import (
	"fmt"

	"transpimlib/internal/pimsim"
)

// Fig1Comparison reproduces the closing argument of §4.3: for an
// application already running on the PIM cores (its activations live
// in the DRAM banks), computing a transcendental function can either
//
//   - Figure 1(b): ship the operands to the host, compute there, ship
//     the results back — paying both transfer directions plus the host
//     kernel; or
//   - Figure 1(c): run TransPimLib in place on the PIM cores — paying
//     only PIM cycles.
//
// The paper infers that option (c) "could be 6–8× faster than the
// execution in the host CPU" once the saved PIM↔Host transfers are
// accounted. This type quantifies both paths under our models.
type Fig1Comparison struct {
	Workload string
	Elements int

	// HostPath is the Figure 1(b) time: PIM→Host gather + host compute
	// (modeled 32-thread Xeon) + Host→PIM scatter.
	HostPath struct {
		GatherSeconds  float64
		ComputeSeconds float64
		ScatterSeconds float64
	}
	// PIMSeconds is the Figure 1(c) time: the in-place PIM kernel with
	// no transfers (operands already resident).
	PIMSeconds float64
}

// HostPathSeconds is the total Figure 1(b) time.
func (c Fig1Comparison) HostPathSeconds() float64 {
	return c.HostPath.GatherSeconds + c.HostPath.ComputeSeconds + c.HostPath.ScatterSeconds
}

// Speedup is host-path time over PIM time — the §4.3 factor.
func (c Fig1Comparison) Speedup() float64 { return c.HostPathSeconds() / c.PIMSeconds }

// String renders the comparison.
func (c Fig1Comparison) String() string {
	return fmt.Sprintf(
		"%-10s n=%-9d fig1(b) host path: %.4fs (gather %.4f + compute %.4f + scatter %.4f)  fig1(c) on-PIM: %.4fs  → %.1f× faster on PIM",
		c.Workload, c.Elements,
		c.HostPathSeconds(), c.HostPath.GatherSeconds, c.HostPath.ComputeSeconds, c.HostPath.ScatterSeconds,
		c.PIMSeconds, c.Speedup())
}

// SigmoidFig1 compares the two options for a sigmoid activation layer
// over data resident in the PIM banks (the paper's Sigmoid workload
// re-read through Figure 1). dpus scales the simulation; kernel time
// is per-core-load invariant and transfers are projected to the full
// element count.
func SigmoidFig1(dpus, elements int, kit Kit) (Fig1Comparison, error) {
	var c Fig1Comparison
	c.Workload = "sigmoid"
	c.Elements = elements

	// Figure 1(c): the PIM kernel, minus all Host↔PIM operand
	// transfers (data is already resident). Run the scaled kernel and
	// keep only its compute time.
	perCore := elements / FullDPUs
	if perCore < 1 {
		perCore = 1
	}
	acts := GenActivations(dpus*perCore, 5)
	r, err := SigmoidPIM(dpus, acts, kit)
	if err != nil {
		return c, err
	}
	c.PIMSeconds = r.KernelSeconds

	// Figure 1(b): gather the operands, compute on the 32-thread host,
	// scatter the results back, at the aggregate interface bandwidths.
	bytes := float64(elements * 4)
	c.HostPath.GatherSeconds = bytes / pimsim.DefaultPIMToHostBandwidth
	c.HostPath.ScatterSeconds = bytes / pimsim.DefaultHostToPIMBandwidth
	c.HostPath.ComputeSeconds = SigmoidCPUModeled(elements, 32).KernelSeconds
	return c, nil
}
