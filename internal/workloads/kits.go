package workloads

import (
	"math"

	"transpimlib/internal/fixed"
	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
	"transpimlib/internal/poly"
	"transpimlib/internal/rangered"
)

// DeviceKit is the per-PIM-core math toolbox a workload kernel calls
// into: full-range exp/log/sqrt plus the cumulative normal
// distribution, each charging its cycles through the Ctx. Fixed-point
// kits additionally expose Q3.28 entry points for the fixed
// Blackscholes variant.
type DeviceKit struct {
	Exp  func(*pimsim.Ctx, float32) float32
	Log  func(*pimsim.Ctx, float32) float32
	Sqrt func(*pimsim.Ctx, float32) float32
	CNDF func(*pimsim.Ctx, float32) float32

	// Fixed-point variants (nil unless the kit is fixed-point).
	CNDFQ func(*pimsim.Ctx, fixed.Q3_28) fixed.Q3_28

	TableBytes int
}

// Kit builds DeviceKits: host-side table generation runs once (in the
// constructor), per-core loading happens in Build. Cost is the cost
// model the PIM system should run under (the polynomial baseline pays
// double-precision float emulation, see PolyBaselineKit).
type Kit struct {
	Name  string
	Cost  pimsim.CostModel
	Build func(dpu *pimsim.DPU) (*DeviceKit, error)
}

// coreRanges for the three §2.2.3-reduced functions.
var (
	expLo, expHi   = -math.Ln2 / 2, math.Ln2 / 2
	logLo, logHi   = 0.5, 1.0
	sqrtLo, sqrtHi = 0.5, 2.0
)

// PolyBaselineKit is the paper's PIM baseline (§4.1.2): polynomial
// approximation in the style the original benchmarks ship — Taylor-
// grade term counts ("one floating-point multiplication for each bit
// of precision", §4.2.1) evaluated in emulated double precision, which
// is how the reference PARSEC port computes. The doubled float costs
// are encoded in the kit's cost model.
func PolyBaselineKit() Kit {
	const degree = 24
	expP, err := poly.FitChebyshev(math.Exp, expLo, expHi, degree)
	logP, err2 := poly.FitChebyshev(math.Log, logLo, logHi, degree)
	sqrtP, err3 := poly.FitChebyshev(math.Sqrt, sqrtLo, sqrtHi, degree)
	if err != nil || err2 != nil || err3 != nil {
		panic("workloads: baseline fits failed")
	}
	return Kit{
		Name: "pim-poly",
		Cost: doubleFloatCost(),
		Build: func(dpu *pimsim.DPU) (*DeviceKit, error) {
			k := &DeviceKit{TableBytes: expP.Bytes() + logP.Bytes() + sqrtP.Bytes()}
			k.Exp = func(ctx *pimsim.Ctx, x float32) float32 {
				r, e := rangered.SplitExp(ctx, x)
				return rangered.JoinExp(ctx, expP.Eval(ctx, r), e)
			}
			k.Log = func(ctx *pimsim.Ctx, x float32) float32 {
				m, e := rangered.SplitLog(ctx, x)
				return rangered.JoinLog(ctx, logP.Eval(ctx, m), e)
			}
			k.Sqrt = func(ctx *pimsim.Ctx, x float32) float32 {
				m, h := rangered.SplitSqrt(ctx, x)
				return rangered.JoinSqrt(ctx, sqrtP.Eval(ctx, m), h)
			}
			k.CNDF = func(ctx *pimsim.Ctx, x float32) float32 {
				return poly.CNDF(ctx, x, k.Exp)
			}
			return k, nil
		},
	}
}

// PolyActivationKit is the polynomial baseline sized for activation
// functions (Sigmoid/Softmax), where the reference implementations use
// moderate-degree single-precision fits.
func PolyActivationKit() Kit {
	expP, err := poly.FitChebyshev(math.Exp, expLo, expHi, 10)
	if err != nil {
		panic("workloads: activation baseline fit failed")
	}
	return Kit{
		Name: "pim-poly",
		Cost: pimsim.Default(),
		Build: func(dpu *pimsim.DPU) (*DeviceKit, error) {
			k := &DeviceKit{TableBytes: expP.Bytes()}
			k.Exp = func(ctx *pimsim.Ctx, x float32) float32 {
				r, e := rangered.SplitExp(ctx, x)
				return rangered.JoinExp(ctx, expP.Eval(ctx, r), e)
			}
			k.CNDF = func(ctx *pimsim.Ctx, x float32) float32 { return poly.CNDF(ctx, x, k.Exp) }
			return k, nil
		},
	}
}

// doubleFloatCost doubles (×2.2) the software-float costs of the
// default model: the baseline's double-precision emulation on a 32-bit
// PIM core.
func doubleFloatCost() pimsim.CostModel {
	cm := pimsim.Default()
	scale := func(v int) int { return v * 22 / 10 }
	cm.FAdd = scale(cm.FAdd)
	cm.FSub = scale(cm.FSub)
	cm.FMul = scale(cm.FMul)
	cm.FDiv = scale(cm.FDiv)
	cm.FToI = scale(cm.FToI)
	cm.IToF = scale(cm.IToF)
	return cm
}

// MLUTIKit uses interpolated M-LUTs for exp/log/sqrt (§4.1.2: "we use
// interpolated M-LUT and L-LUT methods").
func MLUTIKit(sizeLog2 int) Kit {
	entries := 1 << sizeLog2
	expT, e1 := lut.BuildMLUT(math.Exp, expLo, expHi, entries, true)
	logT, e2 := lut.BuildMLUT(math.Log, logLo, logHi, entries, true)
	sqrtT, e3 := lut.BuildMLUT(math.Sqrt, sqrtLo, sqrtHi, entries, true)
	if e1 != nil || e2 != nil || e3 != nil {
		panic("workloads: m-lut build failed")
	}
	return Kit{
		Name: "pim-mlut",
		Cost: pimsim.Default(),
		Build: func(dpu *pimsim.DPU) (*DeviceKit, error) {
			expD, err := expT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			logD, err := logT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			sqrtD, err := sqrtT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			k := &DeviceKit{TableBytes: expT.Bytes() + logT.Bytes() + sqrtT.Bytes()}
			k.Exp = func(ctx *pimsim.Ctx, x float32) float32 {
				r, e := rangered.SplitExp(ctx, x)
				return rangered.JoinExp(ctx, expD.Eval(ctx, r), e)
			}
			k.Log = func(ctx *pimsim.Ctx, x float32) float32 {
				m, e := rangered.SplitLog(ctx, x)
				return rangered.JoinLog(ctx, logD.Eval(ctx, m), e)
			}
			k.Sqrt = func(ctx *pimsim.Ctx, x float32) float32 {
				m, h := rangered.SplitSqrt(ctx, x)
				return rangered.JoinSqrt(ctx, sqrtD.Eval(ctx, m), h)
			}
			k.CNDF = func(ctx *pimsim.Ctx, x float32) float32 { return poly.CNDF(ctx, x, k.Exp) }
			return k, nil
		},
	}
}

// LLUTIKit uses interpolated float L-LUTs for exp/log/sqrt.
func LLUTIKit(sizeLog2 int) Kit {
	expT, e1 := lut.BuildLLUT(math.Exp, expLo, expHi, sizeLog2, true)
	logT, e2 := lut.BuildLLUT(math.Log, logLo, logHi, sizeLog2, true)
	sqrtT, e3 := lut.BuildLLUT(math.Sqrt, sqrtLo, sqrtHi, sizeLog2, true)
	if e1 != nil || e2 != nil || e3 != nil {
		panic("workloads: l-lut build failed")
	}
	return Kit{
		Name: "pim-llut",
		Cost: pimsim.Default(),
		Build: func(dpu *pimsim.DPU) (*DeviceKit, error) {
			expD, err := expT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			logD, err := logT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			sqrtD, err := sqrtT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			k := &DeviceKit{TableBytes: expT.Bytes() + logT.Bytes() + sqrtT.Bytes()}
			k.Exp = func(ctx *pimsim.Ctx, x float32) float32 {
				r, e := rangered.SplitExp(ctx, x)
				return rangered.JoinExp(ctx, expD.Eval(ctx, r), e)
			}
			k.Log = func(ctx *pimsim.Ctx, x float32) float32 {
				m, e := rangered.SplitLog(ctx, x)
				return rangered.JoinLog(ctx, logD.Eval(ctx, m), e)
			}
			k.Sqrt = func(ctx *pimsim.Ctx, x float32) float32 {
				m, h := rangered.SplitSqrt(ctx, x)
				return rangered.JoinSqrt(ctx, sqrtD.Eval(ctx, m), h)
			}
			k.CNDF = func(ctx *pimsim.Ctx, x float32) float32 { return poly.CNDF(ctx, x, k.Exp) }
			return k, nil
		},
	}
}

// Abramowitz–Stegun constants in Q3.28 for the fixed-point CNDF.
var (
	cndfBQ = [5]fixed.Q3_28{
		fixed.FromFloat64(0.319381530),
		fixed.FromFloat64(-0.356563782),
		fixed.FromFloat64(1.781477937),
		fixed.FromFloat64(-1.821255978),
		fixed.FromFloat64(1.330274429),
	}
	cndfGammaQ   = fixed.FromFloat64(0.2316419)
	cndfSatQ     = fixed.FromFloat64(3.9) // x²/2 must stay within Q3.28
	invSqrt2PiQ  = fixed.FromFloat64(0.39894228040143267794)
	fixedOneQ    = fixed.One
	fixedHalfNeg = fixed.FromFloat64(-0.5)
)

// FixedLLUTIKit uses interpolated Q3.28 L-LUTs for exp/log/sqrt and
// runs the whole CNDF polynomial in fixed point — the "version of
// Blackscholes that operates on fixed-point values" (§4.1.2), whose
// cheap fixed multiplies make it the fastest Blackscholes variant
// (§4.3).
func FixedLLUTIKit(sizeLog2 int) Kit {
	expT, e1 := lut.BuildFixedLLUT(math.Exp, expLo, expHi, sizeLog2, true)
	logT, e2 := lut.BuildFixedLLUT(math.Log, logLo, logHi, sizeLog2, true)
	sqrtT, e3 := lut.BuildFixedLLUT(math.Sqrt, sqrtLo, sqrtHi, sizeLog2, true)
	if e1 != nil || e2 != nil || e3 != nil {
		panic("workloads: fixed l-lut build failed")
	}
	return Kit{
		Name: "pim-llut-fixed",
		Cost: pimsim.Default(),
		Build: func(dpu *pimsim.DPU) (*DeviceKit, error) {
			expD, err := expT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			logD, err := logT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			sqrtD, err := sqrtT.Load(dpu, pimsim.InMRAM)
			if err != nil {
				return nil, err
			}
			k := &DeviceKit{TableBytes: expT.Bytes() + logT.Bytes() + sqrtT.Bytes()}
			// expQ evaluates e^x for a Q3.28 argument, returning Q3.28
			// scaled by 2^-e when the result exceeds the fixed range; the
			// float entry point below applies the ldexp.
			k.Exp = func(ctx *pimsim.Ctx, x float32) float32 {
				r, e := rangered.SplitExp(ctx, x)
				return rangered.JoinExp(ctx, ctx.QToF(expD.Eval(ctx, ctx.QFromF(r))), e)
			}
			k.Log = func(ctx *pimsim.Ctx, x float32) float32 {
				m, e := rangered.SplitLog(ctx, x)
				return rangered.JoinLog(ctx, ctx.QToF(logD.Eval(ctx, ctx.QFromF(m))), e)
			}
			k.Sqrt = func(ctx *pimsim.Ctx, x float32) float32 {
				m, h := rangered.SplitSqrt(ctx, x)
				return rangered.JoinSqrt(ctx, ctx.QToF(sqrtD.Eval(ctx, ctx.QFromF(m))), h)
			}
			// Fixed-point CNDF: the b-polynomial, the pdf factor and the
			// final combination all run on Q3.28 multiplies.
			k.CNDFQ = func(ctx *pimsim.Ctx, xq fixed.Q3_28) fixed.Q3_28 {
				neg := ctx.ICmp(int32(xq), 0) < 0
				ctx.Branch()
				ax := ctx.QAbs(xq) // saturating: |Min| = Max
				// Φ saturates below float32 resolution beyond |x| ≈ 5.3,
				// and x²/2 would overflow the Q3.28 range: short-circuit.
				ctx.Branch()
				if ctx.ICmp(int32(ax), int32(cndfSatQ)) >= 0 {
					if neg {
						return 0
					}
					return fixedOneQ
				}
				kq := fixedRecip(ctx, ctx.QAdd(fixedOneQ, ctx.QMul(cndfGammaQ, ax)))
				acc := cndfBQ[4]
				for i := 3; i >= 0; i-- {
					ctx.Charge(1)
					acc = ctx.QAdd(ctx.QMul(acc, kq), cndfBQ[i])
				}
				pol := ctx.QMul(acc, kq)
				// exp(−x²/2): |x| ≤ 8 gives arguments down to −32;
				// split in fixed: e^{−x²/2} = e^r · 2^{−s} with s chosen by
				// repeated halving is costly, so use the float exp path
				// once (the pdf factor underflows quickly anyway).
				// (−½·x)·x keeps the intermediate below the Q3.28 ceiling
				// for the whole unsaturated range (x < 3.9 → ½x² < 7.7).
				argQ := ctx.QMul(ctx.QMul(fixedHalfNeg, ax), ax)
				pdfE := fixedExpWide(ctx, expD, argQ)
				pdf := ctx.QMul(invSqrt2PiQ, pdfE)
				res := ctx.QSub(fixedOneQ, ctx.QMul(pdf, pol))
				ctx.Branch()
				if neg {
					res = ctx.QSub(fixedOneQ, res)
				}
				return res
			}
			k.CNDF = func(ctx *pimsim.Ctx, x float32) float32 {
				return ctx.QToF(k.CNDFQ(ctx, ctx.QFromF(x)))
			}
			return k, nil
		},
	}
}

// fixedRecip computes 1/x in Q3.28 with the emulated divide.
func fixedRecip(ctx *pimsim.Ctx, x fixed.Q3_28) fixed.Q3_28 {
	return ctx.QDiv(fixedOneQ, x)
}

// fixedExpWide computes e^q for q ≤ 0 beyond the table's core range by
// splitting q = −k·ln2 + r with integer k ≥ 0 (shift-subtract loop in
// fixed point) and shifting the table result right by k. Saturated
// arguments (q ≤ −8, where e^q < 4e-4 relative to Q3.28 resolution)
// short-circuit to 0.
func fixedExpWide(ctx *pimsim.Ctx, expD *lut.DevFixedLLUT, q fixed.Q3_28) fixed.Q3_28 {
	ctx.Branch()
	if ctx.ICmp(int32(q), int32(fixed.FromFloat64(-7.5))) <= 0 {
		return 0
	}
	var k uint
	halfLn2 := fixed.Ln2.Shr(1)
	for ctx.ICmp(int32(q), int32(0-halfLn2)) < 0 {
		q = ctx.QAdd(q, fixed.Ln2)
		k++
		ctx.Branch()
	}
	v := expD.Eval(ctx, q)
	if k > 0 {
		v = ctx.QShr(v, k)
	}
	return v
}
