package workloads

import (
	"fmt"
	"math"
	"time"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

// SigmoidRef is the double-precision reference S(x) = 1/(1+e^{−x}).
func SigmoidRef(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// GenActivations produces the activation-style input vector the
// Sigmoid and Softmax benchmarks consume (§4.1.2 uses 30M elements).
func GenActivations(n int, seed uint64) []float32 {
	return stats.RandomInputs(-8, 8, n, seed)
}

// SigmoidCPU runs the measured host baseline.
func SigmoidCPU(inputs []float32, threads int) Result {
	out := make([]float32, len(inputs))
	start := time.Now()
	parallelFor(len(inputs), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float32(1 / (1 + math.Exp(-float64(inputs[i]))))
		}
	})
	elapsed := time.Since(start).Seconds()
	var col stats.Collector
	for i, x := range inputs {
		col.Add(out[i], SigmoidRef(float64(x)))
	}
	return Result{
		Workload:      "sigmoid",
		Variant:       fmt.Sprintf("cpu-%dt-measured", threads),
		Elements:      len(inputs),
		KernelSeconds: elapsed,
		Errors:        col.Result(),
	}
}

// SigmoidCPUModeled is the analytic Xeon baseline.
func SigmoidCPUModeled(n, threads int) Result {
	m := DefaultXeon(threads)
	return Result{
		Workload:      "sigmoid",
		Variant:       fmt.Sprintf("cpu-%dt", threads),
		Elements:      n,
		KernelSeconds: m.Seconds(SigmoidCycles(), n),
	}
}

// SigmoidPIM computes the sigmoid of every input on the PIM system
// with the given math kit: S(x) = 1/(1+e^{−x}) — one kit exp, one
// float add, one float divide per element.
func SigmoidPIM(dpus int, inputs []float32, kit Kit) (Result, error) {
	return elementwisePIM("sigmoid", dpus, inputs, kit, SigmoidRef,
		func(ctx *pimsim.Ctx, k *DeviceKit, x float32) float32 {
			e := k.Exp(ctx, ctx.FNeg(x))
			return ctx.FDiv(1, ctx.FAdd(1, e))
		})
}

// elementwisePIM is the shared scatter→kernel→gather harness for
// map-style workloads.
func elementwisePIM(name string, dpus int, inputs []float32, kit Kit,
	ref func(float64) float64,
	body func(*pimsim.Ctx, *DeviceKit, float32) float32) (Result, error) {

	sys := pimsim.NewSystem(pimsim.Config{DPUs: dpus, Cost: kit.Cost})
	n := len(inputs)
	per := (n + dpus - 1) / dpus

	inBufs := make([][]byte, dpus)
	for d := 0; d < dpus; d++ {
		buf := make([]byte, per*4)
		for j := 0; j < per; j++ {
			idx := d*per + j
			if idx >= n {
				break
			}
			putF32(buf, j*4, inputs[idx])
		}
		inBufs[d] = buf
	}
	inAddrs := sys.ScatterToMRAM(inBufs)

	outAddr := -1
	for d := 0; d < dpus; d++ {
		a := sys.DPU(d).MRAM.MustAlloc(per * 4)
		if outAddr == -1 {
			outAddr = a
		}
	}

	kits := make([]*DeviceKit, dpus)
	for d := 0; d < dpus; d++ {
		k, err := kit.Build(sys.DPU(d))
		if err != nil {
			return Result{}, err
		}
		kits[d] = k
	}

	sys.ResetCycles()
	sys.ChargeHostToPIM(per*4*dpus, true)

	err := sys.Launch(func(ctx *pimsim.Ctx, d int) error {
		k := kits[d]
		mram := ctx.DPU().MRAM
		count := per
		if d*per+count > n {
			count = n - d*per
		}
		if count <= 0 {
			return nil
		}
		ctx.Charge(4)
		chunkDMA(ctx, count*4)
		for j := 0; j < count; j++ {
			x := ctx.LoadStreamedF32(mram, inAddrs[d]+4*j)
			y := body(ctx, k, x)
			ctx.StoreStreamedF32(mram, outAddr+4*j, y)
			ctx.Charge(2) // loop bookkeeping
		}
		chunkDMA(ctx, count*4)
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	kernel := sys.KernelSeconds()
	outs := sys.GatherFromMRAM(outAddr, per*4)

	var col stats.Collector
	for i, x := range inputs {
		d, j := i/per, i%per
		col.Add(f32At(outs[d], j*4), ref(float64(x)))
	}
	return Result{
		Workload:        name,
		Variant:         kit.Name,
		Elements:        n,
		KernelSeconds:   kernel,
		TransferSeconds: sys.TransferSeconds(),
		Errors:          col.Result(),
		TableBytes:      kits[0].TableBytes,
	}, nil
}
