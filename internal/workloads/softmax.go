package workloads

import (
	"fmt"
	"math"
	"time"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/stats"
)

// SoftmaxRef computes the double-precision softmax of the whole input
// vector (σ(x)_j = e^{x_j} / Σ_k e^{x_k}, §4.1.2).
func SoftmaxRef(inputs []float32) []float64 {
	out := make([]float64, len(inputs))
	var sum float64
	for i, x := range inputs {
		out[i] = math.Exp(float64(x))
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SoftmaxCPU runs the measured host baseline (two passes: exponentials
// with a parallel sum reduction, then normalization).
func SoftmaxCPU(inputs []float32, threads int) Result {
	out := make([]float32, len(inputs))
	partial := make([]float64, threads)
	start := time.Now()
	chunk := (len(inputs) + threads - 1) / threads
	parallelFor(len(inputs), threads, func(lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			e := math.Exp(float64(inputs[i]))
			out[i] = float32(e)
			s += e
		}
		partial[lo/chunk] += s
	})
	var sum float64
	for _, p := range partial {
		sum += p
	}
	inv := float32(1 / sum)
	parallelFor(len(inputs), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] *= inv
		}
	})
	elapsed := time.Since(start).Seconds()

	ref := SoftmaxRef(inputs)
	var col stats.Collector
	for i := range inputs {
		col.Add(out[i], ref[i])
	}
	return Result{
		Workload:      "softmax",
		Variant:       fmt.Sprintf("cpu-%dt-measured", threads),
		Elements:      len(inputs),
		KernelSeconds: elapsed,
		Errors:        col.Result(),
	}
}

// SoftmaxCPUModeled is the analytic Xeon baseline.
func SoftmaxCPUModeled(n, threads int) Result {
	m := DefaultXeon(threads)
	return Result{
		Workload:      "softmax",
		Variant:       fmt.Sprintf("cpu-%dt", threads),
		Elements:      n,
		KernelSeconds: m.Seconds(SoftmaxCycles(), n),
	}
}

// SoftmaxPIM computes the softmax of the whole vector on the PIM
// system: pass 1 exponentiates each core's chunk and accumulates a
// local sum; the partial sums travel to the host (there is no direct
// core-to-core channel, §2.1), which reduces them and broadcasts the
// reciprocal; pass 2 normalizes. The extra PIM↔Host round trip is the
// data movement Figure 1(b) warns about, here reduced to one scalar
// per core by computing the exponentials in place with TransPimLib.
func SoftmaxPIM(dpus int, inputs []float32, kit Kit) (Result, error) {
	sys := pimsim.NewSystem(pimsim.Config{DPUs: dpus, Cost: kit.Cost})
	n := len(inputs)
	per := (n + dpus - 1) / dpus

	inBufs := make([][]byte, dpus)
	for d := 0; d < dpus; d++ {
		buf := make([]byte, per*4)
		for j := 0; j < per; j++ {
			idx := d*per + j
			if idx >= n {
				break
			}
			putF32(buf, j*4, inputs[idx])
		}
		inBufs[d] = buf
	}
	inAddrs := sys.ScatterToMRAM(inBufs)

	expAddr, sumAddr := -1, -1
	for d := 0; d < dpus; d++ {
		a := sys.DPU(d).MRAM.MustAlloc(per * 4)
		b := sys.DPU(d).MRAM.MustAlloc(8)
		if expAddr == -1 {
			expAddr, sumAddr = a, b
		}
	}

	kits := make([]*DeviceKit, dpus)
	for d := 0; d < dpus; d++ {
		k, err := kit.Build(sys.DPU(d))
		if err != nil {
			return Result{}, err
		}
		kits[d] = k
	}

	sys.ResetCycles()
	sys.ChargeHostToPIM(per*4*dpus, true)

	// Pass 1: exponentials + per-core partial sum.
	err := sys.Launch(func(ctx *pimsim.Ctx, d int) error {
		k := kits[d]
		mram := ctx.DPU().MRAM
		count := per
		if d*per+count > n {
			count = n - d*per
		}
		if count <= 0 {
			mram.PutFloat32(sumAddr, 0)
			return nil
		}
		ctx.Charge(4)
		chunkDMA(ctx, count*4)
		var sum float32
		for j := 0; j < count; j++ {
			x := ctx.LoadStreamedF32(mram, inAddrs[d]+4*j)
			e := k.Exp(ctx, x)
			ctx.StoreStreamedF32(mram, expAddr+4*j, e)
			sum = ctx.FAdd(sum, e)
			ctx.Charge(2)
		}
		chunkDMA(ctx, count*4)
		ctx.StoreStreamedF32(mram, sumAddr, sum)
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	pass1 := sys.KernelSeconds()

	// Host reduction of the per-core partial sums.
	partials := sys.GatherFromMRAM(sumAddr, 4)
	var total float64
	for _, p := range partials {
		total += float64(f32At(p, 0))
	}
	inv := float32(1 / total)
	// Broadcast the reciprocal (equal 4-byte buffers → parallel).
	sys.ChargeHostToPIM(4*dpus, true)
	invAddr := -1
	for d := 0; d < dpus; d++ {
		a := sys.DPU(d).MRAM.MustAlloc(8)
		sys.DPU(d).MRAM.PutFloat32(a, inv)
		if invAddr == -1 {
			invAddr = a
		}
	}

	// Pass 2: normalization with one float multiply per element.
	for _, d := range sys.DPUs() {
		d.ResetCycles()
	}
	err = sys.Launch(func(ctx *pimsim.Ctx, d int) error {
		mram := ctx.DPU().MRAM
		count := per
		if d*per+count > n {
			count = n - d*per
		}
		if count <= 0 {
			return nil
		}
		ctx.Charge(4)
		iv := ctx.LoadStreamedF32(mram, invAddr)
		chunkDMA(ctx, count*4)
		for j := 0; j < count; j++ {
			e := ctx.LoadStreamedF32(mram, expAddr+4*j)
			ctx.StoreStreamedF32(mram, expAddr+4*j, ctx.FMul(e, iv))
			ctx.Charge(2)
		}
		chunkDMA(ctx, count*4)
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	pass2 := sys.KernelSeconds()

	outs := sys.GatherFromMRAM(expAddr, per*4)

	ref := SoftmaxRef(inputs)
	var col stats.Collector
	for i := range inputs {
		d, j := i/per, i%per
		col.Add(f32At(outs[d], j*4), ref[i])
	}
	return Result{
		Workload:        "softmax",
		Variant:         kit.Name,
		Elements:        n,
		KernelSeconds:   pass1 + pass2,
		TransferSeconds: sys.TransferSeconds(),
		Errors:          col.Result(),
		TableBytes:      kits[0].TableBytes,
	}, nil
}
