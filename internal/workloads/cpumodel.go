// Package workloads implements the paper's three full workloads —
// Blackscholes, Sigmoid, Softmax (§4.1.2, §4.3, Fig. 9) — as PIM
// kernels on the simulated system (with polynomial-baseline, M-LUT,
// L-LUT and fixed-point L-LUT math kits) and as host-CPU baselines
// (measured on this machine, plus an analytic model of the paper's
// 32-core 2.1-GHz Xeon so the Fig. 9 ratios are reproducible anywhere).
package workloads

// CPUModel is the analytic host-CPU baseline: a multicore x86 running
// a vendor math library, costed per transcendental call. The default
// parameters follow the paper's evaluation host (2-socket Xeon, 32
// cores at 2.1 GHz, §4.1). Modeled per-op cycle counts are typical of
// glibc's float transcendental paths on such a core.
type CPUModel struct {
	ClockHz    float64
	Threads    int
	Efficiency float64 // parallel-scaling efficiency for streaming kernels
}

// DefaultXeon returns the paper's host with the given thread count.
func DefaultXeon(threads int) CPUModel {
	return CPUModel{ClockHz: 2.1e9, Threads: threads, Efficiency: 0.9}
}

// Per-call cycle costs on the model CPU: scalar glibc-class
// transcendental latencies on a 2.1-GHz Xeon core.
const (
	cpuExp  = 80.0
	cpuLog  = 85.0
	cpuSqrt = 20.0 // hardware sqrtss
	cpuDiv  = 25.0
	cpuFlop = 2.0   // dependent add/mul in a scalar chain
	cpuCNDF = 190.0 // Abramowitz–Stegun: one exp, the b-polynomial, a divide
)

// Seconds converts a per-element cycle cost into wall time for n
// elements across the model's threads.
func (m CPUModel) Seconds(perElemCycles float64, n int) float64 {
	threads := float64(m.Threads)
	if threads < 1 {
		threads = 1
	}
	eff := m.Efficiency
	if m.Threads == 1 {
		eff = 1
	}
	return perElemCycles * float64(n) / (m.ClockHz * threads * eff)
}

// BlackscholesCycles is the modeled per-option CPU cost: one log, one
// sqrt, one exp, two CNDF calls and the surrounding arithmetic.
func BlackscholesCycles() float64 {
	return cpuLog + cpuSqrt + cpuExp + 2*cpuCNDF + 30*cpuFlop
}

// SigmoidCycles is the modeled per-element CPU cost of 1/(1+e^{−x}).
func SigmoidCycles() float64 { return cpuExp + cpuDiv + 2*cpuFlop }

// SoftmaxCycles is the modeled per-element CPU cost across both passes
// (exp + accumulate, then normalize).
func SoftmaxCycles() float64 { return cpuExp + cpuDiv + 3*cpuFlop }

// Full-scale experiment geometry (§4.1, §4.1.2): 2545 PIM cores; 10M
// options for Blackscholes, 30M elements for Sigmoid and Softmax.
const (
	FullDPUs                 = 2545
	FullBlackscholesElements = 10_000_000
	FullActivationElements   = 30_000_000
)

// ProjectFull rescales a Result measured on a scaled-down system with
// the same per-core load up to the full-scale element count: kernel
// time is unchanged (each core does identical work), transfer time
// scales with total bytes because the host↔PIM bandwidths are
// aggregate figures.
func ProjectFull(r Result, fullElements int) Result {
	if r.Elements > 0 {
		r.TransferSeconds *= float64(fullElements) / float64(r.Elements)
	}
	r.Elements = fullElements
	return r
}
