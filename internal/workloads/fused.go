package workloads

import (
	"fmt"
	"math"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
	"transpimlib/internal/fusion"
	"transpimlib/internal/stats"
)

// This file holds the three end-to-end fused-program workloads of the
// operator-fusion subsystem (internal/fusion): softmax with on-device
// max/sum reductions, a transformer-FFN GELU block, and a logistic-
// regression training step. Each runs twice through the same engine —
// once as a fused program (intermediates device-resident, one batch)
// and once through the per-op baseline (one host↔PIM round trip per
// node) — with bit-identical outputs and the byte/cycle savings
// reported side by side.

// FusedParams is the method configuration every fused workload's
// transcendental nodes run under: interpolated L-LUT, the paper's
// all-function method (Table 2).
func FusedParams() core.Params {
	return core.Params{Method: core.LLUT, Interp: true}
}

// FusedCase is one fused workload: a program builder plus input
// generation and a float64 guide reference for error reporting.
type FusedCase struct {
	Name string
	// Build constructs the program graph.
	Build func() *fusion.Program
	// NumInputs/NumScalars describe the signature; Gen produces
	// deterministic inputs for a given element count.
	Gen func(n int) (inputs [][]float32, scalars []float32)
	// Ref computes the float64-guided host reference of the result
	// (used for error reporting, not bit comparison: the device path
	// is float32 LUT arithmetic).
	Ref func(inputs [][]float32, scalars []float32) []float64
}

// FusedSoftmax is the numerically-stable softmax: on-device max
// reduction, exp of the shifted inputs, on-device sum reduction, and
// normalization by the host-computed reciprocal — three fused phases,
// where the per-op baseline pays five full round trips.
func FusedSoftmax() FusedCase {
	return FusedCase{
		Name: "softmax",
		Build: func() *fusion.Program {
			p := fusion.NewProgram("softmax")
			x := p.Input()
			m := p.ReduceMax(x)
			e := p.Func(core.Exp, p.Sub(x, p.Broadcast(m)))
			s := p.ReduceSum(e)
			p.Return(p.Mul(e, p.Div(p.Const(1), p.Broadcast(s))))
			return p
		},
		Gen: func(n int) ([][]float32, []float32) {
			return [][]float32{stats.RandomInputs(-8, 8, n, 101)}, nil
		},
		Ref: func(inputs [][]float32, _ []float32) []float64 {
			return SoftmaxRef(inputs[0])
		},
	}
}

// FusedFFNGELU is the transformer feed-forward activation block:
// y = gelu(h + bias) · gamma, elementwise over three input vectors —
// one fused phase against three per-op round trips.
func FusedFFNGELU() FusedCase {
	return FusedCase{
		Name: "ffn-gelu",
		Build: func() *fusion.Program {
			p := fusion.NewProgram("ffn-gelu")
			h := p.Input()
			bias := p.Input()
			gamma := p.Input()
			p.Return(p.Mul(p.Func(core.GELU, p.Add(h, bias)), gamma))
			return p
		},
		Gen: func(n int) ([][]float32, []float32) {
			return [][]float32{
				stats.RandomInputs(-4, 4, n, 201),
				stats.RandomInputs(-1, 1, n, 202),
				stats.RandomInputs(0.5, 1.5, n, 203),
			}, nil
		},
		Ref: func(inputs [][]float32, _ []float32) []float64 {
			gelu := core.GELU.Ref()
			out := make([]float64, len(inputs[0]))
			for i := range out {
				u := float64(inputs[0][i]) + float64(inputs[1][i])
				out[i] = gelu(u) * float64(inputs[2][i])
			}
			return out
		},
	}
}

// FusedLogisticStep is one SGD step of logistic regression on a batch
// of per-example logits z with labels y: the sigmoid probabilities,
// the per-example gradient g = σ(z) − y, its batch mean (an on-device
// sum reduction scaled on the host by 1/n), and the mean-centered
// update z ← z − lr·(g − mean(g)). Two fused phases with one scalar
// sync, against six per-op round trips.
func FusedLogisticStep() FusedCase {
	return FusedCase{
		Name: "logistic-step",
		Build: func() *fusion.Program {
			p := fusion.NewProgram("logistic-step")
			z := p.Input()
			y := p.Input()
			lr := p.ScalarInput()
			invN := p.ScalarInput()
			g := p.Sub(p.Func(core.Sigmoid, z), y)
			mu := p.Mul(p.Broadcast(p.ReduceSum(g)), invN) // host scalar
			p.Return(p.Sub(z, p.Mul(p.Sub(g, mu), lr)))
			return p
		},
		Gen: func(n int) ([][]float32, []float32) {
			labels := stats.RandomInputs(0, 1, n, 302)
			for i, v := range labels {
				if v < 0.5 {
					labels[i] = 0
				} else {
					labels[i] = 1
				}
			}
			return [][]float32{stats.RandomInputs(-6, 6, n, 301), labels},
				[]float32{0.1, float32(1) / float32(n)}
		},
		Ref: func(inputs [][]float32, scalars []float32) []float64 {
			z, y := inputs[0], inputs[1]
			lr, invN := float64(scalars[0]), float64(scalars[1])
			g := make([]float64, len(z))
			var sum float64
			for i := range z {
				g[i] = 1/(1+math.Exp(-float64(z[i]))) - float64(y[i])
				sum += g[i]
			}
			mu := sum * invN
			out := make([]float64, len(z))
			for i := range z {
				out[i] = float64(z[i]) - lr*(g[i]-mu)
			}
			return out
		},
	}
}

// FusedCases returns the three fused workloads.
func FusedCases() []FusedCase {
	return []FusedCase{FusedSoftmax(), FusedFFNGELU(), FusedLogisticStep()}
}

// FusedResult is one side-by-side row: the same workload through the
// fused program and the per-op baseline on the same engine.
type FusedResult struct {
	Workload string
	Elements int
	Phases   int

	// Modeled pipeline seconds and kernel cycles of each path.
	FusedSeconds float64
	PerOpSeconds float64
	FusedCycles  uint64
	PerOpCycles  uint64

	// Host↔PIM bytes moved by each path and the saving (the analytic
	// model, reconciled exactly against the engine's metered transfers
	// by the differential suite).
	FusedBytes int
	PerOpBytes int
	SavedBytes int
	// SavedTransferCycles is the byte saving as modeled PIM clock
	// cycles of transfer time.
	SavedTransferCycles uint64

	// BitIdentical reports the fused outputs matched the per-op
	// outputs bit for bit; Degraded marks a fused run completed on the
	// host mirror (fault injection).
	BitIdentical bool
	Degraded     bool

	// MaxAbsErr is the worst absolute deviation of the fused outputs
	// from the float64-guided reference.
	MaxAbsErr float64
}

// FusedElemsPerSec returns elements per modeled second of the fused
// path (0 when no time was modeled).
func (r FusedResult) FusedElemsPerSec() float64 {
	if r.FusedSeconds <= 0 {
		return 0
	}
	return float64(r.Elements) / r.FusedSeconds
}

// PerOpElemsPerSec returns elements per modeled second of the per-op
// baseline.
func (r FusedResult) PerOpElemsPerSec() float64 {
	if r.PerOpSeconds <= 0 {
		return 0
	}
	return float64(r.Elements) / r.PerOpSeconds
}

// String renders the result as one side-by-side table row.
func (r FusedResult) String() string {
	return fmt.Sprintf("%-14s n=%-7d phases=%d fused=%9.6fs (%8.3g el/s) per-op=%9.6fs (%8.3g el/s) bytes=%d vs %d saved=%d (cycles=%d) bitident=%v maxerr=%.3g",
		r.Workload, r.Elements, r.Phases,
		r.FusedSeconds, r.FusedElemsPerSec(),
		r.PerOpSeconds, r.PerOpElemsPerSec(),
		r.FusedBytes, r.PerOpBytes, r.SavedBytes, r.SavedTransferCycles,
		r.BitIdentical, r.MaxAbsErr)
}

// RunFused evaluates one fused case both ways on the engine and
// compares. verify escalates a bit-identity mismatch to an error.
func RunFused(e *engine.Engine, cs FusedCase, n int, verify bool) (FusedResult, error) {
	prog, err := e.CompileProgram(cs.Build(), FusedParams())
	if err != nil {
		return FusedResult{}, err
	}
	inputs, scalars := cs.Gen(n)

	fusedOut, fst, err := e.EvaluateProgramTenant("bench", prog, inputs, scalars)
	if err != nil {
		return FusedResult{}, fmt.Errorf("%s fused: %w", cs.Name, err)
	}
	perOut, pst, err := e.EvaluateProgramPerOp("bench", prog, inputs, scalars)
	if err != nil {
		return FusedResult{}, fmt.Errorf("%s per-op: %w", cs.Name, err)
	}

	r := FusedResult{
		Workload:            cs.Name,
		Elements:            n,
		Phases:              prog.NumPhases(),
		FusedSeconds:        fst.ModeledSeconds(),
		PerOpSeconds:        pst.ModeledSeconds(),
		FusedCycles:         fst.KernelCycles,
		PerOpCycles:         pst.KernelCycles,
		FusedBytes:          fst.FusedBytes,
		PerOpBytes:          fst.PerOpBytes,
		SavedBytes:          fst.SavedBytes,
		SavedTransferCycles: fst.SavedTransferCycles,
		Degraded:            fst.Degraded,
		BitIdentical:        bitIdentical(fusedOut, perOut),
	}
	ref := cs.Ref(inputs, scalars)
	for i, v := range fusedOut {
		if i < len(ref) {
			if d := math.Abs(float64(v) - ref[i]); d > r.MaxAbsErr {
				r.MaxAbsErr = d
			}
		}
	}
	if verify && !r.BitIdentical {
		return r, fmt.Errorf("%s: fused outputs differ from per-op baseline", cs.Name)
	}
	return r, nil
}

func bitIdentical(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
