package workloads

import (
	"math"
	"strings"
	"testing"

	"transpimlib/internal/pimsim"
)

// Scaled-down Fig. 9 geometry preserving the paper's per-core load:
// 10M/2545 ≈ 3930 options and 30M/2545 ≈ 11789 activations per core.
const (
	testDPUs   = 8
	bsPerCore  = 3930
	actPerCore = 11789
)

func bsOptions(t *testing.T) []Option {
	t.Helper()
	return GenOptions(testDPUs*bsPerCore, 1)
}

func activations(t *testing.T) []float32 {
	t.Helper()
	return GenActivations(testDPUs*actPerCore, 2)
}

func TestGenOptionsDeterministic(t *testing.T) {
	a := GenOptions(100, 7)
	b := GenOptions(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	for _, o := range a {
		if o.Spot < 10 || o.Spot > 100 || o.Vol < 0.1 || o.Vol > 0.5 {
			t.Fatalf("option out of range: %+v", o)
		}
	}
}

func TestBlackscholesRefSanity(t *testing.T) {
	// Deep in-the-money call ≈ S − K·e^{−rT}; worthless OTM call ≈ 0.
	itm := Option{Spot: 100, Strike: 10, Rate: 0.1, Vol: 0.2, Time: 1, CallFlag: true}
	if got := BlackscholesRef(itm); math.Abs(got-(100-10*math.Exp(-0.1))) > 0.01 {
		t.Errorf("deep ITM call = %v", got)
	}
	otm := Option{Spot: 10, Strike: 100, Rate: 0.1, Vol: 0.1, Time: 0.5, CallFlag: true}
	if got := BlackscholesRef(otm); got > 1e-6 {
		t.Errorf("deep OTM call = %v", got)
	}
	// Put-call parity: C − P = S − K·e^{−rT}.
	call := Option{Spot: 50, Strike: 60, Rate: 0.1, Vol: 0.3, Time: 1, CallFlag: true}
	put := call
	put.CallFlag = false
	parity := BlackscholesRef(call) - BlackscholesRef(put)
	want := 50 - 60*math.Exp(-float64(call.Rate)*float64(call.Time))
	if math.Abs(parity-want) > 1e-9 {
		t.Errorf("put-call parity violated: %v vs %v", parity, want)
	}
}

func TestBlackscholesCPUAccuracy(t *testing.T) {
	r := BlackscholesCPU(GenOptions(5000, 3), 2)
	if r.Errors.RMSE > 1e-4 {
		t.Fatalf("CPU float32 baseline RMSE %v", r.Errors.RMSE)
	}
	if r.KernelSeconds <= 0 {
		t.Fatal("measured time must be positive")
	}
	if !strings.Contains(r.Variant, "measured") {
		t.Fatal("measured variant must be labeled")
	}
}

func TestBlackscholesPIMVariants(t *testing.T) {
	opts := bsOptions(t)
	for _, tc := range []struct {
		kit   Kit
		bound float64
	}{
		{PolyBaselineKit(), 1e-4},
		{MLUTIKit(10), 1e-4},
		{LLUTIKit(12), 1e-4},
		{FixedLLUTIKit(12), 2e-3},
	} {
		r, err := BlackscholesPIM(testDPUs, opts, tc.kit)
		if err != nil {
			t.Fatalf("%s: %v", tc.kit.Name, err)
		}
		if r.Errors.RMSE > tc.bound {
			t.Errorf("%s: RMSE %v over %v", tc.kit.Name, r.Errors.RMSE, tc.bound)
		}
		if r.KernelSeconds <= 0 || r.TransferSeconds <= 0 {
			t.Errorf("%s: missing timing: %+v", tc.kit.Name, r)
		}
	}
}

func TestFig9BlackscholesShape(t *testing.T) {
	opts := bsOptions(t)
	kernel := map[string]float64{}
	for _, kit := range []Kit{PolyBaselineKit(), MLUTIKit(10), LLUTIKit(12), FixedLLUTIKit(12)} {
		r, err := BlackscholesPIM(testDPUs, opts, kit)
		if err != nil {
			t.Fatal(err)
		}
		kernel[kit.Name] = r.KernelSeconds
	}
	// TransPimLib variants beat the polynomial baseline by 5–10×.
	if r := kernel["pim-poly"] / kernel["pim-llut"]; r < 4 || r > 12 {
		t.Errorf("poly/L-LUT = %.1f, want ~5-10", r)
	}
	if r := kernel["pim-poly"] / kernel["pim-mlut"]; r < 4 || r > 12 {
		t.Errorf("poly/M-LUT = %.1f, want ~5-10", r)
	}
	// Ordering: fixed < L-LUT < M-LUT < poly.
	if !(kernel["pim-llut-fixed"] < kernel["pim-llut"] &&
		kernel["pim-llut"] < kernel["pim-mlut"] &&
		kernel["pim-mlut"] < kernel["pim-poly"]) {
		t.Errorf("variant ordering violated: %v", kernel)
	}
	// The fixed-point version beats the modeled 32-thread CPU; the
	// float LUT versions land within ~60-110% of it (paper: 75-82%,
	// fixed 62% faster). Project the CPU to the same per-core load.
	cpu32 := BlackscholesCPUModeled(FullBlackscholesElements, 32).KernelSeconds
	pimFull := kernel["pim-llut"] // per-core load matches full scale
	if kernel["pim-llut-fixed"] >= cpu32 {
		t.Errorf("fixed-point PIM (%v) must beat the 32T CPU (%v)", kernel["pim-llut-fixed"], cpu32)
	}
	if rel := pimFull / cpu32; rel < 0.5 || rel > 2.0 {
		t.Errorf("L-LUT PIM vs CPU32 = %.2f×, want within ~2×", rel)
	}
}

func TestSigmoidCPUAndPIM(t *testing.T) {
	acts := activations(t)
	cpu := SigmoidCPU(acts[:20000], 2)
	if cpu.Errors.RMSE > 1e-6 {
		t.Fatalf("CPU sigmoid RMSE %v", cpu.Errors.RMSE)
	}
	for _, kit := range []Kit{PolyActivationKit(), MLUTIKit(10), LLUTIKit(12)} {
		r, err := SigmoidPIM(testDPUs, acts, kit)
		if err != nil {
			t.Fatal(err)
		}
		if r.Errors.RMSE > 1e-5 {
			t.Errorf("%s sigmoid RMSE %v", kit.Name, r.Errors.RMSE)
		}
		if r.Errors.MaxAbs > 1e-4 {
			t.Errorf("%s sigmoid max err %v", kit.Name, r.Errors.MaxAbs)
		}
	}
}

func TestFig9SigmoidShape(t *testing.T) {
	acts := activations(t)
	poly, err := SigmoidPIM(testDPUs, acts, PolyActivationKit())
	if err != nil {
		t.Fatal(err)
	}
	llut, err := SigmoidPIM(testDPUs, acts, LLUTIKit(12))
	if err != nil {
		t.Fatal(err)
	}
	// TransPimLib outperforms the polynomial baseline by 50-75%
	// (ratio ~1.5-1.75; we accept 1.3-3 for the cost-model tolerance).
	polyF := ProjectFull(poly, FullActivationElements)
	llutF := ProjectFull(llut, FullActivationElements)
	if r := polyF.Seconds() / llutF.Seconds(); r < 1.3 || r > 3 {
		t.Errorf("poly/L-LUT sigmoid = %.2f, want ~1.5-1.75", r)
	}
	// The 32-thread CPU is ~2× faster than the PIM version.
	cpu32 := SigmoidCPUModeled(FullActivationElements, 32).KernelSeconds
	full := ProjectFull(llut, FullActivationElements)
	if r := full.Seconds() / cpu32; r < 1.0 || r > 4 {
		t.Errorf("PIM/CPU32 sigmoid = %.2f, want ~2", r)
	}
}

func TestSoftmaxPIMCorrectness(t *testing.T) {
	acts := activations(t)[:testDPUs*2000]
	r, err := SoftmaxPIM(testDPUs, acts, LLUTIKit(12))
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors.MaxULP > 1e4 && r.Errors.RMSE > 1e-9 {
		t.Errorf("softmax errors too large: %v", r.Errors)
	}
}

func TestSoftmaxOutputsSumToOne(t *testing.T) {
	acts := GenActivations(4000, 9)
	sys := 4
	r, err := SoftmaxPIM(sys, acts, MLUTIKit(10))
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	// Recompute outputs through the reference for the sum property and
	// cross-check the PIM RMSE is consistent with it.
	ref := SoftmaxRef(acts)
	var sum float64
	for _, v := range ref {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("reference softmax sums to %v", sum)
	}
}

func TestFig9SoftmaxShape(t *testing.T) {
	acts := activations(t)
	poly, err := SoftmaxPIM(testDPUs, acts, PolyActivationKit())
	if err != nil {
		t.Fatal(err)
	}
	llut, err := SoftmaxPIM(testDPUs, acts, LLUTIKit(12))
	if err != nil {
		t.Fatal(err)
	}
	polyF := ProjectFull(poly, FullActivationElements)
	llutF := ProjectFull(llut, FullActivationElements)
	if r := polyF.Seconds() / llutF.Seconds(); r < 1.3 || r > 3 {
		t.Errorf("poly/L-LUT softmax = %.2f, want ~1.5-1.75", r)
	}
	cpu32 := SoftmaxCPUModeled(FullActivationElements, 32).KernelSeconds
	full := ProjectFull(llut, FullActivationElements)
	if r := full.Seconds() / cpu32; r < 1.0 || r > 4 {
		t.Errorf("PIM/CPU32 softmax = %.2f, want ~2", r)
	}
}

func TestCPUModelScaling(t *testing.T) {
	m1 := DefaultXeon(1)
	m32 := DefaultXeon(32)
	t1 := m1.Seconds(100, 1000)
	t32 := m32.Seconds(100, 1000)
	if r := t1 / t32; r < 25 || r > 32 {
		t.Fatalf("32-thread speedup %v, want ~28.8 (0.9 efficiency)", r)
	}
	if m1.Seconds(100, 0) != 0 {
		t.Fatal("zero elements must cost zero")
	}
}

func TestDoubleFloatCostScaling(t *testing.T) {
	base := pimsim.Default()
	d := doubleFloatCost()
	if d.FMul <= base.FMul || d.FAdd <= base.FAdd || d.FDiv <= base.FDiv {
		t.Fatal("double-precision emulation must cost more")
	}
	if d.IALU != base.IALU {
		t.Fatal("integer costs must be unchanged")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Workload: "sigmoid", Variant: "pim-llut", Elements: 10,
		KernelSeconds: 0.5, TransferSeconds: 0.25}
	s := r.String()
	if !strings.Contains(s, "sigmoid") || !strings.Contains(s, "pim-llut") {
		t.Fatalf("String() = %q", s)
	}
	if r.Seconds() != 0.75 {
		t.Fatalf("Seconds() = %v", r.Seconds())
	}
}

func TestUnevenElementCounts(t *testing.T) {
	// Element counts that do not divide evenly across cores must still
	// produce correct results for every element.
	acts := GenActivations(777, 11)
	r, err := SigmoidPIM(4, acts, LLUTIKit(12))
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors.N != 777 {
		t.Fatalf("accounted %d elements, want 777", r.Errors.N)
	}
	if r.Errors.MaxAbs > 1e-4 {
		t.Fatalf("uneven distribution broke results: %v", r.Errors)
	}
	opts := GenOptions(101, 12)
	br, err := BlackscholesPIM(4, opts, LLUTIKit(12))
	if err != nil {
		t.Fatal(err)
	}
	if br.Errors.N != 101 || br.Errors.RMSE > 1e-3 {
		t.Fatalf("uneven blackscholes: %v", br.Errors)
	}
}

func TestFixedKitCNDFQAgainstFloat(t *testing.T) {
	kit := FixedLLUTIKit(12)
	dpu := pimsim.NewDPU(0, kit.Cost, 16)
	k, err := kit.Build(dpu)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dpu.NewCtx()
	for x := -6.0; x <= 6.0; x += 0.05 {
		got := float64(k.CNDF(ctx, float32(x)))
		want := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("fixed CNDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestKitTableBytesReported(t *testing.T) {
	for _, kit := range []Kit{PolyBaselineKit(), MLUTIKit(10), LLUTIKit(12), FixedLLUTIKit(12)} {
		dpu := pimsim.NewDPU(0, kit.Cost, 16)
		k, err := kit.Build(dpu)
		if err != nil {
			t.Fatal(err)
		}
		if k.TableBytes <= 0 {
			t.Errorf("%s reports no table memory", kit.Name)
		}
	}
}

func TestCalibrate(t *testing.T) {
	c := Calibrate(1 << 16)
	if c.ExpNs <= 0 || c.LogNs <= 0 {
		t.Fatalf("transcendental calls must cost more than the flop baseline: %+v", c)
	}
	if c.ExpNs > 1000 || c.FlopNs > 100 {
		t.Fatalf("implausible calibration: %+v", c)
	}
	m, perElem := c.ModelFor(2.1e9, 32)
	if m.Threads != 32 {
		t.Fatal("threads not propagated")
	}
	bs := perElem("blackscholes")
	sg := perElem("sigmoid")
	if bs <= sg || sg <= 0 {
		t.Fatalf("blackscholes (%v cyc) must cost more than sigmoid (%v cyc)", bs, sg)
	}
	if perElem("unknown") != 0 {
		t.Fatal("unknown workload should cost 0")
	}
	secs := m.Seconds(bs, 1000000)
	if secs <= 0 || secs > 10 {
		t.Fatalf("implausible modeled time %v", secs)
	}
}

func TestFig1OnPIMBeatsHostRoundTrip(t *testing.T) {
	// §4.3's closing claim: computing activations in place on the PIM
	// cores beats shipping the data to the host and back.
	c, err := SigmoidFig1(testDPUs, FullActivationElements, LLUTIKit(12))
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup() < 1.5 {
		t.Fatalf("on-PIM activation should clearly beat the host round trip: %v", c)
	}
	if c.Speedup() > 20 {
		t.Fatalf("implausible speedup: %v", c)
	}
	if c.HostPath.GatherSeconds <= 0 || c.HostPath.ScatterSeconds <= 0 {
		t.Fatal("host path must pay both transfer directions")
	}
	t.Logf("%v (paper §4.3 infers 6-8×)", c)
}
