package workloads

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"transpimlib/internal/pimsim"
	"transpimlib/internal/poly"
	"transpimlib/internal/stats"
)

// Result is one bar of Figure 9: a workload run by one variant.
type Result struct {
	Workload string
	Variant  string
	Elements int

	// KernelSeconds is compute time: modeled PIM cycles at the PIM
	// clock, or host wall time for measured CPU runs.
	KernelSeconds float64
	// TransferSeconds is the modeled Host↔PIM transfer time (zero for
	// CPU variants).
	TransferSeconds float64

	// Errors compares outputs against the float64 host reference.
	Errors stats.Errors

	TableBytes int
}

// Seconds is the headline execution time: kernel plus transfers.
func (r Result) Seconds() float64 { return r.KernelSeconds + r.TransferSeconds }

// String renders the result as one Fig. 9 table row.
func (r Result) String() string {
	return fmt.Sprintf("%-14s %-16s n=%-9d kernel=%9.4fs transfer=%8.4fs total=%9.4fs rmse=%.3g",
		r.Workload, r.Variant, r.Elements, r.KernelSeconds, r.TransferSeconds, r.Seconds(), r.Errors.RMSE)
}

// Option is one Blackscholes input record (PARSEC-style).
type Option struct {
	Spot     float32 // current price S
	Strike   float32 // strike price K
	Rate     float32 // risk-free rate r
	Vol      float32 // volatility v
	Time     float32 // years to maturity T
	CallFlag bool    // call (true) or put (false)
}

// GenOptions produces a deterministic pseudo-random option portfolio
// (the paper uses a 10M-element input vector, §4.1.2).
func GenOptions(n int, seed uint64) []Option {
	spots := stats.RandomInputs(10, 100, n, seed+1)
	strikes := stats.RandomInputs(10, 100, n, seed+2)
	vols := stats.RandomInputs(0.1, 0.5, n, seed+3)
	times := stats.RandomInputs(0.2, 2.0, n, seed+4)
	flags := stats.RandomInputs(0, 1, n, seed+5)
	out := make([]Option, n)
	for i := range out {
		out[i] = Option{
			Spot:     spots[i],
			Strike:   strikes[i],
			Rate:     0.1,
			Vol:      vols[i],
			Time:     times[i],
			CallFlag: flags[i] < 0.5,
		}
	}
	return out
}

// BlackscholesRef prices one option in double precision — the host
// reference for accuracy metrics.
func BlackscholesRef(o Option) float64 {
	s, k := float64(o.Spot), float64(o.Strike)
	r, v, t := float64(o.Rate), float64(o.Vol), float64(o.Time)
	sqrtT := math.Sqrt(t)
	d1 := (math.Log(s/k) + (r+v*v/2)*t) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	disc := k * math.Exp(-r*t)
	if o.CallFlag {
		return s*poly.CNDFHost(d1) - disc*poly.CNDFHost(d2)
	}
	return disc*poly.CNDFHost(-d2) - s*poly.CNDFHost(-d1)
}

// blackscholesCPU32 prices one option in float32 with the standard
// math library — the CPU baseline kernel.
func blackscholesCPU32(o Option) float32 {
	s, k := float64(o.Spot), float64(o.Strike)
	r, v, t := float64(o.Rate), float64(o.Vol), float64(o.Time)
	sqrtT := math.Sqrt(t)
	d1 := (math.Log(s/k) + (r+v*v/2)*t) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	disc := k * math.Exp(-r*t)
	if o.CallFlag {
		return float32(s*poly.CNDFHost(d1) - disc*poly.CNDFHost(d2))
	}
	return float32(disc*poly.CNDFHost(-d2) - s*poly.CNDFHost(-d1))
}

// BlackscholesCPU runs the measured host baseline with the given
// worker count and reports measured wall time.
func BlackscholesCPU(opts []Option, threads int) Result {
	out := make([]float32, len(opts))
	start := time.Now()
	parallelFor(len(opts), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = blackscholesCPU32(opts[i])
		}
	})
	elapsed := time.Since(start).Seconds()
	var col stats.Collector
	for i, o := range opts {
		col.Add(out[i], BlackscholesRef(o))
	}
	return Result{
		Workload:      "blackscholes",
		Variant:       fmt.Sprintf("cpu-%dt-measured", threads),
		Elements:      len(opts),
		KernelSeconds: elapsed,
		Errors:        col.Result(),
	}
}

// BlackscholesCPUModeled returns the analytic Xeon baseline (§4.1's
// host), so Fig. 9 ratios reproduce on any machine.
func BlackscholesCPUModeled(n, threads int) Result {
	m := DefaultXeon(threads)
	return Result{
		Workload:      "blackscholes",
		Variant:       fmt.Sprintf("cpu-%dt", threads),
		Elements:      n,
		KernelSeconds: m.Seconds(BlackscholesCycles(), n),
	}
}

// BlackscholesPIM runs the portfolio on the PIM system with the given
// math kit, distributing options evenly across cores, and reports
// modeled kernel and transfer time plus accuracy.
func BlackscholesPIM(dpus int, opts []Option, kit Kit) (Result, error) {
	sys := pimsim.NewSystem(pimsim.Config{DPUs: dpus, Cost: kit.Cost})
	n := len(opts)

	// Scatter: five float32 input arrays per core (equal sizes →
	// parallel transfers; the remainder core gets padding).
	per := (n + dpus - 1) / dpus
	inBufs := make([][]byte, dpus)
	for d := 0; d < dpus; d++ {
		buf := make([]byte, per*24)
		for j := 0; j < per; j++ {
			idx := d*per + j
			if idx >= n {
				break
			}
			o := opts[idx]
			putF32(buf, j*24+0, o.Spot)
			putF32(buf, j*24+4, o.Strike)
			putF32(buf, j*24+8, o.Rate)
			putF32(buf, j*24+12, o.Vol)
			putF32(buf, j*24+16, o.Time)
			flag := float32(0)
			if o.CallFlag {
				flag = 1
			}
			putF32(buf, j*24+20, flag)
		}
		inBufs[d] = buf
	}
	inAddrs := sys.ScatterToMRAM(inBufs)

	outAddr := -1
	for d := 0; d < dpus; d++ {
		a := sys.DPU(d).MRAM.MustAlloc(per * 4)
		if outAddr == -1 {
			outAddr = a
		}
	}

	kits := make([]*DeviceKit, dpus)
	for d := 0; d < dpus; d++ {
		k, err := kit.Build(sys.DPU(d))
		if err != nil {
			return Result{}, err
		}
		kits[d] = k
	}

	sys.ResetCycles()
	// Re-charge the input scatter (ResetCycles cleared the clock; the
	// tables above are setup, not execution).
	sys.ChargeHostToPIM(per*24*dpus, true)

	err := sys.Launch(func(ctx *pimsim.Ctx, d int) error {
		k := kits[d]
		mram := ctx.DPU().MRAM
		count := per
		if d*per+count > n {
			count = n - d*per
		}
		if count <= 0 {
			return nil
		}
		// Stream the operand chunk through the scratchpad (§4.1.1).
		ctx.Charge(4) // loop setup
		chunkDMA(ctx, count*24)
		for j := 0; j < count; j++ {
			base := inAddrs[d] + j*24
			s := ctx.LoadStreamedF32(mram, base)
			kk := ctx.LoadStreamedF32(mram, base+4)
			r := ctx.LoadStreamedF32(mram, base+8)
			v := ctx.LoadStreamedF32(mram, base+12)
			t := ctx.LoadStreamedF32(mram, base+16)
			flag := ctx.LoadStreamedF32(mram, base+20)
			price := blackscholesKernel(ctx, k, s, kk, r, v, t, flag >= 0.5)
			ctx.StoreStreamedF32(mram, outAddr+4*j, price)
		}
		chunkDMA(ctx, count*4)
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	kernel := sys.KernelSeconds()
	outs := sys.GatherFromMRAM(outAddr, per*4)

	var col stats.Collector
	for i, o := range opts {
		d, j := i/per, i%per
		col.Add(f32At(outs[d], j*4), BlackscholesRef(o))
	}
	return Result{
		Workload:        "blackscholes",
		Variant:         kit.Name,
		Elements:        n,
		KernelSeconds:   kernel,
		TransferSeconds: sys.TransferSeconds(),
		Errors:          col.Result(),
		TableBytes:      kits[0].TableBytes,
	}, nil
}

// blackscholesKernel prices one option on the PIM core. When the kit
// provides a fixed-point CNDF, the d1/d2 pipeline runs with fixed
// multiplies where the Q3.28 range permits (the paper's fixed-point
// Blackscholes variant).
func blackscholesKernel(ctx *pimsim.Ctx, k *DeviceKit, s, strike, r, v, t float32, call bool) float32 {
	sqrtT := k.Sqrt(ctx, t)
	logSK := k.Log(ctx, ctx.FDiv(s, strike))
	vv := ctx.FMul(v, v)
	num := ctx.FAdd(logSK, ctx.FMul(ctx.FAdd(r, ctx.FMul(0.5, vv)), t))
	vSqrtT := ctx.FMul(v, sqrtT)
	d1 := ctx.FDiv(num, vSqrtT)
	d2 := ctx.FSub(d1, vSqrtT)
	disc := ctx.FMul(strike, k.Exp(ctx, ctx.FNeg(ctx.FMul(r, t))))
	var n1, n2 float32
	if k.CNDFQ != nil {
		n1 = ctx.QToF(k.CNDFQ(ctx, ctx.QFromF(d1)))
		n2 = ctx.QToF(k.CNDFQ(ctx, ctx.QFromF(d2)))
	} else {
		n1 = k.CNDF(ctx, d1)
		n2 = k.CNDF(ctx, d2)
	}
	ctx.Branch()
	if call {
		return ctx.FSub(ctx.FMul(s, n1), ctx.FMul(disc, n2))
	}
	return ctx.FSub(ctx.FMul(disc, ctx.FSub(1, n2)), ctx.FMul(s, ctx.FSub(1, n1)))
}

// --- helpers shared by the workloads ---

func putF32(b []byte, off int, v float32) {
	u := math.Float32bits(v)
	b[off] = byte(u)
	b[off+1] = byte(u >> 8)
	b[off+2] = byte(u >> 16)
	b[off+3] = byte(u >> 24)
}

func f32At(b []byte, off int) float32 {
	u := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	return math.Float32frombits(u)
}

// chunkDMA charges the bulk MRAM↔WRAM streaming of a kernel's operand
// chunk without materializing a scratchpad copy (the per-element loads
// are charged separately as scratchpad accesses).
func chunkDMA(ctx *pimsim.Ctx, bytes int) {
	const maxChunk = 2048
	for bytes > 0 {
		c := bytes
		if c > maxChunk {
			c = maxChunk
		}
		ctx.ChargeDMA(c)
		bytes -= c
	}
}

// parallelFor splits [0, n) across the given number of goroutines.
func parallelFor(n, threads int, body func(lo, hi int)) {
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = n
	}
	prev := runtime.GOMAXPROCS(0)
	_ = prev
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
