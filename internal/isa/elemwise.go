package isa

// Streaming elementwise and reduction loops in assembly — the
// instruction sequences behind the fused-program primitives
// (core.FusedOperator's ChargeElem/ChargeReduce signatures). Each
// routine walks an MRAM-resident float32 vector the way a fused kernel
// phase does: DMA the operand words in, run the softfloat arithmetic,
// keep the running state in registers, and (for the elementwise form)
// DMA the result back out — intermediates never cross the host
// boundary. elemwise_test.go validates the measured issue/DMA cycles
// against closed-form per-element counts and against the cost-model
// charges the fusion executor applies.

// ElemAddLoopSrc streams y[i] = a[i] + b[i] over count float32
// elements. Inputs: r1 = a base (MRAM byte address), r2 = b base,
// r3 = y base, r4 = element count. Calls fadd32 (FAdd32Src must be
// assembled into the same program; it clobbers r1–r13, so all loop
// state lives in r14+ and the caller's return address is parked in
// r14).
const ElemAddLoopSrc = `
elemadd:
    move r16, r1             ; a base
    move r17, r2             ; b base
    move r18, r3             ; y base
    slli r19, r4, 2          ; byte length
    li   r20, 0              ; byte cursor
    move r14, r23            ; caller's return address
elemadd_loop:
    bge  r20, r19, elemadd_done
    add  r15, r16, r20
    mlw  r1, r15, 0          ; a[i]
    add  r15, r17, r20
    mlw  r2, r15, 0          ; b[i]
    jal  r23, fadd32         ; r3 = a[i] + b[i]
    add  r15, r18, r20
    msw  r3, r15, 0          ; y[i]
    addi r20, r20, 4
    jmp  elemadd_loop
elemadd_done:
    ret  r14
`

// ElemAddLoopOverhead is the loop's fixed per-element instruction
// count around each fadd32 call (branch, two address adds + DMA loads,
// the call, address add + DMA store, increment, back-jump).
const ElemAddLoopOverhead = 10

// ReduceSumLoopSrc folds an MRAM float32 vector into a running
// register-resident sum — the reduction accumulate loop of a fused
// phase: one DMA load per element, no stores until the final scalar.
// Inputs: r1 = a base (MRAM byte address), r2 = element count.
// Output: r3 = sum as float32 bits. Accumulates left to right from
// +0.0 (core.ReduceInit(ReduceSum)), calling fadd32 per element.
const ReduceSumLoopSrc = `
reducesum:
    move r16, r1             ; base
    slli r19, r2, 2          ; byte length
    li   r20, 0              ; byte cursor
    li   r21, 0              ; acc = +0.0
    move r14, r23            ; caller's return address
reducesum_loop:
    bge  r20, r19, reducesum_done
    add  r15, r16, r20
    mlw  r2, r15, 0          ; x
    move r1, r21             ; acc
    jal  r23, fadd32         ; r3 = acc + x
    move r21, r3
    addi r20, r20, 4
    jmp  reducesum_loop
reducesum_done:
    move r3, r21
    ret  r14
`

// ReduceSumLoopOverhead is the fixed per-element instruction count
// around each fadd32 call in the reduction loop.
const ReduceSumLoopOverhead = 8

// ReduceMaxLoopSrc folds an MRAM float32 vector into its maximum
// without any softfloat call: each float bit pattern is mapped to a
// monotone unsigned key — flip all bits of negatives, set the sign bit
// of non-negatives — so a single SLTU orders floats the way a
// compare-and-move FCmp sequence would. The accumulator starts at
// −Inf (core.ReduceInit(ReduceMax)); both the winning bits and its key
// stay in registers. Finite inputs only: NaN keys are ordinary large
// keys here, while the FCmp convention keeps the accumulator on
// unordered compares, so the two diverge on NaN.
// Inputs: r1 = a base (MRAM byte address), r2 = element count.
// Output: r3 = max as float32 bits. Leaves r23 intact (leaf routine).
const ReduceMaxLoopSrc = `
reducemax:
    move r16, r1             ; base
    slli r19, r2, 2          ; byte length
    li   r20, 0              ; byte cursor
    li   r21, 0xFF800000     ; acc bits = -Inf
    li   r17, 0x80000000     ; sign mask
    li   r18, -1             ; all ones
    xor  r22, r21, r18       ; acc key = ~acc (acc is negative)
    li   r15, 0
reducemax_loop:
    bge  r20, r19, reducemax_done
    add  r4, r16, r20
    mlw  r4, r4, 0           ; x bits
    and  r5, r4, r17
    beq  r5, r15, reducemax_pos
    xor  r5, r4, r18         ; negative: key = ~x
    jmp  reducemax_key
reducemax_pos:
    or   r5, r4, r17         ; non-negative: key = x | signbit
reducemax_key:
    sltu r6, r22, r5         ; acc key < x key ?
    beq  r6, r15, reducemax_next
    move r21, r4             ; new max
    move r22, r5
reducemax_next:
    addi r20, r20, 4
    jmp  reducemax_loop
reducemax_done:
    move r3, r21
    ret  r23
`

// Per-element instruction counts of the reducemax loop: every element
// retires the base count, negatives retire one extra (the key-flip
// jump), and elements that replace the accumulator retire two more
// (the bits + key moves).
const (
	ReduceMaxBasePerElem   = 10
	ReduceMaxNegExtra      = 1
	ReduceMaxReplaceExtras = 2
)

// ElemwiseValidationProgram assembles the streaming loops together
// with the softfloat adder they call.
func ElemwiseValidationProgram() *Program {
	return MustAssemble(ElemAddLoopSrc + ReduceSumLoopSrc + ReduceMaxLoopSrc + FAdd32Src)
}
