// Package isa implements a small UPMEM-like RISC instruction set — an
// assembler and a cycle-counting interpreter — used to cross-validate
// the pimsim cost model at instruction granularity: routines such as
// the emulated 32-bit multiply, the float↔fixed conversions and the
// fixed-point L-LUT lookup are written in assembly here, executed on
// the interpreter, and their measured instruction counts are compared
// against the per-op charges `pimsim.Ctx` applies (see isa_test.go and
// the validation tests referenced from DESIGN.md §2 item 14).
//
// The ISA mirrors the relevant properties of the UPMEM DPU (§2.1 of
// the paper): 24 general-purpose 32-bit registers per thread, a
// RISC-style three-operand integer instruction set, native shifts and
// a count-leading-zeros instruction, an 8×8-bit multiply step (full
// multiplies are software routines), WRAM loads/stores, and explicit
// MRAM DMA instructions.
package isa

import "fmt"

// NumRegs is the number of general-purpose registers per thread (the
// UPMEM DPU exposes 24).
const NumRegs = 24

// Reg identifies a general-purpose register r0..r23.
type Reg uint8

// String returns the assembly name of the register.
func (r Reg) String() string { return fmt.Sprintf("r%d", r) }

// Op is an instruction opcode.
type Op uint8

// The instruction set.
const (
	// Arithmetic / logic, register forms: rd ← ra ∘ rb.
	ADD Op = iota
	SUB
	AND
	OR
	XOR
	SLL // shift left logical by rb&31
	SRL // shift right logical
	SRA // shift right arithmetic
	// Immediate forms: rd ← ra ∘ imm.
	ADDI
	SUBI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	// MUL8: rd ← (ra & 0xFF) × (rb & 0xFF) — the hardware 8×8
	// multiplier; full-width multiplies are software (routines.go).
	MUL8
	// SLTU: rd ← 1 if ra < rb as unsigned, else 0 — the carry-detect
	// primitive multi-word arithmetic builds on.
	SLTU
	// CLZ: rd ← count of leading zero bits of ra (UPMEM has clz).
	CLZ
	// LI: rd ← imm (sign-extended 32-bit immediate).
	LI
	// MOVE: rd ← ra.
	MOVE
	// Memory: WRAM scratchpad word access, rd/ra value, rb base, imm offset.
	LW // rd ← wram[rb + imm]
	SW // wram[rb + imm] ← ra
	// MRAM DMA: word granularity for simplicity; the engine charges the
	// 8-byte minimum transfer (§2.1).
	MLW // rd ← mram[rb + imm]   (blocks the thread for the DMA latency)
	MSW // mram[rb + imm] ← ra
	// Control flow. Branch targets are resolved labels.
	BEQ // if ra == rb goto target
	BNE
	BLT // signed
	BGE
	JMP
	// JAL: rd ← return address (index of next instruction); jump to
	// target. RET jumps to the address in ra. Together they support
	// one-level (or register-saved) calls.
	JAL
	RET
	// HALT stops the machine.
	HALT
	numOps
)

var opNames = [...]string{
	"add", "sub", "and", "or", "xor", "sll", "srl", "sra",
	"addi", "subi", "andi", "ori", "xori", "slli", "srli", "srai",
	"mul8", "sltu", "clz", "li", "move",
	"lw", "sw", "mlw", "msw",
	"beq", "bne", "blt", "bge", "jmp", "jal", "ret", "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) >= len(opNames) {
		return "op?"
	}
	return opNames[o]
}

// Instr is one decoded instruction.
type Instr struct {
	Op         Op
	Rd, Ra, Rb Reg
	Imm        int32
	// Target is the resolved instruction index for branches/jumps.
	Target int
	// label keeps the unresolved name during assembly (diagnostics).
	label string
}

// Program is an assembled instruction sequence with its symbol table.
type Program struct {
	Instrs []Instr
	Labels map[string]int
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }
