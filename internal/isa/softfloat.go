package isa

// Software floating point in assembly — the two most load-bearing
// constants of the cost model (FAdd=62, FMul=93) validated at
// instruction granularity. Both routines handle normal numbers and
// zeros with truncating rounding; the cost model's charges also cover
// round-to-nearest and special-value handling, so the measured counts
// are expected to come in slightly below the charges (isa_test.go
// asserts agreement within 2×).

// FMul32Src multiplies two float32 bit patterns (r1, r2) into r3.
// Normals and zeros; truncating. The 24×24-bit significand product is
// built from nine 8×8 hardware multiplies accumulated into a 48-bit
// hi:lo pair with SLTU carry detection — exactly the software sequence
// a PIM core without an FPU must run.
const FMul32Src = `
fmul32:
    li   r19, 0
    ; result sign
    xor  r4, r1, r2
    li   r5, 0x80000000
    and  r4, r4, r5
    ; exponent fields (zero operand → zero result)
    srli r5, r1, 23
    andi r5, r5, 0xFF
    beq  r5, r19, fmul_zero
    srli r6, r2, 23
    andi r6, r6, 0xFF
    beq  r6, r19, fmul_zero
    ; significands with implicit one
    slli r7, r1, 9
    srli r7, r7, 9
    ori  r7, r7, 0x800000
    slli r8, r2, 9
    srli r8, r8, 9
    ori  r8, r8, 0x800000
    ; byte split
    andi r11, r7, 0xFF
    srli r12, r7, 8
    andi r12, r12, 0xFF
    srli r13, r7, 16
    andi r14, r8, 0xFF
    srli r15, r8, 8
    andi r15, r15, 0xFF
    srli r16, r8, 16
    ; acc(hi r9, lo r10) = a0*b0
    mul8 r10, r11, r14
    li   r9, 0
    ; k=8: a0*b1, a1*b0
    mul8 r17, r11, r15
    slli r17, r17, 8
    add  r10, r10, r17
    sltu r18, r10, r17
    add  r9, r9, r18
    mul8 r17, r12, r14
    slli r17, r17, 8
    add  r10, r10, r17
    sltu r18, r10, r17
    add  r9, r9, r18
    ; k=16: a0*b2, a1*b1, a2*b0
    mul8 r17, r11, r16
    slli r17, r17, 16
    add  r10, r10, r17
    sltu r18, r10, r17
    add  r9, r9, r18
    mul8 r17, r12, r15
    slli r17, r17, 16
    add  r10, r10, r17
    sltu r18, r10, r17
    add  r9, r9, r18
    mul8 r17, r13, r14
    slli r17, r17, 16
    add  r10, r10, r17
    sltu r18, r10, r17
    add  r9, r9, r18
    ; k=24: a1*b2, a2*b1 (high byte spills into hi)
    mul8 r17, r12, r16
    srli r18, r17, 8
    add  r9, r9, r18
    slli r17, r17, 24
    add  r10, r10, r17
    sltu r18, r10, r17
    add  r9, r9, r18
    mul8 r17, r13, r15
    srli r18, r17, 8
    add  r9, r9, r18
    slli r17, r17, 24
    add  r10, r10, r17
    sltu r18, r10, r17
    add  r9, r9, r18
    ; k=32: a2*b2
    mul8 r17, r13, r16
    add  r9, r9, r17
    ; exponent: e1 + e2 - 127
    add  r5, r5, r6
    subi r5, r5, 127
    ; normalize: product in [2^46, 2^48); bit 47 ⇒ hi ≥ 0x8000
    li   r6, 0x8000
    blt  r9, r6, fmul_no48
    slli r7, r9, 8
    srli r8, r10, 24
    or   r7, r7, r8
    addi r5, r5, 1
    jmp  fmul_pack
fmul_no48:
    slli r7, r9, 9
    srli r8, r10, 23
    or   r7, r7, r8
fmul_pack:
    slli r7, r7, 9
    srli r7, r7, 9
    slli r5, r5, 23
    or   r3, r7, r5
    or   r3, r3, r4
    ret  r23
fmul_zero:
    move r3, r4              ; signed zero
    ret  r23
`

// FAdd32Src adds two float32 bit patterns (r1, r2) into r3. Normals
// and zeros; truncating alignment and CLZ renormalization after
// cancellation.
const FAdd32Src = `
fadd32:
    li   r10, 0
    ; zero operands: return the other
    slli r9, r1, 1
    beq  r9, r10, fadd_ret_b
    slli r9, r2, 1
    beq  r9, r10, fadd_ret_a
    ; unpack a: exp r5, mant r6
    srli r5, r1, 23
    andi r5, r5, 0xFF
    slli r6, r1, 9
    srli r6, r6, 9
    ori  r6, r6, 0x800000
    ; unpack b: exp r7, mant r8
    srli r7, r2, 23
    andi r7, r7, 0xFF
    slli r8, r2, 9
    srli r8, r8, 9
    ori  r8, r8, 0x800000
    ; signs
    li   r11, 0x80000000
    and  r4, r1, r11         ; sa
    and  r12, r2, r11        ; sb
    ; ensure ea >= eb, swapping operands otherwise
    bge  r5, r7, fadd_ordered
    move r13, r5
    move r5, r7
    move r7, r13
    move r13, r6
    move r6, r8
    move r8, r13
    move r13, r4
    move r4, r12
    move r12, r13
    move r13, r1
    move r1, r2
    move r2, r13
fadd_ordered:
    sub  r9, r5, r7          ; alignment distance
    li   r13, 25
    blt  r9, r13, fadd_align
    move r3, r1              ; b vanishes under alignment
    ret  r23
fadd_align:
    srl  r8, r8, r9
    beq  r4, r12, fadd_same
    ; opposite signs: subtract aligned significands
    sub  r6, r6, r8
    bne  r6, r10, fadd_subnz
    move r3, r10             ; exact cancellation → +0
    ret  r23
fadd_subnz:
    bge  r6, r10, fadd_renorm
    sub  r6, r10, r6
    xor  r4, r4, r11         ; flip result sign
fadd_renorm:
    clz  r13, r6
    subi r13, r13, 8         ; left shift to put leading one at bit 23
    sll  r6, r6, r13
    sub  r5, r5, r13
    jmp  fadd_pack
fadd_same:
    add  r6, r6, r8
    li   r13, 0x1000000
    blt  r6, r13, fadd_pack
    srli r6, r6, 1
    addi r5, r5, 1
fadd_pack:
    slli r6, r6, 9
    srli r6, r6, 9
    slli r5, r5, 23
    or   r3, r6, r5
    or   r3, r3, r4
    ret  r23
fadd_ret_a:
    move r3, r1
    ret  r23
fadd_ret_b:
    move r3, r2
    ret  r23
`

// FDiv32Src divides two float32 bit patterns (r1 / r2) into r3.
// Normals and zeros; truncating. The 24-bit quotient comes from a
// restoring shift-subtract loop over the significands — the classic
// software division a PIM core without an FPU runs, and the reason the
// cost model charges FDiv ≈ 2× FMul (§4.2.4: a float division is "much
// costlier than a floating-point multiplication on UPMEM").
const FDiv32Src = `
fdiv32:
    li   r19, 0
    ; sign
    xor  r4, r1, r2
    li   r5, 0x80000000
    and  r4, r4, r5
    ; exponents (zero dividend → zero; zero divisor → ±Inf)
    srli r5, r1, 23
    andi r5, r5, 0xFF
    srli r6, r2, 23
    andi r6, r6, 0xFF
    beq  r5, r19, fdiv_zero
    beq  r6, r19, fdiv_inf
    ; significands
    slli r7, r1, 9
    srli r7, r7, 9
    ori  r7, r7, 0x800000    ; numerator
    slli r8, r2, 9
    srli r8, r8, 9
    ori  r8, r8, 0x800000    ; denominator
    ; exponent: e1 - e2 + 127
    sub  r5, r5, r6
    addi r5, r5, 127
    ; if num < den the leading quotient bit lands one lower
    bge  r7, r8, fdiv_loop_init
    slli r7, r7, 1
    subi r5, r5, 1
fdiv_loop_init:
    ; restoring division: 24 quotient bits
    li   r9, 0               ; quotient
    li   r10, 24             ; bit counter
fdiv_loop:
    slli r9, r9, 1
    blt  r7, r8, fdiv_nosub
    sub  r7, r7, r8
    ori  r9, r9, 1
fdiv_nosub:
    slli r7, r7, 1
    subi r10, r10, 1
    bne  r10, r19, fdiv_loop
    ; quotient in [2^23, 2^24): pack
    slli r9, r9, 9
    srli r9, r9, 9
    slli r5, r5, 23
    or   r3, r9, r5
    or   r3, r3, r4
    ret  r23
fdiv_zero:
    move r3, r4
    ret  r23
fdiv_inf:
    li   r6, 0x7F800000
    or   r3, r4, r6
    ret  r23
`

// LdexpSrc multiplies a float32 (r1 bits) by 2^n (r2) into r3 —
// TransPimLib's custom C99 ldexp (§3.2.2): an integer add on the
// exponent field with zero/overflow guards. This is the cheap
// multiplication that gives the L-LUT its name.
const LdexpSrc = `
ldexp:
    li   r6, 0
    srli r4, r1, 23
    andi r4, r4, 0xFF
    beq  r4, r6, ldexp_zero  ; ±0 (and subnormals) pass through
    add  r4, r4, r2
    ; overflow/underflow clamps (validated domain avoids them; the
    ; branches still cost their cycles)
    li   r7, 255
    bge  r4, r7, ldexp_inf
    blt  r4, r6, ldexp_zero2
    ; splice the new exponent
    li   r7, 0x807FFFFF
    and  r3, r1, r7
    slli r4, r4, 23
    or   r3, r3, r4
    ret  r23
ldexp_zero:
    move r3, r1
    ret  r23
ldexp_zero2:
    li   r7, 0x80000000
    and  r3, r1, r7
    ret  r23
ldexp_inf:
    li   r7, 0x80000000
    and  r3, r1, r7
    li   r7, 0x7F800000
    or   r3, r3, r7
    ret  r23
`

// FSplitSrc splits a non-negative scaled lookup argument t (float bits
// in r1, 1 ≤ t < 2^23) into its integer part (r2) and fractional part
// as float bits (r3) — the bit-level floor/fraction extraction behind
// the interpolated L-LUT's Δ (§3.2.1/§3.2.2): no float→int→float
// round trip, just shifts, masks and one CLZ renormalization.
const FSplitSrc = `
fsplit:
    li   r6, 0
    srli r4, r1, 23
    andi r4, r4, 0xFF
    subi r4, r4, 127         ; unbiased exponent e (0..22 in domain)
    slli r5, r1, 9
    srli r5, r5, 9
    ori  r5, r5, 0x800000    ; 24-bit significand
    li   r7, 23
    sub  r7, r7, r4          ; 23 - e = fraction bit count
    srl  r2, r5, r7          ; integer part
    ; remainder bits -> fraction float
    li   r8, 1
    sll  r8, r8, r7
    subi r8, r8, 1
    and  r9, r5, r8          ; rem = frac × 2^(23-e)
    beq  r9, r6, fsplit_zero
    clz  r10, r9
    ; place leading one at bit 23: left shift by clz-8
    subi r11, r10, 8
    sll  r9, r9, r11
    ; frac = rem × 2^(e-23); rem's leading bit sits at 31-clz, so the
    ; biased exponent is 127 + (31-clz) - (23-e) = 158 - clz - (23-e).
    li   r12, 158
    sub  r12, r12, r10
    sub  r12, r12, r7        ; biased exponent of frac
    slli r9, r9, 9
    srli r9, r9, 9
    slli r12, r12, 23
    or   r3, r9, r12
    ret  r23
fsplit_zero:
    move r3, r6
    ret  r23
`

// SineLLUTInterpSrc is the complete interpolated float L-LUT sine —
// the paper's recommended method (Key Takeaway 1) — in assembly:
// ldexp-scale the angle, bit-split into index and Δ, fetch the two
// entries, and interpolate with one softfloat multiply. Inputs:
// r1 = x (float bits, 0 ≤ x < 2π), r2 = table base (WRAM), r3 = density
// exponent n, r4 = entry count. Output: r2 = sin(x) float bits.
const SineLLUTInterpSrc = `
sine_llut_i:
    move r20, r2             ; table base
    move r21, r4             ; entries
    move r2, r3
    jal  r23, ldexp          ; r3 = x * 2^n
    move r1, r3
    jal  r23, fsplit         ; r2 = idx, r3 = delta (float bits)
    move r22, r3             ; delta
    ; clamp idx to [0, entries-2]
    li   r6, 0
    bge  r2, r6, sli_lo
    move r2, r6
sli_lo:
    subi r7, r21, 2
    blt  r2, r7, sli_hi
    move r2, r7
sli_hi:
    slli r2, r2, 2
    add  r2, r2, r20
    lw   r1, r2, 4           ; l1
    lw   r20, r2, 0          ; l0 (r20-r22 survive the softfloat calls)
    move r21, r22            ; delta
    ; dl = l1 - l0 (flip the sign bit of l0, then softfloat add)
    li   r7, 0x80000000
    xor  r2, r20, r7
    jal  r23, fadd32         ; r3 = l1 - l0
    ; term = dl * delta
    move r1, r3
    move r2, r21
    jal  r23, fmul32         ; r3 = dl*delta
    ; result = l0 + term
    move r1, r20
    move r2, r3
    jal  r23, fadd32
    move r2, r3
    halt
`

// InterpValidationProgram assembles the interpolated-sine pipeline
// with its softfloat dependencies.
func InterpValidationProgram() *Program {
	return MustAssemble(SineLLUTInterpSrc + LdexpSrc + FSplitSrc + FAdd32Src + FMul32Src)
}
