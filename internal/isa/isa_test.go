package isa

import (
	"math"
	"testing"
	"testing/quick"

	"transpimlib/internal/fixed"
	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
)

func newMachine() *Machine {
	return NewMachine(
		pimsim.NewMem("wram", pimsim.DefaultWRAMSize, 4),
		pimsim.NewMem("mram", pimsim.DefaultMRAMSize, 8),
		pimsim.Default())
}

// --- assembler ---

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
        ; a comment
        start:  li r1, 5
                addi r1, r1, 3   # trailing comment
                halt
    `)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("got %d instructions", p.Len())
	}
	if p.Labels["start"] != 0 {
		t.Fatal("label not at 0")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",             // unknown mnemonic
		"add r1, r2",               // wrong arity
		"li r99, 5",                // bad register
		"jmp nowhere",              // undefined label
		"dup: li r1, 0\ndup: halt", // duplicate label
		"li r1, 0x1FFFFFFFF",       // immediate overflow
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestAssembleHexAndNegativeImm(t *testing.T) {
	p, err := Assemble("li r1, 0xFF\nli r2, -42\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine()
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 255 || m.Regs[2] != -42 {
		t.Fatalf("regs = %d, %d", m.Regs[1], m.Regs[2])
	}
}

// --- interpreter ---

func TestArithmetic(t *testing.T) {
	p := MustAssemble(`
        li r1, 7
        li r2, 3
        add r3, r1, r2
        sub r4, r1, r2
        and r5, r1, r2
        or  r6, r1, r2
        xor r7, r1, r2
        slli r8, r1, 2
        srai r9, r1, 1
        halt
    `)
	m := newMachine()
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	want := map[Reg]int32{3: 10, 4: 4, 5: 3, 6: 7, 7: 4, 8: 28, 9: 3}
	for reg, v := range want {
		if m.Regs[reg] != v {
			t.Errorf("r%d = %d, want %d", reg, m.Regs[reg], v)
		}
	}
}

func TestShiftsAndCLZ(t *testing.T) {
	p := MustAssemble(`
        li r1, -8
        srai r2, r1, 1      ; arithmetic: -4
        srli r3, r1, 28     ; logical: 0xF
        li r4, 0x00010000
        clz r5, r4          ; 15 leading zeros
        halt
    `)
	m := newMachine()
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[2] != -4 || m.Regs[3] != 0xF || m.Regs[5] != 15 {
		t.Fatalf("r2=%d r3=%#x r5=%d", m.Regs[2], m.Regs[3], m.Regs[5])
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	p := MustAssemble(`
        li r1, 0      ; sum
        li r2, 1      ; i
        li r3, 11
    loop:
        bge r2, r3, done
        add r1, r1, r2
        addi r2, r2, 1
        jmp loop
    done:
        halt
    `)
	m := newMachine()
	if err := m.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 55 {
		t.Fatalf("sum = %d", m.Regs[1])
	}
}

func TestWRAMLoadStore(t *testing.T) {
	p := MustAssemble(`
        li r1, 1234
        li r2, 64
        sw r1, r2, 4
        lw r3, r2, 4
        halt
    `)
	m := newMachine()
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 1234 {
		t.Fatalf("lw = %d", m.Regs[3])
	}
}

func TestMRAMChargesDMA(t *testing.T) {
	p := MustAssemble(`
        li r1, 77
        li r2, 128
        msw r1, r2, 0
        mlw r3, r2, 0
        halt
    `)
	m := newMachine()
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[3] != 77 {
		t.Fatalf("mlw = %d", m.Regs[3])
	}
	if m.DMACycles() == 0 {
		t.Fatal("MRAM access must occupy the DMA engine")
	}
}

func TestJALRet(t *testing.T) {
	p := MustAssemble(`
        li r1, 20
        jal r23, double
        halt
    double:
        add r1, r1, r1
        ret r23
    `)
	m := newMachine()
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 40 {
		t.Fatalf("r1 = %d", m.Regs[1])
	}
}

func TestRunawayGuard(t *testing.T) {
	p := MustAssemble("loop: jmp loop")
	m := newMachine()
	if err := m.Run(p, 50); err == nil {
		t.Fatal("infinite loop must trip the guard")
	}
}

func TestRunFromUnknownLabel(t *testing.T) {
	p := MustAssemble("halt")
	if err := newMachine().RunFrom(p, "nope", 10); err == nil {
		t.Fatal("unknown label must fail")
	}
}

// --- routines: correctness ---

func TestMul32Routine(t *testing.T) {
	p := MustAssemble(Mul32Src)
	m := newMachine()
	cases := [][2]int32{{3, 4}, {0, 99}, {-5, 7}, {12345, 6789}, {-1, -1}, {1 << 16, 1 << 15}}
	for _, c := range cases {
		m.Reset()
		m.Regs[1], m.Regs[2] = c[0], c[1]
		m.Regs[23] = int32(p.Len()) // return past the end
		if err := m.RunFrom(p, "mul32", 1000); err != nil {
			t.Fatal(err)
		}
		if m.Regs[3] != c[0]*c[1] {
			t.Errorf("mul32(%d, %d) = %d, want %d", c[0], c[1], m.Regs[3], c[0]*c[1])
		}
	}
}

func TestPropMul32Routine(t *testing.T) {
	p := MustAssemble(Mul32Src)
	m := newMachine()
	f := func(a, b int32) bool {
		m.Reset()
		m.Regs[1], m.Regs[2] = a, b
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "mul32", 1000); err != nil {
			return false
		}
		return m.Regs[3] == a*b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestF2QRoutine(t *testing.T) {
	p := MustAssemble(F2QSrc)
	m := newMachine()
	for _, v := range []float32{0, 1, -1, 0.5, 3.14159, -6.25, 7.5, 0.001} {
		m.Reset()
		m.Regs[1] = int32(math.Float32bits(v))
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "f2q", 1000); err != nil {
			t.Fatal(err)
		}
		got := fixed.Q3_28(m.Regs[2]).Float64()
		if math.Abs(got-float64(v)) > 1.0/(1<<28)+math.Abs(float64(v))*1e-7 {
			t.Errorf("f2q(%v) = %v", v, got)
		}
	}
}

func TestQ2FRoutine(t *testing.T) {
	p := MustAssemble(Q2FSrc)
	m := newMachine()
	for _, v := range []float64{0, 1, -1, 0.5, 3.14159, -6.25, 7.5, 1.0 / 1024} {
		m.Reset()
		m.Regs[1] = int32(fixed.FromFloat64(v))
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "q2f", 1000); err != nil {
			t.Fatal(err)
		}
		got := float64(math.Float32frombits(uint32(m.Regs[2])))
		// Truncating conversion: relative error up to ~1 ulp of float32
		// plus the Q3.28 quantization.
		if math.Abs(got-v) > math.Abs(v)*2e-7+1.0/(1<<28) {
			t.Errorf("q2f(%v) = %v", v, got)
		}
	}
}

func TestPropF2QQ2FRoundTrip(t *testing.T) {
	p := MustAssemble(F2QSrc + Q2FSrc)
	m := newMachine()
	f := func(u float32) bool {
		v := float32(math.Mod(float64(u), 7.9))
		if v != v {
			return true
		}
		m.Reset()
		m.Regs[1] = int32(math.Float32bits(v))
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "f2q", 1000); err != nil {
			return false
		}
		m.Regs[1] = m.Regs[2]
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "q2f", 1000); err != nil {
			return false
		}
		got := float64(math.Float32frombits(uint32(m.Regs[1+1])))
		return math.Abs(got-float64(v)) <= math.Abs(float64(v))*3e-7+1.0/(1<<27)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// --- cost-model validation (DESIGN.md §2 item 14) ---

// TestMul32CountValidatesIMulCost: the software multiply retires ~43
// instructions; the cost model charges IMul=32 — same order, within 2×.
func TestMul32CountValidatesIMulCost(t *testing.T) {
	p := MustAssemble(Mul32Src)
	m := newMachine()
	m.Regs[1], m.Regs[2] = 12345, -678
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, "mul32", 1000); err != nil {
		t.Fatal(err)
	}
	got := float64(m.IssueCycles())
	charged := float64(pimsim.Default().IMul)
	if r := got / charged; r < 0.5 || r > 2 {
		t.Fatalf("asm multiply: %v instructions vs IMul charge %v (ratio %.2f, want 0.5-2)",
			got, charged, r)
	}
	t.Logf("asm mul32: %v instructions (cost model charges %v)", got, charged)
}

// TestSineFixedPipelineValidatesCtxCharges runs the complete
// non-interpolated fixed-point L-LUT sine (float in → convert →
// lookup → convert → float out) in assembly and compares both the
// result and the instruction count against the Ctx-based evaluator.
func TestSineFixedPipelineValidatesCtxCharges(t *testing.T) {
	const n = 10 // density exponent
	tab, err := lut.BuildFixedLLUT(math.Sin, 0, 2*math.Pi, n, false)
	if err != nil {
		t.Fatal(err)
	}

	// Ctx-based evaluator on a DPU.
	dpu := pimsim.NewDPU(0, pimsim.Default(), 16)
	dev, err := tab.Load(dpu, pimsim.InWRAM)
	if err != nil {
		t.Fatal(err)
	}

	// Assembly version against the same DPU WRAM (the table already
	// lives there at offset 0).
	prog := ValidationProgram()
	m := NewMachineForDPU(dpu)

	var asmInstrs float64
	samples := 0
	for x := 0.1; x < 2*math.Pi; x += 0.37 {
		xf := float32(x)

		dpu.ResetCycles()
		want := dev.EvalFloat(dpu.NewCtx(), xf)
		ctxCycles := float64(dpu.Cycles())

		m.Reset()
		m.Regs[1] = int32(math.Float32bits(xf))
		m.Regs[2] = 0 // table base address in WRAM
		m.Regs[3] = int32(tab.P)
		m.Regs[4] = int32(fixed.FracBits - n)
		m.Regs[5] = int32(len(tab.Entries))
		if err := m.RunFrom(prog, "sine_fixed", 10000); err != nil {
			t.Fatal(err)
		}
		got := math.Float32frombits(uint32(m.Regs[2]))

		// Results agree to float32 truncation (the asm q2f truncates
		// where the Ctx conversion rounds).
		if math.Abs(float64(got)-float64(want)) > 3e-7 {
			t.Errorf("asm sine(%v) = %v, ctx = %v", xf, got, want)
		}
		asmInstrs += float64(m.IssueCycles())
		samples++
		_ = ctxCycles
	}
	asmPer := asmInstrs / float64(samples)

	dpu.ResetCycles()
	ctx := dpu.NewCtx()
	for x := 0.1; x < 2*math.Pi; x += 0.37 {
		dev.EvalFloat(ctx, float32(x))
	}
	ctxPer := float64(dpu.Cycles()) / float64(samples)

	// The Ctx charge and the instruction-level count must agree within
	// ~2×: this is the calibration check for the conversion-dominated
	// fixed path (DESIGN.md item 14).
	if r := asmPer / ctxPer; r < 0.5 || r > 2 {
		t.Fatalf("asm sine pipeline: %.1f instrs/elem vs ctx charge %.1f cycles/elem (ratio %.2f)",
			asmPer, ctxPer, r)
	}
	t.Logf("asm fixed L-LUT sine: %.1f instrs/elem; ctx charges %.1f cycles/elem", asmPer, ctxPer)
}

func TestFixedLLUTRoutineMatchesHost(t *testing.T) {
	const n = 9
	tab, err := lut.BuildFixedLLUT(math.Sin, 0, 2*math.Pi, n, false)
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine()
	// Write the table into WRAM at 0.
	for i, e := range tab.Entries {
		m.WRAM.PutInt32(4*i, int32(e))
	}
	prog := MustAssemble(FixedLLUTSrc)
	for x := 0.0; x < 2*math.Pi; x += 0.21 {
		q := fixed.FromFloat64(x)
		m.Reset()
		m.Regs[1] = int32(q)
		m.Regs[2] = 0
		m.Regs[3] = int32(tab.P)
		m.Regs[4] = int32(fixed.FracBits - n)
		m.Regs[5] = int32(len(tab.Entries))
		m.Regs[23] = int32(prog.Len())
		if err := m.RunFrom(prog, "llut_fixed", 1000); err != nil {
			t.Fatal(err)
		}
		if got, want := fixed.Q3_28(m.Regs[6]), tab.EvalHost(q); got != want {
			t.Errorf("asm lookup(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestOpAndRegStrings(t *testing.T) {
	if ADD.String() != "add" || HALT.String() != "halt" {
		t.Error("op names wrong")
	}
	if Op(200).String() != "op?" {
		t.Error("out-of-range op should be op?")
	}
	if Reg(5).String() != "r5" {
		t.Error("reg name wrong")
	}
}

// --- 64-bit CORDIC step validation ---

func splitI64(v int64) (hi, lo int32) { return int32(v >> 32), int32(uint32(v)) }
func joinI64(hi, lo int32) int64      { return int64(hi)<<32 | int64(uint32(lo)) }

func TestCordicStepRoutine(t *testing.T) {
	p := MustAssemble(CordicStepSrc)
	m := newMachine()
	cases := []struct {
		x, y, z, phi int64
		s            uint
	}{
		{1 << 40, 0, 3 << 38, 7 << 35, 1},
		{0x0000_1234_5678_9ABC, -0x42_0000_0011, 55, 3, 7},
		{-(1 << 41), 1 << 39, -12345, 678, 13},
		{1, -1, 0, 1, 31},
	}
	for _, c := range cases {
		m.Reset()
		m.Regs[1], m.Regs[2] = splitI64(c.x)
		m.Regs[3], m.Regs[4] = splitI64(c.y)
		m.Regs[5], m.Regs[6] = splitI64(c.z)
		m.Regs[7] = int32(c.s)
		m.Regs[8], m.Regs[9] = splitI64(c.phi)
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "cordic_step", 1000); err != nil {
			t.Fatal(err)
		}
		wantX := c.x - (c.y >> c.s)
		wantY := c.y + (c.x >> c.s)
		wantZ := c.z - c.phi
		if got := joinI64(m.Regs[1], m.Regs[2]); got != wantX {
			t.Errorf("x: got %#x want %#x (s=%d)", got, wantX, c.s)
		}
		if got := joinI64(m.Regs[3], m.Regs[4]); got != wantY {
			t.Errorf("y: got %#x want %#x (s=%d)", got, wantY, c.s)
		}
		if got := joinI64(m.Regs[5], m.Regs[6]); got != wantZ {
			t.Errorf("z: got %#x want %#x (s=%d)", got, wantZ, c.s)
		}
	}
}

func TestPropCordicStepRoutine(t *testing.T) {
	p := MustAssemble(CordicStepSrc)
	m := newMachine()
	f := func(x, y, z, phi int64, sRaw uint8) bool {
		s := uint(sRaw%31) + 1
		m.Reset()
		m.Regs[1], m.Regs[2] = splitI64(x)
		m.Regs[3], m.Regs[4] = splitI64(y)
		m.Regs[5], m.Regs[6] = splitI64(z)
		m.Regs[7] = int32(s)
		m.Regs[8], m.Regs[9] = splitI64(phi)
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "cordic_step", 1000); err != nil {
			return false
		}
		return joinI64(m.Regs[1], m.Regs[2]) == x-(y>>s) &&
			joinI64(m.Regs[3], m.Regs[4]) == y+(x>>s) &&
			joinI64(m.Regs[5], m.Regs[6]) == z-phi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCordicStepCountValidatesI64Charges: the assembly iteration body
// retires ~23 instructions; the Ctx-based CORDIC charges per iteration
// 2×I64Shr + 3×I64Add/Sub + I64Cmp + table fetch + loop ≈ 32 cycles —
// same order, within 2×.
func TestCordicStepCountValidatesI64Charges(t *testing.T) {
	p := MustAssemble(CordicStepSrc)
	m := newMachine()
	m.Regs[1], m.Regs[2] = splitI64(1 << 40)
	m.Regs[7] = 5
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, "cordic_step", 1000); err != nil {
		t.Fatal(err)
	}
	asm := float64(m.IssueCycles())
	cm := pimsim.Default()
	// The Ctx charge for the arithmetic body of one iteration (without
	// the table fetch and loop bookkeeping, which the asm also omits).
	charged := float64(2*cm.I64Shr + 3*cm.I64Add + cm.I64Add /*cmp*/)
	if r := asm / charged; r < 0.5 || r > 2 {
		t.Fatalf("asm cordic step %v instrs vs charge %v (ratio %.2f)", asm, charged, r)
	}
	t.Logf("asm cordic step: %v instructions (ctx charges %v per iteration body)", asm, charged)
}

// --- 32×32→64 multiply ---

func TestMul64Routine(t *testing.T) {
	p := MustAssemble(Mul32x32to64Src)
	m := newMachine()
	cases := [][2]uint32{
		{3, 4}, {0xFFFFFFFF, 0xFFFFFFFF}, {0x12345678, 0x9ABCDEF0},
		{1 << 31, 2}, {0, 77}, {0xDEADBEEF, 0xCAFEBABE},
	}
	for _, c := range cases {
		m.Reset()
		m.Regs[1], m.Regs[2] = int32(c[0]), int32(c[1])
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "mul64", 1000); err != nil {
			t.Fatal(err)
		}
		want := uint64(c[0]) * uint64(c[1])
		got := uint64(uint32(m.Regs[3]))<<32 | uint64(uint32(m.Regs[4]))
		if got != want {
			t.Errorf("mul64(%#x, %#x) = %#x, want %#x", c[0], c[1], got, want)
		}
	}
}

func TestPropMul64Routine(t *testing.T) {
	p := MustAssemble(Mul32x32to64Src)
	m := newMachine()
	f := func(a, b uint32) bool {
		m.Reset()
		m.Regs[1], m.Regs[2] = int32(a), int32(b)
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "mul64", 1000); err != nil {
			return false
		}
		got := uint64(uint32(m.Regs[3]))<<32 | uint64(uint32(m.Regs[4]))
		return got == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMul64CountBoundsI64MulCharge: the full 64-bit product retires
// ~83 instructions on this ISA against the I64Mul=34 charge. The
// charge models UPMEM's fused mul_step (shift+multiply+accumulate per
// instruction, ~32 instructions for a full multiply); our validation
// ISA's plain 8×8 multiplier needs ~2.4× that. This test pins the
// measured ratio so a cost-model revision has an anchor (see
// EXPERIMENTS.md).
func TestMul64CountBoundsI64MulCharge(t *testing.T) {
	p := MustAssemble(Mul32x32to64Src)
	m := newMachine()
	m.Regs[1], m.Regs[2] = int32(0x12345678), int32(0x0BCDEF01)
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, "mul64", 1000); err != nil {
		t.Fatal(err)
	}
	asm := float64(m.IssueCycles())
	charged := float64(pimsim.Default().I64Mul)
	if r := asm / charged; r < 1 || r > 3 {
		t.Fatalf("mul64 asm %v instrs vs I64Mul charge %v (ratio %.2f, expected 1-3)", asm, charged, r)
	}
	t.Logf("asm mul64: %v instructions on plain-MUL8 ISA (I64Mul charges %v, modeling UPMEM mul_step)", asm, charged)
}
