package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into a Program. Syntax, one
// instruction per line:
//
//	; comment, or # comment
//	label:
//	    add   r1, r2, r3        ; rd, ra, rb
//	    addi  r1, r2, -5        ; rd, ra, imm
//	    li    r4, 0x1234
//	    lw    r5, r6, 8         ; rd, base, offset
//	    sw    r5, r6, 8         ; value, base, offset
//	    beq   r1, r2, done      ; ra, rb, label
//	    jmp   loop
//	    jal   r23, mul32        ; link register, label
//	    ret   r23
//	    halt
//
// Immediates accept decimal and 0x-prefixed hex.
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: map[string]int{}}
	type patch struct {
		instr int
		label string
	}
	var patches []patch

	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t,") {
				name := strings.TrimSpace(line[:i])
				if name == "" {
					return nil, fmt.Errorf("isa: line %d: empty label", lineNo)
				}
				if _, dup := p.Labels[name]; dup {
					return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo, name)
				}
				p.Labels[name] = len(p.Instrs)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(line)
		mnemonic := strings.ToLower(fields[0])
		rest := strings.TrimSpace(line[len(fields[0]):])
		var args []string
		if rest != "" {
			for _, a := range strings.Split(rest, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}

		op, ok := opByName(mnemonic)
		if !ok {
			return nil, fmt.Errorf("isa: line %d: unknown mnemonic %q", lineNo, mnemonic)
		}
		in := Instr{Op: op, Target: -1}
		bad := func() error {
			return fmt.Errorf("isa: line %d: bad operands for %s: %q", lineNo, mnemonic, rest)
		}
		switch op {
		case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, MUL8, SLTU:
			if len(args) != 3 {
				return nil, bad()
			}
			var err error
			if in.Rd, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
			if in.Ra, err = parseReg(args[1]); err != nil {
				return nil, bad()
			}
			if in.Rb, err = parseReg(args[2]); err != nil {
				return nil, bad()
			}
		case ADDI, SUBI, ANDI, ORI, XORI, SLLI, SRLI, SRAI:
			if len(args) != 3 {
				return nil, bad()
			}
			var err error
			if in.Rd, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
			if in.Ra, err = parseReg(args[1]); err != nil {
				return nil, bad()
			}
			if in.Imm, err = parseImm(args[2]); err != nil {
				return nil, bad()
			}
		case CLZ, MOVE:
			if len(args) != 2 {
				return nil, bad()
			}
			var err error
			if in.Rd, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
			if in.Ra, err = parseReg(args[1]); err != nil {
				return nil, bad()
			}
		case LI:
			if len(args) != 2 {
				return nil, bad()
			}
			var err error
			if in.Rd, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
			if in.Imm, err = parseImm(args[1]); err != nil {
				return nil, bad()
			}
		case LW, MLW:
			if len(args) != 3 {
				return nil, bad()
			}
			var err error
			if in.Rd, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
			if in.Rb, err = parseReg(args[1]); err != nil {
				return nil, bad()
			}
			if in.Imm, err = parseImm(args[2]); err != nil {
				return nil, bad()
			}
		case SW, MSW:
			if len(args) != 3 {
				return nil, bad()
			}
			var err error
			if in.Ra, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
			if in.Rb, err = parseReg(args[1]); err != nil {
				return nil, bad()
			}
			if in.Imm, err = parseImm(args[2]); err != nil {
				return nil, bad()
			}
		case BEQ, BNE, BLT, BGE:
			if len(args) != 3 {
				return nil, bad()
			}
			var err error
			if in.Ra, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
			if in.Rb, err = parseReg(args[1]); err != nil {
				return nil, bad()
			}
			in.label = args[2]
			patches = append(patches, patch{len(p.Instrs), args[2]})
		case JMP:
			if len(args) != 1 {
				return nil, bad()
			}
			in.label = args[0]
			patches = append(patches, patch{len(p.Instrs), args[0]})
		case JAL:
			if len(args) != 2 {
				return nil, bad()
			}
			var err error
			if in.Rd, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
			in.label = args[1]
			patches = append(patches, patch{len(p.Instrs), args[1]})
		case RET:
			if len(args) != 1 {
				return nil, bad()
			}
			var err error
			if in.Ra, err = parseReg(args[0]); err != nil {
				return nil, bad()
			}
		case HALT:
			if len(args) != 0 {
				return nil, bad()
			}
		default:
			return nil, fmt.Errorf("isa: line %d: unhandled op %v", lineNo, op)
		}
		p.Instrs = append(p.Instrs, in)
	}

	for _, pt := range patches {
		target, ok := p.Labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", pt.label)
		}
		p.Instrs[pt.instr].Target = target
	}
	return p, nil
}

// MustAssemble panics on assembly errors; for the built-in routines.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func opByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name {
			return Op(i), true
		}
	}
	return 0, false
}

func parseReg(s string) (Reg, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if v > 0xFFFFFFFF || v < -0x80000000 {
		return 0, fmt.Errorf("isa: immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}
