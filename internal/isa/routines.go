package isa

// Hand-written assembly routines for the cost-model validation. Each
// routine follows a tiny convention: arguments in r1..r5, result in
// the documented register, r23 is the link register, r12+ are scratch.

// Mul32Src computes the low 32 bits of r1 × r2 into r3 using only the
// 8×8 hardware multiplier — the software multiply the UPMEM runtime
// emulates (§2.1: "32-bit integer multiplication … emulated"). Ten
// byte-products with shifts and adds.
const Mul32Src = `
mul32:
    andi r4, r1, 0xFF        ; a0
    srli r5, r1, 8
    andi r5, r5, 0xFF        ; a1
    srli r6, r1, 16
    andi r6, r6, 0xFF        ; a2
    srli r7, r1, 24          ; a3
    andi r8, r2, 0xFF        ; b0
    srli r9, r2, 8
    andi r9, r9, 0xFF        ; b1
    srli r10, r2, 16
    andi r10, r10, 0xFF      ; b2
    srli r11, r2, 24         ; b3
    mul8 r3, r4, r8          ; a0*b0
    mul8 r12, r4, r9         ; a0*b1 << 8
    slli r12, r12, 8
    add  r3, r3, r12
    mul8 r12, r5, r8         ; a1*b0 << 8
    slli r12, r12, 8
    add  r3, r3, r12
    mul8 r12, r4, r10        ; a0*b2 << 16
    slli r12, r12, 16
    add  r3, r3, r12
    mul8 r12, r5, r9         ; a1*b1 << 16
    slli r12, r12, 16
    add  r3, r3, r12
    mul8 r12, r6, r8         ; a2*b0 << 16
    slli r12, r12, 16
    add  r3, r3, r12
    mul8 r12, r4, r11        ; a0*b3 << 24
    slli r12, r12, 24
    add  r3, r3, r12
    mul8 r12, r5, r10        ; a1*b2 << 24
    slli r12, r12, 24
    add  r3, r3, r12
    mul8 r12, r6, r9         ; a2*b1 << 24
    slli r12, r12, 24
    add  r3, r3, r12
    mul8 r12, r7, r8         ; a3*b0 << 24
    slli r12, r12, 24
    add  r3, r3, r12
    ret  r23
`

// F2QSrc converts a float32 bit pattern (r1) to Q3.28 (r2): extract
// the fields, shift the significand by exp−122, apply the sign.
// Subnormal and out-of-range inputs are outside the validated domain.
const F2QSrc = `
f2q:
    li   r6, 0
    srli r4, r1, 23
    andi r4, r4, 0xFF        ; exponent field
    beq  r4, r6, f2q_zero
    slli r5, r1, 9
    srli r5, r5, 9           ; mantissa
    ori  r5, r5, 0x800000    ; implicit one
    subi r7, r4, 122         ; shift = exp-127-23+28
    blt  r7, r6, f2q_right
    sll  r2, r5, r7
    jmp  f2q_sign
f2q_right:
    sub  r8, r6, r7
    srl  r2, r5, r8
f2q_sign:
    bge  r1, r6, f2q_done
    sub  r2, r6, r2
f2q_done:
    ret  r23
f2q_zero:
    move r2, r6
    ret  r23
`

// Q2FSrc converts Q3.28 (r1) to a float32 bit pattern (r2):
// sign-split, CLZ normalization, exponent assembly. Truncating (the
// cost model's IToF charge includes rounding we skip here).
const Q2FSrc = `
q2f:
    li   r6, 0
    beq  r1, r6, q2f_zero
    li   r9, 0
    bge  r1, r6, q2f_pos
    li   r9, 1
    sub  r1, r6, r1
q2f_pos:
    clz  r3, r1              ; leading zeros
    li   r7, 8
    sub  r8, r7, r3          ; right-shift = 8 - clz
    blt  r8, r6, q2f_left
    srl  r5, r1, r8
    jmp  q2f_exp
q2f_left:
    sub  r8, r6, r8
    sll  r5, r1, r8
q2f_exp:
    li   r7, 130             ; biased exponent = 130 - clz
    sub  r7, r7, r3
    slli r7, r7, 23
    slli r5, r5, 9           ; drop the implicit one
    srli r5, r5, 9
    or   r2, r5, r7
    beq  r9, r6, q2f_done
    li   r7, 0x80000000
    or   r2, r2, r7
q2f_done:
    ret  r23
q2f_zero:
    move r2, r6
    ret  r23
`

// FixedLLUTSrc is the non-interpolated fixed-point L-LUT lookup
// (§3.2.2): subtract P, arithmetic-shift to the index, clamp, load.
// Inputs: r1 = x (Q3.28), r2 = table base (WRAM byte address),
// r3 = P (Q3.28), r4 = shift amount, r5 = entry count.
// Output: r6 = table entry (Q3.28).
const FixedLLUTSrc = `
llut_fixed:
    sub  r7, r1, r3          ; diff = x - P
    sra  r7, r7, r4          ; idx = diff >> shift
    li   r8, 0
    bge  r7, r8, llut_lo_ok
    move r7, r8
llut_lo_ok:
    blt  r7, r5, llut_hi_ok
    subi r7, r5, 1
llut_hi_ok:
    slli r7, r7, 2           ; byte offset
    add  r7, r7, r2
    lw   r6, r7, 0
    ret  r23
`

// SineFixedSrc is the full non-interpolated fixed-point L-LUT *sine*
// path as the microbenchmark measures it: float bits in → f2q →
// lookup → q2f → float bits out. Inputs: r1 = x (float bits),
// r2 = table base, r3 = P, r4 = shift, r5 = entries. Output: r2 =
// sin(x) float bits. Calls the routines above (they must be assembled
// into the same program).
const SineFixedSrc = `
sine_fixed:
    move r20, r2             ; save table args across calls
    move r21, r3
    move r22, r4
    move r19, r5
    jal  r23, f2q            ; r1 floatbits -> r2 Q3.28
    move r1, r2
    move r2, r20
    move r3, r21
    move r4, r22
    move r5, r19
    jal  r23, llut_fixed     ; -> r6
    move r1, r6
    jal  r23, q2f            ; r1 Q3.28 -> r2 floatbits
    halt
`

// ValidationProgram assembles every routine into one program.
func ValidationProgram() *Program {
	return MustAssemble(SineFixedSrc + F2QSrc + Q2FSrc + FixedLLUTSrc + Mul32Src)
}

// CordicStepSrc is one circular-mode rotation-mode CORDIC iteration
// for d = +1 (the z ≥ 0 branch of §3.1) on 64-bit fixed-point values
// held as register pairs: x = r1:r2 (hi:lo), y = r3:r4, z = r5:r6,
// shift amount s ∈ [1, 31] in r7, φᵢ = r8:r9. Updates x, y, z in
// place:
//
//	x ← x − (y ≫ s);  y ← y + (x_old ≫ s);  z ← z − φᵢ
//
// This is the instruction sequence behind pimsim's per-iteration
// charge (two I64Shr, three I64Add/Sub, one compare): multi-word
// shifts via funnel or-ing, adds/subs with SLTU carry detection.
const CordicStepSrc = `
cordic_step:
    li   r12, 32
    sub  r12, r12, r7       ; 32 - s
    ; ys = y >> s  ->  r10:r11
    srl  r11, r4, r7
    sll  r13, r3, r12
    or   r11, r11, r13
    sra  r10, r3, r7
    ; xs = x >> s  ->  r13:r14
    srl  r14, r2, r7
    sll  r15, r1, r12
    or   r14, r14, r15
    sra  r13, r1, r7
    ; x -= ys (borrow via unsigned compare)
    sltu r15, r2, r11
    sub  r2, r2, r11
    sub  r1, r1, r10
    sub  r1, r1, r15
    ; y += xs (carry via unsigned compare)
    add  r4, r4, r14
    sltu r15, r4, r14
    add  r3, r3, r13
    add  r3, r3, r15
    ; z -= phi
    sltu r15, r6, r9
    sub  r6, r6, r9
    sub  r5, r5, r8
    sub  r5, r5, r15
    ret  r23
`

// Mul32x32to64Src computes the full 64-bit product of r1 × r2
// (unsigned interpretation) into r3 (hi) : r4 (lo) — the sequence
// behind the Q3.28 interpolation multiply (pimsim's I64Mul charge).
// Sixteen 8×8 products accumulated with SLTU carries. Signed callers
// pre-negate and fix the sign (the Q3.28 Δ operand is always
// non-negative, so the fixed L-LUT interpolation uses exactly this).
const Mul32x32to64Src = `
mul64:
    ; byte split: a -> r5..r8, b -> r9..r12
    andi r5, r1, 0xFF
    srli r6, r1, 8
    andi r6, r6, 0xFF
    srli r7, r1, 16
    andi r7, r7, 0xFF
    srli r8, r1, 24
    andi r9, r2, 0xFF
    srli r10, r2, 8
    andi r10, r10, 0xFF
    srli r11, r2, 16
    andi r11, r11, 0xFF
    srli r12, r2, 24
    ; lo = a0*b0, hi = 0
    mul8 r4, r5, r9
    li   r3, 0
    ; k=8 : a0b1, a1b0
    mul8 r13, r5, r10
    slli r13, r13, 8
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    mul8 r13, r6, r9
    slli r13, r13, 8
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    ; k=16: a0b2, a1b1, a2b0
    mul8 r13, r5, r11
    slli r13, r13, 16
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    mul8 r13, r6, r10
    slli r13, r13, 16
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    mul8 r13, r7, r9
    slli r13, r13, 16
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    ; k=24: a0b3, a1b2, a2b1, a3b0 (split across the word boundary)
    mul8 r13, r5, r12
    srli r14, r13, 8
    add  r3, r3, r14
    slli r13, r13, 24
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    mul8 r13, r6, r11
    srli r14, r13, 8
    add  r3, r3, r14
    slli r13, r13, 24
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    mul8 r13, r7, r10
    srli r14, r13, 8
    add  r3, r3, r14
    slli r13, r13, 24
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    mul8 r13, r8, r9
    srli r14, r13, 8
    add  r3, r3, r14
    slli r13, r13, 24
    add  r4, r4, r13
    sltu r14, r4, r13
    add  r3, r3, r14
    ; k=32: a1b3, a2b2, a3b1 (pure hi)
    mul8 r13, r6, r12
    add  r3, r3, r13
    mul8 r13, r7, r11
    add  r3, r3, r13
    mul8 r13, r8, r10
    add  r3, r3, r13
    ; k=40: a2b3, a3b2
    mul8 r13, r7, r12
    slli r13, r13, 8
    add  r3, r3, r13
    mul8 r13, r8, r11
    slli r13, r13, 8
    add  r3, r3, r13
    ; k=48: a3b3
    mul8 r13, r8, r12
    slli r13, r13, 16
    add  r3, r3, r13
    ret  r23
`
