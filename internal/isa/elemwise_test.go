package isa

import (
	"math"
	"testing"

	"transpimlib/internal/pimsim"
)

// elemInputs builds a deterministic float32 vector mixing magnitudes
// and signs (finite, no NaN/Inf — the validated domain of the loops).
func elemInputs(n int, seed uint32) []float32 {
	xs := make([]float32, n)
	s := seed
	for i := range xs {
		s = s*1664525 + 1013904223
		// map to roughly [-8, 8)
		xs[i] = float32(int32(s>>8))/float32(1<<27) - 8 + 16*float32(s&1)
		if xs[i] < -8 || xs[i] >= 8 {
			xs[i] = float32(i%13) - 6.5
		}
	}
	return xs
}

// foldFAdd runs the standalone fadd32 routine on one operand pair and
// returns the result bits and the retired instruction count of that
// call — the per-pair F_i term of the loop cost formulas.
func foldFAdd(t *testing.T, m *Machine, p *Program, a, b uint32) (uint32, uint64) {
	t.Helper()
	m.Reset()
	m.Regs[1] = int32(a)
	m.Regs[2] = int32(b)
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, "fadd32", 10000); err != nil {
		t.Fatal(err)
	}
	return uint32(m.Regs[3]), m.Retired()
}

// dmaFormulas returns the expected extra issue cycles and DMA-engine
// cycles for a run with the given number of word-granularity MRAM
// accesses, per the machine's chargeDMA accounting.
func dmaFormulas(cm pimsim.CostModel, dmaOps uint64) (extraIssue, dma uint64) {
	return dmaOps * uint64(cm.MRAMIssue-1),
		dmaOps * (uint64(cm.MRAMLatency) + uint64(8*cm.MRAMPerByte))
}

func TestElemAddLoopASM(t *testing.T) {
	const n = 37
	as := elemInputs(n, 1)
	bs := elemInputs(n, 2)
	p := ElemwiseValidationProgram()
	ref := MustAssemble(FAdd32Src)
	mm := newMachine() // standalone fadd replays

	m := newMachine()
	aBase, bBase, yBase := 0, 4*n, 8*n
	for i := 0; i < n; i++ {
		m.MRAM.PutFloat32(aBase+4*i, as[i])
		m.MRAM.PutFloat32(bBase+4*i, bs[i])
	}
	m.Regs[1] = int32(aBase)
	m.Regs[2] = int32(bBase)
	m.Regs[3] = int32(yBase)
	m.Regs[4] = n
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, "elemadd", 1_000_000); err != nil {
		t.Fatal(err)
	}

	// Outputs bit-identical to the standalone softfloat adds, and the
	// loop retires exactly prologue + Σ(overhead + F_i) + epilogue.
	wantRetired := uint64(6 + 2) // prologue + (exit branch, ret)
	for i := 0; i < n; i++ {
		want, fi := foldFAdd(t, mm, ref, math.Float32bits(as[i]), math.Float32bits(bs[i]))
		if got := m.MRAM.Uint32(yBase + 4*i); got != want {
			t.Fatalf("y[%d] = %08x, fadd32 says %08x (a=%g b=%g)", i, got, want, as[i], bs[i])
		}
		wantRetired += ElemAddLoopOverhead + fi
	}
	if m.Retired() != wantRetired {
		t.Errorf("retired %d, formula says %d", m.Retired(), wantRetired)
	}

	// Cycle accounting: 3 word DMAs per element (two loads, one store).
	cm := pimsim.Default()
	extraIssue, dma := dmaFormulas(cm, 3*n)
	if got, want := m.IssueCycles(), wantRetired+extraIssue; got != want {
		t.Errorf("issue cycles %d, formula says %d", got, want)
	}
	if got := m.DMACycles(); got != dma {
		t.Errorf("dma cycles %d, formula says %d", got, dma)
	}
}

func TestReduceSumLoopASM(t *testing.T) {
	const n = 53
	xs := elemInputs(n, 3)
	p := ElemwiseValidationProgram()
	ref := MustAssemble(FAdd32Src)
	mm := newMachine()

	m := newMachine()
	for i, x := range xs {
		m.MRAM.PutFloat32(4*i, x)
	}
	m.Regs[1] = 0
	m.Regs[2] = n
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, "reducesum", 1_000_000); err != nil {
		t.Fatal(err)
	}

	// Replay the left-to-right fold through the standalone adder: the
	// loop passes acc in r1 and x in r2, so the replay must too.
	acc := uint32(0)
	wantRetired := uint64(5 + 3) // prologue + (exit branch, result move, ret)
	for _, x := range xs {
		var fi uint64
		acc, fi = foldFAdd(t, mm, ref, acc, math.Float32bits(x))
		wantRetired += ReduceSumLoopOverhead + fi
	}
	if got := uint32(m.Regs[3]); got != acc {
		t.Fatalf("sum = %08x, fold says %08x", got, acc)
	}
	if m.Retired() != wantRetired {
		t.Errorf("retired %d, formula says %d", m.Retired(), wantRetired)
	}

	cm := pimsim.Default()
	extraIssue, dma := dmaFormulas(cm, n)
	if got, want := m.IssueCycles(), wantRetired+extraIssue; got != want {
		t.Errorf("issue cycles %d, formula says %d", got, want)
	}
	if got := m.DMACycles(); got != dma {
		t.Errorf("dma cycles %d, formula says %d", got, dma)
	}

	// Truncating softfloat still lands near the float64 sum.
	var want64 float64
	for _, x := range xs {
		want64 += float64(x)
	}
	got := float64(math.Float32frombits(acc))
	if d := math.Abs(got - want64); d > 1e-2*(1+math.Abs(want64)) {
		t.Errorf("sum %g too far from float64 sum %g", got, want64)
	}
}

func TestReduceMaxLoopASM(t *testing.T) {
	const n = 61
	xs := elemInputs(n, 4)
	xs[17] = -0.0 // exercise the signed-zero key (orders below +0.0)
	p := ElemwiseValidationProgram()

	m := newMachine()
	for i, x := range xs {
		m.MRAM.PutFloat32(4*i, x)
	}
	m.Regs[1] = 0
	m.Regs[2] = n
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, "reducemax", 1_000_000); err != nil {
		t.Fatal(err)
	}

	// Host replay of the monotone-key compare counts the data-dependent
	// extras exactly: negatives take the key-flip jump, replacements
	// retire the two accumulator moves.
	key := func(b uint32) uint32 {
		if b&0x80000000 != 0 {
			return ^b
		}
		return b | 0x80000000
	}
	accBits := math.Float32bits(float32(math.Inf(-1)))
	accKey := key(accBits)
	wantRetired := uint64(8 + 3) // prologue + (exit branch, result move, ret)
	for _, x := range xs {
		b := math.Float32bits(x)
		wantRetired += ReduceMaxBasePerElem
		if b&0x80000000 != 0 {
			wantRetired += ReduceMaxNegExtra
		}
		if k := key(b); accKey < k {
			accBits, accKey = b, k
			wantRetired += ReduceMaxReplaceExtras
		}
	}
	if got := uint32(m.Regs[3]); got != accBits {
		t.Fatalf("max = %08x, key fold says %08x", got, accBits)
	}
	// The key order agrees with the plain float max over finite inputs.
	want := float32(math.Inf(-1))
	for _, x := range xs {
		if x > want {
			want = x
		}
	}
	if got := math.Float32frombits(uint32(m.Regs[3])); got != want {
		t.Fatalf("max = %g, host max = %g", got, want)
	}
	if m.Retired() != wantRetired {
		t.Errorf("retired %d, formula says %d", m.Retired(), wantRetired)
	}

	cm := pimsim.Default()
	extraIssue, dma := dmaFormulas(cm, n)
	if got, wantIssue := m.IssueCycles(), wantRetired+extraIssue; got != wantIssue {
		t.Errorf("issue cycles %d, formula says %d", got, wantIssue)
	}
	if got := m.DMACycles(); got != dma {
		t.Errorf("dma cycles %d, formula says %d", got, dma)
	}
}

// TestElemwiseCountsValidateFusedCharges anchors the fused-primitive
// charges to the measured loops: the per-element issue cost of the
// streaming add sits within 2× of the FAdd charge the fusion executor
// applies per ElemAdd, and the compare-based max loop is cheaper per
// element than the softfloat sum loop — the same ordering as the
// FCmp+Move vs FAdd charges behind ChargeReduce.
func TestElemwiseCountsValidateFusedCharges(t *testing.T) {
	const n = 64
	cm := pimsim.Default()
	xs := elemInputs(n, 5)
	p := ElemwiseValidationProgram()

	perElem := func(label string, setup func(m *Machine)) float64 {
		m := newMachine()
		for i, x := range xs {
			m.MRAM.PutFloat32(4*i, x)
			m.MRAM.PutFloat32(4*(n+i), x)
		}
		setup(m)
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, label, 1_000_000); err != nil {
			t.Fatal(err)
		}
		return float64(m.IssueCycles()) / n
	}

	add := perElem("elemadd", func(m *Machine) {
		m.Regs[1], m.Regs[2], m.Regs[3], m.Regs[4] = 0, 4*n, 8*n, n
	})
	sum := perElem("reducesum", func(m *Machine) { m.Regs[1], m.Regs[2] = 0, n })
	max := perElem("reducemax", func(m *Machine) { m.Regs[1], m.Regs[2] = 0, n })

	if r := add / float64(cm.FAdd); r < 0.5 || r > 2 {
		t.Errorf("asm elemadd: %.1f issue/elem vs FAdd charge %d (ratio %.2f)", add, cm.FAdd, r)
	}
	if r := sum / float64(cm.FAdd); r < 0.5 || r > 2 {
		t.Errorf("asm reducesum: %.1f issue/elem vs FAdd charge %d (ratio %.2f)", sum, cm.FAdd, r)
	}
	if max >= sum {
		t.Errorf("asm reducemax (%.1f/elem) must undercut reducesum (%.1f/elem), like FCmp+Move (%d) vs FAdd (%d)",
			max, sum, cm.FCmp+cm.Move, cm.FAdd)
	}
	t.Logf("issue cycles per element: elemadd %.1f, reducesum %.1f, reducemax %.1f (charges: FAdd %d, FCmp+Move %d)",
		add, sum, max, cm.FAdd, cm.FCmp+cm.Move)
}
