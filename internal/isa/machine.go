package isa

import (
	"fmt"
	"math/bits"

	"transpimlib/internal/pimsim"
)

// Machine executes one thread's program on a simulated PIM core: 24
// registers, the core's WRAM and MRAM, and the same cycle accounting
// semantics as pimsim — every retired instruction is one issue cycle,
// MRAM accesses additionally occupy the DMA engine.
type Machine struct {
	Regs [NumRegs]int32
	WRAM *pimsim.Mem
	MRAM *pimsim.Mem

	cost pimsim.CostModel

	pc          int
	issueCycles uint64
	dmaCycles   uint64
	retired     uint64
	halted      bool
}

// NewMachine builds a machine over the given memories (either may be
// shared with a pimsim.DPU).
func NewMachine(wram, mram *pimsim.Mem, cost pimsim.CostModel) *Machine {
	return &Machine{WRAM: wram, MRAM: mram, cost: cost}
}

// NewMachineForDPU runs against a DPU's memories with its cost model.
func NewMachineForDPU(d *pimsim.DPU) *Machine {
	return &Machine{WRAM: d.WRAM, MRAM: d.MRAM, cost: d.Model()}
}

// IssueCycles returns the pipeline-issue cycles consumed (one per
// retired instruction, plus the extra DMA issue slots).
func (m *Machine) IssueCycles() uint64 { return m.issueCycles }

// DMACycles returns the DMA engine busy time.
func (m *Machine) DMACycles() uint64 { return m.dmaCycles }

// Retired returns the number of retired instructions.
func (m *Machine) Retired() uint64 { return m.retired }

// Reset clears the registers, counters, pc and halt flag (memory is
// left intact).
func (m *Machine) Reset() {
	m.Regs = [NumRegs]int32{}
	m.pc = 0
	m.issueCycles = 0
	m.dmaCycles = 0
	m.retired = 0
	m.halted = false
}

// Run executes the program from instruction 0 until HALT, a fall-off
// the end, or maxInstrs retirements (guarding against runaway loops).
func (m *Machine) Run(p *Program, maxInstrs uint64) error {
	m.pc = 0
	m.halted = false
	for !m.halted {
		if m.pc < 0 || m.pc >= len(p.Instrs) {
			return nil // fell off the end: treated as completion
		}
		if m.retired >= maxInstrs {
			return fmt.Errorf("isa: exceeded %d instructions at pc=%d", maxInstrs, m.pc)
		}
		in := p.Instrs[m.pc]
		if err := m.step(in); err != nil {
			return fmt.Errorf("isa: pc=%d %v: %w", m.pc, in.Op, err)
		}
	}
	return nil
}

// RunFrom executes starting at a label.
func (m *Machine) RunFrom(p *Program, label string, maxInstrs uint64) error {
	start, ok := p.Labels[label]
	if !ok {
		return fmt.Errorf("isa: no label %q", label)
	}
	m.pc = start
	m.halted = false
	for !m.halted {
		if m.pc < 0 || m.pc >= len(p.Instrs) {
			return nil
		}
		if m.retired >= maxInstrs {
			return fmt.Errorf("isa: exceeded %d instructions at pc=%d", maxInstrs, m.pc)
		}
		in := p.Instrs[m.pc]
		if err := m.step(in); err != nil {
			return fmt.Errorf("isa: pc=%d %v: %w", m.pc, in.Op, err)
		}
	}
	return nil
}

func (m *Machine) step(in Instr) error {
	m.retired++
	m.issueCycles++
	next := m.pc + 1
	r := &m.Regs
	switch in.Op {
	case ADD:
		r[in.Rd] = r[in.Ra] + r[in.Rb]
	case SUB:
		r[in.Rd] = r[in.Ra] - r[in.Rb]
	case AND:
		r[in.Rd] = r[in.Ra] & r[in.Rb]
	case OR:
		r[in.Rd] = r[in.Ra] | r[in.Rb]
	case XOR:
		r[in.Rd] = r[in.Ra] ^ r[in.Rb]
	case SLL:
		r[in.Rd] = r[in.Ra] << (uint32(r[in.Rb]) & 31)
	case SRL:
		r[in.Rd] = int32(uint32(r[in.Ra]) >> (uint32(r[in.Rb]) & 31))
	case SRA:
		r[in.Rd] = r[in.Ra] >> (uint32(r[in.Rb]) & 31)
	case ADDI:
		r[in.Rd] = r[in.Ra] + in.Imm
	case SUBI:
		r[in.Rd] = r[in.Ra] - in.Imm
	case ANDI:
		r[in.Rd] = r[in.Ra] & in.Imm
	case ORI:
		r[in.Rd] = r[in.Ra] | in.Imm
	case XORI:
		r[in.Rd] = r[in.Ra] ^ in.Imm
	case SLLI:
		r[in.Rd] = r[in.Ra] << (uint32(in.Imm) & 31)
	case SRLI:
		r[in.Rd] = int32(uint32(r[in.Ra]) >> (uint32(in.Imm) & 31))
	case SRAI:
		r[in.Rd] = r[in.Ra] >> (uint32(in.Imm) & 31)
	case MUL8:
		r[in.Rd] = int32(uint32(r[in.Ra]&0xFF) * uint32(r[in.Rb]&0xFF))
	case SLTU:
		if uint32(r[in.Ra]) < uint32(r[in.Rb]) {
			r[in.Rd] = 1
		} else {
			r[in.Rd] = 0
		}
	case CLZ:
		r[in.Rd] = int32(bits.LeadingZeros32(uint32(r[in.Ra])))
	case LI:
		r[in.Rd] = in.Imm
	case MOVE:
		r[in.Rd] = r[in.Ra]
	case LW:
		r[in.Rd] = m.WRAM.Int32(int(r[in.Rb]) + int(in.Imm))
	case SW:
		m.WRAM.PutInt32(int(r[in.Rb])+int(in.Imm), r[in.Ra])
	case MLW:
		m.chargeDMA()
		r[in.Rd] = m.MRAM.Int32(int(r[in.Rb]) + int(in.Imm))
	case MSW:
		m.chargeDMA()
		m.MRAM.PutInt32(int(r[in.Rb])+int(in.Imm), r[in.Ra])
	case BEQ:
		if r[in.Ra] == r[in.Rb] {
			next = in.Target
		}
	case BNE:
		if r[in.Ra] != r[in.Rb] {
			next = in.Target
		}
	case BLT:
		if r[in.Ra] < r[in.Rb] {
			next = in.Target
		}
	case BGE:
		if r[in.Ra] >= r[in.Rb] {
			next = in.Target
		}
	case JMP:
		next = in.Target
	case JAL:
		r[in.Rd] = int32(m.pc + 1)
		next = in.Target
	case RET:
		next = int(r[in.Ra])
	case HALT:
		m.halted = true
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
	m.pc = next
	return nil
}

func (m *Machine) chargeDMA() {
	// The DMA instruction occupies an extra issue slot beyond the
	// retirement itself, matching pimsim's MRAMIssue=2, and the engine
	// for the 8-byte minimum transfer.
	m.issueCycles += uint64(m.cost.MRAMIssue - 1)
	m.dmaCycles += uint64(m.cost.MRAMLatency) + uint64(8*m.cost.MRAMPerByte)
}
