package isa

import (
	"math"
	"testing"
	"testing/quick"

	"transpimlib/internal/lut"
	"transpimlib/internal/pimsim"
)

func runFloat2(t *testing.T, m *Machine, p *Program, label string, a, b float32) (float32, uint64) {
	t.Helper()
	m.Reset()
	m.Regs[1] = int32(math.Float32bits(a))
	m.Regs[2] = int32(math.Float32bits(b))
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, label, 10000); err != nil {
		t.Fatalf("%s(%v, %v): %v", label, a, b, err)
	}
	return math.Float32frombits(uint32(m.Regs[3])), m.IssueCycles()
}

// ulpsApart returns the distance between two float32 values in units
// of last place (same-sign finite values).
func ulpsApart(a, b float32) int {
	ia, ib := int32(math.Float32bits(a)), int32(math.Float32bits(b))
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return int(d)
}

func TestFMul32Routine(t *testing.T) {
	p := MustAssemble(FMul32Src)
	m := newMachine()
	cases := [][2]float32{
		{1, 1}, {2, 3}, {1.5, 1.5}, {-2.5, 4}, {0.125, -8},
		{3.14159, 2.71828}, {1e10, 1e-10}, {0, 5}, {5, 0}, {-0, 3},
		{1.0000001, 0.9999999},
	}
	for _, c := range cases {
		got, _ := runFloat2(t, m, p, "fmul32", c[0], c[1])
		want := c[0] * c[1]
		if want == 0 {
			if got != 0 {
				t.Errorf("fmul32(%v, %v) = %v, want ±0", c[0], c[1], got)
			}
			continue
		}
		// Truncating multiply: within 1 ulp below the rounded result.
		if ulpsApart(got, want) > 1 {
			t.Errorf("fmul32(%v, %v) = %v (%d ulps from %v)", c[0], c[1], got, ulpsApart(got, want), want)
		}
	}
}

func TestPropFMul32(t *testing.T) {
	p := MustAssemble(FMul32Src)
	m := newMachine()
	f := func(ua, ub float32) bool {
		a := float32(math.Mod(float64(ua), 1e6))
		b := float32(math.Mod(float64(ub), 1e6))
		if a != a || b != b || a == 0 || b == 0 {
			return true
		}
		prod := float64(a) * float64(b)
		if math.Abs(prod) < 1e-30 || math.Abs(prod) > 1e30 {
			return true // outside the validated normal range
		}
		got, _ := runFloat2(t, m, p, "fmul32", a, b)
		return ulpsApart(got, a*b) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFAdd32Routine(t *testing.T) {
	p := MustAssemble(FAdd32Src)
	m := newMachine()
	cases := [][2]float32{
		{1, 1}, {1, 2}, {2, 1}, {1.5, -0.25}, {-1.5, 0.25},
		{100, 0.001}, {0.001, 100}, {3.14159, -2.71828},
		{1, -1}, {0, 7}, {7, 0}, {1e10, 1}, {5, -4.9999995},
		{-3, -4},
	}
	for _, c := range cases {
		got, _ := runFloat2(t, m, p, "fadd32", c[0], c[1])
		want := c[0] + c[1]
		if want == 0 {
			if got != 0 {
				t.Errorf("fadd32(%v, %v) = %v, want 0", c[0], c[1], got)
			}
			continue
		}
		if ulpsApart(got, want) > 1 {
			t.Errorf("fadd32(%v, %v) = %v (%d ulps from %v)", c[0], c[1], got, ulpsApart(got, want), want)
		}
	}
}

func TestPropFAdd32(t *testing.T) {
	p := MustAssemble(FAdd32Src)
	m := newMachine()
	f := func(ua, ub float32) bool {
		a := float32(math.Mod(float64(ua), 1e6))
		b := float32(math.Mod(float64(ub), 1e6))
		if a != a || b != b {
			return true
		}
		sum := a + b
		if sum != 0 && (math.Abs(float64(sum)) < 1e-30 || math.Abs(float64(sum)) > 1e30) {
			return true
		}
		// Heavy cancellation amplifies the truncating alignment into
		// multiple ulps of the tiny result; exclude |sum| ≪ |a|.
		if sum != 0 && math.Abs(float64(sum)) < 1e-3*math.Max(math.Abs(float64(a)), math.Abs(float64(b))) {
			return true
		}
		got, _ := runFloat2(t, m, p, "fadd32", a, b)
		if sum == 0 {
			return got == 0
		}
		return ulpsApart(got, sum) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// The headline cost-model validation: the software float32 multiply
// and add routines retire instruction counts within 2× of the FMul=93
// and FAdd=62 charges (truncating vs round-to-nearest accounts for the
// gap).
func TestSoftFloatCountsValidateCharges(t *testing.T) {
	cm := pimsim.Default()
	m := newMachine()

	pm := MustAssemble(FMul32Src)
	_, mulInstrs := runFloat2(t, m, pm, "fmul32", 3.14159, 2.71828)
	if r := float64(mulInstrs) / float64(cm.FMul); r < 0.5 || r > 2 {
		t.Errorf("asm fmul32: %d instrs vs FMul charge %d (ratio %.2f)", mulInstrs, cm.FMul, r)
	}
	t.Logf("asm fmul32: %d instructions (cost model charges %d)", mulInstrs, cm.FMul)

	pa := MustAssemble(FAdd32Src)
	_, addInstrs := runFloat2(t, m, pa, "fadd32", 3.14159, -2.71828)
	if r := float64(addInstrs) / float64(cm.FAdd); r < 0.5 || r > 2 {
		t.Errorf("asm fadd32: %d instrs vs FAdd charge %d (ratio %.2f)", addInstrs, cm.FAdd, r)
	}
	t.Logf("asm fadd32: %d instructions (cost model charges %d)", addInstrs, cm.FAdd)

	// And the ordering that drives Figure 5 survives at the ISA level:
	// fmul costs more than fadd.
	if mulInstrs <= addInstrs {
		t.Errorf("asm fmul (%d) must cost more than fadd (%d)", mulInstrs, addInstrs)
	}
}

func TestFDiv32Routine(t *testing.T) {
	p := MustAssemble(FDiv32Src)
	m := newMachine()
	cases := [][2]float32{
		{1, 2}, {6, 3}, {1, 3}, {-7.5, 2.5}, {3.14159, 2.71828},
		{100, 0.001}, {0, 5}, {1e10, 1e-10},
	}
	for _, c := range cases {
		got, _ := runFloat2(t, m, p, "fdiv32", c[0], c[1])
		want := c[0] / c[1]
		if want == 0 {
			if got != 0 {
				t.Errorf("fdiv32(%v, %v) = %v, want 0", c[0], c[1], got)
			}
			continue
		}
		if ulpsApart(got, want) > 1 {
			t.Errorf("fdiv32(%v, %v) = %v (%d ulps from %v)", c[0], c[1], got, ulpsApart(got, want), want)
		}
	}
	// Division by zero → signed infinity.
	got, _ := runFloat2(t, m, p, "fdiv32", -3, 0)
	if !math.IsInf(float64(got), -1) {
		t.Errorf("fdiv32(-3, 0) = %v, want -Inf", got)
	}
}

func TestPropFDiv32(t *testing.T) {
	p := MustAssemble(FDiv32Src)
	m := newMachine()
	f := func(ua, ub float32) bool {
		a := float32(math.Mod(float64(ua), 1e5))
		b := float32(math.Mod(float64(ub), 1e5))
		if a != a || b != b || b == 0 || a == 0 {
			return true
		}
		q := float64(a) / float64(b)
		if math.Abs(q) < 1e-30 || math.Abs(q) > 1e30 {
			return true
		}
		got, _ := runFloat2(t, m, p, "fdiv32", a, b)
		return ulpsApart(got, a/b) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestFDivCountValidatesCharge(t *testing.T) {
	cm := pimsim.Default()
	m := newMachine()
	p := MustAssemble(FDiv32Src)
	_, instrs := runFloat2(t, m, p, "fdiv32", 3.14159, 2.71828)
	if r := float64(instrs) / float64(cm.FDiv); r < 0.5 || r > 2 {
		t.Errorf("asm fdiv32: %d instrs vs FDiv charge %d (ratio %.2f)", instrs, cm.FDiv, r)
	}
	t.Logf("asm fdiv32: %d instructions (cost model charges %d)", instrs, cm.FDiv)
	// And the §4.2.4 relation: division ≈ 2× multiplication.
	pm := MustAssemble(FMul32Src)
	_, mulInstrs := runFloat2(t, m, pm, "fmul32", 3.14159, 2.71828)
	if float64(instrs) < 1.5*float64(mulInstrs) {
		t.Errorf("fdiv (%d) should be ≳2× fmul (%d)", instrs, mulInstrs)
	}
}

func TestLdexpRoutine(t *testing.T) {
	p := MustAssemble(LdexpSrc)
	m := newMachine()
	cases := []struct {
		f    float32
		n    int32
		want float32
	}{
		{1.5, 4, 24}, {3.25, 0, 3.25}, {2, -1, 1}, {0, 100, 0}, {1, 10, 1024},
	}
	for _, c := range cases {
		m.Reset()
		m.Regs[1] = int32(math.Float32bits(c.f))
		m.Regs[2] = c.n
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "ldexp", 1000); err != nil {
			t.Fatal(err)
		}
		if got := math.Float32frombits(uint32(m.Regs[3])); got != c.want {
			t.Errorf("ldexp(%v, %d) = %v, want %v", c.f, c.n, got, c.want)
		}
	}
	// Overflow → ±Inf, underflow → ±0.
	m.Reset()
	m.Regs[1] = int32(math.Float32bits(-1))
	m.Regs[2] = 1000
	m.Regs[23] = int32(p.Len())
	if err := m.RunFrom(p, "ldexp", 1000); err != nil {
		t.Fatal(err)
	}
	if got := math.Float32frombits(uint32(m.Regs[3])); !math.IsInf(float64(got), -1) {
		t.Errorf("ldexp(-1, 1000) = %v, want -Inf", got)
	}
}

func TestFSplitRoutine(t *testing.T) {
	p := MustAssemble(FSplitSrc)
	m := newMachine()
	for _, v := range []float32{1, 1.5, 2.25, 100.625, 6433.7, 4095.999} {
		m.Reset()
		m.Regs[1] = int32(math.Float32bits(v))
		m.Regs[23] = int32(p.Len())
		if err := m.RunFrom(p, "fsplit", 1000); err != nil {
			t.Fatal(err)
		}
		wantIdx := int32(v)
		gotIdx := m.Regs[2]
		gotFrac := math.Float32frombits(uint32(m.Regs[3]))
		if gotIdx != wantIdx {
			t.Errorf("fsplit(%v) idx = %d, want %d", v, gotIdx, wantIdx)
		}
		wantFrac := v - float32(wantIdx)
		if math.Abs(float64(gotFrac-wantFrac)) > 1e-6*float64(v) {
			t.Errorf("fsplit(%v) frac = %v, want %v", v, gotFrac, wantFrac)
		}
	}
}

// TestInterpolatedSinePipelineASM is the capstone validation: the
// complete interpolated float L-LUT sine — Key Takeaway 1's
// recommended method — in assembly, checked for both results and
// instruction count against the Ctx-based evaluator (charged 247
// cycles/element).
func TestInterpolatedSinePipelineASM(t *testing.T) {
	const n = 10
	tab, err := lut.BuildLLUT(math.Sin, 0, 2*math.Pi, n, true)
	if err != nil {
		t.Fatal(err)
	}
	dpu := pimsim.NewDPU(0, pimsim.Default(), 16)
	dev, err := tab.Load(dpu, pimsim.InWRAM)
	if err != nil {
		t.Fatal(err)
	}

	prog := InterpValidationProgram()
	m := NewMachineForDPU(dpu)

	var asmTotal uint64
	samples := 0
	for x := 0.05; x < 2*math.Pi; x += 0.11 {
		xf := float32(x)
		want := dev.Eval(dpu.NewCtx(), xf)

		m.Reset()
		m.Regs[1] = int32(math.Float32bits(xf))
		m.Regs[2] = 0 // table base
		m.Regs[3] = n
		m.Regs[4] = int32(len(tab.Entries))
		if err := m.RunFrom(prog, "sine_llut_i", 100000); err != nil {
			t.Fatal(err)
		}
		got := math.Float32frombits(uint32(m.Regs[2]))
		// Truncating softfloat vs Go's rounding arithmetic: a few ulps.
		if math.Abs(float64(got)-float64(want)) > 1e-6 {
			t.Errorf("asm L-LUTi sine(%v) = %v, ctx = %v", xf, got, want)
		}
		asmTotal += m.IssueCycles()
		samples++
	}
	asmPer := float64(asmTotal) / float64(samples)

	dpu.ResetCycles()
	ctx := dpu.NewCtx()
	for x := 0.05; x < 2*math.Pi; x += 0.11 {
		dev.Eval(ctx, float32(x))
	}
	ctxPer := float64(dpu.Cycles()) / float64(samples)

	if r := asmPer / ctxPer; r < 0.5 || r > 2 {
		t.Fatalf("asm L-LUTi sine: %.1f instrs/elem vs ctx %.1f cycles/elem (ratio %.2f)",
			asmPer, ctxPer, r)
	}
	t.Logf("asm interpolated L-LUT sine: %.1f instrs/elem (ctx charges %.1f)", asmPer, ctxPer)
}
