package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble ensures arbitrary text never panics the assembler and
// that successful assemblies have resolved branch targets.
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 5\nhalt")
	f.Add("loop: jmp loop")
	f.Add("add r1, r2, r3 ; c")
	f.Add(":::")
	f.Add("beq r1, r2, missing")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		for i, in := range p.Instrs {
			switch in.Op {
			case BEQ, BNE, BLT, BGE, JMP, JAL:
				if in.Target < 0 || in.Target > p.Len() {
					t.Fatalf("instr %d: unresolved target %d", i, in.Target)
				}
			}
		}
	})
}

// FuzzMachineNoPanic runs arbitrary short programs (assembled from
// fuzz text) under the instruction guard; only in-range memory
// accesses are expected to survive, so out-of-range panics from the
// memory model are translated to skips.
func FuzzMachineNoPanic(f *testing.F) {
	f.Add("li r1, 4\nsw r1, r1, 0\nlw r2, r1, 0\nhalt")
	f.Add("addi r1, r1, 1\njmp 0x") // won't assemble; fine
	f.Fuzz(func(t *testing.T, src string) {
		if strings.Count(src, "\n") > 50 {
			return
		}
		p, err := Assemble(src)
		if err != nil {
			return
		}
		defer func() {
			// The Mem model panics on out-of-capacity addresses, which
			// arbitrary programs will hit; that is defined behaviour.
			_ = recover()
		}()
		m := newMachine()
		_ = m.Run(p, 5000)
	})
}
