package cluster

import (
	"fmt"

	"transpimlib/internal/telemetry"
)

// Stats is the cluster-wide accumulated view: what the router did with
// the traffic. Per-replica engine counters live in the replicas' own
// Stats (Cluster.ReplicaStats).
type Stats struct {
	Requests  uint64 // calls entering the cluster front-end
	Shed      uint64 // requests refused with ErrOverloaded
	ShedQuota uint64 // …of which by a tenant token bucket
	ShedQueue uint64 // …of which by the backlog bound
	Failovers uint64 // re-routes after a replica-level failure
	Spills    uint64 // placements away from the key's primary replica
	Degraded  uint64 // served requests whose replica degraded to the host mirror

	QuarantinedReplicas uint64 // replicas currently quarantined

	Routed []uint64 // requests served, per replica
}

// metrics is the atomic accumulator behind Stats, registered on the
// cluster's telemetry registry so /metrics and Stats() agree.
type metrics struct {
	requests  *telemetry.Counter
	shedQuota *telemetry.Counter
	shedQueue *telemetry.Counter
	failovers *telemetry.Counter
	spills    *telemetry.Counter
	degraded  *telemetry.Counter

	quarantined *telemetry.Gauge

	routed        []*telemetry.Counter
	replicaQueue  []*telemetry.Gauge
	replicaHealth []*telemetry.Gauge // 0 healthy, 1 probation, 2 quarantined
}

func newMetrics(reg *telemetry.Registry, replicas int) *metrics {
	m := &metrics{
		requests:    reg.Counter("cluster_requests_total", "requests entering the cluster front-end"),
		shedQuota:   reg.Counter("cluster_shed_total{reason=\"quota\"}", "requests shed, by reason"),
		shedQueue:   reg.Counter("cluster_shed_total{reason=\"queue\"}", "requests shed, by reason"),
		failovers:   reg.Counter("cluster_failovers_total", "requests re-routed after a replica-level failure"),
		spills:      reg.Counter("cluster_spills_total", "placements away from the key's primary replica"),
		degraded:    reg.Counter("cluster_degraded_observed_total", "served requests whose replica degraded to the host mirror"),
		quarantined: reg.Gauge("cluster_quarantined_replicas", "replicas currently quarantined by the health tracker"),
	}
	for r := 0; r < replicas; r++ {
		lb := fmt.Sprintf("{replica=%q}", fmt.Sprint(r))
		m.routed = append(m.routed, reg.Counter("cluster_routed_total"+lb, "requests served, per replica"))
		m.replicaQueue = append(m.replicaQueue, reg.Gauge("cluster_replica_queue_depth"+lb, "coalescing-batcher backlog, per replica"))
		m.replicaHealth = append(m.replicaHealth, reg.Gauge("cluster_replica_health"+lb, "replica health: 0 healthy, 1 probation, 2 quarantined"))
	}
	return m
}

func (m *metrics) snapshot(replicas int) Stats {
	s := Stats{
		Requests:            m.requests.Load(),
		ShedQuota:           m.shedQuota.Load(),
		ShedQueue:           m.shedQueue.Load(),
		Failovers:           m.failovers.Load(),
		Spills:              m.spills.Load(),
		Degraded:            m.degraded.Load(),
		QuarantinedReplicas: uint64(m.quarantined.Load()),
	}
	s.Shed = s.ShedQuota + s.ShedQueue
	s.Routed = make([]uint64, replicas)
	for r := 0; r < replicas; r++ {
		s.Routed[r] = m.routed[r].Load()
	}
	return s
}
