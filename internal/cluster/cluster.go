// Package cluster is the horizontal-scale serving layer: a front-end
// Cluster owns N engine replicas — each a full serving engine with its
// own simulated PIM system — and routes (function, method, tenant)
// keys onto them with consistent hashing, falling back to the
// least-loaded healthy candidate when the primary is quarantined or
// backlogged. Hot table state replicates to a key's K-replica
// candidate set through each engine's ordinary setup cache (the first
// request a replica sees for a spec builds its tables there; Prewarm
// forces it eagerly). Admission control sheds load with typed
// ErrOverloaded — per-tenant token-bucket quotas in elements, plus a
// backlog bound — and a replica-granularity health tracker (the PR-4
// engine tracker reused one level up) quarantines replicas that keep
// failing or degrading, re-routing their work to the survivors.
//
// With one replica, no quotas, and no faults, the cluster is a
// pass-through: outputs, modeled cycles, and the engine's
// zero-allocation steady state are bit-identical to calling the
// engine directly — the differential tests pin this.
package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"transpimlib/internal/core"
	"transpimlib/internal/engine"
	"transpimlib/internal/profiler"
	"transpimlib/internal/telemetry"
)

// ErrClusterClosed is returned by submit paths after Close.
var ErrClusterClosed = errors.New("cluster: closed")

// Config describes a cluster.
type Config struct {
	// Engines configures one engine replica each; len(Engines) is the
	// replica count N (1 ≤ N ≤ 64). Replicas may differ — e.g. a fault
	// plan injected into one replica only.
	Engines []engine.Config
	// Replication is K, the size of each key's candidate set on the
	// ring: the replicas a key's tables may become resident on and the
	// fallback targets for least-loaded placement. Default min(2, N),
	// capped at 16.
	Replication int
	// VirtualNodes is the number of ring points per replica (default
	// 64); more points smooth the key distribution.
	VirtualNodes int
	// Seed perturbs the ring and key hashes (default 1). Identical
	// seeds and request sequences yield identical placements.
	Seed uint64
	// Quotas are per-tenant token buckets in elements; nil disables
	// quota admission entirely. DefaultQuota, when non-nil, applies to
	// tenants absent from Quotas.
	Quotas       map[string]Quota
	DefaultQuota *Quota
	// MaxQueue, when > 0, is the backlog bound: a request is shed when
	// every healthy candidate replica's queue depth is at or above it.
	MaxQueue int
	// Health tunes replica-granularity quarantine (the engine
	// reliability knobs reused one level up): QuarantineAfter
	// consecutive failures quarantine a replica, ProbationAfter
	// sequence numbers later it is re-admitted on probation, and
	// ProbationSuccesses clean requests clear it. Zero values pick
	// defaults (3 / 64 / 2).
	Health engine.ReliabilityConfig
	// TraceDepth retains the span trees of the last N requests routed
	// through the cluster front-end (Cluster.TraceLast, /debug/trace).
	// Each trace is minted at the cluster boundary and shows the whole
	// placement ladder — primary attempt, spill, shed, failover — with
	// the serving replica's engine pipeline spans grafted underneath,
	// one connected tree per request. Replicas whose engine config
	// leaves TraceDepth unset inherit this value (and a "replica/<i>"
	// process lane name) so their pipeline spans join the tree. Zero
	// disables tracing: no spans allocated, no timestamps taken.
	TraceDepth int
	// Ledger enables per-tenant cost accounting cluster-wide: every
	// replica engine charges its batches to (tenant, function, method)
	// rows, the router adds shed and failover counts, and
	// Cluster.Ledger() merges it all into one snapshot. Off (the
	// default), the routing path is unchanged.
	Ledger bool
	// Timeline enables the cluster registry's windowed metrics store
	// (served at /debug/timeline). Zero value: disabled.
	Timeline telemetry.TimelineConfig
	// Profiler enables the modeled-cycle profiler on every replica
	// engine (all-or-nothing, like the ledger, so the merged profile
	// covers the whole fleet). The cluster serves the merged
	// /debug/profile and a per-replica /debug/heatmap. Zero value:
	// disabled, replica launch paths unchanged.
	Profiler profiler.Config
	// Clock supplies the token buckets' notion of now (default
	// time.Now); tests inject a deterministic clock.
	Clock func() time.Time
	// Log, when non-nil, receives replica quarantine/failover events.
	Log *slog.Logger
	// OnPlace, when non-nil, observes every routing decision (including
	// sheds) — the hook the determinism tests record through. It is
	// called on the request goroutine; keep it cheap.
	OnPlace func(placement)
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if n := len(c.Engines); c.Replication > n {
		c.Replication = n
	}
	if c.Replication > maxReplication {
		c.Replication = maxReplication
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Health.QuarantineAfter <= 0 {
		c.Health.QuarantineAfter = 3
	}
	if c.Health.ProbationAfter == 0 {
		c.Health.ProbationAfter = 64
	}
	if c.Health.ProbationSuccesses <= 0 {
		c.Health.ProbationSuccesses = 2
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// ReplicaHealth is one replica's row of the cluster health scoreboard.
type ReplicaHealth struct {
	Replica     int
	Errors      uint64 // lifetime failures (errors, degrades)
	Consecutive int    // current consecutive-failure streak
	Quarantined bool   // excluded from routing until the penalty lapses
	Probation   bool   // re-admitted, needs clean requests to clear
}

// Cluster is the replicated serving front end. Create with New (or
// NewWithExecutors for tests), submit with EvaluateBatchTenant, and
// Close when done. Safe for concurrent use.
type Cluster struct {
	cfg     Config
	execs   []engine.Executor
	engines []*engine.Engine // parallel to execs; nil for injected fakes
	ring    *ring
	adm     *admission // nil when no quotas are configured
	health  *engine.HealthTracker
	met     *metrics
	tel     *telemetry.Telemetry
	log     *slog.Logger

	// tracer mints cluster-boundary trace IDs and retains the routed
	// span trees; nil when TraceDepth is 0. led is the router's own
	// ledger rows (sheds, failovers); timeline the windowed store.
	// All nil when their config is off.
	tracer   *telemetry.Tracer
	led      *telemetry.Ledger
	timeline *telemetry.Timeline

	seq    atomic.Uint64
	closed atomic.Bool
}

// New builds and starts a cluster: one engine per Config.Engines
// entry, each with its own simulated PIM system.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Engines) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	if len(cfg.Engines) > 64 {
		return nil, fmt.Errorf("cluster: %d replicas exceeds the 64-replica cap", len(cfg.Engines))
	}
	engines := make([]*engine.Engine, len(cfg.Engines))
	execs := make([]engine.Executor, len(cfg.Engines))
	for i, ecfg := range cfg.Engines {
		// Cluster-level observability inherits down: replicas without
		// their own trace depth take the cluster's (and a per-replica
		// process lane name, so grafted pipeline spans render in their
		// own row), and the ledger is all-or-nothing — merged totals
		// only reconcile when every replica charges.
		if cfg.TraceDepth > 0 {
			if ecfg.TraceDepth <= 0 {
				ecfg.TraceDepth = cfg.TraceDepth
			}
			if ecfg.ProcName == "" {
				ecfg.ProcName = fmt.Sprintf("replica/%d", i)
			}
		}
		if cfg.Ledger {
			ecfg.Ledger = true
		}
		if cfg.Profiler.Enabled {
			ecfg.Profiler = cfg.Profiler
		}
		e, err := engine.New(ecfg)
		if err != nil {
			for j := 0; j < i; j++ {
				engines[j].Close()
			}
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		engines[i] = e
		execs[i] = e
	}
	c, err := NewWithExecutors(cfg, execs)
	if err != nil {
		for _, e := range engines {
			e.Close()
		}
		return nil, err
	}
	c.engines = engines
	if cfg.Profiler.Enabled {
		// Merged profile and per-replica heatmaps over the replica
		// collectors (injected executors have none and are skipped).
		c.tel.ProfileHandler = profiler.ProfileHandler(c.profilerSources)
		c.tel.HeatmapHandler = profiler.HeatmapHandler(c.profilerSources)
	}
	return c, nil
}

// profilerSources lists the replica collectors for the merged debug
// endpoints, one named source per profiling replica.
func (c *Cluster) profilerSources() []profiler.Source {
	out := make([]profiler.Source, 0, len(c.engines))
	for i, e := range c.engines {
		if e == nil || e.Profiler() == nil {
			continue
		}
		out = append(out, profiler.Source{Name: fmt.Sprintf("replica/%d", i), C: e.Profiler()})
	}
	return out
}

// ProfileSnapshot returns the merged modeled-cycle profile across the
// replicas; ok is false when profiling is disabled everywhere.
func (c *Cluster) ProfileSnapshot() (profiler.Profile, bool) {
	var snaps []profiler.Profile
	for _, e := range c.engines {
		if e == nil {
			continue
		}
		if p, ok := e.ProfileSnapshot(); ok {
			snaps = append(snaps, p)
		}
	}
	if len(snaps) == 0 {
		return profiler.Profile{}, false
	}
	return profiler.Merge(snaps...), true
}

// NewWithExecutors builds a cluster over caller-supplied execution
// stages — the seam the router tests feed fake replicas through. The
// cluster takes ownership: Close closes every executor.
func NewWithExecutors(cfg Config, execs []engine.Executor) (*Cluster, error) {
	if len(execs) == 0 {
		return nil, fmt.Errorf("cluster: no executors")
	}
	if len(execs) > 64 {
		return nil, fmt.Errorf("cluster: %d executors exceeds the 64-replica cap", len(execs))
	}
	cfg.Engines = cfg.Engines[:0:0]
	for range execs {
		cfg.Engines = append(cfg.Engines, engine.Config{})
	}
	cfg = cfg.withDefaults()
	reg := telemetry.NewRegistry()
	c := &Cluster{
		cfg:    cfg,
		execs:  execs,
		ring:   newRing(len(execs), cfg.VirtualNodes, cfg.Seed),
		health: engine.NewHealthTracker(len(execs), cfg.Health),
		met:    newMetrics(reg, len(execs)),
		log:    cfg.Log,
	}
	if cfg.Quotas != nil || cfg.DefaultQuota != nil {
		c.adm = newAdmission(cfg.Quotas, cfg.DefaultQuota)
	}
	if cfg.TraceDepth > 0 {
		c.tracer = telemetry.NewTracer(cfg.TraceDepth)
	}
	if cfg.Ledger {
		c.led = telemetry.NewLedger(reg, 0)
	}
	if cfg.Timeline.Enabled {
		c.timeline = telemetry.NewTimeline(reg, cfg.Timeline)
		c.timeline.Start()
	}
	c.tel = &telemetry.Telemetry{Registry: reg, Tracer: c.tracer, Timeline: c.timeline}
	if cfg.Ledger {
		c.tel.LedgerJSON = func() any { return c.Ledger() }
	}
	return c, nil
}

// Replicas returns the replica count N.
func (c *Cluster) Replicas() int { return len(c.execs) }

// EvaluateBatch is EvaluateBatchTenant with the anonymous tenant.
func (c *Cluster) EvaluateBatch(fn core.Function, p core.Params, xs []float32) ([]float32, engine.RequestStats, error) {
	return c.EvaluateBatchTenant("", fn, p, xs)
}

// EvaluateBatchTenant routes one request: admission (quota shed),
// placement (consistent hash, least-loaded fallback, backlog shed),
// execution on the chosen replica, and failover — a replica that
// fails at the infrastructure level is penalized on the health
// tracker and the request re-placed among the survivors. A replica
// that serves the request but had to degrade to its host mirror
// returns correct bits (the engine contract) and is penalized so
// sustained degradation quarantines it.
func (c *Cluster) EvaluateBatchTenant(tenant string, fn core.Function, p core.Params, xs []float32) ([]float32, engine.RequestStats, error) {
	if c.closed.Load() {
		return nil, engine.RequestStats{}, ErrClusterClosed
	}
	seq := c.seq.Add(1)
	c.met.requests.Inc()
	tr := c.beginTrace(tenant, fn, p, len(xs)) // nil when tracing is off

	if c.adm != nil && !c.adm.admit(tenant, len(xs), c.cfg.Clock()) {
		c.met.shedQuota.Inc()
		c.chargeRoute(tenant, fn, p, telemetry.LedgerEntry{Shed: 1})
		if c.cfg.OnPlace != nil {
			c.cfg.OnPlace(placement{Seq: seq, Primary: -1, Replica: -1, Shed: true})
		}
		err := overloadQuota(tenant)
		if tr != nil {
			tr.shed("quota")
			tr.finish(c, err)
		}
		return nil, engine.RequestStats{}, err
	}

	h := keyHash(c.cfg.Seed, fn, p.Normalized(), tenant)
	var tried uint64
	var lastErr error
	for attempt := 0; attempt < len(c.execs); attempt++ {
		pl := c.place(h, seq, tried)
		if c.cfg.OnPlace != nil {
			c.cfg.OnPlace(pl)
		}
		if pl.Shed {
			c.met.shedQueue.Inc()
			c.chargeRoute(tenant, fn, p, telemetry.LedgerEntry{Shed: 1})
			err := overloadQueue()
			if tr != nil {
				tr.shed("queue")
				tr.finish(c, err)
			}
			return nil, engine.RequestStats{}, err
		}
		if pl.Replica < 0 {
			break // every replica tried and failed
		}
		if pl.Spilled {
			c.met.spills.Inc()
		}
		var span *telemetry.Span
		if tr != nil {
			span = tr.attempt(pl, attempt)
		}
		out, st, err := c.execute(tr, pl.Replica, tenant, fn, p, xs)
		if span != nil {
			span.End = time.Now()
		}
		switch {
		case err == nil:
			c.met.routed[pl.Replica].Inc()
			if st.Degraded {
				c.met.degraded.Inc()
				c.noteFailure(pl.Replica, seq, "degraded")
			} else {
				c.health.RecordSuccess(pl.Replica)
			}
			if tr != nil {
				st.TraceID = tr.id
				if span != nil {
					// Prewarm/replication visibility: were the spec's
					// tables already resident on the serving replica?
					span.SetAttr("cache_hit", fmt.Sprint(st.CacheHit))
				}
				tr.finish(c, nil)
			}
			return out, st, nil
		case errors.Is(err, engine.ErrEngineClosed):
			// Infrastructure failure: penalize, mark tried, re-place.
			c.noteFailure(pl.Replica, seq, "replica_error")
			c.met.failovers.Inc()
			c.chargeRoute(tenant, fn, p, telemetry.LedgerEntry{Failovers: 1})
			if span != nil {
				span.Err = err.Error()
				span.SetAttr("failover", "true")
			}
			tried |= 1 << uint(pl.Replica)
			lastErr = err
			if c.log != nil {
				c.log.Warn("replica failed, re-routing",
					"replica", pl.Replica, "seq", seq, "err", err)
			}
		default:
			// Deterministic request error (unsupported method, table too
			// large): every replica would answer the same — no failover,
			// no health penalty.
			if span != nil {
				span.Err = err.Error()
			}
			if tr != nil {
				tr.finish(c, err)
			}
			return nil, engine.RequestStats{}, err
		}
	}
	if lastErr == nil {
		lastErr = ErrClusterClosed
	}
	err := fmt.Errorf("cluster: all replicas failed: %w", lastErr)
	if tr != nil {
		tr.finish(c, err)
	}
	return nil, engine.RequestStats{}, err
}

// execute runs the request on one replica. On a traced request it
// prefers the executor's traced entry point, propagating the
// cluster-minted trace ID into the replica's pipeline and grafting the
// returned engine span tree (rendered in the replica's own process
// lane) under the cluster trace — one connected tree across layers.
func (c *Cluster) execute(tr *reqTrace, replica int, tenant string, fn core.Function, p core.Params, xs []float32) ([]float32, engine.RequestStats, error) {
	if tr != nil {
		if te, ok := c.execs[replica].(engine.TracedExecutor); ok {
			out, st, etr, err := te.EvaluateBatchTraced(tenant, tr.id, fn, p, xs)
			if etr != nil && len(tr.root.Child) > 0 {
				// Graft under the current attempt span. The subtree is
				// shared with the replica's own trace ring; it is
				// read-only from here on.
				tr.root.Child[len(tr.root.Child)-1].AddChild(etr.Root)
			}
			return out, st, err
		}
	}
	return c.execs[replica].EvaluateBatchTenant(tenant, fn, p, xs)
}

// chargeRoute adds router-level ledger deltas (sheds, failovers) to
// the (tenant, function, method) row. No-op when the ledger is off.
func (c *Cluster) chargeRoute(tenant string, fn core.Function, p core.Params, d telemetry.LedgerEntry) {
	if c.led == nil {
		return
	}
	c.led.Add(telemetry.LedgerKey{
		Tenant:   tenant,
		Function: fn.String(),
		Method:   engine.MethodLabel(p),
	}, d)
}

// noteFailure records a replica-level failure, logging and gauging a
// quarantine transition.
func (c *Cluster) noteFailure(replica int, seq uint64, cause string) {
	if c.health.RecordFailure(replica, seq) {
		if c.log != nil {
			c.log.Warn("replica quarantined",
				"replica", replica, "seq", seq, "cause", cause)
		}
		c.met.quarantined.Set(int64(c.health.QuarantinedCount()))
		c.updateHealthGauges()
	}
}

// updateHealthGauges refreshes the per-replica health gauges from the
// tracker scoreboard.
func (c *Cluster) updateHealthGauges() {
	for _, row := range c.health.Snapshot() {
		v := int64(0)
		switch {
		case row.Quarantined:
			v = 2
		case row.Probation:
			v = 1
		}
		c.met.replicaHealth[row.DPU].Set(v)
	}
	c.met.quarantined.Set(int64(c.health.QuarantinedCount()))
}

// Prewarm eagerly replicates a spec's tables to every replica in its
// key's candidate set by evaluating one in-domain element there — the
// explicit form of the hot-table replication that least-loaded
// fallback performs lazily. It bypasses admission and health
// bookkeeping; use it before opening traffic.
func (c *Cluster) Prewarm(fn core.Function, p core.Params, tenant string) error {
	if c.closed.Load() {
		return ErrClusterClosed
	}
	lo, hi := fn.Domain()
	x := []float32{float32((lo + hi) / 2)}
	h := keyHash(c.cfg.Seed, fn, p.Normalized(), tenant)
	var scratch [maxReplication]int
	for _, rep := range c.ring.candidates(h, c.cfg.Replication, scratch[:0]) {
		if _, _, err := c.execs[rep].EvaluateBatchTenant(tenant, fn, p, x); err != nil {
			return fmt.Errorf("cluster: prewarm replica %d: %w", rep, err)
		}
	}
	return nil
}

// Stats snapshots the cluster-wide routing counters.
func (c *Cluster) Stats() Stats { return c.met.snapshot(len(c.execs)) }

// Ledger merges the router's own cost rows (sheds, failovers) with
// every replica engine's per-tenant charges into one cluster-wide
// snapshot. Empty when Config.Ledger is off.
func (c *Cluster) Ledger() telemetry.LedgerSnapshot {
	snaps := make([]telemetry.LedgerSnapshot, 0, len(c.engines)+1)
	snaps = append(snaps, c.led.Snapshot())
	for _, e := range c.engines {
		if e != nil {
			snaps = append(snaps, e.Ledger())
		}
	}
	return telemetry.MergeLedgers(snaps...)
}

// TraceLast returns the span tree of the most recently routed request,
// or false when tracing is disabled or nothing has completed.
func (c *Cluster) TraceLast() (*telemetry.Trace, bool) { return c.tracer.Last() }

// Traces returns the retained cluster traces, oldest first (nil when
// tracing is disabled).
func (c *Cluster) Traces() []*telemetry.Trace { return c.tracer.Traces() }

// ReplicaStats snapshots each replica's engine counters.
func (c *Cluster) ReplicaStats() []engine.Stats {
	out := make([]engine.Stats, len(c.execs))
	for i, e := range c.execs {
		out[i] = e.Stats()
	}
	return out
}

// CachedSpecs sums the replicas' resident table configurations —
// replication means one spec can count on several replicas. Injected
// executors without an engine contribute zero.
func (c *Cluster) CachedSpecs() int {
	n := 0
	for _, e := range c.engines {
		if e != nil {
			n += e.CachedSpecs()
		}
	}
	return n
}

// Health returns the replica health scoreboard.
func (c *Cluster) Health() []ReplicaHealth {
	rows := c.health.Snapshot()
	out := make([]ReplicaHealth, len(rows))
	for i, r := range rows {
		out[i] = ReplicaHealth{
			Replica:     r.DPU,
			Errors:      r.Errors,
			Consecutive: r.Consecutive,
			Quarantined: r.Quarantined,
			Probation:   r.Probation,
		}
	}
	return out
}

// Observe returns the cluster's telemetry handle: the registry behind
// Stats and the cluster /metrics exposition. Per-replica engine
// telemetry is reachable through ReplicaObserve.
func (c *Cluster) Observe() *telemetry.Telemetry { return c.tel }

// ReplicaObserve returns replica i's engine telemetry handle, or nil
// when the replica is an injected executor without one.
func (c *Cluster) ReplicaObserve(i int) *telemetry.Telemetry {
	if i < 0 || i >= len(c.engines) || c.engines[i] == nil {
		return nil
	}
	return c.engines[i].Observe()
}

// Replica returns replica i's engine, or nil for injected executors —
// the escape hatch tplserve uses for per-replica accuracy snapshots.
func (c *Cluster) Replica(i int) *engine.Engine {
	if i < 0 || i >= len(c.engines) {
		return nil
	}
	return c.engines[i]
}

// Close drains and stops every replica. Subsequent calls fail with
// ErrClusterClosed.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	for _, e := range c.execs {
		e.Close()
	}
	c.timeline.Close()
}
